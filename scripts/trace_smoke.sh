#!/bin/sh
# Trace smoke: end-to-end proof of the bring-your-own-workload service
# (DESIGN.md §17). Boots a solo reference node and a 3-node fleet, all with
# trace stores, then:
#
#   1. phastload uploads a generated trace to ONE fleet member and runs the
#      same duplicate-heavy mix over "trace:<digest>" round-robined across
#      ALL members — every per-seed result digest must be byte-identical to
#      the solo reference node's, proving an uploaded trace is runnable by
#      digest from any node, not just its ingestion point.
#   2. A two-tenant fairness group saturates the solo node: a heavy tenant
#      (12 closed-loop workers) and a light tenant (2 workers) load it
#      concurrently with equal scheduler weights. The light tenant must land
#      within 2x of its fair share (>= 1/4 of completed work) — the property
#      the old single FIFO lacked.
#   3. curl checks the typed error taxonomy against a quota-capped node:
#      413 too_large, 429 quota_exceeded, 400 bad_request (garbage payload,
#      bad tenant, bad digest), 404 not-found — and the per-tenant
#      /v1/results log pages back the solo scenario's rows.
#
# Invoked by `make trace-smoke` (part of `make check`); needs go + awk + curl.
set -eu

SMOKEDIR="${TMPDIR:-/tmp}/phast-trace-smoke"
rm -rf "$SMOKEDIR"
mkdir -p "$SMOKEDIR"

go build -o "$SMOKEDIR/phastd" ./cmd/phastd
go build -o "$SMOKEDIR/phastload" ./cmd/phastload

BASE="http://127.0.0.1"
SOLO=19390
P1=19391
P2=19392
P3=19393
QUOTA=19394
PEERS="$BASE:$P1,$BASE:$P2,$BASE:$P3"

fail() {
    echo "trace smoke FAIL: $*" >&2
    exit 1
}

command -v curl >/dev/null 2>&1 || fail "curl is required"

cleanup() {
    for f in "$SMOKEDIR"/pid-*; do
        [ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

start_node() { # port [extra args...]
    port=$1
    shift
    "$SMOKEDIR/phastd" -addr "127.0.0.1:$port" -cache "$SMOKEDIR/cache-$port" \
        -trace-dir "$SMOKEDIR/traces-$port" -metrics=false "$@" \
        >>"$SMOKEDIR/phastd-$port.log" 2>&1 &
    echo $! >"$SMOKEDIR/pid-$port"
}

FLEETFLAGS="-probe-interval 150ms -probe-timeout 100ms -probe-down-after 2 -probe-up-after 1"

# The solo node doubles as the fairness testbed: 2 workers make the WFQ pool
# the bottleneck, a roomy admitter keeps whole-server backpressure out of
# the fairness measurement, and -results-dir records rows for the /v1/results
# check. The fairness scenarios use long simulations (120k instructions,
# ~100ms+ each) deliberately: on a 1-2 core CI box, CPU-bound workers starve
# the goroutines that resubmit the light tenant's next request, and with
# short jobs the light queue runs dry at exactly the moments the scheduler
# would have preferred it — service time must dominate that scheduling noise
# for the completed-work split to reflect the WFQ policy.
start_node "$SOLO" -workers 2 -max-inflight 16 -queue 256 -results-dir "$SMOKEDIR/results-$SOLO"
# shellcheck disable=SC2086
start_node "$P1" -self "$BASE:$P1" -peers "$PEERS" $FLEETFLAGS
# shellcheck disable=SC2086
start_node "$P2" -self "$BASE:$P2" -peers "$PEERS" $FLEETFLAGS
# shellcheck disable=SC2086
start_node "$P3" -self "$BASE:$P3" -peers "$PEERS" $FLEETFLAGS

# The same upload spec on both scenarios generates byte-identical canonical
# traces, so both mint the same digest; the same mix seed then produces the
# same per-seed run set, and the digest artifact must agree row for row.
# The fleet scenario uploads to member 1 only — members 2 and 3 resolve the
# digest over the peer trace tier when the run mix lands on them.
cat >"$SMOKEDIR/scenario.json" <<EOF
{"scenarios": [
  {"name": "solo-trace", "targets": ["$BASE:$SOLO"], "tenant": "acme",
   "upload": {"app": "519.lbm", "insts": 12000, "seed": 7, "target": 0},
   "mode": "closed", "concurrency": 4, "requests": 120, "duration_ms": 120000,
   "dup": 0.6, "pool": 5,
   "config": {"App": "trace:@upload", "Predictor": "phast", "Instructions": 8000},
   "seed": 33},
  {"name": "fleet-trace", "targets": ["$BASE:$P1", "$BASE:$P2", "$BASE:$P3"], "tenant": "acme",
   "upload": {"app": "519.lbm", "insts": 12000, "seed": 7, "target": 0},
   "mode": "closed", "concurrency": 4, "requests": 120, "duration_ms": 120000,
   "dup": 0.6, "pool": 5,
   "config": {"App": "trace:@upload", "Predictor": "phast", "Instructions": 8000},
   "seed": 33},
  {"name": "heavy", "group": "fair", "targets": ["$BASE:$SOLO"], "tenant": "megacorp",
   "mode": "closed", "concurrency": 12, "duration_ms": 10000,
   "dup": 0,
   "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 120000},
   "seed": 41},
  {"name": "light", "group": "fair", "targets": ["$BASE:$SOLO"], "tenant": "startup",
   "mode": "closed", "concurrency": 2, "duration_ms": 10000,
   "dup": 0,
   "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 120000},
   "seed": 43}
]}
EOF

"$SMOKEDIR/phastload" -scenario "$SMOKEDIR/scenario.json" \
    -out "$SMOKEDIR/results.csv" -digests "$SMOKEDIR/digests.csv" \
    -wait 15s >"$SMOKEDIR/phastload.txt"

# --- 1. any-node run-by-digest, byte-identical to the solo reference ------

awk -F, '
NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
$col["target"] != "all" { next }
{
    name = $col["scenario"]
    seen[name] = 1
    ok[name] = $col["ok"]
    if ($col["failed"] != 0)     fail(name " had " $col["failed"] " failed requests")
    if ($col["mismatched"] != 0) fail(name " had " $col["mismatched"] " digest mismatches")
    if (name == "solo-trace" || name == "fleet-trace") {
        if ($col["rejected"] != 0)          fail(name " had " $col["rejected"] " rejected requests")
        if ($col["ok"] != $col["requests"]) fail(name ": ok " $col["ok"] " != requests " $col["requests"])
        if ($col["server_trace_uploads"] != 1)
            fail(name ": trace uploads delta " $col["server_trace_uploads"] ", want 1")
    }
    printf "trace smoke: %-12s tenant=%-9s %s requests, %s ok, %s unique, rps %s\n", \
        name, $col["tenant"], $col["requests"], ok[name], $col["unique"], $col["rps"]
}
END {
    if (!seen["solo-trace"] || !seen["fleet-trace"] || !seen["heavy"] || !seen["light"])
        fail("results.csv is missing a scenario row")
    # Two-tenant fairness: equal weights, so the light tenant'\''s fair share
    # of the saturated node is half the completed work; within 2x means at
    # least a quarter. A single FIFO would have given it ~1/7 (2 of 14
    # closed-loop workers).
    total = ok["heavy"] + ok["light"]
    if (total == 0)               fail("fairness group completed no work")
    if (4 * ok["light"] < total)
        fail("light tenant got " ok["light"] " of " total " completed runs, below half its fair share")
    printf "trace smoke: fairness     light %d / total %d completed (fair share %.2f, floor 0.25)\n", \
        ok["light"], total, ok["light"] / total
}
function fail(msg) { print "trace smoke FAIL: " msg > "/dev/stderr"; exit 1 }
' "$SMOKEDIR/results.csv"

awk -F, '$1 == "solo-trace"  { print $2 "," $3 }' "$SMOKEDIR/digests.csv" | sort >"$SMOKEDIR/solo.digests"
awk -F, '$1 == "fleet-trace" { print $2 "," $3 }' "$SMOKEDIR/digests.csv" | sort >"$SMOKEDIR/fleet.digests"
[ -s "$SMOKEDIR/solo.digests" ] || fail "no digests recorded"
if ! cmp -s "$SMOKEDIR/solo.digests" "$SMOKEDIR/fleet.digests"; then
    echo "trace smoke FAIL: fleet run-by-digest rows diverge from solo reference" >&2
    diff "$SMOKEDIR/solo.digests" "$SMOKEDIR/fleet.digests" | head -10 >&2
    exit 1
fi

# --- 2. typed error taxonomy over the wire --------------------------------

DIGEST=$(sed -n 's/.*as trace:\([0-9a-f]\{64\}\).*/\1/p' "$SMOKEDIR/phastload.txt" | head -1)
[ -n "$DIGEST" ] || fail "could not recover the uploaded trace digest from phastload output"

# Pull the canonical bytes back from the solo node; the size calibrates the
# quota node's caps so one node exercises both 413 (size cap, checked before
# decode) and 429 (tenant quota, checked after).
curl -sf "$BASE:$SOLO/v1/traces/$DIGEST" -o "$SMOKEDIR/trace.mdpt" \
    || fail "GET /v1/traces/$DIGEST from the solo node failed"
SIZE=$(wc -c <"$SMOKEDIR/trace.mdpt")
[ "$SIZE" -gt 64 ] || fail "fetched trace is implausibly small ($SIZE bytes)"

start_node "$QUOTA" -trace-max-bytes $((SIZE + 256)) -tenant-quota-bytes $((SIZE - 1))
for i in $(seq 1 50); do
    curl -sf "$BASE:$QUOTA/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

expect() { # name want_status want_kind curl-args...
    name=$1 want=$2 kind=$3
    shift 3
    status=$(curl -s -o "$SMOKEDIR/resp.json" -w '%{http_code}' "$@")
    [ "$status" = "$want" ] || fail "$name: status $status, want $want ($(cat "$SMOKEDIR/resp.json"))"
    if [ -n "$kind" ] && ! grep -q "\"kind\": *\"$kind\"" "$SMOKEDIR/resp.json"; then
        fail "$name: body lacks kind \"$kind\": $(cat "$SMOKEDIR/resp.json")"
    fi
    echo "trace smoke: $name -> $status $kind"
}

head -c $((SIZE + 1024)) /dev/zero >"$SMOKEDIR/oversized.bin"
expect "oversized upload   " 413 too_large \
    -X POST --data-binary @"$SMOKEDIR/oversized.bin" "$BASE:$QUOTA/v1/traces"
expect "quota-busting upload" 429 quota_exceeded \
    -X POST --data-binary @"$SMOKEDIR/trace.mdpt" "$BASE:$QUOTA/v1/traces"
expect "garbage upload     " 400 bad_request \
    -X POST --data-binary "not a trace" "$BASE:$QUOTA/v1/traces"
expect "bad tenant         " 400 bad_request \
    -X POST -H "X-Phast-Tenant: ../etc" --data-binary @"$SMOKEDIR/trace.mdpt" "$BASE:$QUOTA/v1/traces"
expect "unknown digest     " 404 not_found \
    "$BASE:$QUOTA/v1/traces/$(printf 'a%.0s' $(seq 1 64))"
expect "malformed digest   " 400 bad_request \
    "$BASE:$QUOTA/v1/traces/zz"

# --- 3. per-tenant results log --------------------------------------------

curl -sf "$BASE:$SOLO/v1/results?tenant=acme&limit=500" -o "$SMOKEDIR/results-acme.json" \
    || fail "GET /v1/results?tenant=acme failed"
ROWS=$(grep -o '"seq":' "$SMOKEDIR/results-acme.json" | wc -l)
[ "$ROWS" -ge 1 ] || fail "acme results log is empty after the solo-trace scenario"
if ! grep -q "trace:$DIGEST" "$SMOKEDIR/results-acme.json"; then
    fail "acme results log does not mention the uploaded trace config"
fi
echo "trace smoke: results log   $ROWS acme rows recorded, uploaded-trace config present"

echo "trace smoke ok: upload-once/run-anywhere bit-identical, light tenant within 2x fair share, typed 400/404/413/429 (artifacts: $SMOKEDIR)"
