#!/bin/sh
# Fleet smoke: boot a 1-node baseline and a 3-node consistent-hash fleet on
# loopback, drive a duplicate-heavy zipfian phastload scenario at each, and
# assert the fleet's defining property — cluster-wide coalescing: the total
# number of simulations executed across all three members equals the number
# of unique configs in the workload, no matter which member each request
# landed on. The side artifact is results.csv, the 1-node-vs-3-node
# comparison table (kept under $SMOKEDIR for inspection).
#
# Invoked by `make fleet-smoke` (part of `make check`); needs only go + awk.
set -eu

SMOKEDIR="${TMPDIR:-/tmp}/phast-fleet-smoke"
rm -rf "$SMOKEDIR"
mkdir -p "$SMOKEDIR"

go build -o "$SMOKEDIR/phastd" ./cmd/phastd
go build -o "$SMOKEDIR/phastload" ./cmd/phastload

BASE="http://127.0.0.1"
SOLO_PORT=19190
P1=19191
P2=19192
P3=19193
PEERS="$BASE:$P1,$BASE:$P2,$BASE:$P3"

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

start_node() { # port [fleet args...]
    port=$1
    shift
    "$SMOKEDIR/phastd" -addr "127.0.0.1:$port" -cache "$SMOKEDIR/cache-$port" \
        -max-inflight 4 -queue 64 -metrics=false "$@" \
        >"$SMOKEDIR/phastd-$port.log" 2>&1 &
    PIDS="$PIDS $!"
}

start_node "$SOLO_PORT"
start_node "$P1" -self "$BASE:$P1" -peers "$PEERS"
start_node "$P2" -self "$BASE:$P2" -peers "$PEERS"
start_node "$P3" -self "$BASE:$P3" -peers "$PEERS"

# Duplicate-heavy zipfian mix: 80 requests, ~60% re-ask one of 6 pool
# configs (skewed so a couple go viral), the rest are unique seeds. The
# same mix (seed 11) hits the solo node and then the fleet.
cat >"$SMOKEDIR/scenario.json" <<EOF
{"scenarios": [
  {"name": "solo-1n", "targets": ["$BASE:$SOLO_PORT"],
   "mode": "closed", "concurrency": 8, "requests": 80, "duration_ms": 60000,
   "dup": 0.6, "pool": 6, "zipf_s": 1.3,
   "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 8000},
   "seed": 11},
  {"name": "fleet-3n", "targets": ["$BASE:$P1", "$BASE:$P2", "$BASE:$P3"],
   "mode": "closed", "concurrency": 8, "requests": 80, "duration_ms": 60000,
   "dup": 0.6, "pool": 6, "zipf_s": 1.3,
   "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 8000},
   "seed": 11}
]}
EOF

"$SMOKEDIR/phastload" -scenario "$SMOKEDIR/scenario.json" \
    -out "$SMOKEDIR/results.csv" -wait 15s >"$SMOKEDIR/phastload.txt"

# Assertions over the CSV (columns located by header name, not position).
# Only the target="all" fleet-aggregate rows carry client-side outcomes;
# per-member rows are server-side deltas only.
awk -F, '
NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
$col["target"] != "all" { next }
{
    name      = $col["scenario"]
    requests  = $col["requests"]
    ok        = $col["ok"]
    rejected  = $col["rejected"]
    failed    = $col["failed"]
    unique    = $col["unique"]
    simulated = $col["runs_simulated"]
    seen[name] = 1
    if (failed != 0)       fail(name " had " failed " failed requests")
    if (rejected != 0)     fail(name " had " rejected " rejected requests")
    if (ok != requests)    fail(name ": ok " ok " != requests " requests)
    if (simulated != unique)
        fail(name ": executed " simulated " simulations for " unique " unique configs")
    printf "fleet smoke: %-8s %s requests, %s unique, %s simulated\n", name, requests, unique, simulated
}
function fail(msg) { print "fleet smoke FAIL: " msg > "/dev/stderr"; exit 1 }
END {
    if (!seen["solo-1n"] || !seen["fleet-3n"])
        fail("results.csv is missing a scenario row")
}
' "$SMOKEDIR/results.csv"

echo "fleet smoke ok: cluster-wide coalescing held (table: $SMOKEDIR/results.csv)"
