#!/bin/sh
# Fleet chaos: boot a solo reference node and a 3-node self-healing fleet on
# loopback, drive the SAME workload mix at both, and kill -9 one fleet
# member mid-run (restarting it seconds later). The fleet must ride through
# the outage with zero client-visible failures: the health prober remaps the
# dead member's ring segments, peer hops retry behind circuit breakers, the
# client's one-pass failover covers requests that were in flight to the dead
# node, and every result row must be byte-identical to the solo reference
# (per-seed sha256 digests). Cluster-wide work stays bounded: at most 2x
# unique configs simulated (the remapped owner may redo work the dead node's
# reset counters no longer admit to).
#
# Invoked by `make fleet-chaos` (part of `make check`); needs only go + awk.
set -eu

SMOKEDIR="${TMPDIR:-/tmp}/phast-fleet-chaos"
rm -rf "$SMOKEDIR"
mkdir -p "$SMOKEDIR"

go build -o "$SMOKEDIR/phastd" ./cmd/phastd
go build -o "$SMOKEDIR/phastload" ./cmd/phastload

BASE="http://127.0.0.1"
SOLO_PORT=19290
P1=19291
P2=19292
P3=19293
PEERS="$BASE:$P1,$BASE:$P2,$BASE:$P3"

cleanup() {
    for f in "$SMOKEDIR"/pid-*; do
        [ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

# Each node gets a launcher script so a chaos event can restart it with the
# exact same flags (and the same cache dir — the disk tier must survive a
# crash). The launcher records the new pid for kill/cleanup.
make_launcher() { # port [fleet args...]
    port=$1
    shift
    {
        echo '#!/bin/sh'
        printf '%s -addr 127.0.0.1:%s -cache %s -max-inflight 4 -queue 64 -metrics=false' \
            "$SMOKEDIR/phastd" "$port" "$SMOKEDIR/cache-$port"
        for arg in "$@"; do printf ' %s' "$arg"; done
        printf ' >>%s 2>&1 &\n' "$SMOKEDIR/phastd-$port.log"
        printf 'echo $! >%s\n' "$SMOKEDIR/pid-$port"
    } >"$SMOKEDIR/run-$port.sh"
    chmod +x "$SMOKEDIR/run-$port.sh"
    "$SMOKEDIR/run-$port.sh"
}

FLEETFLAGS="-probe-interval 150ms -probe-timeout 100ms -probe-down-after 2 -probe-up-after 1
            -proxy-retries 3 -retry-backoff 25ms
            -breaker-threshold 3 -breaker-open-for 500ms -hedge-delay 40ms"

make_launcher "$SOLO_PORT"
# shellcheck disable=SC2086
make_launcher "$P1" -self "$BASE:$P1" -peers "$PEERS" $FLEETFLAGS
# shellcheck disable=SC2086
make_launcher "$P2" -self "$BASE:$P2" -peers "$PEERS" $FLEETFLAGS
# shellcheck disable=SC2086
make_launcher "$P3" -self "$BASE:$P3" -peers "$PEERS" $FLEETFLAGS

# One chaos event: kill node 2 outright, leave it dead for 1.5s (long enough
# for probes at 150ms x down-after 2 to remap it), restart it from the same
# launcher, then give the survivors' probers a second to observe the
# recovery so the up-transition lands inside this scenario's counter delta.
CHAOS="kill -9 \$(cat $SMOKEDIR/pid-$P2); sleep 1.5; $SMOKEDIR/run-$P2.sh; sleep 1"

# The same duplicate-heavy mix (seed 23) hits the solo reference and then
# the fleet under chaos; think_ms paces the fleet run so the outage window
# lands mid-load. failover lets the client walk the surviving targets when
# an attempt dies with the node.
cat >"$SMOKEDIR/scenario.json" <<EOF
{"scenarios": [
  {"name": "solo-ref", "targets": ["$BASE:$SOLO_PORT"],
   "mode": "closed", "concurrency": 8, "requests": 600, "duration_ms": 120000,
   "dup": 0.5, "pool": 6, "zipf_s": 1.3,
   "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 8000},
   "seed": 23},
  {"name": "chaos-fleet", "targets": ["$BASE:$P1", "$BASE:$P2", "$BASE:$P3"],
   "mode": "closed", "concurrency": 8, "requests": 600, "duration_ms": 120000,
   "dup": 0.5, "pool": 6, "zipf_s": 1.3, "think_ms": 25, "failover": true,
   "chaos": [{"after_requests": 60, "exec": "$CHAOS"}],
   "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 8000},
   "seed": 23}
]}
EOF

"$SMOKEDIR/phastload" -scenario "$SMOKEDIR/scenario.json" \
    -out "$SMOKEDIR/results.csv" -digests "$SMOKEDIR/digests.csv" \
    -wait 15s >"$SMOKEDIR/phastload.txt"

# Assertions over the fleet-aggregate CSV rows (columns by header name).
awk -F, '
NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
$col["target"] != "all" { next }
{
    name      = $col["scenario"]
    requests  = $col["requests"]
    ok        = $col["ok"]
    unique    = $col["unique"]
    simulated = $col["runs_simulated"]
    seen[name] = 1
    if ($col["failed"] != 0)     fail(name " had " $col["failed"] " failed requests")
    if ($col["rejected"] != 0)   fail(name " had " $col["rejected"] " rejected requests")
    if ($col["mismatched"] != 0) fail(name " had " $col["mismatched"] " digest mismatches")
    if (ok != requests)          fail(name ": ok " ok " != requests " requests)
    if (name == "solo-ref" && simulated != unique)
        fail("solo-ref executed " simulated " simulations for " unique " unique configs")
    if (name == "chaos-fleet") {
        if (simulated > 2 * unique)
            fail("chaos-fleet executed " simulated " simulations for " unique " unique configs (> 2x)")
        if ($col["failovers"] < 1)
            fail("chaos-fleet saw no client failovers: did the kill land mid-load?")
        if ($col["cluster_transitions_down"] < 1 || $col["cluster_transitions_up"] < 1)
            fail("chaos-fleet: no down/up transition recorded (down=" \
                 $col["cluster_transitions_down"] " up=" $col["cluster_transitions_up"] ")")
    }
    printf "fleet chaos: %-12s %s requests, %s ok, %s unique, %s simulated, %s failovers, down/up %s/%s, breaker opened %s\n", \
        name, requests, ok, unique, simulated, $col["failovers"], \
        $col["cluster_transitions_down"], $col["cluster_transitions_up"], $col["server_breaker_opened"]
}
function fail(msg) { print "fleet chaos FAIL: " msg > "/dev/stderr"; exit 1 }
END {
    if (!seen["solo-ref"] || !seen["chaos-fleet"])
        fail("results.csv is missing a scenario row")
}
' "$SMOKEDIR/results.csv"

# Bit-exactness: the chaos fleet must have produced byte-identical result
# rows to the solo reference for every seed in the mix.
awk -F, '$1 == "solo-ref"    { print $2 "," $3 }' "$SMOKEDIR/digests.csv" | sort >"$SMOKEDIR/solo.digests"
awk -F, '$1 == "chaos-fleet" { print $2 "," $3 }' "$SMOKEDIR/digests.csv" | sort >"$SMOKEDIR/fleet.digests"
if ! cmp -s "$SMOKEDIR/solo.digests" "$SMOKEDIR/fleet.digests"; then
    echo "fleet chaos FAIL: chaos-fleet digests diverge from solo reference" >&2
    diff "$SMOKEDIR/solo.digests" "$SMOKEDIR/fleet.digests" | head -10 >&2
    exit 1
fi
if ! [ -s "$SMOKEDIR/solo.digests" ]; then
    echo "fleet chaos FAIL: no digests recorded" >&2
    exit 1
fi

# Post-mortem fleet view: every member should report the whole fleet live
# again (best-effort when an HTTP client is available; the counter
# assertions above are the authoritative check).
if command -v curl >/dev/null 2>&1; then
    for port in $P1 $P2 $P3; do
        curl -s "$BASE:$port/v1/cluster" >"$SMOKEDIR/cluster-$port.json" || true
        if grep -q '"state":"down"' "$SMOKEDIR/cluster-$port.json"; then
            echo "fleet chaos FAIL: member $port still reports a down peer after recovery" >&2
            exit 1
        fi
    done
fi

echo "fleet chaos ok: one node killed and restarted mid-run, zero client-visible failures, bit-identical results (artifacts: $SMOKEDIR)"
