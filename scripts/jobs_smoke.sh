#!/bin/sh
# Jobs smoke: end-to-end proof of the design-space autotuner (DESIGN.md §18).
# Boots a 3-node fleet whose first member runs the job controller
# (-jobs-dir), then:
#
#   1. curl submits a successive-halving job over 12 candidates
#      (3 predictors + 3 set counts + 3 table counts + 3 confidence caps,
#      eta 2, 3 rungs: 12@10k -> 6@20k -> 3@40k instructions over 2 apps =
#      42 unique simulations), waits for rung 0 to checkpoint, and
#      kill -9s the member mid-search.
#   2. The member restarts on the same -cache/-jobs-dir and resumes the job
#      from its checkpoint unprompted. Zero repeat simulations: the two
#      lives together simulate at most the 42 unique configs, and the
#      resumed life stays within the post-rung-0 remainder (18) — rung 0
#      came back from the persistent run cache, not the simulator.
#   3. phastload resubmits the same spec as a job-only scenario: the digest
#      is the job's identity, so the finished job answers idempotently with
#      cluster-wide runs_simulated unchanged (the CSV delta row must say 0),
#      and the winner's table and config land as artifacts.
#   4. paperfigs -config replays the winner's config against a fresh cache
#      (the solo reference) — its table must be byte-identical to the
#      winner table the job reported.
#   5. DELETE /v1/jobs/{id} cancels a second mid-flight job.
#
# Invoked by `make jobs-smoke` (part of `make check`); needs go + awk + curl.
set -eu

SMOKEDIR="${TMPDIR:-/tmp}/phast-jobs-smoke"
rm -rf "$SMOKEDIR"
mkdir -p "$SMOKEDIR"

go build -o "$SMOKEDIR/phastd" ./cmd/phastd
go build -o "$SMOKEDIR/phastload" ./cmd/phastload
go build -o "$SMOKEDIR/paperfigs" ./cmd/paperfigs

BASE="http://127.0.0.1"
P1=19490
P2=19491
P3=19492
PEERS="$BASE:$P1,$BASE:$P2,$BASE:$P3"
APPS="511.povray,519.lbm"

fail() {
    echo "jobs smoke FAIL: $*" >&2
    exit 1
}

command -v curl >/dev/null 2>&1 || fail "curl is required"

cleanup() {
    for f in "$SMOKEDIR"/pid-*; do
        [ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

FLEETFLAGS="-probe-interval 150ms -probe-timeout 100ms -probe-down-after 2 -probe-up-after 1"

start_node() { # port [extra args...]
    port=$1
    shift
    # shellcheck disable=SC2086
    "$SMOKEDIR/phastd" -addr "127.0.0.1:$port" -cache "$SMOKEDIR/cache-$port" \
        -self "$BASE:$port" -peers "$PEERS" $FLEETFLAGS -metrics=false "$@" \
        >>"$SMOKEDIR/phastd-$port.log" 2>&1 &
    echo $! >"$SMOKEDIR/pid-$port"
}

wait_healthy() { # port
    for i in $(seq 1 50); do
        curl -sf "$BASE:$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    fail "node $1 never became healthy"
}

# Only member 1 runs the controller; 2 workers keep the search slow enough
# to kill mid-flight deterministically.
start_node "$P1" -jobs-dir "$SMOKEDIR/jobs" -workers 2
start_node "$P2"
start_node "$P3"
wait_healthy "$P1"
wait_healthy "$P2"
wait_healthy "$P3"

# jq-free field readers for the tab-indented one-field-per-line JSON the
# daemon writes.
jfield() { # file key -> value (string fields unquoted, no trailing comma)
    sed -n 's/^\t*"'"$2"'": "\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1/p' "$1" | head -1
}
simulated() { # port -> cluster member's runs.simulated counter
    curl -sf "$BASE:$1/metrics" | awk '$1 == "runs.simulated" { print $2 }'
}

cat >"$SMOKEDIR/spec.json" <<EOF
{
  "space": {
    "predictors": ["storesets", "nosq", "phast:128"],
    "phast_sets": [64, 256, 1024],
    "phast_tables": [1, 2, 4],
    "phast_conf": [3, 7, 15]
  },
  "strategy": "halving",
  "halving": {"eta": 2, "rungs": 3},
  "apps": ["511.povray", "519.lbm"],
  "instructions": 40000
}
EOF

# --- 1. submit, wait for the rung-0 checkpoint, kill -9 -------------------

curl -sf -X POST -H "X-Phast-Tenant: acme" --data-binary @"$SMOKEDIR/spec.json" \
    "$BASE:$P1/v1/jobs" -o "$SMOKEDIR/submit.json" || fail "POST /v1/jobs failed"
JOB=$(jfield "$SMOKEDIR/submit.json" id)
[ -n "$JOB" ] || fail "submission returned no job id: $(cat "$SMOKEDIR/submit.json")"
PLANNED=$(jfield "$SMOKEDIR/submit.json" planned_trials)
[ "$PLANNED" = "21" ] || fail "planned trials $PLANNED, want 21 (12+6+3)"
echo "jobs smoke: submitted job ${JOB%"${JOB#????????????}"} (21 trials over 12 candidates planned)"

STATE=running
RUNG=0
for i in $(seq 1 400); do
    curl -sf "$BASE:$P1/v1/jobs/$JOB" -o "$SMOKEDIR/poll.json" || fail "GET job status failed"
    STATE=$(jfield "$SMOKEDIR/poll.json" state)
    RUNG=$(jfield "$SMOKEDIR/poll.json" next_rung)
    RUNG=${RUNG:-0}
    [ "$STATE" = "running" ] || break
    [ "$RUNG" -ge 1 ] && break
    sleep 0.025
done
[ "$STATE" = "running" ] || fail "job reached $STATE before the kill — raise the spec's instructions"
[ "$RUNG" -ge 1 ] || fail "rung 0 never completed"

S1=$(simulated "$P1")
kill -9 "$(cat "$SMOKEDIR/pid-$P1")"
rm -f "$SMOKEDIR/pid-$P1"
echo "jobs smoke: killed member 1 after rung $((RUNG - 1)) ($S1 simulations in life 1)"
[ "$S1" -ge 24 ] || fail "life 1 simulated $S1 runs, want >= 24 (rung 0 = 12 candidates x 2 apps)"
[ "$S1" -lt 42 ] || fail "life 1 already simulated all $S1 runs — the kill landed too late"

# --- 2. restart, auto-resume, zero repeat simulations ---------------------

start_node "$P1" -jobs-dir "$SMOKEDIR/jobs" -workers 2
wait_healthy "$P1"
grep -q "resumed 1 checkpointed job" "$SMOKEDIR/phastd-$P1.log" \
    || fail "restarted member did not resume the job"

for i in $(seq 1 1200); do
    curl -sf "$BASE:$P1/v1/jobs/$JOB" -o "$SMOKEDIR/poll.json" || fail "GET job status failed"
    STATE=$(jfield "$SMOKEDIR/poll.json" state)
    [ "$STATE" = "running" ] || break
    sleep 0.05
done
[ "$STATE" = "done" ] || fail "resumed job ended $STATE: $(cat "$SMOKEDIR/poll.json")"
DIGEST=$(jfield "$SMOKEDIR/poll.json" result_digest)
[ -n "$DIGEST" ] || fail "finished job carries no result digest"

S2=$(simulated "$P1")
echo "jobs smoke: resumed job done ($S2 simulations in life 2, digest ${DIGEST%"${DIGEST#????????????}"})"
[ $((S1 + S2)) -le 42 ] || fail "lives simulated $S1 + $S2 > 42 unique configs — the resume repeated cached work"
[ "$S2" -le 18 ] || fail "life 2 simulated $S2 runs, want <= 18 — rung 0 should have come from the cache"

# --- 3. idempotent resubmission via phastload: runs_simulated unchanged ---

SPEC=$(cat "$SMOKEDIR/spec.json")
cat >"$SMOKEDIR/scenario.json" <<EOF
{"scenarios": [
  {"name": "job-rerun", "targets": ["$BASE:$P1", "$BASE:$P2", "$BASE:$P3"],
   "tenant": "acme",
   "job": {"spec": $SPEC, "target": 0,
           "table_out": "$SMOKEDIR/winner.txt", "config_out": "$SMOKEDIR/winner.json"}}
]}
EOF
"$SMOKEDIR/phastload" -scenario "$SMOKEDIR/scenario.json" \
    -out "$SMOKEDIR/results.csv" -wait 15s >"$SMOKEDIR/phastload.txt"
grep -q "job ${JOB%"${JOB#????????????}"}" "$SMOKEDIR/phastload.txt" \
    || fail "phastload resubmission minted a different job id (spec digest unstable)"

awk -F, '
NR == 1 { for (i = 1; i <= NF; i++) col[$i] = i; next }
$col["target"] != "all" { next }
{
    if ($col["job_state"] != "done")
        fail("resubmitted job state " $col["job_state"] ", want done")
    if ($col["job_trials"] != 21)
        fail("resubmitted job reports " $col["job_trials"] " trials, want 21")
    if ($col["runs_simulated"] != 0)
        fail("idempotent resubmission simulated " $col["runs_simulated"] " runs cluster-wide, want 0")
    found = 1
}
END { if (!found) fail("results.csv has no cluster-wide job-rerun row") }
function fail(msg) { print "jobs smoke FAIL: " msg > "/dev/stderr"; exit 1 }
' "$SMOKEDIR/results.csv"
echo "jobs smoke: idempotent resubmission joined the finished job, cluster-wide runs_simulated unchanged"

# --- 4. winner table byte-identical to a solo paperfigs reference ---------

[ -s "$SMOKEDIR/winner.txt" ] || fail "phastload wrote no winner table"
[ -s "$SMOKEDIR/winner.json" ] || fail "phastload wrote no winner config"
"$SMOKEDIR/paperfigs" -config "$(cat "$SMOKEDIR/winner.json")" -apps "$APPS" \
    -cache "$SMOKEDIR/cache-ref" >"$SMOKEDIR/reference.txt" 2>"$SMOKEDIR/reference.err" \
    || fail "paperfigs -config replay failed: $(cat "$SMOKEDIR/reference.err")"
if ! cmp -s "$SMOKEDIR/winner.txt" "$SMOKEDIR/reference.txt"; then
    echo "jobs smoke FAIL: winner table diverges from the solo paperfigs reference" >&2
    diff "$SMOKEDIR/winner.txt" "$SMOKEDIR/reference.txt" | head -10 >&2
    exit 1
fi
echo "jobs smoke: winner table byte-identical to solo paperfigs -config replay"

# --- 5. DELETE cancels a mid-flight job -----------------------------------

# A different fidelity is a different spec (new digest) whose configs are
# all cache misses — the search has real work in flight to cancel.
sed 's/"instructions": 40000/"instructions": 48000/' \
    "$SMOKEDIR/spec.json" >"$SMOKEDIR/spec2.json"
curl -sf -X POST -H "X-Phast-Tenant: acme" --data-binary @"$SMOKEDIR/spec2.json" \
    "$BASE:$P1/v1/jobs" -o "$SMOKEDIR/submit2.json" || fail "second POST /v1/jobs failed"
JOB2=$(jfield "$SMOKEDIR/submit2.json" id)
[ "$JOB2" != "$JOB" ] || fail "a different fidelity reused the first job's digest"
curl -sf -X DELETE "$BASE:$P1/v1/jobs/$JOB2" -o "$SMOKEDIR/cancel.json" \
    || fail "DELETE /v1/jobs/$JOB2 failed"
CSTATE=$(jfield "$SMOKEDIR/cancel.json" state)
[ "$CSTATE" = "cancelled" ] || fail "DELETE left the job $CSTATE, want cancelled"
echo "jobs smoke: DELETE cancelled the second job mid-flight"

echo "jobs smoke ok: kill -9 resume with zero repeat simulations, idempotent resubmit, winner table reproducible via paperfigs (artifacts: $SMOKEDIR)"
