# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench figures examples clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# One benchmark per paper figure/table (subset, laptop-sized). Use
# BENCHFLAGS="-repro.full -repro.v" for the whole suite with printed tables.
bench:
	go test -bench=. -benchmem $(BENCHFLAGS) .

# Regenerate every figure and table into results/ (~30-45 min on one core).
figures:
	mkdir -p results
	go run ./cmd/paperfigs -fig all -n 300000 | tee results/paperfigs_full.txt

examples:
	go run ./examples/quickstart
	go run ./examples/predictorapi
	go run ./examples/compare
	go run ./examples/budgetsweep
	go run ./examples/customworkload

clean:
	rm -f test_output.txt bench_output.txt
