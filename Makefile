# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench figures examples clean check cache-smoke

all: build test

# Full pre-merge gate: vet + build + race-enabled tests + a cached-vs-
# uncached paperfigs smoke proving the persistent run cache reproduces
# byte-identical tables with zero re-simulations.
check:
	go vet ./...
	go build ./...
	go test -race ./...
	$(MAKE) cache-smoke

SMOKEDIR := $(or $(TMPDIR),/tmp)/phast-cache-smoke
SMOKEFLAGS := -fig fig12 -apps 511.povray,519.lbm -n 30000 -cache $(SMOKEDIR)/cache -metrics

cache-smoke:
	rm -rf $(SMOKEDIR)
	mkdir -p $(SMOKEDIR)
	go run ./cmd/paperfigs $(SMOKEFLAGS) >$(SMOKEDIR)/first.txt 2>$(SMOKEDIR)/first.err
	go run ./cmd/paperfigs $(SMOKEFLAGS) >$(SMOKEDIR)/second.txt 2>$(SMOKEDIR)/second.err
	cmp $(SMOKEDIR)/first.txt $(SMOKEDIR)/second.txt
	grep -Eq '^runs.simulated +0 *$$' $(SMOKEDIR)/second.err
	@echo "cache smoke ok: byte-identical tables, zero re-simulations"

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# One benchmark per paper figure/table (subset, laptop-sized). Use
# BENCHFLAGS="-repro.full -repro.v" for the whole suite with printed tables.
bench:
	go test -bench=. -benchmem $(BENCHFLAGS) .

# Regenerate every figure and table into results/ (~30-45 min on one core).
figures:
	mkdir -p results
	go run ./cmd/paperfigs -fig all -n 300000 | tee results/paperfigs_full.txt

examples:
	go run ./examples/quickstart
	go run ./examples/predictorapi
	go run ./examples/compare
	go run ./examples/budgetsweep
	go run ./examples/customworkload

clean:
	rm -f test_output.txt bench_output.txt
