# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench benchdiff figures examples clean check cache-smoke bench-smoke fleet-smoke fleet-chaos trace-smoke jobs-smoke chaos api-smoke fuzz cover

all: build test

# Full pre-merge gate: vet + build + race-enabled tests + the fault-injection
# suite under -race + a cached-vs-uncached paperfigs smoke proving the
# persistent run cache reproduces byte-identical tables with zero
# re-simulations, a one-iteration pass over every benchmark, and a throughput
# comparison against the committed BENCH.json baseline (fails on a >10%
# uops/s regression).
check:
	go vet ./...
	go build ./...
	go test -race ./...
	$(MAKE) chaos
	$(MAKE) examples
	$(MAKE) api-smoke
	$(MAKE) cache-smoke
	$(MAKE) fleet-smoke
	$(MAKE) fleet-chaos
	$(MAKE) trace-smoke
	$(MAKE) jobs-smoke
	$(MAKE) bench-smoke
	$(MAKE) benchdiff

# Fault-injection (chaos) suite: injected panics, stalls, disk-write failures
# and corrupt cache entries must all be contained — typed per-config errors,
# bit-identical survivors, no leaked goroutines — under the race detector.
chaos:
	go test -race -run 'Chaos' ./internal/...
	@echo "chaos ok: injected faults contained under -race"

# HTTP API smoke: spawn phastd's serving stack on a random port, run the same
# config over the wire and in-process, and require byte-identical rows.
api-smoke:
	go run ./examples/predictorapi
	@echo "api smoke ok: HTTP rows byte-identical to in-process runs"

SMOKEDIR := $(or $(TMPDIR),/tmp)/phast-cache-smoke
SMOKEFLAGS := -fig fig12 -apps 511.povray,519.lbm -n 30000 -cache $(SMOKEDIR)/cache -metrics

cache-smoke:
	rm -rf $(SMOKEDIR)
	mkdir -p $(SMOKEDIR)
	go run ./cmd/paperfigs $(SMOKEFLAGS) >$(SMOKEDIR)/first.txt 2>$(SMOKEDIR)/first.err
	go run ./cmd/paperfigs $(SMOKEFLAGS) >$(SMOKEDIR)/second.txt 2>$(SMOKEDIR)/second.err
	cmp $(SMOKEDIR)/first.txt $(SMOKEDIR)/second.txt
	grep -Eq '^runs.simulated +0 *$$' $(SMOKEDIR)/second.err
	@echo "cache smoke ok: byte-identical tables, zero re-simulations"

# Cluster smoke: a 3-node loopback fleet plus a 1-node baseline under a
# duplicate-heavy zipfian phastload scenario; asserts cluster-wide coalescing
# (fleet-wide simulations executed == unique configs) and leaves the
# 1-vs-3-node results.csv comparison table behind for inspection.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Self-healing smoke: kill -9 one member of a 3-node fleet mid-scenario and
# restart it seconds later; asserts zero client-visible failures, per-seed
# result digests byte-identical to a solo reference node, health/breaker
# transitions recorded, and cluster-wide simulations bounded (DESIGN.md §16).
fleet-chaos:
	sh scripts/fleet_chaos.sh

# Multi-tenant trace ingestion smoke: upload a trace to one fleet member and
# run it by digest round-robined across all members, byte-identical to a solo
# reference; saturate one node with a heavy and a light tenant concurrently
# and assert the light tenant lands within 2x of its fair share; check the
# typed 400/404/413/429 error taxonomy and the per-tenant results log over
# the wire (DESIGN.md §17).
trace-smoke:
	sh scripts/trace_smoke.sh

# Autotuner smoke: a 3-node fleet runs a successive-halving job over 12
# candidates; the controller node is kill -9'd mid-search and restarted —
# the job resumes from its checkpoint with zero repeat simulations, an
# idempotent resubmission leaves cluster-wide runs_simulated unchanged, and
# the winner's table is byte-identical to a solo paperfigs -config replay
# (DESIGN.md §18).
jobs-smoke:
	sh scripts/jobs_smoke.sh

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# One benchmark per paper figure/table (subset, laptop-sized). Use
# BENCHFLAGS="-repro.full -repro.v" for the whole suite with printed tables.
# Results are recorded to BENCH.json; commit it to move the regression
# baseline that `make check` compares against. Provenance (SHA, date) is
# captured here and passed in as flags — the recorder itself never reads the
# clock or the repository.
BENCH_SHA  := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
BENCH_DATE := $(shell date -u +%Y-%m-%dT%H:%M:%SZ)

bench:
	go test -run '^$$' -bench=. -benchmem $(BENCHFLAGS) . | tee bench_output.txt
	go run ./cmd/benchreg -o BENCH.json -sha $(BENCH_SHA) -date $(BENCH_DATE) < bench_output.txt

# Quick sanity pass: every benchmark must still run (one iteration each).
bench-smoke:
	go test -run '^$$' -bench=. -benchtime=1x -benchmem . >/dev/null

# Re-measure simulator throughput and gate it against the committed
# BENCH.json (>10% uops/s regression fails).
benchdiff:
	go test -run '^$$' -bench='SimulatorThroughput|IntervalParallel|SharedTraceSweep' \
		-benchtime=5x -benchmem . \
		| go run ./cmd/benchreg -o $(or $(TMPDIR),/tmp)/bench_head.json \
			-sha $(BENCH_SHA) -date $(BENCH_DATE)
	go run ./cmd/benchreg -compare -old BENCH.json \
		-new $(or $(TMPDIR),/tmp)/bench_head.json \
		-bench SimulatorThroughput -max-regress 0.10
	go run ./cmd/benchreg -compare -old BENCH.json \
		-new $(or $(TMPDIR),/tmp)/bench_head.json \
		-bench IntervalParallel -max-regress 0.25
	go run ./cmd/benchreg -compare -old BENCH.json \
		-new $(or $(TMPDIR),/tmp)/bench_head.json \
		-bench SharedTraceSweep -max-regress 0.25

# Regenerate every figure and table into results/ (~30-45 min on one core).
figures:
	mkdir -p results
	go run ./cmd/paperfigs -fig all -n 300000 | tee results/paperfigs_full.txt

# Every example must at least compile; the two fast ones also run headless
# as living documentation tests (predictorapi runs under api-smoke, and the
# long-running budgetsweep/customworkload stay build-only here — run them
# directly when wanted).
examples:
	go build ./examples/...
	go run ./examples/quickstart
	go run ./examples/compare

# Native Go fuzzing over the externally-driven surfaces: arbitrary micro-op
# streams through the oracle-verified pipeline, arbitrary Configs through
# the sim facade, arbitrary bytes through the HTTP wire decoder, arbitrary
# job-spec JSON through the autotuner's strict parser.
# Seed corpora are checked in under internal/*/testdata/fuzz/; crashers that
# fuzzing discovers land next to them (gitignored) — promote one to a
# seed-* file to pin its regression test.
FUZZTIME ?= 30s

fuzz:
	go test -run '^$$' -fuzz '^FuzzPipelineTrace$$' -fuzztime $(FUZZTIME) ./internal/oracle
	go test -run '^$$' -fuzz '^FuzzSimConfig$$' -fuzztime $(FUZZTIME) ./internal/sim
	go test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME) ./internal/server
	go test -run '^$$' -fuzz '^FuzzJobSpec$$' -fuzztime $(FUZZTIME) ./internal/jobs
	@echo "fuzz ok: $(FUZZTIME) per target, no crashers"

# Per-package and total statement coverage; cover.out feeds
# `go tool cover -html=cover.out` and the CI artifact upload.
cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1

clean:
	rm -f test_output.txt bench_output.txt cover.out
