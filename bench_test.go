package repro

// One benchmark per table and figure of the paper (DESIGN.md §6). Each
// benchmark regenerates its experiment and prints the same rows/series the
// paper reports; timing measures the full experiment (simulation runs are
// memoised inside a benchmark, so ns/op beyond the first iteration reflects
// aggregation cost only — the printed tables are the deliverable).
//
// By default benchmarks run a representative app subset at a reduced
// instruction count so a full `go test -bench=.` pass stays around a
// quarter hour on one core. Flags:
//
//	-repro.full        use the whole suite
//	-repro.n=N         instructions per run (default 100000)
//	-repro.v           print the regenerated tables to stdout

import (
	"flag"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

var (
	benchFull    = flag.Bool("repro.full", false, "benchmarks use the whole suite")
	benchInstrs  = flag.Int("repro.n", 100_000, "instructions per benchmark run")
	benchVerbose = flag.Bool("repro.v", false, "print regenerated tables to stdout")
)

// benchApps is the default subset: one app per behaviour class the paper
// highlights (path-driven conflicts, the Store Sets pathology, data-
// dependent conflicts, path explosion, multi-store overlap, streaming).
var benchApps = []string{
	"511.povray", "500.perlbench_3", "541.leela", "525.x264_3",
}

func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	apps := benchApps
	if *benchFull {
		apps = workload.Names()
	}
	var out io.Writer = io.Discard
	if *benchVerbose {
		out = os.Stdout
	}
	return experiments.NewRunner(experiments.Options{
		Apps: apps, Instructions: *benchInstrs, Out: out,
	})
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01_MPKITimeline(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkFig02a_GenerationMPKI(b *testing.B)   { benchExperiment(b, "fig2a") }
func BenchmarkFig02b_GenerationGap(b *testing.B)    { benchExperiment(b, "fig2b") }
func BenchmarkFig04_MultiStoreLoads(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig06_Unlimited(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig07_UnlimitedPHASTIPC(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig08_UnlimitedPHASTMPKI(b *testing.B) {
	benchExperiment(b, "fig8")
}
func BenchmarkFig09_PathsPerApp(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10_ConflictHistLen(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11_MaxHistLen(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12_FwdFilter(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13_PerfVsStorage(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14_MPKIPerApp(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15_IPCPerApp(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16_Energy(b *testing.B)          { benchExperiment(b, "fig16") }
func BenchmarkTable1_SystemConfig(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2_PredictorConfigs(b *testing.B) {
	benchExperiment(b, "table2")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (micro-ops per
// second through the timing model) — the practical limit on experiment size.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Simulate(Config{
			App: "511.povray", Predictor: "phast", Instructions: *benchInstrs,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Committed)) // "bytes" = committed micro-ops
	}
}

// BenchmarkIntervalParallel measures interval-parallel simulation speed on
// the same workload as BenchmarkSimulatorThroughput: the stream is cut into
// min(8, NumCPU) oracle-gated intervals (at least 2) simulated concurrently
// and stitched (internal/parsim). On a host with 4+ cores the uops/s row
// should reach an integer factor of the sequential SimulatorThroughput row;
// on one core it prices the checkpoint-pass and warm-up overhead instead.
func BenchmarkIntervalParallel(b *testing.B) {
	intervals := runtime.NumCPU()
	if intervals > 8 {
		intervals = 8
	}
	if intervals < 2 {
		intervals = 2
	}
	for i := 0; i < b.N; i++ {
		res, err := Simulate(Config{
			App: "511.povray", Predictor: "phast", Instructions: *benchInstrs,
			Intervals: intervals,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Committed)) // "bytes" = committed micro-ops
	}
}

// BenchmarkSharedTraceSweep measures multi-config batch throughput over one
// workload: eight predictor configs driven from one shared interned trace
// (decoded once, prefix structures prebuilt — see Runner.prewarmTraces).
// Throughput is total committed micro-ops per second across the batch.
func BenchmarkSharedTraceSweep(b *testing.B) {
	preds := []string{
		"phast", "storesets", "nosq", "mdptage",
		"mdptage-s", "storevector", "cht", "none",
	}
	cfgs := make([]sim.Config, len(preds))
	for i, p := range preds {
		cfgs[i] = sim.Config{App: "511.povray", Predictor: p, Instructions: *benchInstrs}
	}
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration: the run cache must not memoise
		// across iterations (the shared trace intern is the point, and it
		// is process-wide by design).
		r := experiments.NewRunner(experiments.Options{
			Apps: []string{"511.povray"}, Instructions: *benchInstrs,
		})
		runs, err := r.RunConfigs(cfgs)
		r.Close()
		if err != nil {
			b.Fatal(err)
		}
		var total uint64
		for _, run := range runs {
			total += run.Committed
		}
		b.SetBytes(int64(total))
	}
}

// Design-choice ablations called out in DESIGN.md: the §IV-A1 update-point
// choice, PHAST's confidence mechanism, and the history length set.
func BenchmarkAblationTrainPoint(b *testing.B)    { benchExperiment(b, "abl-train") }
func BenchmarkAblationConfidence(b *testing.B)    { benchExperiment(b, "abl-conf") }
func BenchmarkAblationHistoryTables(b *testing.B) { benchExperiment(b, "abl-tables") }
func BenchmarkAblationFilter(b *testing.B)        { benchExperiment(b, "abl-filter") }
