// Command benchreg records and gates benchmark results.
//
// Record mode (default) reads `go test -bench` output on stdin and writes a
// BENCH.json record. Provenance is passed in rather than sampled, keeping
// the output a pure function of its inputs:
//
//	go test -run '^$' -bench . -benchmem . |
//	    benchreg -o BENCH.json -sha $(git rev-parse --short HEAD) -date $(date -u +%FT%TZ)
//
// Compare mode gates a fresh record against a committed baseline, failing
// (exit 1) when the named benchmark's throughput regressed beyond the
// tolerance:
//
//	benchreg -compare -old BENCH.json -new /tmp/new.json \
//	    -bench SimulatorThroughput -max-regress 0.10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchreg"
)

func main() {
	var (
		out        = flag.String("o", "BENCH.json", "record mode: output file (- for stdout)")
		sha        = flag.String("sha", "", "record mode: commit SHA stored in the record")
		date       = flag.String("date", "", "record mode: timestamp stored in the record")
		compare    = flag.Bool("compare", false, "compare two records instead of recording")
		oldPath    = flag.String("old", "BENCH.json", "compare mode: baseline record")
		newPath    = flag.String("new", "", "compare mode: fresh record")
		benchName  = flag.String("bench", "SimulatorThroughput", "compare mode: benchmark to gate")
		maxRegress = flag.Float64("max-regress", 0.10, "compare mode: allowed fractional throughput drop")
	)
	flag.Parse()

	if err := run(*compare, *out, *sha, *date, *oldPath, *newPath, *benchName, *maxRegress); err != nil {
		fmt.Fprintln(os.Stderr, "benchreg:", err)
		os.Exit(1)
	}
}

func run(compare bool, out, sha, date, oldPath, newPath, benchName string, maxRegress float64) error {
	if compare {
		oldRec, err := benchreg.Load(oldPath)
		if err != nil {
			return err
		}
		newRec, err := benchreg.Load(newPath)
		if err != nil {
			return err
		}
		if err := benchreg.Compare(oldRec, newRec, benchName, maxRegress); err != nil {
			return err
		}
		ob, _ := oldRec.Find(benchName)
		nb, _ := newRec.Find(benchName)
		fmt.Printf("benchreg: %s ok: %.0f uops/s vs baseline %.0f (%s)\n",
			benchName, nb.UopsPerSec, ob.UopsPerSec, oldRec.GitSHA)
		return nil
	}

	results, err := benchreg.Parse(os.Stdin)
	if err != nil {
		return err
	}
	rec := benchreg.NewRecord(sha, date, results)
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rec.Write(w); err != nil {
		return err
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "benchreg: wrote %d benchmarks to %s\n", len(results), out)
	}
	return nil
}
