// phastd is the simulation-as-a-service daemon: it serves the repository's
// simulator over HTTP/JSON (POST /v1/runs, POST /v1/batch, GET /healthz,
// GET /metrics) through the full library stack — persistent run cache,
// shared worker-pool scheduler, typed failure containment — plus the serving
// mechanics of internal/server: admission control with a bounded queue and
// 429 backpressure, coalescing of identical in-flight requests, per-request
// deadlines, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	phastd -addr :8091 -cache /var/cache/phast -workers 8
//	curl -s localhost:8091/healthz
//	curl -s -X POST localhost:8091/v1/runs -d '{"config":{"App":"511.povray","Predictor":"phast"}}'
//	curl -s localhost:8091/metrics
//
// With -peers/-self the daemon becomes one member of a consistent-hash
// fleet: any member accepts any request, the ring owner of each config
// executes it exactly once cluster-wide, and local cache misses fetch from
// peer caches before simulating (DESIGN.md §15):
//
//	phastd -addr :8091 -self http://10.0.0.1:8091 \
//	       -peers http://10.0.0.1:8091,http://10.0.0.2:8091,http://10.0.0.3:8091 \
//	       -cache /var/cache/phast
//
// Fleet members self-heal (DESIGN.md §16): a per-peer health prober drives
// Up/Suspect/Down state and remaps Down members' ring segments until they
// recover; peer hops retry with budget-aware backoff behind per-peer
// circuit breakers (-proxy-retries, -retry-backoff, -breaker-threshold,
// -hedge-delay); GET /v1/cluster reports this member's view of fleet
// health. Benchmark a node or a fleet with cmd/phastload.
//
// With -trace-dir the daemon additionally ingests bring-your-own-workload
// traces (DESIGN.md §17): POST /v1/traces stores a validated, content-
// addressed trace and any member runs it by digest; tenancy rides the
// X-Phast-Tenant header under per-tenant storage quotas
// (-tenant-quota-bytes), an in-flight cap (-tenant-max-inflight) and
// weighted-fair scheduling (-tenant-weights), with per-tenant run logs
// behind GET /v1/results (-results-dir):
//
//	phastd -addr :8091 -trace-dir /var/phast/traces -results-dir /var/phast/results
//	curl -s -X POST --data-binary @workload.mdpt -H 'X-Phast-Tenant: acme' localhost:8091/v1/traces
//	curl -s -X POST -H 'X-Phast-Tenant: acme' localhost:8091/v1/runs \
//	     -d '{"config":{"App":"trace:<digest>","Predictor":"phast"}}'
//
// With -jobs-dir the daemon exposes the design-space autotuner (DESIGN.md
// §18): POST /v1/jobs submits a budgeted search (grid, random, successive
// halving) over predictor knobs; trials run through the same cache and
// weighted-fair machinery as interactive requests, and atomic checkpoints
// in -jobs-dir let a killed daemon resume its jobs without re-simulating:
//
//	phastd -addr :8091 -cache /var/cache/phast -jobs-dir /var/phast/jobs
//	curl -s -X POST localhost:8091/v1/jobs -d @examples/jobspecs/geometry.json
//	curl -s localhost:8091/v1/jobs/<id>
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// fatal is the one exit path for errors: message to stderr, non-zero exit.
func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"phastd:"}, v...)...)
	os.Exit(1)
}

// parseWeights parses -tenant-weights ("acme=3,guest=1") into the scheduler's
// weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		tenant, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want tenant=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight for tenant %q: %q (want a positive integer)", tenant, val)
		}
		out[tenant] = w
	}
	return out, nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8091", "listen address")
		workers      = flag.Int("workers", runtime.NumCPU(), "simulation worker pool size")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently admitted requests (0 = NumCPU)")
		queueDepth   = flag.Int("queue", 0, "admission queue depth beyond max-inflight (0 = 4x max-inflight)")
		cacheDir     = flag.String("cache", "", "persistent run-cache directory (empty = in-memory only)")
		cacheMax     = flag.Int64("cache-max-bytes", 0, "cap on the persistent cache size; oldest entries evicted past it (0 = unbounded)")
		n            = flag.Int("n", sim.DefaultInstructions, "default instructions when a request omits them")
		timeout      = flag.Duration("timeout", 2*time.Minute, "default per-request deadline (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "cap on client-supplied deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight runs on shutdown")
		maxBatch     = flag.Int("max-batch", 1024, "max configs per /v1/batch request")
		peers        = flag.String("peers", "", "comma-separated base URLs of every fleet member including this one (empty = standalone)")
		self         = flag.String("self", "", "this member's base URL exactly as it appears in -peers (required with -peers)")
		vnodes       = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the consistent-hash ring")
		probeEvery   = flag.Duration("probe-interval", time.Second, "fleet health-probe period per peer")
		probeTimeout = flag.Duration("probe-timeout", 0, "single health-probe timeout (0 = half the interval)")
		downAfter    = flag.Int("probe-down-after", 3, "consecutive probe failures marking a peer Down (ring remap)")
		upAfter      = flag.Int("probe-up-after", 1, "consecutive probe successes restoring a Down peer")
		proxyRetries = flag.Int("proxy-retries", 3, "total attempts per proxied run, first try included")
		retryBackoff = flag.Duration("retry-backoff", 50*time.Millisecond, "first retry backoff (doubles per retry, jittered)")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive transport failures opening a peer's circuit breaker")
		brkOpenFor   = flag.Duration("breaker-open-for", 2*time.Second, "open-breaker cooldown before half-opening")
		hedgeDelay   = flag.Duration("hedge-delay", 0, "race the second peer-cache candidate after this delay (0 = off)")
		traceDir     = flag.String("trace-dir", "", "uploaded-trace store directory (empty = trace ingestion disabled)")
		traceMax     = flag.Int64("trace-max-bytes", 0, "per-trace upload size cap in bytes (0 = 64 MiB default)")
		tenantQuota  = flag.Int64("tenant-quota-bytes", 0, "per-tenant stored trace bytes quota (0 = 256 MiB default, negative = unlimited)")
		resultsDir   = flag.String("results-dir", "", "per-tenant persistent results log directory (empty = results endpoint disabled)")
		jobsDir      = flag.String("jobs-dir", "", "autotuner job checkpoint directory; enables POST /v1/jobs (empty = disabled)")
		tenantJobs   = flag.Int("tenant-max-jobs", 0, "per-tenant concurrently active job cap, 429 past it (0 = unlimited)")
		tenantMax    = flag.Int("tenant-max-inflight", 0, "per-tenant in-flight request cap, 429 past it (0 = unlimited)")
		weights      = flag.String("tenant-weights", "", "weighted-fair scheduler shares, e.g. \"acme=3,guest=1\" (absent tenants weigh 1)")
		faults       = flag.String("faults", os.Getenv("PHAST_FAULTS"), "fault-injection spec for chaos testing, e.g. \"panic=0.1,seed=7\" (default $PHAST_FAULTS)")
		metrics      = flag.Bool("metrics", true, "print the metrics table to stderr on exit")
	)
	flag.Parse()

	plan, err := faultinject.Parse(*faults)
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		defer faultinject.Activate(plan)()
		fmt.Fprintln(os.Stderr, "phastd: fault injection active:", plan)
	}

	tenantWeights, err := parseWeights(*weights)
	if err != nil {
		fatal(err)
	}
	reg := stats.NewMetrics()
	runner := experiments.NewRunner(experiments.Options{
		Workers:       *workers,
		Instructions:  *n,
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		Metrics:       reg,
		TenantWeights: tenantWeights,
		// A service reports per-row errors; one bad config in a batch must
		// not cancel its siblings.
		KeepGoing: true,
	})
	var fleet *cluster.Fleet
	if *peers != "" {
		fleet, err = cluster.NewFleet(*self, strings.Split(*peers, ","), *vnodes)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "phastd: fleet member", fleet)
	}
	var store *tracestore.Store
	if *traceDir != "" {
		store = tracestore.New(*traceDir, tracestore.Options{
			MaxTraceBytes:    *traceMax,
			TenantQuotaBytes: *tenantQuota,
		})
	}
	var results *tracestore.ResultLog
	if *resultsDir != "" {
		results = tracestore.NewResultLog(*resultsDir)
	}
	var jobsCtl *jobs.Controller
	if *jobsDir != "" {
		jobsCtl, err = jobs.NewController(jobs.Options{
			Dir:     *jobsDir,
			Backend: runner,
			Metrics: reg,
			// Job specs that omit apps default to the whole built-in suite,
			// matching the runner; a spec's own instruction default matches
			// the daemon's -n.
			Apps:            workload.Names(),
			Instructions:    *n,
			TenantMaxActive: *tenantJobs,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phastd: job checkpoints in %q\n", *jobsDir)
	}
	srv := server.New(runner, server.Options{
		MaxInflight:         *maxInflight,
		QueueDepth:          *queueDepth,
		DefaultInstructions: *n,
		DefaultRunTimeout:   *timeout,
		MaxRunTimeout:       *maxTimeout,
		MaxBatch:            *maxBatch,
		Metrics:             reg,
		Fleet:               fleet,
		ProbeInterval:       *probeEvery,
		ProbeTimeout:        *probeTimeout,
		ProbeDownAfter:      *downAfter,
		ProbeUpAfter:        *upAfter,
		ProxyAttempts:       *proxyRetries,
		RetryBackoff:        *retryBackoff,
		BreakerThreshold:    *brkThreshold,
		BreakerOpenFor:      *brkOpenFor,
		HedgeDelay:          *hedgeDelay,
		TraceStore:          store,
		Results:             results,
		TenantMaxInflight:   *tenantMax,
		Jobs:                jobsCtl,
	})
	if fleet != nil {
		// Two-tier cache: a local miss asks the ring's other candidates for
		// their cached entry before paying for a simulation.
		runner.SetPeerFetch(srv.PeerFetch)
	}
	if store != nil {
		// Uploaded-trace resolution: local store, then (in a fleet) the
		// ring's other members — a trace uploaded anywhere runs anywhere.
		runner.SetTraceResolver(srv.TraceFetch)
		fmt.Fprintf(os.Stderr, "phastd: trace store %q (max %d bytes/trace)\n", *traceDir, store.MaxTraceBytes())
	}
	if jobsCtl != nil {
		// Resume jobs that were mid-flight when the previous process died —
		// after server.New wired the trial observer and the runner gained its
		// peer/trace tiers, so resumed trials see the full stack. The run
		// cache makes the replayed schedule free up to the kill point.
		if n := jobsCtl.ResumeAll(); n > 0 {
			fmt.Fprintf(os.Stderr, "phastd: resumed %d checkpointed job(s)\n", n)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	// Graceful drain on SIGTERM/SIGINT: health flips to 503, new submissions
	// are refused, the listener closes, and in-flight runs get drain-timeout
	// to finish before being hard-cancelled (typed sim.ErrCancelled rows
	// still flow back to their clients). Disk-cache writes are synchronous
	// with each run, so once the last handler returns the cache is flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Fleet failure detector: per-peer heartbeats drive the health-filtered
	// ring until shutdown (no-op standalone).
	srv.StartHealth(ctx)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "phastd: draining (grace %s)\n", *drainTimeout)
		srv.StartDrain()
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "phastd: grace period expired, cancelling in-flight runs")
			srv.Abort()
			hs.Close()
		}
	}()

	fmt.Fprintf(os.Stderr, "phastd: serving on %s (workers %d, cache %q)\n", ln.Addr(), *workers, *cacheDir)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
	if jobsCtl != nil {
		// Stop job goroutines before the runner: checkpoints keep running
		// jobs resumable on the next boot.
		jobsCtl.Close()
	}
	runner.Close()
	if *metrics {
		sim.PublishMetrics(reg)
		reg.WriteTo(os.Stderr)
	}
	runner.WriteFailures(os.Stderr)
	fmt.Fprintln(os.Stderr, "phastd: drained, bye")
}
