// phastsim runs one simulation: an app from the suite, on a machine
// generation, with a memory dependence predictor, and prints the measured
// counters.
//
// Usage:
//
//	phastsim -app 511.povray -predictor phast -machine alderlake -n 300000
//	phastsim -list
//
// SIGINT cancels the simulation; -timeout bounds its wall-clock time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/prof"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fatal is the one exit path for errors: message to stderr, non-zero exit.
func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"phastsim:"}, v...)...)
	os.Exit(1)
}

func main() {
	var (
		app          = flag.String("app", "511.povray", "workload name (see -list)")
		predictor    = flag.String("predictor", "phast", "predictor spec (phast, storesets, nosq, mdptage, mdptage-s, ideal, none, unlimited-phast, ...)")
		machine      = flag.String("machine", "alderlake", "machine configuration")
		n            = flag.Int("n", sim.DefaultInstructions, "instructions to simulate")
		seed         = flag.Int64("seed", 0, "stream seed override (0 = app default)")
		noFwd        = flag.Bool("no-fwd-filter", false, "disable the §IV-A1 forwarding filter")
		verify       = flag.Bool("verify", false, "check retirement against the in-order architectural oracle (slower; fails on first divergence)")
		bp           = flag.String("bp", "tagescl", "branch predictor (bimodal, gshare, perceptron, tage, tagescl)")
		list         = flag.Bool("list", false, "list apps, machines and predictors, then exit")
		vsIdeal      = flag.Bool("vs-ideal", false, "also run the ideal predictor and report the gap")
		saveTrace    = flag.String("save-trace", "", "write the generated stream to this file and exit")
		loadTrace    = flag.String("load-trace", "", "replay a stream saved with -save-trace instead of generating one")
		simpoints    = flag.Int("simpoints", 0, "simulate k representative intervals instead of the whole stream (SimPoint-style)")
		interval     = flag.Int("interval", 50000, "interval length for -simpoints")
		parIntervals = flag.Int("parallel-intervals", 0, "split the run into this many concurrently-simulated intervals, warmed from oracle checkpoints and stitched under the oracle digest gate (<=1 = sequential)")
		parWarmup    = flag.Int("interval-warmup", 0, "functional warm-up micro-ops per interval for -parallel-intervals (0 = default, negative = none)")
		cacheDir     = flag.String("cache", "", "persistent run-cache directory (empty = always simulate)")
		metrics      = flag.Bool("metrics", false, "print cache/simulation metrics to stderr at exit")
		timeout      = flag.Duration("timeout", 0, "wall-clock budget for the simulation (0 = none)")
		faults       = flag.String("faults", os.Getenv("PHAST_FAULTS"), "fault-injection spec for chaos testing, e.g. \"panic=0.1,seed=7\" (default $PHAST_FAULTS)")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	plan, err := faultinject.Parse(*faults)
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		defer faultinject.Activate(plan)()
		fmt.Fprintln(os.Stderr, "phastsim: fault injection active:", plan)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// simulate routes full runs through the persistent cache when enabled;
	// -load-trace and -simpoints always simulate (their inputs are not part
	// of the content address).
	reg := stats.NewMetrics()
	simulate := func(cfg sim.Config) (*stats.Run, error) { return sim.RunContext(ctx, cfg) }
	if *cacheDir != "" {
		cache := runcache.New(runcache.NewStore(*cacheDir), reg)
		simulate = func(cfg sim.Config) (*stats.Run, error) { return cache.Run(ctx, cfg) }
	}
	finish := func() {
		if *metrics {
			sim.PublishMetrics(reg)
			reg.WriteTo(os.Stderr)
		}
		if err := stopProf(); err != nil {
			fatal("profile:", err)
		}
	}

	if *list {
		fmt.Println("apps:")
		for _, a := range workload.Names() {
			fmt.Println("  " + a)
		}
		fmt.Println("machines:", config.Names())
		fmt.Println("predictors:", sim.PredictorNames(),
			"(plus ideal, none, alwayswait, cht, storevector, unlimited-*, and :<size> budget specs)")
		return
	}

	cfg := sim.Config{
		App: *app, Machine: *machine, Predictor: *predictor,
		Instructions: *n, Seed: *seed, FwdFilterOff: *noFwd, BranchPredictor: *bp,
		Verify: *verify, Intervals: *parIntervals, IntervalWarmup: *parWarmup,
	}

	if *saveTrace != "" {
		tr, err := sim.TraceFor(cfg.App, *n, *seed)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*saveTrace)
		if err == nil {
			err = tr.Encode(f)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d micro-ops of %s to %s\n", tr.Len(), tr.Name, *saveTrace)
		return
	}

	var run *stats.Run
	switch {
	case *simpoints > 0:
		err = runSimpoints(ctx, cfg, *simpoints, *interval)
		if err != nil {
			fatal(err)
		}
		finish()
		return
	case *loadTrace != "":
		run, err = replay(ctx, *loadTrace, cfg)
	default:
		run, err = simulate(cfg)
	}
	if err != nil {
		fatal(err)
	}
	printRun(run)
	if run.OracleDigest != 0 {
		fmt.Printf("stitched %d intervals: oracle digest %#016x matches the sequential in-order execution\n",
			cfg.Normalized().Intervals, run.OracleDigest)
	}
	if *verify {
		fmt.Printf("verified: %d micro-ops retired with oracle-identical architectural results\n", run.Committed)
	}

	if *vsIdeal {
		cfg.Predictor = "ideal"
		ideal, err := simulate(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nideal IPC %.4f; %s reaches %.2f%% of ideal\n",
			ideal.IPC(), *predictor, 100*run.Speedup(ideal))
	}
	finish()
}

// runSimpoints selects k representative intervals of the stream (SimPoint-
// style clustering on PC-frequency signatures, as the paper's methodology
// does on SPEC) and reports the per-interval and weighted-mean IPC.
func runSimpoints(ctx context.Context, cfg sim.Config, k, intervalLen int) error {
	tr, err := sim.TraceFor(cfg.App, cfg.Instructions, cfg.Seed)
	if err != nil {
		return err
	}
	machine, err := config.ByName(cfg.Machine)
	if err != nil {
		return err
	}
	ivs := tr.SelectIntervals(intervalLen, k)
	t := stats.NewTable(fmt.Sprintf("%s — %d SimPoint intervals of %d micro-ops (%s)",
		cfg.App, len(ivs), intervalLen, cfg.Predictor),
		"interval", "weight", "IPC", "violation MPKI", "false dep MPKI")
	weighted := 0.0
	for _, iv := range ivs {
		pred, err := sim.NewPredictor(cfg.Predictor)
		if err != nil {
			return err
		}
		c, err := pipeline.New(machine, pred, pipeline.DefaultOptions())
		if err != nil {
			return err
		}
		res, err := c.RunContext(ctx, tr.Slice(iv))
		if err != nil {
			return err
		}
		weighted += iv.Weight * res.IPC()
		t.AddRowf(fmt.Sprintf("[%d,%d)", iv.Start, iv.End), iv.Weight, res.IPC(),
			res.ViolationMPKI(), res.FalseDepMPKI())
	}
	t.AddRowf("weighted mean", 1.0, weighted, "", "")
	fmt.Print(t)
	return nil
}

// replay runs the simulator over a previously saved stream.
func replay(ctx context.Context, path string, cfg sim.Config) (*stats.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		return nil, err
	}
	machine, err := config.ByName(cfg.Machine)
	if err != nil {
		return nil, err
	}
	pred, err := sim.NewPredictor(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	opt := pipeline.DefaultOptions()
	if cfg.FwdFilterOff {
		opt.Filter = pipeline.FilterNone
	}
	opt.BranchPredictor = cfg.BranchPredictor
	if cfg.Verify {
		opt.Verify = oracle.NewChecker(tr).Check
	}
	c, err := pipeline.New(machine, pred, opt)
	if err != nil {
		return nil, err
	}
	run, err := c.RunContext(ctx, tr)
	if err != nil {
		return nil, err
	}
	run.Predictor = cfg.Predictor
	return run, nil
}

func printRun(r *stats.Run) {
	t := stats.NewTable(fmt.Sprintf("%s / %s / %s", r.App, r.Machine, r.Predictor),
		"metric", "value")
	t.AddRowf("instructions", r.Committed)
	t.AddRowf("cycles", r.Cycles)
	t.AddRow("IPC", fmt.Sprintf("%.4f", r.IPC()))
	t.AddRowf("loads", r.Loads)
	t.AddRowf("stores", r.Stores)
	t.AddRowf("store-to-load forwards", r.Forwards)
	t.AddRowf("memory order violations", r.MemOrderViolations)
	t.AddRow("violation MPKI", fmt.Sprintf("%.4f", r.ViolationMPKI()))
	t.AddRowf("false dependencies", r.FalseDependencies)
	t.AddRow("false dependence MPKI", fmt.Sprintf("%.4f", r.FalseDepMPKI()))
	t.AddRowf("true dependencies (correct waits)", r.TrueDependencies)
	t.AddRow("branch MPKI", fmt.Sprintf("%.4f", r.BranchMPKI()))
	t.AddRowf("squashed micro-ops", r.SquashedUops)
	t.AddRowf("re-fetched micro-ops", r.Fetched-r.Committed)
	t.AddRowf("issued micro-ops", r.IssuedUops)
	t.AddRowf("predictor reads", r.PredictorReads)
	t.AddRowf("predictor writes", r.PredictorWrites)
	if r.PathsTracked > 0 {
		t.AddRowf("paths tracked", r.PathsTracked)
	}
	t.AddRow("avg ROB occupancy", fmt.Sprintf("%.1f", r.AvgROBOccupancy()))
	t.AddRow("avg SQ occupancy", fmt.Sprintf("%.1f", r.AvgSQOccupancy()))
	t.AddRow("L1D hit rate", fmt.Sprintf("%.2f%%", pct(r.L1DHits, r.L1DMisses)))
	t.AddRow("L2 hit rate", fmt.Sprintf("%.2f%%", pct(r.L2Hits, r.L2Misses)))
	t.AddRow("L3 hit rate", fmt.Sprintf("%.2f%%", pct(r.L3Hits, r.L3Misses)))
	fmt.Print(t)
}

func pct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
