// sweep runs parameter sweeps over the simulator: predictor storage budgets
// (the Fig. 13 axis), history lengths of the unlimited predictors (the
// Fig. 6/Fig. 11 axes), or machine generations (the Fig. 2 axis).
//
// Usage:
//
//	sweep -kind budget  -apps 511.povray,502.gcc_1
//	sweep -kind history -n 200000
//	sweep -kind machine -predictor phast
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		kind       = flag.String("kind", "budget", "sweep kind: budget, history, machine, window")
		n          = flag.Int("n", sim.DefaultInstructions, "instructions per run")
		apps       = flag.String("apps", "", "comma-separated app subset (default: whole suite)")
		predictor  = flag.String("predictor", "phast", "predictor for the machine sweep")
		workers    = flag.Int("workers", 0, "parallel runs")
		cacheDir   = flag.String("cache", "", "persistent run-cache directory (empty = in-memory only)")
		metrics    = flag.Bool("metrics", false, "print cache, simulation, trace-intern and core-pool metrics to stderr at exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	opt := experiments.Options{
		Instructions: *n, Out: os.Stdout, Workers: *workers, CacheDir: *cacheDir,
	}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	r := experiments.NewRunner(opt)
	defer r.Close()
	switch *kind {
	case "budget":
		err = experiments.Fig13(r)
	case "history":
		if err = experiments.Fig06(r); err == nil {
			err = experiments.Fig11(r)
		}
	case "machine":
		err = machineSweep(r, *predictor)
	case "window":
		err = windowSweep(r, *predictor)
	default:
		err = fmt.Errorf("unknown sweep kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if *metrics {
		r.WriteMetrics(os.Stderr)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep: profile:", err)
		os.Exit(1)
	}
}

// windowSweep isolates the Fig. 2 mechanism: on one machine generation,
// scale only the speculation window (ROB/IQ/LQ/SQ) and watch the predictor's
// gap to ideal grow — more in-flight unresolved stores, more exposure.
func windowSweep(r *experiments.Runner, predictor string) error {
	t := stats.NewTable(fmt.Sprintf("window sweep — %s (alderlake-derived)", predictor),
		"scale", "ROB", "SQ", "IPC/ideal", "MPKI(FN)", "MPKI(FP)")
	for _, scale := range []float64{0.25, 0.5, 1, 2} {
		m := config.AlderLake()
		m.Name = fmt.Sprintf("alderlake-w%g", scale)
		m.ROB = int(float64(m.ROB) * scale)
		m.IQ = int(float64(m.IQ) * scale)
		m.LQ = int(float64(m.LQ) * scale)
		m.SQ = int(float64(m.SQ) * scale)
		if err := m.Validate(); err != nil {
			return err
		}
		geo, fn, fp, err := sweepOn(r, m, predictor)
		if err != nil {
			return err
		}
		t.AddRowf(fmt.Sprintf("%gx", scale), m.ROB, m.SQ, geo, fn, fp)
	}
	fmt.Fprintln(r.Opt().Out, t)
	return nil
}

// sweepOn runs predictor and ideal over the runner's apps on an ad-hoc
// machine (bypassing the by-name registry).
func sweepOn(r *experiments.Runner, m config.Machine, predictor string) (geo, fn, fp float64, err error) {
	var ratios, fns, fps []float64
	for _, app := range r.Opt().Apps {
		idealRun, err := runOn(m, app, "ideal", r.Opt().Instructions)
		if err != nil {
			return 0, 0, 0, err
		}
		predRun, err := runOn(m, app, predictor, r.Opt().Instructions)
		if err != nil {
			return 0, 0, 0, err
		}
		ratios = append(ratios, predRun.Speedup(idealRun))
		fns = append(fns, predRun.ViolationMPKI())
		fps = append(fps, predRun.FalseDepMPKI())
	}
	return stats.GeoMean(ratios), stats.Mean(fns), stats.Mean(fps), nil
}

func runOn(m config.Machine, app, predictor string, instructions int) (*stats.Run, error) {
	tr, err := sim.TraceFor(app, instructions, 0)
	if err != nil {
		return nil, err
	}
	pred, err := sim.NewPredictor(predictor)
	if err != nil {
		return nil, err
	}
	c, err := pipeline.New(m, pred, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return c.Run(tr)
}

func machineSweep(r *experiments.Runner, predictor string) error {
	t := stats.NewTable(fmt.Sprintf("machine sweep — %s", predictor),
		"machine", "year", "IPC/ideal", "MPKI(FN)", "MPKI(FP)")
	for _, m := range config.Generations() {
		geo, err := r.GeoIPCvsIdeal(m.Name, predictor, false)
		if err != nil {
			return err
		}
		fn, fp, err := r.MeanMPKI(m.Name, predictor)
		if err != nil {
			return err
		}
		t.AddRowf(m.Name, m.Year, geo, fn, fp)
	}
	fmt.Fprintln(r.Opt().Out, t)
	return nil
}
