// sweep runs parameter sweeps over the simulator: predictor storage budgets
// (the Fig. 13 axis), history lengths of the unlimited predictors (the
// Fig. 6/Fig. 11 axes), or machine generations (the Fig. 2 axis).
//
// Usage:
//
//	sweep -kind budget  -apps 511.povray,502.gcc_1
//	sweep -kind history -n 200000
//	sweep -kind machine -predictor phast
//
// SIGINT cancels in-flight simulations; completed tables stay on stdout and
// the failure log still prints.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/pipeline"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/stats"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"sweep:"}, v...)...)
	os.Exit(1)
}

func main() {
	var (
		kind         = flag.String("kind", "budget", "sweep kind: budget, history, machine, window")
		n            = flag.Int("n", sim.DefaultInstructions, "instructions per run")
		apps         = flag.String("apps", "", "comma-separated app subset (default: whole suite)")
		predictor    = flag.String("predictor", "phast", "predictor for the machine sweep")
		workers      = flag.Int("workers", 0, "parallel runs")
		parIntervals = flag.Int("parallel-intervals", 0, "split each simulation into this many concurrently-simulated, oracle-gated intervals (<=1 = sequential; see EXPERIMENTS.md)")
		cacheDir     = flag.String("cache", "", "persistent run-cache directory (empty = in-memory only)")
		metrics      = flag.Bool("metrics", false, "print cache, simulation, trace-intern and core-pool metrics to stderr at exit")
		timeout      = flag.Duration("timeout", 0, "wall-clock budget per simulation (0 = none)")
		faults       = flag.String("faults", os.Getenv("PHAST_FAULTS"), "fault-injection spec for chaos testing (default $PHAST_FAULTS)")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	plan, err := faultinject.Parse(*faults)
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		defer faultinject.Activate(plan)()
		fmt.Fprintln(os.Stderr, "sweep: fault injection active:", plan)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := experiments.Options{
		Instructions: *n, Out: os.Stdout, Workers: *workers, CacheDir: *cacheDir,
		Context: ctx, RunTimeout: *timeout, Intervals: *parIntervals,
	}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	r := experiments.NewRunner(opt)
	defer r.Close()
	switch *kind {
	case "budget":
		err = experiments.Fig13(r)
	case "history":
		if err = experiments.Fig06(r); err == nil {
			err = experiments.Fig11(r)
		}
	case "machine":
		err = machineSweep(r, *predictor)
	case "window":
		err = windowSweep(ctx, r, *predictor)
	default:
		err = fmt.Errorf("unknown sweep kind %q", *kind)
	}
	r.WriteFailures(os.Stderr)
	if *metrics {
		r.WriteMetrics(os.Stderr)
	}
	if err != nil {
		if ctx.Err() != nil {
			fatal("interrupted (completed tables were flushed):", err)
		}
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal("profile:", err)
	}
}

// windowSweep isolates the Fig. 2 mechanism: on one machine generation,
// scale only the speculation window (ROB/IQ/LQ/SQ) and watch the predictor's
// gap to ideal grow — more in-flight unresolved stores, more exposure.
func windowSweep(ctx context.Context, r *experiments.Runner, predictor string) error {
	t := stats.NewTable(fmt.Sprintf("window sweep — %s (alderlake-derived)", predictor),
		"scale", "ROB", "SQ", "IPC/ideal", "MPKI(FN)", "MPKI(FP)")
	for _, scale := range []float64{0.25, 0.5, 1, 2} {
		m := config.AlderLake()
		m.Name = fmt.Sprintf("alderlake-w%g", scale)
		m.ROB = int(float64(m.ROB) * scale)
		m.IQ = int(float64(m.IQ) * scale)
		m.LQ = int(float64(m.LQ) * scale)
		m.SQ = int(float64(m.SQ) * scale)
		if err := m.Validate(); err != nil {
			return err
		}
		geo, fn, fp, err := sweepOn(ctx, r, m, predictor)
		if err != nil {
			return err
		}
		t.AddRowf(fmt.Sprintf("%gx", scale), m.ROB, m.SQ, geo, fn, fp)
	}
	fmt.Fprintln(r.Opt().Out, t)
	return nil
}

// sweepOn runs predictor and ideal over the runner's apps on an ad-hoc
// machine (bypassing the by-name registry), with a per-run wall-clock
// budget matching the runner's.
func sweepOn(ctx context.Context, r *experiments.Runner, m config.Machine, predictor string) (geo, fn, fp float64, err error) {
	var ratios, fns, fps []float64
	for _, app := range r.Opt().Apps {
		idealRun, err := runOn(ctx, r, m, app, "ideal")
		if err != nil {
			return 0, 0, 0, err
		}
		predRun, err := runOn(ctx, r, m, app, predictor)
		if err != nil {
			return 0, 0, 0, err
		}
		ratios = append(ratios, predRun.Speedup(idealRun))
		fns = append(fns, predRun.ViolationMPKI())
		fps = append(fps, predRun.FalseDepMPKI())
	}
	return stats.GeoMean(ratios), stats.Mean(fns), stats.Mean(fps), nil
}

func runOn(ctx context.Context, r *experiments.Runner, m config.Machine, app, predictor string) (*stats.Run, error) {
	if d := r.Opt().RunTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	tr, err := sim.TraceFor(app, r.Opt().Instructions, 0)
	if err != nil {
		return nil, err
	}
	pred, err := sim.NewPredictor(predictor)
	if err != nil {
		return nil, err
	}
	c, err := pipeline.New(m, pred, pipeline.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx, tr)
}

func machineSweep(r *experiments.Runner, predictor string) error {
	t := stats.NewTable(fmt.Sprintf("machine sweep — %s", predictor),
		"machine", "year", "IPC/ideal", "MPKI(FN)", "MPKI(FP)")
	for _, m := range config.Generations() {
		geo, err := r.GeoIPCvsIdeal(m.Name, predictor, false)
		if err != nil {
			return err
		}
		fn, fp, err := r.MeanMPKI(m.Name, predictor)
		if err != nil {
			return err
		}
		t.AddRowf(m.Name, m.Year, geo, fn, fp)
	}
	fmt.Fprintln(r.Opt().Out, t)
	return nil
}
