// phastload is the load generator for phastd (ReqBench-style): it drives
// POST /v1/runs with a configurable mixture of unique and duplicate
// simulation configs in either closed-loop (fixed concurrency, next request
// on completion) or open-loop (fixed arrival rate, latency includes queueing)
// mode, and reports client-side latency percentiles next to the server's own
// counter deltas — so admission control, queueing and coalescing are
// measurable from day one.
//
// Usage:
//
//	phastload -url http://localhost:8091 -mode closed -c 16 -duration 10s -dup 0.5
//	phastload -url http://localhost:8091 -mode open -qps 50 -duration 30s
//
// The -dup knob sets the probability a request re-asks one of -pool known
// configs instead of a fresh unique one: duplicates that arrive while their
// twin is in flight exercise server-side coalescing; duplicates after it
// exercise the run cache.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"phastload:"}, v...)...)
	os.Exit(1)
}

func main() {
	var (
		url       = flag.String("url", "http://localhost:8091", "phastd base URL")
		mode      = flag.String("mode", "closed", "arrival mode: closed (fixed concurrency) or open (fixed rate)")
		c         = flag.Int("c", 16, "closed-loop concurrency (workers)")
		qps       = flag.Float64("qps", 50, "open-loop target arrival rate (requests/second)")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		total     = flag.Int("requests", 0, "stop after this many requests (0 = duration-bound)")
		dup       = flag.Float64("dup", 0.5, "probability a request duplicates one of -pool configs (0..1)")
		pool      = flag.Int("pool", 4, "distinct configs in the duplicate pool")
		app       = flag.String("app", "511.povray", "workload name")
		predictor = flag.String("predictor", "phast", "predictor spec")
		machine   = flag.String("machine", "alderlake", "machine configuration")
		n         = flag.Int("n", 20_000, "instructions per simulation")
		timeoutMS = flag.Int64("timeout-ms", 60_000, "per-request deadline sent to the server")
		seed      = flag.Int64("seed", 1, "workload-mix random seed")
	)
	flag.Parse()
	if *dup < 0 || *dup > 1 {
		fatal("-dup out of [0,1]:", *dup)
	}
	if *pool < 1 {
		fatal("-pool must be >= 1")
	}

	before, err := fetchMetrics(*url)
	if err != nil {
		fatal("server unreachable:", err)
	}

	// Pre-plan the request mix so the workload is reproducible under -seed
	// and the hot loop does no locking around the RNG. Duplicate-pool seeds
	// are 1..pool; unique requests get seeds far above the pool.
	planned := *total
	if planned == 0 {
		planned = 1 << 20 // effectively duration-bound
	}
	rng := rand.New(rand.NewSource(*seed))
	seedOf := func(i int) int64 {
		_ = i
		if rng.Float64() < *dup {
			return int64(1 + rng.Intn(*pool))
		}
		return int64(1_000_000 + rng.Int63n(1<<40))
	}

	lg := &loadgen{
		url:    *url,
		client: &http.Client{},
		cfg: sim.Config{
			App: *app, Machine: *machine, Predictor: *predictor, Instructions: *n,
		},
		timeoutMS: *timeoutMS,
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	switch *mode {
	case "closed":
		lg.closedLoop(*c, planned, deadline, seedOf)
	case "open":
		lg.openLoop(*qps, planned, deadline, seedOf)
	default:
		fatal("unknown -mode:", *mode)
	}
	elapsed := time.Since(start)

	after, err := fetchMetrics(*url)
	if err != nil {
		fatal("server metrics after the run:", err)
	}
	lg.report(os.Stdout, elapsed, before, after)
}

// loadgen issues requests and accumulates client-side outcomes.
type loadgen struct {
	url       string
	client    *http.Client
	cfg       sim.Config
	timeoutMS int64

	mu        sync.Mutex
	latencies []time.Duration
	ok        int
	rejected  int // HTTP 429: admission-control backpressure
	failed    int // anything else
}

// next sends request i with the given stream seed and records its outcome.
func (l *loadgen) next(seed int64) {
	cfg := l.cfg
	cfg.Seed = seed
	body, err := json.Marshal(server.RunRequest{Config: cfg, TimeoutMS: l.timeoutMS})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	resp, err := l.client.Post(l.url+"/v1/runs", "application/json", bytes.NewReader(body))
	lat := time.Since(start)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.latencies = append(l.latencies, lat)
	if err != nil {
		l.failed++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		l.ok++
	case http.StatusTooManyRequests:
		l.rejected++
	default:
		l.failed++
	}
}

// closedLoop runs c workers, each issuing its next request as soon as the
// previous one completes — throughput adapts to server latency.
func (l *loadgen) closedLoop(c, total int, deadline time.Time, seedOf func(int) int64) {
	seeds := make(chan int64, c)
	go func() {
		defer close(seeds)
		for i := 0; i < total && time.Now().Before(deadline); i++ {
			seeds <- seedOf(i)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				if !time.Now().Before(deadline) {
					return
				}
				l.next(seed)
			}
		}()
	}
	wg.Wait()
}

// openLoop fires requests at a fixed rate regardless of completions — the
// latency distribution then includes server-side queueing under overload.
// In-flight requests are capped at 4096 as an OOM backstop; arrivals past
// the cap count as client-side drops (reported as failed).
func (l *loadgen) openLoop(qps float64, total int, deadline time.Time, seedOf func(int) int64) {
	if qps <= 0 {
		fatal("-qps must be > 0 in open mode")
	}
	interval := time.Duration(float64(time.Second) / qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var inflight atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total && time.Now().Before(deadline); i++ {
		<-ticker.C
		if inflight.Load() >= 4096 {
			l.mu.Lock()
			l.failed++
			l.mu.Unlock()
			continue
		}
		seed := seedOf(i)
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			l.next(seed)
		}()
	}
	wg.Wait()
}

// fetchMetrics pulls the server's counter snapshot.
func fetchMetrics(url string) (server.MetricsResponse, error) {
	var m server.MetricsResponse
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// report renders the client-side latency distribution and the server-side
// counter deltas for the run.
func (l *loadgen) report(w io.Writer, elapsed time.Duration, before, after server.MetricsResponse) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.Slice(l.latencies, func(i, j int) bool { return l.latencies[i] < l.latencies[j] })
	pct := func(q float64) time.Duration {
		if len(l.latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(l.latencies)-1))
		return l.latencies[i]
	}
	n := len(l.latencies)

	t := stats.NewTable("phastload — client side", "metric", "value")
	t.AddRowf("requests", n)
	t.AddRowf("ok", l.ok)
	t.AddRowf("rejected (429)", l.rejected)
	t.AddRowf("failed", l.failed)
	t.AddRow("elapsed", elapsed.Round(time.Millisecond).String())
	t.AddRow("achieved rps", fmt.Sprintf("%.1f", float64(n)/elapsed.Seconds()))
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1.0}} {
		t.AddRow("latency "+p.name, pct(p.q).Round(time.Microsecond).String())
	}
	fmt.Fprint(w, t)

	st := stats.NewTable("phastd — server side (delta over the run)", "counter", "delta")
	for _, name := range []string{
		server.CounterRequests, server.CounterAccepted, server.CounterQueued,
		server.CounterRejected, server.CounterCoalesced,
		"cache.hits.mem", "cache.hits.disk", "cache.misses", "runs.simulated",
	} {
		st.AddRowf(name, after.Counters[name]-before.Counters[name])
	}
	fmt.Fprint(w, st)
}
