// phastload is the load generator and scenario benchmark harness for phastd
// (ReqBench-style): declarative workload files in, machine-readable
// throughput/latency tables out.
//
// A scenario describes one traffic experiment — target node(s), arrival
// process, and request mix — and the harness reports client-side latency
// percentiles next to the servers' own counter deltas (admission control,
// coalescing, cache tiers, fleet peer traffic), so a 1-node-vs-3-node
// scaling curve is a one-command, reproducible artifact:
//
//	phastload -scenario scenarios/fleet.json -out results.csv
//
// where fleet.json holds one or more scenarios:
//
//	{"scenarios": [{
//	  "name": "fleet-3n",
//	  "targets": ["http://10.0.0.1:8091", "http://10.0.0.2:8091", "http://10.0.0.3:8091"],
//	  "mode": "closed", "concurrency": 16, "requests": 500,
//	  "dup": 0.6, "pool": 8, "zipf_s": 1.2,
//	  "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 20000},
//	  "seed": 1
//	}]}
//
// Requests round-robin across targets (any fleet member accepts any
// config); metrics deltas are summed across all targets. The mix knobs:
// dup is the probability a request re-asks one of pool known configs
// (duplicates in flight exercise coalescing, duplicates after exercise the
// caches); zipf_s > 1 skews which pool config is re-asked (a Zipfian
// popularity curve — a few configs go viral); burst modulates open-loop
// arrivals ({"period_ms": 2000, "width_ms": 250, "factor": 8} fires an
// 8x arrival spike for the first 250ms of every 2s).
//
// Without -scenario the flags describe a single anonymous scenario:
//
//	phastload -url http://localhost:8091 -mode closed -c 16 -duration 10s -dup 0.5
//	phastload -url http://localhost:8091 -mode open -qps 50 -duration 30s
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runcache"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"phastload:"}, v...)...)
	os.Exit(1)
}

// Burst modulates an open-loop arrival process: for the first WidthMS of
// every PeriodMS window, the arrival rate is multiplied by Factor.
type Burst struct {
	PeriodMS int64   `json:"period_ms"`
	WidthMS  int64   `json:"width_ms"`
	Factor   float64 `json:"factor"`
}

// Scenario is one declarative traffic experiment. Zero-valued fields take
// the defaults documented on the flags.
type Scenario struct {
	Name    string   `json:"name"`
	Targets []string `json:"targets"`
	// Mode is the arrival process: "closed" (Concurrency workers, next
	// request on completion) or "open" (fixed QPS; latency then includes
	// server-side queueing under overload).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps"`
	// Requests stops the run after this many requests (0 = duration-bound).
	Requests   int   `json:"requests"`
	DurationMS int64 `json:"duration_ms"`
	// Dup is the probability a request re-asks one of Pool known configs.
	Dup  float64 `json:"dup"`
	Pool int     `json:"pool"`
	// ZipfS skews duplicate popularity within the pool (values > 1; 0 or 1
	// means uniform): higher = fewer configs take more of the traffic.
	ZipfS float64 `json:"zipf_s"`
	Burst *Burst  `json:"burst,omitempty"`
	// Config is the base simulation config; each request stamps a Seed from
	// the mix, so distinct seeds are distinct cache keys.
	Config    sim.Config `json:"config"`
	TimeoutMS int64      `json:"timeout_ms"`
	Seed      int64      `json:"seed"`
}

// norm fills a scenario's defaults and validates the knobs.
func (sc Scenario) norm() (Scenario, error) {
	if sc.Name == "" {
		sc.Name = "adhoc"
	}
	if len(sc.Targets) == 0 {
		return sc, fmt.Errorf("scenario %q has no targets", sc.Name)
	}
	for i, t := range sc.Targets {
		sc.Targets[i] = strings.TrimRight(strings.TrimSpace(t), "/")
	}
	if sc.Mode == "" {
		sc.Mode = "closed"
	}
	if sc.Mode != "closed" && sc.Mode != "open" {
		return sc, fmt.Errorf("scenario %q: unknown mode %q", sc.Name, sc.Mode)
	}
	if sc.Concurrency <= 0 {
		sc.Concurrency = 16
	}
	if sc.QPS <= 0 {
		sc.QPS = 50
	}
	if sc.DurationMS <= 0 {
		sc.DurationMS = 10_000
	}
	if sc.Dup < 0 || sc.Dup > 1 {
		return sc, fmt.Errorf("scenario %q: dup %g out of [0,1]", sc.Name, sc.Dup)
	}
	if sc.Pool <= 0 {
		sc.Pool = 4
	}
	if sc.ZipfS != 0 && sc.ZipfS <= 1 {
		return sc, fmt.Errorf("scenario %q: zipf_s must be > 1 (or 0 for uniform)", sc.Name)
	}
	if b := sc.Burst; b != nil && (b.PeriodMS <= 0 || b.WidthMS <= 0 || b.WidthMS > b.PeriodMS || b.Factor <= 0) {
		return sc, fmt.Errorf("scenario %q: bad burst %+v (want 0 < width_ms <= period_ms, factor > 0)", sc.Name, *b)
	}
	if sc.Config.App == "" {
		sc.Config.App = "511.povray"
	}
	if sc.Config.Predictor == "" {
		sc.Config.Predictor = "phast"
	}
	if sc.Config.Machine == "" {
		sc.Config.Machine = "alderlake"
	}
	if sc.Config.Instructions == 0 {
		sc.Config.Instructions = 20_000
	}
	if sc.TimeoutMS == 0 {
		sc.TimeoutMS = 60_000
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc, nil
}

// scenarioFile is the top-level shape of a -scenario JSON document.
type scenarioFile struct {
	Scenarios []Scenario `json:"scenarios"`
}

func loadScenarios(path string) ([]Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f scenarioFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		// Also accept a bare single scenario object.
		var one Scenario
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err2 := dec.Decode(&one); err2 != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		f.Scenarios = []Scenario{one}
	}
	if len(f.Scenarios) == 0 {
		return nil, fmt.Errorf("%s: no scenarios", path)
	}
	for i := range f.Scenarios {
		if f.Scenarios[i], err = f.Scenarios[i].norm(); err != nil {
			return nil, err
		}
	}
	return f.Scenarios, nil
}

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario JSON file (overrides the mix flags below)")
		out      = flag.String("out", "", "append machine-readable result rows to this CSV file")
		wait     = flag.Duration("wait", 0, "poll every target's /healthz for up to this long before starting")

		url       = flag.String("url", "http://localhost:8091", "phastd base URL (flag mode; scenario files carry their own targets)")
		mode      = flag.String("mode", "closed", "arrival mode: closed (fixed concurrency) or open (fixed rate)")
		c         = flag.Int("c", 16, "closed-loop concurrency (workers)")
		qps       = flag.Float64("qps", 50, "open-loop target arrival rate (requests/second)")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		total     = flag.Int("requests", 0, "stop after this many requests (0 = duration-bound)")
		dup       = flag.Float64("dup", 0.5, "probability a request duplicates one of -pool configs (0..1)")
		pool      = flag.Int("pool", 4, "distinct configs in the duplicate pool")
		zipfS     = flag.Float64("zipf", 0, "zipfian skew over the duplicate pool (> 1; 0 = uniform)")
		app       = flag.String("app", "511.povray", "workload name")
		predictor = flag.String("predictor", "phast", "predictor spec")
		machine   = flag.String("machine", "alderlake", "machine configuration")
		n         = flag.Int("n", 20_000, "instructions per simulation")
		timeoutMS = flag.Int64("timeout-ms", 60_000, "per-request deadline sent to the server")
		seed      = flag.Int64("seed", 1, "workload-mix random seed")
	)
	flag.Parse()

	var (
		scenarios []Scenario
		err       error
	)
	if *scenario != "" {
		scenarios, err = loadScenarios(*scenario)
		if err != nil {
			fatal(err)
		}
	} else {
		sc, err := Scenario{
			Targets: []string{*url}, Mode: *mode, Concurrency: *c, QPS: *qps,
			Requests: *total, DurationMS: duration.Milliseconds(),
			Dup: *dup, Pool: *pool, ZipfS: *zipfS,
			Config: sim.Config{
				App: *app, Machine: *machine, Predictor: *predictor, Instructions: *n,
			},
			TimeoutMS: *timeoutMS, Seed: *seed,
		}.norm()
		if err != nil {
			fatal(err)
		}
		scenarios = []Scenario{sc}
	}

	if *wait > 0 {
		targets := map[string]bool{}
		for _, sc := range scenarios {
			for _, t := range sc.Targets {
				targets[t] = true
			}
		}
		for t := range targets {
			if err := waitHealthy(t, *wait); err != nil {
				fatal(err)
			}
		}
	}

	rows := make([]resultRow, 0, len(scenarios))
	for _, sc := range scenarios {
		rows = append(rows, runScenario(sc))
	}
	if *out != "" {
		if err := writeCSV(*out, rows); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phastload: %d result row(s) appended to %s\n", len(rows), *out)
	}
}

// waitHealthy polls target/healthz until it answers 200 or the budget runs
// out — so scripts can start a fleet and the harness back to back.
func waitHealthy(target string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(target + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("target %s not healthy after %s", target, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runScenario executes one scenario, prints the human tables, and returns
// the machine-readable row.
func runScenario(sc Scenario) resultRow {
	fmt.Printf("== scenario %s: %s over %d target(s), dup=%g pool=%d zipf=%g ==\n",
		sc.Name, sc.Mode, len(sc.Targets), sc.Dup, sc.Pool, sc.ZipfS)

	before, err := fetchMetricsAll(sc.Targets)
	if err != nil {
		fatal("server unreachable:", err)
	}

	// Pre-plan the request mix so the workload is reproducible under the
	// scenario seed. Duplicate-pool seeds are 1..pool (zipf-skewed when
	// configured); unique requests get seeds far above the pool.
	rng := rand.New(rand.NewSource(sc.Seed))
	var zipf *rand.Zipf
	if sc.ZipfS > 1 && sc.Pool > 1 {
		zipf = rand.NewZipf(rng, sc.ZipfS, 1, uint64(sc.Pool-1))
	}
	seedOf := func(i int) int64 {
		_ = i
		if rng.Float64() < sc.Dup {
			if zipf != nil {
				return int64(1 + zipf.Uint64())
			}
			return int64(1 + rng.Intn(sc.Pool))
		}
		return 1_000_000 + rng.Int63n(1<<40)
	}

	planned := sc.Requests
	if planned == 0 {
		planned = 1 << 20 // effectively duration-bound
	}
	lg := &loadgen{
		targets:   sc.Targets,
		client:    &http.Client{},
		cfg:       sc.Config,
		timeoutMS: sc.TimeoutMS,
		unique:    map[int64]bool{},
	}

	deadline := time.Now().Add(time.Duration(sc.DurationMS) * time.Millisecond)
	start := time.Now()
	switch sc.Mode {
	case "closed":
		lg.closedLoop(sc.Concurrency, planned, deadline, seedOf)
	case "open":
		lg.openLoop(sc.QPS, sc.Burst, planned, deadline, seedOf)
	}
	elapsed := time.Since(start)

	after, err := fetchMetricsAll(sc.Targets)
	if err != nil {
		fatal("server metrics after the run:", err)
	}
	lg.report(os.Stdout, sc.Name, elapsed, before, after)
	return lg.row(sc, elapsed, before, after)
}

// loadgen issues requests and accumulates client-side outcomes.
type loadgen struct {
	targets   []string
	rr        atomic.Int64 // round-robin cursor over targets
	client    *http.Client
	cfg       sim.Config
	timeoutMS int64

	mu        sync.Mutex
	latencies []time.Duration
	unique    map[int64]bool // distinct config seeds actually sent
	ok        int
	rejected  int // HTTP 429: admission-control backpressure
	failed    int // anything else
}

// next sends request i with the given stream seed and records its outcome.
// Targets are round-robined: any fleet member accepts any config.
func (l *loadgen) next(seed int64) {
	cfg := l.cfg
	cfg.Seed = seed
	body, err := json.Marshal(server.RunRequest{Config: cfg, TimeoutMS: l.timeoutMS})
	if err != nil {
		fatal(err)
	}
	target := l.targets[int(l.rr.Add(1)-1)%len(l.targets)]
	start := time.Now()
	resp, err := l.client.Post(target+"/v1/runs", "application/json", bytes.NewReader(body))
	lat := time.Since(start)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.latencies = append(l.latencies, lat)
	l.unique[seed] = true
	if err != nil {
		l.failed++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		l.ok++
	case http.StatusTooManyRequests:
		l.rejected++
	default:
		l.failed++
	}
}

// closedLoop runs c workers, each issuing its next request as soon as the
// previous one completes — throughput adapts to server latency.
func (l *loadgen) closedLoop(c, total int, deadline time.Time, seedOf func(int) int64) {
	seeds := make(chan int64, c)
	go func() {
		defer close(seeds)
		for i := 0; i < total && time.Now().Before(deadline); i++ {
			seeds <- seedOf(i)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				if !time.Now().Before(deadline) {
					return
				}
				l.next(seed)
			}
		}()
	}
	wg.Wait()
}

// openLoop fires requests at a fixed rate regardless of completions — the
// latency distribution then includes server-side queueing under overload.
// A burst spec modulates the rate (factor× for the first width of every
// period). In-flight requests are capped at 4096 as an OOM backstop;
// arrivals past the cap count as client-side drops (reported as failed).
func (l *loadgen) openLoop(qps float64, burst *Burst, total int, deadline time.Time, seedOf func(int) int64) {
	start := time.Now()
	next := start
	var inflight atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total && time.Now().Before(deadline); i++ {
		rate := qps
		if burst != nil {
			period := time.Duration(burst.PeriodMS) * time.Millisecond
			width := time.Duration(burst.WidthMS) * time.Millisecond
			if time.Since(start)%period < width {
				rate *= burst.Factor
			}
		}
		next = next.Add(time.Duration(float64(time.Second) / rate))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if inflight.Load() >= 4096 {
			l.mu.Lock()
			l.failed++
			l.mu.Unlock()
			continue
		}
		seed := seedOf(i)
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			l.next(seed)
		}()
	}
	wg.Wait()
}

// fetchMetrics pulls one server's counter snapshot.
func fetchMetrics(url string) (server.MetricsResponse, error) {
	var m server.MetricsResponse
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("GET %s/metrics: %s", url, resp.Status)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// fetchMetricsAll sums counter snapshots across every target — the fleet's
// aggregate view, so "total simulations executed" means cluster-wide.
func fetchMetricsAll(targets []string) (map[string]uint64, error) {
	sum := map[string]uint64{}
	for _, t := range targets {
		m, err := fetchMetrics(t)
		if err != nil {
			return nil, err
		}
		for name, v := range m.Counters {
			sum[name] += v
		}
	}
	return sum, nil
}

// serverCounters are the counter deltas reported per scenario, in table and
// CSV column order.
var serverCounters = []string{
	server.CounterRequests, server.CounterAccepted, server.CounterQueued,
	server.CounterRejected, server.CounterCoalesced,
	server.CounterProxied, server.CounterProxyErrors, server.CounterPeerRuns,
	runcache.CounterPeerHits, runcache.CounterPeerErrors, server.CounterPeerCacheServed,
	runcache.CounterMemHits, runcache.CounterDiskHits, runcache.CounterMisses,
	runcache.CounterRunsSimulated,
}

func (l *loadgen) pct(q float64) time.Duration {
	if len(l.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(l.latencies)-1))
	return l.latencies[i]
}

// report renders the client-side latency distribution and the server-side
// counter deltas for the run. Callers hold no lock; latencies are final.
func (l *loadgen) report(w io.Writer, name string, elapsed time.Duration, before, after map[string]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.Slice(l.latencies, func(i, j int) bool { return l.latencies[i] < l.latencies[j] })
	n := len(l.latencies)

	t := stats.NewTable(fmt.Sprintf("%s — client side", name), "metric", "value")
	t.AddRowf("requests", n)
	t.AddRowf("unique configs", len(l.unique))
	t.AddRowf("ok", l.ok)
	t.AddRowf("rejected (429)", l.rejected)
	t.AddRowf("failed", l.failed)
	t.AddRow("elapsed", elapsed.Round(time.Millisecond).String())
	t.AddRow("achieved rps", fmt.Sprintf("%.1f", float64(n)/elapsed.Seconds()))
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1.0}} {
		t.AddRow("latency "+p.name, l.pct(p.q).Round(time.Microsecond).String())
	}
	fmt.Fprint(w, t)

	st := stats.NewTable(fmt.Sprintf("%s — server side (delta over the run, summed across %d target(s))",
		name, len(l.targets)), "counter", "delta")
	for _, cname := range serverCounters {
		st.AddRowf(cname, after[cname]-before[cname])
	}
	fmt.Fprint(w, st)
}

// resultRow is one scenario's machine-readable outcome: the CSV schema of
// the harness. Column order is csvHeader's.
type resultRow struct {
	scenario string
	targets  int
	mode     string
	requests int
	unique   int
	ok       int
	rejected int
	failed   int
	elapsedS float64
	rps      float64
	latMS    [4]float64 // p50, p90, p99, max
	deltas   map[string]uint64
}

func (l *loadgen) row(sc Scenario, elapsed time.Duration, before, after map[string]uint64) resultRow {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := resultRow{
		scenario: sc.Name,
		targets:  len(sc.Targets),
		mode:     sc.Mode,
		requests: len(l.latencies),
		unique:   len(l.unique),
		ok:       l.ok,
		rejected: l.rejected,
		failed:   l.failed,
		elapsedS: elapsed.Seconds(),
		rps:      float64(len(l.latencies)) / elapsed.Seconds(),
		deltas:   map[string]uint64{},
	}
	for i, q := range []float64{0.50, 0.90, 0.99, 1.0} {
		r.latMS[i] = float64(l.pct(q)) / float64(time.Millisecond)
	}
	for _, name := range serverCounters {
		r.deltas[name] = after[name] - before[name]
	}
	return r
}

func csvHeader() []string {
	h := []string{
		"scenario", "targets", "mode", "requests", "unique", "ok", "rejected",
		"failed", "elapsed_s", "rps", "p50_ms", "p90_ms", "p99_ms", "max_ms",
	}
	for _, name := range serverCounters {
		h = append(h, strings.NewReplacer(".", "_").Replace(name))
	}
	return h
}

// writeCSV appends rows to path, writing the header only when the file is
// new or empty — successive harness invocations build one results table.
func writeCSV(path string, rows []resultRow) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if st.Size() == 0 {
		if err := w.Write(csvHeader()); err != nil {
			return err
		}
	}
	for _, r := range rows {
		rec := []string{
			r.scenario,
			fmt.Sprint(r.targets),
			r.mode,
			fmt.Sprint(r.requests),
			fmt.Sprint(r.unique),
			fmt.Sprint(r.ok),
			fmt.Sprint(r.rejected),
			fmt.Sprint(r.failed),
			fmt.Sprintf("%.3f", r.elapsedS),
			fmt.Sprintf("%.1f", r.rps),
			fmt.Sprintf("%.3f", r.latMS[0]),
			fmt.Sprintf("%.3f", r.latMS[1]),
			fmt.Sprintf("%.3f", r.latMS[2]),
			fmt.Sprintf("%.3f", r.latMS[3]),
		}
		for _, name := range serverCounters {
			rec = append(rec, fmt.Sprint(r.deltas[name]))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
