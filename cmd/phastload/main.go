// phastload is the load generator and scenario benchmark harness for phastd
// (ReqBench-style): declarative workload files in, machine-readable
// throughput/latency tables out.
//
// A scenario describes one traffic experiment — target node(s), arrival
// process, and request mix — and the harness reports client-side latency
// percentiles next to the servers' own counter deltas (admission control,
// coalescing, cache tiers, fleet peer traffic), so a 1-node-vs-3-node
// scaling curve is a one-command, reproducible artifact:
//
//	phastload -scenario scenarios/fleet.json -out results.csv
//
// where fleet.json holds one or more scenarios:
//
//	{"scenarios": [{
//	  "name": "fleet-3n",
//	  "targets": ["http://10.0.0.1:8091", "http://10.0.0.2:8091", "http://10.0.0.3:8091"],
//	  "mode": "closed", "concurrency": 16, "requests": 500,
//	  "dup": 0.6, "pool": 8, "zipf_s": 1.2,
//	  "config": {"App": "511.povray", "Predictor": "phast", "Instructions": 20000},
//	  "seed": 1
//	}]}
//
// Requests round-robin across targets (any fleet member accepts any
// config); the CSV gets one target="all" row with summed metrics deltas
// plus, for multi-target scenarios, one row per member with its own deltas
// (restart-reset counters are clamped to their post-restart values). The
// harness doubles as the fleet chaos driver: "chaos" schedules shell
// commands mid-run (kill a node at +2s, restart it after 300 requests),
// "failover": true makes the client retry transport/gateway failures
// against the remaining targets, "think_ms" paces closed-loop workers, and
// -digests records a sha256 per result row so two runs over the same mix
// can be compared byte-for-byte. The mix knobs:
// dup is the probability a request re-asks one of pool known configs
// (duplicates in flight exercise coalescing, duplicates after exercise the
// caches); zipf_s > 1 skews which pool config is re-asked (a Zipfian
// popularity curve — a few configs go viral); burst modulates open-loop
// arrivals ({"period_ms": 2000, "width_ms": 250, "factor": 8} fires an
// 8x arrival spike for the first 250ms of every 2s).
//
// Multi-tenant scenarios: "tenant" stamps every request with the
// X-Phast-Tenant header (the identity the server's quotas and weighted-fair
// scheduler key on); "upload" runs a bring-your-own-workload phase before
// load starts — the harness generates a trace, POSTs it to /v1/traces, and
// substitutes the minted digest for "@upload" in the config's App, so
// {"config": {"App": "trace:@upload"}, "upload": {"app": "519.lbm",
// "insts": 20000, "seed": 7, "target": 0}} runs an uploaded trace by
// digest; and consecutive scenarios sharing a non-empty "group" run
// concurrently instead of sequentially — a heavy and a light tenant
// loading the same fleet at the same time is the two-tenant fairness
// experiment. Note that concurrent scenarios over the same targets see
// each other's traffic in their server-side counter deltas; the
// client-side columns stay per-scenario.
//
// A "job" phase drives the server-side autotuner (phastd -jobs-dir): the
// harness POSTs the embedded spec to /v1/jobs, polls GET /v1/jobs/{id}
// until the job is terminal, and can write the winner's stats table and
// config to files ({"job": {"spec": {...}, "table_out": "winner.txt",
// "config_out": "winner.json"}}). A scenario with a job and no "requests"
// is job-only — the autotuner smoke (scripts/jobs_smoke.sh) is built from
// these; a scenario with both runs the job first, then the load, so the
// counter deltas capture the two together.
//
// Without -scenario the flags describe a single anonymous scenario:
//
//	phastload -url http://localhost:8091 -mode closed -c 16 -duration 10s -dup 0.5
//	phastload -url http://localhost:8091 -mode open -qps 50 -duration 30s
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/runcache"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"phastload:"}, v...)...)
	os.Exit(1)
}

// Burst modulates an open-loop arrival process: for the first WidthMS of
// every PeriodMS window, the arrival rate is multiplied by Factor.
type Burst struct {
	PeriodMS int64   `json:"period_ms"`
	WidthMS  int64   `json:"width_ms"`
	Factor   float64 `json:"factor"`
}

// ChaosEvent schedules one shell command against the environment mid-run —
// the fleet-chaos hook (kill a node, restart it, partition a link). The
// trigger is either a wall-clock offset from load start (at_ms) or a
// completed-request count (after_requests); exec runs via sh -c,
// synchronously within its own event (so "kill X; sleep 1; restart X"
// chains work), concurrently with the load. Events that have not fired by
// the end of the load fire then — a scheduled recovery must happen even if
// the load finishes early, or the harness would leave dead nodes behind.
type ChaosEvent struct {
	AtMS          int64  `json:"at_ms,omitempty"`
	AfterRequests int64  `json:"after_requests,omitempty"`
	Exec          string `json:"exec"`
}

// UploadSpec is a scenario's bring-your-own-workload phase: before load
// starts, the harness generates a trace locally (the same generator the
// server's built-in apps use, so the bytes are reproducible from the seed),
// uploads it via POST /v1/traces, and substitutes the returned digest for
// the "@upload" placeholder in the scenario config's App — a run mix over
// "trace:@upload" then exercises the full uploaded-trace path: store
// admission, ring replication, peer trace fetch, run-by-digest.
type UploadSpec struct {
	App   string `json:"app,omitempty"`
	Insts int    `json:"insts,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Target indexes the scenario's targets: which member receives the
	// upload. Running against the OTHER members is the point — it proves
	// any node can serve a trace it never ingested.
	Target int `json:"target,omitempty"`
}

// JobPhase drives a server-side autotuner job before the load starts: POST
// the spec to /v1/jobs on the chosen target, poll GET /v1/jobs/{id} until
// terminal, and optionally persist the winner's artifacts. The harness
// fatals if the job fails, is cancelled, or outlives the timeout — a
// scenario that asked for a job cannot meaningfully report without it.
type JobPhase struct {
	// Spec is the job spec JSON, embedded verbatim (see internal/jobs).
	Spec json.RawMessage `json:"spec"`
	// Target indexes the scenario's targets: which member receives the
	// submission and the polls.
	Target int `json:"target,omitempty"`
	// PollMS is the status poll period (default 200).
	PollMS int64 `json:"poll_ms,omitempty"`
	// TimeoutMS bounds the whole job from submission to terminal state
	// (default 180000).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TableOut, when set, receives the winner's stats table verbatim —
	// byte-comparable against `paperfigs -config` over the same config.
	TableOut string `json:"table_out,omitempty"`
	// ConfigOut, when set, receives the winner's config as JSON (feed it
	// back to `paperfigs -config "$(cat ...)"`).
	ConfigOut string `json:"config_out,omitempty"`
}

// Scenario is one declarative traffic experiment. Zero-valued fields take
// the defaults documented on the flags.
type Scenario struct {
	Name    string   `json:"name"`
	Targets []string `json:"targets"`
	// Tenant stamps every request (uploads and runs) with the X-Phast-Tenant
	// header — the identity the server's quotas and weighted-fair scheduler
	// key on. Empty means the server's default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Group: consecutive scenarios sharing a non-empty group run
	// concurrently (started together, joined together) instead of
	// sequentially — how a two-tenant fairness experiment puts a heavy and
	// a light tenant on the same fleet at the same time.
	Group string `json:"group,omitempty"`
	// Upload generates and uploads a trace before load starts; see UploadSpec.
	Upload *UploadSpec `json:"upload,omitempty"`
	// Job submits an autotuner job and waits for it before load starts; a
	// scenario with a job and Requests == 0 is job-only (no load loop).
	Job *JobPhase `json:"job,omitempty"`
	// Mode is the arrival process: "closed" (Concurrency workers, next
	// request on completion) or "open" (fixed QPS; latency then includes
	// server-side queueing under overload).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps"`
	// Requests stops the run after this many requests (0 = duration-bound).
	Requests   int   `json:"requests"`
	DurationMS int64 `json:"duration_ms"`
	// Dup is the probability a request re-asks one of Pool known configs.
	Dup  float64 `json:"dup"`
	Pool int     `json:"pool"`
	// ZipfS skews duplicate popularity within the pool (values > 1; 0 or 1
	// means uniform): higher = fewer configs take more of the traffic.
	ZipfS float64 `json:"zipf_s"`
	Burst *Burst  `json:"burst,omitempty"`
	// ThinkMS pauses each closed-loop worker between requests (client think
	// time), turning pure back-to-back load into a paced session mix.
	ThinkMS int64 `json:"think_ms"`
	// Failover retries a request that failed at the transport level or with
	// a gateway-ish status (502/503/504) against the remaining targets, one
	// pass — how a real client rides out a node restart. The total latency
	// (all attempts) is what gets recorded.
	Failover bool `json:"failover"`
	// Chaos schedules shell commands against the environment mid-run.
	Chaos []ChaosEvent `json:"chaos,omitempty"`
	// Config is the base simulation config; each request stamps a Seed from
	// the mix, so distinct seeds are distinct cache keys.
	Config    sim.Config `json:"config"`
	TimeoutMS int64      `json:"timeout_ms"`
	Seed      int64      `json:"seed"`
}

// norm fills a scenario's defaults and validates the knobs.
func (sc Scenario) norm() (Scenario, error) {
	if sc.Name == "" {
		sc.Name = "adhoc"
	}
	if len(sc.Targets) == 0 {
		return sc, fmt.Errorf("scenario %q has no targets", sc.Name)
	}
	for i, t := range sc.Targets {
		sc.Targets[i] = strings.TrimRight(strings.TrimSpace(t), "/")
	}
	if sc.Mode == "" {
		sc.Mode = "closed"
	}
	if sc.Mode != "closed" && sc.Mode != "open" {
		return sc, fmt.Errorf("scenario %q: unknown mode %q", sc.Name, sc.Mode)
	}
	if sc.Concurrency <= 0 {
		sc.Concurrency = 16
	}
	if sc.QPS <= 0 {
		sc.QPS = 50
	}
	if sc.DurationMS <= 0 {
		sc.DurationMS = 10_000
	}
	if sc.Dup < 0 || sc.Dup > 1 {
		return sc, fmt.Errorf("scenario %q: dup %g out of [0,1]", sc.Name, sc.Dup)
	}
	if sc.Pool <= 0 {
		sc.Pool = 4
	}
	if sc.ZipfS != 0 && sc.ZipfS <= 1 {
		return sc, fmt.Errorf("scenario %q: zipf_s must be > 1 (or 0 for uniform)", sc.Name)
	}
	if b := sc.Burst; b != nil && (b.PeriodMS <= 0 || b.WidthMS <= 0 || b.WidthMS > b.PeriodMS || b.Factor <= 0) {
		return sc, fmt.Errorf("scenario %q: bad burst %+v (want 0 < width_ms <= period_ms, factor > 0)", sc.Name, *b)
	}
	if sc.ThinkMS < 0 {
		return sc, fmt.Errorf("scenario %q: negative think_ms", sc.Name)
	}
	for i, ev := range sc.Chaos {
		if ev.Exec == "" {
			return sc, fmt.Errorf("scenario %q: chaos[%d] has no exec", sc.Name, i)
		}
		if ev.AtMS < 0 || ev.AfterRequests < 0 {
			return sc, fmt.Errorf("scenario %q: chaos[%d] has a negative trigger", sc.Name, i)
		}
	}
	if up := sc.Upload; up != nil {
		if up.App == "" {
			up.App = "511.povray"
		}
		if up.Insts <= 0 {
			up.Insts = 20_000
		}
		if up.Seed == 0 {
			up.Seed = 1
		}
		if up.Target < 0 || up.Target >= len(sc.Targets) {
			return sc, fmt.Errorf("scenario %q: upload target %d out of range (have %d targets)",
				sc.Name, up.Target, len(sc.Targets))
		}
	}
	if jp := sc.Job; jp != nil {
		if len(jp.Spec) == 0 {
			return sc, fmt.Errorf("scenario %q: job phase has no spec", sc.Name)
		}
		if jp.Target < 0 || jp.Target >= len(sc.Targets) {
			return sc, fmt.Errorf("scenario %q: job target %d out of range (have %d targets)",
				sc.Name, jp.Target, len(sc.Targets))
		}
		if jp.PollMS <= 0 {
			jp.PollMS = 200
		}
		if jp.TimeoutMS <= 0 {
			jp.TimeoutMS = 180_000
		}
	}
	if strings.Contains(sc.Config.App, "@upload") && sc.Upload == nil {
		return sc, fmt.Errorf("scenario %q: config app %q references @upload but has no upload spec",
			sc.Name, sc.Config.App)
	}
	if sc.Config.App == "" {
		sc.Config.App = "511.povray"
	}
	if sc.Config.Predictor == "" {
		sc.Config.Predictor = "phast"
	}
	if sc.Config.Machine == "" {
		sc.Config.Machine = "alderlake"
	}
	if sc.Config.Instructions == 0 {
		sc.Config.Instructions = 20_000
	}
	if sc.TimeoutMS == 0 {
		sc.TimeoutMS = 60_000
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc, nil
}

// scenarioFile is the top-level shape of a -scenario JSON document.
type scenarioFile struct {
	Scenarios []Scenario `json:"scenarios"`
}

func loadScenarios(path string) ([]Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f scenarioFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		// Also accept a bare single scenario object.
		var one Scenario
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err2 := dec.Decode(&one); err2 != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		f.Scenarios = []Scenario{one}
	}
	if len(f.Scenarios) == 0 {
		return nil, fmt.Errorf("%s: no scenarios", path)
	}
	for i := range f.Scenarios {
		if f.Scenarios[i], err = f.Scenarios[i].norm(); err != nil {
			return nil, err
		}
	}
	return f.Scenarios, nil
}

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario JSON file (overrides the mix flags below)")
		out      = flag.String("out", "", "append machine-readable result rows to this CSV file")
		digests  = flag.String("digests", "", "append scenario,seed,sha256(run) rows to this file (bit-exactness artifact)")
		wait     = flag.Duration("wait", 0, "poll every target's /healthz for up to this long before starting")

		url       = flag.String("url", "http://localhost:8091", "phastd base URL (flag mode; scenario files carry their own targets)")
		mode      = flag.String("mode", "closed", "arrival mode: closed (fixed concurrency) or open (fixed rate)")
		c         = flag.Int("c", 16, "closed-loop concurrency (workers)")
		qps       = flag.Float64("qps", 50, "open-loop target arrival rate (requests/second)")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		total     = flag.Int("requests", 0, "stop after this many requests (0 = duration-bound)")
		dup       = flag.Float64("dup", 0.5, "probability a request duplicates one of -pool configs (0..1)")
		pool      = flag.Int("pool", 4, "distinct configs in the duplicate pool")
		zipfS     = flag.Float64("zipf", 0, "zipfian skew over the duplicate pool (> 1; 0 = uniform)")
		app       = flag.String("app", "511.povray", "workload name")
		predictor = flag.String("predictor", "phast", "predictor spec")
		machine   = flag.String("machine", "alderlake", "machine configuration")
		n         = flag.Int("n", 20_000, "instructions per simulation")
		timeoutMS = flag.Int64("timeout-ms", 60_000, "per-request deadline sent to the server")
		seed      = flag.Int64("seed", 1, "workload-mix random seed")
	)
	flag.Parse()

	var (
		scenarios []Scenario
		err       error
	)
	if *scenario != "" {
		scenarios, err = loadScenarios(*scenario)
		if err != nil {
			fatal(err)
		}
	} else {
		sc, err := Scenario{
			Targets: []string{*url}, Mode: *mode, Concurrency: *c, QPS: *qps,
			Requests: *total, DurationMS: duration.Milliseconds(),
			Dup: *dup, Pool: *pool, ZipfS: *zipfS,
			Config: sim.Config{
				App: *app, Machine: *machine, Predictor: *predictor, Instructions: *n,
			},
			TimeoutMS: *timeoutMS, Seed: *seed,
		}.norm()
		if err != nil {
			fatal(err)
		}
		scenarios = []Scenario{sc}
	}

	if *wait > 0 {
		targets := map[string]bool{}
		for _, sc := range scenarios {
			for _, t := range sc.Targets {
				targets[t] = true
			}
		}
		for t := range targets {
			if err := waitHealthy(t, *wait); err != nil {
				fatal(err)
			}
		}
	}

	// Consecutive scenarios sharing a non-empty group run concurrently —
	// the two-tenant fairness experiment needs a heavy and a light tenant
	// loading the same fleet at the same time. Everything else runs in file
	// order, one at a time.
	rows := make([]resultRow, 0, len(scenarios))
	for i := 0; i < len(scenarios); {
		j := i + 1
		for scenarios[i].Group != "" && j < len(scenarios) && scenarios[j].Group == scenarios[i].Group {
			j++
		}
		if j-i == 1 {
			rows = append(rows, runScenario(scenarios[i], *digests)...)
		} else {
			fmt.Printf("== group %s: %d scenarios concurrently ==\n", scenarios[i].Group, j-i)
			var (
				mu sync.Mutex
				wg sync.WaitGroup
			)
			for _, sc := range scenarios[i:j] {
				wg.Add(1)
				go func(sc Scenario) {
					defer wg.Done()
					r := runScenario(sc, *digests)
					mu.Lock()
					rows = append(rows, r...)
					mu.Unlock()
				}(sc)
			}
			wg.Wait()
		}
		i = j
	}
	if *out != "" {
		if err := writeCSV(*out, rows); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "phastload: %d result row(s) appended to %s\n", len(rows), *out)
	}
}

// waitHealthy polls target/healthz until it answers 200 or the budget runs
// out — so scripts can start a fleet and the harness back to back.
func waitHealthy(target string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(target + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("target %s not healthy after %s", target, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runScenario executes one scenario, prints the human tables, and returns
// the machine-readable rows: one summed "all" row, plus one row per target
// when there are several (who actually did the work — essential when a
// chaos event reshuffles ring ownership mid-run).
func runScenario(sc Scenario, digestPath string) []resultRow {
	fmt.Printf("== scenario %s: %s over %d target(s), dup=%g pool=%d zipf=%g ==\n",
		sc.Name, sc.Mode, len(sc.Targets), sc.Dup, sc.Pool, sc.ZipfS)

	before, err := fetchMetricsEach(sc.Targets)
	if err != nil {
		fatal("server unreachable:", err)
	}

	// Upload after the "before" snapshot so the ingestion counters land
	// inside this scenario's delta.
	if sc.Upload != nil {
		digest := uploadTrace(sc)
		sc.Config.App = strings.ReplaceAll(sc.Config.App, "@upload", digest)
	}

	// The job phase also runs inside the delta: a job-only scenario's CSV
	// row then reports exactly what the job cost the fleet (runs simulated,
	// cache traffic, trial rows).
	var jobStatus *jobs.Status
	if sc.Job != nil {
		jobStatus = runJob(sc)
	}

	// Pre-plan the request mix so the workload is reproducible under the
	// scenario seed. Duplicate-pool seeds are 1..pool (zipf-skewed when
	// configured); unique requests get seeds far above the pool.
	rng := rand.New(rand.NewSource(sc.Seed))
	var zipf *rand.Zipf
	if sc.ZipfS > 1 && sc.Pool > 1 {
		zipf = rand.NewZipf(rng, sc.ZipfS, 1, uint64(sc.Pool-1))
	}
	seedOf := func(i int) int64 {
		_ = i
		if rng.Float64() < sc.Dup {
			if zipf != nil {
				return int64(1 + zipf.Uint64())
			}
			return int64(1 + rng.Intn(sc.Pool))
		}
		return 1_000_000 + rng.Int63n(1<<40)
	}

	planned := sc.Requests
	if planned == 0 {
		planned = 1 << 20 // effectively duration-bound
	}
	lg := &loadgen{
		targets:   sc.Targets,
		tenant:    sc.Tenant,
		client:    &http.Client{},
		cfg:       sc.Config,
		timeoutMS: sc.TimeoutMS,
		thinkMS:   sc.ThinkMS,
		failover:  sc.Failover,
		digest:    digestPath != "",
		unique:    map[int64]bool{},
		digests:   map[int64]string{},
	}

	deadline := time.Now().Add(time.Duration(sc.DurationMS) * time.Millisecond)
	start := time.Now()
	chaosDone := make(chan struct{})
	var chaosWG sync.WaitGroup
	for i, ev := range sc.Chaos {
		chaosWG.Add(1)
		go func(i int, ev ChaosEvent) {
			defer chaosWG.Done()
			waitChaosTrigger(ev, lg, chaosDone)
			fireChaos(i, ev, start)
		}(i, ev)
	}

	if sc.Job == nil || sc.Requests > 0 {
		switch sc.Mode {
		case "closed":
			lg.closedLoop(sc.Concurrency, planned, deadline, seedOf)
		case "open":
			lg.openLoop(sc.QPS, sc.Burst, planned, deadline, seedOf)
		}
	}
	elapsed := time.Since(start)
	close(chaosDone) // unmet events fire now
	chaosWG.Wait()

	if len(sc.Chaos) > 0 {
		// Chaos scripts kill and restart nodes; every target must be
		// answering again before the "after" snapshot (and before the next
		// scenario inherits the fleet).
		for _, t := range sc.Targets {
			if err := waitHealthy(t, 30*time.Second); err != nil {
				fatal(err)
			}
		}
	}
	after, err := fetchMetricsEach(sc.Targets)
	if err != nil {
		fatal("server metrics after the run:", err)
	}
	perTarget := make(map[string]map[string]uint64, len(sc.Targets))
	allDeltas := map[string]uint64{}
	for _, t := range sc.Targets {
		d := make(map[string]uint64, len(serverCounters))
		for _, name := range serverCounters {
			d[name] = counterDelta(before[t][name], after[t][name])
			allDeltas[name] += d[name]
		}
		perTarget[t] = d
	}

	lg.report(os.Stdout, sc.Name, elapsed, allDeltas)
	if digestPath != "" {
		if err := writeDigests(digestPath, sc.Name, lg.digests); err != nil {
			fatal(err)
		}
	}
	row := lg.row(sc, elapsed, allDeltas)
	if jobStatus != nil {
		row.jobState = jobStatus.State
		row.jobTrials = jobStatus.CompletedTrials
	}
	rows := []resultRow{row}
	if len(sc.Targets) > 1 {
		for _, t := range sc.Targets {
			rows = append(rows, targetRow(sc, t, perTarget[t]))
		}
	}
	return rows
}

// runJob executes a scenario's autotuner phase: submit the spec, poll until
// the job is terminal, persist the winner artifacts, return the final
// status. Resubmission of a spec the server already finished is idempotent
// (same digest, same job), so the poll loop exits on the first status.
func runJob(sc Scenario) *jobs.Status {
	jp := sc.Job
	target := sc.Targets[jp.Target]
	st := jobRequest(sc, http.MethodPost, target+"/v1/jobs", bytes.NewReader(jp.Spec))
	fmt.Printf("scenario %s: job %s submitted (state=%s, %d/%d trials)\n",
		sc.Name, shortID(st.ID), st.State, st.CompletedTrials, st.PlannedTrials)
	deadline := time.Now().Add(time.Duration(jp.TimeoutMS) * time.Millisecond)
	for st.State == "running" {
		if !time.Now().Before(deadline) {
			fatal(fmt.Sprintf("scenario %s: job %s still running after %dms", sc.Name, shortID(st.ID), jp.TimeoutMS))
		}
		time.Sleep(time.Duration(jp.PollMS) * time.Millisecond)
		st = jobRequest(sc, http.MethodGet, target+"/v1/jobs/"+st.ID, nil)
	}
	if st.State != "done" {
		fatal(fmt.Sprintf("scenario %s: job %s ended %s: %s", sc.Name, shortID(st.ID), st.State, st.Error))
	}
	if st.Winner == nil {
		fatal(fmt.Sprintf("scenario %s: job %s done without a winner", sc.Name, shortID(st.ID)))
	}
	fmt.Printf("scenario %s: job %s done — winner %s score=%.4f (%d trials, digest %s)\n",
		sc.Name, shortID(st.ID), st.Winner.Predictor, st.Winner.Score, st.CompletedTrials, shortID(st.ResultDigest))
	if jp.TableOut != "" {
		if err := os.WriteFile(jp.TableOut, []byte(st.Winner.Table), 0o644); err != nil {
			fatal(err)
		}
	}
	if jp.ConfigOut != "" {
		data, err := json.Marshal(st.Winner.Config)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jp.ConfigOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	return st
}

// jobRequest performs one /v1/jobs call with the scenario's tenant header
// and decodes the status, fataling on any non-200.
func jobRequest(sc Scenario, method, url string, body io.Reader) *jobs.Status {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if sc.Tenant != "" {
		req.Header.Set(server.TenantHeader, sc.Tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal("job request:", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Sprintf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(data)))
	}
	var st jobs.Status
	if err := json.Unmarshal(data, &st); err != nil {
		fatal("job response:", err)
	}
	return &st
}

// shortID abbreviates a job/digest hex ID for log lines.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// uploadTrace runs a scenario's bring-your-own-workload phase: generate the
// trace locally, stream it to the chosen target with the scenario's tenant
// header, and return the content digest the server minted. The harness
// fatals on any failure — a scenario that asked for an upload cannot
// meaningfully run without it.
func uploadTrace(sc Scenario) string {
	up := sc.Upload
	tr, err := sim.TraceFor(up.App, up.Insts, up.Seed)
	if err != nil {
		fatal("upload trace generation:", err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		fatal("upload trace encoding:", err)
	}
	target := sc.Targets[up.Target]
	req, err := http.NewRequest(http.MethodPost, target+"/v1/traces", bytes.NewReader(buf.Bytes()))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if sc.Tenant != "" {
		req.Header.Set(server.TenantHeader, sc.Tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal("trace upload:", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Sprintf("trace upload to %s: %s: %s", target, resp.Status, bytes.TrimSpace(body)))
	}
	var ur server.TraceUploadResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		fatal("trace upload response:", err)
	}
	fmt.Printf("scenario %s: uploaded %s/%d/seed=%d as trace:%s (%d bytes, %d insts, dup=%v)\n",
		sc.Name, up.App, up.Insts, up.Seed, ur.Digest, ur.Bytes, ur.Insts, ur.Dup)
	return ur.Digest
}

// waitChaosTrigger blocks until the event's trigger condition is met or the
// load ends, whichever comes first — a scheduled recovery must still happen
// even if the load finishes early, or the harness leaves dead nodes behind.
func waitChaosTrigger(ev ChaosEvent, lg *loadgen, loadDone <-chan struct{}) {
	if ev.AfterRequests > 0 {
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for lg.completed.Load() < ev.AfterRequests {
			select {
			case <-loadDone:
				return
			case <-tick.C:
			}
		}
		return
	}
	select {
	case <-time.After(time.Duration(ev.AtMS) * time.Millisecond):
	case <-loadDone:
	}
}

// fireChaos runs one event's command via sh -c, synchronously within the
// event (so "kill X; sleep 1; restart X" chains work), with its output on
// stderr next to the harness's own log lines.
func fireChaos(i int, ev ChaosEvent, start time.Time) {
	fmt.Fprintf(os.Stderr, "phastload: chaos[%d] firing at +%s: %s\n",
		i, time.Since(start).Round(time.Millisecond), ev.Exec)
	cmd := exec.Command("sh", "-c", ev.Exec)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "phastload: chaos[%d] failed: %v\n", i, err)
	}
}

// counterDelta is after-before for one monotonic counter, tolerating a
// mid-run restart: a counter that went backwards was reset to zero, so the
// post-restart value is the tightest observable lower bound on the true
// delta.
func counterDelta(before, after uint64) uint64 {
	if after < before {
		return after
	}
	return after - before
}

// writeDigests appends "scenario,seed,digest" rows sorted by seed — the
// bit-exactness artifact. Two runs over the same mix (a solo reference node
// and a chaos-ridden fleet, say) must produce identical seed→digest maps.
func writeDigests(path, scenario string, digests map[int64]string) error {
	seeds := make([]int64, 0, len(digests))
	for s := range digests {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	var buf bytes.Buffer
	for _, s := range seeds {
		fmt.Fprintf(&buf, "%s,%d,%s\n", scenario, s, digests[s])
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadgen issues requests and accumulates client-side outcomes.
type loadgen struct {
	targets   []string
	tenant    string       // X-Phast-Tenant header on every request ("" = default)
	rr        atomic.Int64 // round-robin cursor over targets
	completed atomic.Int64 // requests finished (chaos after_requests trigger)
	client    *http.Client
	cfg       sim.Config
	timeoutMS int64
	thinkMS   int64
	failover  bool
	digest    bool // record per-seed result digests

	mu         sync.Mutex
	latencies  []time.Duration
	unique     map[int64]bool   // distinct config seeds actually sent
	digests    map[int64]string // seed → first result digest
	ok         int
	rejected   int // HTTP 429: admission-control backpressure
	failed     int // anything else
	failovers  int // requests rescued by retrying another target
	mismatched int // seeds whose repeated results digested differently
}

// runDigest is the byte-level fingerprint of one result row: sha256 over
// the run object's JSON exactly as the server sent it. Two responses for
// the same seed — from any node, any routing path, before or after chaos —
// must digest identically, or the fleet broke bit-exactness.
func runDigest(body []byte) (string, bool) {
	var rr struct {
		Run json.RawMessage `json:"run"`
	}
	if err := json.Unmarshal(body, &rr); err != nil || len(rr.Run) == 0 {
		return "", false
	}
	sum := sha256.Sum256(rr.Run)
	return hex.EncodeToString(sum[:]), true
}

// attempt posts one request to one target. Returns the HTTP status (0 on
// transport error) and, when digesting, the response body.
func (l *loadgen) attempt(target string, body []byte) (int, []byte) {
	req, err := http.NewRequest(http.MethodPost, target+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return 0, nil
	}
	req.Header.Set("Content-Type", "application/json")
	if l.tenant != "" {
		req.Header.Set(server.TenantHeader, l.tenant)
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	if l.digest && resp.StatusCode == http.StatusOK {
		data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		if err != nil {
			return 0, nil
		}
		return resp.StatusCode, data
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// failoverWorthy reports whether a failed attempt should be retried on
// another target: transport errors (connection refused/reset — the node
// died) and gateway-ish statuses a load balancer would also retry. A 429 is
// NOT failover-worthy here — admission backpressure is a per-run outcome
// the harness must report, not paper over.
func failoverWorthy(status int) bool {
	switch status {
	case 0, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// next sends one request with the given stream seed and records its
// outcome. Targets are round-robined: any fleet member accepts any config.
// With failover enabled, a transport-failed or gateway-failed request walks
// the remaining targets once before counting as failed; the recorded
// latency covers all attempts (what the caller actually waited).
func (l *loadgen) next(seed int64) {
	cfg := l.cfg
	cfg.Seed = seed
	body, err := json.Marshal(server.RunRequest{Config: cfg, TimeoutMS: l.timeoutMS})
	if err != nil {
		fatal(err)
	}
	first := int(l.rr.Add(1) - 1)
	start := time.Now()
	status, data := l.attempt(l.targets[first%len(l.targets)], body)
	attempts := 1
	if l.failover {
		for off := 1; off < len(l.targets) && failoverWorthy(status); off++ {
			status, data = l.attempt(l.targets[(first+off)%len(l.targets)], body)
			attempts++
		}
	}
	lat := time.Since(start)
	defer l.completed.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.latencies = append(l.latencies, lat)
	l.unique[seed] = true
	if attempts > 1 && status == http.StatusOK {
		l.failovers++
	}
	switch status {
	case http.StatusOK:
		l.ok++
		if l.digest {
			if d, ok := runDigest(data); ok {
				if prev, seen := l.digests[seed]; seen && prev != d {
					l.mismatched++
				} else if !seen {
					l.digests[seed] = d
				}
			} else {
				l.failed++ // a 200 whose body has no run row is a failure
				l.ok--
			}
		}
	case http.StatusTooManyRequests:
		l.rejected++
	default:
		l.failed++
	}
}

// closedLoop runs c workers, each issuing its next request as soon as the
// previous one completes — throughput adapts to server latency.
func (l *loadgen) closedLoop(c, total int, deadline time.Time, seedOf func(int) int64) {
	seeds := make(chan int64, c)
	go func() {
		defer close(seeds)
		for i := 0; i < total && time.Now().Before(deadline); i++ {
			seeds <- seedOf(i)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				if !time.Now().Before(deadline) {
					return
				}
				l.next(seed)
				if l.thinkMS > 0 {
					time.Sleep(time.Duration(l.thinkMS) * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
}

// openLoop fires requests at a fixed rate regardless of completions — the
// latency distribution then includes server-side queueing under overload.
// A burst spec modulates the rate (factor× for the first width of every
// period). In-flight requests are capped at 4096 as an OOM backstop;
// arrivals past the cap count as client-side drops (reported as failed).
func (l *loadgen) openLoop(qps float64, burst *Burst, total int, deadline time.Time, seedOf func(int) int64) {
	start := time.Now()
	next := start
	var inflight atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total && time.Now().Before(deadline); i++ {
		rate := qps
		if burst != nil {
			period := time.Duration(burst.PeriodMS) * time.Millisecond
			width := time.Duration(burst.WidthMS) * time.Millisecond
			if time.Since(start)%period < width {
				rate *= burst.Factor
			}
		}
		next = next.Add(time.Duration(float64(time.Second) / rate))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if inflight.Load() >= 4096 {
			l.mu.Lock()
			l.failed++
			l.mu.Unlock()
			continue
		}
		seed := seedOf(i)
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			l.next(seed)
		}()
	}
	wg.Wait()
}

// fetchMetrics pulls one server's counter snapshot.
func fetchMetrics(url string) (server.MetricsResponse, error) {
	var m server.MetricsResponse
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("GET %s/metrics: %s", url, resp.Status)
	}
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// fetchMetricsEach snapshots every target's counters separately, keyed by
// target URL — per-target deltas show who did the work; the "all" row sums
// them back into the fleet's aggregate view.
func fetchMetricsEach(targets []string) (map[string]map[string]uint64, error) {
	out := make(map[string]map[string]uint64, len(targets))
	for _, t := range targets {
		m, err := fetchMetrics(t)
		if err != nil {
			return nil, err
		}
		c := make(map[string]uint64, len(m.Counters))
		for name, v := range m.Counters {
			c[name] = v
		}
		out[t] = c
	}
	return out, nil
}

// serverCounters are the counter deltas reported per scenario, in table and
// CSV column order.
var serverCounters = []string{
	server.CounterRequests, server.CounterAccepted, server.CounterQueued,
	server.CounterRejected, server.CounterCoalesced,
	server.CounterProxied, server.CounterProxyErrors, server.CounterPeerRuns,
	server.CounterRetries, server.CounterBreakerOpened, server.CounterBreakerShortCircuit,
	server.CounterHedgeFired, server.CounterHedgeWins,
	cluster.CounterProbeFail, cluster.CounterTransitionsDown, cluster.CounterTransitionsUp,
	runcache.CounterPeerHits, runcache.CounterPeerMisses, runcache.CounterPeerErrors,
	server.CounterPeerCacheServed,
	server.CounterTraceUploads, server.CounterTraceFetched,
	server.CounterPeerTraceServed, server.CounterTraceReplicated,
	runcache.CounterMemHits, runcache.CounterDiskHits, runcache.CounterMisses,
	runcache.CounterRunsSimulated, runcache.CounterDiskEvicted,
}

func (l *loadgen) pct(q float64) time.Duration {
	if len(l.latencies) == 0 {
		return 0
	}
	i := int(q * float64(len(l.latencies)-1))
	return l.latencies[i]
}

// report renders the client-side latency distribution and the server-side
// counter deltas for the run. Callers hold no lock; latencies are final.
func (l *loadgen) report(w io.Writer, name string, elapsed time.Duration, deltas map[string]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.Slice(l.latencies, func(i, j int) bool { return l.latencies[i] < l.latencies[j] })
	n := len(l.latencies)

	t := stats.NewTable(fmt.Sprintf("%s — client side", name), "metric", "value")
	t.AddRowf("requests", n)
	t.AddRowf("unique configs", len(l.unique))
	t.AddRowf("ok", l.ok)
	t.AddRowf("rejected (429)", l.rejected)
	t.AddRowf("failed", l.failed)
	t.AddRowf("failovers", l.failovers)
	t.AddRowf("digest mismatches", l.mismatched)
	t.AddRow("elapsed", elapsed.Round(time.Millisecond).String())
	t.AddRow("achieved rps", fmt.Sprintf("%.1f", float64(n)/elapsed.Seconds()))
	for _, p := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1.0}} {
		t.AddRow("latency "+p.name, l.pct(p.q).Round(time.Microsecond).String())
	}
	fmt.Fprint(w, t)

	st := stats.NewTable(fmt.Sprintf("%s — server side (delta over the run, summed across %d target(s))",
		name, len(l.targets)), "counter", "delta")
	for _, cname := range serverCounters {
		st.AddRowf(cname, deltas[cname])
	}
	fmt.Fprint(w, st)
}

// resultRow is one scenario's machine-readable outcome: the CSV schema of
// the harness. Column order is csvHeader's. The target column is "all" for
// the fleet-aggregate row; per-member rows carry the member URL and only
// server-side deltas (the client observes the fleet as a whole, so their
// client-side fields are zero).
type resultRow struct {
	scenario   string
	target     string
	targets    int
	mode       string
	tenant     string
	requests   int
	unique     int
	ok         int
	rejected   int
	failed     int
	mismatched int
	failovers  int
	elapsedS   float64
	rps        float64
	latMS      [4]float64 // p50, p90, p99, max
	jobState   string     // terminal autotuner state ("" = no job phase)
	jobTrials  int
	deltas     map[string]uint64
}

func (l *loadgen) row(sc Scenario, elapsed time.Duration, deltas map[string]uint64) resultRow {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := resultRow{
		scenario:   sc.Name,
		target:     "all",
		targets:    len(sc.Targets),
		mode:       sc.Mode,
		tenant:     sc.Tenant,
		requests:   len(l.latencies),
		unique:     len(l.unique),
		ok:         l.ok,
		rejected:   l.rejected,
		failed:     l.failed,
		mismatched: l.mismatched,
		failovers:  l.failovers,
		elapsedS:   elapsed.Seconds(),
		rps:        float64(len(l.latencies)) / elapsed.Seconds(),
		deltas:     deltas,
	}
	for i, q := range []float64{0.50, 0.90, 0.99, 1.0} {
		r.latMS[i] = float64(l.pct(q)) / float64(time.Millisecond)
	}
	return r
}

// targetRow is one member's share of the scenario's counter deltas.
func targetRow(sc Scenario, target string, deltas map[string]uint64) resultRow {
	return resultRow{
		scenario: sc.Name,
		target:   target,
		targets:  len(sc.Targets),
		mode:     sc.Mode,
		tenant:   sc.Tenant,
		deltas:   deltas,
	}
}

func csvHeader() []string {
	h := []string{
		"scenario", "target", "targets", "mode", "tenant", "requests", "unique", "ok", "rejected",
		"failed", "mismatched", "failovers", "elapsed_s", "rps", "p50_ms", "p90_ms", "p99_ms", "max_ms",
		"job_state", "job_trials",
	}
	for _, name := range serverCounters {
		h = append(h, strings.NewReplacer(".", "_").Replace(name))
	}
	return h
}

// writeCSV appends rows to path, writing the header only when the file is
// new or empty — successive harness invocations build one results table.
func writeCSV(path string, rows []resultRow) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if st.Size() == 0 {
		if err := w.Write(csvHeader()); err != nil {
			return err
		}
	}
	for _, r := range rows {
		rec := []string{
			r.scenario,
			r.target,
			fmt.Sprint(r.targets),
			r.mode,
			r.tenant,
			fmt.Sprint(r.requests),
			fmt.Sprint(r.unique),
			fmt.Sprint(r.ok),
			fmt.Sprint(r.rejected),
			fmt.Sprint(r.failed),
			fmt.Sprint(r.mismatched),
			fmt.Sprint(r.failovers),
			fmt.Sprintf("%.3f", r.elapsedS),
			fmt.Sprintf("%.1f", r.rps),
			fmt.Sprintf("%.3f", r.latMS[0]),
			fmt.Sprintf("%.3f", r.latMS[1]),
			fmt.Sprintf("%.3f", r.latMS[2]),
			fmt.Sprintf("%.3f", r.latMS[3]),
			r.jobState,
			fmt.Sprint(r.jobTrials),
		}
		for _, name := range serverCounters {
			rec = append(rec, fmt.Sprint(r.deltas[name]))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
