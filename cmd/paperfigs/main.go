// paperfigs regenerates the tables and figures of the paper's evaluation.
//
// Usage:
//
//	paperfigs -fig all                 # everything, full suite
//	paperfigs -fig fig15 -n 1000000    # one figure, longer runs
//	paperfigs -fig fig14 -apps 511.povray,541.leela
//	paperfigs -fig all -cache ~/.cache/phast   # persist runs; rerun is ~free
//	paperfigs -fig all -keep-going -timeout 2m # survive bad configs/hangs
//	paperfigs -config '{"Predictor":"phast:1024"}'  # one config, per-app table
//	paperfigs -list
//
// -config renders a single configuration's per-app stats table — the same
// renderer the autotuner (phastd -jobs-dir) uses for a job winner, so
// feeding a winner's config back through paperfigs reproduces its table
// byte-for-byte (jobs_smoke.sh holds this).
//
// Tables go to stdout; progress, metrics (-metrics) and timing go to
// stderr, so repeated invocations with the same flags are byte-comparable.
//
// SIGINT cancels in-flight simulations and exits after flushing whatever
// completed: tables already rendered stay on stdout, the failure log and
// (with -metrics) the counters still print.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"paperfigs:"}, v...)...)
	os.Exit(1)
}

func main() {
	var (
		fig          = flag.String("fig", "all", "experiment to run (fig1..fig16, table1, table2, mix, all)")
		configJSON   = flag.String("config", "", "render one config's per-app stats table from this JSON sim.Config (overrides -fig)")
		n            = flag.Int("n", sim.DefaultInstructions, "instructions per run")
		apps         = flag.String("apps", "", "comma-separated app subset (default: whole suite)")
		workers      = flag.Int("workers", 0, "parallel runs (default: min(8, NumCPU))")
		parIntervals = flag.Int("parallel-intervals", 0, "split each simulation into this many concurrently-simulated, oracle-gated intervals (<=1 = sequential; see EXPERIMENTS.md)")
		list         = flag.Bool("list", false, "list experiments and exit")
		cacheDir     = flag.String("cache", "", "persistent run-cache directory (empty = in-memory only)")
		metrics      = flag.Bool("metrics", false, "print cache, simulation, trace-intern and core-pool metrics to stderr at exit")
		timeout      = flag.Duration("timeout", 0, "wall-clock budget per simulation (0 = none); a run past it fails with a timeout error")
		keepGoing    = flag.Bool("keep-going", false, "keep running after failures: failed runs become failure-log rows instead of aborting the batch")
		faults       = flag.String("faults", os.Getenv("PHAST_FAULTS"), "fault-injection spec for chaos testing, e.g. \"panic=0.01,diskwrite=0.1,seed=7\" (default $PHAST_FAULTS)")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	plan, err := faultinject.Parse(*faults)
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		defer faultinject.Activate(plan)()
		fmt.Fprintln(os.Stderr, "paperfigs: fault injection active:", plan)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := experiments.Options{
		Instructions: *n, Out: os.Stdout, Workers: *workers, CacheDir: *cacheDir,
		Context: ctx, RunTimeout: *timeout, KeepGoing: *keepGoing, Intervals: *parIntervals,
	}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	r := experiments.NewRunner(opt)
	defer r.Close()

	start := time.Now()
	if *configJSON != "" {
		// Single-config mode: the autotuner's winner-table renderer, run
		// directly. Apps resolve exactly like the runner's (whole suite when
		// -apps is unset) so a job spec's app list maps 1:1 to -apps.
		dec := json.NewDecoder(strings.NewReader(*configJSON))
		dec.DisallowUnknownFields()
		var cfg sim.Config
		if derr := dec.Decode(&cfg); derr != nil {
			fatal("bad -config:", derr)
		}
		if cfg.Instructions == 0 {
			cfg.Instructions = *n
		}
		appList := opt.Apps
		if len(appList) == 0 {
			appList = workload.Names()
		}
		cfgs := make([]sim.Config, len(appList))
		for i, app := range appList {
			c := cfg
			c.App = app
			cfgs[i] = c
		}
		var runs []*stats.Run
		runs, err = r.RunConfigs(cfgs)
		if err == nil || *keepGoing && ctx.Err() == nil {
			fmt.Print(experiments.ConfigTable(cfg, appList, runs))
			err = nil
		}
	} else if *fig == "all" {
		err = experiments.RunAll(r)
	} else {
		var e experiments.Experiment
		e, err = experiments.ByName(*fig)
		if err == nil {
			fmt.Printf("== %s: %s ==\n", e.Name, e.Desc)
			err = e.Run(r)
			// Same keep-going contract as RunAll: a contained failure is a
			// failure-log row and an inline note, not a dead process.
			if err != nil && *keepGoing && ctx.Err() == nil {
				fmt.Printf("== %s FAILED: %v ==\n", e.Name, err)
				err = nil
			}
		}
	}
	// Flush observability before deciding the exit code, so an aborted run
	// still reports what failed and what it managed to do.
	r.WriteFailures(os.Stderr)
	if *metrics {
		r.WriteMetrics(os.Stderr)
	}
	if err != nil {
		if ctx.Err() != nil {
			fatal("interrupted (completed tables were flushed):", err)
		}
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal("profile:", err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
