// paperfigs regenerates the tables and figures of the paper's evaluation.
//
// Usage:
//
//	paperfigs -fig all                 # everything, full suite
//	paperfigs -fig fig15 -n 1000000    # one figure, longer runs
//	paperfigs -fig fig14 -apps 511.povray,541.leela
//	paperfigs -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment to run (fig1..fig16, table1, table2, mix, all)")
		n       = flag.Int("n", sim.DefaultInstructions, "instructions per run")
		apps    = flag.String("apps", "", "comma-separated app subset (default: whole suite)")
		workers = flag.Int("workers", 0, "parallel runs (default: min(8, NumCPU))")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	opt := experiments.Options{Instructions: *n, Out: os.Stdout, Workers: *workers}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	r := experiments.NewRunner(opt)

	start := time.Now()
	var err error
	if *fig == "all" {
		err = experiments.RunAll(r)
	} else {
		var e experiments.Experiment
		e, err = experiments.ByName(*fig)
		if err == nil {
			fmt.Printf("== %s: %s ==\n", e.Name, e.Desc)
			err = e.Run(r)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
