// paperfigs regenerates the tables and figures of the paper's evaluation.
//
// Usage:
//
//	paperfigs -fig all                 # everything, full suite
//	paperfigs -fig fig15 -n 1000000    # one figure, longer runs
//	paperfigs -fig fig14 -apps 511.povray,541.leela
//	paperfigs -fig all -cache ~/.cache/phast   # persist runs; rerun is ~free
//	paperfigs -list
//
// Tables go to stdout; progress, metrics (-metrics) and timing go to
// stderr, so repeated invocations with the same flags are byte-comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/sim"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "experiment to run (fig1..fig16, table1, table2, mix, all)")
		n          = flag.Int("n", sim.DefaultInstructions, "instructions per run")
		apps       = flag.String("apps", "", "comma-separated app subset (default: whole suite)")
		workers    = flag.Int("workers", 0, "parallel runs (default: min(8, NumCPU))")
		list       = flag.Bool("list", false, "list experiments and exit")
		cacheDir   = flag.String("cache", "", "persistent run-cache directory (empty = in-memory only)")
		metrics    = flag.Bool("metrics", false, "print cache, simulation, trace-intern and core-pool metrics to stderr at exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}

	opt := experiments.Options{
		Instructions: *n, Out: os.Stdout, Workers: *workers, CacheDir: *cacheDir,
	}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	r := experiments.NewRunner(opt)
	defer r.Close()

	start := time.Now()
	if *fig == "all" {
		err = experiments.RunAll(r)
	} else {
		var e experiments.Experiment
		e, err = experiments.ByName(*fig)
		if err == nil {
			fmt.Printf("== %s: %s ==\n", e.Name, e.Desc)
			err = e.Run(r)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	if *metrics {
		r.WriteMetrics(os.Stderr)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs: profile:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
