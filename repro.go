// Package repro is the public facade of this reproduction of
// "Effective Context-Sensitive Memory Dependence Prediction" (PHAST,
// HPCA 2024). It exposes the simulator, the predictor zoo, the SPEC CPU
// 2017-like workload suite, and the experiment harness that regenerates
// every table and figure of the paper's evaluation.
//
// Quick start:
//
//	res, err := repro.Simulate(repro.Config{App: "511.povray", Predictor: "phast"})
//	fmt.Printf("IPC %.2f, violation MPKI %.3f\n", res.IPC(), res.ViolationMPKI())
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro

import (
	"io"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config selects one simulation run. Zero values pick the paper defaults
// (Alder Lake machine, PHAST predictor, 300k-instruction stream).
type Config = sim.Config

// Result holds the measured counters and derived metrics of one run.
type Result = stats.Run

// Simulate executes one full-core simulation.
func Simulate(cfg Config) (*Result, error) { return sim.Run(cfg) }

// Apps returns the names of the workload suite, sorted.
func Apps() []string { return workload.Names() }

// Machines returns the available machine configuration names, oldest
// generation first.
func Machines() []string { return config.Names() }

// Predictors returns the finite predictors of the paper's headline
// comparison. See sim.NewPredictor's documentation (internal/sim) for the
// full spec grammar, including budget sweeps and unlimited variants.
func Predictors() []string { return sim.PredictorNames() }

// ExperimentNames lists the reproducible tables and figures in paper order.
func ExperimentNames() []string {
	all := experiments.All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

// ExperimentOptions scope an experiment run.
type ExperimentOptions struct {
	// Apps restricts the workload list (default: the whole suite).
	Apps []string
	// Instructions per simulation (default 300000).
	Instructions int
	// Out receives the rendered tables.
	Out io.Writer
}

// RunExperiment regenerates one table or figure by name ("fig1".."fig16",
// "table1", "table2", or "all").
func RunExperiment(name string, opt ExperimentOptions) error {
	r := experiments.NewRunner(experiments.Options{
		Apps: opt.Apps, Instructions: opt.Instructions, Out: opt.Out,
	})
	if name == "all" {
		return experiments.RunAll(r)
	}
	e, err := experiments.ByName(name)
	if err != nil {
		return err
	}
	return e.Run(r)
}

// GeoMean is the geometric mean used for all IPC aggregation.
func GeoMean(vals []float64) float64 { return stats.GeoMean(vals) }
