// Package isa defines the micro-operation instruction set consumed by the
// timing model. The simulator is trace driven: workload programs emit dynamic
// instances of these micro-ops (package workload), the out-of-order core
// (package pipeline) consumes them, and memory dependence predictors observe
// them through the hooks in package mdp.
//
// The ISA is deliberately minimal — loads, stores, branches and latency-
// classed compute ops over a small register file — because memory dependence
// prediction is sensitive only to the dataflow, control flow, and memory
// overlap structure of the stream, not to opcode semantics.
package isa

import "fmt"

// Reg identifies an architectural register. Register 0 is the hard-wired
// "none" register: it is always ready and writes to it are discarded.
type Reg uint8

// NumRegs is the size of the architectural register file (including R0).
const NumRegs = 64

// Kind classifies a micro-op for the issue logic.
type Kind uint8

const (
	// Nop occupies a slot but has no dataflow or side effects.
	Nop Kind = iota
	// ALU is a latency-classed compute op (integer or FP).
	ALU
	// Load reads Size bytes at Addr into Dst.
	Load
	// Store writes Size bytes at Addr.
	Store
	// Branch redirects control flow (see BranchClass).
	Branch
)

// String returns the lower-case mnemonic of the kind.
func (k Kind) String() string {
	switch k {
	case Nop:
		return "nop"
	case ALU:
		return "alu"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// BranchClass refines Branch micro-ops. Divergent branches — the ones PHAST
// tracks in its path history — are those that can take different paths on
// different executions: conditional branches and all indirect transfers
// (indirect jumps, indirect calls, and returns).
type BranchClass uint8

const (
	// NotBranch marks non-branch micro-ops.
	NotBranch BranchClass = iota
	// Direct is an unconditional direct jump (never divergent).
	Direct
	// Cond is a conditional direct branch (divergent: taken/not-taken).
	Cond
	// Indirect is an indirect jump (divergent: target varies).
	Indirect
	// Call is a direct call (not divergent; pushes a return address).
	Call
	// IndirectCall is an indirect call (divergent).
	IndirectCall
	// Return is a return through the stack (divergent).
	Return
)

// String returns the lower-case mnemonic of the branch class.
func (c BranchClass) String() string {
	switch c {
	case NotBranch:
		return "notbranch"
	case Direct:
		return "direct"
	case Cond:
		return "cond"
	case Indirect:
		return "indirect"
	case Call:
		return "call"
	case IndirectCall:
		return "indcall"
	case Return:
		return "return"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Divergent reports whether the class can take different paths on different
// executions. Only divergent branches enter the PHAST path history.
func (c BranchClass) Divergent() bool {
	switch c {
	case Cond, Indirect, IndirectCall, Return:
		return true
	default:
		return false
	}
}

// IndirectTarget reports whether the class resolves its destination from a
// register or the stack, so the history must record target bits rather than
// a taken/not-taken bit.
func (c BranchClass) IndirectTarget() bool {
	switch c {
	case Indirect, IndirectCall, Return:
		return true
	default:
		return false
	}
}

// Inst is one dynamic micro-op instance. Workload programs resolve all
// architectural values (memory address, branch outcome and target) when the
// instance is emitted; the timing model decides *when* those values become
// visible to the pipeline.
type Inst struct {
	// PC is the address of the micro-op. Distinct static micro-ops must use
	// distinct PCs: every predictor in this repository indexes by PC.
	PC uint64
	// Kind classifies the op.
	Kind Kind
	// Class refines branches; NotBranch otherwise.
	Class BranchClass

	// Dst is the output register (0 = none).
	Dst Reg
	// SrcA and SrcB are input registers (0 = none). For loads SrcA is the
	// address base; for stores SrcA feeds the address and SrcB the data.
	SrcA, SrcB Reg

	// Lat is the execution latency in cycles for ALU ops (minimum 1).
	// Loads/stores derive latency from the memory system instead.
	Lat uint8

	// Addr and Size describe the memory access of loads and stores.
	Addr uint64
	Size uint8

	// Taken is the resolved direction of conditional branches. Unconditional
	// transfers always have Taken == true.
	Taken bool
	// Target is the resolved destination of taken branches.
	Target uint64
}

// IsLoad reports whether the micro-op is a load.
func (in *Inst) IsLoad() bool { return in.Kind == Load }

// IsStore reports whether the micro-op is a store.
func (in *Inst) IsStore() bool { return in.Kind == Store }

// IsMem reports whether the micro-op accesses memory.
func (in *Inst) IsMem() bool { return in.Kind == Load || in.Kind == Store }

// IsBranch reports whether the micro-op is a control transfer.
func (in *Inst) IsBranch() bool { return in.Kind == Branch }

// Divergent reports whether the micro-op is a divergent branch.
func (in *Inst) Divergent() bool { return in.Kind == Branch && in.Class.Divergent() }

// End returns the first byte past the access ([Addr, End) is touched).
func (in *Inst) End() uint64 { return in.Addr + uint64(in.Size) }

// Overlaps reports whether the memory footprints of two accesses intersect.
// Non-memory ops never overlap anything.
func (in *Inst) Overlaps(other *Inst) bool {
	if !in.IsMem() || !other.IsMem() {
		return false
	}
	return Overlap(in.Addr, in.Size, other.Addr, other.Size)
}

// Covers reports whether the access of in fully contains [addr, addr+size).
// Store-to-load forwarding requires the store to cover the load.
func (in *Inst) Covers(addr uint64, size uint8) bool {
	return in.Addr <= addr && addr+uint64(size) <= in.End()
}

// String renders a compact human-readable form, useful in test failures.
func (in *Inst) String() string {
	switch in.Kind {
	case Load:
		return fmt.Sprintf("%#x: load  r%d <- [%#x,%d)", in.PC, in.Dst, in.Addr, in.Size)
	case Store:
		return fmt.Sprintf("%#x: store [%#x,%d) <- r%d", in.PC, in.Addr, in.Size, in.SrcB)
	case Branch:
		return fmt.Sprintf("%#x: %s taken=%t -> %#x", in.PC, in.Class, in.Taken, in.Target)
	case ALU:
		return fmt.Sprintf("%#x: alu   r%d <- r%d, r%d (lat %d)", in.PC, in.Dst, in.SrcA, in.SrcB, in.Lat)
	default:
		return fmt.Sprintf("%#x: %s", in.PC, in.Kind)
	}
}

// Overlap reports whether [a1, a1+s1) and [a2, a2+s2) intersect.
func Overlap(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
	if s1 == 0 || s2 == 0 {
		return false
	}
	return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
}
