package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		Nop: "nop", ALU: "alu", Load: "load", Store: "store", Branch: "branch",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind should include the number, got %q", got)
	}
}

func TestBranchClassDivergent(t *testing.T) {
	divergent := map[BranchClass]bool{
		NotBranch: false, Direct: false, Call: false,
		Cond: true, Indirect: true, IndirectCall: true, Return: true,
	}
	for c, want := range divergent {
		if got := c.Divergent(); got != want {
			t.Errorf("%v.Divergent() = %t, want %t", c, got, want)
		}
	}
}

func TestBranchClassIndirectTarget(t *testing.T) {
	indirect := map[BranchClass]bool{
		Cond: false, Direct: false, Call: false,
		Indirect: true, IndirectCall: true, Return: true,
	}
	for c, want := range indirect {
		if got := c.IndirectTarget(); got != want {
			t.Errorf("%v.IndirectTarget() = %t, want %t", c, got, want)
		}
	}
}

func TestOverlapBasics(t *testing.T) {
	cases := []struct {
		a1   uint64
		s1   uint8
		a2   uint64
		s2   uint8
		want bool
	}{
		{100, 8, 100, 8, true},   // identical
		{100, 8, 104, 8, true},   // partial
		{100, 8, 108, 8, false},  // adjacent
		{100, 8, 99, 1, false},   // just before
		{100, 8, 107, 1, true},   // last byte
		{100, 0, 100, 8, false},  // zero size never overlaps
		{100, 8, 50, 1, false},   // far apart
		{0, 255, 254, 255, true}, // large sizes
	}
	for _, c := range cases {
		if got := Overlap(c.a1, c.s1, c.a2, c.s2); got != c.want {
			t.Errorf("Overlap(%d,%d,%d,%d) = %t, want %t", c.a1, c.s1, c.a2, c.s2, got, c.want)
		}
	}
}

func TestOverlapSymmetric(t *testing.T) {
	f := func(a1 uint64, s1 uint8, a2 uint64, s2 uint8) bool {
		// Bound addresses away from the top so a+s never wraps.
		a1 %= 1 << 48
		a2 %= 1 << 48
		return Overlap(a1, s1, a2, s2) == Overlap(a2, s2, a1, s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapMatchesByteScan(t *testing.T) {
	f := func(a1 uint64, s1 uint8, delta int8, s2 uint8) bool {
		a1 = a1%1000 + 1000
		a2 := uint64(int64(a1) + int64(delta))
		want := false
		for b := a2; b < a2+uint64(s2); b++ {
			if b >= a1 && b < a1+uint64(s1) {
				want = true
			}
		}
		return Overlap(a1, s1, a2, s2) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCovers(t *testing.T) {
	st := Inst{Kind: Store, Addr: 100, Size: 8}
	if !st.Covers(100, 8) || !st.Covers(104, 4) || !st.Covers(107, 1) {
		t.Error("store should cover contained ranges")
	}
	if st.Covers(96, 8) || st.Covers(104, 8) || st.Covers(108, 1) {
		t.Error("store should not cover escaping ranges")
	}
}

func TestInstPredicates(t *testing.T) {
	ld := Inst{Kind: Load, Addr: 8, Size: 8}
	st := Inst{Kind: Store, Addr: 12, Size: 8}
	br := Inst{Kind: Branch, Class: Cond}
	if !ld.IsLoad() || ld.IsStore() || !ld.IsMem() || ld.IsBranch() {
		t.Error("load predicates wrong")
	}
	if !st.IsStore() || st.IsLoad() || !st.IsMem() {
		t.Error("store predicates wrong")
	}
	if !br.IsBranch() || br.IsMem() || !br.Divergent() {
		t.Error("branch predicates wrong")
	}
	if !ld.Overlaps(&st) || !st.Overlaps(&ld) {
		t.Error("overlapping memory ops should report overlap")
	}
	if ld.Overlaps(&br) || br.Overlaps(&ld) {
		t.Error("branches never overlap memory")
	}
}

func TestInstString(t *testing.T) {
	insts := []Inst{
		{PC: 0x10, Kind: Load, Dst: 3, Addr: 0x100, Size: 8},
		{PC: 0x14, Kind: Store, SrcB: 4, Addr: 0x200, Size: 4},
		{PC: 0x18, Kind: Branch, Class: Cond, Taken: true, Target: 0x40},
		{PC: 0x1c, Kind: ALU, Dst: 1, SrcA: 2, SrcB: 3, Lat: 4},
		{PC: 0x20, Kind: Nop},
	}
	for i := range insts {
		if s := insts[i].String(); s == "" {
			t.Errorf("inst %d: empty String()", i)
		}
	}
}
