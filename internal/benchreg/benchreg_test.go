package benchreg

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig12_FwdFilter-8 	       1	1952000000 ns/op
BenchmarkSimulatorThroughput 	      10	  34577910 ns/op	   2.89 MB/s	  276205 B/op	      88 allocs/op
some interleaved table row that is not a benchmark
BenchmarkSimulatorThroughput 	      10	  35000000 ns/op	   2.91 MB/s	  276205 B/op	      88 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	if results[0].Name != "Fig12_FwdFilter" {
		t.Errorf("proc-count suffix not stripped: %q", results[0].Name)
	}
	st := results[1]
	if st.Name != "SimulatorThroughput" {
		t.Fatalf("unexpected name %q", st.Name)
	}
	if st.NsPerOp != (34577910+35000000)/2.0 {
		t.Errorf("repeated results not averaged: %v", st.NsPerOp)
	}
	if st.UopsPerSec != 2.90e6 {
		t.Errorf("uops/s = %v, want 2.90e6 (MB/s scaled by 1e6)", st.UopsPerSec)
	}
	if st.AllocsPerOp != 88 || st.BytesPerOp != 276205 {
		t.Errorf("mem columns wrong: %+v", st)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("no-result input must error")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecord("abc1234", "2026-08-06T00:00:00Z", results)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"git_sha": "abc1234"`) {
		t.Errorf("provenance missing:\n%s", buf.String())
	}
	if _, ok := rec.Find("SimulatorThroughput"); !ok {
		t.Error("Find failed after sorting")
	}
}

func TestCompareGate(t *testing.T) {
	base := NewRecord("old", "d", []Result{{Name: "SimulatorThroughput", NsPerOp: 100, UopsPerSec: 2.0e6}})
	ok := NewRecord("new", "d", []Result{{Name: "SimulatorThroughput", NsPerOp: 108, UopsPerSec: 1.85e6}})
	if err := Compare(base, ok, "SimulatorThroughput", 0.10); err != nil {
		t.Errorf("7.5%% drop within 10%% tolerance must pass: %v", err)
	}
	bad := NewRecord("new", "d", []Result{{Name: "SimulatorThroughput", NsPerOp: 130, UopsPerSec: 1.7e6}})
	if err := Compare(base, bad, "SimulatorThroughput", 0.10); err == nil {
		t.Error("15% drop must fail the gate")
	}
	if err := Compare(base, ok, "Missing", 0.10); err == nil {
		t.Error("absent benchmark must fail, not silently pass")
	}
	// ns/op fallback when throughput is absent.
	nbase := NewRecord("old", "d", []Result{{Name: "Fig12", NsPerOp: 100}})
	nbad := NewRecord("new", "d", []Result{{Name: "Fig12", NsPerOp: 120}})
	if err := Compare(nbase, nbad, "Fig12", 0.10); err == nil {
		t.Error("20% ns/op growth must fail the fallback gate")
	}
}
