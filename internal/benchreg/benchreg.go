// Package benchreg turns `go test -bench` output into a persistent,
// machine-readable benchmark record (BENCH.json) and compares two records to
// gate throughput regressions in `make check`.
//
// The package deliberately takes the commit SHA and timestamp as caller
// inputs rather than reading the clock or the repository itself: records are
// pure functions of the benchmark output plus those two strings, so the same
// output always produces byte-identical JSON.
package benchreg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. UopsPerSec is derived from the
// testing package's MB/s column: the simulator benchmarks call SetBytes with
// committed micro-ops, so 1 "MB/s" is 1e6 micro-ops per second.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	UopsPerSec  float64 `json:"uops_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Record is the persisted form: provenance plus results sorted by name.
type Record struct {
	GitSHA     string   `json:"git_sha"`
	Date       string   `json:"date"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse extracts benchmark results from `go test -bench` output. Lines that
// are not benchmark results (headers, PASS/ok, table output interleaved by
// verbose benchmarks) are ignored. Repeated results for one benchmark
// (-count > 1) are averaged.
func Parse(r io.Reader) ([]Result, error) {
	type acc struct {
		sum Result
		n   int
	}
	byName := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		a := byName[res.Name]
		if a == nil {
			a = &acc{}
			byName[res.Name] = a
			order = append(order, res.Name)
		}
		a.sum.NsPerOp += res.NsPerOp
		a.sum.UopsPerSec += res.UopsPerSec
		a.sum.BytesPerOp += res.BytesPerOp
		a.sum.AllocsPerOp += res.AllocsPerOp
		a.n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		a := byName[name]
		n := float64(a.n)
		out = append(out, Result{
			Name:        name,
			NsPerOp:     a.sum.NsPerOp / n,
			UopsPerSec:  a.sum.UopsPerSec / n,
			BytesPerOp:  a.sum.BytesPerOp / n,
			AllocsPerOp: a.sum.AllocsPerOp / n,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchreg: no benchmark results in input")
	}
	return out, nil
}

// parseLine decodes one `Benchmark<Name>[-P] <N> <value> <unit> ...` row.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
		return Result{}, false // second field must be the iteration count
	}
	res := Result{Name: name}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "MB/s":
			res.UopsPerSec = v * 1e6
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
		seen = true
	}
	return res, seen
}

// NewRecord assembles a record from parsed results and provenance strings.
func NewRecord(sha, date string, results []Result) Record {
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return Record{GitSHA: sha, Date: date, Benchmarks: sorted}
}

// Find returns the named benchmark's result.
func (r Record) Find(name string) (Result, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Result{}, false
}

// Write renders the record as indented JSON.
func (r Record) Write(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Load reads a record from a JSON file.
func Load(path string) (Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return Record{}, fmt.Errorf("benchreg: %s: %w", path, err)
	}
	return r, nil
}

// Compare gates the named benchmark: it fails if the new record's throughput
// (uops/s) fell more than maxRegress (a fraction, e.g. 0.10) below the old
// record's. Benchmarks without a throughput column fall back to comparing
// ns/op the same way. A missing benchmark on either side is an error —
// silently passing an absent gate would defeat it.
func Compare(old, new Record, name string, maxRegress float64) error {
	ob, ok := old.Find(name)
	if !ok {
		return fmt.Errorf("benchreg: baseline record has no benchmark %q", name)
	}
	nb, ok := new.Find(name)
	if !ok {
		return fmt.Errorf("benchreg: new record has no benchmark %q", name)
	}
	if ob.UopsPerSec > 0 && nb.UopsPerSec > 0 {
		floor := ob.UopsPerSec * (1 - maxRegress)
		if nb.UopsPerSec < floor {
			return fmt.Errorf(
				"benchreg: %s regressed: %.0f uops/s vs baseline %.0f (%s, floor %.0f at %.0f%% tolerance)",
				name, nb.UopsPerSec, ob.UopsPerSec, old.GitSHA, floor, maxRegress*100)
		}
		return nil
	}
	ceil := ob.NsPerOp * (1 + maxRegress)
	if nb.NsPerOp > ceil {
		return fmt.Errorf(
			"benchreg: %s regressed: %.0f ns/op vs baseline %.0f (%s, ceiling %.0f at %.0f%% tolerance)",
			name, nb.NsPerOp, ob.NsPerOp, old.GitSHA, ceil, maxRegress*100)
	}
	return nil
}
