// Package contentaddr is the one definition of the repository's on-disk
// content-address shape: 64 lowercase hex digits, the hex form of a SHA-256
// sum. Both content-addressed stores — the run cache (internal/runcache,
// keyed by config hash) and the trace store (internal/tracestore, keyed by
// payload hash) — gate every filesystem-facing key through Valid, so no
// store can quietly accept a different (traversal-capable) key shape than
// the others.
package contentaddr

import (
	"crypto/sha256"
	"encoding/hex"
)

// HexLen is the length of a well-formed address: hex SHA-256.
const HexLen = 2 * sha256.Size

// Sum returns the content address of a payload: lowercase hex SHA-256.
func Sum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Valid reports whether s has the exact shape Sum produces: 64 lowercase
// hex digits. Every surface that accepts addresses from the network (the
// fleet's GET /v1/peer/cache/{key} and /v1/peer/trace/{digest} endpoints)
// must reject anything else before the address gets near the filesystem —
// with only [0-9a-f]{64} accepted, a crafted address cannot traverse paths,
// name dotfiles, or escape the store directory by construction.
func Valid(s string) bool {
	if len(s) != HexLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
