package contentaddr

import (
	"strings"
	"testing"
)

func TestSumShape(t *testing.T) {
	d := Sum([]byte("hello"))
	if len(d) != HexLen {
		t.Fatalf("Sum length %d, want %d", len(d), HexLen)
	}
	if !Valid(d) {
		t.Fatalf("Sum output %q does not satisfy Valid", d)
	}
	if d != Sum([]byte("hello")) {
		t.Fatal("Sum is not deterministic")
	}
	if d == Sum([]byte("hellp")) {
		t.Fatal("distinct payloads share an address")
	}
}

func TestValidRejectsEverythingButLowerHex64(t *testing.T) {
	ok := strings.Repeat("0123456789abcdef", 4)
	for _, tc := range []struct {
		s    string
		want bool
	}{
		{ok, true},
		{"", false},
		{ok[:63], false},
		{ok + "a", false},
		{strings.ToUpper(ok), false},
		{"../" + ok[3:], false},
		{ok[:60] + ".tmp", false},
		{strings.Repeat("g", HexLen), false},
		{strings.Repeat("a", HexLen-1) + "/", false},
		{"." + ok[1:], false}, // dotfiles can never be valid addresses
	} {
		if got := Valid(tc.s); got != tc.want {
			t.Errorf("Valid(%q) = %v, want %v", tc.s, got, tc.want)
		}
	}
}
