package workload

import "repro/internal/isa"

// errStreamFull is the sentinel the Emitter panics with when the requested
// instruction count has been produced; Generate recovers it.
var errStreamFull = new(struct{ _ int })

// Emitter collects the dynamic micro-op stream of a program. It provides a
// small assembler surface (one method per micro-op shape), a simulated call
// stack and stack pointer for spill/fill motifs, and the program's RNG.
type Emitter struct {
	// RNG is the program's primary random stream.
	RNG *RNG

	out   []isa.Inst
	limit int
	guard int // micro-ops emitted in the current Gen invocation

	sp        uint64
	callStack []uint64
}

// stackTop is the initial simulated stack pointer. The stack grows down.
const stackTop = 0x7fff_ffff_0000

func newEmitter(n int, seed int64) *Emitter {
	return &Emitter{
		RNG:   NewRNG(seed),
		out:   make([]isa.Inst, 0, n),
		limit: n,
		sp:    stackTop,
	}
}

func (e *Emitter) emit(in isa.Inst) {
	e.out = append(e.out, in)
	e.guard++
	if len(e.out) >= e.limit {
		panic(errStreamFull)
	}
}

// Count returns the number of micro-ops emitted so far.
func (e *Emitter) Count() int { return len(e.out) }

// Nop emits a no-op.
func (e *Emitter) Nop(pc uint64) {
	e.emit(isa.Inst{PC: pc, Kind: isa.Nop})
}

// ALU emits a compute op dst <- f(a, b) with the given latency (min 1).
func (e *Emitter) ALU(pc uint64, dst, a, b isa.Reg, lat int) {
	if lat < 1 {
		lat = 1
	}
	e.emit(isa.Inst{PC: pc, Kind: isa.ALU, Dst: dst, SrcA: a, SrcB: b, Lat: uint8(lat)})
}

// Load emits a load of size bytes at addr into dst; base is the address
// register the load waits on before it can issue.
func (e *Emitter) Load(pc uint64, dst, base isa.Reg, addr uint64, size int) {
	e.emit(isa.Inst{PC: pc, Kind: isa.Load, Dst: dst, SrcA: base, Addr: addr, Size: uint8(size)})
}

// Store emits a store of size bytes at addr; addrReg gates address
// resolution and dataReg gates the data. A store with a slow addrReg
// producer is exactly the "unresolved in-flight store" MDP exists for.
func (e *Emitter) Store(pc uint64, addrReg, dataReg isa.Reg, addr uint64, size int) {
	e.emit(isa.Inst{PC: pc, Kind: isa.Store, SrcA: addrReg, SrcB: dataReg, Addr: addr, Size: uint8(size)})
}

// Cond emits a conditional branch on src with the given resolved direction.
// The fall-through address is pc+4.
func (e *Emitter) Cond(pc uint64, src isa.Reg, taken bool, target uint64) {
	dest := target
	if !taken {
		dest = pc + 4
	}
	e.emit(isa.Inst{PC: pc, Kind: isa.Branch, Class: isa.Cond, SrcA: src, Taken: taken, Target: dest})
}

// Jmp emits an unconditional direct jump (not divergent).
func (e *Emitter) Jmp(pc, target uint64) {
	e.emit(isa.Inst{PC: pc, Kind: isa.Branch, Class: isa.Direct, Taken: true, Target: target})
}

// IndJmp emits an indirect jump through src to the resolved target.
func (e *Emitter) IndJmp(pc uint64, src isa.Reg, target uint64) {
	e.emit(isa.Inst{PC: pc, Kind: isa.Branch, Class: isa.Indirect, SrcA: src, Taken: true, Target: target})
}

// Call emits a direct call and pushes the return address.
func (e *Emitter) Call(pc, target uint64) {
	e.callStack = append(e.callStack, pc+4)
	e.emit(isa.Inst{PC: pc, Kind: isa.Branch, Class: isa.Call, Taken: true, Target: target})
}

// IndCall emits an indirect call through src and pushes the return address.
func (e *Emitter) IndCall(pc uint64, src isa.Reg, target uint64) {
	e.callStack = append(e.callStack, pc+4)
	e.emit(isa.Inst{PC: pc, Kind: isa.Branch, Class: isa.IndirectCall, SrcA: src, Taken: true, Target: target})
}

// Ret emits a return to the most recent pushed return address.
func (e *Emitter) Ret(pc uint64) {
	if len(e.callStack) == 0 {
		panic("workload: return with empty call stack")
	}
	target := e.callStack[len(e.callStack)-1]
	e.callStack = e.callStack[:len(e.callStack)-1]
	e.emit(isa.Inst{PC: pc, Kind: isa.Branch, Class: isa.Return, Taken: true, Target: target})
}

// SP returns the current simulated stack pointer.
func (e *Emitter) SP() uint64 { return e.sp }

// PushFrame reserves size bytes of stack and returns the frame base (its
// lowest address). Frames back spill/fill dependence motifs.
func (e *Emitter) PushFrame(size int) uint64 {
	e.sp -= uint64(size)
	return e.sp
}

// PopFrame releases the most recent size-byte frame.
func (e *Emitter) PopFrame(size int) { e.sp += uint64(size) }

// Depth returns the simulated call-stack depth.
func (e *Emitter) Depth() int { return len(e.callStack) }
