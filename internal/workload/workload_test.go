package workload

import (
	"testing"

	"repro/internal/isa"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same sequence")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should diverge immediately")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(7)
	f1 := r.Fork()
	// Draw from parent: the fork's stream must be unaffected.
	want := make([]uint64, 5)
	probe := NewRNG(7)
	probeFork := probe.Fork()
	for i := range want {
		want[i] = probeFork.Uint64()
	}
	r.Uint64()
	r.Uint64()
	for i := range want {
		if got := f1.Uint64(); got != want[i] {
			t.Fatal("fork stream must be independent of later parent draws")
		}
	}
}

func TestPatternPeriodicity(t *testing.T) {
	p := newPattern(NewRNG(3), 8, 5, 0)
	var first []int
	for i := 0; i < 5; i++ {
		first = append(first, p.next())
	}
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 5; i++ {
			if got := p.next(); got != first[i] {
				t.Fatalf("noise-free pattern must repeat with its period")
			}
		}
	}
}

func TestEmitterStack(t *testing.T) {
	e := newEmitter(1000, 1)
	base := e.SP()
	f := e.PushFrame(64)
	if f != base-64 || e.SP() != f {
		t.Error("PushFrame should grow the stack down")
	}
	e.PopFrame(64)
	if e.SP() != base {
		t.Error("PopFrame should restore the stack pointer")
	}
}

func TestEmitterCallStack(t *testing.T) {
	e := newEmitter(1000, 1)
	e.Call(0x100, 0x200)
	if e.Depth() != 1 {
		t.Error("Call should push the return address")
	}
	e.Ret(0x204)
	if e.Depth() != 0 {
		t.Error("Ret should pop")
	}
	ret := e.out[len(e.out)-1]
	if ret.Target != 0x104 {
		t.Errorf("return target = %#x, want %#x", ret.Target, 0x104)
	}
	defer func() {
		if recover() == nil {
			t.Error("Ret on empty call stack should panic")
		}
	}()
	e.Ret(0x300)
}

func TestEmitterCondFallthrough(t *testing.T) {
	e := newEmitter(10, 1)
	e.Cond(0x100, 1, false, 0x200)
	if in := e.out[0]; in.Taken || in.Target != 0x104 {
		t.Errorf("not-taken branch destination = %#x, want fall-through", in.Target)
	}
	e.Cond(0x108, 1, true, 0x200)
	if in := e.out[1]; !in.Taken || in.Target != 0x200 {
		t.Errorf("taken branch destination = %#x, want %#x", in.Target, 0x200)
	}
}

func TestGenerateCutsAtN(t *testing.T) {
	p, err := ByName("519.lbm")
	if err != nil {
		t.Fatal(err)
	}
	insts := Generate(p, 5000, 0)
	if len(insts) != 5000 {
		t.Fatalf("Generate returned %d instructions, want 5000", len(insts))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, err := ByName("511.povray")
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(p, 3000, 0)
	b := Generate(p, 3000, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs between identical generations", i)
		}
	}
	c := Generate(p, 3000, 999)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different streams")
	}
}

// TestSuiteSanity checks every registered app: generation works, the mix is
// within realistic bounds, and PCs do not collide across kinds.
func TestSuiteSanity(t *testing.T) {
	if len(Names()) < 20 {
		t.Fatalf("suite has only %d apps", len(Names()))
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			insts := Generate(p, 20000, 0)
			var loads, stores, branches int
			kindByPC := map[uint64]isa.Kind{}
			for i := range insts {
				in := &insts[i]
				switch in.Kind {
				case isa.Load:
					loads++
				case isa.Store:
					stores++
				case isa.Branch:
					branches++
				}
				if in.IsMem() && in.Size == 0 {
					t.Fatalf("inst %d: zero-size memory op", i)
				}
				if prev, ok := kindByPC[in.PC]; ok && prev != in.Kind {
					t.Fatalf("PC %#x used for both %v and %v", in.PC, prev, in.Kind)
				}
				kindByPC[in.PC] = in.Kind
			}
			n := len(insts)
			if f := float64(loads) / float64(n); f < 0.08 || f > 0.50 {
				t.Errorf("load fraction %.2f out of realistic bounds", f)
			}
			if f := float64(stores) / float64(n); f < 0.02 || f > 0.40 {
				t.Errorf("store fraction %.2f out of realistic bounds", f)
			}
			if f := float64(branches) / float64(n); f < 0.02 || f > 0.35 {
				t.Errorf("branch fraction %.2f out of realistic bounds", f)
			}
		})
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	Register(Program{Name: "519.lbm", Gen: func(*Emitter) {}})
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("999.doesnotexist"); err == nil {
		t.Error("unknown program should error")
	}
}

// TestRegionsDisjoint: no two apps may share address-space regions; a
// collision would create cross-app aliasing in shared cache studies.
func TestRegionsDisjoint(t *testing.T) {
	seen := map[uint64]int{}
	for _, app := range []int{500, 502, 511, 541, 557} {
		r := regionsFor(app)
		for _, base := range []uint64{r.heap, r.table, r.deep, r.filler} {
			if prev, ok := seen[base]; ok {
				t.Errorf("region %#x shared by apps %d and %d", base, prev, app)
			}
			seen[base] = app
		}
	}
}
