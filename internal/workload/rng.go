package workload

// RNG is a small, fast, deterministic generator (splitmix64). Workload
// streams must be bit-reproducible across runs and platforms, so programs
// use this instead of math/rand.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Two generators with equal seeds produce equal
// sequences forever.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)*2862933555777941757 + 3037000493} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator; streams stay deterministic while
// decoupling motifs that should not perturb each other's sequences.
func (r *RNG) Fork() *RNG { return &RNG{state: r.Uint64() ^ 0xa5a5a5a5deadbeef} }
