package workload

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
)

// Signature tests: the per-app behaviours DESIGN.md §5 claims (and the
// calibration relies on) must actually be present in the generated streams.

func gen(t *testing.T, name string, n int) []isa.Inst {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return Generate(p, n, 0)
}

// 500.perlbench_3 must put several instances of the same store PC in flight
// (the Store Sets serialisation pathology): the loop-carried store PC must
// recur within an Alder Lake ROB window.
func TestPerlbench3SameStorePCInFlight(t *testing.T) {
	insts := gen(t, "500.perlbench_3", 30000)
	const window = 512
	lastSeen := map[uint64]int{}
	found := false
	for i := range insts {
		if !insts[i].IsStore() {
			continue
		}
		if prev, ok := lastSeen[insts[i].PC]; ok && i-prev < window {
			found = true
			break
		}
		lastSeen[insts[i].PC] = i
	}
	if !found {
		t.Error("no same-PC store recurrence within a ROB window")
	}
}

// 502.gcc must be far less branch-predictable than the streaming FP apps
// (its divergent paths are the app's signature; lbm's back-edges are
// regular loops).
func TestGCCHarderThanLBMForBranchPredictors(t *testing.T) {
	mpki := func(name string) float64 {
		insts := gen(t, name, 30000)
		d, err := bpred.NewDir("gshare")
		if err != nil {
			t.Fatal(err)
		}
		return bpred.MPKIOver(d, insts)
	}
	if g, l := mpki("502.gcc_5"), mpki("519.lbm"); g < 3*l+1 {
		t.Errorf("gcc branch MPKI %.2f should far exceed lbm %.2f", g, l)
	}
}

// 525.x264_3 (8×1B stores) must have a higher multi-store load fraction
// than 525.x264_1 (2×4B stores): more providers per wide load.
func TestX264InputsScaleMultiStore(t *testing.T) {
	count := func(name string) int {
		insts := gen(t, name, 40000)
		wide := 0
		for i := range insts {
			if insts[i].IsLoad() && insts[i].Size == 8 && insts[i].Addr >= 0x1000_0000 {
				wide++
			}
		}
		return wide
	}
	if count("525.x264_3") == 0 {
		t.Error("x264_3 should emit wide merging loads")
	}
}

// The povray dispatch conflict must sit one divergent branch from its load:
// between a handler store and the post-dispatch load there is exactly the
// return (divergent), giving PHAST its 2-branch history length (§III-C).
func TestPovrayDispatchHistoryLength(t *testing.T) {
	insts := gen(t, "511.povray", 40000)
	checked := 0
	for i := range insts {
		in := &insts[i]
		// The post-dispatch load of the dispatch motif.
		if !in.IsLoad() || in.PC != 0x11_0000+0x8 {
			continue
		}
		// Walk backwards to the handler store writing the same slot.
		div := 0
		for j := i - 1; j >= 0 && j > i-60; j-- {
			prev := &insts[j]
			if prev.IsStore() && prev.Overlaps(in) {
				if div != 1 {
					t.Fatalf("load at %d: %d divergent branches to its store, want 1", i, div)
				}
				checked++
				break
			}
			if prev.Divergent() {
				div++
			}
		}
		if checked >= 20 {
			return
		}
	}
	if checked == 0 {
		t.Error("no dispatch conflicts found in povray")
	}
}
