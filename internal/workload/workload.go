// Package workload implements the synthetic benchmark suite that stands in
// for SPEC CPU 2017 (which cannot be redistributed, and whose SimPoint traces
// require the authors' Sniper toolchain). Each program is a deterministic
// generator of dynamic micro-ops whose dependence and control-flow structure
// reproduces the per-application behaviour the paper reports: store→load
// distances, path lengths and divergence, multi-store overlaps, path
// explosion, data-dependent conflicts, and branch predictability.
//
// Programs are written against the Emitter, a tiny "assembler" for dynamic
// micro-op streams with a simulated call stack and deterministic RNG.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Program is a named workload generator.
type Program struct {
	// Name of the application, using the paper's SPEC-rate naming
	// ("502.gcc_1" means app 502.gcc with input 1).
	Name string
	// Gen emits micro-ops forever; generation is cut when the requested
	// instruction count is reached.
	Gen func(e *Emitter)
	// DefaultSeed makes each application's stream distinct and reproducible.
	DefaultSeed int64
}

// Generate runs the program and returns the first n dynamic micro-ops of its
// correct-path stream. The same (program, n, seed) triple always yields the
// same stream. A seed of 0 selects the program's default seed.
func Generate(p Program, n int, seed int64) []isa.Inst {
	if seed == 0 {
		seed = p.DefaultSeed
	}
	e := newEmitter(n, seed)
	func() {
		defer func() {
			if r := recover(); r != nil && r != errStreamFull {
				panic(r)
			}
		}()
		for {
			p.Gen(e)
			// A generator that returns is restarted (outer loop of the app).
			if e.guard == 0 {
				panic(fmt.Sprintf("workload %s: generator emitted nothing", p.Name))
			}
			e.guard = 0
		}
	}()
	return e.out
}

var registry = map[string]Program{}

// Register adds a program to the global suite registry. It panics on
// duplicate names (each app/input pair must be unique).
func Register(p Program) {
	if _, dup := registry[p.Name]; dup {
		panic("workload: duplicate program " + p.Name)
	}
	if p.Gen == nil {
		panic("workload: program " + p.Name + " has no generator")
	}
	registry[p.Name] = p
}

// ByName returns the registered program with the given name.
func ByName(name string) (Program, error) {
	p, ok := registry[name]
	if !ok {
		return Program{}, fmt.Errorf("workload: unknown program %q", name)
	}
	return p, nil
}

// Names returns all registered program names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Suite returns all registered programs in name order.
func Suite() []Program {
	names := Names()
	out := make([]Program, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}
