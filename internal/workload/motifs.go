package workload

import "repro/internal/isa"

// This file contains the dependence and control-flow motifs the suite
// programs are composed from. Each motif is a faithful miniature of a
// behaviour the paper attributes to specific SPEC CPU 2017 applications:
//
//   - spillFill:      stack spill/fill around calls (short store distances,
//                     call-site-dependent paths) — perlbench, gcc, deepsjeng.
//   - loopCarried:    store a[i] … load a[i-lag] with several in-flight
//                     instances of the same store PC — the perlbench_3
//                     StoreSets pathology.
//   - pathDep:        the generalised Fig. 5 scenario — the store distance
//                     is an exact function of the divergent path between the
//                     store and the load (plus the branch before the store).
//   - dispatch:       one load conflicting with stores on the far side of
//                     an indirect branch — the povray case (§III-C).
//   - byteMerge:      n narrow stores under one wide load — x264/bwaves
//                     multi-store dependences (Fig. 3/Fig. 4).
//   - dataDep:        conflicts correlated with data, not path — the
//                     leela/parest false-positive generator (§VI-A).
//   - chase:          pointer chasing (mcf/omnetpp latency structure).
//   - stencil:        FP-style streaming compute with no conflicts.
//   - filler:         background mix keeping load/store/branch ratios
//                     realistic.
//
// Control flow is driven by *periodic schedules with a small noise rate*
// (the pattern type), not by IID coin flips: real programs re-walk the same
// paths, which is both what makes them branch-predictable and what PHAST's
// "if the exact path repeats, the dependence repeats" observation relies
// on. The schedule period sets an app's path diversity; the noise rate sets
// its irreducible misprediction floor.

// Scratch register conventions used by all motifs.
const (
	rZ    isa.Reg = 0 // always-ready zero register
	rT1   isa.Reg = 1
	rT2   isa.Reg = 2
	rT3   isa.Reg = 3
	rT4   isa.Reg = 4
	rAddr isa.Reg = 5 // late-resolving address register
	rData isa.Reg = 6
	rIdx  isa.Reg = 7
	rPtr  isa.Reg = 8
	rAcc  isa.Reg = 9
	rCond isa.Reg = 10
)

// pattern yields values in [0, n) following a fixed periodic schedule with
// an occasional random deviation. Periodicity makes the stream predictable
// for history-based branch predictors while still exercising n distinct
// outcomes; noise models data-dependent departures from the hot paths.
type pattern struct {
	sched []int
	pos   int
	n     int
	noise float64
	rng   *RNG

	// Phase behaviour: after phaseLen draws the schedule re-randomises,
	// modelling program phases in which the hot paths (and with them the
	// live store→load dependences) change. Phases are what separates
	// predictors that forget quickly (PHAST's confidence counters, NoSQ's
	// halving) from ones that hold stale entries (MDP-TAGE's 1/256 reset,
	// Store Sets between periodic clears). 0 = stationary.
	phaseLen int
	draws    int
}

// newPattern builds a stationary schedule of the given period over [0, n).
func newPattern(rng *RNG, n, period int, noise float64) *pattern {
	return newPhasedPattern(rng, n, period, noise, 0)
}

// newPhasedPattern builds a schedule that re-randomises every phaseLen
// draws (0 = never).
func newPhasedPattern(rng *RNG, n, period int, noise float64, phaseLen int) *pattern {
	if period < 1 {
		period = 1
	}
	p := &pattern{
		sched: make([]int, period), n: n, noise: noise,
		rng: rng.Fork(), phaseLen: phaseLen,
	}
	p.reroll()
	return p
}

func (p *pattern) reroll() {
	for i := range p.sched {
		p.sched[i] = p.rng.Intn(p.n)
	}
}

func (p *pattern) next() int {
	if p.phaseLen > 0 {
		p.draws++
		if p.draws%p.phaseLen == 0 {
			p.reroll()
		}
	}
	v := p.sched[p.pos]
	p.pos++
	if p.pos == len(p.sched) {
		p.pos = 0
	}
	if p.noise > 0 && p.rng.Bool(p.noise) {
		v = p.rng.Intn(p.n)
	}
	return v
}

// pathWeight is the number of stores the taken path of ladder step j
// contributes: front-loaded, like real nested control flow.
func pathWeight(j int) int {
	switch {
	case j == 0:
		return 4
	case j == 1:
		return 3
	case j <= 3:
		return 2
	case j <= 7:
		return 1
	default:
		return 0
	}
}

// aluChain emits n dependent ALU ops of the given latency, leaving the
// result in dst. It is the standard way to delay a register's readiness.
func aluChain(e *Emitter, pc uint64, dst, src isa.Reg, n, lat int) {
	cur := src
	for i := 0; i < n; i++ {
		e.ALU(pc+uint64(i)*4, dst, cur, rZ, lat)
		cur = dst
	}
}

// spillFill models a call frame: the caller stores args into the frame, the
// callee loads them back after some compute. The store address register
// resolves late (latency cycles of chained ALU), opening the unresolved-
// store window a predictor must cover. Distances are small and exact.
type spillFill struct {
	pcBase                    uint64
	slots, latency, computeOp int
}

func newSpillFill(pcBase uint64, slots, latency, computeOps int) *spillFill {
	return &spillFill{pcBase: pcBase, slots: slots, latency: latency, computeOp: computeOps}
}

func (m *spillFill) emit(e *Emitter) {
	frame := e.PushFrame(m.slots * 8)
	aluChain(e, m.pcBase, rAddr, rZ, 1, m.latency) // frame pointer resolves late
	for s := 0; s < m.slots; s++ {
		e.Store(m.pcBase+0x10+uint64(s)*4, rAddr, rAcc, frame+uint64(s)*8, 8)
	}
	e.Call(m.pcBase+0x40, m.pcBase+0x100)
	aluChain(e, m.pcBase+0x100, rAcc, rAcc, m.computeOp, 1)
	for s := 0; s < m.slots; s++ {
		e.Load(m.pcBase+0x140+uint64(s)*4, rT1, rZ, frame+uint64(s)*8, 8)
		e.ALU(m.pcBase+0x160+uint64(s)*4, rAcc, rAcc, rT1, 1)
	}
	e.Ret(m.pcBase + 0x180)
	e.PopFrame(m.slots * 8)
}

// loopCarried emits iters iterations of: store a[i]; compute; load a[i-lag].
// The same store PC has several instances in flight, but the load depends on
// exactly one at a fixed store distance — distance predictors learn it with
// no history, while set-based predictors (Store Sets) serialise all
// instances. The loop back-edge is perfectly predictable.
type loopCarried struct {
	pcBase, array            uint64
	iters, lag, addrLat, str int
	iter                     uint64 // rolling base so addresses stream
}

func newLoopCarried(pcBase, array uint64, iters, lag, addrLat, stride int) *loopCarried {
	if stride == 0 {
		stride = 8
	}
	return &loopCarried{pcBase: pcBase, array: array, iters: iters, lag: lag, addrLat: addrLat, str: stride}
}

func (m *loopCarried) emit(e *Emitter) {
	const window = 4096
	for i := 0; i < m.iters; i++ {
		slot := (m.iter + uint64(i)) % window
		aluChain(e, m.pcBase, rAddr, rZ, 1, m.addrLat)
		e.Store(m.pcBase+0x10, rAddr, rT1, m.array+slot*uint64(m.str), 8)
		e.ALU(m.pcBase+0x14, rT2, rT2, rZ, 1)
		if int(m.iter)+i >= m.lag {
			back := (m.iter + uint64(i) + window - uint64(m.lag)) % window
			e.Load(m.pcBase+0x20, rT1, rZ, m.array+back*uint64(m.str), 8)
			e.ALU(m.pcBase+0x24, rAcc, rAcc, rT1, 1)
		}
		e.Cond(m.pcBase+0x30, rIdx, i+1 < m.iters, m.pcBase)
	}
	m.iter += uint64(m.iters)
}

// pathDep is the generalised Fig. 5 motif. A divergent indirect branch
// first selects which of nPaths store sites executes (the "+1" branch — the
// branch previous to the conflicting store). Then k conditional branches
// follow, each inserting one extra store on its taken path, so the final
// load's store distance is exactly the popcount of the path mask: a pure
// function of the (k+1)-branch path. Path masks follow a periodic schedule
// of `period` distinct paths with the given noise.
type pathDep struct {
	pcBase, region uint64
	nPaths, k      int
	storeLat       int
	which          *pattern
	mask           *pattern
}

func newPathDep(rng *RNG, pcBase, region uint64, nPaths, k, period int, noise float64, storeLat, phaseLen int) *pathDep {
	nMasks := 1 << k
	if k > 16 {
		nMasks = 1 << 16
	}
	return &pathDep{
		pcBase: pcBase, region: region, nPaths: nPaths, k: k, storeLat: storeLat,
		which: newPhasedPattern(rng, nPaths, period, noise, phaseLen),
		mask:  newPhasedPattern(rng, nMasks, period, noise, phaseLen),
	}
}

func (m *pathDep) emit(e *Emitter) {
	which := m.which.next()
	mask := m.mask.next()
	slot := m.region + uint64(which)*64
	// Slow-address initialisation store to the slot (the Fig. 3(c) older
	// store; see the dispatch motif).
	e.ALU(m.pcBase-0x10, rT4, rZ, rZ, 24)
	e.Store(m.pcBase-0x8, rT4, rData, slot, 8)
	// The branch previous to the store: an indirect jump to the site.
	e.IndJmp(m.pcBase, rCond, m.pcBase+0x100+uint64(which)*0x40)
	aluChain(e, m.pcBase+0x100+uint64(which)*0x40, rAddr, rZ, 1, m.storeLat)
	e.Store(m.pcBase+0x110+uint64(which)*0x40, rAddr, rAcc, slot, 8)
	e.Jmp(m.pcBase+0x114+uint64(which)*0x40, m.pcBase+0x800)
	// k divergent branches between the store and the load, with a little
	// compute between them as real basic blocks have. Early branches guard
	// large store blocks and later ones small details (pathWeights), the way
	// real control flow nests: a short history suffix therefore reveals
	// little about the final store distance, while the full path determines
	// it exactly — the property PHAST's length selection exploits.
	for j := 0; j < m.k; j++ {
		pc := m.pcBase + 0x800 + uint64(j)*0x40
		taken := mask&(1<<uint(j%16)) != 0
		e.ALU(pc-4, rT2, rT2, rCond, 1)
		e.Cond(pc, rCond, taken, pc+0x10)
		if taken {
			for w := 0; w < pathWeight(j); w++ {
				e.Store(pc+0x10+uint64(w)*4, rZ, rData, m.region+0x4000+uint64(j)*256+uint64(w)*64, 8)
			}
		}
	}
	e.Load(m.pcBase+0xc00, rT1, rZ, slot, 8)
	e.ALU(m.pcBase+0xc04, rAcc, rAcc, rT1, 1)
}

// dispatch is the povray case: an indirect call selects one of nHandlers
// handlers; each handler stores to a shared slot; the common post-dispatch
// code loads the slot. The load conflicts with a different store PC per
// path, separated from the load by a single indirect branch — PHAST learns
// each with a 2-branch history, one violation per store.
type dispatch struct {
	pcBase, slot         uint64
	handlerOps, storeLat int
	which                *pattern
}

func newDispatch(rng *RNG, pcBase, slot uint64, nHandlers, period int, noise float64, handlerOps, storeLat, phaseLen int) *dispatch {
	return &dispatch{
		pcBase: pcBase, slot: slot, handlerOps: handlerOps, storeLat: storeLat,
		which: newPhasedPattern(rng, nHandlers, period, noise, phaseLen),
	}
}

func (m *dispatch) emit(e *Emitter) {
	h := m.which.next()
	hpc := m.pcBase + 0x1000 + uint64(h)*0x100
	// Initialisation store to the slot with a much slower address chain
	// than the handler's: the handler store forwards to the load while this
	// older store is still unresolved — the paper's Fig. 3(c) scenario the
	// §IV-A1 forwarding filter exists for (without the filter, the late
	// resolution squashes the correctly-forwarded load).
	e.ALU(m.pcBase-0x10, rT4, rZ, rZ, 24)
	e.Store(m.pcBase-0x8, rT4, rData, m.slot, 8)
	e.IndCall(m.pcBase, rPtr, hpc)
	aluChain(e, hpc, rAddr, rZ, 1, m.storeLat)
	e.Store(hpc+0x20, rAddr, rAcc, m.slot, 8)
	aluChain(e, hpc+0x30, rAcc, rAcc, m.handlerOps, 1)
	e.Ret(hpc + 0x80)
	e.Load(m.pcBase+0x8, rT1, rZ, m.slot, 8)
	e.ALU(m.pcBase+0xc, rAcc, rAcc, rT1, 1)
}

// byteMerge emits n narrow stores of width bytes each and then one wide load
// covering all of them — the x264_3 (8×1B under an 8B load) and bwaves
// multi-store shapes. All store addresses derive from the same base
// register, so the stores resolve in order, matching the paper's Fig. 4
// analysis. The wide load depends on multiple stores and cannot be satisfied
// by forwarding from a single one.
type byteMerge struct {
	pcBase, region    uint64
	n, width, addrLat int
	block             *pattern
}

func newByteMerge(rng *RNG, pcBase, region uint64, n, width, addrLat, blocks int) *byteMerge {
	return &byteMerge{
		pcBase: pcBase, region: region, n: n, width: width, addrLat: addrLat,
		block: newPattern(rng, blocks, blocks, 0.05),
	}
}

func (m *byteMerge) emit(e *Emitter) {
	addr := m.region + uint64(m.block.next())*64
	aluChain(e, m.pcBase, rAddr, rZ, 1, m.addrLat) // shared base register
	for i := 0; i < m.n; i++ {
		e.Store(m.pcBase+0x10+uint64(i)*4, rAddr, rData, addr+uint64(i*m.width), m.width)
	}
	e.Load(m.pcBase+0x80, rT1, rZ, addr, m.n*m.width)
	e.ALU(m.pcBase+0x84, rAcc, rAcc, rT1, 1)
}

// dataDep stores to a data-dependent element and loads another; with
// probability pConflict they collide. The collision is invisible in the
// path — this is what makes leela/parest hard for a purely path-based
// predictor and drives its false positives once trained (§VI-A). The store
// address resolves late (an index load plus compute, like a[idx[i]]), so a
// false dependence stalls the load for the full window; the loaded value
// feeds dst (e.g. the pointer register of a following chase), putting the
// load on the critical path the way real index loads are.
type dataDep struct {
	pcBase, table    uint64
	entries, addrLat int
	pConflict        float64
	dst              isa.Reg
	idxFootprint     int
	rng              *RNG
}

func newDataDep(rng *RNG, pcBase, table uint64, entries int, pConflict float64, addrLat int, dst isa.Reg) *dataDep {
	if dst == 0 {
		dst = rT1
	}
	return &dataDep{
		pcBase: pcBase, table: table, entries: entries, addrLat: addrLat,
		pConflict: pConflict, dst: dst, idxFootprint: 4096, rng: rng.Fork(),
	}
}

// withIdxFootprint sets the index-vector footprint in bytes: beyond a cache
// level, the index load misses and the store address resolves tens of
// cycles late, which is what makes false dependencies on these loads
// expensive (FEM assembly, force accumulation).
func (m *dataDep) withIdxFootprint(bytes int) *dataDep {
	m.idxFootprint = bytes
	return m
}

func (m *dataDep) emit(e *Emitter) {
	sIdx := m.rng.Intn(m.entries)
	lIdx := sIdx
	if !m.rng.Bool(m.pConflict) {
		for lIdx == sIdx {
			lIdx = m.rng.Intn(m.entries)
		}
	}
	// Index load + compute produce the store address late.
	idxSlot := uint64(m.rng.Intn(m.idxFootprint / 8))
	e.Load(m.pcBase, rAddr, rZ, m.table+0x100000+idxSlot*8, 8)
	aluChain(e, m.pcBase+4, rAddr, rAddr, 2, m.addrLat/2)
	e.ALU(m.pcBase+0xc, rT3, rT3, rZ, 1)
	e.Store(m.pcBase+0x10, rAddr, rT3, m.table+uint64(sIdx)*8, 8)
	e.Load(m.pcBase+0x20, m.dst, rZ, m.table+uint64(lIdx)*8, 8)
	e.ALU(m.pcBase+0x24, rAcc, rAcc, m.dst, 1)
}

// chase emits a pointer chase of n serial loads over a region of the given
// footprint; each load's address depends on the previous load's result,
// producing long-latency serial chains (and cache misses once the footprint
// exceeds a level).
type chase struct {
	pcBase, region uint64
	footprint, n   int
	rng            *RNG
}

func newChase(rng *RNG, pcBase, region uint64, footprint, n int) *chase {
	return &chase{pcBase: pcBase, region: region, footprint: footprint, n: n, rng: rng.Fork()}
}

func (m *chase) emit(e *Emitter) {
	cur := rPtr
	for i := 0; i < m.n; i++ {
		addr := m.region + uint64(m.rng.Intn(m.footprint/8))*8
		e.Load(m.pcBase+uint64(i)*8, cur, cur, addr, 8)
	}
}

// stencil emits an FP-style streaming kernel: per element, a few loads from
// disjoint input arrays, a multiply/add chain, and a store to an output
// array that no subsequent load reads within the window. Conflict-free,
// perfectly predictable control flow.
type stencil struct {
	pcBase, in, out uint64
	iters, fpLat    int
	off             uint64
}

func newStencil(pcBase, in, out uint64, iters, fpLat int) *stencil {
	return &stencil{pcBase: pcBase, in: in, out: out, iters: iters, fpLat: fpLat}
}

func (m *stencil) emit(e *Emitter) {
	const window = 1 << 16
	for i := 0; i < m.iters; i++ {
		off := (m.off + uint64(i)*8) % window
		e.Load(m.pcBase, rT1, rZ, m.in+off, 8)
		e.Load(m.pcBase+4, rT2, rZ, m.in+0x100000+off, 8)
		e.ALU(m.pcBase+8, rT3, rT1, rT2, m.fpLat)
		e.ALU(m.pcBase+12, rT3, rT3, rT1, m.fpLat)
		e.Store(m.pcBase+16, rZ, rT3, m.out+off, 8)
		e.Cond(m.pcBase+20, rIdx, i+1 < m.iters, m.pcBase)
	}
	m.off += uint64(m.iters) * 8
}

// filler emits a background block of micro-ops with a realistic mix:
// compute, conflict-free loads and stores to a private region, and
// conditional branches whose outcomes follow a periodic pattern with the
// given noise rate (the app's background branch-misprediction floor). One
// load occasionally feeds the branch condition register so branches resolve
// late, as real data-dependent branches do.
type filler struct {
	pcBase, region uint64
	n              int
	branch         *pattern
	addr           *pattern
}

func newFiller(rng *RNG, pcBase, region uint64, n, period int, noise float64) *filler {
	return &filler{
		pcBase: pcBase, region: region, n: n,
		branch: newPattern(rng, 2, period, noise),
		addr:   newPattern(rng, 512, 64, 0.1),
	}
}

func (m *filler) emit(e *Emitter) {
	for i := 0; i < m.n; i++ {
		pc := m.pcBase + uint64(i)*4
		switch i % 8 {
		case 0, 3:
			e.ALU(pc, rT4, rT4, rT1, 1+i%3)
		case 1:
			e.Load(pc, rT2, rZ, m.region+uint64(m.addr.next())*64, 8)
		case 2:
			e.Cond(pc, rCond, m.branch.next() == 1, pc+0x20)
		case 4:
			e.Load(pc, rCond, rZ, m.region+0x20000+uint64(m.addr.next())*64, 8)
		case 5:
			e.Store(pc, rZ, rT4, m.region+0x40000+uint64(m.addr.next())*64, 8)
		case 6:
			e.ALU(pc, rT1, rT2, rT4, 1)
		default:
			e.Cond(pc, rCond, m.branch.next() == 1, pc+0x20)
		}
	}
}

// gate emits the conditional branch that reflects a generator-level
// decision ("does this iteration run motif X?") and returns the decision.
// Every architectural choice must be visible as control flow: omitting the
// branch would make the executed path — and with it the store distances it
// implies — invisible to any context-sensitive predictor, which no real
// program does.
func gate(e *Emitter, pc uint64, cond bool) bool {
	e.Cond(pc, rCond, cond, pc+0x20)
	return cond
}
