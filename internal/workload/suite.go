package workload

// The SPEC CPU 2017-like suite. Each program composes the motifs of
// motifs.go with application-specific parameters chosen to reproduce the
// behaviour the paper reports for that application (see DESIGN.md §5 and
// the per-program comments): path diversity comes from each app's schedule
// period, its branch misprediction floor from the schedule noise, and its
// dependence structure from the motif mix. Multiple inputs of one app (the
// paper's "_n" counters) differ in seeds and intensity parameters, as
// different inputs shift — but do not restructure — an app's behaviour.

// appRegions derives disjoint address-space regions for one application so
// that no two programs, and no two motifs within a program, ever alias.
type appRegions struct {
	heap   uint64 // conflict motifs
	table  uint64 // data-dependent tables
	deep   uint64 // large-footprint regions (cache pressure)
	filler uint64 // background traffic
}

func regionsFor(app int) appRegions {
	base := 0x1000_0000 + uint64(app)<<36
	return appRegions{
		heap:   base,
		table:  base + 0x1_0000_0000,
		deep:   base + 0x2_0000_0000,
		filler: base + 0x3_0000_0000,
	}
}

func init() {
	registerPerlbench()
	registerGCC()
	registerBwaves()
	registerMCF()
	registerCactuBSSN()
	registerNamd()
	registerParest()
	registerPovray()
	registerLBM()
	registerOmnetpp()
	registerWRF()
	registerXalancbmk()
	registerX264()
	registerBlender()
	registerCam4()
	registerDeepsjeng()
	registerImagick()
	registerLeela()
	registerNab()
	registerExchange2()
	registerFotonik3d()
	registerRoms()
	registerXZ()
}

// 500.perlbench — interpreter: indirect-branch opcode dispatch with stack
// spill/fill in handlers. Input 3 exercises the loop-carried same-store-PC
// pathology in which Store Sets serialises all in-flight instances
// (paper §VI-C, 500.perlbench_3).
func registerPerlbench() {
	gen := func(handlers, period, lag int, noise float64) func(*Emitter) {
		return func(e *Emitter) {
			r := regionsFor(500)
			pc := uint64(0x50_0000)
			d := newDispatch(e.RNG, pc, r.heap, handlers, period, noise, 6, 8, 800)
			f1 := newFiller(e.RNG, pc+0x8000, r.filler, 40, 8, noise)
			sf := newSpillFill(pc+0x10000, 3, 5, 4)
			var lc *loopCarried
			if lag > 0 {
				lc = newLoopCarried(pc+0x20000, r.heap+0x10000, 20, lag, 10, 8)
			}
			f2 := newFiller(e.RNG, pc+0x30000, r.filler+0x80000, 30, 8, noise/2)
			for {
				d.emit(e)
				f1.emit(e)
				sf.emit(e)
				if lc != nil {
					lc.emit(e)
				}
				f2.emit(e)
			}
		}
	}
	Register(Program{Name: "500.perlbench_1", Gen: gen(12, 12, 0, 0.015), DefaultSeed: 5001})
	Register(Program{Name: "500.perlbench_2", Gen: gen(16, 16, 0, 0.02), DefaultSeed: 5002})
	Register(Program{Name: "500.perlbench_3", Gen: gen(8, 8, 2, 0.01), DefaultSeed: 5003})
}

// 502.gcc — compiler: deep conditional nests produce very many distinct
// store→load paths (the paper's path-explosion outlier) plus occasional
// conflicts that are not path dependent at all.
func registerGCC() {
	gen := func(k, period int, noise, pConfl float64, seed int64) Program {
		return Program{
			DefaultSeed: seed,
			Gen: func(e *Emitter) {
				r := regionsFor(502)
				pc := uint64(0x2_0000)
				pd := newPathDep(e.RNG, pc, r.heap, 4, k, period, noise, 10, 500)
				f1 := newFiller(e.RNG, pc+0x10000, r.filler, 25, 8, noise)
				sf := newSpillFill(pc+0x20000, 2, 4, 3)
				dd := newDataDep(e.RNG, pc+0x30000, r.table, 256, pConfl, 12, 0)
				f2 := newFiller(e.RNG, pc+0x40000, r.filler+0x90000, 20, 16, noise)
				for it := 0; ; it++ {
					pd.emit(e)
					f1.emit(e)
					sf.emit(e)
					if gate(e, pc+0x50000, it%3 == 0) {
						dd.emit(e)
					}
					f2.emit(e)
				}
			},
		}
	}
	type cfg struct {
		k, period int
		noise     float64
	}
	cfgs := []cfg{{7, 48, 0.04}, {11, 64, 0.05}, {5, 40, 0.04}, {9, 56, 0.045}, {15, 64, 0.05}}
	for i, cf := range cfgs {
		p := gen(cf.k, cf.period, cf.noise, 0.02+0.005*float64(i), int64(5021+i))
		p.Name = "502.gcc_" + string(rune('1'+i))
		Register(p)
	}
}

// 503.bwaves — FP solver with the suite's highest fraction of loads that
// depend on multiple stores; those stores share a base register and execute
// in order (paper Fig. 4).
func registerBwaves() {
	Register(Program{
		Name: "503.bwaves", DefaultSeed: 5030,
		Gen: func(e *Emitter) {
			r := regionsFor(503)
			pc := uint64(0x3_0000)
			s1 := newStencil(pc, r.deep, r.deep+0x400000, 24, 4)
			bm := newByteMerge(e.RNG, pc+0x10000, r.heap, 2, 4, 5, 64)
			s2 := newStencil(pc+0x20000, r.deep+0x800000, r.deep+0xc00000, 16, 4)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 12, 4, 0.003)
			for {
				s1.emit(e)
				bm.emit(e)
				s2.emit(e)
				f.emit(e)
			}
		},
	})
}

// 505.mcf — pointer-chasing over a footprint exceeding L2; conflicts are
// rare but latency is dominated by serial misses.
func registerMCF() {
	Register(Program{
		Name: "505.mcf", DefaultSeed: 5050,
		Gen: func(e *Emitter) {
			r := regionsFor(505)
			pc := uint64(0x5_0000)
			c1 := newChase(e.RNG, pc, r.deep, 8<<20, 6)
			f := newFiller(e.RNG, pc+0x10000, r.filler, 20, 8, 0.025)
			dd := newDataDep(e.RNG, pc+0x20000, r.table, 2048, 0.01, 14, rPtr)
			c2 := newChase(e.RNG, pc+0x30000, r.deep+0x40_0000, 8<<20, 4)
			for it := 0; ; it++ {
				c1.emit(e)
				f.emit(e)
				if gate(e, pc+0x40000, it%3 == 0) {
					dd.emit(e)
				}
				c2.emit(e)
			}
		},
	})
}

// 507.cactuBSSN — FP stencil, high ILP, nearly conflict-free, predictable.
func registerCactuBSSN() {
	Register(Program{
		Name: "507.cactuBSSN", DefaultSeed: 5070,
		Gen: func(e *Emitter) {
			r := regionsFor(507)
			pc := uint64(0x7_0000)
			st := newStencil(pc, r.deep, r.deep+0x200000, 40, 5)
			f := newFiller(e.RNG, pc+0x10000, r.filler, 10, 4, 0.002)
			for {
				st.emit(e)
				f.emit(e)
			}
		},
	})
}

// 508.namd — molecular dynamics: compute-bound FP pairlists, predictable
// control flow, conflict-free within the window.
func registerNamd() {
	Register(Program{
		Name: "508.namd", DefaultSeed: 5080,
		Gen: func(e *Emitter) {
			r := regionsFor(508)
			pc := uint64(0x8_0000)
			s1 := newStencil(pc, r.deep, r.deep+0x280000, 28, 5)
			ch := newChase(e.RNG, pc+0x10000, r.deep+0x500000, 512<<10, 2)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 10, 4, 0.004)
			for {
				s1.emit(e)
				ch.emit(e)
				f.emit(e)
			}
		},
	})
}

// 510.parest — finite-element assembly: index-vector driven conflicts that
// are data dependent, the paper's leading false-dependence source.
func registerParest() {
	Register(Program{
		Name: "510.parest", DefaultSeed: 5100,
		Gen: func(e *Emitter) {
			r := regionsFor(510)
			pc := uint64(0x10_0000)
			d1 := newDataDep(e.RNG, pc, r.table, 128, 0.08, 12, 0).withIdxFootprint(2 << 20)
			st := newStencil(pc+0x10000, r.deep, r.deep+0x100000, 10, 4)
			d2 := newDataDep(e.RNG, pc+0x20000, r.table+0x8000, 64, 0.12, 10, 0).withIdxFootprint(2 << 20)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 18, 8, 0.01)
			for it := 0; ; it++ {
				if gate(e, pc+0x40000, it%3 == 0) {
					d1.emit(e)
				}
				st.emit(e)
				if gate(e, pc+0x48000, it%5 == 0) {
					d2.emit(e)
				}
				f.emit(e)
			}
		},
	})
}

// 511.povray — ray tracer: a load conflicts with three different stores
// separated from the load by a single indirect branch (paper §III-C);
// memory dependencies tightly connected to branch history (§VI-C).
func registerPovray() {
	Register(Program{
		Name: "511.povray", DefaultSeed: 5110,
		Gen: func(e *Emitter) {
			r := regionsFor(511)
			pc := uint64(0x11_0000)
			d := newDispatch(e.RNG, pc, r.heap, 3, 9, 0.01, 8, 5, 0)
			f := newFiller(e.RNG, pc+0x10000, r.filler, 22, 8, 0.008)
			pd := newPathDep(e.RNG, pc+0x20000, r.heap+0x8000, 3, 3, 6, 0.01, 4, 0)
			st := newStencil(pc+0x30000, r.deep, r.deep+0x80000, 8, 5)
			for {
				d.emit(e)
				f.emit(e)
				pd.emit(e)
				st.emit(e)
			}
		},
	})
}

// 519.lbm — lattice Boltzmann: streaming, memory bound, conflict-free.
func registerLBM() {
	Register(Program{
		Name: "519.lbm", DefaultSeed: 5190,
		Gen: func(e *Emitter) {
			r := regionsFor(519)
			pc := uint64(0x19_0000)
			st := newStencil(pc, r.deep, r.deep+0x2000000, 48, 4)
			f := newFiller(e.RNG, pc+0x10000, r.filler, 6, 4, 0.002)
			for {
				st.emit(e)
				f.emit(e)
			}
		},
	})
}

// 520.omnetpp — discrete event simulation: heap swaps create short
// path-dependent store→load distances; pointer-heavy.
func registerOmnetpp() {
	Register(Program{
		Name: "520.omnetpp", DefaultSeed: 5200,
		Gen: func(e *Emitter) {
			r := regionsFor(520)
			pc := uint64(0x20_0000)
			pd := newPathDep(e.RNG, pc, r.heap, 2, 3, 10, 0.02, 8, 600)
			ch := newChase(e.RNG, pc+0x10000, r.deep, 4<<20, 4)
			sf := newSpillFill(pc+0x20000, 2, 5, 3)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 18, 8, 0.02)
			for {
				pd.emit(e)
				ch.emit(e)
				sf.emit(e)
				f.emit(e)
			}
		},
	})
}

// 521.wrf — weather model: predictable FP loops, rare conflicts.
func registerWRF() {
	Register(Program{
		Name: "521.wrf", DefaultSeed: 5210,
		Gen: func(e *Emitter) {
			r := regionsFor(521)
			pc := uint64(0x21_0000)
			st := newStencil(pc, r.deep, r.deep+0x300000, 32, 4)
			dd := newDataDep(e.RNG, pc+0x10000, r.table, 4096, 0.002, 8, 0)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 10, 4, 0.004)
			for {
				st.emit(e)
				dd.emit(e)
				f.emit(e)
			}
		},
	})
}

// 523.xalancbmk — XML transformer: virtual dispatch plus short-distance
// stack traffic.
func registerXalancbmk() {
	Register(Program{
		Name: "523.xalancbmk", DefaultSeed: 5230,
		Gen: func(e *Emitter) {
			r := regionsFor(523)
			pc := uint64(0x23_0000)
			d := newDispatch(e.RNG, pc, r.heap, 8, 12, 0.02, 5, 8, 500)
			sf := newSpillFill(pc+0x10000, 2, 4, 4)
			ch := newChase(e.RNG, pc+0x20000, r.deep, 2<<20, 3)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 16, 8, 0.015)
			for {
				d.emit(e)
				sf.emit(e)
				ch.emit(e)
				f.emit(e)
			}
		},
	})
}

// 525.x264 — video encoder: narrow pixel stores merged by wide loads;
// input 3 is the paper's 8×1-byte-stores-under-an-8-byte-load case.
func registerX264() {
	gen := func(n, width int, seed int64) func(*Emitter) {
		return func(e *Emitter) {
			r := regionsFor(525)
			pc := uint64(0x25_0000)
			bm := newByteMerge(e.RNG, pc, r.heap, n, width, 4, 128)
			st := newStencil(pc+0x10000, r.deep, r.deep+0x100000, 12, 3)
			lc := newLoopCarried(pc+0x20000, r.heap+0x40000, 4, 1, 8, 16)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 14, 8, 0.01)
			for {
				bm.emit(e)
				st.emit(e)
				lc.emit(e)
				f.emit(e)
			}
		}
	}
	Register(Program{Name: "525.x264_1", Gen: gen(2, 4, 5251), DefaultSeed: 5251})
	Register(Program{Name: "525.x264_2", Gen: gen(4, 2, 5252), DefaultSeed: 5252})
	Register(Program{Name: "525.x264_3", Gen: gen(8, 1, 5253), DefaultSeed: 5253})
}

// 526.blender — scene traversal: many distinct, rarely-reused long paths
// (paper Fig. 9 outlier) with occasional spill/fill conflicts.
func registerBlender() {
	Register(Program{
		Name: "526.blender", DefaultSeed: 5260,
		Gen: func(e *Emitter) {
			r := regionsFor(526)
			pc := uint64(0x26_0000)
			pd := newPathDep(e.RNG, pc, r.heap, 8, 15, 48, 0.03, 12, 420)
			st := newStencil(pc+0x10000, r.deep, r.deep+0x200000, 14, 4)
			sf := newSpillFill(pc+0x20000, 2, 4, 5)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 20, 8, 0.015)
			for {
				pd.emit(e)
				st.emit(e)
				sf.emit(e)
				f.emit(e)
			}
		},
	})
}

// 527.cam4 — atmosphere model: branchy physics with many rare paths.
func registerCam4() {
	Register(Program{
		Name: "527.cam4", DefaultSeed: 5270,
		Gen: func(e *Emitter) {
			r := regionsFor(527)
			pc := uint64(0x27_0000)
			st := newStencil(pc, r.deep, r.deep+0x400000, 20, 4)
			pd := newPathDep(e.RNG, pc+0x10000, r.heap, 6, 11, 40, 0.02, 12, 420)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 16, 8, 0.01)
			for {
				st.emit(e)
				pd.emit(e)
				f.emit(e)
			}
		},
	})
}

// 531.deepsjeng — chess: recursive search with make/unmake-move stores read
// back along path-dependent distances; heavy path count (Fig. 9).
func registerDeepsjeng() {
	Register(Program{
		Name: "531.deepsjeng", DefaultSeed: 5310,
		Gen: func(e *Emitter) {
			r := regionsFor(531)
			pc := uint64(0x31_0000)
			sf := newSpillFill(pc, 3, 5, 3)
			pd := newPathDep(e.RNG, pc+0x10000, r.heap, 4, 7, 32, 0.04, 10, 500)
			dd := newDataDep(e.RNG, pc+0x20000, r.table, 512, 0.03, 10, 0)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 18, 8, 0.03)
			for it := 0; ; it++ {
				sf.emit(e)
				pd.emit(e)
				if gate(e, pc+0x40000, it%3 == 0) {
					dd.emit(e)
				}
				f.emit(e)
			}
		},
	})
}

// 538.imagick — image processing: predictable pixel loops.
func registerImagick() {
	Register(Program{
		Name: "538.imagick", DefaultSeed: 5380,
		Gen: func(e *Emitter) {
			r := regionsFor(538)
			pc := uint64(0x38_0000)
			st := newStencil(pc, r.deep, r.deep+0x180000, 36, 3)
			bm := newByteMerge(e.RNG, pc+0x10000, r.heap, 4, 2, 3, 64)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 8, 4, 0.003)
			for {
				st.emit(e)
				bm.emit(e)
				f.emit(e)
			}
		},
	})
}

// 541.leela — Go engine (MCTS): conflicts follow the data, not the path —
// PHAST's worst false-positive case (§VI-A, §VI-C); path count below average.
func registerLeela() {
	Register(Program{
		Name: "541.leela", DefaultSeed: 5410,
		Gen: func(e *Emitter) {
			r := regionsFor(541)
			pc := uint64(0x41_0000)
			d1 := newDataDep(e.RNG, pc, r.table, 96, 0.10, 12, rPtr)
			ch := newChase(e.RNG, pc+0x10000, r.deep, 1<<20, 3)
			d2 := newDataDep(e.RNG, pc+0x20000, r.table+0x10000, 160, 0.06, 10, 0)
			f := newFiller(e.RNG, pc+0x30000, r.filler, 20, 8, 0.035)
			for it := 0; ; it++ {
				if gate(e, pc+0x40000, it%4 == 0) {
					d1.emit(e)
				}
				ch.emit(e)
				if gate(e, pc+0x48000, it%8 == 0) {
					d2.emit(e)
				}
				f.emit(e)
			}
		},
	})
}

// 544.nab — molecular dynamics: indexed force accumulation with occasional
// index repeats (data-dependent conflicts).
func registerNab() {
	Register(Program{
		Name: "544.nab", DefaultSeed: 5440,
		Gen: func(e *Emitter) {
			r := regionsFor(544)
			pc := uint64(0x44_0000)
			st := newStencil(pc, r.deep, r.deep+0x200000, 16, 5)
			dd := newDataDep(e.RNG, pc+0x10000, r.table, 200, 0.05, 10, 0).withIdxFootprint(1 << 20)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 12, 4, 0.006)
			for it := 0; ; it++ {
				st.emit(e)
				if gate(e, pc+0x40000, it%2 == 0) {
					dd.emit(e)
				}
				f.emit(e)
			}
		},
	})
}

// 548.exchange2 — puzzle solver: deep recursion, very predictable branches,
// short-path spill/fill dependences.
func registerExchange2() {
	Register(Program{
		Name: "548.exchange2", DefaultSeed: 5480,
		Gen: func(e *Emitter) {
			pc := uint64(0x48_0000)
			r := regionsFor(548)
			s1 := newSpillFill(pc, 4, 4, 6)
			s2 := newSpillFill(pc+0x10000, 3, 4, 4)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 24, 4, 0.004)
			for {
				s1.emit(e)
				s2.emit(e)
				f.emit(e)
			}
		},
	})
}

// 549.fotonik3d — FDTD solver: streaming, conflict-free.
func registerFotonik3d() {
	Register(Program{
		Name: "549.fotonik3d", DefaultSeed: 5490,
		Gen: func(e *Emitter) {
			r := regionsFor(549)
			pc := uint64(0x49_0000)
			st := newStencil(pc, r.deep, r.deep+0x1000000, 44, 4)
			f := newFiller(e.RNG, pc+0x10000, r.filler, 8, 4, 0.002)
			for {
				st.emit(e)
				f.emit(e)
			}
		},
	})
}

// 554.roms — ocean model: streaming with a touch of indexed conflicts.
func registerRoms() {
	Register(Program{
		Name: "554.roms", DefaultSeed: 5540,
		Gen: func(e *Emitter) {
			r := regionsFor(554)
			pc := uint64(0x54_0000)
			st := newStencil(pc, r.deep, r.deep+0x800000, 30, 4)
			dd := newDataDep(e.RNG, pc+0x10000, r.table, 1024, 0.008, 8, 0)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 10, 4, 0.004)
			for {
				st.emit(e)
				dd.emit(e)
				f.emit(e)
			}
		},
	})
}

// 557.xz — LZMA: dictionary stores re-read at short distances, with an
// unpredictable range-coder branch mix.
func registerXZ() {
	gen := func(lag int, noise float64, seed int64) func(*Emitter) {
		return func(e *Emitter) {
			r := regionsFor(557)
			pc := uint64(0x57_0000)
			lc := newLoopCarried(pc, r.heap, 6, lag, 5, 8)
			dd := newDataDep(e.RNG, pc+0x10000, r.table, 320, 0.04, 10, 0)
			f := newFiller(e.RNG, pc+0x20000, r.filler, 22, 8, noise)
			for it := 0; ; it++ {
				lc.emit(e)
				if gate(e, pc+0x40000, it%3 == 0) {
					dd.emit(e)
				}
				f.emit(e)
			}
		}
	}
	Register(Program{Name: "557.xz_1", Gen: gen(1, 0.025, 5571), DefaultSeed: 5571})
	Register(Program{Name: "557.xz_2", Gen: gen(3, 0.02, 5572), DefaultSeed: 5572})
}
