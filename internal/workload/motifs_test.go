package workload

import (
	"testing"

	"repro/internal/isa"
)

func TestPhasedPatternRerolls(t *testing.T) {
	p := newPhasedPattern(NewRNG(11), 64, 16, 0, 100)
	first := make([]int, 16)
	for i := range first {
		first[i] = p.next()
	}
	// Drain past the phase boundary.
	for i := 16; i < 120; i++ {
		p.next()
	}
	same := true
	for i := 0; i < 16; i++ {
		if p.next() != first[i%16] {
			same = false
		}
	}
	if same {
		t.Error("schedule should re-randomise after the phase length")
	}
}

func TestStationaryPatternNeverRerolls(t *testing.T) {
	p := newPattern(NewRNG(11), 64, 8, 0)
	first := make([]int, 8)
	for i := range first {
		first[i] = p.next()
	}
	for rep := 0; rep < 500; rep++ {
		for i := 0; i < 8; i++ {
			if p.next() != first[i] {
				t.Fatal("stationary pattern changed")
			}
		}
	}
}

func TestPathWeightFrontLoaded(t *testing.T) {
	if pathWeight(0) <= pathWeight(5) {
		t.Error("early ladder steps must carry more stores than late ones")
	}
	for j := 8; j < 32; j++ {
		if pathWeight(j) != 0 {
			t.Errorf("pathWeight(%d) = %d, want 0", j, pathWeight(j))
		}
	}
}

func TestGateEmitsDivergentBranch(t *testing.T) {
	e := newEmitter(10, 1)
	if !gate(e, 0x100, true) {
		t.Error("gate must return its condition")
	}
	if gate(e, 0x104, false) {
		t.Error("gate must return its condition")
	}
	if len(e.out) != 2 {
		t.Fatalf("gate should emit exactly one micro-op per call, got %d", len(e.out))
	}
	for i, want := range []bool{true, false} {
		in := e.out[i]
		if !in.Divergent() || in.Taken != want {
			t.Errorf("gate %d: %+v", i, in)
		}
	}
}

// TestPathDepDistanceIsPathDetermined: the store distance of the pathDep
// load must be exactly the weighted popcount of its mask — the Fig. 5
// generalisation the motif exists to provide.
func TestPathDepDistanceIsPathDetermined(t *testing.T) {
	e := newEmitter(100000, 3)
	m := newPathDep(e.RNG, 0x1000, 0x10_0000, 4, 8, 16, 0, 5, 0)
	func() {
		defer func() { recover() }()
		for {
			m.emit(e)
		}
	}()
	// Walk the stream: for each pathDep load, count stores between it and
	// the site store that wrote its address.
	var lastSiteIdx = -1
	storesSince := 0
	checked := 0
	for i := range e.out {
		in := &e.out[i]
		if in.IsStore() {
			if in.PC >= 0x1100 && in.PC < 0x1800 { // site store
				lastSiteIdx = i
				storesSince = 0
			} else if lastSiteIdx >= 0 {
				storesSince++
			}
		}
		if in.IsLoad() && in.PC == 0x1c00 && lastSiteIdx >= 0 {
			site := &e.out[lastSiteIdx]
			if site.Addr != in.Addr {
				t.Fatalf("load at %d reads %#x but last site store wrote %#x", i, in.Addr, site.Addr)
			}
			if storesSince > 127 {
				t.Fatalf("distance %d exceeds the 7-bit field", storesSince)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d pathDep instances checked", checked)
	}
}

// TestByteMergeShape: n narrow stores fully covered by the wide load, all
// sharing the address base register (the Fig. 4 in-order property).
func TestByteMergeShape(t *testing.T) {
	e := newEmitter(2000, 5)
	m := newByteMerge(e.RNG, 0x2000, 0x20_0000, 8, 1, 4, 16)
	func() {
		defer func() { recover() }()
		for {
			m.emit(e)
		}
	}()
	var stores []isa.Inst
	for i := range e.out {
		in := e.out[i]
		switch {
		case in.IsStore():
			stores = append(stores, in)
		case in.IsLoad() && in.Size == 8:
			if len(stores) < 8 {
				t.Fatalf("wide load before %d stores", len(stores))
			}
			base := stores[len(stores)-8].SrcA
			covered := 0
			for _, st := range stores[len(stores)-8:] {
				if st.SrcA != base {
					t.Fatal("byteMerge stores must share a base register")
				}
				if st.Addr >= in.Addr && st.End() <= in.End() {
					covered++
				}
			}
			if covered != 8 {
				t.Fatalf("wide load covers %d/8 narrow stores", covered)
			}
			return // one instance suffices
		}
	}
	t.Fatal("no wide load found")
}
