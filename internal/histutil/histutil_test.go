package histutil

import (
	"testing"
	"testing/quick"
)

func TestEntryPacking(t *testing.T) {
	e := NewEntry(true, false, 0b10110)
	if !e.Indirect() || e.Taken() || e.Dest() != 0b10110 {
		t.Errorf("entry fields wrong: %08b", e)
	}
	e = NewEntry(false, true, 0xffff)
	if e.Indirect() || !e.Taken() || e.Dest() != 31 {
		t.Errorf("entry should keep only %d destination bits: %08b", TargetBits, e)
	}
}

func TestRegLastOrdering(t *testing.T) {
	r := NewReg(4)
	for i := 1; i <= 6; i++ {
		r.Push(Entry(i))
	}
	got := r.Last(4)
	want := []Entry{3, 4, 5, 6} // oldest first
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Last(4) = %v, want %v", got, want)
		}
	}
	if r.Count() != 6 {
		t.Errorf("Count = %d, want 6", r.Count())
	}
}

func TestRegColdStartZeroFill(t *testing.T) {
	r := NewReg(8)
	r.Push(7)
	got := r.Last(4)
	want := []Entry{0, 0, 0, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cold Last(4) = %v, want %v", got, want)
		}
	}
}

func TestRegLastPanicsBeyondCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Last beyond capacity should panic")
		}
	}()
	NewReg(4).Last(5)
}

// TestFoldMatchesReference is the core fold invariant: the incrementally
// maintained Fold always equals the reference FoldEntries over the window.
func TestFoldMatchesReference(t *testing.T) {
	f := func(seed uint32, lens []uint8) bool {
		r := NewReg(64)
		var folds []*Fold
		for _, l := range lens {
			folds = append(folds, r.NewFold(int(l)%65, 7+int(l)%18))
		}
		x := uint64(seed) | 1
		for i := 0; i < 200; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			r.Push(Entry(x & 0x7f))
			for _, fd := range folds {
				want := FoldEntries(r.Last(fd.Len), fd.Width)
				if fd.Value() != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFoldRegAgreement: the on-demand Reg.Fold equals FoldEntries.
func TestFoldRegAgreement(t *testing.T) {
	r := NewReg(32)
	for i := 0; i < 100; i++ {
		r.Push(Entry(i * 37 % 128))
		for _, n := range []int{0, 1, 5, 31} {
			for _, w := range []int{7, 13, 23} {
				if got, want := r.Fold(n, w), FoldEntries(r.Last(n), w); got != want {
					t.Fatalf("push %d: Fold(%d,%d)=%#x want %#x", i, n, w, got, want)
				}
			}
		}
	}
}

func TestFoldLateRegistration(t *testing.T) {
	r := NewReg(16)
	for i := 0; i < 10; i++ {
		r.Push(Entry(i + 1))
	}
	f := r.NewFold(8, 12) // registered after pushes: must fast-forward
	if got, want := f.Value(), FoldEntries(r.Last(8), 12); got != want {
		t.Errorf("late-registered fold = %#x, want %#x", got, want)
	}
}

func TestResetTo(t *testing.T) {
	r := NewReg(8)
	f := r.NewFold(4, 10)
	for i := 0; i < 20; i++ {
		r.Push(Entry(i % 128))
	}
	entries := []Entry{9, 8, 7}
	r.ResetTo(entries, 3)
	if r.Count() != 3 {
		t.Errorf("Count after ResetTo = %d, want 3", r.Count())
	}
	got := r.Last(3)
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("Last after ResetTo = %v, want %v", got, entries)
		}
	}
	if want := FoldEntries(entries, 10); f.Value() != want {
		t.Errorf("fold after ResetTo = %#x, want %#x", f.Value(), want)
	}
	// Folds must keep tracking correctly after the reset.
	r.Push(42)
	if want := FoldEntries(r.Last(4), 10); f.Value() != want {
		t.Errorf("fold after ResetTo+Push = %#x, want %#x", f.Value(), want)
	}
}

func TestResetToTruncatesToCapacity(t *testing.T) {
	r := NewReg(4)
	entries := []Entry{1, 2, 3, 4, 5, 6}
	r.ResetTo(entries, 6)
	got := r.Last(4)
	want := []Entry{3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Last after big ResetTo = %v, want %v", got, want)
		}
	}
}

func TestKeyDistinguishesLengthAndContent(t *testing.T) {
	r := NewReg(16)
	r.Push(1)
	r.Push(2)
	if r.Key(1) == r.Key(2) {
		t.Error("keys of different lengths must differ")
	}
	k2 := r.Key(2)
	r.Push(3)
	if r.Key(2) == k2 {
		t.Error("keys of different content must differ")
	}
}

func TestHashPC(t *testing.T) {
	if HashPC(0) != 0 {
		t.Error("HashPC(0) should be 0")
	}
	if HashPC(0x1000) == HashPC(0x1004) {
		t.Error("nearby PCs should hash differently")
	}
	if HashPCTag(0x1000) == HashPC(0x1000) {
		t.Error("tag and index hashes should differ")
	}
}

func TestMixSpreadsLowBits(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 256; i++ {
		seen[Mix(i, 0)&1023] = true
	}
	if len(seen) < 200 {
		t.Errorf("Mix spreads poorly: %d distinct low-10-bit values of 256", len(seen))
	}
}

func TestPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024} {
		if !Pow2(v) {
			t.Errorf("Pow2(%d) = false", v)
		}
	}
	for _, v := range []int{0, -2, 3, 12, 1023} {
		if Pow2(v) {
			t.Errorf("Pow2(%d) = true", v)
		}
	}
}

func TestFoldZeroLength(t *testing.T) {
	r := NewReg(8)
	f := r.NewFold(0, 16)
	for i := 0; i < 10; i++ {
		r.Push(Entry(i))
		if f.Value() != 0 {
			t.Fatal("zero-length fold must stay 0")
		}
	}
}

// TestResetToThenPushEquivalence: a register rebuilt with ResetTo must be
// indistinguishable (Last, Fold, registered folds) from a fresh register
// that saw the same entries — the property squash-time history rewind
// depends on.
func TestResetToThenPushEquivalence(t *testing.T) {
	f := func(pre, post []byte) bool {
		a := NewReg(32)
		fa := a.NewFold(12, 17)
		b := NewReg(32)
		fb := b.NewFold(12, 17)

		entries := make([]Entry, 0, len(pre))
		for _, v := range pre {
			e := Entry(v & 0x7f)
			entries = append(entries, e)
			b.Push(e)
		}
		// a gets the same prefix via ResetTo instead of pushes.
		a.ResetTo(entries, uint64(len(entries)))

		for _, v := range post {
			e := Entry(v & 0x7f)
			a.Push(e)
			b.Push(e)
		}
		if fa.Value() != fb.Value() {
			return false
		}
		n := 12
		la, lb := a.Last(n), b.Last(n)
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
		return a.Fold(20, 23) == b.Fold(20, 23) && a.Key(9) == b.Key(9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
