// Package histutil implements the context-history machinery shared by the
// path-sensitive memory dependence predictors: the global divergent-branch
// history register, history folding, and the PC hash functions from §IV-B of
// the PHAST paper.
//
// Each history entry describes one divergent branch with a fixed number of
// bits so histories of any length can be processed in parallel in hardware:
// one bit for the branch type (conditional vs indirect), one bit for the
// outcome (taken / not taken), and the five least-significant bits of the
// destination actually taken. Seven bits per entry in total.
package histutil

import "math/bits"

// EntryBits is the width of one history entry.
const EntryBits = 7

// TargetBits is how many low bits of the branch destination each entry keeps.
// The paper's sensitivity analysis found five bits suffice to avoid most
// aliasing.
const TargetBits = 5

// Entry is one divergent-branch history record, packed into the low
// EntryBits bits:
//
//	bit 6: type (0 = conditional, 1 = indirect)
//	bit 5: taken (1 = taken)
//	bits 4..0: destination low bits (the branch target if taken,
//	           fall-through otherwise)
type Entry uint8

// NewEntry packs a history entry. dest is the address the branch actually
// continued at (target if taken, fall-through otherwise).
func NewEntry(indirect, taken bool, dest uint64) Entry {
	var e Entry
	if indirect {
		e |= 1 << 6
	}
	if taken {
		e |= 1 << 5
	}
	e |= Entry(dest & ((1 << TargetBits) - 1))
	return e
}

// Indirect reports whether the entry records an indirect branch.
func (e Entry) Indirect() bool { return e&(1<<6) != 0 }

// Taken reports whether the branch was taken.
func (e Entry) Taken() bool { return e&(1<<5) != 0 }

// Dest returns the recorded low destination bits.
func (e Entry) Dest() uint8 { return uint8(e) & ((1 << TargetBits) - 1) }

// Reg is a global history register of divergent-branch entries. The core
// keeps two instances: one updated at decode (used for predictions) and one
// updated at commit (used to train the predictor with a squash-free history).
//
// The register also exposes Count, the running number of divergent branches
// pushed, which implements the paper's global branch counter: loads and
// stores copy it at decode, and the history length of a conflict is the
// difference of the two copies plus one.
type Reg struct {
	buf   []Entry
	head  int    // next write position
	count uint64 // total entries ever pushed
	folds []*Fold
}

// NewReg returns a history register able to serve histories up to capacity
// entries long. Capacity must cover the longest history any predictor uses.
func NewReg(capacity int) *Reg {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reg{buf: make([]Entry, capacity)}
}

// Push records a divergent branch as the new youngest history entry and
// advances every registered fold.
func (r *Reg) Push(e Entry) {
	// Capture leaving entries before the ring slot is overwritten (a fold of
	// length == capacity evicts exactly the slot being written).
	for _, f := range r.folds {
		var leaving Entry
		if f.Len > 0 && r.count >= uint64(f.Len) {
			pos := r.head - f.Len
			if pos < 0 {
				pos += len(r.buf)
			}
			leaving = r.buf[pos]
		}
		f.update(e, leaving)
	}
	r.buf[r.head] = e
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.count++
}

// Count returns the total number of entries ever pushed (the global
// divergent-branch counter).
func (r *Reg) Count() uint64 { return r.count }

// Reset returns the register to its just-constructed state: empty history,
// zero count, no registered folds. Callers that registered folds (predictor
// Bind) must re-register afterwards; the core's Reset binds a fresh
// predictor, which does exactly that.
func (r *Reg) Reset() {
	for i := range r.buf {
		r.buf[i] = 0
	}
	r.head = 0
	r.count = 0
	r.folds = r.folds[:0]
}

// ResetTo restores the register to hold exactly the given entries (oldest
// first, at most capacity retained) with the given logical count, and
// recomputes every registered fold. The core uses it to rewind the
// decode-time history on a squash — the hardware equivalent of restoring a
// history checkpoint.
func (r *Reg) ResetTo(entries []Entry, count uint64) {
	if len(entries) > len(r.buf) {
		entries = entries[len(entries)-len(r.buf):]
	}
	// Reads only ever touch the min(count, capacity) youngest slots. Slots
	// beyond len(entries) are reachable only when count exceeds the entries
	// provided, and must then read as zero (cold history); otherwise stale
	// contents are unobservable and zeroing them would be wasted work.
	if count > uint64(len(entries)) {
		for i := len(entries); i < len(r.buf); i++ {
			r.buf[i] = 0
		}
	}
	copy(r.buf, entries)
	r.head = len(entries) % len(r.buf)
	r.count = count
	for _, f := range r.folds {
		n := f.Len
		if n > len(entries) {
			n = len(entries)
		}
		f.val = FoldEntries(entries[len(entries)-n:], f.Width)
	}
}

// Cap returns the longest history the register can reproduce.
func (r *Reg) Cap() int { return len(r.buf) }

// Last returns the n youngest entries, oldest first. It panics if n exceeds
// the register capacity; if fewer than n entries were ever pushed, the
// missing leading entries are zero (cold history).
func (r *Reg) Last(n int) []Entry {
	if n > len(r.buf) {
		panic("histutil: history request exceeds register capacity")
	}
	out := make([]Entry, n)
	r.LastInto(out)
	return out
}

// LastInto fills dst with the len(dst) youngest entries, oldest first,
// without allocating.
func (r *Reg) LastInto(dst []Entry) {
	n := len(dst)
	if n > len(r.buf) {
		panic("histutil: history request exceeds register capacity")
	}
	avail := n
	if r.count < uint64(n) {
		avail = int(r.count)
	}
	for i := 0; i < n-avail; i++ {
		dst[i] = 0
	}
	pos := r.head - avail
	if pos < 0 {
		pos += len(r.buf)
	}
	for i := n - avail; i < n; i++ {
		dst[i] = r.buf[pos]
		pos++
		if pos == len(r.buf) {
			pos = 0
		}
	}
}

// Fold compresses the n youngest entries into width bits: the XOR of each
// entry left-rotated by its age (youngest = age 0). This is the reference
// form of the incrementally maintained Fold type; the two always agree. A
// zero-length history folds to 0. Width must be in (0, 64].
func (r *Reg) Fold(n, width int) uint64 {
	if width <= 0 || width > 64 {
		panic("histutil: fold width out of range")
	}
	if n == 0 {
		return 0
	}
	var folded uint64
	avail := n
	if r.count < uint64(n) {
		avail = int(r.count)
	}
	pos := r.head
	for age := 0; age < avail; age++ {
		pos--
		if pos < 0 {
			pos += len(r.buf)
		}
		folded ^= rotl(uint64(r.buf[pos]), age, width)
	}
	return folded & (1<<width - 1)
}

// FoldEntries folds an explicit entry slice (oldest first) into width bits,
// with the same layout as Reg.Fold. It is the reference implementation used
// by tests and by unlimited predictors that materialise exact histories.
func FoldEntries(entries []Entry, width int) uint64 {
	if width <= 0 || width > 64 {
		panic("histutil: fold width out of range")
	}
	var folded uint64
	for age := 0; age < len(entries); age++ {
		folded ^= rotl(uint64(entries[len(entries)-1-age]), age, width)
	}
	return folded & (1<<width - 1)
}

// Key builds an exact (uncompressed) history key from the n youngest
// entries, for the unlimited predictors where no aliasing is allowed. The
// key is the entry stream packed 7 bits per entry into a string, prefixed
// with the length so distinct lengths never collide.
func (r *Reg) Key(n int) string {
	entries := r.Last(n)
	return KeyEntries(entries)
}

// KeyEntries packs an explicit entry slice (oldest first) into an exact key.
func KeyEntries(entries []Entry) string {
	b := make([]byte, 0, len(entries)+2)
	b = append(b, byte(len(entries)), byte(len(entries)>>8))
	for _, e := range entries {
		b = append(b, byte(e))
	}
	return string(b)
}

// HashPC computes the index hash of §IV-B: PC ⊕ (PC>>2) ⊕ (PC>>5). All
// predictors in this repository use it, as the paper does, because it
// improves every evaluated predictor.
func HashPC(pc uint64) uint64 {
	return pc ^ (pc >> 2) ^ (pc >> 5)
}

// HashPCTag computes the tag hash of §IV-B, offsetting the PC by 3 and 7.
func HashPCTag(pc uint64) uint64 {
	return (pc >> 3) ^ (pc >> 7)
}

// Mix combines a hashed PC with a folded history. A multiplicative finisher
// spreads the XOR combination across the word so that set indexing uses
// well-mixed low bits.
func Mix(pcHash, folded uint64) uint64 {
	x := pcHash ^ folded*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// Pow2 reports whether v is a power of two (used by table geometry checks).
func Pow2(v int) bool { return v > 0 && bits.OnesCount(uint(v)) == 1 }
