package histutil

// Fold is an incrementally maintained folded history: the XOR of the last
// Len entries, each rotated by its age, reduced to Width bits. Hardware
// TAGE-family predictors maintain exactly such circular shift registers; the
// incremental update makes long histories (MDP-TAGE reaches 2000 branches)
// O(1) per branch instead of O(Len) per prediction.
//
// Invariant (verified by TestFoldMatchesReference):
//
//	Value() == XOR_{j=0..Len-1} rotl(entry[age j], j mod Width)
type Fold struct {
	Len   int
	Width int
	val   uint64
}

// Value returns the current folded history.
func (f *Fold) Value() uint64 { return f.val }

func rotl(x uint64, k, w int) uint64 {
	k %= w
	if k == 0 {
		return x & (1<<w - 1)
	}
	x &= 1<<w - 1
	return ((x << k) | (x >> (w - k))) & (1<<w - 1)
}

// update advances the fold by one pushed entry; leaving is the entry that
// just aged out of the window (zero during cold start).
func (f *Fold) update(pushed, leaving Entry) {
	if f.Len == 0 {
		return // zero-length history folds to 0 forever
	}
	v := f.val ^ rotl(uint64(leaving), (f.Len-1)%f.Width, f.Width)
	f.val = rotl(v, 1, f.Width) ^ (uint64(pushed) & (1<<f.Width - 1))
	f.val &= 1<<f.Width - 1
}

// NewFold registers an incrementally maintained fold of the last length
// entries into width bits. Length must not exceed the register capacity and
// width must be in (0, 64].
func (r *Reg) NewFold(length, width int) *Fold {
	if length > len(r.buf) {
		panic("histutil: fold length exceeds register capacity")
	}
	if width <= 0 || width > 64 {
		panic("histutil: fold width out of range")
	}
	if length < 0 {
		panic("histutil: negative fold length")
	}
	f := &Fold{Len: length, Width: width}
	// Fast-forward over already-pushed history so late registration agrees
	// with the reference fold.
	if r.count > 0 {
		f.val = FoldEntries(r.Last(length), width)
	}
	r.folds = append(r.folds, f)
	return f
}
