package cluster

import (
	"fmt"
	"testing"
)

// keys returns n synthetic keys shaped like runcache keys (distinct strings;
// the ring hashes them itself, so plain labels are as good as hex digests).
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return out
}

// TestRingBalance pins key-distribution balance: across 3/5/9 members with
// DefaultVNodes virtual nodes, every member's share of a large key set must
// stay near fair, both per member (max relative deviation) and in aggregate
// (a chi-square-style statistic over the observed counts).
func TestRingBalance(t *testing.T) {
	const nkeys = 30_000
	ks := keys(nkeys)
	for _, n := range []int{3, 5, 9} {
		t.Run(fmt.Sprintf("%dnodes", n), func(t *testing.T) {
			r := NewRing(members(n), 0)
			counts := map[string]int{}
			for _, k := range ks {
				owner := r.Owner(k)
				if owner == "" {
					t.Fatalf("Owner(%q) = empty on a %d-member ring", k, n)
				}
				counts[owner]++
			}
			if len(counts) != n {
				t.Fatalf("only %d of %d members own keys: %v", len(counts), n, counts)
			}
			fair := float64(nkeys) / float64(n)
			chi2 := 0.0
			for m, c := range counts {
				dev := (float64(c) - fair) / fair
				if dev < -0.35 || dev > 0.35 {
					t.Errorf("member %s owns %d keys, %+.1f%% from fair share %.0f",
						m, c, 100*dev, fair)
				}
				chi2 += (float64(c) - fair) * (float64(c) - fair) / fair
			}
			// With 128 vnodes the per-member share variance is ~fair²/vnodes,
			// so E[chi2] ≈ nkeys·(n-1)/vnodes... in practice well under 10·n
			// for a uniform hash; 60·n is a loose multiple that still fails
			// hard on a broken hash (which lands in the thousands).
			if limit := 60.0 * float64(n); chi2 > limit {
				t.Errorf("chi-square statistic %.1f over %d members exceeds %.1f (imbalanced ring)",
					chi2, n, limit)
			}
		})
	}
}

// TestRingMinimalRemapping pins the consistent-hashing contract: adding or
// removing one member of an N-member ring moves at most 2/N of the keys
// (expected 1/N for a join to N+1 members, 1/N for a leave from N).
func TestRingMinimalRemapping(t *testing.T) {
	const nkeys = 20_000
	ks := keys(nkeys)
	for _, n := range []int{3, 5, 9} {
		base := NewRing(members(n), 0)
		joined := base.With("http://127.0.0.1:9999")
		left := base.Without(members(n)[0])

		moved := func(a, b *Ring) int {
			m := 0
			for _, k := range ks {
				if a.Owner(k) != b.Owner(k) {
					m++
				}
			}
			return m
		}

		if got, limit := moved(base, joined), nkeys*2/(n+1); got > limit {
			t.Errorf("join to %d members moved %d/%d keys, want <= %d (2/N)",
				n+1, got, nkeys, limit)
		}
		if got, limit := moved(base, left), nkeys*2/n; got > limit {
			t.Errorf("leave from %d members moved %d/%d keys, want <= %d (2/N)",
				n, got, nkeys, limit)
		}
		// A key that did not move owners on a join must still be owned by a
		// surviving member after a leave (sanity: leave only reassigns the
		// departed member's keys).
		for _, k := range ks[:1000] {
			if base.Owner(k) != members(n)[0] && left.Owner(k) != base.Owner(k) {
				t.Fatalf("leave moved key %q owned by surviving member %s", k, base.Owner(k))
			}
		}
	}
}

// TestRingDeterminism: ownership is a pure function of (members, vnodes),
// independent of member order, and every member can compute it identically.
func TestRingDeterminism(t *testing.T) {
	ms := members(5)
	r1 := NewRing(ms, 64)
	r2 := NewRing([]string{ms[3], ms[1], ms[4], ms[0], ms[2], ms[1]}, 64)
	for _, k := range keys(2000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs across member orderings: %q vs %q",
				k, r1.Owner(k), r2.Owner(k))
		}
	}
}

// TestRingOwners: the candidate list is distinct, starts at the owner, and
// never exceeds the member count.
func TestRingOwners(t *testing.T) {
	r := NewRing(members(3), 0)
	for _, k := range keys(500) {
		owners := r.Owners(k, 5)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 5) on 3 members = %v", k, owners)
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%q)[0] = %q, want the owner %q", k, owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range owners {
			if seen[m] {
				t.Fatalf("Owners(%q) repeats %q: %v", k, m, owners)
			}
			seen[m] = true
		}
	}
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if got := NewRing(nil, 0).Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}
