// Package cluster is the fleet-membership layer of the serving stack: a
// consistent-hash ring that assigns every run-cache key (runcache.Key) an
// owning phastd member, so any node of a fleet can accept a request while
// exactly one node executes and caches it. The ring uses virtual nodes for
// balance, and consistent hashing keeps remapping minimal when the member
// set changes: adding or removing one of N members moves only ~1/N of the
// key space (the ring tests pin a ≤2/N bound).
//
// The package is pure data — hashing, ordering, membership validation. The
// HTTP peer protocol built on top of it (proxied runs, peer cache fetches)
// lives in internal/server, which owns the wire format.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member used when a caller
// leaves it zero. 128 points per member keeps the expected per-member load
// imbalance under ~10% (stddev of a member's share is roughly
// share/sqrt(vnodes)) while ring construction stays microseconds-cheap.
const DefaultVNodes = 128

// point is one virtual node: a position on the 64-bit hash circle and the
// member it maps to.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a set of members. Build
// with NewRing; derive changed memberships with With/Without. Immutability
// is what makes lookups lock-free: a membership change builds a new ring
// and swaps the pointer at the caller's level.
type Ring struct {
	vnodes  int
	members []string // deduplicated, sorted
	points  []point  // sorted by (hash, member)
}

// hash64 maps a label onto the ring circle. SHA-256 (truncated to 64 bits)
// rather than a cheap multiplicative hash: vnode labels are highly regular
// ("member#i"), and key strings are already hex SHA-256 digests, so a
// cryptographic mix guarantees the uniformity the balance bounds assume.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over members (empty strings and duplicates are
// dropped) with the given virtual-node count (<=0 means DefaultVNodes).
// A ring over zero members is valid and owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	r := &Ring{vnodes: vnodes, members: ms, points: make([]point, 0, len(ms)*vnodes)}
	for _, m := range ms {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash64(fmt.Sprintf("%s#%d", m, i)), m})
		}
	}
	// Ties (64-bit collisions between vnode labels) are broken by member
	// name so construction order never leaks into ownership.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the deduplicated, sorted member set.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// succ returns the index of the first ring point at or after key's hash,
// wrapping past the top of the circle.
func (r *Ring) succ(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member owning key: the member of the first virtual node
// clockwise from the key's position. Empty rings own nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.succ(key)].member
}

// Owners returns up to n distinct members in ring order starting from key's
// owner — the owner first, then the members that would own the key if their
// predecessors left. This is the natural fetch-candidate order for a
// two-tier cache: after a membership change, the previous owner of a key is
// (with high probability) among the next distinct successors.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.succ(key); len(out) < n && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// With returns a new ring with member added (a no-op copy if present).
func (r *Ring) With(member string) *Ring {
	return NewRing(append(r.Members(), member), r.vnodes)
}

// Without returns a new ring with member removed (a no-op copy if absent).
func (r *Ring) Without(member string) *Ring {
	ms := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			ms = append(ms, m)
		}
	}
	return NewRing(ms, r.vnodes)
}
