package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/stats"
)

// fakeProbe is a deterministic ProbeFunc: members listed in dead fail,
// everyone else succeeds.
type fakeProbe struct{ dead map[string]bool }

func (f *fakeProbe) fn(_ context.Context, member string) error {
	if f.dead[member] {
		return errors.New("injected: unreachable")
	}
	return nil
}

func testFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("http://10.0.0.%d:8091", i+1)
	}
	f, err := NewFleet(members[0], members, 16)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestProberStateMachine walks one peer through the full Up → Suspect →
// Down → Up cycle and checks the live ring follows: ownership of the dead
// member's keys remaps to live members while it is Down and snaps back
// exactly on recovery.
func TestProberStateMachine(t *testing.T) {
	fleet := testFleet(t, 3)
	probe := &fakeProbe{dead: map[string]bool{}}
	reg := stats.NewMetrics()
	var transitions []string
	p := NewProber(fleet, ProberOptions{
		DownAfter: 3, UpAfter: 1, Metrics: reg, Probe: probe.fn,
		OnTransition: func(m string, from, to State) {
			transitions = append(transitions, fmt.Sprintf("%s:%s->%s", m, from, to))
		},
	})

	victim := fleet.Members()[1]
	if victim == fleet.Self() {
		victim = fleet.Members()[2]
	}

	// Record ownership of every probe key under the full ring.
	keys := make([]string, 200)
	fullOwner := map[string]string{}
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		fullOwner[keys[i]] = fleet.Owner(keys[i])
	}

	ctx := context.Background()
	p.ProbeOnce(ctx)
	if got := p.StateOf(victim); got != StateUp {
		t.Fatalf("healthy peer state = %s, want up", got)
	}
	if fleet.LiveSize() != 3 {
		t.Fatalf("live size = %d, want 3", fleet.LiveSize())
	}

	// One failed probe: Suspect, still a live ring member.
	probe.dead[victim] = true
	p.ProbeOnce(ctx)
	if got := p.StateOf(victim); got != StateSuspect {
		t.Fatalf("after 1 failure state = %s, want suspect", got)
	}
	if fleet.LiveSize() != 3 {
		t.Errorf("suspect member was removed from the live ring (size %d)", fleet.LiveSize())
	}

	// Two more failures: Down, removed from the live view.
	p.ProbeOnce(ctx)
	p.ProbeOnce(ctx)
	if got := p.StateOf(victim); got != StateDown {
		t.Fatalf("after 3 failures state = %s, want down", got)
	}
	if fleet.LiveSize() != 2 {
		t.Fatalf("live size with one member down = %d, want 2", fleet.LiveSize())
	}
	if reg.Get(CounterTransitionsDown) != 1 {
		t.Errorf("transitions.down = %d, want 1", reg.Get(CounterTransitionsDown))
	}

	// While Down: the victim owns nothing; every other key keeps its full-
	// ring owner (minimal remapping — only the dead member's keys moved).
	moved := 0
	for _, k := range keys {
		owner := fleet.Owner(k)
		if owner == victim {
			t.Fatalf("down member %s still owns key %s", victim, k)
		}
		if fullOwner[k] != victim && owner != fullOwner[k] {
			t.Errorf("key %s moved from live member %s to %s", k, fullOwner[k], owner)
		}
		if fullOwner[k] == victim {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: victim owned no keys under the full ring")
	}

	// Recovery: one success restores Up and the exact prior ownership.
	probe.dead[victim] = false
	p.ProbeOnce(ctx)
	if got := p.StateOf(victim); got != StateUp {
		t.Fatalf("after recovery state = %s, want up", got)
	}
	if fleet.LiveSize() != 3 {
		t.Fatalf("live size after recovery = %d, want 3", fleet.LiveSize())
	}
	for _, k := range keys {
		if fleet.Owner(k) != fullOwner[k] {
			t.Errorf("key %s owner after recovery = %s, want %s", k, fleet.Owner(k), fullOwner[k])
		}
	}
	if reg.Get(CounterTransitionsUp) != 1 {
		t.Errorf("transitions.up = %d, want 1", reg.Get(CounterTransitionsUp))
	}

	want := []string{
		victim + ":up->suspect",
		victim + ":suspect->down",
		victim + ":down->up",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition[%d] = %s, want %s", i, transitions[i], want[i])
		}
	}
}

// TestProberSuspectRecovers: a single dropped probe (Suspect) heals back to
// Up without ever touching the live ring or counting a transition across
// the Up/Down boundary.
func TestProberSuspectRecovers(t *testing.T) {
	fleet := testFleet(t, 3)
	probe := &fakeProbe{dead: map[string]bool{}}
	reg := stats.NewMetrics()
	p := NewProber(fleet, ProberOptions{DownAfter: 3, Metrics: reg, Probe: probe.fn})
	victim := fleet.Members()[1]

	probe.dead[victim] = true
	p.ProbeOnce(context.Background())
	probe.dead[victim] = false
	p.ProbeOnce(context.Background())

	if got := p.StateOf(victim); got != StateUp {
		t.Fatalf("state = %s, want up", got)
	}
	if fleet.LiveSize() != 3 {
		t.Errorf("live size = %d, want 3 (suspect must not remap)", fleet.LiveSize())
	}
	if d := reg.Get(CounterTransitionsDown); d != 0 {
		t.Errorf("transitions.down = %d, want 0", d)
	}
}

// TestProberNeverRemovesSelf: even with every peer Down, the live ring
// still contains self, so every key has a live owner (this node).
func TestProberAllPeersDownSelfOwnsEverything(t *testing.T) {
	fleet := testFleet(t, 3)
	probe := &fakeProbe{dead: map[string]bool{
		fleet.Members()[1]: true, fleet.Members()[2]: true,
	}}
	// Self is members[0] by testFleet construction; mark the others dead.
	if fleet.Self() != fleet.Members()[0] {
		t.Fatal("test setup: self is not members[0]")
	}
	p := NewProber(fleet, ProberOptions{DownAfter: 1, Probe: probe.fn})
	p.ProbeOnce(context.Background())

	if fleet.LiveSize() != 1 {
		t.Fatalf("live size = %d, want 1 (self only)", fleet.LiveSize())
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if owner := fleet.Owner(key); owner != fleet.Self() {
			t.Fatalf("key %s owner = %q, want self %q", key, owner, fleet.Self())
		}
	}
	if cands := fleet.FetchCandidates("somekey", 2); len(cands) != 0 {
		t.Errorf("fetch candidates with all peers down = %v, want none", cands)
	}
}

// TestProberStatesSnapshot: States reports every peer sorted by member with
// the right fields.
func TestProberStatesSnapshot(t *testing.T) {
	fleet := testFleet(t, 3)
	probe := &fakeProbe{dead: map[string]bool{fleet.Members()[2]: true}}
	p := NewProber(fleet, ProberOptions{DownAfter: 1, Probe: probe.fn})
	p.ProbeOnce(context.Background())

	states := p.States()
	if len(states) != 2 {
		t.Fatalf("States() has %d rows, want 2 (self excluded)", len(states))
	}
	for i := 1; i < len(states); i++ {
		if states[i-1].Member >= states[i].Member {
			t.Errorf("States() not sorted: %q >= %q", states[i-1].Member, states[i].Member)
		}
	}
	for _, s := range states {
		if s.Member == fleet.Self() {
			t.Error("States() includes self")
		}
		wantState := StateUp
		if probe.dead[s.Member] {
			wantState = StateDown
		}
		if s.State != wantState {
			t.Errorf("member %s state = %s, want %s", s.Member, s.State, wantState)
		}
		if probe.dead[s.Member] && s.LastError == "" {
			t.Errorf("down member %s has no LastError", s.Member)
		}
	}
}
