package cluster

import (
	"strings"
	"testing"
)

func TestNewFleetValidation(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	for _, tc := range []struct {
		name, self string
		peers      []string
		wantErr    string
	}{
		{"ok", "http://a:1", peers, ""},
		{"ok trailing slash", "http://a:1/", []string{"http://a:1/", "http://b:2"}, ""},
		{"self missing", "http://z:9", peers, "not in the peer list"},
		{"empty self", "", peers, "-self is required"},
		{"empty peers", "http://a:1", nil, "empty peer list"},
		{"peer with path", "http://a:1", []string{"http://a:1", "http://b:2/v1"}, "bare base URL"},
		{"peer without scheme", "http://a:1", []string{"http://a:1", "b:2"}, "not a base URL"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewFleet(tc.self, tc.peers, 0)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("NewFleet: %v", err)
				}
				if f.Self() != normURL(tc.self) {
					t.Fatalf("Self = %q", f.Self())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestFleetAgreement: every member of a fleet computes the same owner for
// every key — the property that lets any node accept a request and forward
// it to one deterministic executor.
func TestFleetAgreement(t *testing.T) {
	peers := members(4)
	fleets := make([]*Fleet, len(peers))
	for i, p := range peers {
		f, err := NewFleet(p, peers, 0)
		if err != nil {
			t.Fatal(err)
		}
		fleets[i] = f
	}
	owned := 0
	for _, k := range keys(4000) {
		owner := fleets[0].Owner(k)
		for _, f := range fleets[1:] {
			if f.Owner(k) != owner {
				t.Fatalf("fleet views disagree on %q: %q vs %q", k, owner, f.Owner(k))
			}
		}
		if fleets[0].IsOwner(k) {
			owned++
		}
		// Exactly one member may claim ownership.
		claims := 0
		for _, f := range fleets {
			if f.IsOwner(k) {
				claims++
			}
		}
		if claims != 1 {
			t.Fatalf("%d members claim key %q", claims, k)
		}
	}
	if owned == 0 || owned == 4000 {
		t.Fatalf("member 0 owns %d/4000 keys — routing degenerate", owned)
	}
}

// TestFetchCandidates: candidates never include self, are distinct, and on
// the key's owner they start with the member that owned the key before this
// node joined (the place a two-tier fetch should look first).
func TestFetchCandidates(t *testing.T) {
	peers := members(4)
	newcomer := peers[3]
	old := NewRing(peers[:3], 0)
	f, err := NewFleet(newcomer, peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, k := range keys(4000) {
		cands := f.FetchCandidates(k, 2)
		if len(cands) > 2 {
			t.Fatalf("FetchCandidates returned %d members", len(cands))
		}
		for _, c := range cands {
			if c == newcomer {
				t.Fatalf("FetchCandidates includes self for %q", k)
			}
		}
		if !f.IsOwner(k) {
			continue
		}
		// Keys the newcomer took over: the pre-join owner must be the first
		// candidate, because that is where the cached entry lives.
		checked++
		if len(cands) == 0 || cands[0] != old.Owner(k) {
			t.Fatalf("key %q moved to newcomer; first candidate %v, want pre-join owner %q",
				k, cands, old.Owner(k))
		}
	}
	if checked == 0 {
		t.Fatal("newcomer owns no keys — test vacuous")
	}
}
