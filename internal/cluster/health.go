// Failure detection for the fleet: a heartbeat prober that drives per-peer
// Up/Suspect/Down state and feeds the health-filtered ring view the server
// routes by (Fleet.SetDown). The design is deliberately coordination-free,
// matching the ring itself: every member probes every other member's
// /healthz on its own timer and forms its own opinion of who is alive.
// Opinions can disagree transiently — the peer-run protocol tolerates that
// by construction (/v1/peer/run never re-proxies, so skewed views cost an
// extra hop, never a loop), and the cache keys make any routing outcome
// bit-exact.
//
// State machine per peer:
//
//	Up ──failure──▶ Suspect ──DownAfter consecutive failures──▶ Down
//	 ▲                │                                           │
//	 └────success─────┘            UpAfter consecutive successes──┘
//
// Suspect members are still live ring members (one dropped probe must not
// reshuffle ownership); only Down members are removed from the live view,
// and the ring's minimal-remapping property bounds how many keys move when
// that happens. Recovery restores the exact prior ownership because the
// live ring is always recomputed from the full membership.
package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Health-detector counter and gauge names (published to the server's shared
// registry so probes and transitions land in /metrics next to the proxy and
// breaker counters).
const (
	// CounterProbeOK counts successful peer health probes.
	CounterProbeOK = "cluster.probe.ok"
	// CounterProbeFail counts failed peer health probes.
	CounterProbeFail = "cluster.probe.fail"
	// CounterTransitionsDown counts peer transitions into Down (a member
	// removed from this node's live ring view).
	CounterTransitionsDown = "cluster.transitions.down"
	// CounterTransitionsUp counts peer recoveries into Up from Suspect or
	// Down.
	CounterTransitionsUp = "cluster.transitions.up"
	// GaugeLiveMembers is this node's current live-member count (full
	// membership minus Down peers).
	GaugeLiveMembers = "cluster.members.live"
)

// State is one peer's health as seen by this node's prober.
type State int

const (
	// StateUp: the peer answers probes; it owns its ring segment.
	StateUp State = iota
	// StateSuspect: the peer missed at least one probe but fewer than
	// DownAfter in a row. Still a live ring member — a single dropped
	// probe must not reshuffle ownership.
	StateSuspect
	// StateDown: the peer missed DownAfter consecutive probes. Removed
	// from the live ring until it recovers.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// PeerHealth is one peer's observable probe state, exposed via /v1/cluster.
type PeerHealth struct {
	Member           string
	State            State
	ConsecutiveFails int
	LastError        string
	LastProbe        time.Time
}

// ProbeFunc checks one member's health; nil error means healthy. The
// default implementation GETs member/healthz (a drained node's 503 reads as
// a failure, which is exactly right: a draining member should shed its ring
// segment). Tests substitute deterministic fakes.
type ProbeFunc func(ctx context.Context, member string) error

// ProberOptions tune the failure detector. The zero value is usable.
type ProberOptions struct {
	// Interval between probes of one peer (default 1s). Each peer's probe
	// schedule is phase-shifted by a deterministic jitter derived from the
	// member name, so a fleet of identical daemons does not probe in
	// lockstep.
	Interval time.Duration
	// Timeout bounds one probe attempt (default half the interval).
	Timeout time.Duration
	// DownAfter is the consecutive-failure count that demotes a peer from
	// Suspect to Down (default 3).
	DownAfter int
	// UpAfter is the consecutive-success count that promotes a Down peer
	// back to Up (default 1: recovery should be fast, and a flapping peer
	// is re-demoted within DownAfter probes).
	UpAfter int
	// Metrics receives probe and transition counters (default private).
	Metrics *stats.Metrics
	// Probe overrides the health check (default: GET member/healthz).
	Probe ProbeFunc
	// OnTransition, when set, observes every state change — the server
	// hooks breaker half-opening here (a probe success is the breaker's
	// recovery signal).
	OnTransition func(member string, from, to State)
}

func (o ProberOptions) norm() ProberOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval / 2
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 3
	}
	if o.UpAfter <= 0 {
		o.UpAfter = 1
	}
	if o.Metrics == nil {
		o.Metrics = stats.NewMetrics()
	}
	if o.Probe == nil {
		o.Probe = HTTPHealthz
	}
	return o
}

// HTTPHealthz is the production probe: GET member/healthz, any non-200 (or
// transport failure) is unhealthy. Exported so callers can wrap it (the
// server composes it with fault injection: an injected partition must look
// down to the failure detector too).
func HTTPHealthz(ctx context.Context, member string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// peerState is one peer's mutable probe bookkeeping.
type peerState struct {
	state     State
	fails     int // consecutive failures
	succs     int // consecutive successes
	lastErr   string
	lastProbe time.Time
}

// Prober runs the failure detector for one fleet member: it probes every
// peer (never self), maintains the per-peer state machine, and pushes the
// Down set into the fleet's live ring on every transition across the
// Up/Down boundary. Build with NewProber, start with Start, read with
// States.
type Prober struct {
	fleet *Fleet
	opt   ProberOptions

	mu    sync.Mutex
	peers map[string]*peerState
}

// NewProber builds a prober over fleet. All peers start Up (optimistic:
// a booting fleet must not mark everyone Down before the first probe).
func NewProber(fleet *Fleet, opt ProberOptions) *Prober {
	opt = opt.norm()
	p := &Prober{fleet: fleet, opt: opt, peers: map[string]*peerState{}}
	for _, m := range fleet.Members() {
		if m != fleet.Self() {
			p.peers[m] = &peerState{state: StateUp}
		}
	}
	// Explicit zeros so /metrics shows the detector exists before the
	// first transition.
	for _, c := range []string{CounterProbeOK, CounterProbeFail, CounterTransitionsDown, CounterTransitionsUp} {
		opt.Metrics.Add(c, 0)
	}
	opt.Metrics.Set(GaugeLiveMembers, uint64(fleet.Size()))
	return p
}

// Options returns the normalised options.
func (p *Prober) Options() ProberOptions { return p.opt }

// Start launches one probe loop per peer; loops exit when ctx is cancelled.
// Each loop is phase-shifted by a deterministic per-peer jitter
// (hash64(member) mod interval) so the fleet's probe traffic spreads over
// the interval instead of arriving in lockstep bursts.
func (p *Prober) Start(ctx context.Context) {
	for member := range p.peers {
		member := member
		go func() {
			phase := time.Duration(hash64(member) % uint64(p.opt.Interval))
			select {
			case <-time.After(phase):
			case <-ctx.Done():
				return
			}
			ticker := time.NewTicker(p.opt.Interval)
			defer ticker.Stop()
			for {
				p.probeOne(ctx, member)
				select {
				case <-ticker.C:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
}

// ProbeOnce probes every peer once, synchronously — the deterministic entry
// point for tests and for a pre-serving warmup pass.
func (p *Prober) ProbeOnce(ctx context.Context) {
	for member := range p.peers {
		p.probeOne(ctx, member)
	}
}

func (p *Prober) probeOne(ctx context.Context, member string) {
	pctx, cancel := context.WithTimeout(ctx, p.opt.Timeout)
	err := p.opt.Probe(pctx, member)
	cancel()
	if ctx.Err() != nil {
		return // shutting down: a cancelled probe is not evidence
	}
	p.record(member, err)
}

// record applies one probe outcome to the peer's state machine and, when
// the Up/Down boundary is crossed, recomputes the fleet's live ring.
func (p *Prober) record(member string, probeErr error) {
	p.mu.Lock()
	ps, ok := p.peers[member]
	if !ok {
		p.mu.Unlock()
		return
	}
	from := ps.state
	ps.lastProbe = time.Now()
	if probeErr == nil {
		ps.fails, ps.succs, ps.lastErr = 0, ps.succs+1, ""
		switch ps.state {
		case StateSuspect:
			ps.state = StateUp
		case StateDown:
			if ps.succs >= p.opt.UpAfter {
				ps.state = StateUp
			}
		}
	} else {
		ps.fails, ps.succs, ps.lastErr = ps.fails+1, 0, probeErr.Error()
		switch ps.state {
		case StateUp:
			ps.state = StateSuspect
		}
		if ps.fails >= p.opt.DownAfter {
			ps.state = StateDown
		}
	}
	to := ps.state
	var down []string
	changed := from != to
	if changed && (from == StateDown || to == StateDown) {
		for m, s := range p.peers {
			if s.state == StateDown {
				down = append(down, m)
			}
		}
		p.fleet.SetDown(down)
	}
	p.mu.Unlock()

	if probeErr == nil {
		p.opt.Metrics.Add(CounterProbeOK, 1)
	} else {
		p.opt.Metrics.Add(CounterProbeFail, 1)
	}
	if changed {
		switch {
		case to == StateDown:
			p.opt.Metrics.Add(CounterTransitionsDown, 1)
		case to == StateUp && from == StateDown:
			p.opt.Metrics.Add(CounterTransitionsUp, 1)
		}
		if from == StateDown || to == StateDown {
			p.opt.Metrics.Set(GaugeLiveMembers, uint64(p.fleet.Size()-len(down)))
		}
		if p.opt.OnTransition != nil {
			p.opt.OnTransition(member, from, to)
		}
	}
}

// States returns every peer's health, sorted by member, self excluded (the
// caller knows its own state). The snapshot is consistent under one lock.
func (p *Prober) States() []PeerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerHealth, 0, len(p.peers))
	for m, s := range p.peers {
		out = append(out, PeerHealth{
			Member: m, State: s.state, ConsecutiveFails: s.fails,
			LastError: s.lastErr, LastProbe: s.lastProbe,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}

// StateOf returns one peer's current state (StateUp for self and unknown
// members — an unknown member is not this prober's to demote).
func (p *Prober) StateOf(member string) State {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.peers[member]; ok {
		return s.state
	}
	return StateUp
}
