package cluster

import (
	"fmt"
	"net/url"
	"strings"
	"sync/atomic"
)

// Fleet is one member's view of a phastd cluster: the full member set on a
// consistent-hash ring plus this node's own identity. Members are base URLs
// ("http://host:port", no path); Self must be one of them, spelled exactly
// as the other members will spell it in their own -peers lists — ownership
// is decided by string identity on the ring, so every member must hash the
// same member strings.
//
// The full membership is static for the life of the process (it comes from
// the -peers flag); rolling a membership change means restarting members
// with the new list. Layered on top of the full ring is the *live* ring:
// the health-filtered view the failure detector (Prober) maintains via
// SetDown. Ownership queries (Owner, IsOwner, FetchCandidates) answer from
// the live ring, so keys owned by a Down member remap to its ring successor
// — minimally, per the ring's remapping bound — and snap back when the
// member recovers. Self is never removed from the live view: a node that
// cannot see its peers still owns (at least) its own segment.
type Fleet struct {
	self string
	ring *Ring                // full membership, immutable
	live atomic.Pointer[Ring] // health-filtered view; starts == ring
}

// NewFleet builds a fleet from this node's base URL and the full peer list
// (which must include self). URLs are normalised only by trimming trailing
// slashes and surrounding space — no DNS resolution, so "localhost" and
// "127.0.0.1" are different members.
func NewFleet(self string, peers []string, vnodes int) (*Fleet, error) {
	self = normURL(self)
	if self == "" {
		return nil, fmt.Errorf("cluster: -self is required when -peers is set")
	}
	members := make([]string, 0, len(peers))
	for _, p := range peers {
		p = normURL(p)
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not a base URL (want scheme://host[:port])", p)
		}
		if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
			return nil, fmt.Errorf("cluster: peer %q must be a bare base URL (no path/query)", p)
		}
		members = append(members, p)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	ring := NewRing(members, vnodes)
	found := false
	for _, m := range ring.Members() {
		if m == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, ring.Members())
	}
	f := &Fleet{self: self, ring: ring}
	f.live.Store(ring)
	return f, nil
}

func normURL(s string) string {
	return strings.TrimRight(strings.TrimSpace(s), "/")
}

// Self returns this node's member identity (its base URL).
func (f *Fleet) Self() string { return f.self }

// Members returns the full member set, self included.
func (f *Fleet) Members() []string { return f.ring.Members() }

// Size returns the full member count.
func (f *Fleet) Size() int { return f.ring.Size() }

// SetDown installs the health-filtered live ring: the full membership minus
// the given Down members. Self is never removed — a node that has lost
// sight of its peers still owns its own segment. Called by the Prober on
// every Up/Down boundary crossing; an empty (or nil) down list restores the
// full ring, which is how recovered members get their exact prior segments
// back.
func (f *Fleet) SetDown(down []string) {
	live := f.ring
	for _, m := range down {
		if m != f.self {
			live = live.Without(m)
		}
	}
	f.live.Store(live)
}

// LiveMembers returns the current live (non-Down) member set.
func (f *Fleet) LiveMembers() []string { return f.live.Load().Members() }

// LiveSize returns the current live member count.
func (f *Fleet) LiveSize() int { return f.live.Load().Size() }

// Owner returns the member owning key in the live (health-filtered) ring:
// Down members own nothing until they recover.
func (f *Fleet) Owner(key string) string { return f.live.Load().Owner(key) }

// IsOwner reports whether this node owns key in the live ring.
func (f *Fleet) IsOwner(key string) bool { return f.Owner(key) == f.self }

// FetchCandidates returns up to n members worth asking for a cached copy of
// key, in live-ring order and never including self: the key's owner first
// (when self is not the owner), then the successors that owned it under
// smaller memberships. On the owner itself this yields the members the key
// most recently lived on before this node joined the ring. Down members are
// skipped by construction — they answer from the live ring.
func (f *Fleet) FetchCandidates(key string, n int) []string {
	owners := f.live.Load().Owners(key, n+1)
	out := make([]string, 0, n)
	for _, m := range owners {
		if m != f.self && len(out) < n {
			out = append(out, m)
		}
	}
	return out
}

// String renders the fleet for logs: self plus the member count.
func (f *Fleet) String() string {
	return fmt.Sprintf("%s in %d-member fleet", f.self, f.ring.Size())
}
