package trace

import (
	"math"
	"sort"
)

// SimPoint-like interval selection (Perelman et al., used by the paper to
// pick representative 100M-instruction intervals per app/input). A stream is
// cut into fixed-size intervals, each summarised by its basic-block-style
// PC-frequency vector; k-medoids clustering over those vectors picks the
// representative intervals and their weights.

// Interval is one selected representative slice of a stream.
type Interval struct {
	Start, End int     // [Start, End) into Trace.Insts
	Weight     float64 // fraction of intervals this one represents
}

// bbVector is a sparse PC-frequency signature of an interval.
type bbVector map[uint64]float64

func signature(insts []int, pcs []uint64) bbVector {
	_ = insts
	v := bbVector{}
	for _, pc := range pcs {
		v[pc]++
	}
	// L1 normalise so interval length does not dominate distance.
	total := 0.0
	for _, c := range v {
		total += c
	}
	if total > 0 {
		for k := range v {
			v[k] /= total
		}
	}
	return v
}

func manhattan(a, b bbVector) float64 {
	d := 0.0
	for k, va := range a {
		d += math.Abs(va - b[k])
	}
	for k, vb := range b {
		if _, seen := a[k]; !seen {
			d += vb
		}
	}
	return d
}

// SelectIntervals cuts the stream into intervals of intervalLen micro-ops
// and returns up to k representative intervals with weights summing to 1.
// Deterministic: medoid initialisation is by farthest-point traversal from
// interval 0.
//
// Degenerate geometries return well-formed results rather than leaving edge
// handling to callers: an empty stream selects nothing; a non-positive
// intervalLen or one longer than the stream makes the whole stream the only
// interval (weight 1); k is clamped to [1, available intervals].
func (t *Trace) SelectIntervals(intervalLen, k int) []Interval {
	if len(t.Insts) == 0 {
		return nil
	}
	if intervalLen <= 0 || intervalLen > len(t.Insts) {
		return []Interval{{Start: 0, End: len(t.Insts), Weight: 1}}
	}
	n := len(t.Insts) / intervalLen
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	sigs := make([]bbVector, n)
	for i := 0; i < n; i++ {
		start := i * intervalLen
		pcs := make([]uint64, 0, intervalLen)
		for j := start; j < start+intervalLen; j++ {
			pcs = append(pcs, t.Insts[j].PC)
		}
		sigs[i] = signature(nil, pcs)
	}
	// Farthest-point initialisation.
	medoids := []int{0}
	for len(medoids) < k {
		bestIdx, bestDist := -1, -1.0
		for i := 0; i < n; i++ {
			d := math.MaxFloat64
			for _, m := range medoids {
				if dm := manhattan(sigs[i], sigs[m]); dm < d {
					d = dm
				}
			}
			if d > bestDist {
				bestDist, bestIdx = d, i
			}
		}
		if bestDist == 0 {
			break // all remaining intervals identical to a medoid
		}
		medoids = append(medoids, bestIdx)
	}
	// Assign intervals to nearest medoid.
	counts := make([]int, len(medoids))
	for i := 0; i < n; i++ {
		best, bestD := 0, math.MaxFloat64
		for mi, m := range medoids {
			if d := manhattan(sigs[i], sigs[m]); d < bestD {
				bestD, best = d, mi
			}
		}
		counts[best]++
	}
	out := make([]Interval, 0, len(medoids))
	for mi, m := range medoids {
		if counts[mi] == 0 {
			continue
		}
		out = append(out, Interval{
			Start:  m * intervalLen,
			End:    (m + 1) * intervalLen,
			Weight: float64(counts[mi]) / float64(n),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Slice returns a sub-trace covering the interval.
func (t *Trace) Slice(iv Interval) *Trace {
	return &Trace{Name: t.Name, Insts: t.Insts[iv.Start:iv.End]}
}

// SplitN cuts the stream into n contiguous intervals covering it exactly,
// with lengths as equal as possible (the first Len%n intervals are one
// micro-op longer) and weights proportional to length. n is clamped to
// [1, Len]; an empty stream yields nil. Unlike SelectIntervals, every
// micro-op lands in exactly one interval — this is the decomposition
// interval-parallel simulation uses (internal/parsim).
func (t *Trace) SplitN(n int) []Interval {
	total := len(t.Insts)
	if total == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	out := make([]Interval, 0, n)
	base, rem := total/n, total%n
	start := 0
	for i := 0; i < n; i++ {
		l := base
		if i < rem {
			l++
		}
		out = append(out, Interval{
			Start:  start,
			End:    start + l,
			Weight: float64(l) / float64(total),
		})
		start += l
	}
	return out
}
