package trace

import (
	"repro/internal/histutil"
	"repro/internal/isa"
)

// Prefixes holds the per-trace precomputed structures the timing model
// needs at dispatch and squash time: prefix counts of divergent branches and
// stores, and the history entries of all divergent branches in stream order.
// A Trace is immutable, so its prefixes are computed once and shared by
// every core that replays it (trace interning makes one Trace serve many
// predictor/machine configurations).
type Prefixes struct {
	// Div[i] is the number of divergent branches before trace index i.
	Div []uint32
	// St[i] is the number of stores before trace index i.
	St []uint32
	// DivEntries holds the history entries of all divergent branches, in
	// stream order; DivEntries[:Div[i]] is the history before index i.
	DivEntries []histutil.Entry
}

// Pre returns the trace's precomputed prefixes, building them on first use.
// Safe for concurrent use; the result must be treated as read-only.
func (t *Trace) Pre() *Prefixes {
	t.preOnce.Do(func() {
		n := len(t.Insts)
		p := &Prefixes{
			Div: make([]uint32, n+1),
			St:  make([]uint32, n+1),
		}
		divs := 0
		for i := range t.Insts {
			if t.Insts[i].Divergent() {
				divs++
			}
		}
		p.DivEntries = make([]histutil.Entry, 0, divs)
		for i := range t.Insts {
			p.Div[i+1] = p.Div[i]
			p.St[i+1] = p.St[i]
			in := &t.Insts[i]
			if in.Divergent() {
				p.Div[i+1]++
				p.DivEntries = append(p.DivEntries, EntryOf(in))
			}
			if in.IsStore() {
				p.St[i+1]++
			}
		}
		t.pre = p
	})
	return t.pre
}

// EntryOf builds the 7-bit divergent-branch history record of §IV-A2 for a
// branch micro-op: type bit, outcome bit, and the low bits of the
// destination actually taken (target if taken, fall-through otherwise).
func EntryOf(in *isa.Inst) histutil.Entry {
	dest := in.Target
	if !in.Taken {
		dest = in.PC + 4
	}
	return histutil.NewEntry(in.Class.IndirectTarget(), in.Taken, dest)
}
