package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/workload"
)

func testTrace(t *testing.T, app string, n int) *Trace {
	t.Helper()
	p, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	return Generate(p, n, 0)
}

func TestMixSumsToTotal(t *testing.T) {
	tr := testTrace(t, "511.povray", 10000)
	m := tr.MixOf()
	if m.Total != 10000 {
		t.Fatalf("total = %d", m.Total)
	}
	if m.Loads+m.Stores+m.Branches+m.ALU+m.Nops != m.Total {
		t.Error("mix categories must partition the stream")
	}
	if m.Divergent > m.Branches {
		t.Error("divergent branches cannot exceed branches")
	}
	if m.String() == "" {
		t.Error("empty mix rendering")
	}
}

func TestCodecRoundTripSuite(t *testing.T) {
	tr := testTrace(t, "502.gcc_1", 5000)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Insts) != len(tr.Insts) {
		t.Fatalf("decoded %s/%d, want %s/%d", got.Name, len(got.Insts), tr.Name, len(tr.Insts))
	}
	for i := range tr.Insts {
		if got.Insts[i] != tr.Insts[i] {
			t.Fatalf("inst %d: %v != %v", i, got.Insts[i], tr.Insts[i])
		}
	}
}

// TestCodecRoundTripRandom: property-based round trip over synthetic insts.
func TestCodecRoundTripRandom(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop"}
		for i := 0; i < int(n); i++ {
			in := isa.Inst{
				PC:   rng.Uint64() >> 16,
				Kind: isa.Kind(rng.Intn(5)),
			}
			switch in.Kind {
			case isa.ALU:
				in.Dst = isa.Reg(rng.Intn(64))
				in.SrcA = isa.Reg(rng.Intn(64))
				in.SrcB = isa.Reg(rng.Intn(64))
				in.Lat = uint8(1 + rng.Intn(20))
			case isa.Load, isa.Store:
				in.Addr = rng.Uint64() >> 8
				in.Size = uint8(1 + rng.Intn(16))
				in.SrcA = isa.Reg(rng.Intn(64))
			case isa.Branch:
				in.Class = isa.BranchClass(1 + rng.Intn(6))
				in.Taken = rng.Intn(2) == 0
				in.Target = rng.Uint64() >> 16
			}
			tr.Insts = append(tr.Insts, in)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Insts) != len(tr.Insts) {
			return false
		}
		return reflect.DeepEqual(append([]isa.Inst{}, got.Insts...), append([]isa.Inst{}, tr.Insts...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Decode(bytes.NewReader([]byte{'M', 'D', 'P', 'T', 99})); err == nil {
		t.Error("bad version should fail")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestMultiStoreAnalysisCrafted(t *testing.T) {
	tr := &Trace{Insts: []isa.Inst{
		{Kind: isa.Store, Addr: 100, Size: 4, SrcA: 5},
		{Kind: isa.Store, Addr: 104, Size: 4, SrcA: 5},
		{Kind: isa.Load, Addr: 100, Size: 8}, // needs both stores
		{Kind: isa.Store, Addr: 200, Size: 8, SrcA: 3},
		{Kind: isa.Load, Addr: 200, Size: 8}, // single provider
		{Kind: isa.Load, Addr: 999, Size: 8}, // no provider
	}}
	ms := tr.AnalyzeMultiStore(16)
	if ms.Loads != 3 {
		t.Errorf("loads = %d, want 3", ms.Loads)
	}
	if ms.MultiDepLoads != 1 {
		t.Errorf("multi-dep loads = %d, want 1", ms.MultiDepLoads)
	}
	if ms.InOrderProvider != 1 {
		t.Errorf("in-order providers = %d, want 1 (shared base register)", ms.InOrderProvider)
	}
	if ms.MultiFrac() == 0 || ms.InOrderFrac() != 1 {
		t.Error("fraction accessors wrong")
	}
}

func TestMultiStoreWindowEviction(t *testing.T) {
	// The window holds 1 store: the older store must be forgotten.
	tr := &Trace{Insts: []isa.Inst{
		{Kind: isa.Store, Addr: 100, Size: 4, SrcA: 5},
		{Kind: isa.Store, Addr: 104, Size: 4, SrcA: 5},
		{Kind: isa.Load, Addr: 100, Size: 8},
	}}
	ms := tr.AnalyzeMultiStore(1)
	if ms.MultiDepLoads != 0 {
		t.Error("window of 1 cannot produce multi-store loads")
	}
}

func TestBwavesHasHighestMultiStoreFraction(t *testing.T) {
	bwaves := testTrace(t, "503.bwaves", 30000).AnalyzeMultiStore(114)
	lbm := testTrace(t, "519.lbm", 30000).AnalyzeMultiStoreWindowDefault()
	if bwaves.MultiFrac() == 0 {
		t.Error("bwaves should have multi-store dependent loads (paper Fig. 4)")
	}
	if lbm.MultiFrac() >= bwaves.MultiFrac() {
		t.Errorf("lbm multi-store fraction %.4f should be below bwaves %.4f",
			lbm.MultiFrac(), bwaves.MultiFrac())
	}
	if bwaves.InOrderFrac() < 0.5 {
		t.Errorf("bwaves multi-store providers should be mostly in order, got %.2f", bwaves.InOrderFrac())
	}
}

func TestSelectIntervals(t *testing.T) {
	tr := testTrace(t, "500.perlbench_1", 40000)
	ivs := tr.SelectIntervals(5000, 3)
	if len(ivs) == 0 || len(ivs) > 3 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	sum := 0.0
	for _, iv := range ivs {
		if iv.End-iv.Start != 5000 {
			t.Errorf("interval [%d,%d) has wrong length", iv.Start, iv.End)
		}
		sum += iv.Weight
		sub := tr.Slice(iv)
		if sub.Len() != 5000 {
			t.Errorf("Slice length = %d", sub.Len())
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %f, want 1", sum)
	}
}

// TestSelectIntervalsDegenerate pins the edge-case contract: every
// geometry yields a well-formed selection (intervals inside the stream,
// weights summing to 1) instead of relying on callers to special-case.
func TestSelectIntervalsDegenerate(t *testing.T) {
	cases := []struct {
		name        string
		len         int // stream length
		intervalLen int
		k           int
		want        int  // expected interval count (-1 = only check bounds)
		wholeStream bool // single interval covering the whole stream
	}{
		{"empty stream", 0, 1000, 4, 0, false},
		{"shorter than one interval", 100, 1000, 4, 1, true},
		{"zero interval length", 100, 0, 4, 1, true},
		{"negative interval length", 100, -5, 4, 1, true},
		{"zero k", 100, 10, 0, 1, false},
		{"negative k", 100, 10, -3, 1, false},
		{"k beyond available intervals", 100, 10, 99, -1, false},
		{"interval length equals stream", 100, 100, 4, 1, true},
		{"one micro-op", 1, 1, 1, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := &Trace{Insts: make([]isa.Inst, c.len)}
			ivs := tr.SelectIntervals(c.intervalLen, c.k)
			if c.want >= 0 && len(ivs) != c.want {
				t.Fatalf("got %d intervals %+v, want %d", len(ivs), ivs, c.want)
			}
			sum := 0.0
			for _, iv := range ivs {
				if iv.Start < 0 || iv.End > c.len || iv.Start >= iv.End {
					t.Errorf("malformed interval [%d,%d) for stream of %d", iv.Start, iv.End, c.len)
				}
				sum += iv.Weight
			}
			if len(ivs) > 0 && (sum < 0.999 || sum > 1.001) {
				t.Errorf("weights sum to %f, want 1", sum)
			}
			if c.wholeStream && (len(ivs) != 1 || ivs[0].Start != 0 || ivs[0].End != c.len || ivs[0].Weight != 1) {
				t.Errorf("want one whole-stream interval, got %+v", ivs)
			}
		})
	}
}

// TestSplitN pins the contiguous-split contract parsim builds on: exact
// cover, near-equal lengths, clamped n.
func TestSplitN(t *testing.T) {
	cases := []struct {
		name string
		len  int
		n    int
		want int
	}{
		{"empty stream", 0, 4, 0},
		{"even split", 100, 4, 4},
		{"uneven split", 103, 4, 4},
		{"n of one", 50, 1, 1},
		{"zero n", 50, 0, 1},
		{"negative n", 50, -2, 1},
		{"n beyond length", 3, 10, 3},
		{"interval per micro-op", 5, 5, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := &Trace{Insts: make([]isa.Inst, c.len)}
			ivs := tr.SplitN(c.n)
			if len(ivs) != c.want {
				t.Fatalf("got %d intervals, want %d", len(ivs), c.want)
			}
			next, sum := 0, 0.0
			minLen, maxLen := c.len, 0
			for _, iv := range ivs {
				if iv.Start != next {
					t.Fatalf("gap: interval starts at %d, want %d", iv.Start, next)
				}
				if l := iv.End - iv.Start; l > 0 {
					if l < minLen {
						minLen = l
					}
					if l > maxLen {
						maxLen = l
					}
				} else {
					t.Fatalf("empty interval [%d,%d)", iv.Start, iv.End)
				}
				next = iv.End
				sum += iv.Weight
			}
			if c.want > 0 {
				if next != c.len {
					t.Errorf("cover ends at %d, want %d", next, c.len)
				}
				if maxLen-minLen > 1 {
					t.Errorf("lengths vary by more than 1: min %d max %d", minLen, maxLen)
				}
				if sum < 0.999 || sum > 1.001 {
					t.Errorf("weights sum to %f, want 1", sum)
				}
			}
		})
	}
}

// AnalyzeMultiStoreWindowDefault is a tiny helper for the test above.
func (t *Trace) AnalyzeMultiStoreWindowDefault() MultiStore { return t.AnalyzeMultiStore(114) }

// analyzeMultiStoreRef is the original map-per-load implementation, kept as
// the reference the allocation-free version must match byte for byte.
func analyzeMultiStoreRef(t *Trace, window int) MultiStore {
	var res MultiStore
	type storeRec struct {
		idx  int
		addr uint64
		size uint8
		base isa.Reg
	}
	ring := make([]storeRec, 0, window)
	for i := range t.Insts {
		in := &t.Insts[i]
		switch in.Kind {
		case isa.Store:
			if len(ring) == window {
				copy(ring, ring[1:])
				ring = ring[:window-1]
			}
			ring = append(ring, storeRec{idx: i, addr: in.Addr, size: in.Size, base: in.SrcA})
		case isa.Load:
			res.Loads++
			providers := map[int]isa.Reg{}
			for b := in.Addr; b < in.End(); b++ {
				for j := len(ring) - 1; j >= 0; j-- {
					s := ring[j]
					if s.addr <= b && b < s.addr+uint64(s.size) {
						providers[s.idx] = s.base
						break
					}
				}
			}
			if len(providers) >= 2 {
				res.MultiDepLoads++
				var first isa.Reg
				same, got := true, false
				for _, base := range providers {
					if !got {
						first, got = base, true
						continue
					}
					if base != first {
						same = false
					}
				}
				if same && first != 0 {
					res.InOrderProvider++
				}
			}
		}
	}
	return res
}

func TestAnalyzeMultiStoreMatchesReference(t *testing.T) {
	for _, app := range []string{"503.bwaves", "511.povray", "519.lbm"} {
		tr := testTrace(t, app, 20000)
		for _, window := range []int{1, 16, 114} {
			got := tr.AnalyzeMultiStore(window)
			want := analyzeMultiStoreRef(tr, window)
			if got != want {
				t.Errorf("%s window=%d: got %+v, want %+v", app, window, got, want)
			}
		}
	}
}

func TestPrefixesMatchStream(t *testing.T) {
	tr := testTrace(t, "511.povray", 20000)
	p := tr.Pre()
	if p != tr.Pre() {
		t.Fatal("Pre must return the same shared structure")
	}
	divs, sts := uint32(0), uint32(0)
	for i := range tr.Insts {
		if p.Div[i] != divs || p.St[i] != sts {
			t.Fatalf("prefix mismatch at %d: div %d/%d st %d/%d", i, p.Div[i], divs, p.St[i], sts)
		}
		in := &tr.Insts[i]
		if in.Divergent() {
			if got := p.DivEntries[divs]; got != EntryOf(in) {
				t.Fatalf("divEntries[%d] = %v, want %v", divs, got, EntryOf(in))
			}
			divs++
		}
		if in.IsStore() {
			sts++
		}
	}
	if p.Div[len(tr.Insts)] != divs || p.St[len(tr.Insts)] != sts {
		t.Fatal("final prefix counts wrong")
	}
	if uint32(len(p.DivEntries)) != divs {
		t.Fatalf("divEntries length %d, want %d", len(p.DivEntries), divs)
	}
}
