package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace format (little endian, varint-compressed):
//
//	magic  "MDPT"            4 bytes
//	version                  1 byte
//	name length + bytes      uvarint + n
//	instruction count        uvarint
//	per instruction:
//	  kind|class packed      1 byte   (kind in low 3 bits, class in next 3,
//	                                   taken in bit 6)
//	  pc delta               varint   (vs previous pc)
//	  dst, srcA, srcB        3 bytes
//	  lat                    1 byte   (ALU only)
//	  addr delta, size       varint + 1 byte (memory ops only)
//	  target delta           varint   (branches only)
//
// PC/address/target deltas make hot loops nearly free to encode.

const codecMagic = "MDPT"
const codecVersion = 1

// Encode writes the trace in the binary format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Insts))); err != nil {
		return err
	}
	var prevPC, prevAddr, prevTarget uint64
	for i := range t.Insts {
		in := &t.Insts[i]
		head := byte(in.Kind) | byte(in.Class)<<3
		if in.Taken {
			head |= 1 << 6
		}
		if err := bw.WriteByte(head); err != nil {
			return err
		}
		if err := putVarint(int64(in.PC - prevPC)); err != nil {
			return err
		}
		prevPC = in.PC
		if _, err := bw.Write([]byte{byte(in.Dst), byte(in.SrcA), byte(in.SrcB)}); err != nil {
			return err
		}
		if in.Kind == isa.ALU {
			if err := bw.WriteByte(in.Lat); err != nil {
				return err
			}
		}
		if in.IsMem() {
			if err := putVarint(int64(in.Addr - prevAddr)); err != nil {
				return err
			}
			prevAddr = in.Addr
			if err := bw.WriteByte(in.Size); err != nil {
				return err
			}
		}
		if in.IsBranch() {
			if err := putVarint(int64(in.Target - prevTarget)); err != nil {
				return err
			}
			prevTarget = in.Target
		}
	}
	return bw.Flush()
}

// Decode reads a trace previously written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: unreasonable instruction count %d", count)
	}
	t := &Trace{Name: string(nameBytes), Insts: make([]isa.Inst, count)}
	var prevPC, prevAddr, prevTarget uint64
	for i := uint64(0); i < count; i++ {
		in := &t.Insts[i]
		head, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: inst %d: %w", i, err)
		}
		in.Kind = isa.Kind(head & 7)
		in.Class = isa.BranchClass((head >> 3) & 7)
		in.Taken = head&(1<<6) != 0
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		in.PC = prevPC + uint64(d)
		prevPC = in.PC
		regs := make([]byte, 3)
		if _, err := io.ReadFull(br, regs); err != nil {
			return nil, err
		}
		in.Dst, in.SrcA, in.SrcB = isa.Reg(regs[0]), isa.Reg(regs[1]), isa.Reg(regs[2])
		if in.Kind == isa.ALU {
			if in.Lat, err = br.ReadByte(); err != nil {
				return nil, err
			}
		}
		if in.IsMem() {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			in.Addr = prevAddr + uint64(d)
			prevAddr = in.Addr
			if in.Size, err = br.ReadByte(); err != nil {
				return nil, err
			}
		}
		if in.IsBranch() {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			in.Target = prevTarget + uint64(d)
			prevTarget = in.Target
		}
	}
	return t, nil
}
