// Package trace handles dynamic micro-op streams: generation from workload
// programs, a compact binary codec for saving/replaying streams, SimPoint-
// like representative interval selection, and architectural analyses that
// need no timing model (instruction mix, the multi-store dependence study of
// Fig. 4).
//
// The simulator is "functional first, timing second": the correct-path
// stream is produced architecturally in program order, and the timing model
// replays it, re-dispatching from the stream on squashes.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/isa"
	"repro/internal/workload"
)

// Trace is a named dynamic micro-op stream. The stream is immutable once
// built; Pre lazily attaches the precomputed prefix structures the timing
// model shares across runs (see prefix.go).
type Trace struct {
	Name  string
	Insts []isa.Inst

	preOnce sync.Once
	pre     *Prefixes
}

// Generate produces the first n micro-ops of a program's stream.
func Generate(p workload.Program, n int, seed int64) *Trace {
	return &Trace{Name: p.Name, Insts: workload.Generate(p, n, seed)}
}

// Len returns the stream length.
func (t *Trace) Len() int { return len(t.Insts) }

// Mix summarises the instruction mix of a stream.
type Mix struct {
	Total     int
	Loads     int
	Stores    int
	Branches  int
	Divergent int
	ALU       int
	Nops      int
}

// String renders the mix as percentages.
func (m Mix) String() string {
	pct := func(v int) float64 {
		if m.Total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(m.Total)
	}
	return fmt.Sprintf("total=%d load=%.1f%% store=%.1f%% branch=%.1f%% (divergent=%.1f%%) alu=%.1f%%",
		m.Total, pct(m.Loads), pct(m.Stores), pct(m.Branches), pct(m.Divergent), pct(m.ALU))
}

// MixOf computes the instruction mix of the stream.
func (t *Trace) MixOf() Mix {
	var m Mix
	m.Total = len(t.Insts)
	for i := range t.Insts {
		in := &t.Insts[i]
		switch in.Kind {
		case isa.Load:
			m.Loads++
		case isa.Store:
			m.Stores++
		case isa.Branch:
			m.Branches++
			if in.Divergent() {
				m.Divergent++
			}
		case isa.ALU:
			m.ALU++
		case isa.Nop:
			m.Nops++
		}
	}
	return m
}

// MultiStore is the result of the Fig. 4 architectural analysis: how many
// loads depend on more than one store inside an in-flight window, and how
// many of those stores resolve in order (shared address base register).
type MultiStore struct {
	Loads           int // loads analysed
	MultiDepLoads   int // loads whose bytes come from ≥2 window stores
	InOrderProvider int // multi-dep loads whose providers share a base register
}

// MultiFrac returns the fraction of loads depending on multiple stores.
func (m MultiStore) MultiFrac() float64 {
	if m.Loads == 0 {
		return 0
	}
	return float64(m.MultiDepLoads) / float64(m.Loads)
}

// InOrderFrac returns, among multi-dependent loads, the fraction whose
// providing stores resolve in order.
func (m MultiStore) InOrderFrac() float64 {
	if m.MultiDepLoads == 0 {
		return 0
	}
	return float64(m.InOrderProvider) / float64(m.MultiDepLoads)
}

// AnalyzeMultiStore performs the Fig. 4 study over a window of the given
// size (use the machine's SQ capacity): for each load it finds the youngest
// in-window writer of every loaded byte and classifies loads with two or
// more distinct providers.
func (t *Trace) AnalyzeMultiStore(window int) MultiStore {
	var res MultiStore
	type storeRec struct {
		idx  int
		addr uint64
		size uint8
		base isa.Reg
	}
	ring := make([]storeRec, 0, window)
	// providers is reused across loads: the distinct youngest writers of the
	// current load's bytes. A load touches at most 255 bytes (Size is uint8),
	// so the slice stays tiny and is never reallocated in steady state.
	providers := make([]storeRec, 0, 16)
	for i := range t.Insts {
		in := &t.Insts[i]
		switch in.Kind {
		case isa.Store:
			if len(ring) == window {
				copy(ring, ring[1:])
				ring = ring[:window-1]
			}
			ring = append(ring, storeRec{idx: i, addr: in.Addr, size: in.Size, base: in.SrcA})
		case isa.Load:
			res.Loads++
			providers = providers[:0]
			// Youngest provider per loaded byte, deduplicated by store index.
			for b := in.Addr; b < in.End(); b++ {
				for j := len(ring) - 1; j >= 0; j-- {
					s := ring[j]
					if s.addr <= b && b < s.addr+uint64(s.size) {
						known := false
						for k := range providers {
							if providers[k].idx == s.idx {
								known = true
								break
							}
						}
						if !known {
							providers = append(providers, s)
						}
						break
					}
				}
			}
			if len(providers) >= 2 {
				res.MultiDepLoads++
				same := true
				first := providers[0].base
				for k := 1; k < len(providers); k++ {
					if providers[k].base != first {
						same = false
						break
					}
				}
				if same && first != 0 {
					res.InOrderProvider++
				}
			}
		}
	}
	return res
}
