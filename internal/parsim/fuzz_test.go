package parsim_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/oracle"
	"repro/internal/parsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fuzzN keeps each fuzz execution to a few milliseconds of simulation.
const fuzzN = 3000

var fuzzApps = []string{"511.povray", "519.lbm", "502.gcc_1", "541.leela"}

// fuzzBounds derives an explicit boundary list from the fuzz bits: cuts
// interior points spread by a deterministic xorshift walk. bits==0 selects
// the equal SplitN cut instead (so the corpus covers the default path,
// including the degenerate 1-interval and interval-per-1k-µop shapes).
func fuzzBounds(cuts int, bits uint64) []int {
	if bits == 0 {
		return nil
	}
	seen := map[int]bool{0: true}
	out := []int{0}
	x := bits
	for len(out) < cuts+1 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p := int(x % uint64(fuzzN))
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	// Boundaries must be strictly increasing.
	for i := 1; i < len(out); i++ {
		for j := i; j > 1 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FuzzIntervalStitch is the metamorphic stitching property under randomized
// interval boundaries: any legal cut of the trace — equal splits, skewed
// explicit cuts, a single interval, one interval per 1k µops — must (a)
// chain every interval onto the sequential oracle digest and (b) produce
// byte-identical stitched counters with Workers=1 and Workers=4.
func FuzzIntervalStitch(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))        // 1 interval, no warm-up
	f.Add(uint64(0), uint64(2), uint64(1000), uint64(0))     // interval per 1k µops
	f.Add(uint64(1), uint64(3), uint64(500), uint64(0xbeef)) // skewed explicit cut
	f.Add(uint64(2), uint64(7), uint64(5000), uint64(1))     // many cuts, deep warm-up
	f.Add(uint64(3), uint64(1), uint64(0), uint64(1<<40))    // cold two-interval split
	f.Fuzz(func(t *testing.T, appSel, cuts, warmup, bits uint64) {
		app := fuzzApps[appSel%uint64(len(fuzzApps))]
		p, err := workload.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Generate(p, fuzzN, 0)
		want := oracle.Run(tr).Digest()
		plan := parsim.Plan{
			Intervals:  int(cuts%8) + 1,
			Warmup:     int(warmup % 8000),
			Boundaries: fuzzBounds(int(cuts%8), bits),
			Workers:    1,
		}
		serial, err := parsim.Run(context.Background(), tr, phastJob(), plan)
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		plan.Workers = 4
		par, err := parsim.Run(context.Background(), tr, phastJob(), plan)
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		if serial.Digest != want || par.Digest != want {
			t.Errorf("digest serial %#x / parallel %#x, want %#x", serial.Digest, par.Digest, want)
		}
		if !reflect.DeepEqual(serial.Run, par.Run) {
			t.Errorf("plan %+v: stitched counters differ between Workers=1 and Workers=4", plan)
		}
		if serial.Run.Committed != fuzzN {
			t.Errorf("stitched Committed %d, want %d", serial.Run.Committed, fuzzN)
		}
	})
}
