// Package parsim simulates one trace as a set of concurrently-executed
// intervals and stitches the per-interval counters into one result, gated
// by the architectural oracle.
//
// The timing counters of an uninterrupted sequential out-of-order run
// cannot be reproduced by independently-started intervals — a mid-stream
// core has warmed predictors, caches and in-flight state no restart can
// replay exactly. Interval-parallel execution is therefore a *semantic*
// simulation mode (like gem5's checkpoint restore), with two hard
// guarantees instead:
//
//  1. Determinism: executing the same Plan with Workers=1 and Workers=N
//     produces byte-identical stitched and per-interval counters. The
//     parallelism never leaks into the measurement.
//  2. Architectural exactness: the stitched run's oracle digest — the fold
//     over every load's committed value, chained interval-to-interval
//     through checkpoints — equals the digest of a sequential in-order
//     execution of the full trace. A checkpoint-resume bug cannot produce
//     a silently-wrong result; it produces a *StitchError.
//
// Each interval is warmed functionally (pipeline.WarmContext) on the
// micro-ops preceding its boundary, so its predictors and caches start
// heated; its architectural start state comes from an oracle checkpoint
// (oracle.CheckpointPass), whose shared write-history makes resumption
// O(trace) overall rather than O(intervals × touched memory).
//
// parsim deliberately knows nothing about the sim facade (sim imports
// parsim, not the reverse): callers describe a run with a Job — machine,
// options, a predictor factory, and optional core-pool hooks.
package parsim

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/config"
	"repro/internal/mdp"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Job describes how to build the cores an interval plan runs on. Machine,
// Options and NewPredictor are required; the pool hooks are optional and
// used only for unverified runs (a verified core's Verify callback closes
// over run-local checker state and must never be pooled).
type Job struct {
	Machine config.Machine
	Options pipeline.Options
	// NewPredictor builds one predictor instance. Called once per interval:
	// concurrent cores must not share predictor state.
	NewPredictor func() (mdp.Predictor, error)
	// GetCore, when non-nil, obtains a (possibly recycled) core already
	// Reset for pred; PutCore returns a cleanly-finished core. Intervals
	// that fail keep their core out of the pool.
	GetCore func(pred mdp.Predictor) (*pipeline.Core, error)
	PutCore func(c *pipeline.Core)
}

// Plan describes how to cut the trace.
type Plan struct {
	// Intervals is the number of equal-length intervals to cut the trace
	// into (values < 1 mean 1). Ignored when Boundaries is set.
	Intervals int
	// Warmup is how many micro-ops before each interval's boundary are
	// simulated to heat the core before measurement begins (clamped to the
	// available prefix; the first interval starts cold like a plain run).
	Warmup int
	// Workers bounds concurrent interval simulations (default: min of
	// interval count and GOMAXPROCS). Workers=1 is the determinism
	// reference: parallel execution must match it byte for byte.
	Workers int
	// Boundaries, when non-nil, lists the interval start indices explicitly:
	// strictly increasing, first element 0, all < trace length. Overrides
	// Intervals.
	Boundaries []int
	// Verify runs every interval under an oracle interval checker
	// (per-retirement provenance checking) instead of the digest-only gate.
	Verify bool
}

// Result is one stitched interval-parallel run.
type Result struct {
	// Run is the stitched counter set: every counter summed over the
	// intervals (PathsTracked included — interval predictors are distinct
	// instances, so the sum is the total across them).
	Run stats.Run
	// Intervals are the per-interval counter sets, in trace order.
	Intervals []stats.Run
	// Bounds are the interval start indices plus the trace length:
	// interval i ran [Bounds[i], Bounds[i+1]).
	Bounds []int
	// Digest is the architectural digest at the end of the last interval,
	// chained through every checkpoint; SeqDigest is the one-pass
	// sequential digest. Run only returns a Result when they are equal.
	Digest    uint64
	SeqDigest uint64
}

// StitchError reports an interval whose resumed execution failed the oracle
// gate — its digest (or verified commit count) does not chain onto the next
// checkpoint. It means checkpoint resumption broke, not that the simulated
// microarchitecture mis-speculated.
type StitchError struct {
	Interval   int
	Start, End int
	Got, Want  uint64
	What       string // "digest" or "verified micro-op count"
}

func (e *StitchError) Error() string {
	return fmt.Sprintf("parsim: interval %d [%d,%d): stitched %s %#x does not chain onto checkpoint value %#x",
		e.Interval, e.Start, e.End, e.What, e.Got, e.Want)
}

// bounds resolves the plan's interval start indices for an n-op trace.
func (p Plan) bounds(tr *trace.Trace) ([]int, error) {
	n := tr.Len()
	if n == 0 {
		return nil, fmt.Errorf("parsim: empty trace %q", tr.Name)
	}
	if p.Boundaries != nil {
		b := p.Boundaries
		if len(b) == 0 || b[0] != 0 {
			return nil, fmt.Errorf("parsim: boundaries must start at 0, got %v", b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] || b[i] >= n {
				return nil, fmt.Errorf("parsim: boundaries must be strictly increasing and < %d, got %v", n, b)
			}
		}
		return b, nil
	}
	ivs := tr.SplitN(p.Intervals)
	starts := make([]int, len(ivs))
	for i, iv := range ivs {
		starts[i] = iv.Start
	}
	return starts, nil
}

// Run executes tr as plan's intervals on cores described by job and
// stitches the results. The context aborts in-flight intervals; the first
// failure cancels the rest (fail-fast) and is returned.
func Run(ctx context.Context, tr *trace.Trace, job Job, plan Plan) (*Result, error) {
	starts, err := plan.bounds(tr)
	if err != nil {
		return nil, err
	}
	k := len(starts)
	// One in-order pass produces every interval's architectural start state
	// and the sequential reference digest the stitch is gated on. The
	// checkpoint at index 0 is trivial but keeps interval 0 uniform.
	cks, seqDigest := oracle.CheckpointPass(tr, starts)
	bounds := append(append(make([]int, 0, k+1), starts...), tr.Len())

	workers := plan.Workers
	if workers <= 0 || workers > k {
		workers = k
	}
	if max := runtime.GOMAXPROCS(0); plan.Workers <= 0 && workers > max {
		workers = max
	}

	runs := make([]stats.Run, k)
	digests := make([]uint64, k)
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ictx.Err() != nil {
					continue // fail-fast: drain remaining indices
				}
				if err := runInterval(ictx, tr, job, plan, cks, bounds, i, seqDigest, &runs[i], &digests[i]); err != nil {
					fail(err)
				}
			}
		}()
	}
	for i := 0; i < k; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{
		Run:       stitch(runs),
		Intervals: runs,
		Bounds:    bounds,
		Digest:    digests[k-1],
		SeqDigest: seqDigest,
	}
	res.Run.OracleDigest = res.Digest
	return res, nil
}

// runInterval simulates interval i — functional warm-up, measured slice,
// oracle gate — and writes its counters and chained digest in place. A
// panic inside the pipeline is contained to this interval's error.
func runInterval(ctx context.Context, tr *trace.Trace, job Job, plan Plan,
	cks []*oracle.Checkpoint, bounds []int, i int, seqDigest uint64,
	out *stats.Run, digest *uint64) (err error) {
	start, end := bounds[i], bounds[i+1]
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("parsim: interval %d [%d,%d) panicked: %v\n%s",
				i, start, end, v, debug.Stack())
		}
	}()
	// The digest each interval must chain onto: the next interval's
	// checkpoint, or the sequential pass's final digest for the last one.
	want := seqDigest
	if i+1 < len(cks) {
		want = cks[i+1].Digest
	}

	warmStart := start - plan.Warmup
	if warmStart < 0 {
		warmStart = 0
	}
	warm := tr.Slice(trace.Interval{Start: warmStart, End: start})
	slice := tr.Slice(trace.Interval{Start: start, End: end})

	pred, err := job.NewPredictor()
	if err != nil {
		return fmt.Errorf("parsim: interval %d: %w", i, err)
	}

	if plan.Verify {
		// The interval checker's resumed executor doubles as the digest
		// replay: verifying every retirement advances it across the slice.
		ck := oracle.NewIntervalChecker(tr, cks[i])
		opt := job.Options
		opt.Verify = ck.Check
		c, err := pipeline.New(job.Machine, pred, opt)
		if err != nil {
			return fmt.Errorf("parsim: interval %d: %w", i, err)
		}
		if err := c.WarmContext(ctx, warm); err != nil {
			return fmt.Errorf("parsim: interval %d [%d,%d) warm-up: %w", i, start, end, err)
		}
		run, err := c.RunContext(ctx, slice)
		if err != nil {
			return fmt.Errorf("parsim: interval %d [%d,%d): %w", i, start, end, err)
		}
		if got := ck.Committed(); got != slice.Len() {
			return &StitchError{Interval: i, Start: start, End: end,
				Got: uint64(got), Want: uint64(slice.Len()), What: "verified micro-op count"}
		}
		if got := ck.Digest(); got != want {
			return &StitchError{Interval: i, Start: start, End: end,
				Got: got, Want: want, What: "digest"}
		}
		*out, *digest = *run, ck.Digest()
		return nil
	}

	// Unverified mode: gate on the digest alone. The resumed replay is pure
	// in-order oracle work — cheap next to the pipeline — and exercises the
	// exact checkpoint state the production result depends on.
	x := oracle.Resume(tr, cks[i])
	for x.Pos() < end {
		x.Step()
	}
	if got := x.Digest(); got != want {
		return &StitchError{Interval: i, Start: start, End: end,
			Got: got, Want: want, What: "digest"}
	}

	var c *pipeline.Core
	if job.GetCore != nil {
		c, err = job.GetCore(pred)
	} else {
		c, err = pipeline.New(job.Machine, pred, job.Options)
	}
	if err != nil {
		return fmt.Errorf("parsim: interval %d: %w", i, err)
	}
	if err := c.WarmContext(ctx, warm); err != nil {
		return fmt.Errorf("parsim: interval %d [%d,%d) warm-up: %w", i, start, end, err)
	}
	run, err := c.RunContext(ctx, slice)
	if err != nil {
		// Mid-run core: never pooled.
		return fmt.Errorf("parsim: interval %d [%d,%d): %w", i, start, end, err)
	}
	if job.PutCore != nil {
		job.PutCore(c)
	}
	*out, *digest = *run, x.Digest()
	return nil
}

// stitchSkip lists stats.Run counter fields the stitch must not sum.
var stitchSkip = map[string]bool{
	"OracleDigest": true, // set from the chained digest, not additive
}

// stitch sums the per-interval counters into one run. Every uint64 field of
// stats.Run is summed (except stitchSkip); string labels come from the
// first interval. Reflection keeps future counters from being silently
// dropped — TestStitchCoversEveryField pins the exemption list.
func stitch(runs []stats.Run) stats.Run {
	out := runs[0]
	ov := reflect.ValueOf(&out).Elem()
	for r := 1; r < len(runs); r++ {
		rv := reflect.ValueOf(&runs[r]).Elem()
		for f := 0; f < ov.NumField(); f++ {
			fld := ov.Field(f)
			if fld.Kind() != reflect.Uint64 || stitchSkip[ov.Type().Field(f).Name] {
				continue
			}
			fld.SetUint(fld.Uint() + rv.Field(f).Uint())
		}
	}
	out.OracleDigest = 0
	return out
}
