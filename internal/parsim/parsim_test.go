package parsim_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/oracle"
	"repro/internal/parsim"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testTrace(t *testing.T, app string, n int) *trace.Trace {
	t.Helper()
	p, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Generate(p, n, 0)
}

func phastJob() parsim.Job {
	return parsim.Job{
		Machine:      config.AlderLake(),
		Options:      pipeline.DefaultOptions(),
		NewPredictor: func() (mdp.Predictor, error) { return core.NewDefault(), nil },
	}
}

// TestParallelMatchesSerial is guarantee 1: the same plan run with
// Workers=1 and Workers=N produces byte-identical stitched and per-interval
// counters, and the chained digest equals the sequential oracle's.
func TestParallelMatchesSerial(t *testing.T) {
	tr := testTrace(t, "511.povray", 24000)
	want := oracle.Run(tr).Digest()
	plan := parsim.Plan{Intervals: 4, Warmup: 2000}

	plan.Workers = 1
	serial, err := parsim.Run(context.Background(), tr, phastJob(), plan)
	if err != nil {
		t.Fatal(err)
	}
	plan.Workers = 4
	par, err := parsim.Run(context.Background(), tr, phastJob(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Run, par.Run) {
		t.Errorf("stitched runs differ:\nserial:   %+v\nparallel: %+v", serial.Run, par.Run)
	}
	if !reflect.DeepEqual(serial.Intervals, par.Intervals) {
		t.Errorf("per-interval runs differ")
	}
	if par.Digest != want || par.SeqDigest != want {
		t.Errorf("digest %#x / seq %#x, want %#x", par.Digest, par.SeqDigest, want)
	}
	if par.Run.OracleDigest != want {
		t.Errorf("stitched OracleDigest %#x, want %#x", par.Run.OracleDigest, want)
	}
	if got := par.Run.Committed; got != 24000 {
		t.Errorf("stitched Committed %d, want 24000", got)
	}
}

// TestVerifyModeMatchesUnverified: the oracle checker is pure observation —
// running every interval under per-retirement verification must not change
// a single counter, and both modes chain to the sequential digest.
func TestVerifyModeMatchesUnverified(t *testing.T) {
	tr := testTrace(t, "502.gcc_1", 20000)
	plan := parsim.Plan{Intervals: 3, Warmup: 1500, Workers: 3}
	plain, err := parsim.Run(context.Background(), tr, phastJob(), plan)
	if err != nil {
		t.Fatal(err)
	}
	plan.Verify = true
	verified, err := parsim.Run(context.Background(), tr, phastJob(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Run, verified.Run) {
		t.Errorf("verification changed the counters:\nplain:    %+v\nverified: %+v", plain.Run, verified.Run)
	}
	if plain.Digest != verified.Digest {
		t.Errorf("digest %#x (plain) vs %#x (verified)", plain.Digest, verified.Digest)
	}
}

// TestExplicitBoundaries: an uneven explicit cut — including a 1-µop first
// interval — still chains to the sequential digest.
func TestExplicitBoundaries(t *testing.T) {
	tr := testTrace(t, "541.leela", 10000)
	want := oracle.Run(tr).Digest()
	plan := parsim.Plan{Warmup: 500, Workers: 4, Boundaries: []int{0, 1, 17, 5000, 9999}}
	res, err := parsim.Run(context.Background(), tr, phastJob(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != want {
		t.Errorf("digest %#x, want %#x", res.Digest, want)
	}
	if len(res.Intervals) != 5 {
		t.Errorf("got %d intervals, want 5", len(res.Intervals))
	}
	var committed uint64
	for _, r := range res.Intervals {
		committed += r.Committed
	}
	if committed != 10000 {
		t.Errorf("intervals committed %d, want 10000", committed)
	}
}

// TestBadBoundariesRejected pins the Plan.Boundaries contract.
func TestBadBoundariesRejected(t *testing.T) {
	tr := testTrace(t, "519.lbm", 1000)
	for _, bad := range [][]int{{}, {5}, {0, 5, 5}, {0, 9, 3}, {0, 1000}, {0, -1}} {
		plan := parsim.Plan{Boundaries: bad}
		if _, err := parsim.Run(context.Background(), tr, phastJob(), plan); err == nil {
			t.Errorf("boundaries %v: expected an error", bad)
		}
	}
}

// TestSingleInterval: the degenerate 1-interval plan is an ordinary run —
// same counters as a fresh sequential core, plus the digest.
func TestSingleInterval(t *testing.T) {
	tr := testTrace(t, "519.lbm", 8000)
	res, err := parsim.Run(context.Background(), tr, phastJob(), parsim.Plan{Intervals: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := pipeline.New(config.AlderLake(), core.NewDefault(), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Run
	got.OracleDigest = 0
	if !reflect.DeepEqual(got, *ref) {
		t.Errorf("1-interval run differs from a plain run:\nparsim: %+v\nplain:  %+v", got, *ref)
	}
	if res.Digest != oracle.Run(tr).Digest() {
		t.Errorf("digest mismatch")
	}
}

// TestCorePoolHooks: the pool hooks see exactly one get per interval and
// one put per successful interval.
func TestCorePoolHooks(t *testing.T) {
	tr := testTrace(t, "511.povray", 12000)
	var gets, puts int
	job := phastJob()
	job.GetCore = func(pred mdp.Predictor) (*pipeline.Core, error) {
		gets++
		return pipeline.New(config.AlderLake(), pred, pipeline.DefaultOptions())
	}
	job.PutCore = func(c *pipeline.Core) { puts++ }
	plan := parsim.Plan{Intervals: 3, Warmup: 1000, Workers: 1}
	if _, err := parsim.Run(context.Background(), tr, job, plan); err != nil {
		t.Fatal(err)
	}
	if gets != 3 || puts != 3 {
		t.Errorf("gets=%d puts=%d, want 3/3", gets, puts)
	}
}
