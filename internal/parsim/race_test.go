package parsim_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/parsim"
	"repro/internal/sim"
)

// These tests target the concurrency properties of interval-parallel
// simulation; run them under -race (make check does). They live in the
// external test package so they can drive parsim through sim's interned
// trace store — the exact sharing shape production uses — without an
// import cycle (sim imports parsim).

// TestSharedInternedTrace: many concurrent interval plans over one interned
// trace. The stream is read-only — any write to shared state is a -race
// failure — and every plan must agree on the digest and the counters.
func TestSharedInternedTrace(t *testing.T) {
	tr, err := sim.TraceFor("511.povray", 16000, 0)
	if err != nil {
		t.Fatal(err)
	}
	const plans = 4
	results := make([]*parsim.Result, plans)
	var wg sync.WaitGroup
	for p := 0; p < plans; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			res, err := parsim.Run(context.Background(), tr, phastJob(),
				parsim.Plan{Intervals: 4, Warmup: 1000, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			results[p] = res
		}(p)
	}
	wg.Wait()
	for p := 1; p < plans; p++ {
		if results[0] == nil || results[p] == nil {
			t.Fatal("missing result")
		}
		if !reflect.DeepEqual(results[0].Run, results[p].Run) {
			t.Errorf("plan %d stitched differently over the shared trace", p)
		}
	}
}

// TestCancelNoGoroutineLeak: cancelling mid-run aborts every in-flight
// interval promptly and leaves no worker goroutine behind.
func TestCancelNoGoroutineLeak(t *testing.T) {
	tr, err := sim.TraceFor("511.povray", 60000, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := parsim.Run(ctx, tr, phastJob(), parsim.Plan{Intervals: 8, Workers: 4})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			// The run can legitimately win the race and finish clean.
			t.Log("run completed before the cancel landed")
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want a context.Canceled chain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, got)
	}
}

// TestFaultPanicContained: an injected panic inside one interval's cycle
// loop must surface as that plan's error — process alive, no goroutine
// leaked, no partial result.
func TestFaultPanicContained(t *testing.T) {
	tr, err := sim.TraceFor("511.povray", 16000, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := faultinject.Parse("panic=1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Activate(p))
	before := runtime.NumGoroutine()
	res, rerr := parsim.Run(context.Background(), tr, phastJob(),
		parsim.Plan{Intervals: 4, Warmup: 1000, Workers: 4})
	if rerr == nil {
		t.Fatal("expected the injected panic to fail the run")
	}
	if res != nil {
		t.Errorf("failed run returned a result")
	}
	if !strings.Contains(rerr.Error(), "panicked") {
		t.Errorf("error does not identify the contained panic: %v", rerr)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, got)
	}
}
