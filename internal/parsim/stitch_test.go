package parsim

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestStitchCoversEveryField pins the completeness of the reflective stitch:
// every field of stats.Run must be either a summed uint64 counter, a string
// label, or explicitly listed in stitchSkip. A new field of any other kind
// must fail here and force a stitching decision.
func TestStitchCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(stats.Run{})
	var a, b stats.Run
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for f := 0; f < typ.NumField(); f++ {
		switch typ.Field(f).Type.Kind() {
		case reflect.String:
		case reflect.Uint64:
			// Distinct per-field values so a swapped or dropped field is
			// visible in the sum.
			av.Field(f).SetUint(uint64(f + 1))
			bv.Field(f).SetUint(uint64(100 * (f + 1)))
		default:
			t.Errorf("stats.Run.%s: kind %s not handled by stitch",
				typ.Field(f).Name, typ.Field(f).Type.Kind())
		}
	}
	out := stitch([]stats.Run{a, b})
	ov := reflect.ValueOf(&out).Elem()
	for f := 0; f < typ.NumField(); f++ {
		name := typ.Field(f).Name
		switch {
		case typ.Field(f).Type.Kind() == reflect.String:
			if ov.Field(f).String() != av.Field(f).String() {
				t.Errorf("%s: label not taken from the first interval", name)
			}
		case stitchSkip[name]:
			if ov.Field(f).Uint() != 0 {
				t.Errorf("%s: skipped field must stitch to zero, got %d", name, ov.Field(f).Uint())
			}
		default:
			want := av.Field(f).Uint() + bv.Field(f).Uint()
			if got := ov.Field(f).Uint(); got != want {
				t.Errorf("%s: stitched %d, want %d", name, got, want)
			}
		}
	}
}
