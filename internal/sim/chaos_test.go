package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func activateFaults(t *testing.T, spec string) {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Activate(p))
}

// TestChaosPanicBecomesTypedError: a panic inside the cycle loop surfaces as
// a *SimError carrying the kind, the config, the panic value and the stack —
// never as a crashed test binary.
func TestChaosPanicBecomesTypedError(t *testing.T) {
	activateFaults(t, "panic=1,seed=3")
	cfg := Config{App: "511.povray", Predictor: "none", Instructions: 10_000}
	_, err := Run(cfg)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("want *SimError, got %T: %v", err, err)
	}
	if se.Kind != ErrPanic {
		t.Fatalf("kind = %s, want %s (%v)", se.Kind, ErrPanic, err)
	}
	if se.Panic == nil || len(se.Stack) == 0 {
		t.Error("panic SimError must carry the panic value and goroutine stack")
	}
	if se.Config.App != cfg.App {
		t.Errorf("error names config %q, want %q", se.Config.App, cfg.App)
	}
	if !strings.Contains(err.Error(), "[panic]") {
		t.Errorf("message should carry the kind tag: %q", err.Error())
	}
	if KindOf(err) != ErrPanic {
		t.Errorf("KindOf = %s, want %s", KindOf(err), ErrPanic)
	}
}

// TestChaosPanicDoesNotPoisonLaterRuns: the panicked run's core is dropped,
// not pooled, so the next fault-free run of the same config is bit-identical
// to a clean baseline.
func TestChaosPanicDoesNotPoisonLaterRuns(t *testing.T) {
	cfg := Config{App: "541.leela", Predictor: "none", Instructions: 10_000}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, perr := faultinject.Parse("panic=1,seed=3")
	if perr != nil {
		t.Fatal(perr)
	}
	restore := faultinject.Activate(p)
	_, err = Run(cfg)
	restore()
	if KindOf(err) != ErrPanic {
		t.Fatalf("faulted run: kind %s, want panic (%v)", KindOf(err), err)
	}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("run after a recovered panic differs from the fault-free baseline:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestChaosStallDetectedAsDeadlock: an injected zero-retirement stall is
// caught by the watchdog and classified ErrDeadlock, with the pipeline-state
// dump reachable through the error chain.
func TestChaosStallDetectedAsDeadlock(t *testing.T) {
	activateFaults(t, "stall=1,seed=3")
	cfg := Config{App: "511.povray", Predictor: "none", Instructions: 5_000}
	_, err := Run(cfg)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("want *SimError, got %T: %v", err, err)
	}
	if se.Kind != ErrDeadlock {
		t.Fatalf("kind = %s, want %s (%v)", se.Kind, ErrDeadlock, err)
	}
	if se.Cycle == 0 {
		t.Error("deadlock SimError should locate the cycle")
	}
	if !strings.Contains(err.Error(), "pipeline state") {
		t.Errorf("deadlock error should carry the state dump: %v", err)
	}
}

// TestRunContextDeadline: an expired deadline classifies as ErrTimeout.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // guarantee expiry before the run starts
	_, err := RunContext(ctx, Config{App: "511.povray", Predictor: "none", Instructions: 5_000})
	if KindOf(err) != ErrTimeout {
		t.Fatalf("kind = %s, want %s (%v)", KindOf(err), ErrTimeout, err)
	}
}

// TestRunContextCancelled: a cancelled context classifies as ErrCancelled.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{App: "511.povray", Predictor: "none", Instructions: 5_000})
	if KindOf(err) != ErrCancelled {
		t.Fatalf("kind = %s, want %s (%v)", KindOf(err), ErrCancelled, err)
	}
}

// TestConfigErrorsAreTyped: setup failures (unknown app / machine /
// predictor) classify as ErrConfig.
func TestConfigErrorsAreTyped(t *testing.T) {
	for _, cfg := range []Config{
		{App: "599.nonesuch"},
		{App: "511.povray", Machine: "vax11"},
		{App: "511.povray", Predictor: "warp-drive"},
	} {
		_, err := Run(cfg)
		if KindOf(err) != ErrConfig {
			t.Errorf("%+v: kind = %s, want %s (%v)", cfg, KindOf(err), ErrConfig, err)
		}
	}
}
