package sim

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/contentaddr"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestTraceDigest(t *testing.T) {
	ok64 := strings.Repeat("ab", 32)
	d, isTrace, err := TraceDigest("trace:" + ok64)
	if !isTrace || err != nil || d != ok64 {
		t.Fatalf("valid trace app: %q %v %v", d, isTrace, err)
	}
	if _, isTrace, _ := TraceDigest("502.gcc_1"); isTrace {
		t.Fatal("workload name misread as trace app")
	}
	for _, bad := range []string{"trace:", "trace:abc", "trace:" + strings.ToUpper(ok64), "trace:../" + ok64[3:]} {
		if _, isTrace, err := TraceDigest(bad); !isTrace || err == nil {
			t.Errorf("TraceDigest(%q) = (%v, %v), want trace-app parse error", bad, isTrace, err)
		}
	}
}

func TestTraceAppUnprovided(t *testing.T) {
	app := TraceAppPrefix + contentaddr.Sum([]byte("never uploaded"))
	_, err := Run(Config{App: app, Instructions: 1000})
	var se *SimError
	if !errors.As(err, &se) || se.Kind != ErrConfig {
		t.Fatalf("error %v, want ErrConfig SimError", err)
	}
	if !errors.Is(err, ErrTraceUnavailable) {
		t.Fatalf("error %v does not wrap ErrTraceUnavailable", err)
	}
}

func TestTraceAppMalformedDigest(t *testing.T) {
	_, err := Run(Config{App: "trace:deadbeef", Instructions: 1000})
	var se *SimError
	if !errors.As(err, &se) || se.Kind != ErrConfig {
		t.Fatalf("error %v, want ErrConfig SimError", err)
	}
}

// TestTraceAppMatchesDirectRun is the byte-identity contract of the upload
// path: encoding a workload's stream, decoding it as an "upload", and
// running it by digest must produce exactly the counters of running the
// workload directly.
func TestTraceAppMatchesDirectRun(t *testing.T) {
	app := workload.Names()[0]
	const n = 20_000
	direct, err := Run(Config{App: app, Instructions: n})
	if err != nil {
		t.Fatal(err)
	}

	tr, err := TraceFor(app, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	digest := contentaddr.Sum(buf.Bytes())
	decoded, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ProvideTrace(digest, decoded)
	if !TraceProvided(digest) {
		t.Fatal("ProvideTrace did not register the digest")
	}

	uploaded, err := Run(Config{App: TraceAppPrefix + digest, Instructions: n})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, uploaded) {
		t.Fatalf("uploaded-trace run diverged from direct run:\ndirect:   %+v\nuploaded: %+v", direct, uploaded)
	}
}

func TestTraceAppTruncation(t *testing.T) {
	app := workload.Names()[0]
	full, err := TraceFor(app, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := full.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	digest := contentaddr.Sum(buf.Bytes())
	decoded, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ProvideTrace(digest, decoded)
	traceApp := TraceAppPrefix + digest

	short, err := TraceFor(traceApp, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if short.Len() != 1000 {
		t.Fatalf("truncated stream length %d, want 1000", short.Len())
	}
	// Asking for more than the trace holds returns the whole trace.
	long, err := TraceFor(traceApp, 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if long != decoded {
		t.Fatal("over-length request did not return the full provided stream")
	}
	// The truncated variant is interned: same pointer again.
	again, err := TraceFor(traceApp, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again != short {
		t.Fatal("truncated stream not interned")
	}
}
