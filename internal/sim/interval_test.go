package sim

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestIntervalConfigNormalization pins the cache-compatibility rules: a
// sequential Config and its Intervals<=1 spellings normalize (and so hash)
// identically, while a real interval split is a distinct key.
func TestIntervalConfigNormalization(t *testing.T) {
	seq := Config{App: "519.lbm"}.Normalized()
	for _, cfg := range []Config{
		{App: "519.lbm", Intervals: 0},
		{App: "519.lbm", Intervals: 1},
		{App: "519.lbm", Intervals: 1, IntervalWarmup: 5000},
		{App: "519.lbm", Intervals: -3},
	} {
		if got := cfg.Normalized(); got != seq {
			t.Errorf("%+v normalized to %+v, want the sequential form", cfg, got)
		}
	}
	par := Config{App: "519.lbm", Intervals: 4}.Normalized()
	if par == seq {
		t.Error("a 4-interval config normalized onto the sequential key")
	}
	if par.IntervalWarmup != DefaultIntervalWarmup {
		t.Errorf("warm-up defaulted to %d, want %d", par.IntervalWarmup, DefaultIntervalWarmup)
	}
	cold := Config{App: "519.lbm", Intervals: 4, IntervalWarmup: -1}.Normalized()
	if cold.IntervalWarmup != 0 {
		t.Errorf("negative warm-up normalized to %d, want 0", cold.IntervalWarmup)
	}
}

// TestIntervalJSONOmitted: sequential configs must serialize without the
// interval fields, so persisted cache keys written before the fields
// existed still match byte-for-byte.
func TestIntervalJSONOmitted(t *testing.T) {
	data, err := json.Marshal(Config{App: "519.lbm"}.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Intervals", "IntervalWarmup", "OracleDigest"} {
		if string(data) != "" && json.Valid(data) {
			var m map[string]any
			json.Unmarshal(data, &m)
			if _, ok := m[field]; ok {
				t.Errorf("sequential config JSON carries %q: %s", field, data)
			}
		}
	}
}

// TestIntervalRunMatchesFacade: the facade's interval path is deterministic
// and digest-stamped; rerunning the same interval config is byte-identical,
// and the sequential run of the same workload commits the same stream.
func TestIntervalRunMatchesFacade(t *testing.T) {
	cfg := Config{App: "511.povray", Instructions: 20000, Intervals: 4, IntervalWarmup: 2000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("interval runs differ:\n%+v\n%+v", a, b)
	}
	if a.OracleDigest == 0 {
		t.Error("interval run missing its oracle digest")
	}
	if a.Committed != 20000 {
		t.Errorf("committed %d, want 20000", a.Committed)
	}
	seq, err := Run(Config{App: "511.povray", Instructions: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if seq.OracleDigest != 0 {
		t.Error("sequential run must not stamp an oracle digest")
	}
	if seq.Committed != a.Committed || seq.Loads != a.Loads || seq.Stores != a.Stores {
		t.Errorf("architectural stream differs: seq %d/%d/%d vs intervals %d/%d/%d",
			seq.Committed, seq.Loads, seq.Stores, a.Committed, a.Loads, a.Stores)
	}
}

// TestIntervalVerifyRun: the verified interval path (per-retirement oracle
// checking inside every interval) succeeds and agrees with the unverified
// interval path counter-for-counter.
func TestIntervalVerifyRun(t *testing.T) {
	cfg := Config{App: "502.gcc_1", Instructions: 16000, Intervals: 3, IntervalWarmup: 1500}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Verify = true
	verified, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, verified) {
		t.Errorf("verified interval run differs:\n%+v\n%+v", plain, verified)
	}
}

// TestIntervalBadConfig: interval runs surface setup failures as typed
// config errors like sequential ones.
func TestIntervalBadConfig(t *testing.T) {
	_, err := Run(Config{App: "no-such-app", Intervals: 4})
	var se *SimError
	if !errors.As(err, &se) || se.Kind != ErrConfig {
		t.Errorf("got %v, want an ErrConfig SimError", err)
	}
}
