package sim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/oracle"
	"repro/internal/parsim"
	"repro/internal/pipeline"
)

// ErrorKind classifies a failed simulation. Kinds are stable strings —
// metric names ("sim.errors.<kind>") and error-table rows are built from
// them.
type ErrorKind string

const (
	// ErrPanic is a panic recovered from the simulator (predictor bug,
	// pipeline invariant violation, injected fault). Stack holds the trace.
	ErrPanic ErrorKind = "panic"
	// ErrDeadlock is a wedged pipeline caught by the zero-retirement
	// watchdog or the absolute cycle ceiling (see pipeline.DeadlockError).
	ErrDeadlock ErrorKind = "deadlock"
	// ErrTimeout is a run that outlived its wall-clock deadline.
	ErrTimeout ErrorKind = "timeout"
	// ErrCancelled is a run aborted by context cancellation (SIGINT,
	// fail-fast batch shutdown).
	ErrCancelled ErrorKind = "cancelled"
	// ErrConfig is a run that never started: unknown app, machine or
	// predictor spec, invalid machine parameters.
	ErrConfig ErrorKind = "config"
	// ErrVerify is a run whose retirement stream diverged from the in-order
	// architectural oracle (Config.Verify; see oracle.DivergenceError).
	ErrVerify ErrorKind = "verify"
	// ErrInternal is any other simulator failure.
	ErrInternal ErrorKind = "internal"
)

// CounterErrorPrefix prefixes the per-kind error counters an experiment
// runner publishes ("sim.errors.panic", "sim.errors.deadlock", ...).
const CounterErrorPrefix = "sim.errors."

// SimError is the typed failure of one simulation: which config failed, how
// (Kind), where (Cycle, when known), and the recovered panic stack when the
// failure was a panic. A SimError poisons one result row, never the batch.
type SimError struct {
	Kind   ErrorKind
	Config Config
	// Cycle locates deadlocks and panics inside the run (0 = unknown).
	Cycle uint64
	// Panic is the recovered value and Stack the goroutine stack, set only
	// for Kind == ErrPanic.
	Panic any
	Stack []byte
	// Err is the underlying error (nil for recovered panics).
	Err error
}

func (e *SimError) Error() string {
	c := e.Config
	head := fmt.Sprintf("sim %s/%s/%s [%s]", c.App, c.Machine, c.Predictor, e.Kind)
	switch {
	case e.Kind == ErrPanic:
		return fmt.Sprintf("%s: panic: %v", head, e.Panic)
	case e.Err != nil:
		return fmt.Sprintf("%s: %v", head, e.Err)
	default:
		return head
	}
}

func (e *SimError) Unwrap() error { return e.Err }

// newPanicError converts a recovered panic value into a SimError.
func newPanicError(cfg Config, v any, stack []byte) *SimError {
	return &SimError{Kind: ErrPanic, Config: cfg, Panic: v, Stack: stack}
}

// wrapError classifies err into a SimError for cfg. Already-typed errors
// pass through; pipeline deadlocks, context aborts and setup failures get
// their kinds; anything else is ErrInternal.
func wrapError(cfg Config, err error) *SimError {
	var se *SimError
	if errors.As(err, &se) {
		return se
	}
	var de *pipeline.DeadlockError
	if errors.As(err, &de) {
		return &SimError{Kind: ErrDeadlock, Config: cfg, Cycle: de.Cycle, Err: err}
	}
	var dv *oracle.DivergenceError
	if errors.As(err, &dv) {
		return &SimError{Kind: ErrVerify, Config: cfg, Cycle: dv.Cycle, Err: err}
	}
	var st *parsim.StitchError
	if errors.As(err, &st) {
		// A failed interval-stitch gate is an architectural-correctness
		// failure, like an oracle divergence.
		return &SimError{Kind: ErrVerify, Config: cfg, Err: err}
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &SimError{Kind: ErrTimeout, Config: cfg, Err: err}
	case errors.Is(err, context.Canceled):
		return &SimError{Kind: ErrCancelled, Config: cfg, Err: err}
	default:
		return &SimError{Kind: ErrInternal, Config: cfg, Err: err}
	}
}

// KindOf classifies any error an experiment runner sees into an ErrorKind
// for metrics: SimErrors report their own kind, bare context errors map to
// timeout/cancelled, everything else is ErrInternal.
func KindOf(err error) ErrorKind {
	var se *SimError
	if errors.As(err, &se) {
		return se.Kind
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrTimeout
	case errors.Is(err, context.Canceled):
		return ErrCancelled
	default:
		return ErrInternal
	}
}
