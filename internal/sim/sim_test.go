package sim

import (
	"strings"
	"testing"
)

func TestNewPredictorSpecs(t *testing.T) {
	specs := map[string]string{
		"phast":              "phast",
		"phast:64":           "phast",
		"storesets":          "storesets",
		"storesets:4096":     "storesets",
		"nosq":               "nosq",
		"nosq:1024":          "nosq",
		"mdptage":            "mdptage",
		"mdptage-s":          "mdptage-s",
		"storevector":        "storevector",
		"cht":                "cht",
		"ideal":              "ideal",
		"none":               "none",
		"alwayswait":         "alwayswait",
		"unlimited-phast":    "unlimited-phast",
		"unlimited-phast:16": "unlimited-phast",
		"unlimited-nosq:8":   "unlimited-nosq",
		"unlimited-mdptage":  "unlimited-mdptage",
	}
	for spec, wantName := range specs {
		p, err := NewPredictor(spec)
		if err != nil {
			t.Fatalf("NewPredictor(%q): %v", spec, err)
		}
		if p.Name() != wantName {
			t.Errorf("NewPredictor(%q).Name() = %q, want %q", spec, p.Name(), wantName)
		}
	}
	for _, bad := range []string{"", "oracle9000", "phast:abc"} {
		if _, err := NewPredictor(bad); err == nil {
			t.Errorf("NewPredictor(%q) should fail", bad)
		}
	}
}

func TestPredictorBudgetSpecsChangeSize(t *testing.T) {
	small, _ := NewPredictor("phast:32")
	big, _ := NewPredictor("phast:512")
	if small.SizeBits() >= big.SizeBits() {
		t.Error("budget spec should scale storage")
	}
}

func TestRunDefaults(t *testing.T) {
	run, err := Run(Config{App: "519.lbm", Instructions: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if run.Machine != "alderlake" || run.Predictor != "phast" {
		t.Errorf("defaults: machine=%q predictor=%q", run.Machine, run.Predictor)
	}
	if run.Committed != 20000 {
		t.Errorf("committed %d", run.Committed)
	}
}

func TestRunUnknownApp(t *testing.T) {
	if _, err := Run(Config{App: "666.nonexistent"}); err == nil ||
		!strings.Contains(err.Error(), "unknown program") {
		t.Errorf("unknown app error = %v", err)
	}
	if _, err := Run(Config{App: "519.lbm", Machine: "vax"}); err == nil {
		t.Error("unknown machine should fail")
	}
	if _, err := Run(Config{App: "519.lbm", Predictor: "psychic"}); err == nil {
		t.Error("unknown predictor should fail")
	}
}

func TestTraceCacheReuse(t *testing.T) {
	a, err := TraceFor("519.lbm", 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceFor("519.lbm", 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical requests should hit the trace cache")
	}
	c, err := TraceFor("519.lbm", 6000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different lengths must not share a cache entry")
	}
}

func TestRunCoreExposesPredictor(t *testing.T) {
	_, c, err := RunCore(Config{App: "519.lbm", Predictor: "unlimited-phast", Instructions: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if c.Predictor().Name() != "unlimited-phast" {
		t.Error("RunCore must expose the bound predictor")
	}
}

func TestGeoIPCOverIdeal(t *testing.T) {
	geo, err := GeoIPCOverIdeal([]string{"519.lbm"}, "phast", 20000)
	if err != nil {
		t.Fatal(err)
	}
	if geo < 0.9 || geo > 1.05 {
		t.Errorf("lbm PHAST/ideal = %.3f, expected ≈ 1", geo)
	}
}

func TestFilterConfigs(t *testing.T) {
	base := Config{App: "511.povray", Predictor: "none", Instructions: 30000}
	fwd, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	svwCfg := base
	svwCfg.SVWFilter = true
	svw, err := Run(svwCfg)
	if err != nil {
		t.Fatal(err)
	}
	offCfg := base
	offCfg.FwdFilterOff = true
	off, err := Run(offCfg)
	if err != nil {
		t.Fatal(err)
	}
	if svw.Committed != fwd.Committed || off.Committed != fwd.Committed {
		t.Error("all filter modes must commit the full stream")
	}
	if off.MemOrderViolations < fwd.MemOrderViolations {
		t.Error("no filtering should not reduce violations")
	}
	if svw.MemOrderViolations == 0 && fwd.MemOrderViolations > 0 {
		t.Error("SVW should still catch violations")
	}
}

func TestTrainAtDetectConfig(t *testing.T) {
	run, err := Run(Config{App: "511.povray", Predictor: "phast", Instructions: 30000, TrainAtDetect: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Committed != 30000 {
		t.Errorf("committed %d", run.Committed)
	}
}

func TestPHASTVariantSpecs(t *testing.T) {
	for _, spec := range []string{"phast-conf:7", "phast-tables:4", "perceptron-mdp"} {
		if _, err := NewPredictor(spec); err != nil {
			t.Errorf("NewPredictor(%q): %v", spec, err)
		}
	}
	for _, bad := range []string{"phast-conf:0", "phast-conf:999", "phast-tables:0", "phast-tables:99"} {
		if _, err := NewPredictor(bad); err == nil {
			t.Errorf("NewPredictor(%q) should fail", bad)
		}
	}
}
