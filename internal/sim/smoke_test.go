package sim

import (
	"testing"
	"time"
)

// TestSmoke runs a short simulation per predictor on one app and sanity
// checks the headline invariants: everything commits, the ideal oracle
// never squashes or stalls falsely, and speculative predictors do squash.
func TestSmoke(t *testing.T) {
	app := "511.povray"
	for _, pred := range []string{"ideal", "none", "phast", "storesets", "nosq", "mdptage", "mdptage-s", "unlimited-phast"} {
		start := time.Now()
		run, err := Run(Config{App: app, Predictor: pred, Instructions: 60000})
		if err != nil {
			t.Fatalf("%s: %v", pred, err)
		}
		t.Logf("%-16s IPC=%.3f viol=%d (%.3f MPKI) falsedep=%d (%.3f MPKI) fwd=%d truedep=%d brMPKI=%.2f in %v",
			pred, run.IPC(), run.MemOrderViolations, run.ViolationMPKI(),
			run.FalseDependencies, run.FalseDepMPKI(), run.Forwards, run.TrueDependencies,
			run.BranchMPKI(), time.Since(start).Round(time.Millisecond))
		if run.Committed != 60000 {
			t.Errorf("%s: committed %d, want 60000", pred, run.Committed)
		}
		switch pred {
		case "ideal":
			if run.MemOrderViolations != 0 {
				t.Errorf("ideal: %d violations, want 0", run.MemOrderViolations)
			}
			if run.FalseDependencies != 0 {
				t.Errorf("ideal: %d false dependencies, want 0", run.FalseDependencies)
			}
		case "none":
			if run.MemOrderViolations == 0 {
				t.Errorf("none: expected violations on a conflict-heavy app")
			}
		}
	}
}
