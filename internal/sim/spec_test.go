package sim

import (
	"strings"
	"testing"
)

// TestNewPredictorErrorPaths is the table-driven contract of spec parsing:
// unknown names and malformed arguments error, and every error names the
// offending spec so flag typos surface usefully.
func TestNewPredictorErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string // substring the error must carry (typo diagnosability)
	}{
		{"empty spec", "", ""},
		{"unknown name", "oracle9000", "oracle9000"},
		{"unknown name with arg", "oracle9000:64", "oracle9000"},
		{"phast non-numeric arg", "phast:abc", "phast:abc"},
		{"phast float arg", "phast:3.5", "phast:3.5"},
		{"storesets non-numeric arg", "storesets:many", "storesets:many"},
		{"nosq non-numeric arg", "nosq:big", "nosq:big"},
		{"unlimited-phast non-numeric arg", "unlimited-phast:x", "unlimited-phast:x"},
		{"unlimited-nosq non-numeric arg", "unlimited-nosq:x", "unlimited-nosq:x"},
		{"phast-conf non-numeric arg", "phast-conf:x", "phast-conf:x"},
		{"phast-conf below range", "phast-conf:0", "out of range"},
		{"phast-conf above range", "phast-conf:256", "out of range"},
		{"phast-tables below range", "phast-tables:0", "out of range"},
		{"phast-tables above range", "phast-tables:99", "out of range"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := NewPredictor(c.spec)
			if err == nil {
				t.Fatalf("NewPredictor(%q) = %v, want error", c.spec, p.Name())
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q should mention %q", err, c.want)
			}
		})
	}
}

// TestNewPredictorEmptyArgDefaults checks the "name:" spelling (colon, no
// argument) falls back to the same configuration as the bare name for every
// family that takes a budget argument.
func TestNewPredictorEmptyArgDefaults(t *testing.T) {
	for _, name := range []string{"phast", "storesets", "nosq", "unlimited-phast", "unlimited-nosq", "phast-conf", "phast-tables"} {
		name := name
		t.Run(name, func(t *testing.T) {
			bare, err := NewPredictor(name)
			if err != nil {
				t.Fatalf("NewPredictor(%q): %v", name, err)
			}
			colon, err := NewPredictor(name + ":")
			if err != nil {
				t.Fatalf("NewPredictor(%q:): %v", name, err)
			}
			if bare.Name() != colon.Name() {
				t.Errorf("names differ: %q vs %q", bare.Name(), colon.Name())
			}
			if bare.SizeBits() != colon.SizeBits() {
				t.Errorf("empty arg should fall back to the default budget: %d vs %d bits",
					bare.SizeBits(), colon.SizeBits())
			}
		})
	}
}

// TestConfigNormalized pins the defaulting rules the run cache's content
// address relies on (see runcache.Key).
func TestConfigNormalized(t *testing.T) {
	got := (Config{App: "519.lbm"}).Normalized()
	want := Config{
		App: "519.lbm", Machine: "alderlake", Predictor: "phast",
		Instructions: DefaultInstructions, BranchPredictor: "tagescl",
	}
	if got != want {
		t.Errorf("Normalized() = %+v, want %+v", got, want)
	}
	// Explicit fields survive.
	explicit := Config{
		App: "519.lbm", Machine: "nehalem", Predictor: "nosq",
		Instructions: 42, Seed: 7, BranchPredictor: "gshare",
	}
	if explicit.Normalized() != explicit {
		t.Errorf("Normalized() must not clobber explicit fields: %+v", explicit.Normalized())
	}
	// SVW overrides the forwarding-filter switch (pipelineOptions order).
	svw := Config{App: "x", SVWFilter: true, FwdFilterOff: true}.Normalized()
	if svw.FwdFilterOff {
		t.Error("SVWFilter must fold FwdFilterOff away")
	}
}
