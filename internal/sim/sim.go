// Package sim is the one-call facade tying workloads, machine
// configurations, predictors and the pipeline together. Experiment drivers
// (cmd/, bench_test.go, examples/) go through this package.
package sim

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mdp"
	"repro/internal/oracle"
	"repro/internal/parsim"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// App is a workload name from the suite (see workload.Names).
	App string
	// Machine is a configuration name (see config.Names); default alderlake.
	Machine string
	// Predictor is an MDP spec (see NewPredictor); default phast.
	Predictor string
	// Instructions is the stream length (default 300000).
	Instructions int
	// Seed overrides the app's default stream seed (0 = default).
	Seed int64
	// FwdFilterOff disables the §IV-A1 forwarding filter (Fig. 12).
	FwdFilterOff bool
	// SVWFilter replaces the forwarding filter with NoSQ's SVW/SSBF
	// commit-time verification (§VII); it overrides FwdFilterOff.
	SVWFilter bool
	// TrainAtDetect trains predictors at mispeculation detection instead of
	// commit (the §IV-A1 update-point ablation).
	TrainAtDetect bool
	// BranchPredictor overrides the direction predictor (default tagescl).
	BranchPredictor string
	// Verify runs the in-order architectural oracle (internal/oracle) in
	// lockstep with retirement and fails the run on the first divergence.
	// Verified runs bypass the core pool. The json tag omits the field when
	// false so existing persistent run-cache keys stay valid.
	Verify bool `json:"Verify,omitempty"`
	// Intervals splits the run into this many concurrently-simulated
	// intervals, warmed from architectural oracle checkpoints and stitched
	// under the oracle digest gate (see internal/parsim for the exact
	// semantics — counters are the sum of independently-started interval
	// runs, not a replay of the sequential timing). Values <= 1 mean an
	// ordinary sequential run; the json tags omit both fields then, so
	// persistent run-cache keys of sequential runs are untouched.
	Intervals int `json:"Intervals,omitempty"`
	// IntervalWarmup is the functional warm-up window: how many micro-ops
	// before each interval boundary are simulated (unmeasured) to heat
	// predictors and caches. 0 means DefaultIntervalWarmup, negative means
	// no warm-up. Meaningful only when Intervals > 1.
	IntervalWarmup int `json:"IntervalWarmup,omitempty"`
}

// DefaultInstructions is the per-run stream length used when Config leaves
// it zero. The paper simulates 100M-instruction SimPoints; synthetic streams
// reach steady state much sooner, and every experiment scales with a flag.
const DefaultInstructions = 300_000

// DefaultIntervalWarmup is the per-interval functional warm-up window used
// when Config.Intervals > 1 and IntervalWarmup is zero. 10k µops covers the
// training horizon of every finite predictor in the suite at a few percent
// of the default interval length.
const DefaultIntervalWarmup = 10_000

// BehaviorVersion stamps persisted simulation results (internal/runcache).
// Bump it whenever a change alters the output of a simulation for an
// unchanged Config — timing-model changes, predictor behaviour, workload
// generation, counter semantics. Stale run-cache entries carrying an old
// stamp then read as misses instead of resurfacing outdated numbers.
//
// Version 2: the cache hierarchy's in-flight fill tracking and the stride
// prefetcher moved from maps to fixed direct-mapped tables, which can evict
// on index collisions where the maps did not (and removes the prefetcher's
// map-iteration eviction nondeterminism).
const BehaviorVersion = 2

// Normalized returns cfg with every defaultable field filled in with the
// value Run would use, so that two Configs describing the same simulation
// compare (and hash) equal. SVWFilter overriding FwdFilterOff is also
// folded in.
func (cfg Config) Normalized() Config {
	if cfg.Machine == "" {
		cfg.Machine = "alderlake"
	}
	if cfg.Predictor == "" {
		cfg.Predictor = "phast"
	}
	if cfg.Instructions == 0 {
		cfg.Instructions = DefaultInstructions
	}
	if cfg.BranchPredictor == "" {
		cfg.BranchPredictor = "tagescl"
	}
	if cfg.SVWFilter {
		cfg.FwdFilterOff = false
	}
	if cfg.Intervals <= 1 {
		// A 1-interval "parallel" run is exactly a sequential run: fold it
		// onto the sequential cache key.
		cfg.Intervals = 0
		cfg.IntervalWarmup = 0
	} else {
		switch {
		case cfg.IntervalWarmup == 0:
			cfg.IntervalWarmup = DefaultIntervalWarmup
		case cfg.IntervalWarmup < 0:
			cfg.IntervalWarmup = 0
		}
	}
	return cfg
}

// NewPredictor builds a predictor from its spec string. Specs:
//
//	phast                 paper configuration (14.5KB)
//	phast:<sets>          budget sweep (sets per table: 32..512)
//	storesets             Table II Store Sets (18.5KB)
//	storesets:<ssit>      budget sweep (SSIT entries; LFST = SSIT/2)
//	nosq                  Table II NoSQ predictor (19KB)
//	nosq:<entries>        budget sweep (entries per table)
//	mdptage               Table II standalone MDP-TAGE (38.6KB)
//	mdptage-s             MDP-TAGE with PHAST's tables/histories (13KB)
//	storevector | cht     early predictors (Fig. 1/Fig. 2 context)
//	ideal | none | alwayswait
//	unlimited-phast[:<maxhist>]
//	unlimited-nosq:<histlen>
//	unlimited-mdptage
func NewPredictor(spec string) (mdp.Predictor, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	argInt := func(def int) (int, error) {
		if arg == "" {
			return def, nil
		}
		v, err := strconv.Atoi(arg)
		if err != nil {
			return 0, fmt.Errorf("sim: bad argument in predictor spec %q: %v", spec, err)
		}
		return v, nil
	}
	switch name {
	case "phast":
		sets, err := argInt(core.DefaultConfig().Sets)
		if err != nil {
			return nil, err
		}
		return core.New(core.BudgetConfig(sets)), nil
	case "storesets":
		ssit, err := argInt(8192)
		if err != nil {
			return nil, err
		}
		cfg := mdp.DefaultStoreSetsConfig()
		cfg.SSITEntries, cfg.LFSTEntries = ssit, ssit/2
		return mdp.NewStoreSets(cfg), nil
	case "nosq":
		entries, err := argInt(2048)
		if err != nil {
			return nil, err
		}
		cfg := mdp.DefaultNoSQConfig()
		cfg.EntriesPerTable = entries
		return mdp.NewNoSQ(cfg), nil
	case "mdptage":
		return mdp.NewMDPTAGE(mdp.DefaultMDPTAGEConfig()), nil
	case "mdptage-s":
		return mdp.NewMDPTAGE(mdp.ShortMDPTAGEConfig()), nil
	case "storevector":
		return mdp.DefaultStoreVector(), nil
	case "cht":
		return mdp.DefaultCHT(), nil
	case "perceptron-mdp":
		return mdp.DefaultPerceptronMDP(), nil
	case "phast-conf":
		conf, err := argInt(15)
		if err != nil {
			return nil, err
		}
		if conf < 1 || conf > 255 {
			return nil, fmt.Errorf("sim: phast-conf out of range: %d", conf)
		}
		cfg := core.DefaultConfig()
		cfg.ConfMax = uint8(conf)
		return core.New(cfg), nil
	case "phast-tables":
		n, err := argInt(8)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		if n < 1 || n > len(cfg.Histories) {
			return nil, fmt.Errorf("sim: phast-tables out of range: %d", n)
		}
		cfg.Histories = cfg.Histories[:n]
		return core.New(cfg), nil
	case "ideal":
		return mdp.NewIdeal(), nil
	case "none":
		return mdp.NewNone(), nil
	case "alwayswait":
		return mdp.NewAlwaysWait(), nil
	case "unlimited-phast":
		maxHist, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return core.NewUnlimitedPHAST(maxHist), nil
	case "unlimited-nosq":
		h, err := argInt(8)
		if err != nil {
			return nil, err
		}
		return mdp.NewUnlimitedNoSQ(h), nil
	case "unlimited-mdptage":
		return mdp.NewUnlimitedMDPTAGE(), nil
	default:
		return nil, fmt.Errorf("sim: unknown predictor spec %q", spec)
	}
}

// PredictorNames lists the finite predictors of the paper's headline
// comparison (Fig. 13–16 order).
func PredictorNames() []string {
	return []string{"storesets", "nosq", "mdptage", "mdptage-s", "phast"}
}

// traceCache is the trace intern pool: workload generation is deterministic,
// so (app, n, seed) fully determines a stream's content and every run of the
// same workload can share one immutable *Trace — along with its lazily built
// prefix structures (trace.Prefixes), which the timing model would otherwise
// recompute per run. Capacity covers a full-suite sweep at one instruction
// count with headroom for mixed lengths.
var traceCache = struct {
	sync.Mutex
	entries map[string]*traceEntry
	order   []string
}{entries: map[string]*traceEntry{}}

// traceEntry single-flights one stream's generation: the cache lock only
// covers the map, and the first caller of a key generates outside it while
// concurrent callers of the same key block on the Once (not on each other's
// unrelated generations — a parallel sweep's first wave used to serialise
// every distinct workload behind one mutex hold).
type traceEntry struct {
	once sync.Once
	t    *trace.Trace
}

const traceCacheCap = 32

// Intern-pool counters, readable via Counters / PublishMetrics.
var (
	traceInternHits   atomic.Uint64
	traceInternMisses atomic.Uint64
)

// TraceFor generates (or returns the interned) stream for an app. Apps
// named "trace:<digest>" resolve to an uploaded stream previously
// registered with ProvideTrace (see traceapp.go) instead of a synthetic
// workload.
func TraceFor(app string, n int, seed int64) (*trace.Trace, error) {
	if digest, ok, err := TraceDigest(app); ok {
		if err != nil {
			return nil, err
		}
		return traceForDigest(app, digest, n)
	}
	prog, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d/%d", app, n, seed)
	traceCache.Lock()
	e, ok := traceCache.entries[key]
	if ok {
		traceInternHits.Add(1)
	} else {
		traceInternMisses.Add(1)
		e = &traceEntry{}
		if len(traceCache.order) >= traceCacheCap {
			delete(traceCache.entries, traceCache.order[0])
			traceCache.order = traceCache.order[1:]
		}
		traceCache.entries[key] = e
		traceCache.order = append(traceCache.order, key)
	}
	traceCache.Unlock()
	e.once.Do(func() { e.t = trace.Generate(prog, n, seed) })
	return e.t, nil
}

// PrewarmTrace interns the (app, n, seed) stream and precomputes its prefix
// structures (trace.Prefixes), so a following batch of runs over the same
// workload starts from a fully warm shared trace instead of racing to build
// it on the first run's critical path.
func PrewarmTrace(app string, n int, seed int64) error {
	tr, err := TraceFor(app, n, seed)
	if err != nil {
		return err
	}
	tr.Pre()
	return nil
}

// Counter names published by PublishMetrics.
const (
	CounterTraceInternHits   = "trace.intern.hits"
	CounterTraceInternMisses = "trace.intern.misses"
	CounterCoreReuses        = "core.pool.reuses"
)

// PublishMetrics copies the package's counters (trace intern pool hits and
// misses, core pool reuses) into a metrics registry. Call it after a batch
// of runs; values are cumulative over the process.
func PublishMetrics(m *stats.Metrics) {
	m.Set(CounterTraceInternHits, traceInternHits.Load())
	m.Set(CounterTraceInternMisses, traceInternMisses.Load())
	m.Set(CounterCoreReuses, coreReuses.Load())
}

// corePool recycles pipeline cores between Run calls. A core's allocation
// footprint (ROB, queues, cache arrays, history registers — several MB) is a
// function of only the machine configuration and the pipeline options, so a
// finished core can be Reset and reused by any later run with the same key
// instead of being rebuilt. Reset cores behave bit-identically to fresh ones
// (pipeline.TestResetCoreMatchesFresh and the runcache determinism tests
// hold this invariant). Only Run pools cores; RunCore hands the core to the
// caller and must leave ownership there.
var corePool = struct {
	sync.Mutex
	m map[coreKey][]*pipeline.Core
}{m: map[coreKey][]*pipeline.Core{}}

type coreKey struct {
	machine config.Machine
	opt     pipeline.OptionsKey // Options carries a func field; pool by its comparable key
}

// corePoolCap bounds idle cores kept per key: enough for every worker of a
// saturated parallel sweep on a large host, while a pathological key mix
// stays bounded at a few dozen MB.
const corePoolCap = 32

var coreReuses atomic.Uint64

func getCore(key coreKey, opt pipeline.Options, pred mdp.Predictor) (*pipeline.Core, error) {
	corePool.Lock()
	stack := corePool.m[key]
	var c *pipeline.Core
	if n := len(stack); n > 0 {
		c = stack[n-1]
		corePool.m[key] = stack[:n-1]
	}
	corePool.Unlock()
	if c == nil {
		return pipeline.New(key.machine, pred, opt)
	}
	if err := c.Reset(pred); err != nil {
		return nil, err
	}
	coreReuses.Add(1)
	return c, nil
}

func putCore(key coreKey, c *pipeline.Core) {
	corePool.Lock()
	if len(corePool.m[key]) < corePoolCap {
		corePool.m[key] = append(corePool.m[key], c)
	}
	corePool.Unlock()
}

// pipelineOptions maps a Config onto core options.
func pipelineOptions(cfg Config) pipeline.Options {
	opt := pipeline.DefaultOptions()
	switch {
	case cfg.SVWFilter:
		opt.Filter = pipeline.FilterSVW
	case cfg.FwdFilterOff:
		opt.Filter = pipeline.FilterNone
	}
	opt.TrainAtDetect = cfg.TrainAtDetect
	if cfg.BranchPredictor != "" {
		opt.BranchPredictor = cfg.BranchPredictor
	}
	return opt
}

// runSetup resolves the normalized Config into its machine, predictor and
// interned trace.
func runSetup(cfg Config) (config.Machine, mdp.Predictor, *trace.Trace, error) {
	machine, err := config.ByName(cfg.Machine)
	if err != nil {
		return config.Machine{}, nil, nil, err
	}
	pred, err := NewPredictor(cfg.Predictor)
	if err != nil {
		return config.Machine{}, nil, nil, err
	}
	tr, err := TraceFor(cfg.App, cfg.Instructions, cfg.Seed)
	if err != nil {
		return config.Machine{}, nil, nil, err
	}
	return machine, pred, tr, nil
}

// Run executes one simulation on a pooled core (see corePool).
func Run(cfg Config) (*stats.Run, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one simulation on a pooled core (see corePool),
// honouring ctx: cancellation or deadline expiry aborts the run within a
// few thousand simulated cycles. Every failure — setup error, pipeline
// deadlock, context abort, and any panic escaping the simulator — returns
// as a typed *SimError, so one broken run poisons one result, never the
// process.
func RunContext(ctx context.Context, cfg Config) (run *stats.Run, err error) {
	cfg = cfg.Normalized()
	defer func() {
		if v := recover(); v != nil {
			run, err = nil, newPanicError(cfg, v, debug.Stack())
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return nil, wrapError(cfg, cerr)
	}
	machine, pred, tr, err := runSetup(cfg)
	if err != nil {
		return nil, &SimError{Kind: ErrConfig, Config: cfg, Err: err}
	}
	opt := pipelineOptions(cfg)
	if cfg.Intervals > 1 {
		run, rerr := runIntervals(ctx, cfg, machine, opt, tr)
		if rerr != nil {
			return nil, wrapError(cfg, rerr)
		}
		run.Predictor = cfg.Predictor
		return run, nil
	}
	if cfg.Verify {
		run, rerr := runVerified(ctx, machine, pred, opt, tr)
		if rerr != nil {
			return nil, wrapError(cfg, rerr)
		}
		run.Predictor = cfg.Predictor
		return run, nil
	}
	key := coreKey{machine: machine, opt: opt.Key()}
	c, err := getCore(key, opt, pred)
	if err != nil {
		return nil, &SimError{Kind: ErrConfig, Config: cfg, Err: err}
	}
	run, rerr := c.RunContext(ctx, tr)
	if rerr != nil {
		// The core is mid-run; drop it rather than pooling dirty state.
		return nil, wrapError(cfg, rerr)
	}
	putCore(key, c)
	run.Predictor = cfg.Predictor
	return run, nil
}

// runIntervals executes one simulation as Config.Intervals concurrent
// intervals (see internal/parsim). Unverified interval runs draw their
// cores from the shared pool; verified ones build fresh cores (their Verify
// callbacks close over per-interval checker state). The stitched result
// carries the run's oracle digest — parsim only returns when it equals the
// sequential in-order digest.
func runIntervals(ctx context.Context, cfg Config, machine config.Machine, opt pipeline.Options, tr *trace.Trace) (*stats.Run, error) {
	job := parsim.Job{
		Machine: machine,
		Options: opt,
		NewPredictor: func() (mdp.Predictor, error) {
			return NewPredictor(cfg.Predictor)
		},
	}
	if !cfg.Verify {
		key := coreKey{machine: machine, opt: opt.Key()}
		job.GetCore = func(pred mdp.Predictor) (*pipeline.Core, error) {
			return getCore(key, opt, pred)
		}
		job.PutCore = func(c *pipeline.Core) { putCore(key, c) }
	}
	res, err := parsim.Run(ctx, tr, job, parsim.Plan{
		Intervals: cfg.Intervals,
		Warmup:    cfg.IntervalWarmup,
		Verify:    cfg.Verify,
	})
	if err != nil {
		return nil, err
	}
	run := res.Run
	return &run, nil
}

// runVerified executes one simulation with the architectural oracle checking
// the retirement stream. The core is always fresh and never pooled: its
// Verify callback closes over run-local checker state.
func runVerified(ctx context.Context, machine config.Machine, pred mdp.Predictor, opt pipeline.Options, tr *trace.Trace) (*stats.Run, error) {
	ck := oracle.NewChecker(tr)
	opt.Verify = ck.Check
	c, err := pipeline.New(machine, pred, opt)
	if err != nil {
		return nil, err
	}
	run, err := c.RunContext(ctx, tr)
	if err != nil {
		return nil, err
	}
	if got, want := ck.Committed(), tr.Len(); got != want {
		return nil, &oracle.DivergenceError{Cycle: run.Cycles, TraceIdx: got,
			Reason: fmt.Sprintf("run finished but only %d of %d micro-ops were verified", got, want)}
	}
	return run, nil
}

// RunCore is like Run but also returns the core, so callers can inspect
// predictor internals (conflict-length histograms, path counts). The core is
// always freshly built — ownership passes to the caller, never to the pool.
// Failures return as typed *SimErrors, like RunContext.
func RunCore(cfg Config) (run *stats.Run, core *pipeline.Core, err error) {
	cfg = cfg.Normalized()
	defer func() {
		if v := recover(); v != nil {
			run, core, err = nil, nil, newPanicError(cfg, v, debug.Stack())
		}
	}()
	machine, pred, tr, err := runSetup(cfg)
	if err != nil {
		return nil, nil, &SimError{Kind: ErrConfig, Config: cfg, Err: err}
	}
	opt := pipelineOptions(cfg)
	var ck *oracle.Checker
	if cfg.Verify {
		ck = oracle.NewChecker(tr)
		opt.Verify = ck.Check
	}
	c, err := pipeline.New(machine, pred, opt)
	if err != nil {
		return nil, nil, &SimError{Kind: ErrConfig, Config: cfg, Err: err}
	}
	run, rerr := c.Run(tr)
	if rerr != nil {
		return nil, nil, wrapError(cfg, rerr)
	}
	run.Predictor = cfg.Predictor
	return run, c, nil
}

// GeoIPCOverIdeal runs a predictor and the ideal oracle across apps and
// returns the geometric-mean IPC ratio (the paper's headline normalisation).
func GeoIPCOverIdeal(apps []string, predictor string, instructions int) (float64, error) {
	ratios := make([]float64, 0, len(apps))
	for _, app := range apps {
		base := Config{App: app, Predictor: "ideal", Instructions: instructions}
		idealRun, err := Run(base)
		if err != nil {
			return 0, err
		}
		base.Predictor = predictor
		predRun, err := Run(base)
		if err != nil {
			return 0, err
		}
		ratios = append(ratios, predRun.Speedup(idealRun))
	}
	return stats.GeoMean(ratios), nil
}
