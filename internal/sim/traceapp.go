package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/contentaddr"
	"repro/internal/trace"
)

// TraceAppPrefix marks a Config.App that names an uploaded trace by content
// address instead of a synthetic workload: "trace:<64-hex-digest>". The
// digest is the trace store's canonical-encoding address
// (internal/tracestore), so the app string fully determines the stream —
// which is exactly what the run cache's config hash needs; no new Config
// field, no change to existing cache keys.
const TraceAppPrefix = "trace:"

// ErrTraceUnavailable reports a trace-app run whose stream has not been
// provided to this process (ProvideTrace). Experiment runners resolve the
// digest against the trace store (and the fleet's peer tier) before
// simulating; reaching the simulator without a provided stream means that
// resolution failed or was skipped.
var ErrTraceUnavailable = errors.New("sim: trace not provided to this process")

// TraceDigest splits a trace app into its digest. It returns ok=false for
// ordinary workload names; a malformed digest after the prefix returns
// ok=true with an error (the app is unambiguously trying to be a trace run
// and must not fall through to workload lookup).
func TraceDigest(app string) (digest string, ok bool, err error) {
	digest, found := strings.CutPrefix(app, TraceAppPrefix)
	if !found {
		return "", false, nil
	}
	if !contentaddr.Valid(digest) {
		return "", true, fmt.Errorf("sim: malformed trace app %q: digest must be 64 lowercase hex digits", app)
	}
	return digest, true, nil
}

// providedTraces registers uploaded streams by digest for this process.
// Content addressing makes the registry safe to share across every
// consumer in the process (including multi-node in-process fleet tests):
// two providers of one digest are by construction providing the same
// immutable stream. Bounded like the trace intern pool.
var providedTraces = struct {
	sync.Mutex
	entries map[string]*trace.Trace
	order   []string
}{entries: map[string]*trace.Trace{}}

const providedTracesCap = 32

// ProvideTrace registers the decoded stream for a digest, making
// Config.App "trace:<digest>" runnable. The caller vouches that tr is the
// decode of the canonical bytes hashing to digest; re-providing a digest is
// a cheap no-op.
func ProvideTrace(digest string, tr *trace.Trace) {
	providedTraces.Lock()
	defer providedTraces.Unlock()
	if _, ok := providedTraces.entries[digest]; ok {
		return
	}
	if len(providedTraces.order) >= providedTracesCap {
		delete(providedTraces.entries, providedTraces.order[0])
		providedTraces.order = providedTraces.order[1:]
	}
	providedTraces.entries[digest] = tr
	providedTraces.order = append(providedTraces.order, digest)
}

// TraceProvided reports whether a digest's stream is already registered.
func TraceProvided(digest string) bool {
	providedTraces.Lock()
	defer providedTraces.Unlock()
	_, ok := providedTraces.entries[digest]
	return ok
}

// traceForDigest resolves a trace app's stream: the registered full stream,
// truncated to n micro-ops when the run asks for fewer (the same
// "Instructions = stream length" contract synthetic workloads have; a run
// asking for more than the trace holds gets the whole trace). Seed has no
// effect on an uploaded stream. Truncated variants are interned in the
// ordinary trace cache so they share prefix structures across runs.
func traceForDigest(app, digest string, n int) (*trace.Trace, error) {
	providedTraces.Lock()
	full := providedTraces.entries[digest]
	providedTraces.Unlock()
	if full == nil {
		return nil, fmt.Errorf("%w: %s", ErrTraceUnavailable, digest)
	}
	if n <= 0 || n >= full.Len() {
		return full, nil
	}
	key := fmt.Sprintf("%s/%d/0", app, n)
	traceCache.Lock()
	e, ok := traceCache.entries[key]
	if ok {
		traceInternHits.Add(1)
	} else {
		traceInternMisses.Add(1)
		e = &traceEntry{}
		if len(traceCache.order) >= traceCacheCap {
			delete(traceCache.entries, traceCache.order[0])
			traceCache.order = traceCache.order[1:]
		}
		traceCache.entries[key] = e
		traceCache.order = append(traceCache.order, key)
	}
	traceCache.Unlock()
	e.once.Do(func() {
		e.t = &trace.Trace{Name: full.Name, Insts: full.Insts[:n]}
	})
	return e.t, nil
}
