package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/workload"
)

// FuzzSimConfig drives the whole facade with arbitrary configs: any input
// must either simulate to completion or fail with a typed *SimError — never
// panic, never return an untyped error. Unknown app/machine/predictor
// strings exercise the config-rejection paths; recognisable ones fall
// through to real (bounded, optionally oracle-verified) simulations.
func FuzzSimConfig(f *testing.F) {
	f.Add("511.povray", "alderlake", "phast", uint64(2000), int64(0), uint64(1))
	f.Add("519.lbm", "nehalem", "storesets", uint64(1500), int64(7), uint64(0))
	f.Add("", "", "", uint64(0), int64(0), uint64(3))
	f.Add("nonsense", "skylake", "phast:banana", uint64(9), int64(-1), uint64(2))
	f.Add("502.gcc_1", "skylake", "unlimited-phast", uint64(800), int64(3), uint64(7))

	apps := workload.Names()
	f.Fuzz(func(t *testing.T, app, machine, pred string, n uint64, seed int64, flags uint64) {
		if flags&4 != 0 {
			// Half the space maps onto real workloads so valid runs stay
			// reachable from mutated garbage strings.
			app = apps[n%uint64(len(apps))]
		}
		cfg := Config{
			App:       app,
			Machine:   machine,
			Predictor: pred,
			// Bounded and never zero: a zero count would normalise to the
			// 300k-op default and stall fuzzing throughput.
			Instructions: 100 + int(n%2400),
			Seed:         seed,
			FwdFilterOff: flags&1 != 0,
			SVWFilter:    flags&2 != 0,
			Verify:       flags&8 != 0,
		}
		run, err := Run(cfg)
		if err != nil {
			var se *SimError
			if !errors.As(err, &se) {
				t.Fatalf("untyped error: %v", err)
			}
			if se.Kind == "" || strings.TrimSpace(se.Error()) == "" {
				t.Fatalf("SimError missing kind or message: %+v", se)
			}
			return
		}
		if want := uint64(cfg.Normalized().Instructions); run.Committed != want {
			t.Fatalf("committed %d, want %d", run.Committed, want)
		}
	})
}
