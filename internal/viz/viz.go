// Package viz renders plain-text charts for the experiment outputs: the
// figure series print both as tables (for grepping and EXPERIMENTS.md) and
// as horizontal bar charts (to eyeball the shapes the paper's figures show).
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart. Values may be any non-negative
// range; bars scale to width characters. A baseline (e.g. 1.0 for
// IPC-versus-ideal charts) draws a marker at its position when it falls
// inside the plotted range.
type BarChart struct {
	Title    string
	Bars     []Bar
	Width    int     // bar area width in characters (default 50)
	Baseline float64 // 0 disables the marker
	// Min and Max clamp the plotted range; both zero = auto from the data.
	Min, Max float64
	// Format renders the numeric value next to the bar (default %.3f).
	Format string
}

// Add appends a bar.
func (c *BarChart) Add(label string, v float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: v})
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.Bars) == 0 {
		return c.Title + " (no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	format := c.Format
	if format == "" {
		format = "%.3f"
	}
	lo, hi := c.Min, c.Max
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, b := range c.Bars {
			lo = math.Min(lo, b.Value)
			hi = math.Max(hi, b.Value)
		}
		if c.Baseline != 0 {
			lo = math.Min(lo, c.Baseline)
			hi = math.Max(hi, c.Baseline)
		}
		lo = math.Min(lo, 0) // bars grow from zero unless clamped explicitly
	}
	if hi <= lo {
		hi = lo + 1
	}
	labelW := 0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	pos := func(v float64) int {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return int(f * float64(width))
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	basePos := -1
	if c.Baseline != 0 && c.Baseline >= lo && c.Baseline <= hi {
		basePos = pos(c.Baseline)
	}
	for _, b := range c.Bars {
		n := pos(b.Value)
		row := make([]byte, width)
		for i := range row {
			switch {
			case i < n:
				row[i] = '#'
			case i == basePos:
				row[i] = '|'
			default:
				row[i] = ' '
			}
		}
		if basePos >= 0 && basePos < n {
			row[basePos] = '|'
		}
		fmt.Fprintf(&sb, "%-*s %s "+format+"\n", labelW, b.Label, string(row), b.Value)
	}
	return sb.String()
}

// Scatter renders an x/y series as rows of "x → bar(y)" — enough to eyeball
// the performance-versus-storage trade-off curves of Fig. 13.
type Scatter struct {
	Title  string
	XLabel string
	Points []Point
	Width  int
}

// Point is one (x, y) sample with an owning series name.
type Point struct {
	Series string
	X, Y   float64
}

// Add appends a point.
func (s *Scatter) Add(series string, x, y float64) {
	s.Points = append(s.Points, Point{Series: series, X: x, Y: y})
}

// String renders the scatter as per-series bar rows sorted as inserted.
func (s *Scatter) String() string {
	if len(s.Points) == 0 {
		return s.Title + " (no data)\n"
	}
	c := BarChart{Title: s.Title, Width: s.Width}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		lo = math.Min(lo, p.Y)
		hi = math.Max(hi, p.Y)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	c.Min, c.Max = lo-span*0.1, hi+span*0.05
	for _, p := range s.Points {
		c.Add(fmt.Sprintf("%s @ %.1f%s", p.Series, p.X, s.XLabel), p.Y)
	}
	return c.String()
}
