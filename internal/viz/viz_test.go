package viz

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	c := BarChart{Title: "demo", Width: 20}
	c.Add("a", 1)
	c.Add("bb", 2)
	out := c.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") {
		t.Fatalf("missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected title + 2 bars, got %d lines", len(lines))
	}
	// The larger value must render a longer bar.
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
}

func TestBarChartBaselineMarker(t *testing.T) {
	c := BarChart{Width: 40, Baseline: 1.0, Min: 0.9, Max: 1.02}
	c.Add("phast", 0.99)
	out := c.String()
	if !strings.Contains(out, "|") {
		t.Errorf("baseline marker missing:\n%s", out)
	}
}

func TestBarChartEmptyAndDegenerate(t *testing.T) {
	c := BarChart{Title: "empty"}
	if out := c.String(); !strings.Contains(out, "no data") {
		t.Error("empty chart should say so")
	}
	c2 := BarChart{Width: 10}
	c2.Add("x", 0)
	if out := c2.String(); out == "" {
		t.Error("degenerate chart should still render")
	}
}

func TestBarChartClamping(t *testing.T) {
	c := BarChart{Width: 10, Min: 0, Max: 1}
	c.Add("over", 5) // beyond Max: clamps to full width, must not panic
	out := c.String()
	if strings.Count(out, "#") != 10 {
		t.Errorf("clamped bar should fill the width:\n%s", out)
	}
}

func TestScatter(t *testing.T) {
	s := Scatter{Title: "perf vs storage", XLabel: "KB", Width: 30}
	s.Add("phast", 14.5, 0.99)
	s.Add("nosq", 19, 0.97)
	out := s.String()
	for _, want := range []string{"phast @ 14.5KB", "nosq @ 19.0KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if out := (&Scatter{Title: "t"}).String(); !strings.Contains(out, "no data") {
		t.Error("empty scatter should say so")
	}
}
