package faultinject

import (
	"math"
	"time"
	"testing"
)

func TestParse(t *testing.T) {
	p, err := Parse("panic=0.1,stall=0.05,diskwrite=1,corrupt=0,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rate(FaultPanic); got != 0.1 {
		t.Errorf("panic rate = %g, want 0.1", got)
	}
	if got := p.Rate(FaultDiskWrite); got != 1 {
		t.Errorf("diskwrite rate = %g, want 1", got)
	}
	if p.seed != 42 {
		t.Errorf("seed = %d, want 42", p.seed)
	}
	if p2, err := Parse(p.String()); err != nil || p2.Rate(FaultStall) != 0.05 {
		t.Errorf("String round trip broken: %v %v", p2, err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"panic", "panic=x", "warp=0.5", "panic=1.5", "seed=-1"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestParseEmptyIsNilPlan(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || p != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", p, err)
	}
	// The nil plan injects nothing and never crashes.
	if p.Should(FaultPanic, "k") || p.Rate(FaultPanic) != 0 || p.Point(FaultPanic, "k", 10) != 0 {
		t.Error("nil plan must be inert")
	}
}

// TestShouldDeterministicAndCalibrated: the same (plan, fault, key) always
// decides the same way, different seeds decide independently, and the
// empirical firing rate over many keys tracks the configured probability.
func TestShouldDeterministicAndCalibrated(t *testing.T) {
	p, err := NewPlan(1, map[Fault]float64{FaultPanic: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))
		first := p.Should(FaultPanic, key)
		if second := p.Should(FaultPanic, key); second != first {
			t.Fatalf("decision for %q not deterministic", key)
		}
		if first {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("empirical rate %.3f, want ≈0.10", got)
	}
}

func TestPointInRangeAndDeterministic(t *testing.T) {
	p, _ := NewPlan(7, map[Fault]float64{FaultStall: 1})
	for i := 0; i < 100; i++ {
		key := string(rune(i)) + "key"
		v := p.Point(FaultStall, key, 1000)
		if v >= 1000 {
			t.Fatalf("Point out of range: %d", v)
		}
		if v != p.Point(FaultStall, key, 1000) {
			t.Fatal("Point not deterministic")
		}
	}
}

func TestActivateRestores(t *testing.T) {
	if Active() != nil {
		t.Fatal("test environment has a leftover active plan")
	}
	p, _ := NewPlan(1, map[Fault]float64{FaultPanic: 1})
	restore := Activate(p)
	if Active() != p {
		t.Error("Activate did not install the plan")
	}
	restore()
	if Active() != nil {
		t.Error("restore did not reinstate the previous (nil) plan")
	}
}

// TestPeerLinkFaultsParse: the fleet-chaos faults round-trip through the
// spec syntax like every other fault.
func TestPeerLinkFaultsParse(t *testing.T) {
	p, err := Parse("partition=0.5,peerlatency=1,peerflap=0.25,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate(FaultPeerPartition) != 0.5 || p.Rate(FaultPeerLatency) != 1 || p.Rate(FaultPeerFlap) != 0.25 {
		t.Errorf("rates = %g/%g/%g, want 0.5/1/0.25",
			p.Rate(FaultPeerPartition), p.Rate(FaultPeerLatency), p.Rate(FaultPeerFlap))
	}
	if p2, err := Parse(p.String()); err != nil || p2.Rate(FaultPeerFlap) != 0.25 {
		t.Errorf("String round trip broken: %v %v", p2, err)
	}
}

// TestFlapSevered: within one FlapPeriod window the link is severed for
// the configured fraction of instants, deterministically for a fixed plan
// and member, and the nil plan never severs.
func TestFlapSevered(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.FlapSevered("http://a:1", time.Now()) {
		t.Fatal("nil plan severed a link")
	}
	p, err := NewPlan(3, map[Fault]float64{FaultPeerFlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Sample one full period at fine resolution: the severed fraction must
	// track the rate, with one contiguous severed window (plus wraparound).
	const samples = 1000
	base := time.Unix(100, 0)
	severed := 0
	for i := 0; i < samples; i++ {
		at := base.Add(time.Duration(i) * FlapPeriod / samples)
		if p.FlapSevered("http://a:1", at) {
			severed++
		}
		// Determinism: same instant, same answer.
		if p.FlapSevered("http://a:1", at) != p.FlapSevered("http://a:1", at) {
			t.Fatal("FlapSevered not deterministic")
		}
	}
	frac := float64(severed) / samples
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("severed fraction = %g, want 0.5", frac)
	}
	// Zero-rate member never flaps even when asked directly.
	p0, _ := NewPlan(3, map[Fault]float64{FaultPeerFlap: 0})
	if p0.FlapSevered("http://a:1", base) {
		t.Error("zero-rate plan severed a link")
	}
}
