// Package faultinject is the chaos-testing switchboard for the simulation
// fleet. A Plan maps fault kinds to firing probabilities; production code
// consults the package-level active plan (nil by default, one atomic load)
// at well-defined injection points — the pipeline cycle loop, the run
// cache's disk reads and writes — and misbehaves on purpose when the plan
// says so.
//
// Decisions are deterministic: whether a fault fires for a given key (and
// at which point inside the run) is a pure hash of (seed, fault, key), so a
// chaos test can predict exactly which configs of a batch fault, rerun the
// batch with the same seed and fault set, and compare the survivors against
// a fault-free baseline bit for bit.
//
// Plans come from Parse ("panic=0.1,stall=0.05,seed=42" — the cmd binaries'
// -faults flag and the PHAST_FAULTS environment variable both use this
// syntax). An empty spec parses to a nil plan, i.e. no injection.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Fault names one injectable failure mode.
type Fault string

const (
	// FaultPanic panics inside the pipeline cycle loop mid-run.
	FaultPanic Fault = "panic"
	// FaultStall wedges the pipeline (zero retirement) mid-run, exercising
	// the zero-retirement watchdog.
	FaultStall Fault = "stall"
	// FaultDiskWrite fails persistent run-cache writes, exercising the
	// store's graceful write degradation.
	FaultDiskWrite Fault = "diskwrite"
	// FaultCorrupt flips bytes of persistent run-cache entries as they are
	// read, exercising the corrupt-entry-reads-as-miss contract.
	FaultCorrupt Fault = "corrupt"
	// FaultSlowDisk delays persistent run-cache reads and writes by
	// SlowDiskDelay, exercising latency tolerance (request deadlines,
	// admission-control queueing) rather than failure paths: a slow disk
	// must cost time, never correctness.
	FaultSlowDisk Fault = "slowdisk"
	// FaultPeerFetch fails fleet peer HTTP operations — owner-proxied runs
	// and peer cache fetches — before any bytes reach the network, keyed by
	// the run-cache key. It exercises the cluster degradation contract: a
	// member that cannot reach its peers must fall back to executing and
	// caching locally (counting runcache.peer.errors / server.proxy.errors),
	// never fail the request.
	FaultPeerFetch Fault = "peerfetch"
	// FaultFwdFlip flips the pipeline's §IV-A1 forwarding-filter condition
	// for a whole run: every conflicting load is wrongly deemed already-
	// correct, so memory-order violations go undetected and stale values
	// retire. It exists as a mutation test for the verification oracle
	// (internal/oracle), which must report the first divergence.
	FaultFwdFlip Fault = "fwdflip"
	// FaultPeerPartition severs this node's link to selected peers: every
	// peer HTTP operation toward an affected member fails before any bytes
	// reach the network. Unlike FaultPeerFetch (keyed by run-cache key, one
	// request at a time) this one is keyed by the peer's member URL, so a
	// firing partition takes out the whole link — exercising retry-to-
	// failure, circuit-breaker opening, and the failure detector marking the
	// peer Down.
	FaultPeerPartition Fault = "partition"
	// FaultPeerLatency delays peer HTTP operations toward affected members
	// by PeerLatencyDelay before sending, keyed by member URL. Like
	// FaultSlowDisk it is a latency fault, not a correctness fault: it
	// exercises retry budgets, hedged fetches and deadline propagation —
	// slow links must cost time, never wrong bytes.
	FaultPeerLatency Fault = "peerlatency"
	// FaultPeerFlap makes this node's link to affected members come and go
	// on a fixed period (severed for the configured fraction of each
	// FlapPeriod window, with a deterministic per-member phase): the
	// flapping-peer torture test for breaker half-open/re-open cycling and
	// Suspect-state damping. Whether a member flaps at all is decided by
	// Should(FaultPeerFlap, member); when it does, FlapSevered says if the
	// link is down at this instant.
	FaultPeerFlap Fault = "peerflap"
)

// SlowDiskDelay is the per-operation stall FaultSlowDisk injects into
// persistent-store reads and writes.
const SlowDiskDelay = 25 * time.Millisecond

// PeerLatencyDelay is the per-operation stall FaultPeerLatency injects
// before peer HTTP operations.
const PeerLatencyDelay = 50 * time.Millisecond

// FlapPeriod is the full up+down cycle length of FaultPeerFlap.
const FlapPeriod = 2 * time.Second

// Faults lists every injectable fault.
func Faults() []Fault {
	return []Fault{FaultPanic, FaultStall, FaultDiskWrite, FaultCorrupt, FaultSlowDisk,
		FaultPeerFetch, FaultFwdFlip, FaultPeerPartition, FaultPeerLatency, FaultPeerFlap}
}

// Plan maps faults to firing probabilities under one seed. A nil *Plan is
// valid everywhere and injects nothing.
type Plan struct {
	seed  uint64
	rates map[Fault]float64
}

// NewPlan builds a plan from explicit rates (0..1) and a seed.
func NewPlan(seed uint64, rates map[Fault]float64) (*Plan, error) {
	p := &Plan{seed: seed, rates: map[Fault]float64{}}
	for f, r := range rates {
		if !known(f) {
			return nil, fmt.Errorf("faultinject: unknown fault %q", f)
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("faultinject: rate for %q out of [0,1]: %g", f, r)
		}
		p.rates[f] = r
	}
	return p, nil
}

func known(f Fault) bool {
	for _, k := range Faults() {
		if k == f {
			return true
		}
	}
	return false
}

// Parse builds a plan from a comma-separated spec of fault=rate pairs plus
// an optional seed=N pair, e.g. "panic=0.1,stall=0.05,diskwrite=1,seed=7".
// The empty spec returns (nil, nil): no injection.
func Parse(spec string) (*Plan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var seed uint64
	rates := map[Fault]float64{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad spec field %q (want fault=rate)", field)
		}
		if k == "seed" {
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			seed = s
			continue
		}
		r, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad rate in %q: %v", field, err)
		}
		rates[Fault(k)] = r
	}
	return NewPlan(seed, rates)
}

// String renders the plan back into Parse syntax (sorted, for stable logs).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	fields := make([]string, 0, len(p.rates)+1)
	for f, r := range p.rates {
		if r > 0 {
			fields = append(fields, fmt.Sprintf("%s=%g", f, r))
		}
	}
	sort.Strings(fields)
	fields = append(fields, fmt.Sprintf("seed=%d", p.seed))
	return strings.Join(fields, ",")
}

// Rate returns the firing probability for f (0 on a nil plan).
func (p *Plan) Rate(f Fault) float64 {
	if p == nil {
		return 0
	}
	return p.rates[f]
}

// roll maps (seed, f, key, salt) to a uniform value in [0, 1).
func (p *Plan) roll(f Fault, key string, salt string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%s\x00%s", p.seed, f, key, salt)
	// 53 bits keeps the quotient exactly representable in a float64.
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// Should reports deterministically whether fault f fires for key.
func (p *Plan) Should(f Fault, key string) bool {
	if p == nil {
		return false
	}
	r := p.rates[f]
	if r <= 0 {
		return false
	}
	return r >= 1 || p.roll(f, key, "should") < r
}

// Point returns a deterministic value in [0, n) for key — e.g. the cycle at
// which an injected pipeline fault fires. n must be positive.
func (p *Plan) Point(f Fault, key string, n uint64) uint64 {
	if p == nil || n == 0 {
		return 0
	}
	return uint64(p.roll(f, key, "point") * float64(n))
}

// active is the process-wide plan consulted by the injection points.
var active atomic.Pointer[Plan]

// Activate installs p as the process-wide plan (nil disables injection) and
// returns a restore function reinstating the previous plan — tests defer it.
func Activate(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// FlapSevered reports whether a flapping link to member is severed right
// now: within each FlapPeriod window the link is down for the first
// rate-sized fraction, with a deterministic per-member phase offset so a
// fleet's links do not all flap in lockstep. Gate on
// Should(FaultPeerFlap, member) first — this function answers "is the flap
// currently in its down half", not "does this member flap".
func (p *Plan) FlapSevered(member string, now time.Time) bool {
	if p == nil {
		return false
	}
	r := p.rates[FaultPeerFlap]
	if r <= 0 {
		return false
	}
	phase := time.Duration(p.roll(FaultPeerFlap, member, "phase") * float64(FlapPeriod))
	pos := (time.Duration(now.UnixNano()) + phase) % FlapPeriod
	return float64(pos) < r*float64(FlapPeriod)
}

// Active returns the current plan, nil when injection is off. Callers keep
// the single returned pointer for a whole operation so one run sees one
// consistent plan.
func Active() *Plan {
	return active.Load()
}
