package cache

import (
	"testing"

	"repro/internal/config"
)

func smallCache() config.Cache {
	return config.Cache{SizeKB: 1, Ways: 2, LineBytes: 64, HitLatency: 3, MSHRs: 2}
}

func TestLevelHitAfterFill(t *testing.T) {
	l := NewLevel("T", smallCache())
	if l.access(0x1000) {
		t.Error("cold access should miss")
	}
	l.Fill(0x1000)
	if !l.access(0x1000) || !l.access(0x1030) {
		t.Error("same line should hit after fill")
	}
	if l.access(0x1040) {
		t.Error("next line should miss")
	}
}

func TestLevelLRUEviction(t *testing.T) {
	l := NewLevel("T", smallCache()) // 8 sets × 2 ways
	sets := uint64(l.sets)
	a := uint64(0x0000) // set 0
	b := a + sets*64    // set 0, different tag
	c := a + 2*sets*64  // set 0, third tag
	l.Fill(a)
	l.Fill(b)
	l.access(a) // make a MRU
	l.Fill(c)   // must evict b (LRU)
	if !l.Lookup(a) {
		t.Error("recently used line evicted")
	}
	if l.Lookup(b) {
		t.Error("LRU line should have been evicted")
	}
	if !l.Lookup(c) {
		t.Error("filled line missing")
	}
}

func TestMSHRContentionDelays(t *testing.T) {
	l := NewLevel("T", smallCache()) // 2 MSHRs
	// Two misses fill both MSHRs until cycle 50.
	if s := l.reserveMSHR(10, 50); s != 10 {
		t.Errorf("first reservation start = %d, want 10", s)
	}
	if s := l.reserveMSHR(10, 50); s != 10 {
		t.Errorf("second reservation start = %d, want 10", s)
	}
	// Third miss must wait for the earliest MSHR to free.
	if s := l.reserveMSHR(12, 52); s != 50 {
		t.Errorf("contended reservation start = %d, want 50", s)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	m := config.AlderLake()
	m.PrefetchDegree = 0 // keep latencies exact
	h := New(m)
	addr := uint64(0x1234000)

	// Cold: full miss to memory.
	done := h.Load(0, 0x400, addr)
	wantCold := uint64(m.L1D.HitLatency + m.L2.HitLatency + m.L3.HitLatency + m.MemLatency)
	if done != wantCold {
		t.Errorf("cold load done at %d, want %d", done, wantCold)
	}
	// Warm: L1D hit.
	done = h.Load(1000, 0x400, addr)
	if done != 1000+uint64(m.L1D.HitLatency) {
		t.Errorf("warm load done at %d, want %d", done, 1000+uint64(m.L1D.HitLatency))
	}
	if h.L1D.Hits != 1 || h.L1D.Misses != 1 {
		t.Errorf("L1D hits/misses = %d/%d", h.L1D.Hits, h.L1D.Misses)
	}
}

func TestHierarchySecondaryMissCoalesces(t *testing.T) {
	m := config.AlderLake()
	m.PrefetchDegree = 0
	h := New(m)
	addr := uint64(0x5678000)
	first := h.Load(0, 0x400, addr)
	second := h.Load(1, 0x404, addr+8) // same line, while fill in flight
	if second > first {
		t.Errorf("secondary miss (%d) should ride the outstanding fill (%d)", second, first)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	m := config.AlderLake()
	m.PrefetchDegree = 0
	h := New(m)
	addr := uint64(0x9abc000)
	h.Load(0, 0x400, addr) // install everywhere
	// Evict from L1D by filling its set (lines that alias modulo #sets).
	setStride := uint64(h.L1D.sets) * 64
	for i := uint64(1); i <= uint64(m.L1D.Ways); i++ {
		h.L1D.Fill(addr + i*setStride)
	}
	done := h.Load(10000, 0x400, addr)
	lat := done - 10000
	wantMax := uint64(m.L1D.HitLatency + m.L2.HitLatency)
	if lat > wantMax {
		t.Errorf("post-eviction load latency %d, want ≤ %d (L2 hit)", lat, wantMax)
	}
	if lat <= uint64(m.L1D.HitLatency) {
		t.Errorf("post-eviction load latency %d should exceed an L1D hit", lat)
	}
}

func TestFetchPath(t *testing.T) {
	m := config.AlderLake()
	h := New(m)
	pc := uint64(0x40_0000)
	cold := h.Fetch(0, pc)
	if cold <= uint64(m.L1I.HitLatency) {
		t.Error("cold fetch should miss")
	}
	warm := h.Fetch(100, pc)
	if warm != 100+uint64(m.L1I.HitLatency) {
		t.Errorf("warm fetch done at %d", warm)
	}
}

func TestStoreDrainInstallsLine(t *testing.T) {
	m := config.AlderLake()
	m.PrefetchDegree = 0
	h := New(m)
	addr := uint64(0xdef0000)
	h.StoreDrain(0, addr)
	done := h.Load(1000, 0x400, addr)
	if done != 1000+uint64(m.L1D.HitLatency) {
		t.Errorf("load after store drain should hit L1D, done at %d", done)
	}
}

func TestStridePrefetcher(t *testing.T) {
	p := NewStridePrefetcher(16, 2, 64)
	pc := uint64(0x400)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.Observe(pc, uint64(0x1000+i*64))
	}
	if len(got) != 2 {
		t.Fatalf("confirmed stride should prefetch degree=2 lines, got %d", len(got))
	}
	if got[0] != 0x1000+6*64 || got[1] != 0x1000+7*64 {
		t.Errorf("prefetch addresses = %#x", got)
	}
	// Break the stride: confidence must reset.
	if out := p.Observe(pc, 0x90000); out != nil {
		t.Error("broken stride should not prefetch")
	}
	if out := p.Observe(pc, 0x90000+64); out != nil {
		t.Error("one confirmation is not enough to re-arm")
	}
}

func TestStridePrefetcherCapacity(t *testing.T) {
	p := NewStridePrefetcher(2, 1, 64)
	p.Observe(1, 100)
	p.Observe(2, 200)
	p.Observe(3, 300) // evicts one entry
	if len(p.entries) > 2 {
		t.Errorf("prefetcher exceeded capacity: %d entries", len(p.entries))
	}
}
