package cache

import "repro/internal/config"

// inflightSlots sizes the direct-mapped outstanding-fill table. It far
// exceeds any realistic population of simultaneously outstanding lines
// (bounded by MSHRs × levels), so conflict evictions — which merely turn a
// secondary miss into a full miss — are rare.
const inflightSlots = 4096

// inflightFill is one slot of the outstanding-fill table: the line (+1, so
// zero means invalid) and the cycle its fill completes.
type inflightFill struct {
	line uint64
	done uint64
}

// Hierarchy composes the levels of Table I and answers the pipeline's two
// questions: "when does this load's data arrive?" and "when does this fetch
// group arrive?". Stores write through the store buffer after commit and
// install lines on their way down.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Level
	memLatency       int

	pf *StridePrefetcher

	// inflight tracks outstanding line fills so that a second miss to an
	// in-flight line completes with it instead of paying a full miss (MSHR
	// secondary-miss coalescing). Direct-mapped: a colliding fill evicts the
	// older entry, safely degrading a future secondary miss to a full one.
	inflight []inflightFill

	// DemandAccesses counts L1D demand accesses (loads + store drains).
	DemandAccesses uint64
}

// New builds the hierarchy for a machine configuration.
func New(m config.Machine) *Hierarchy {
	h := &Hierarchy{
		L1I:        NewLevel("L1I", m.L1I),
		L1D:        NewLevel("L1D", m.L1D),
		L2:         NewLevel("L2", m.L2),
		L3:         NewLevel("L3", m.L3),
		memLatency: m.MemLatency,
		inflight:   make([]inflightFill, inflightSlots),
	}
	if m.PrefetchDegree > 0 {
		h.pf = NewStridePrefetcher(256, m.PrefetchDegree, m.L1D.LineBytes)
	}
	return h
}

// Reset returns the hierarchy to its just-constructed state (cold caches,
// idle MSHRs, untrained prefetcher) without reallocating any table.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.L3.Reset()
	clear(h.inflight)
	if h.pf != nil {
		h.pf.Reset()
	}
	h.DemandAccesses = 0
}

// Load returns the completion cycle of a demand load issued at cycle to
// addr, training the prefetcher with the load's PC.
func (h *Hierarchy) Load(cycle uint64, pc, addr uint64) uint64 {
	h.DemandAccesses++
	done := h.dataAccess(cycle, addr)
	if h.pf != nil {
		for _, pfAddr := range h.pf.Observe(pc, addr) {
			// Prefetches install lines with miss latency but off the
			// load's critical path.
			if !h.L1D.Lookup(pfAddr) {
				h.dataAccess(cycle, pfAddr)
			}
		}
	}
	return done
}

// StoreDrain models a committed store leaving the store buffer at cycle:
// it writes the line into L1D (write-allocate). Returns the cycle the store
// buffer entry frees.
func (h *Hierarchy) StoreDrain(cycle uint64, addr uint64) uint64 {
	h.DemandAccesses++
	return h.dataAccess(cycle, addr)
}

// dataAccess walks L1D→L2→L3→memory, filling on the way back. The returned
// cycle includes MSHR contention at the missing levels.
func (h *Hierarchy) dataAccess(cycle uint64, addr uint64) uint64 {
	line := addr >> h.L1D.lineShift
	if h.L1D.access(addr) {
		h.L1D.Hits++
		return cycle + uint64(h.L1D.hitLatency)
	}
	h.L1D.Misses++
	slot := &h.inflight[line&(inflightSlots-1)]
	if slot.line == line+1 && slot.done > cycle {
		// Secondary miss: ride the outstanding fill.
		return slot.done
	}
	var lat int
	switch {
	case h.L2.access(addr):
		h.L2.Hits++
		lat = h.L1D.hitLatency + h.L2.hitLatency
	case h.L3.access(addr):
		h.L2.Misses++
		h.L3.Hits++
		lat = h.L1D.hitLatency + h.L2.hitLatency + h.L3.hitLatency
		h.L2.Fill(addr)
	default:
		h.L2.Misses++
		h.L3.Misses++
		lat = h.L1D.hitLatency + h.L2.hitLatency + h.L3.hitLatency + h.memLatency
		h.L3.Fill(addr)
		h.L2.Fill(addr)
	}
	done := cycle + uint64(lat)
	start := h.L1D.reserveMSHR(cycle, done)
	done = start + uint64(lat)
	h.L1D.Fill(addr)
	*slot = inflightFill{line: line + 1, done: done}
	return done
}

// Fetch returns the completion cycle of an instruction fetch at cycle. The
// instruction path is L1I → L2 → L3 → memory, with a next-line prefetcher
// (standard in L1I front ends) hiding sequential-code cold misses.
func (h *Hierarchy) Fetch(cycle uint64, pc uint64) uint64 {
	if next := pc + uint64(64); !h.L1I.Lookup(next) {
		h.instFill(next)
	}
	if h.L1I.access(pc) {
		h.L1I.Hits++
		return cycle + uint64(h.L1I.hitLatency)
	}
	h.L1I.Misses++
	var lat int
	switch {
	case h.L2.access(pc):
		h.L2.Hits++
		lat = h.L1I.hitLatency + h.L2.hitLatency
	case h.L3.access(pc):
		h.L2.Misses++
		h.L3.Hits++
		lat = h.L1I.hitLatency + h.L2.hitLatency + h.L3.hitLatency
		h.L2.Fill(pc)
	default:
		h.L2.Misses++
		h.L3.Misses++
		lat = h.L1I.hitLatency + h.L2.hitLatency + h.L3.hitLatency + h.memLatency
		h.L3.Fill(pc)
		h.L2.Fill(pc)
	}
	h.L1I.Fill(pc)
	return cycle + uint64(lat)
}

// instFill installs a line on the instruction path off the critical path
// (next-line prefetch); it updates tag state but charges no fetch latency.
func (h *Hierarchy) instFill(pc uint64) {
	switch {
	case h.L2.access(pc):
		h.L2.Hits++
	case h.L3.access(pc):
		h.L2.Misses++
		h.L3.Hits++
		h.L2.Fill(pc)
	default:
		h.L2.Misses++
		h.L3.Misses++
		h.L3.Fill(pc)
		h.L2.Fill(pc)
	}
	h.L1I.Fill(pc)
}

// StridePrefetcher is the IP-stride L1D prefetcher of Table I: per load PC
// it tracks the last address and stride; two consecutive confirmations make
// it issue `degree` prefetches ahead. The table is direct-mapped (PC-
// indexed, tagged), replacing deterministically on conflict — a hardware-
// faithful geometry that also avoids per-access map allocations.
type StridePrefetcher struct {
	entries  []strideEntry
	mask     uint64
	degree   int
	lineSize int
	out      []uint64 // reused Observe result buffer

	Issued uint64
}

type strideEntry struct {
	pc         uint64 // tag (+1, 0 = invalid)
	lastAddr   uint64
	stride     int64
	confidence uint8
}

// NewStridePrefetcher builds a prefetcher with the given table capacity
// (rounded up to a power of two) and prefetch degree.
func NewStridePrefetcher(capacity, degree, lineSize int) *StridePrefetcher {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &StridePrefetcher{
		entries:  make([]strideEntry, n),
		mask:     uint64(n - 1),
		degree:   degree,
		lineSize: lineSize,
		out:      make([]uint64, 0, degree),
	}
}

// Reset untrains the prefetcher without reallocating its table.
func (p *StridePrefetcher) Reset() {
	clear(p.entries)
	p.Issued = 0
}

// Observe trains on a demand load and returns the addresses to prefetch.
// The returned slice is reused by the next call.
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	e := &p.entries[pc&p.mask]
	if e.pc != pc+1 {
		// Miss or conflict: (re)allocate the slot to this PC.
		*e = strideEntry{pc: pc + 1, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.confidence = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.confidence < 2 {
		return nil
	}
	out := p.out[:0]
	next := int64(addr)
	for i := 0; i < p.degree; i++ {
		next += e.stride
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	p.out = out
	p.Issued += uint64(len(out))
	return out
}
