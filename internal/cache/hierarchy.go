package cache

import "repro/internal/config"

// Hierarchy composes the levels of Table I and answers the pipeline's two
// questions: "when does this load's data arrive?" and "when does this fetch
// group arrive?". Stores write through the store buffer after commit and
// install lines on their way down.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Level
	memLatency       int

	pf *StridePrefetcher

	// inflightLine tracks outstanding line fills so that a second miss to an
	// in-flight line completes with it instead of paying a full miss (MSHR
	// secondary-miss coalescing).
	inflightLine map[uint64]uint64

	// DemandAccesses counts L1D demand accesses (loads + store drains).
	DemandAccesses uint64
}

// New builds the hierarchy for a machine configuration.
func New(m config.Machine) *Hierarchy {
	h := &Hierarchy{
		L1I:          NewLevel("L1I", m.L1I),
		L1D:          NewLevel("L1D", m.L1D),
		L2:           NewLevel("L2", m.L2),
		L3:           NewLevel("L3", m.L3),
		memLatency:   m.MemLatency,
		inflightLine: map[uint64]uint64{},
	}
	if m.PrefetchDegree > 0 {
		h.pf = NewStridePrefetcher(256, m.PrefetchDegree, m.L1D.LineBytes)
	}
	return h
}

// Load returns the completion cycle of a demand load issued at cycle to
// addr, training the prefetcher with the load's PC.
func (h *Hierarchy) Load(cycle uint64, pc, addr uint64) uint64 {
	h.DemandAccesses++
	done := h.dataAccess(cycle, addr)
	if h.pf != nil {
		for _, pfAddr := range h.pf.Observe(pc, addr) {
			// Prefetches install lines with miss latency but off the
			// load's critical path.
			if !h.L1D.Lookup(pfAddr) {
				h.dataAccess(cycle, pfAddr)
			}
		}
	}
	return done
}

// StoreDrain models a committed store leaving the store buffer at cycle:
// it writes the line into L1D (write-allocate). Returns the cycle the store
// buffer entry frees.
func (h *Hierarchy) StoreDrain(cycle uint64, addr uint64) uint64 {
	h.DemandAccesses++
	return h.dataAccess(cycle, addr)
}

// dataAccess walks L1D→L2→L3→memory, filling on the way back. The returned
// cycle includes MSHR contention at the missing levels.
func (h *Hierarchy) dataAccess(cycle uint64, addr uint64) uint64 {
	line := addr >> h.L1D.lineShift
	if h.L1D.access(addr) {
		h.L1D.Hits++
		return cycle + uint64(h.L1D.hitLatency)
	}
	h.L1D.Misses++
	if doneAt, ok := h.inflightLine[line]; ok && doneAt > cycle {
		// Secondary miss: ride the outstanding fill.
		return doneAt
	}
	var lat int
	switch {
	case h.L2.access(addr):
		h.L2.Hits++
		lat = h.L1D.hitLatency + h.L2.hitLatency
	case h.L3.access(addr):
		h.L2.Misses++
		h.L3.Hits++
		lat = h.L1D.hitLatency + h.L2.hitLatency + h.L3.hitLatency
		h.L2.Fill(addr)
	default:
		h.L2.Misses++
		h.L3.Misses++
		lat = h.L1D.hitLatency + h.L2.hitLatency + h.L3.hitLatency + h.memLatency
		h.L3.Fill(addr)
		h.L2.Fill(addr)
	}
	done := cycle + uint64(lat)
	start := h.L1D.reserveMSHR(cycle, done)
	done = start + uint64(lat)
	h.L1D.Fill(addr)
	h.inflightLine[line] = done
	if len(h.inflightLine) > 4096 {
		for l, d := range h.inflightLine {
			if d <= cycle {
				delete(h.inflightLine, l)
			}
		}
	}
	return done
}

// Fetch returns the completion cycle of an instruction fetch at cycle. The
// instruction path is L1I → L2 → L3 → memory, with a next-line prefetcher
// (standard in L1I front ends) hiding sequential-code cold misses.
func (h *Hierarchy) Fetch(cycle uint64, pc uint64) uint64 {
	if next := pc + uint64(64); !h.L1I.Lookup(next) {
		h.instFill(next)
	}
	if h.L1I.access(pc) {
		h.L1I.Hits++
		return cycle + uint64(h.L1I.hitLatency)
	}
	h.L1I.Misses++
	var lat int
	switch {
	case h.L2.access(pc):
		h.L2.Hits++
		lat = h.L1I.hitLatency + h.L2.hitLatency
	case h.L3.access(pc):
		h.L2.Misses++
		h.L3.Hits++
		lat = h.L1I.hitLatency + h.L2.hitLatency + h.L3.hitLatency
		h.L2.Fill(pc)
	default:
		h.L2.Misses++
		h.L3.Misses++
		lat = h.L1I.hitLatency + h.L2.hitLatency + h.L3.hitLatency + h.memLatency
		h.L3.Fill(pc)
		h.L2.Fill(pc)
	}
	h.L1I.Fill(pc)
	return cycle + uint64(lat)
}

// instFill installs a line on the instruction path off the critical path
// (next-line prefetch); it updates tag state but charges no fetch latency.
func (h *Hierarchy) instFill(pc uint64) {
	switch {
	case h.L2.access(pc):
		h.L2.Hits++
	case h.L3.access(pc):
		h.L2.Misses++
		h.L3.Hits++
		h.L2.Fill(pc)
	default:
		h.L2.Misses++
		h.L3.Misses++
		h.L3.Fill(pc)
		h.L2.Fill(pc)
	}
	h.L1I.Fill(pc)
}

// StridePrefetcher is the IP-stride L1D prefetcher of Table I: per load PC
// it tracks the last address and stride; two consecutive confirmations make
// it issue `degree` prefetches ahead.
type StridePrefetcher struct {
	entries  map[uint64]*strideEntry
	capacity int
	degree   int
	lineSize int

	Issued uint64
}

type strideEntry struct {
	lastAddr   uint64
	stride     int64
	confidence uint8
}

// NewStridePrefetcher builds a prefetcher with the given table capacity and
// prefetch degree.
func NewStridePrefetcher(capacity, degree, lineSize int) *StridePrefetcher {
	return &StridePrefetcher{
		entries:  map[uint64]*strideEntry{},
		capacity: capacity,
		degree:   degree,
		lineSize: lineSize,
	}
}

// Observe trains on a demand load and returns the addresses to prefetch.
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	e, ok := p.entries[pc]
	if !ok {
		if len(p.entries) >= p.capacity {
			// Simple random-ish eviction: drop one arbitrary entry.
			for k := range p.entries {
				delete(p.entries, k)
				break
			}
		}
		p.entries[pc] = &strideEntry{lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.confidence = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.confidence < 2 {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := int64(addr)
	for i := 0; i < p.degree; i++ {
		next += e.stride
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	p.Issued += uint64(len(out))
	return out
}
