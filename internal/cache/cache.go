// Package cache models the memory hierarchy of Table I: private L1I/L1D and
// L2, a shared L3, and main memory, with per-level MSHRs, LRU replacement,
// and an IP-stride L1D prefetcher. The model is latency oriented: the
// pipeline asks at which cycle an access completes; tag state, inclusion,
// and miss-status handling evolve as accesses are performed in order.
package cache

import (
	"repro/internal/config"
)

// Level is one set-associative cache level.
type Level struct {
	name       string
	sets       int
	ways       int
	lineShift  uint
	hitLatency int

	tags []uint64 // sets × ways line tags; 0 = invalid
	lru  []uint8  // per way recency (0 = MRU)

	mshrs []uint64 // busy-until cycle per MSHR

	Hits, Misses uint64
}

// NewLevel builds a cache level from its configuration.
func NewLevel(name string, c config.Cache) *Level {
	sets := c.Sets()
	shift := uint(0)
	for 1<<shift < c.LineBytes {
		shift++
	}
	l := &Level{
		name:       name,
		sets:       sets,
		ways:       c.Ways,
		lineShift:  shift,
		hitLatency: c.HitLatency,
		tags:       make([]uint64, sets*c.Ways),
		lru:        make([]uint8, sets*c.Ways),
		mshrs:      make([]uint64, c.MSHRs),
	}
	l.initLRU()
	return l
}

// initLRU seeds the recency counters: they must form a permutation per set
// (0 = MRU … ways-1 = LRU) or the relative-increment update cannot order
// ways.
func (l *Level) initLRU() {
	for s := 0; s < l.sets; s++ {
		for w := 0; w < l.ways; w++ {
			l.lru[s*l.ways+w] = uint8(w)
		}
	}
}

// Reset invalidates every line and clears MSHR and hit/miss state, returning
// the level to its just-constructed contents without reallocating.
func (l *Level) Reset() {
	clear(l.tags)
	l.initLRU()
	clear(l.mshrs)
	l.Hits, l.Misses = 0, 0
}

// Name returns the level's label (e.g. "L1D").
func (l *Level) Name() string { return l.name }

// HitLatency returns the level's hit latency in cycles.
func (l *Level) HitLatency() int { return l.hitLatency }

func (l *Level) line(addr uint64) uint64 { return addr >> l.lineShift }

func (l *Level) set(line uint64) int { return int(line % uint64(l.sets)) }

// Lookup probes the tags without changing state; reports presence.
func (l *Level) Lookup(addr uint64) bool {
	line := l.line(addr)
	base := l.set(line) * l.ways
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// access probes and on hit refreshes LRU. Returns hit.
func (l *Level) access(addr uint64) bool {
	line := l.line(addr)
	base := l.set(line) * l.ways
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == line+1 {
			l.touch(base, w)
			return true
		}
	}
	return false
}

func (l *Level) touch(base, way int) {
	old := l.lru[base+way]
	for w := 0; w < l.ways; w++ {
		if l.lru[base+w] < old {
			l.lru[base+w]++
		}
	}
	l.lru[base+way] = 0
}

// Fill installs the line, evicting the LRU way. Returns the evicted line
// (+1 encoded) or 0 if an invalid way was used.
func (l *Level) Fill(addr uint64) uint64 {
	line := l.line(addr)
	base := l.set(line) * l.ways
	victim, worst := 0, uint8(0)
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == 0 {
			victim = w
			break
		}
		if l.lru[base+w] >= worst {
			worst, victim = l.lru[base+w], w
		}
	}
	evicted := l.tags[base+victim]
	l.tags[base+victim] = line + 1
	l.touch(base, victim)
	if evicted == line+1 {
		return 0
	}
	return evicted
}

// reserveMSHR models miss-status register contention: a miss started at
// cycle c occupies an MSHR until done. If all MSHRs are busy the miss is
// delayed until the earliest one frees. Returns the actual start cycle.
func (l *Level) reserveMSHR(cycle, done uint64) uint64 {
	earliestIdx, earliest := 0, l.mshrs[0]
	for i, busy := range l.mshrs {
		if busy <= cycle {
			l.mshrs[i] = done
			return cycle
		}
		if busy < earliest {
			earliest, earliestIdx = busy, i
		}
	}
	start := earliest
	l.mshrs[earliestIdx] = start + (done - cycle)
	return start
}
