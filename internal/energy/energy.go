// Package energy estimates per-access energy of the predictors' SRAM
// structures, standing in for the Cacti-P 7nm toolchain the paper used
// (see DESIGN.md §3). The model is anchored on the per-access pJ values the
// paper reports in Table II and scales other geometries with a standard
// SRAM area/energy relation (energy ≈ bitline + wordline + sense terms,
// dominated by √(total bits) for small arrays, times the bits moved per
// access). Figure 16 is access counts × these per-access energies, so the
// anchored points reproduce it exactly and swept geometries stay plausible.
package energy

import "math"

// Structure describes one SRAM lookup structure of a predictor.
type Structure struct {
	Name string
	// Entries is the total entry count.
	Entries int
	// EntryBits is the width of one entry.
	EntryBits int
	// AccessBits is how many bits one access reads (ways × entry width for
	// a set-associative probe; EntryBits for a direct-mapped read).
	AccessBits int
	// Parallel is how many such structures are probed per prediction
	// (e.g. 8 PHAST tables).
	Parallel int
}

// TotalBits returns the storage of all parallel instances.
func (s Structure) TotalBits() int { return s.Entries * s.EntryBits * max(1, s.Parallel) }

// anchor is a Table II calibration point (one physical structure).
type anchor struct {
	rows       float64 // wordlines: entries / ways
	accessBits float64 // bits read per probe
	perAccess  float64 // pJ per single-structure probe
}

// Table II anchors: Store Sets' SSIT and LFST (direct mapped), one NoSQ
// table, one MDP-TAGE component, one MDP-TAGE-S table, and one PHAST table
// (all 4-way). Per-structure values divide the paper's whole-predictor
// numbers by the probe fan-out.
var anchors = []anchor{
	{rows: 8192, accessBits: 13, perAccess: 0.2403},         // SSIT
	{rows: 4096, accessBits: 11, perAccess: 0.1026},         // LFST
	{rows: 512, accessBits: 4 * 38, perAccess: 0.3721 / 2},  // NoSQ table
	{rows: 341, accessBits: 4 * 23, perAccess: 1.3103 / 12}, // MDP-TAGE component
	{rows: 128, accessBits: 4 * 26, perAccess: 0.4421 / 8},  // MDP-TAGE-S table
	{rows: 128, accessBits: 4 * 29, perAccess: 0.4856 / 8},  // PHAST table
}

// rowExponent is the fitted wordline/bitline scaling: per-probe energy grows
// slightly sublinearly with the number of rows (0.9 fits the six anchors
// within ±25%; a pure √rows model misses the direct-mapped points 4×).
const rowExponent = 0.9

// raw computes the uncalibrated model term for one structure probe.
func raw(rows, accessBits float64) float64 {
	return accessBits * math.Pow(rows, rowExponent)
}

// scale is the least-squares fit of the anchors onto the raw model,
// computed once at init.
var scale float64

func init() {
	num, den := 0.0, 0.0
	for _, a := range anchors {
		r := raw(a.rows, a.accessBits)
		num += r * a.perAccess
		den += r * r
	}
	scale = num / den
}

// PerAccessPJ estimates the energy of one full prediction access (probing
// all parallel structures) in picojoules.
func PerAccessPJ(structs []Structure) float64 {
	total := 0.0
	for _, s := range structs {
		p := float64(max(1, s.Parallel))
		ways := 1.0
		if s.EntryBits > 0 && s.AccessBits > s.EntryBits {
			ways = float64(s.AccessBits) / float64(s.EntryBits)
		}
		rows := float64(s.Entries) / ways
		total += p * raw(rows, float64(s.AccessBits))
	}
	return total * scale
}

// RunEnergy summarises a predictor's energy over a simulation.
type RunEnergy struct {
	ReadsNJ  float64
	WritesNJ float64
}

// TotalNJ returns read + write energy.
func (r RunEnergy) TotalNJ() float64 { return r.ReadsNJ + r.WritesNJ }

// writeFactor models the relative cost of an SRAM write versus a read
// (writes drive full bitline swings; Cacti-P reports roughly 10-20% more).
const writeFactor = 1.15

// OfRun converts access counts into energy. perAccessPJ is the whole-
// predictor per-access figure (PerAccessPJ or a Table II anchor); reads
// count whole-predictor probes and writes count entry updates (a write
// touches one structure, approximated as perAccess/parallel).
func OfRun(perAccessPJ float64, parallel int, reads, writes uint64) RunEnergy {
	if parallel < 1 {
		parallel = 1
	}
	writePJ := perAccessPJ / float64(parallel) * writeFactor
	return RunEnergy{
		ReadsNJ:  float64(reads) * perAccessPJ / 1000,
		WritesNJ: float64(writes) * writePJ / 1000,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
