package energy

import (
	"strconv"
	"strings"
)

// StructuresFor returns the SRAM structures of a predictor spec as used by
// package sim ("phast", "phast:<sets>", "storesets", "nosq", "mdptage",
// "mdptage-s", ...). Unknown or storage-free specs return nil.
func StructuresFor(spec string) []Structure {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	argInt := func(def int) int {
		if arg == "" {
			return def
		}
		if v, err := strconv.Atoi(arg); err == nil {
			return v
		}
		return def
	}
	switch name {
	case "phast":
		sets := argInt(128)
		entryBits := 16 + 7 + 4 + 2
		return []Structure{{
			Name: "phast-table", Entries: sets * 4, EntryBits: entryBits,
			AccessBits: 4 * entryBits, Parallel: 8,
		}}
	case "storesets":
		ssit := argInt(8192)
		return []Structure{
			{Name: "ssit", Entries: ssit, EntryBits: 13, AccessBits: 13, Parallel: 1},
			{Name: "lfst", Entries: ssit / 2, EntryBits: 11, AccessBits: 11, Parallel: 1},
		}
	case "nosq":
		entries := argInt(2048)
		entryBits := 22 + 7 + 7 + 2
		return []Structure{{
			Name: "nosq-table", Entries: entries, EntryBits: entryBits,
			AccessBits: 4 * entryBits, Parallel: 2,
		}}
	case "mdptage":
		// 12 components, 16K entries total, average entry ≈ 23 bits
		// (7–15-bit tags + 7-bit distance + u).
		return []Structure{{
			Name: "mdptage-comp", Entries: 16384 / 12, EntryBits: 23,
			AccessBits: 4 * 23, Parallel: 12,
		}}
	case "mdptage-s":
		entryBits := 16 + 7 + 1 + 2
		return []Structure{{
			Name: "mdptage-s-table", Entries: 512, EntryBits: entryBits,
			AccessBits: 4 * entryBits, Parallel: 8,
		}}
	case "storevector":
		return []Structure{{Name: "vectors", Entries: 4096, EntryBits: 64, AccessBits: 64, Parallel: 1}}
	case "cht":
		return []Structure{{Name: "cht", Entries: 16384, EntryBits: 2, AccessBits: 2, Parallel: 1}}
	default:
		return nil
	}
}

// ParallelFor returns the number of structures probed per access for a spec
// (the divisor for write energy in OfRun).
func ParallelFor(spec string) int {
	total := 0
	for _, s := range StructuresFor(spec) {
		if s.Parallel > 0 {
			total += s.Parallel
		} else {
			total++
		}
	}
	if total == 0 {
		return 1
	}
	return total
}
