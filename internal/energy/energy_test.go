package energy

import (
	"math"
	"testing"
)

// TestAnchorsNearTableII: the calibrated model must land near every
// Table II per-access value it was fitted to (single-scale least squares,
// so individual points deviate, but each must stay within 2.5×).
func TestAnchorsNearTableII(t *testing.T) {
	cases := []struct {
		spec string
		want float64
	}{
		{"storesets", 0.2403 + 0.1026}, // SSIT + LFST per full access
		{"nosq", 0.3721},
		{"mdptage", 1.3103},
		{"mdptage-s", 0.4421},
		{"phast", 0.4856},
	}
	for _, c := range cases {
		got := PerAccessPJ(StructuresFor(c.spec))
		ratio := got / c.want
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("%s: per-access %.4f pJ, Table II %.4f (ratio %.2f)", c.spec, got, c.want, ratio)
		}
	}
}

func TestEnergyOrderingMatchesPaper(t *testing.T) {
	// Fig. 16's main observation: the 12-component TAGE-like structure
	// costs far more per access than the others.
	tage := PerAccessPJ(StructuresFor("mdptage"))
	for _, spec := range []string{"storesets", "nosq", "mdptage-s", "phast"} {
		if got := PerAccessPJ(StructuresFor(spec)); got >= tage {
			t.Errorf("%s (%.3f pJ) should cost less per access than mdptage (%.3f pJ)",
				spec, got, tage)
		}
	}
}

func TestEnergyMonotonicInSize(t *testing.T) {
	small := PerAccessPJ(StructuresFor("phast:32"))
	big := PerAccessPJ(StructuresFor("phast:512"))
	if small >= big {
		t.Errorf("larger tables must cost more per access: %.4f vs %.4f", small, big)
	}
}

func TestOfRun(t *testing.T) {
	e := OfRun(1.0, 4, 1000, 100)
	if math.Abs(e.ReadsNJ-1.0) > 1e-9 {
		t.Errorf("reads = %.4f nJ, want 1.0", e.ReadsNJ)
	}
	wantWrites := 100 * (1.0 / 4 * writeFactor) / 1000
	if math.Abs(e.WritesNJ-wantWrites) > 1e-9 {
		t.Errorf("writes = %.6f nJ, want %.6f", e.WritesNJ, wantWrites)
	}
	if e.TotalNJ() != e.ReadsNJ+e.WritesNJ {
		t.Error("total must be reads+writes")
	}
	// Degenerate parallel values must not divide by zero.
	if OfRun(1, 0, 1, 1).TotalNJ() <= 0 {
		t.Error("parallel=0 should clamp to 1")
	}
}

func TestStructuresForUnknown(t *testing.T) {
	if StructuresFor("ideal") != nil {
		t.Error("storage-free predictors have no structures")
	}
	if ParallelFor("ideal") != 1 {
		t.Error("ParallelFor must clamp to 1")
	}
	if ParallelFor("phast") != 8 {
		t.Errorf("PHAST probes 8 tables, got %d", ParallelFor("phast"))
	}
}

func TestStructuresBudgetArg(t *testing.T) {
	s := StructuresFor("phast:256")
	if len(s) != 1 || s[0].Entries != 256*4 {
		t.Errorf("phast:256 structures = %+v", s)
	}
	s = StructuresFor("storesets:4096")
	if len(s) != 2 || s[0].Entries != 4096 || s[1].Entries != 2048 {
		t.Errorf("storesets:4096 structures = %+v", s)
	}
	// Malformed arg falls back to the default.
	s = StructuresFor("phast:bogus")
	if len(s) != 1 || s[0].Entries != 512 {
		t.Errorf("malformed arg should use defaults, got %+v", s)
	}
}

func TestTotalBits(t *testing.T) {
	s := Structure{Entries: 100, EntryBits: 10, Parallel: 3}
	if s.TotalBits() != 3000 {
		t.Errorf("TotalBits = %d", s.TotalBits())
	}
	s.Parallel = 0
	if s.TotalBits() != 1000 {
		t.Errorf("TotalBits with Parallel=0 = %d", s.TotalBits())
	}
}
