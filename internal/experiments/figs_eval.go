package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/viz"
)

// Fig12 reproduces the forwarding-filter ablation (§VI-B): geometric-mean
// IPC versus the ideal predictor with the §IV-A1 optimisation off and on.
// PHAST benefits most: without the filter it learns stale older-store
// dependencies with long histories that shadow the correct entry.
func Fig12(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 12 — IPC vs ideal without (No FWD) and with (FWD) forwarding filtering",
		"predictor", "No FWD", "FWD")
	chart := viz.BarChart{
		Title: "Fig. 12 (chart) — IPC vs ideal, No FWD vs FWD", Width: 50,
		Baseline: 1.0, Min: 0.8, Max: 1.01,
	}
	for _, pred := range sim.PredictorNames() {
		noFwd, err := r.GeoIPCvsIdeal("alderlake", pred, true)
		if err != nil {
			return err
		}
		fwd, err := r.GeoIPCvsIdeal("alderlake", pred, false)
		if err != nil {
			return err
		}
		t.AddRowf(pred, noFwd, fwd)
		chart.Add(pred+" no-fwd", noFwd)
		chart.Add(pred+" fwd", fwd)
	}
	fmt.Fprintln(o.Out, t)
	fmt.Fprintln(o.Out, chart.String())
	return nil
}

// fig13Budgets lists the storage sweep of Fig. 13 per predictor family.
var fig13Budgets = map[string][]string{
	"phast":     {"phast:32", "phast:64", "phast:128", "phast:256", "phast:512"},
	"storesets": {"storesets:2048", "storesets:4096", "storesets:8192", "storesets:16384"},
	"nosq":      {"nosq:512", "nosq:1024", "nosq:2048", "nosq:4096"},
	"mdptage":   {"mdptage"},
	"mdptage-s": {"mdptage-s"},
}

// Fig13 reproduces the performance-versus-storage trade-off sweep.
func Fig13(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 13 — performance vs storage", "predictor", "size KB", "IPC/ideal")
	sc := viz.Scatter{Title: "Fig. 13 (chart) — IPC/ideal by storage budget", XLabel: "KB", Width: 44}
	for _, family := range []string{"storesets", "nosq", "mdptage", "mdptage-s", "phast"} {
		for _, spec := range fig13Budgets[family] {
			pred, err := sim.NewPredictor(spec)
			if err != nil {
				return err
			}
			geo, err := r.GeoIPCvsIdeal("alderlake", spec, false)
			if err != nil {
				return err
			}
			t.AddRowf(spec, float64(pred.SizeBits())/8192, geo)
			sc.Add(family, float64(pred.SizeBits())/8192, geo)
		}
	}
	fmt.Fprintln(o.Out, t)
	fmt.Fprintln(o.Out, sc.String())
	return nil
}

// Fig14 reproduces the per-app MPKI comparison of the evaluated predictors,
// split into memory order violations (FN) and false dependencies (FP).
func Fig14(r *Runner) error {
	o := r.Opt()
	preds := sim.PredictorNames()
	header := []string{"app"}
	for _, p := range preds {
		header = append(header, p+" FN", p+" FP")
	}
	t := stats.NewTable("Fig. 14 — MPKI of the evaluated predictors", header...)
	all := map[string][]*stats.Run{}
	for _, p := range preds {
		runs, err := r.RunApps("alderlake", p, false)
		if err != nil {
			return err
		}
		all[p] = runs
	}
	for i, app := range o.Apps {
		row := []interface{}{app}
		for _, p := range preds {
			row = append(row, all[p][i].ViolationMPKI(), all[p][i].FalseDepMPKI())
		}
		t.AddRowf(row...)
	}
	avg := []interface{}{"average"}
	for _, p := range preds {
		fns, fps := []float64{}, []float64{}
		for _, run := range all[p] {
			fns = append(fns, run.ViolationMPKI())
			fps = append(fps, run.FalseDepMPKI())
		}
		avg = append(avg, stats.Mean(fns), stats.Mean(fps))
	}
	t.AddRowf(avg...)
	fmt.Fprintln(o.Out, t)
	return nil
}

// Fig15 reproduces the per-app IPC of every predictor normalised to ideal,
// plus the headline geomeans and speedups of PHAST over each baseline.
func Fig15(r *Runner) error {
	o := r.Opt()
	preds := sim.PredictorNames()
	ideal, err := r.RunApps("alderlake", "ideal", false)
	if err != nil {
		return err
	}
	t := stats.NewTable("Fig. 15 — IPC normalised to ideal MDP", append([]string{"app"}, preds...)...)
	ratios := map[string][]float64{}
	perApp := map[string][]*stats.Run{}
	for _, p := range preds {
		runs, err := r.RunApps("alderlake", p, false)
		if err != nil {
			return err
		}
		perApp[p] = runs
		for i := range runs {
			ratios[p] = append(ratios[p], runs[i].Speedup(ideal[i]))
		}
	}
	for i, app := range o.Apps {
		row := []interface{}{app}
		for _, p := range preds {
			row = append(row, ratios[p][i])
		}
		t.AddRowf(row...)
	}
	geoRow := []interface{}{"geomean"}
	chart := viz.BarChart{
		Title: "Fig. 15 (chart) — geomean IPC vs ideal", Width: 50,
		Baseline: 1.0, Min: 0.9, Max: 1.01,
	}
	for _, p := range preds {
		g := stats.GeoMean(ratios[p])
		geoRow = append(geoRow, g)
		chart.Add(p, g)
	}
	t.AddRowf(geoRow...)
	fmt.Fprintln(o.Out, t)
	fmt.Fprintln(o.Out, chart.String())

	// Headline speedups: PHAST versus each baseline (mean and max).
	s := stats.NewTable("PHAST speedups over baselines", "baseline", "geomean speedup %", "max speedup %")
	for _, p := range preds {
		if p == "phast" {
			continue
		}
		sp := make([]float64, len(o.Apps))
		maxSp := 0.0
		for i := range o.Apps {
			sp[i] = perApp["phast"][i].Speedup(perApp[p][i])
			if sp[i] > maxSp {
				maxSp = sp[i]
			}
		}
		s.AddRowf(p, (stats.GeoMean(sp)-1)*100, (maxSp-1)*100)
	}
	fmt.Fprintln(o.Out, s)
	return nil
}

// Fig16 reproduces the predictor energy comparison: per-access energy from
// the Cacti-P-calibrated model times the measured read/write traffic.
func Fig16(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 16 — predictor energy (nJ, suite total)",
		"predictor", "pJ/access", "reads nJ", "writes nJ", "total nJ")
	for _, p := range sim.PredictorNames() {
		runs, err := r.RunApps("alderlake", p, false)
		if err != nil {
			return err
		}
		var reads, writes uint64
		for _, run := range runs {
			reads += run.PredictorReads
			writes += run.PredictorWrites
		}
		per := energy.PerAccessPJ(energy.StructuresFor(p))
		// Reads counted per structure probe: normalise to whole-predictor
		// accesses.
		parallel := energy.ParallelFor(p)
		e := energy.OfRun(per, parallel, reads/uint64(parallel), writes)
		t.AddRowf(p, per, e.ReadsNJ, e.WritesNJ, e.TotalNJ())
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// Table1 prints the simulated system configuration (the paper's Table I).
func Table1(r *Runner) error {
	o := r.Opt()
	m := config.AlderLake()
	t := stats.NewTable("Table I — system configuration", "parameter", "value")
	t.AddRow("Machine", m.Name)
	t.AddRow("Front-end width", fmt.Sprintf("%d-wide fetch and decode", m.FetchWidth))
	t.AddRow("Back-end width", fmt.Sprintf("%d execution ports and commit width %d", m.IssuePorts, m.CommitWidth))
	t.AddRow("Load/store ports", fmt.Sprintf("%d load, %d store", m.LoadPorts, m.StorePorts))
	t.AddRow("ROB/IQ/LQ/SQ", fmt.Sprintf("%d/%d/%d/%d entries", m.ROB, m.IQ, m.LQ, m.SQ))
	t.AddRow("L1I", fmt.Sprintf("%dKB %d ways, %d-cycle hit, %d MSHRs", m.L1I.SizeKB, m.L1I.Ways, m.L1I.HitLatency, m.L1I.MSHRs))
	t.AddRow("L1D", fmt.Sprintf("%dKB %d ways, %d-cycle hit, %d MSHRs", m.L1D.SizeKB, m.L1D.Ways, m.L1D.HitLatency, m.L1D.MSHRs))
	t.AddRow("L1D prefetcher", fmt.Sprintf("IP-stride, degree %d", m.PrefetchDegree))
	t.AddRow("L2", fmt.Sprintf("%dKB %d ways, %d-cycle hit", m.L2.SizeKB, m.L2.Ways, m.L2.HitLatency))
	t.AddRow("L3", fmt.Sprintf("%dKB %d ways, %d-cycle hit", m.L3.SizeKB, m.L3.Ways, m.L3.HitLatency))
	t.AddRow("Memory", fmt.Sprintf("%d-cycle access latency", m.MemLatency))
	fmt.Fprintln(o.Out, t)
	return nil
}

// Table2 prints the predictor configurations: storage and per-access energy
// (the paper's Table II).
func Table2(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Table II — predictor configurations",
		"predictor", "size KB", "pJ/access")
	for _, spec := range sim.PredictorNames() {
		pred, err := sim.NewPredictor(spec)
		if err != nil {
			return err
		}
		t.AddRowf(spec, float64(pred.SizeBits())/8192, energy.PerAccessPJ(energy.StructuresFor(spec)))
	}
	fmt.Fprintln(o.Out, t)
	return nil
}
