package experiments

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestSchedulerSaturationBlocksNotDrops pins the scheduler's backpressure
// contract: with every worker busy, submit blocks the caller (bounded
// memory, no internal queue growth) instead of dropping or erroring the
// job, and the blocked submit completes once a worker frees. Run under
// -race (make check does).
func TestSchedulerSaturationBlocksNotDrops(t *testing.T) {
	s := newScheduler(2)
	defer s.close()
	gate := make(chan struct{})
	var done atomic.Int32
	// Saturate both workers.
	for i := 0; i < 2; i++ {
		if err := s.submit(func() { <-gate; done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	// The third submit must block — not return, not drop the job.
	third := make(chan error, 1)
	go func() { third <- s.submit(func() { done.Add(1) }) }()
	select {
	case err := <-third:
		t.Fatalf("submit returned (%v) while the pool was saturated; it must block", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	if err := <-third; err != nil {
		t.Fatalf("blocked submit failed after a worker freed: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for done.Load() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := done.Load(); got != 3 {
		t.Fatalf("%d of 3 accepted jobs ran — work was dropped", got)
	}
}

// TestSchedulerDrainOnCloseCompletesAccepted: every job accepted before
// close runs to completion; close never abandons handed-off work.
func TestSchedulerDrainOnCloseCompletesAccepted(t *testing.T) {
	s := newScheduler(3)
	const jobs = 50
	var done atomic.Int32
	var wg sync.WaitGroup
	accepted := 0
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		err := s.submit(func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			done.Add(1)
		})
		if err != nil {
			wg.Done()
			t.Fatalf("job %d: %v", i, err)
		}
		accepted++
	}
	s.close()
	wg.Wait()
	if got := done.Load(); got != int32(accepted) {
		t.Fatalf("close drained %d of %d accepted jobs", got, accepted)
	}
	if err := s.submit(func() {}); err == nil {
		t.Fatal("submit after close must fail, not enqueue")
	}
}

// TestRunnerCloseMidBatchLosesNoConfig: closing a runner racing a batch is
// the serving layer's shutdown path — every config must still produce an
// outcome (a completed run or a typed scheduler-closed error), never a
// silently missing row.
func TestRunnerCloseMidBatchLosesNoConfig(t *testing.T) {
	r := NewRunner(Options{Instructions: 5_000, Workers: 2, KeepGoing: true})
	cfgs := make([]sim.Config, 12)
	for i := range cfgs {
		cfgs[i] = sim.Config{App: "511.povray", Predictor: "none", Instructions: 5_000, Seed: int64(i + 1)}
	}
	resultsCh := make(chan []Result, 1)
	go func() { resultsCh <- r.RunConfigsDetailed(cfgs) }()
	time.Sleep(5 * time.Millisecond) // let some configs land in the pool
	r.Close()
	results := <-resultsCh
	if len(results) != len(cfgs) {
		t.Fatalf("%d rows for %d configs", len(results), len(cfgs))
	}
	var ran, refused int
	for i, res := range results {
		switch {
		case res.Err == nil && res.Run != nil:
			ran++
		case errors.Is(res.Err, errSchedulerClosed):
			refused++
		default:
			t.Errorf("config %d: unexpected outcome run=%v err=%v", i, res.Run, res.Err)
		}
	}
	if ran+refused != len(cfgs) {
		t.Fatalf("accounted for %d of %d configs", ran+refused, len(cfgs))
	}
	t.Logf("close mid-batch: %d ran, %d refused with typed errors", ran, refused)
}
