package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRunner keeps experiment smoke tests fast: two contrasting apps at a
// small instruction count.
func tinyRunner(buf *bytes.Buffer) *Runner {
	return NewRunner(Options{
		Apps:         []string{"511.povray", "519.lbm"},
		Instructions: 30000,
		Out:          buf,
	})
}

func TestByName(t *testing.T) {
	if len(All()) < 17 {
		t.Fatalf("only %d experiments registered", len(All()))
	}
	for _, e := range All() {
		got, err := ByName(e.Name)
		if err != nil || got.Name != e.Name {
			t.Errorf("ByName(%q): %v", e.Name, err)
		}
	}
	if _, err := ByName("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunnerMemoises(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	a, err := r.Run("519.lbm", "alderlake", "ideal", false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("519.lbm", "alderlake", "ideal", false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs should be memoised (same pointer)")
	}
}

func TestRunAppsOrder(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	runs, err := r.RunApps("alderlake", "ideal", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].App != "511.povray" || runs[1].App != "519.lbm" {
		t.Errorf("RunApps order broken: %v, %v", runs[0].App, runs[1].App)
	}
}

// TestExperimentsSmoke runs a representative subset of experiments end to
// end and checks each renders non-empty output mentioning its subject.
func TestExperimentsSmoke(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"fig4", "multiple stores"},
		{"fig7", "UnlimitedPHAST"},
		{"fig10", "history length"},
		{"fig12", "FWD"},
		{"fig14", "MPKI"},
		{"fig15", "IPC"},
		{"fig16", "energy"},
		{"table1", "configuration"},
		{"table2", "predictor"},
		{"mix", "mix"},
	}
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e, err := ByName(c.name)
			if err != nil {
				t.Fatal(err)
			}
			before := buf.Len()
			if err := e.Run(r); err != nil {
				t.Fatal(err)
			}
			out := buf.String()[before:]
			if !strings.Contains(strings.ToLower(out), strings.ToLower(c.want)) {
				t.Errorf("%s output missing %q:\n%s", c.name, c.want, out)
			}
		})
	}
}

func TestFig15GeomeanPresent(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner(&buf)
	if err := Fig15(r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("Fig. 15 must report the geometric mean")
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("Fig. 15 must report PHAST speedups over baselines")
	}
}

func TestAblationsSmoke(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(Options{
		Apps:         []string{"511.povray"},
		Instructions: 20000,
		Out:          &buf,
	})
	for _, name := range []string{"abl-conf", "abl-tables", "abl-train", "abl-filter"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"confidence", "history length set", "update point", "filtering"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
