package experiments

import (
	"io"
	"testing"

	"repro/internal/stats"
)

// TestCalibrationOrdering runs the Fig. 15 core on a subset chosen to
// exercise each predictor's characteristic weakness and asserts the paper's
// ordering: PHAST clearly above Store Sets, at or near NoSQ and the
// MDP-TAGE family. (The full-suite numbers live in results/ and
// EXPERIMENTS.md; this is the fast regression guard.)
func TestCalibrationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is not for -short")
	}
	apps := []string{"502.gcc_5", "526.blender", "511.povray", "541.leela",
		"500.perlbench_3", "557.xz_2", "510.parest"}
	r := NewRunner(Options{Apps: apps, Instructions: 120000, Out: io.Discard})
	ideal, err := r.RunApps("alderlake", "ideal", false)
	if err != nil {
		t.Fatal(err)
	}
	geo := map[string]float64{}
	for _, pred := range []string{"storesets", "nosq", "mdptage", "phast"} {
		runs, err := r.RunApps("alderlake", pred, false)
		if err != nil {
			t.Fatal(err)
		}
		ratios := make([]float64, len(runs))
		for i := range runs {
			ratios[i] = runs[i].Speedup(ideal[i])
		}
		geo[pred] = stats.GeoMean(ratios)
	}
	t.Logf("IPC vs ideal: phast=%.4f mdptage=%.4f nosq=%.4f storesets=%.4f",
		geo["phast"], geo["mdptage"], geo["nosq"], geo["storesets"])
	if geo["phast"] <= geo["storesets"] {
		t.Errorf("PHAST (%.4f) must beat Store Sets (%.4f) on the pathology subset",
			geo["phast"], geo["storesets"])
	}
	if geo["phast"] < geo["nosq"]-0.02 {
		t.Errorf("PHAST (%.4f) too far below NoSQ (%.4f)", geo["phast"], geo["nosq"])
	}
	if geo["phast"] < 0.93 {
		t.Errorf("PHAST at %.3f of ideal on the hard subset", geo["phast"])
	}
}
