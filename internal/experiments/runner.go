// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §6 for the experiment index). cmd/paperfigs and
// the repository benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options scope an experiment run.
type Options struct {
	// Apps is the workload list (default: the whole suite).
	Apps []string
	// Instructions per run (default sim.DefaultInstructions).
	Instructions int
	// Out receives the rendered tables (default discards; cmd sets stdout).
	Out io.Writer
	// Workers bounds app-level parallelism (default min(8, NumCPU)).
	Workers int
	// CacheDir roots the persistent run cache; empty keeps memoisation
	// in-process only (every prior release's behaviour).
	CacheDir string
	// Metrics receives the runner's counters (cache hits/misses, runs
	// simulated, simulator wall-time). Default: a private registry,
	// readable via Runner.Metrics.
	Metrics *stats.Metrics
}

func (o Options) norm() Options {
	if len(o.Apps) == 0 {
		o.Apps = workload.Names()
	}
	if o.Instructions == 0 {
		o.Instructions = sim.DefaultInstructions
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Metrics == nil {
		o.Metrics = stats.NewMetrics()
	}
	return o
}

// Runner executes simulations behind a layered cache (in-process map →
// persistent store → simulate, see internal/runcache) so figures sharing
// runs (every figure needs the ideal baseline) pay for them once — and,
// with a cache directory, pay for them once across process invocations.
// All fan-out goes through one shared worker pool.
type Runner struct {
	opt   Options
	cache *runcache.Cache
	sched *scheduler
}

// NewRunner builds a runner for the given options.
func NewRunner(opt Options) *Runner {
	opt = opt.norm()
	var disk *runcache.Store
	if opt.CacheDir != "" {
		disk = runcache.NewStore(opt.CacheDir)
	}
	return &Runner{
		opt:   opt,
		cache: runcache.New(disk, opt.Metrics),
		sched: newScheduler(opt.Workers),
	}
}

// Opt returns the normalised options.
func (r *Runner) Opt() Options { return r.opt }

// Metrics returns the runner's counter registry.
func (r *Runner) Metrics() *stats.Metrics { return r.opt.Metrics }

// Close stops the worker pool. It is safe to call more than once; using
// the runner's batch APIs after Close panics.
func (r *Runner) Close() { r.sched.close() }

// Run executes (or recalls) one simulation.
func (r *Runner) Run(app, machine, pred string, fwdOff bool) (*stats.Run, error) {
	return r.RunConfig(sim.Config{
		App: app, Machine: machine, Predictor: pred,
		Instructions: r.opt.Instructions, FwdFilterOff: fwdOff,
	})
}

// RunConfig executes (or recalls) the simulation described by cfg. The
// runner's instruction count applies when cfg leaves it zero.
func (r *Runner) RunConfig(cfg sim.Config) (*stats.Run, error) {
	if cfg.Instructions == 0 {
		cfg.Instructions = r.opt.Instructions
	}
	return r.cache.Run(cfg)
}

// RunConfigs executes a batch of simulations on the shared worker pool and
// returns runs in input order. The first error aborts the result (after
// every job finishes).
func (r *Runner) RunConfigs(cfgs []sim.Config) ([]*stats.Run, error) {
	runs := make([]*stats.Run, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		wg.Add(1)
		r.sched.submit(func() {
			defer wg.Done()
			runs[i], errs[i] = r.RunConfig(cfg)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// ForEachApp runs fn(i, app) for every app on the shared worker pool and
// returns the first error once all have finished. It is the escape hatch
// for experiments needing more than cached stats.Run counters (predictor
// internals via sim.RunCore); such work bypasses the run cache.
func (r *Runner) ForEachApp(fn func(i int, app string) error) error {
	errs := make([]error, len(r.opt.Apps))
	var wg sync.WaitGroup
	for i, app := range r.opt.Apps {
		i, app := i, app
		wg.Add(1)
		r.sched.submit(func() {
			defer wg.Done()
			errs[i] = fn(i, app)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunApps executes one (machine, predictor) combination over every app in
// parallel and returns runs in app order.
func (r *Runner) RunApps(machine, pred string, fwdOff bool) ([]*stats.Run, error) {
	cfgs := make([]sim.Config, len(r.opt.Apps))
	for i, app := range r.opt.Apps {
		cfgs[i] = sim.Config{
			App: app, Machine: machine, Predictor: pred,
			Instructions: r.opt.Instructions, FwdFilterOff: fwdOff,
		}
	}
	return r.RunConfigs(cfgs)
}

// GeoIPCvsIdeal returns the geometric-mean IPC of a predictor normalised to
// the ideal oracle over the runner's apps on the given machine.
func (r *Runner) GeoIPCvsIdeal(machine, pred string, fwdOff bool) (float64, error) {
	ideal, err := r.RunApps(machine, "ideal", false)
	if err != nil {
		return 0, err
	}
	runs, err := r.RunApps(machine, pred, fwdOff)
	if err != nil {
		return 0, err
	}
	ratios := make([]float64, len(runs))
	for i := range runs {
		ratios[i] = runs[i].Speedup(ideal[i])
	}
	return stats.GeoMean(ratios), nil
}

// MeanMPKI returns the arithmetic-mean violation and false-dependence MPKI
// of a predictor over the runner's apps.
func (r *Runner) MeanMPKI(machine, pred string) (fn, fp float64, err error) {
	runs, err := r.RunApps(machine, pred, false)
	if err != nil {
		return 0, 0, err
	}
	fns := make([]float64, len(runs))
	fps := make([]float64, len(runs))
	for i, run := range runs {
		fns[i] = run.ViolationMPKI()
		fps[i] = run.FalseDepMPKI()
	}
	return stats.Mean(fns), stats.Mean(fps), nil
}

// WriteMetrics renders the runner's counters plus derived simulator
// throughput (micro-ops per second of simulator wall-time) and heap
// allocations per simulated run. The cache counters always appear, even at
// zero, so "second run re-simulated nothing" is a visible row rather than
// an absent one.
func (r *Runner) WriteMetrics(w io.Writer) {
	m := r.opt.Metrics
	sim.PublishMetrics(m)
	snap := m.Snapshot()
	for _, name := range []string{
		runcache.CounterMemHits, runcache.CounterDiskHits, runcache.CounterMisses,
		runcache.CounterRunsSimulated,
	} {
		if _, ok := snap[name]; !ok {
			snap[name] = 0
		}
	}
	t := stats.NewTable("runner metrics", "counter", "value")
	for _, name := range stats.SortedKeys(snap) {
		t.AddRowf(name, snap[name])
	}
	if ns := snap[runcache.CounterSimNanos]; ns > 0 {
		uops := float64(snap[runcache.CounterSimUops])
		t.AddRow("sim.uops.per_sec", fmt.Sprintf("%.0f", uops/(float64(ns)/1e9)))
	}
	if runs := snap[runcache.CounterRunsSimulated]; runs > 0 {
		t.AddRowf("sim.allocs.per_run", snap[runcache.CounterSimAllocObjs]/runs)
	}
	fmt.Fprint(w, t)
}
