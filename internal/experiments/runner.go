// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §6 for the experiment index). cmd/paperfigs and
// the repository benchmarks are thin wrappers over this package.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options scope an experiment run.
type Options struct {
	// Apps is the workload list (default: the whole suite).
	Apps []string
	// Instructions per run (default sim.DefaultInstructions).
	Instructions int
	// Out receives the rendered tables (default discards; cmd sets stdout).
	Out io.Writer
	// Workers bounds app-level parallelism (default min(8, NumCPU)).
	Workers int
	// CacheDir roots the persistent run cache; empty keeps memoisation
	// in-process only (every prior release's behaviour).
	CacheDir string
	// CacheMaxBytes caps the persistent cache's on-disk size; past it the
	// oldest entries are garbage-collected (runcache.Store.SetMaxBytes).
	// Zero keeps the cache unbounded.
	CacheMaxBytes int64
	// Metrics receives the runner's counters (cache hits/misses, runs
	// simulated, simulator wall-time). Default: a private registry,
	// readable via Runner.Metrics.
	Metrics *stats.Metrics
	// Context is the base context of every simulation the runner starts;
	// cancelling it (SIGINT in the cmds) aborts queued and in-flight runs.
	// Default context.Background().
	Context context.Context
	// RunTimeout bounds each simulation's wall-clock time; a run past the
	// deadline fails with sim.ErrTimeout. Zero means no deadline.
	RunTimeout time.Duration
	// KeepGoing disables fail-fast batching: every config in a batch runs
	// to completion and failures are reported per config instead of the
	// first error cancelling its still-queued siblings.
	KeepGoing bool
	// Intervals applies sim.Config.Intervals to every run whose config
	// leaves it zero: each simulation is split into this many concurrently-
	// simulated, oracle-gated intervals (see internal/parsim). Note the
	// semantic change interval counters carry; results cache under distinct
	// keys from sequential runs.
	Intervals int
	// TenantWeights maps tenant identities to scheduling weights for the
	// shared worker pool's weighted-fair policy (absent tenants weigh 1).
	// Tenancy rides each request's context (WithTenant); the zero map keeps
	// every tenant at equal share.
	TenantWeights map[string]int
	// TraceResolver fetches the decoded stream of an uploaded trace by
	// content digest — typically the local trace store plus, in a fleet,
	// its peer tier. It is consulted only on a full cache miss for a
	// "trace:<digest>" config whose stream is not yet provided to the
	// process: cached results never require the trace bytes. Nil means
	// trace-app runs succeed only for streams already provided
	// (sim.ProvideTrace).
	TraceResolver TraceResolver
}

// TraceResolver fetches an uploaded trace's decoded stream by its content
// digest. Implementations must return the decode of the canonical bytes
// hashing to digest; errors surface as typed config errors on the runs
// that needed the trace.
type TraceResolver func(ctx context.Context, digest string) (*trace.Trace, error)

func (o Options) norm() Options {
	if len(o.Apps) == 0 {
		o.Apps = workload.Names()
	}
	if o.Instructions == 0 {
		o.Instructions = sim.DefaultInstructions
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Metrics == nil {
		o.Metrics = stats.NewMetrics()
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// Result pairs one Config of a batch with its outcome: exactly one of Run
// and Err is set.
type Result struct {
	Config sim.Config
	Run    *stats.Run
	Err    error
}

// Runner executes simulations behind a layered cache (in-process map →
// persistent store → simulate, see internal/runcache) so figures sharing
// runs (every figure needs the ideal baseline) pay for them once — and,
// with a cache directory, pay for them once across process invocations.
// All fan-out goes through one shared worker pool.
//
// Failure containment: a failed run surfaces as a typed error (sim.SimError
// — recovered panic, watchdog deadlock, timeout, cancellation) that poisons
// its own result, bumps a "sim.errors.<kind>" counter and lands in the
// failure log (WriteFailures), never as a crashed process.
type Runner struct {
	opt   Options
	cache *runcache.Cache
	sched *scheduler

	mu       sync.Mutex
	failures []Result // failed runs, in completion order
}

// NewRunner builds a runner for the given options.
func NewRunner(opt Options) *Runner {
	opt = opt.norm()
	var disk *runcache.Store
	if opt.CacheDir != "" {
		disk = runcache.NewStore(opt.CacheDir)
	}
	cache := runcache.New(disk, opt.Metrics)
	if disk != nil && opt.CacheMaxBytes > 0 {
		// After New so the startup sweep's evictions land in the registry.
		disk.SetMaxBytes(opt.CacheMaxBytes)
	}
	sched := newScheduler(opt.Workers)
	sched.weights = opt.TenantWeights
	sched.metrics = opt.Metrics
	return &Runner{
		opt:   opt,
		cache: cache,
		sched: sched,
	}
}

// Opt returns the normalised options.
func (r *Runner) Opt() Options { return r.opt }

// Metrics returns the runner's counter registry.
func (r *Runner) Metrics() *stats.Metrics { return r.opt.Metrics }

// SetPeerFetch installs f as the run cache's peer tier (memory → disk →
// peer → simulate; see runcache.Cache.SetPeerFetch). The serving layer
// wires this to the fleet's peer cache-fetch client so a local miss asks
// the ring's other owners before paying for a simulation.
func (r *Runner) SetPeerFetch(f runcache.PeerFetchFunc) { r.cache.SetPeerFetch(f) }

// SetTraceResolver installs f as the uploaded-trace resolver (see
// Options.TraceResolver). Like SetPeerFetch it exists to break the
// construction cycle with the serving layer — the server needs the runner as
// its backend, and the runner needs the server's fleet-aware trace fetch —
// and must be called before the runner starts serving work.
func (r *Runner) SetTraceResolver(f TraceResolver) { r.opt.TraceResolver = f }

// CachedRun reports the locally cached result under key (memory, then
// disk) without ever simulating — the lookup behind the fleet's
// GET /v1/peer/cache/{key} endpoint.
func (r *Runner) CachedRun(key string) (*stats.Run, bool) { return r.cache.Cached(key) }

// Close stops the worker pool. It is safe to call more than once; batch
// APIs called after Close fail with a per-config error.
func (r *Runner) Close() { r.sched.close() }

// recordFailure turns one failed run into its observable forms: the
// per-kind error counter and a row in the failure log.
func (r *Runner) recordFailure(cfg sim.Config, err error) {
	r.opt.Metrics.Add(sim.CounterErrorPrefix+string(sim.KindOf(err)), 1)
	r.mu.Lock()
	r.failures = append(r.failures, Result{Config: cfg, Err: err})
	r.mu.Unlock()
}

// Failures returns a snapshot of every failed run so far.
func (r *Runner) Failures() []Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Result(nil), r.failures...)
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(app, machine, pred string, fwdOff bool) (*stats.Run, error) {
	return r.RunConfig(sim.Config{
		App: app, Machine: machine, Predictor: pred,
		Instructions: r.opt.Instructions, FwdFilterOff: fwdOff,
	})
}

// RunConfig executes (or recalls) the simulation described by cfg under the
// runner's base context. The runner's instruction count applies when cfg
// leaves it zero.
func (r *Runner) RunConfig(cfg sim.Config) (*stats.Run, error) {
	return r.RunConfigContext(r.opt.Context, cfg)
}

// RunConfigContext is RunConfig bounded by ctx (which must descend from the
// runner's base context for SIGINT to reach it; batch APIs pass their
// per-batch cancel context). Options.RunTimeout is layered on per call, so
// the deadline clocks one simulation, not the batch. Failures are recorded
// (counter + failure log) before returning.
func (r *Runner) RunConfigContext(ctx context.Context, cfg sim.Config) (run *stats.Run, err error) {
	if cfg.Instructions == 0 {
		cfg.Instructions = r.opt.Instructions
	}
	if cfg.Intervals == 0 {
		cfg.Intervals = r.opt.Intervals
	}
	cfg = cfg.Normalized() // failure rows and cache keys see resolved names
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("experiments: run %s/%s/%s panicked outside the simulator: %v\n%s",
				cfg.App, cfg.Machine, cfg.Predictor, v, debug.Stack())
		}
		if err != nil {
			r.recordFailure(cfg, err)
		}
	}()
	if r.opt.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opt.RunTimeout)
		defer cancel()
	}
	return r.cache.GetOrRun(ctx, cfg, func(ctx context.Context) (*stats.Run, error) {
		// Full cache miss: for an uploaded-trace config, materialise the
		// stream (store, then fleet peers) before simulating. Cached
		// results never pay this — a node can serve a digest it has never
		// held the trace bytes for.
		if err := r.resolveTraceApp(ctx, cfg); err != nil {
			return nil, err
		}
		return sim.RunContext(ctx, cfg)
	})
}

// resolveTraceApp ensures cfg's uploaded trace (if cfg is a trace-app run)
// is provided to the process, consulting Options.TraceResolver. Non-trace
// apps, malformed digests and a nil resolver all fall through to
// sim.RunContext, which reports them typed.
func (r *Runner) resolveTraceApp(ctx context.Context, cfg sim.Config) error {
	digest, ok, err := sim.TraceDigest(cfg.App)
	if !ok || err != nil || r.opt.TraceResolver == nil || sim.TraceProvided(digest) {
		return nil
	}
	tr, rerr := r.opt.TraceResolver(ctx, digest)
	if rerr != nil {
		return &sim.SimError{Kind: sim.ErrConfig, Config: cfg, Err: rerr}
	}
	sim.ProvideTrace(digest, tr)
	return nil
}

// RunConfigScheduledContext executes one simulation through the shared
// weighted-fair worker pool (on ctx's tenant share) instead of inline on
// the calling goroutine — the serving layer's single-run entry point, so
// HTTP traffic competes for workers under the same fairness policy as
// batches. Inline callers (jobs already on the pool) must keep using
// RunConfigContext: a pool job waiting on a sub-job could starve the pool.
func (r *Runner) RunConfigScheduledContext(ctx context.Context, cfg sim.Config) (*stats.Run, error) {
	type outcome struct {
		run *stats.Run
		err error
	}
	ch := make(chan outcome, 1)
	err := r.sched.submitCtx(ctx, TenantFrom(ctx), func() {
		run, rerr := r.RunConfigContext(ctx, cfg)
		ch <- outcome{run, rerr}
	})
	if err != nil {
		return nil, err
	}
	out := <-ch
	return out.run, out.err
}

// RunConfigs executes a batch of simulations on the shared worker pool and
// returns runs in input order. By default the batch fails fast: the first
// failure cancels still-queued and in-flight siblings and the root-cause
// error (not a secondary cancellation) is returned once every job has
// finished. With Options.KeepGoing all configs run regardless and the first
// failure by input order is returned.
func (r *Runner) RunConfigs(cfgs []sim.Config) ([]*stats.Run, error) {
	results := r.RunConfigsDetailed(cfgs)
	runs := make([]*stats.Run, len(results))
	var batchErr error
	for i, res := range results {
		runs[i] = res.Run
		if res.Err == nil {
			continue
		}
		// Prefer the failure that started the collapse over the cancelled
		// siblings it knocked out.
		if batchErr == nil || (sim.KindOf(batchErr) == sim.ErrCancelled && sim.KindOf(res.Err) != sim.ErrCancelled) {
			batchErr = res.Err
		}
	}
	if batchErr != nil {
		return nil, batchErr
	}
	return runs, nil
}

// RunConfigsDetailed executes a batch and reports every config's individual
// outcome in input order, error rows included — the keep-going entry point
// for callers that tabulate partial results.
func (r *Runner) RunConfigsDetailed(cfgs []sim.Config) []Result {
	return r.RunConfigsDetailedContext(r.opt.Context, cfgs)
}

// RunConfigsDetailedContext is RunConfigsDetailed bounded by ctx — the
// serving layer's entry point, where each HTTP request carries its own
// deadline that must cover the whole batch. ctx should descend from the
// runner's base context; the batch-level fail-fast/keep-going policy is the
// runner's.
func (r *Runner) RunConfigsDetailedContext(ctx context.Context, cfgs []sim.Config) []Result {
	tenant := TenantFrom(ctx)
	ctx, cancel := r.batchContextFrom(ctx)
	defer cancel()
	r.prewarmTraces(ctx, tenant, cfgs)
	results := make([]Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		wg.Add(1)
		err := r.sched.submitCtx(ctx, tenant, func() {
			defer wg.Done()
			run, err := r.RunConfigContext(ctx, cfg)
			results[i] = Result{Config: cfg, Run: run, Err: err}
			if err != nil {
				cancel()
			}
		})
		if err != nil {
			wg.Done()
			// A queued sibling withdrawn by fail-fast cancellation gets the
			// same typed, failure-logged outcome it would have had running
			// with a dead context; a closed pool stays a bare typed error.
			if !errors.Is(err, errSchedulerClosed) {
				cfgN := cfg
				if cfgN.Instructions == 0 {
					cfgN.Instructions = r.opt.Instructions
				}
				cfgN = cfgN.Normalized()
				err = &sim.SimError{Kind: sim.KindOf(err), Config: cfgN, Err: err}
				r.recordFailure(cfgN, err)
			}
			results[i] = Result{Config: cfg, Err: err}
		}
	}
	wg.Wait()
	return results
}

// prewarmTraces decodes and interns, in parallel on the worker pool, every
// workload stream that more than one config of the batch will run. A
// multi-config sweep over one workload then drives all its cores from the
// one shared interned trace (with its prefix structures prebuilt) instead
// of the first-scheduled run paying the decode on its critical path while
// its siblings queue behind sim's single-flight. Single-config workloads
// are left to their run — prewarming them would do the same work with an
// extra pool round-trip. Errors are deliberately dropped: the runs
// themselves surface them per config, with proper failure accounting.
func (r *Runner) prewarmTraces(ctx context.Context, tenant string, cfgs []sim.Config) {
	type key struct {
		app  string
		n    int
		seed int64
	}
	counts := make(map[key]int, len(cfgs))
	for _, cfg := range cfgs {
		n := cfg.Instructions
		if n == 0 {
			n = r.opt.Instructions
		}
		counts[key{cfg.App, n, cfg.Seed}]++
	}
	var wg sync.WaitGroup
	for k, n := range counts {
		if n < 2 {
			continue
		}
		k := k
		wg.Add(1)
		err := r.sched.submitCtx(ctx, tenant, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			_ = sim.PrewarmTrace(k.app, k.n, k.seed)
		})
		if err != nil {
			wg.Done()
		}
	}
	wg.Wait()
}

// batchContext derives one batch's context from the runner's base: with
// fail-fast (the default) the returned cancel aborts the batch's siblings;
// with KeepGoing it is a no-op so one failure never touches the others.
func (r *Runner) batchContext() (context.Context, context.CancelFunc) {
	return r.batchContextFrom(r.opt.Context)
}

// batchContextFrom is batchContext rooted at an arbitrary parent (a server
// request's context rather than the runner's base).
func (r *Runner) batchContextFrom(parent context.Context) (context.Context, context.CancelFunc) {
	if r.opt.KeepGoing {
		return parent, func() {}
	}
	return context.WithCancel(parent)
}

// ForEachApp runs fn(i, app) for every app on the shared worker pool and
// returns the first error once all have finished. It is the escape hatch
// for experiments needing more than cached stats.Run counters (predictor
// internals via sim.RunCore); such work bypasses the run cache. fn does not
// take a context, so fail-fast cancellation stops still-queued apps from
// starting but lets in-flight ones finish; a panicking fn poisons its own
// app's error, not the process.
func (r *Runner) ForEachApp(fn func(i int, app string) error) error {
	ctx, cancel := r.batchContext()
	defer cancel()
	errs := make([]error, len(r.opt.Apps))
	var wg sync.WaitGroup
	for i, app := range r.opt.Apps {
		i, app := i, app
		wg.Add(1)
		err := r.sched.submit(func() {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = protect(func() error { return fn(i, app) })
			if errs[i] != nil {
				cancel()
			}
		})
		if err != nil {
			wg.Done()
			errs[i] = err
		}
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (sim.KindOf(firstErr) == sim.ErrCancelled && sim.KindOf(err) != sim.ErrCancelled) {
			firstErr = err
		}
	}
	return firstErr
}

// protect runs fn, converting a panic into an error.
func protect(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("experiments: app job panicked: %v\n%s", v, debug.Stack())
		}
	}()
	return fn()
}

// RunApps executes one (machine, predictor) combination over every app in
// parallel and returns runs in app order.
func (r *Runner) RunApps(machine, pred string, fwdOff bool) ([]*stats.Run, error) {
	cfgs := make([]sim.Config, len(r.opt.Apps))
	for i, app := range r.opt.Apps {
		cfgs[i] = sim.Config{
			App: app, Machine: machine, Predictor: pred,
			Instructions: r.opt.Instructions, FwdFilterOff: fwdOff,
		}
	}
	return r.RunConfigs(cfgs)
}

// GeoIPCvsIdeal returns the geometric-mean IPC of a predictor normalised to
// the ideal oracle over the runner's apps on the given machine.
func (r *Runner) GeoIPCvsIdeal(machine, pred string, fwdOff bool) (float64, error) {
	ideal, err := r.RunApps(machine, "ideal", false)
	if err != nil {
		return 0, err
	}
	runs, err := r.RunApps(machine, pred, fwdOff)
	if err != nil {
		return 0, err
	}
	ratios := make([]float64, len(runs))
	for i := range runs {
		ratios[i] = runs[i].Speedup(ideal[i])
	}
	return stats.GeoMean(ratios), nil
}

// MeanMPKI returns the arithmetic-mean violation and false-dependence MPKI
// of a predictor over the runner's apps.
func (r *Runner) MeanMPKI(machine, pred string) (fn, fp float64, err error) {
	runs, err := r.RunApps(machine, pred, false)
	if err != nil {
		return 0, 0, err
	}
	fns := make([]float64, len(runs))
	fps := make([]float64, len(runs))
	for i, run := range runs {
		fns[i] = run.ViolationMPKI()
		fps[i] = run.FalseDepMPKI()
	}
	return stats.Mean(fns), stats.Mean(fps), nil
}

// WriteMetrics renders the runner's counters plus derived simulator
// throughput (micro-ops per second of simulator wall-time) and heap
// allocations per simulated run. The cache counters always appear, even at
// zero, so "second run re-simulated nothing" is a visible row rather than
// an absent one.
func (r *Runner) WriteMetrics(w io.Writer) {
	m := r.opt.Metrics
	sim.PublishMetrics(m)
	snap := m.Snapshot()
	for _, name := range []string{
		runcache.CounterMemHits, runcache.CounterDiskHits, runcache.CounterMisses,
		runcache.CounterRunsSimulated,
	} {
		if _, ok := snap[name]; !ok {
			snap[name] = 0
		}
	}
	t := stats.NewTable("runner metrics", "counter", "value")
	for _, name := range stats.SortedKeys(snap) {
		t.AddRowf(name, snap[name])
	}
	if ns := snap[runcache.CounterSimNanos]; ns > 0 {
		uops := float64(snap[runcache.CounterSimUops])
		t.AddRow("sim.uops.per_sec", fmt.Sprintf("%.0f", uops/(float64(ns)/1e9)))
	}
	if runs := snap[runcache.CounterRunsSimulated]; runs > 0 {
		t.AddRowf("sim.allocs.per_run", snap[runcache.CounterSimAllocObjs]/runs)
	}
	fmt.Fprint(w, t)
}

// WriteFailures renders one row per failed run — config, error kind, first
// line of the error — or nothing when every run succeeded. The full errors
// (panic stacks, pipeline dumps) are not table material; they remain on the
// error values for callers that log them.
func (r *Runner) WriteFailures(w io.Writer) {
	failures := r.Failures()
	if len(failures) == 0 {
		return
	}
	t := stats.NewTable(fmt.Sprintf("failed runs (%d)", len(failures)), "config", "kind", "error")
	for _, f := range failures {
		c := f.Config
		msg := f.Err.Error()
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] + " ..."
		}
		t.AddRow(fmt.Sprintf("%s/%s/%s", c.App, c.Machine, c.Predictor),
			string(sim.KindOf(f.Err)), msg)
	}
	fmt.Fprint(w, t)
}
