// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §6 for the experiment index). cmd/paperfigs and
// the repository benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options scope an experiment run.
type Options struct {
	// Apps is the workload list (default: the whole suite).
	Apps []string
	// Instructions per run (default sim.DefaultInstructions).
	Instructions int
	// Out receives the rendered tables (default discards; cmd sets stdout).
	Out io.Writer
	// Workers bounds app-level parallelism (default min(8, NumCPU)).
	Workers int
}

func (o Options) norm() Options {
	if len(o.Apps) == 0 {
		o.Apps = workload.Names()
	}
	if o.Instructions == 0 {
		o.Instructions = sim.DefaultInstructions
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	return o
}

// Runner executes simulations with memoisation, so figures sharing runs
// (every figure needs the ideal baseline) pay for them once.
type Runner struct {
	opt   Options
	mu    sync.Mutex
	cache map[string]*stats.Run
}

// NewRunner builds a runner for the given options.
func NewRunner(opt Options) *Runner {
	return &Runner{opt: opt.norm(), cache: map[string]*stats.Run{}}
}

// Opt returns the normalised options.
func (r *Runner) Opt() Options { return r.opt }

type runKey struct {
	app, machine, pred string
	fwdOff             bool
}

// String renders the cache key.
func (k runKey) String() string {
	return fmt.Sprintf("%s|%s|%s|%t", k.app, k.machine, k.pred, k.fwdOff)
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(app, machine, pred string, fwdOff bool) (*stats.Run, error) {
	key := runKey{app, machine, pred, fwdOff}.String()
	r.mu.Lock()
	if run, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return run, nil
	}
	r.mu.Unlock()
	run, err := sim.Run(sim.Config{
		App: app, Machine: machine, Predictor: pred,
		Instructions: r.opt.Instructions, FwdFilterOff: fwdOff,
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[key] = run
	r.mu.Unlock()
	return run, nil
}

// RunApps executes one (machine, predictor) combination over every app in
// parallel and returns runs in app order.
func (r *Runner) RunApps(machine, pred string, fwdOff bool) ([]*stats.Run, error) {
	apps := r.opt.Apps
	runs := make([]*stats.Run, len(apps))
	errs := make([]error, len(apps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.opt.Workers)
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runs[i], errs[i] = r.Run(app, machine, pred, fwdOff)
		}(i, app)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// GeoIPCvsIdeal returns the geometric-mean IPC of a predictor normalised to
// the ideal oracle over the runner's apps on the given machine.
func (r *Runner) GeoIPCvsIdeal(machine, pred string, fwdOff bool) (float64, error) {
	ideal, err := r.RunApps(machine, "ideal", false)
	if err != nil {
		return 0, err
	}
	runs, err := r.RunApps(machine, pred, fwdOff)
	if err != nil {
		return 0, err
	}
	ratios := make([]float64, len(runs))
	for i := range runs {
		ratios[i] = runs[i].Speedup(ideal[i])
	}
	return stats.GeoMean(ratios), nil
}

// MeanMPKI returns the arithmetic-mean violation and false-dependence MPKI
// of a predictor over the runner's apps.
func (r *Runner) MeanMPKI(machine, pred string) (fn, fp float64, err error) {
	runs, err := r.RunApps(machine, pred, false)
	if err != nil {
		return 0, 0, err
	}
	fns := make([]float64, len(runs))
	fps := make([]float64, len(runs))
	for i, run := range runs {
		fns[i] = run.ViolationMPKI()
		fps[i] = run.FalseDepMPKI()
	}
	return stats.Mean(fns), stats.Mean(fps), nil
}
