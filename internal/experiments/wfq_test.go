package experiments

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// queuedWaiters reports how many jobs a tenant has waiting (not running).
func (s *scheduler) queuedWaiters(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.tenants[tenant]; q != nil {
		return len(q.waiters)
	}
	return 0
}

// inService reports how many workers a tenant currently occupies.
func (s *scheduler) inService(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.tenants[tenant]; q != nil {
		return q.inService
	}
	return 0
}

// waitFor polls cond until true or the deadline, failing the test after.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// enqueue submits a job from a goroutine (submit blocks until a worker
// takes it) and waits until it is visibly queued, fixing the queue order
// across successive calls. Only valid while every worker is blocked — a
// free worker would take the job instead of queueing it.
func enqueue(t *testing.T, s *scheduler, ctx context.Context, tenant string, errs chan<- error, job func()) {
	t.Helper()
	before := s.queuedWaiters(tenant)
	go func() { errs <- s.submitCtx(ctx, tenant, job) }()
	waitFor(t, "job to enter the queue", func() bool {
		return s.queuedWaiters(tenant) == before+1
	})
}

// TestSchedulerLightTenantNotStarved pins the headline fairness property
// the single FIFO lacked: with a heavy tenant's jobs queued ahead, a light
// tenant's jobs are served interleaved, not behind the whole backlog.
// One worker makes the service order deterministic.
func TestSchedulerLightTenantNotStarved(t *testing.T) {
	s := newScheduler(1)
	defer s.close()
	gate := make(chan struct{})
	errs := make(chan error, 16)

	var mu sync.Mutex
	var order []string
	record := func(tag string) func() {
		return func() {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}

	// Occupy the only worker, then queue the heavy backlog first and the
	// light tenant's two jobs last.
	if err := s.submitCtx(context.Background(), "heavy", func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		enqueue(t, s, context.Background(), "heavy", errs, record("H"))
	}
	for i := 0; i < 2; i++ {
		enqueue(t, s, context.Background(), "light", errs, record("L"))
	}
	close(gate)
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all jobs to run", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 6
	})

	mu.Lock()
	got := strings.Join(order, "")
	mu.Unlock()
	lastLight := strings.LastIndex(got, "L")
	if lastLight > 3 {
		t.Fatalf("light tenant starved: service order %q (both light jobs must land in the first 4 slots)", got)
	}
	t.Logf("service order: %s", got)
}

// TestSchedulerWeightedShares: with the pool saturated by two tenants, a
// weight-2 tenant occupies twice the workers of a weight-1 tenant.
func TestSchedulerWeightedShares(t *testing.T) {
	s := newScheduler(3)
	s.weights = map[string]int{"big": 2, "small": 1}
	defer s.close()
	warmGate := make(chan struct{})
	gate := make(chan struct{})
	errs := make(chan error, 16)

	// Park every worker on a warm-up tenant, then build both tenants'
	// backlogs deterministically while nothing can be taken.
	for i := 0; i < 3; i++ {
		if err := s.submitCtx(context.Background(), "warm", func() { <-warmGate }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		enqueue(t, s, context.Background(), "big", errs, func() { <-gate })
		enqueue(t, s, context.Background(), "small", errs, func() { <-gate })
	}
	// Free the workers: the fair picks must settle at 2 big : 1 small.
	close(warmGate)
	waitFor(t, "weighted occupancy 2:1", func() bool {
		return s.inService("big") == 2 && s.inService("small") == 1
	})
	close(gate)
	for i := 0; i < 12; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSchedulerCancelledTenantFreesQueueShare is the fail-fast regression
// guard for the weighted-fair rewrite: cancelling a tenant's queued batch
// removes its jobs immediately (each blocked submit returns the context
// error, the share empties without any job running) and another tenant's
// work proceeds. Run under -race; the final close catches leaked workers.
func TestSchedulerCancelledTenantFreesQueueShare(t *testing.T) {
	s := newScheduler(1)
	defer s.close()
	gate := make(chan struct{})
	errs := make(chan error, 8)

	if err := s.submitCtx(context.Background(), "other", func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		enqueue(t, s, ctx, "batch", errs, func() { ran <- struct{}{} })
	}
	if got := s.queuedWaiters("batch"); got != 3 {
		t.Fatalf("queued %d, want 3", got)
	}

	cancel()
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled submit returned %v, want context.Canceled", err)
		}
	}
	// The share is freed synchronously with the submit returning — no
	// waiting on the still-blocked worker.
	if got := s.queuedWaiters("batch"); got != 0 {
		t.Fatalf("cancelled tenant still holds %d queued jobs", got)
	}

	// Another tenant's job queued after the cancellation runs as soon as
	// the worker frees; none of the cancelled jobs ever run.
	done := make(chan struct{})
	enqueue(t, s, context.Background(), "late", errs, func() { close(done) })
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("job queued after cancellation never ran")
	}
	select {
	case <-ran:
		t.Fatal("a cancelled job ran")
	default:
	}
}

// TestRunnerCancelledBatchLeaksNoGoroutines drives the regression at the
// Runner level: a fail-fast batch cancelled by its caller returns promptly
// with typed outcomes for every config and leaves no scheduler goroutines
// blocked on the batch (beyond the idle worker pool).
func TestRunnerCancelledBatchLeaksNoGoroutines(t *testing.T) {
	r := NewRunner(Options{Instructions: 400_000, Workers: 2})
	defer r.Close()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(WithTenant(context.Background(), "batch"))
	cfgs := make([]sim.Config, 12)
	for i := range cfgs {
		cfgs[i] = sim.Config{App: "511.povray", Predictor: "none", Seed: int64(i + 1)}
	}
	resultsCh := make(chan []Result, 1)
	go func() { resultsCh <- r.RunConfigsDetailedContext(ctx, cfgs) }()
	time.Sleep(10 * time.Millisecond) // let the batch occupy the pool
	cancel()

	var results []Result
	select {
	case results = <-resultsCh:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled batch did not return")
	}
	if len(results) != len(cfgs) {
		t.Fatalf("%d rows for %d configs", len(results), len(cfgs))
	}
	for i, res := range results {
		if res.Err == nil && res.Run == nil {
			t.Errorf("config %d: no outcome", i)
		}
	}
	// The cancelled tenant's share must be empty once the batch returned.
	waitFor(t, "batch share to drain", func() bool {
		return r.sched.queuedWaiters("batch") == 0 && r.sched.inService("batch") == 0
	})
	// Goroutine count settles back to before-batch levels (the idle worker
	// pool was already running or accounts for Workers extras).
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+r.opt.Workers+2
	})
}
