package experiments

import "context"

// DefaultTenant is the identity work runs under when its context carries no
// tenant — single-user tools (cmd/paperfigs, benchmarks, tests predating
// tenancy) all share one bucket and behave exactly as before the
// weighted-fair scheduler existed. Matches tracestore.DefaultTenant.
const DefaultTenant = "default"

type tenantCtxKey struct{}

// WithTenant stamps a tenant identity onto ctx. Work submitted under the
// returned context is scheduled on that tenant's weighted-fair queue share
// and counted under its per-tenant metrics. An empty tenant is a no-op.
//
// Tenancy rides the context, never sim.Config: a run's cache key must not
// depend on who asked for it, so two tenants requesting the same simulation
// share one cached result.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFrom returns ctx's tenant identity, or DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantCtxKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}
