package experiments

// Memory regression tests: results returned by the pipeline must not alias
// the simulator (a cached *stats.Run once retained the whole Core — trace,
// ROB and prefix arrays — which scaled to gigabytes across an experiment
// matrix).

import (
	"io"
	"runtime"
	"testing"

	"repro/internal/sim"
)

func heapMB() float64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / 1e6
}

func TestMemoryGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("memory regression checks are not for -short")
	}
	apps := []string{"511.povray", "502.gcc_1", "519.lbm", "505.mcf"}
	base := heapMB()
	for step, pred := range []string{"ideal", "phast", "storesets", "nosq", "unlimited-phast"} {
		for _, app := range apps {
			if _, err := sim.Run(sim.Config{App: app, Predictor: pred, Instructions: 150000}); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("step %d (%s): heap %.1f MB", step, pred, heapMB())
	}
	_ = io.Discard
	if grew := heapMB() - base; grew > 120 {
		t.Errorf("heap grew by %.1f MB across 20 sequential runs", grew)
	}
}

func TestMemoryGrowthRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("memory regression checks are not for -short")
	}
	r := NewRunner(Options{
		Apps:         []string{"511.povray", "502.gcc_1", "519.lbm", "505.mcf"},
		Instructions: 150000,
		Out:          io.Discard,
	})
	base := heapMB()
	for _, pred := range []string{"ideal", "phast", "storesets", "nosq", "unlimited-phast"} {
		if _, err := r.RunApps("alderlake", pred, false); err != nil {
			t.Fatal(err)
		}
		t.Logf("%-16s heap %.1f MB", pred, heapMB())
	}
	if grew := heapMB() - base; grew > 120 {
		t.Errorf("runner retained %.1f MB across 20 runs", grew)
	}
}
