package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// MuopsWeightedIPC aggregates one config's IPC across a set of runs
// weighting each app by its micro-op count: total committed micro-ops over
// total cycles. This is the autotuner's scoring metric (internal/jobs) —
// unlike a geomean of per-app IPCs it cannot be gamed by a predictor that
// only helps the shortest app. Nil runs are skipped; no runs means 0.
func MuopsWeightedIPC(runs []*stats.Run) float64 {
	var committed, cycles uint64
	for _, r := range runs {
		if r == nil {
			continue
		}
		committed += r.Committed
		cycles += r.Cycles
	}
	if cycles == 0 {
		return 0
	}
	return float64(committed) / float64(cycles)
}

// ConfigLabel renders cfg as a canonical one-line label (App excluded — the
// label names a configuration, not a run). Defaultable fields are printed
// resolved, so two configs describing the same simulation label identically.
func ConfigLabel(cfg sim.Config) string {
	cfg.App = ""
	cfg = cfg.Normalized()
	parts := []string{
		"predictor=" + cfg.Predictor,
		"machine=" + cfg.Machine,
		fmt.Sprintf("n=%d", cfg.Instructions),
	}
	if cfg.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", cfg.Seed))
	}
	if cfg.TrainAtDetect {
		parts = append(parts, "train_at_detect")
	}
	if cfg.SVWFilter {
		parts = append(parts, "svw_filter")
	} else if cfg.FwdFilterOff {
		parts = append(parts, "fwd_filter_off")
	}
	if cfg.BranchPredictor != "tagescl" {
		parts = append(parts, "bp="+cfg.BranchPredictor)
	}
	if cfg.Intervals > 1 {
		parts = append(parts, fmt.Sprintf("intervals=%d", cfg.Intervals))
	}
	return strings.Join(parts, " ")
}

// ConfigTable renders one config's per-app stats rows plus the
// Muops-weighted aggregate — the table a finished autotuner job reports for
// its winner and `paperfigs -config` prints for the same config, so the two
// are byte-comparable. runs must parallel apps (a nil run marks a failed
// app, rendered as a "failed" row so partial results stay visible).
func ConfigTable(cfg sim.Config, apps []string, runs []*stats.Run) *stats.Table {
	t := stats.NewTable("per-app stats — "+ConfigLabel(cfg),
		"app", "muops", "ipc", "viol_mpki", "falsedep_mpki", "branch_mpki")
	for i, app := range apps {
		if i >= len(runs) || runs[i] == nil {
			t.AddRow(app, "failed")
			continue
		}
		r := runs[i]
		t.AddRow(app,
			fmt.Sprintf("%d", r.Committed),
			fmt.Sprintf("%.4f", r.IPC()),
			fmt.Sprintf("%.3f", r.ViolationMPKI()),
			fmt.Sprintf("%.3f", r.FalseDepMPKI()),
			fmt.Sprintf("%.3f", r.BranchMPKI()))
	}
	var agg stats.Run
	for _, r := range runs {
		if r == nil {
			continue
		}
		agg.Committed += r.Committed
		agg.Cycles += r.Cycles
		agg.MemOrderViolations += r.MemOrderViolations
		agg.FalseDependencies += r.FalseDependencies
		agg.BranchMispredicts += r.BranchMispredicts
	}
	t.AddRow("all (muops-weighted)",
		fmt.Sprintf("%d", agg.Committed),
		fmt.Sprintf("%.4f", MuopsWeightedIPC(runs)),
		fmt.Sprintf("%.3f", agg.ViolationMPKI()),
		fmt.Sprintf("%.3f", agg.FalseDepMPKI()),
		fmt.Sprintf("%.3f", agg.BranchMPKI()))
	return t
}
