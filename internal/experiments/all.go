package experiments

import "fmt"

// Experiment names one reproducible table or figure.
type Experiment struct {
	Name string
	Desc string
	Run  func(*Runner) error
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "30-year branch vs MDP MPKI timeline (Nehalem-like core)", Fig01},
		{"fig2a", "MDP MPKI across processor generations", Fig02a},
		{"fig2b", "performance gap to ideal across generations", Fig02b},
		{"fig4", "loads depending on multiple stores", Fig04},
		{"fig6", "unlimited predictors: IPC and paths tracked", Fig06},
		{"fig7", "UnlimitedPHAST IPC vs ideal per app", Fig07},
		{"fig8", "UnlimitedPHAST MPKI per app", Fig08},
		{"fig9", "paths registered per app", Fig09},
		{"fig10", "unique conflicts per history length", Fig10},
		{"fig11", "IPC at several maximum history lengths", Fig11},
		{"fig12", "forwarding-filter ablation", Fig12},
		{"fig13", "performance vs storage sweep", Fig13},
		{"fig14", "MPKI per app, all predictors", Fig14},
		{"fig15", "IPC per app normalised to ideal, all predictors", Fig15},
		{"fig16", "predictor energy", Fig16},
		{"table1", "system configuration", Table1},
		{"table2", "predictor configurations", Table2},
		{"mix", "suite instruction mix (sanity)", SuiteMix},
		{"abl-train", "ablation: predictor update point (§IV-A1)", AblationTrainPoint},
		{"abl-conf", "ablation: PHAST confidence ceiling", AblationConfidence},
		{"abl-tables", "ablation: PHAST history length set", AblationHistoryTables},
		{"abl-filter", "ablation: mis-speculation filtering (FWD vs SVW vs none)", AblationFilter},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// RunAll executes every experiment against one shared runner (and its
// memoised simulation cache). The first failure aborts the sequence unless
// the runner was built with Options.KeepGoing, in which case the failed
// experiment is reported inline and the next one still runs — failed
// simulations become rows in the runner's failure log rather than a dead
// process. Cancellation of the runner's base context (SIGINT) always stops
// the sequence; completed tables have already been flushed to Out.
func RunAll(r *Runner) error {
	for _, e := range All() {
		fmt.Fprintf(r.Opt().Out, "== %s: %s ==\n", e.Name, e.Desc)
		err := e.Run(r)
		if err == nil {
			continue
		}
		if r.Opt().KeepGoing && r.Opt().Context.Err() == nil {
			fmt.Fprintf(r.Opt().Out, "== %s FAILED: %v ==\n", e.Name, err)
			continue
		}
		return fmt.Errorf("%s: %w", e.Name, err)
	}
	return nil
}
