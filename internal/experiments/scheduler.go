package experiments

import (
	"errors"
	"log"
	"runtime/debug"
	"sync"
)

// errSchedulerClosed is returned by submit after close; batch APIs surface
// it as the per-job error rather than panicking the caller.
var errSchedulerClosed = errors.New("experiments: runner is closed")

// scheduler is the fixed-size worker pool shared by every figure a Runner
// regenerates. All fan-out (RunApps, RunConfigs, the ablation sweeps) feeds
// one pool, so app-level parallelism is bounded globally rather than per
// call site and runs batched across figures contend for the same workers.
type scheduler struct {
	jobs      chan func()
	workers   int
	startOnce sync.Once

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // submits past the closed check, pre-handoff
}

func newScheduler(workers int) *scheduler {
	return &scheduler{jobs: make(chan func()), workers: workers}
}

// start spins up the workers; deferred to first submit so runners that
// never fan out cost nothing.
func (s *scheduler) start() {
	for i := 0; i < s.workers; i++ {
		go func() {
			for job := range s.jobs {
				runJob(job)
			}
		}()
	}
}

// runJob is the worker-level panic backstop: batch APIs recover their own
// jobs' panics into per-config errors, so anything reaching here escaped a
// job's own recovery (e.g. a panicking deferred wg.Done). Losing one worker
// to it would shrink the pool for the rest of the process; log and survive.
func runJob(job func()) {
	defer func() {
		if v := recover(); v != nil {
			log.Printf("experiments: scheduled job panicked past its own recovery: %v\n%s", v, debug.Stack())
		}
	}()
	job()
}

// submit blocks until a worker accepts the job, or reports
// errSchedulerClosed if the pool has been shut down — the job then never
// runs and the caller owns any bookkeeping it attached to it. Jobs must not
// submit further jobs (a job waiting on a sub-job could starve the pool);
// batch APIs fan out from the caller's goroutine instead.
func (s *scheduler) submit(job func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errSchedulerClosed
	}
	s.inflight.Add(1)
	s.startOnce.Do(s.start)
	s.mu.Unlock()
	s.jobs <- job
	s.inflight.Done()
	return nil
}

// close stops the workers once outstanding jobs drain. Safe to call more
// than once; submits that already passed the closed check complete their
// handoff before the channel closes, later ones get errSchedulerClosed.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	close(s.jobs)
}
