package experiments

import (
	"context"
	"errors"
	"log"
	"runtime/debug"
	"sync"

	"repro/internal/stats"
)

// errSchedulerClosed is returned by submit after close; batch APIs surface
// it as the per-job error rather than panicking the caller.
var errSchedulerClosed = errors.New("experiments: runner is closed")

// scheduler is the fixed-size worker pool shared by every figure a Runner
// regenerates and every request the serving layer admits. All fan-out
// (RunApps, RunConfigs, the ablation sweeps, HTTP batches) feeds one pool,
// so app-level parallelism is bounded globally rather than per call site.
//
// Scheduling is weighted-fair across tenants. Each waiting job carries a
// tenant identity (WithTenant / TenantFrom); a free worker serves the
// tenant with the lowest in-service-to-weight ratio, breaking ties in
// favour of the least recently served. Two saturating tenants of equal
// weight therefore split the workers evenly, a weight-2 tenant gets twice
// the share of a weight-1 tenant, and — the property the single FIFO this
// replaces lacked — a light tenant's occasional job is served next, not
// behind a heavy tenant's thousand queued siblings.
//
// Handoff is direct: there is no internal job buffer. submit blocks its
// caller until a worker takes the job (bounded memory, backpressure to the
// submitter — the contract TestSchedulerSaturationBlocksNotDrops pins), and
// submitCtx additionally abandons the wait when its context ends, removing
// the queued job so a cancelled tenant batch frees its queue share
// immediately.
type scheduler struct {
	workers int
	// weights maps tenant -> scheduling weight; absent or non-positive
	// means 1. Set before first submit.
	weights map[string]int
	// metrics, when set, receives per-tenant served-job counters.
	metrics *stats.Metrics

	startOnce sync.Once

	mu       sync.Mutex
	cond     *sync.Cond // signalled when a waiter arrives or the pool closes
	closed   bool
	serveSeq uint64 // global service clock for least-recently-served ties
	tenants  map[string]*tenantState
}

// waiter is one blocked submit: the job and the handoff channel its
// submitter waits on. accepted is closed (under the scheduler lock) by the
// worker that takes the job.
type waiter struct {
	tenant   string
	job      func()
	accepted chan struct{}
}

// tenantState is one tenant's queue share: its waiting jobs in FIFO order
// and how many of the pool's workers it currently occupies.
type tenantState struct {
	waiters    []*waiter
	inService  int
	lastServed uint64
}

func newScheduler(workers int) *scheduler {
	s := &scheduler{workers: workers, tenants: map[string]*tenantState{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// weight returns a tenant's configured scheduling weight (default 1).
func (s *scheduler) weight(tenant string) int {
	if w, ok := s.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// start spins up the workers; deferred to first submit so runners that
// never fan out cost nothing.
func (s *scheduler) start() {
	for i := 0; i < s.workers; i++ {
		go func() {
			for {
				w := s.take()
				if w == nil {
					return
				}
				runJob(w.job)
				s.finish(w.tenant)
			}
		}()
	}
}

// runJob is the worker-level panic backstop: batch APIs recover their own
// jobs' panics into per-config errors, so anything reaching here escaped a
// job's own recovery (e.g. a panicking deferred wg.Done). Losing one worker
// to it would shrink the pool for the rest of the process; log and survive.
func runJob(job func()) {
	defer func() {
		if v := recover(); v != nil {
			log.Printf("experiments: scheduled job panicked past its own recovery: %v\n%s", v, debug.Stack())
		}
	}()
	job()
}

// take blocks until a job is available (returning the fairest pick) or the
// pool is closed and fully drained (returning nil — the worker exits).
func (s *scheduler) take() *waiter {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if w := s.pickLocked(); w != nil {
			return w
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// pickLocked pops the next job under the weighted-fair policy: the waiting
// tenant with the lowest inService/weight ratio, least-recently-served on
// ties. Returns nil when no tenant has waiters.
func (s *scheduler) pickLocked() *waiter {
	var best *tenantState
	var bestName string
	for name, q := range s.tenants {
		if len(q.waiters) == 0 {
			continue
		}
		if best == nil || lessLoaded(q, s.weight(name), best, s.weight(bestName)) {
			best, bestName = q, name
		}
	}
	if best == nil {
		return nil
	}
	w := best.waiters[0]
	best.waiters = best.waiters[1:]
	best.inService++
	s.serveSeq++
	best.lastServed = s.serveSeq
	close(w.accepted)
	if s.metrics != nil {
		s.metrics.Add(stats.TenantCounter(bestName, "jobs"), 1)
	}
	return w
}

// lessLoaded reports whether tenant a (weight wa) should be served before
// tenant b (weight wb): lower inService-per-weight first, least recently
// served on exact ties. Cross-multiplied to stay in integers.
func lessLoaded(a *tenantState, wa int, b *tenantState, wb int) bool {
	la, lb := a.inService*wb, b.inService*wa
	if la != lb {
		return la < lb
	}
	return a.lastServed < b.lastServed
}

// finish returns a worker slot from a tenant, garbage-collecting idle
// tenant state so a long-lived runner does not accumulate every tenant it
// ever served.
func (s *scheduler) finish(tenant string) {
	s.mu.Lock()
	if q := s.tenants[tenant]; q != nil {
		q.inService--
		if q.inService == 0 && len(q.waiters) == 0 {
			delete(s.tenants, tenant)
		}
	}
	s.mu.Unlock()
}

// submit blocks until a worker accepts the job on the default tenant's
// share, or reports errSchedulerClosed if the pool has been shut down — the
// job then never runs and the caller owns any bookkeeping it attached to
// it. Jobs must not submit further jobs (a job waiting on a sub-job could
// starve the pool); batch APIs fan out from the caller's goroutine instead.
func (s *scheduler) submit(job func()) error {
	return s.submitCtx(context.Background(), DefaultTenant, job)
}

// submitCtx is submit on a tenant's queue share, bounded by ctx: if ctx
// ends while the job is still waiting, the job is removed from the queue
// (never runs) and ctx's error is returned. A job already taken by a worker
// runs regardless — the worker owns it from the moment accepted closes, so
// the caller sees nil and the job itself must honour ctx.
func (s *scheduler) submitCtx(ctx context.Context, tenant string, job func()) error {
	if tenant == "" {
		tenant = DefaultTenant
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errSchedulerClosed
	}
	s.startOnce.Do(s.start)
	w := &waiter{tenant: tenant, job: job, accepted: make(chan struct{})}
	q := s.tenants[tenant]
	if q == nil {
		q = &tenantState{}
		s.tenants[tenant] = q
	}
	q.waiters = append(q.waiters, w)
	s.mu.Unlock()
	s.cond.Broadcast()

	select {
	case <-w.accepted:
		return nil
	case <-ctx.Done():
	}
	// Cancelled while waiting — unless a worker took the job in the race,
	// in which case it runs and this submit succeeded. accepted is closed
	// under the lock, so the re-check is race-free.
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-w.accepted:
		return nil
	default:
	}
	if q := s.tenants[tenant]; q != nil {
		for i, qw := range q.waiters {
			if qw == w {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				break
			}
		}
		if q.inService == 0 && len(q.waiters) == 0 {
			delete(s.tenants, tenant)
		}
	}
	return ctx.Err()
}

// close stops accepting new jobs and lets the workers drain every job
// already queued; it is safe to call more than once. Submits that passed
// the closed check have their jobs served (accepted work is never
// abandoned), later submits get errSchedulerClosed.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
