package experiments

import "sync"

// scheduler is the fixed-size worker pool shared by every figure a Runner
// regenerates. All fan-out (RunApps, RunConfigs, the ablation sweeps) feeds
// one pool, so app-level parallelism is bounded globally rather than per
// call site and runs batched across figures contend for the same workers.
type scheduler struct {
	jobs      chan func()
	workers   int
	startOnce sync.Once
	closeOnce sync.Once
}

func newScheduler(workers int) *scheduler {
	return &scheduler{jobs: make(chan func()), workers: workers}
}

// start spins up the workers; deferred to first submit so runners that
// never fan out cost nothing.
func (s *scheduler) start() {
	for i := 0; i < s.workers; i++ {
		go func() {
			for job := range s.jobs {
				job()
			}
		}()
	}
}

// submit blocks until a worker accepts the job. Jobs must not submit
// further jobs (a job waiting on a sub-job could starve the pool); batch
// APIs fan out from the caller's goroutine instead.
func (s *scheduler) submit(job func()) {
	s.startOnce.Do(s.start)
	s.jobs <- job
}

// close stops the workers once outstanding jobs drain. Submitting after
// close panics; callers close only after every batch has returned.
func (s *scheduler) close() {
	s.closeOnce.Do(func() { close(s.jobs) })
}
