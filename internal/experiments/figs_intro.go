package experiments

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// mdpTimeline lists the memory dependence predictors of the Fig. 1 timeline
// with their publication years.
var mdpTimeline = []struct {
	spec string
	year int
}{
	{"storesets", 1998},
	{"cht", 1999},
	{"storevector", 2006},
	{"nosq", 2006},
	{"mdptage", 2018},
	{"phast", 2024},
}

// Fig01 reproduces the 30-year MPKI timeline: branch predictor MPKI (gray
// circles) and memory dependence predictor MPKI split into memory order
// violations (false negatives) and false dependencies (false positives),
// measured on the Nehalem-like core the paper uses for this figure.
func Fig01(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 1 — MPKI of branch and memory dependence predictors (Nehalem-like core)",
		"predictor", "kind", "year", "MPKI(FN)", "MPKI(FP)")
	// Branch predictors: architectural replay, no timing model needed.
	for _, name := range bpred.DirNames() {
		vals := make([]float64, 0, len(o.Apps))
		for _, app := range o.Apps {
			tr, err := sim.TraceFor(app, o.Instructions, 0)
			if err != nil {
				return err
			}
			dir, err := bpred.NewDir(name)
			if err != nil {
				return err
			}
			vals = append(vals, bpred.MPKIOver(dir, tr.Insts))
		}
		t.AddRowf(name, "branch", bpred.DirYear(name), stats.Mean(vals), 0.0)
	}
	for _, m := range mdpTimeline {
		fn, fp, err := NewSubRunner(r, "nehalem").MeanMPKI("nehalem", m.spec)
		if err != nil {
			return err
		}
		t.AddRowf(m.spec, "mdp", m.year, fn, fp)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// NewSubRunner shares the cache of an existing runner (machine choice is
// already part of the cache key, so this is just the same runner).
func NewSubRunner(r *Runner, _ string) *Runner { return r }

// fig2Predictors are the predictors of the generational study.
var fig2Predictors = []string{"storesets", "storevector", "nosq", "mdptage", "phast"}

// Fig02a reproduces the MPKI-per-generation trend: memory dependence
// misprediction MPKI grows with machine size for every predictor.
func Fig02a(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 2a — average total MDP MPKI across processor generations",
		append([]string{"machine", "year"}, fig2Predictors...)...)
	for _, m := range config.Generations() {
		row := []interface{}{m.Name, m.Year}
		for _, pred := range fig2Predictors {
			fn, fp, err := r.MeanMPKI(m.Name, pred)
			if err != nil {
				return err
			}
			row = append(row, fn+fp)
		}
		t.AddRowf(row...)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// Fig02b reproduces the performance-gap-per-generation trend: percent IPC
// lost versus an ideal predictor, growing with machine size.
func Fig02b(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 2b — performance gap to ideal MDP (%) across processor generations",
		append([]string{"machine", "year"}, fig2Predictors...)...)
	for _, m := range config.Generations() {
		row := []interface{}{m.Name, m.Year}
		for _, pred := range fig2Predictors {
			geo, err := r.GeoIPCvsIdeal(m.Name, pred, false)
			if err != nil {
				return err
			}
			row = append(row, (1-geo)*100)
		}
		t.AddRowf(row...)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// Fig04 reproduces the multi-store dependence study: the fraction of loads
// whose bytes come from two or more in-flight stores, and how many of those
// stores resolve in order (shared base register).
func Fig04(r *Runner) error {
	o := r.Opt()
	window := config.AlderLake().SQ
	t := stats.NewTable("Fig. 4 — loads depending on multiple stores",
		"app", "loads", "multi-dep %", "in-order providers %")
	multis := make([]float64, 0, len(o.Apps))
	inorder := make([]float64, 0, len(o.Apps))
	for _, app := range o.Apps {
		tr, err := sim.TraceFor(app, o.Instructions, 0)
		if err != nil {
			return err
		}
		ms := tr.AnalyzeMultiStore(window)
		t.AddRowf(app, ms.Loads, 100*ms.MultiFrac(), 100*ms.InOrderFrac())
		multis = append(multis, ms.MultiFrac())
		if ms.MultiDepLoads > 0 {
			inorder = append(inorder, ms.InOrderFrac())
		}
	}
	t.AddRowf("average", 0, 100*stats.Mean(multis), 100*stats.Mean(inorder))
	fmt.Fprintln(o.Out, t)
	return nil
}

// SuiteMix prints the instruction mix of every app — not a paper figure,
// but the standard sanity table for a trace-driven setup.
func SuiteMix(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Suite instruction mix", "app", "mix")
	for _, app := range o.Apps {
		prog, err := workload.ByName(app)
		if err != nil {
			return err
		}
		tr := trace.Generate(prog, o.Instructions, 0)
		t.AddRow(app, tr.MixOf().String())
	}
	fmt.Fprintln(o.Out, t)
	return nil
}
