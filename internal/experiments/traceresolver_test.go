package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/contentaddr"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// uploadableTrace builds a distinct stream (per seed) and returns its
// decoded form plus canonical digest, as the trace store would hold it.
func uploadableTrace(t *testing.T, seed int64) (*trace.Trace, string) {
	t.Helper()
	tr, err := sim.TraceFor(workload.Names()[0], 3_000, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return decoded, contentaddr.Sum(buf.Bytes())
}

func TestRunnerTraceResolver(t *testing.T) {
	decoded, digest := uploadableTrace(t, 77)
	var calls atomic.Int32
	r := NewRunner(Options{Workers: 2, TraceResolver: func(ctx context.Context, d string) (*trace.Trace, error) {
		calls.Add(1)
		if d != digest {
			return nil, fmt.Errorf("unexpected digest %s", d)
		}
		return decoded, nil
	}})
	defer r.Close()

	cfg := sim.Config{App: sim.TraceAppPrefix + digest, Predictor: "none", Instructions: 3_000}
	run, err := r.RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run == nil || calls.Load() != 1 {
		t.Fatalf("first run: run=%v resolver calls=%d, want 1", run, calls.Load())
	}
	// Second identical run hits the cache (or the provided stream); the
	// resolver is never consulted again.
	if _, err := r.RunConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("resolver called %d times, want 1", calls.Load())
	}
}

func TestRunnerTraceResolverFailureIsTyped(t *testing.T) {
	wantErr := errors.New("trace not found anywhere in the fleet")
	r := NewRunner(Options{Workers: 2, TraceResolver: func(ctx context.Context, d string) (*trace.Trace, error) {
		return nil, wantErr
	}})
	defer r.Close()

	// A digest no test provides: resolver fails, the run reports a typed
	// config error wrapping the resolver's.
	app := sim.TraceAppPrefix + contentaddr.Sum([]byte("missing everywhere"))
	_, err := r.RunConfig(sim.Config{App: app, Predictor: "none", Instructions: 1_000})
	var se *sim.SimError
	if !errors.As(err, &se) || se.Kind != sim.ErrConfig || !errors.Is(err, wantErr) {
		t.Fatalf("error %v, want ErrConfig wrapping the resolver failure", err)
	}
}
