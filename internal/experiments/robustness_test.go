package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/signal"
	"reflect"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/stats"
)

// chaosConfigs is the small batch the chaos tests run: two apps, three
// cheap predictors.
func chaosConfigs() []sim.Config {
	var cfgs []sim.Config
	for _, app := range []string{"511.povray", "519.lbm"} {
		for _, pred := range []string{"none", "alwayswait", "ideal"} {
			cfgs = append(cfgs, sim.Config{App: app, Predictor: pred, Instructions: 10_000})
		}
	}
	return cfgs
}

// TestChaosKeepGoingBatch is the acceptance run of the fault-injection
// harness: with panics injected into a batch, keep-going mode completes the
// whole batch; every faulted config yields a typed error row plus a
// sim.errors.* counter, every survivor is bit-identical to the fault-free
// baseline, and the worker pool leaves no goroutines behind.
func TestChaosKeepGoingBatch(t *testing.T) {
	cfgs := chaosConfigs()

	base := NewRunner(Options{Instructions: 10_000})
	baseline, err := base.RunConfigs(cfgs)
	base.Close()
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()

	plan, err := faultinject.Parse("panic=0.5,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Activate(plan))

	m := stats.NewMetrics()
	r := NewRunner(Options{Instructions: 10_000, KeepGoing: true, Metrics: m})
	results := r.RunConfigsDetailed(cfgs)
	r.Close()

	var failed, ok int
	for i, res := range results {
		if res.Err != nil {
			failed++
			var se *sim.SimError
			if !errors.As(res.Err, &se) {
				t.Errorf("config %d: error is not a *sim.SimError: %v", i, res.Err)
			} else if se.Kind != sim.ErrPanic {
				t.Errorf("config %d: kind = %s, want %s", i, se.Kind, sim.ErrPanic)
			}
			continue
		}
		ok++
		if !reflect.DeepEqual(res.Run, baseline[i]) {
			t.Errorf("config %d (%s/%s): survivor differs from the fault-free baseline",
				i, res.Config.App, res.Config.Predictor)
		}
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("want a mix of faulted and surviving configs, got %d failed / %d ok — adjust the plan seed", failed, ok)
	}
	if got := m.Get(sim.CounterErrorPrefix + string(sim.ErrPanic)); got != uint64(failed) {
		t.Errorf("%s%s = %d, want %d", sim.CounterErrorPrefix, sim.ErrPanic, got, failed)
	}

	var buf bytes.Buffer
	r.WriteFailures(&buf)
	if got := strings.Count(buf.String(), string(sim.ErrPanic)); got < failed {
		t.Errorf("failure log shows %d panic rows, want %d:\n%s", got, failed, buf.String())
	}

	// No goroutine leaks: the pool drains after Close. Poll briefly — worker
	// exit is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutine leak: %d before the chaos batch, %d after close", before, got)
	}
}

// TestFailFastCancelsSiblings pins the default batch semantics: the first
// failure cancels still-queued siblings, the batch reports the root cause
// (not a secondary cancellation), and the cancelled siblings are typed
// sim.ErrCancelled rows.
func TestFailFastCancelsSiblings(t *testing.T) {
	r := NewRunner(Options{Instructions: 5_000, Workers: 1})
	defer r.Close()
	cfgs := []sim.Config{
		{App: "511.povray", Predictor: "warp-drive"}, // unknown spec: fails immediately
		{App: "511.povray", Predictor: "none"},
		{App: "519.lbm", Predictor: "none"},
	}
	results := r.RunConfigsDetailed(cfgs)
	if kind := sim.KindOf(results[0].Err); kind != sim.ErrConfig {
		t.Fatalf("results[0]: kind %s, want %s (%v)", kind, sim.ErrConfig, results[0].Err)
	}
	for i := 1; i < len(results); i++ {
		if kind := sim.KindOf(results[i].Err); kind != sim.ErrCancelled {
			t.Errorf("results[%d]: kind %s, want %s (%v)", i, kind, sim.ErrCancelled, results[i].Err)
		}
	}
	_, err := r.RunConfigs(cfgs)
	if kind := sim.KindOf(err); kind != sim.ErrConfig {
		t.Errorf("batch error: kind %s, want the root cause %s (%v)", kind, sim.ErrConfig, err)
	}
}

// TestKeepGoingRunsEverySibling: with KeepGoing one bad config costs
// exactly one result row.
func TestKeepGoingRunsEverySibling(t *testing.T) {
	r := NewRunner(Options{Instructions: 5_000, Workers: 1, KeepGoing: true})
	defer r.Close()
	cfgs := []sim.Config{
		{App: "511.povray", Predictor: "warp-drive"},
		{App: "511.povray", Predictor: "none"},
		{App: "519.lbm", Predictor: "none"},
	}
	results := r.RunConfigsDetailed(cfgs)
	if sim.KindOf(results[0].Err) != sim.ErrConfig {
		t.Errorf("results[0]: want config error, got %v", results[0].Err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil || results[i].Run == nil {
			t.Errorf("results[%d]: keep-going sibling must succeed, got %v", i, results[i].Err)
		}
	}
}

// TestSubmitAfterCloseFailsGracefully is the regression test for the old
// send-on-closed-channel panic: batch APIs on a closed runner return typed
// errors instead of crashing.
func TestSubmitAfterCloseFailsGracefully(t *testing.T) {
	r := NewRunner(Options{Apps: []string{"511.povray"}, Instructions: 5_000})
	if _, err := r.Run("511.povray", "alderlake", "none", false); err != nil {
		t.Fatal(err)
	}
	r.Close()
	cfgs := []sim.Config{{App: "519.lbm", Predictor: "none", Instructions: 5_000}}
	if _, err := r.RunConfigs(cfgs); !errors.Is(err, errSchedulerClosed) {
		t.Errorf("RunConfigs after Close: want errSchedulerClosed, got %v", err)
	}
	results := r.RunConfigsDetailed(cfgs)
	if !errors.Is(results[0].Err, errSchedulerClosed) {
		t.Errorf("RunConfigsDetailed after Close: want errSchedulerClosed, got %v", results[0].Err)
	}
	if err := r.ForEachApp(func(int, string) error { return nil }); !errors.Is(err, errSchedulerClosed) {
		t.Errorf("ForEachApp after Close: want errSchedulerClosed, got %v", err)
	}
}

// TestForEachAppIsolatesPanics: a panicking per-app job poisons its own
// app's error, not the process, and fail-fast keeps later queued apps from
// starting.
func TestForEachAppIsolatesPanics(t *testing.T) {
	r := NewRunner(Options{
		Apps: []string{"511.povray", "519.lbm", "541.leela"}, Workers: 1,
	})
	defer r.Close()
	var started int
	err := r.ForEachApp(func(i int, app string) error {
		started++
		panic("injected test panic in app job")
	})
	if err == nil || !strings.Contains(err.Error(), "injected test panic") {
		t.Fatalf("want the recovered panic as the batch error, got %v", err)
	}
	if started != 1 {
		t.Errorf("fail-fast should stop queued apps after the first panic; %d started", started)
	}
}

// TestSIGINTGracefulShutdown drives the cmds' signal path in-process:
// signal.NotifyContext + a real SIGINT cancels in-flight work, later runs
// fail as typed cancellations, and the partial results remain flushable
// (failure log and metrics still render).
func TestSIGINTGracefulShutdown(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	r := NewRunner(Options{Instructions: 5_000, Context: ctx})
	defer r.Close()

	// Work completed before the signal stays completed.
	done, err := r.Run("511.povray", "alderlake", "none", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the notify context")
	}

	if _, err := r.Run("519.lbm", "alderlake", "none", false); sim.KindOf(err) != sim.ErrCancelled {
		t.Fatalf("post-signal run: kind %s, want %s (%v)", sim.KindOf(err), sim.ErrCancelled, err)
	}
	if done == nil {
		t.Error("pre-signal result lost")
	}

	var failures, metrics bytes.Buffer
	r.WriteFailures(&failures)
	if !strings.Contains(failures.String(), string(sim.ErrCancelled)) {
		t.Errorf("failure log after SIGINT lacks the cancelled row:\n%s", failures.String())
	}
	r.WriteMetrics(&metrics)
	if !strings.Contains(metrics.String(), "runs.simulated") {
		t.Errorf("metrics must still render after SIGINT:\n%s", metrics.String())
	}
}
