package experiments

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/runcache"
	"repro/internal/stats"
)

// TestRunnerSingleFlightUnderContention hammers one Runner from many
// goroutines requesting overlapping keys and asserts each unique key
// simulated exactly once: the single-flight layer must coalesce concurrent
// first requests, the memoisation layer everything after. Run under
// `go test -race` (make check does) this doubles as the Runner's data-race
// detector.
func TestRunnerSingleFlightUnderContention(t *testing.T) {
	m := stats.NewMetrics()
	r := NewRunner(Options{
		Apps:         []string{"511.povray", "519.lbm"},
		Instructions: 10_000,
		Workers:      4,
		Metrics:      m,
	})
	defer r.Close()

	type key struct {
		app, pred string
	}
	keys := []key{
		{"511.povray", "none"},
		{"511.povray", "alwayswait"},
		{"519.lbm", "none"},
		{"519.lbm", "alwayswait"},
	}

	const hammers = 24
	results := make([][]*stats.Run, hammers)
	errs := make([]error, hammers)
	var wg sync.WaitGroup
	for g := 0; g < hammers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]*stats.Run, len(keys))
			for i := range keys {
				// Vary the request order per goroutine to mix contention.
				k := keys[(i+g)%len(keys)]
				run, err := r.Run(k.app, "alderlake", k.pred, false)
				if err != nil {
					errs[g] = err
					return
				}
				got[(i+g)%len(keys)] = run
			}
			results[g] = got
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if sims := m.Get(runcache.CounterRunsSimulated); sims != uint64(len(keys)) {
		t.Errorf("simulated %d runs for %d unique keys; single-flight broken:\n%s",
			sims, len(keys), m)
	}
	// Memoisation must hand every requester the same *stats.Run per key.
	for g := 1; g < hammers; g++ {
		for i := range keys {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d key %d got a different run pointer", g, i)
			}
		}
	}
}

// TestRunnerDiskCacheAcrossRunners is the acceptance criterion in miniature:
// a second runner over the same cache directory regenerates a figure
// byte-identically with zero new simulations.
func TestRunnerDiskCacheAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	render := func(m *stats.Metrics) string {
		var buf bytes.Buffer
		r := NewRunner(Options{
			Apps:         []string{"511.povray", "519.lbm"},
			Instructions: 20_000,
			Out:          &buf,
			CacheDir:     dir,
			Metrics:      m,
		})
		defer r.Close()
		e, err := ByName("fig12")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(r); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	m1 := stats.NewMetrics()
	first := render(m1)
	if m1.Get(runcache.CounterRunsSimulated) == 0 {
		t.Fatal("first pass should simulate")
	}

	m2 := stats.NewMetrics()
	second := render(m2)
	if sims := m2.Get(runcache.CounterRunsSimulated); sims != 0 {
		t.Errorf("second pass simulated %d runs, want 0 (all from disk):\n%s", sims, m2)
	}
	if first != second {
		t.Errorf("cached regeneration is not byte-identical:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestRunnerCloseIdempotent guards the worker-pool lifecycle.
func TestRunnerCloseIdempotent(t *testing.T) {
	r := NewRunner(Options{Apps: []string{"511.povray"}, Instructions: 5_000})
	if _, err := r.Run("511.povray", "alderlake", "none", false); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // second close must not panic
}
