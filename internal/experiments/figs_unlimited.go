package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/viz"
)

// Fig06 reproduces the unconstrained-predictor study (§III-C): IPC
// normalised to ideal and paths tracked for UnlimitedNoSQ at history
// lengths 1..16, UnlimitedMDPTAGE, and UnlimitedPHAST.
func Fig06(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 6 — unlimited predictors: IPC vs ideal and paths tracked",
		"predictor", "IPC/ideal", "avg paths")
	row := func(spec string) error {
		geo, err := r.GeoIPCvsIdeal("alderlake", spec, false)
		if err != nil {
			return err
		}
		runs, err := r.RunApps("alderlake", spec, false)
		if err != nil {
			return err
		}
		paths := make([]float64, len(runs))
		for i, run := range runs {
			paths[i] = float64(run.PathsTracked)
		}
		t.AddRowf(spec, geo, stats.Mean(paths))
		return nil
	}
	for h := 1; h <= 16; h++ {
		if err := row(fmt.Sprintf("unlimited-nosq:%d", h)); err != nil {
			return err
		}
	}
	if err := row("unlimited-mdptage"); err != nil {
		return err
	}
	if err := row("unlimited-phast"); err != nil {
		return err
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// Fig07 reproduces the per-app IPC of UnlimitedPHAST normalised to a
// perfect predictor (headline: ≈0.5% geomean gap).
func Fig07(r *Runner) error {
	o := r.Opt()
	ideal, err := r.RunApps("alderlake", "ideal", false)
	if err != nil {
		return err
	}
	runs, err := r.RunApps("alderlake", "unlimited-phast", false)
	if err != nil {
		return err
	}
	t := stats.NewTable("Fig. 7 — UnlimitedPHAST IPC normalised to ideal", "app", "IPC/ideal")
	ratios := make([]float64, len(runs))
	for i, run := range runs {
		ratios[i] = run.Speedup(ideal[i])
		t.AddRowf(o.Apps[i], ratios[i])
	}
	t.AddRowf("geomean", stats.GeoMean(ratios))
	fmt.Fprintln(o.Out, t)
	return nil
}

// Fig08 reproduces UnlimitedPHAST's per-app MPKI split into memory order
// violations and false dependencies.
func Fig08(r *Runner) error {
	o := r.Opt()
	runs, err := r.RunApps("alderlake", "unlimited-phast", false)
	if err != nil {
		return err
	}
	t := stats.NewTable("Fig. 8 — UnlimitedPHAST MPKI", "app", "MPKI(FN)", "MPKI(FP)")
	fns, fps := []float64{}, []float64{}
	for i, run := range runs {
		t.AddRowf(o.Apps[i], run.ViolationMPKI(), run.FalseDepMPKI())
		fns = append(fns, run.ViolationMPKI())
		fps = append(fps, run.FalseDepMPKI())
	}
	t.AddRowf("average", stats.Mean(fns), stats.Mean(fps))
	fmt.Fprintln(o.Out, t)
	return nil
}

// Fig09 reproduces the paths-registered-per-app figure for UnlimitedPHAST.
func Fig09(r *Runner) error {
	o := r.Opt()
	runs, err := r.RunApps("alderlake", "unlimited-phast", false)
	if err != nil {
		return err
	}
	t := stats.NewTable("Fig. 9 — paths registered per app (UnlimitedPHAST)", "app", "paths")
	for i, run := range runs {
		t.AddRowf(o.Apps[i], run.PathsTracked)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// Fig10 reproduces the distribution of unique conflicts per history length:
// each app is run with UnlimitedPHAST and the per-length first-training
// counts are aggregated.
func Fig10(r *Runner) error {
	o := r.Opt()
	agg := make([]uint64, 513)
	var mu sync.Mutex
	err := r.ForEachApp(func(_ int, app string) error {
		_, c, err := sim.RunCore(sim.Config{
			App: app, Predictor: "unlimited-phast", Instructions: o.Instructions,
		})
		if err != nil {
			return err
		}
		up, ok := c.Predictor().(*core.UnlimitedPHAST)
		if !ok {
			return fmt.Errorf("fig10: unexpected predictor type")
		}
		counts := up.ConflictLengthCounts()
		mu.Lock()
		for l, n := range counts {
			agg[l] += n
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	var total, upto32 uint64
	for l, n := range agg {
		total += n
		if l <= 32 {
			upto32 += n
		}
	}
	t := stats.NewTable("Fig. 10 — % of unique conflicts per history length", "history length", "% of conflicts")
	chart := viz.BarChart{Title: "Fig. 10 (chart) — conflicts per history length (%)", Width: 44, Format: "%.1f"}
	for l := 0; l <= 32; l++ {
		if total == 0 {
			break
		}
		pct := 100 * float64(agg[l]) / float64(total)
		t.AddRowf(fmt.Sprintf("%d", l), pct)
		chart.Add(fmt.Sprintf("len %2d", l), pct)
	}
	if total > 0 {
		t.AddRowf(">32", 100*float64(total-upto32)/float64(total))
		t.AddRowf("cumulative 0..32", 100*float64(upto32)/float64(total))
		chart.Add(">32", 100*float64(total-upto32)/float64(total))
	}
	fmt.Fprintln(o.Out, t)
	fmt.Fprintln(o.Out, chart.String())
	return nil
}

// fig11Caps are the maximum-history sweep points of Fig. 11 (0 = unlimited).
var fig11Caps = []int{8, 16, 32, 64, 0}

// Fig11 reproduces the maximum-history-length sweep of UnlimitedPHAST.
func Fig11(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Fig. 11 — UnlimitedPHAST IPC vs ideal at several maximum history lengths",
		"max history", "IPC/ideal")
	for _, cap := range fig11Caps {
		spec := "unlimited-phast"
		label := "unlimited"
		if cap > 0 {
			spec = fmt.Sprintf("unlimited-phast:%d", cap)
			label = fmt.Sprintf("%d", cap)
		}
		geo, err := r.GeoIPCvsIdeal("alderlake", spec, false)
		if err != nil {
			return err
		}
		t.AddRowf(label, geo)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}
