package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// geoVsIdeal runs one config variant per app on the runner's shared worker
// pool (and through its cache) and returns the geometric-mean speedup over
// the supplied ideal runs. variant receives the app name and returns the
// per-app Config.
func geoVsIdeal(r *Runner, ideal []*stats.Run, variant func(app string) sim.Config) (float64, error) {
	apps := r.Opt().Apps
	cfgs := make([]sim.Config, len(apps))
	for i, app := range apps {
		cfgs[i] = variant(app)
	}
	runs, err := r.RunConfigs(cfgs)
	if err != nil {
		return 0, err
	}
	ratios := make([]float64, len(runs))
	for i := range runs {
		ratios[i] = runs[i].Speedup(ideal[i])
	}
	return stats.GeoMean(ratios), nil
}

// AblationTrainPoint reproduces the §IV-A1 update-point analysis: every
// predictor run with training at mispeculation detection versus at commit.
// The paper found detection-time updates better for all the baselines (fast
// training wins) except NoSQ (neutral), while PHAST prefers commit-time
// updates, which avoid learning transient non-youngest stores and paths.
func AblationTrainPoint(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Ablation — predictor update point (IPC vs ideal)",
		"predictor", "at detection", "at commit")
	ideal, err := r.RunApps("alderlake", "ideal", false)
	if err != nil {
		return err
	}
	geoWith := func(pred string, atDetect bool) (float64, error) {
		return geoVsIdeal(r, ideal, func(app string) sim.Config {
			return sim.Config{
				App: app, Predictor: pred, Instructions: o.Instructions,
				TrainAtDetect: atDetect,
			}
		})
	}
	for _, pred := range sim.PredictorNames() {
		detect, err := geoWith(pred, true)
		if err != nil {
			return err
		}
		commit, err := r.GeoIPCvsIdeal("alderlake", pred, false)
		if err != nil {
			return err
		}
		t.AddRowf(pred, detect, commit)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// AblationConfidence sweeps PHAST's confidence ceiling — the mechanism that
// silences aliased or data-dependent entries (§IV-A2). ConfMax 0 disables
// predictions entirely; 1 gives one strike; 15 is the paper's 4-bit counter.
func AblationConfidence(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Ablation — PHAST confidence ceiling (IPC vs ideal)",
		"conf max", "IPC/ideal")
	for _, conf := range []int{1, 3, 7, 15} {
		spec := fmt.Sprintf("phast-conf:%d", conf)
		geo, err := r.GeoIPCvsIdeal("alderlake", spec, false)
		if err != nil {
			return err
		}
		t.AddRowf(conf, geo)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// AblationHistoryTables sweeps the number of PHAST tables (prefixes of the
// geometric length sequence), quantifying what each extra history length
// buys — the design-choice study behind the (0..32) sequence of §IV-B.
func AblationHistoryTables(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Ablation — PHAST history length set (IPC vs ideal)",
		"lengths", "IPC/ideal")
	for _, n := range []int{1, 2, 4, 6, 8} {
		spec := fmt.Sprintf("phast-tables:%d", n)
		geo, err := r.GeoIPCvsIdeal("alderlake", spec, false)
		if err != nil {
			return err
		}
		t.AddRowf(n, geo)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}

// AblationFilter compares the mis-speculation filtering mechanisms: the
// paper's §IV-A1 forwarding filter, no filtering (gem5-like), and NoSQ's
// SVW/SSBF commit-time verification (§VII) — the related-work mechanism the
// paper positions its filter against.
func AblationFilter(r *Runner) error {
	o := r.Opt()
	t := stats.NewTable("Ablation — mis-speculation filtering (IPC vs ideal)",
		"predictor", "none", "svw", "fwd")
	ideal, err := r.RunApps("alderlake", "ideal", false)
	if err != nil {
		return err
	}
	geoWith := func(pred string, svw, fwdOff bool) (float64, error) {
		return geoVsIdeal(r, ideal, func(app string) sim.Config {
			return sim.Config{
				App: app, Predictor: pred, Instructions: o.Instructions,
				SVWFilter: svw, FwdFilterOff: fwdOff,
			}
		})
	}
	for _, pred := range sim.PredictorNames() {
		none, err := geoWith(pred, false, true)
		if err != nil {
			return err
		}
		svw, err := geoWith(pred, true, false)
		if err != nil {
			return err
		}
		fwd, err := r.GeoIPCvsIdeal("alderlake", pred, false)
		if err != nil {
			return err
		}
		t.AddRowf(pred, none, svw, fwd)
	}
	fmt.Fprintln(o.Out, t)
	return nil
}
