package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// internDelta runs fn and returns how many trace intern misses (decodes)
// and hits it caused. The sim counters are process-cumulative, so only
// deltas are meaningful.
func internDelta(fn func()) (misses, hits uint64) {
	before := stats.NewMetrics()
	sim.PublishMetrics(before)
	b := before.Snapshot()
	fn()
	after := stats.NewMetrics()
	sim.PublishMetrics(after)
	a := after.Snapshot()
	return a[sim.CounterTraceInternMisses] - b[sim.CounterTraceInternMisses],
		a[sim.CounterTraceInternHits] - b[sim.CounterTraceInternHits]
}

// TestBatchSharesOneTrace: a multi-config batch over one workload decodes
// its stream exactly once — the prewarm pass interns it and every run is a
// hit on the shared trace, regardless of scheduling order.
func TestBatchSharesOneTrace(t *testing.T) {
	r := NewRunner(Options{Workers: 4})
	defer r.Close()
	// An instruction count no other test uses, so the interned stream
	// cannot pre-exist in sim's process-wide cache.
	const n = 23456
	preds := []string{"phast", "storesets", "nosq", "mdptage", "storevector", "cht", "none", "ideal"}
	cfgs := make([]sim.Config, len(preds))
	for i, p := range preds {
		cfgs[i] = sim.Config{App: "525.x264_3", Predictor: p, Instructions: n}
	}
	misses, hits := internDelta(func() {
		if _, err := r.RunConfigs(cfgs); err != nil {
			t.Fatal(err)
		}
	})
	if misses != 1 {
		t.Errorf("batch decoded the trace %d times, want exactly 1", misses)
	}
	if hits < uint64(len(preds)) {
		t.Errorf("only %d intern hits for %d shared-trace runs", hits, len(preds))
	}
}

// TestRunnerIntervalsOption: Options.Intervals flows into every config that
// leaves it unset, and an explicit Intervals wins over it.
func TestRunnerIntervalsOption(t *testing.T) {
	r := NewRunner(Options{Workers: 2, Instructions: 12000, Intervals: 2})
	defer r.Close()
	run, err := r.RunConfig(sim.Config{App: "519.lbm"})
	if err != nil {
		t.Fatal(err)
	}
	if run.OracleDigest == 0 {
		t.Error("Options.Intervals did not reach the run (no oracle digest)")
	}
	if run.Committed != 12000 {
		t.Errorf("committed %d, want 12000", run.Committed)
	}
	// Explicit Intervals: 1 forces a sequential run despite the option.
	seq, err := r.RunConfig(sim.Config{App: "519.lbm", Intervals: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.OracleDigest != 0 {
		t.Error("explicit Intervals=1 still ran the interval path")
	}
}
