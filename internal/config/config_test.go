package config

import "testing"

func TestAllGenerationsValidate(t *testing.T) {
	for _, m := range Generations() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestGenerationsGrowMonotonically(t *testing.T) {
	gens := Generations()
	for i := 1; i < len(gens); i++ {
		prev, cur := gens[i-1], gens[i]
		if cur.Year <= prev.Year {
			t.Errorf("%s (%d) not newer than %s (%d)", cur.Name, cur.Year, prev.Name, prev.Year)
		}
		if cur.ROB < prev.ROB {
			t.Errorf("%s ROB %d shrank vs %s %d", cur.Name, cur.ROB, prev.Name, prev.ROB)
		}
		if cur.SQ < prev.SQ {
			t.Errorf("%s SQ %d shrank vs %s %d", cur.Name, cur.SQ, prev.Name, prev.SQ)
		}
	}
}

func TestAlderLakeMatchesTableI(t *testing.T) {
	m := AlderLake()
	if m.FetchWidth != 6 || m.CommitWidth != 12 || m.IssuePorts != 12 {
		t.Error("Alder Lake widths do not match Table I")
	}
	if m.ROB != 512 || m.IQ != 204 || m.LQ != 192 || m.SQ != 114 {
		t.Error("Alder Lake queue sizes do not match Table I")
	}
	if m.L1D.SizeKB != 48 || m.L1D.Ways != 12 || m.L1D.HitLatency != 5 {
		t.Error("Alder Lake L1D does not match Table I")
	}
	if m.LoadPorts != 3 || m.StorePorts != 2 {
		t.Error("Alder Lake load/store ports do not match the paper (§V)")
	}
	if m.MemLatency != 100 || m.PrefetchDegree != 3 {
		t.Error("Alder Lake memory/prefetch do not match Table I")
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{SizeKB: 48, Ways: 12, LineBytes: 64}
	if got := c.Sets(); got != 64 {
		t.Errorf("48KB/12w/64B sets = %d, want 64", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	m := AlderLake()
	m.ROB = 0
	if m.Validate() == nil {
		t.Error("zero ROB must fail validation")
	}
	m = AlderLake()
	m.LoadPorts = 20
	if m.Validate() == nil {
		t.Error("ports exceeding issue width must fail validation")
	}
	m = AlderLake()
	m.L1D.Ways = 0
	if m.Validate() == nil {
		t.Error("zero-way cache must fail validation")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, m.Name, err)
		}
	}
	if _, err := ByName("cray1"); err == nil {
		t.Error("unknown machine should error")
	}
}
