// Package config defines the simulated machine configurations. The default
// is the Alder Lake-like core of Table I in the paper; earlier Intel
// generations (Nehalem, Sandy Bridge, Haswell, Skylake, Sunny Cove) are
// provided for the generational trend study of Fig. 2.
package config

import "fmt"

// Cache describes one cache level.
type Cache struct {
	SizeKB     int
	Ways       int
	LineBytes  int
	HitLatency int // cycles
	MSHRs      int
}

// Sets returns the number of sets implied by the geometry.
func (c Cache) Sets() int {
	lines := c.SizeKB * 1024 / c.LineBytes
	return lines / c.Ways
}

// Machine is a full core + memory hierarchy configuration.
type Machine struct {
	Name string
	Year int // release year, for the Fig. 1 / Fig. 2 timelines

	// Front end.
	FetchWidth  int
	DecodeWidth int
	// Penalty in cycles to refill the front end after a redirect
	// (branch misprediction or memory-order-violation squash).
	RedirectPenalty int

	// Back end.
	CommitWidth int
	IssuePorts  int // total execution ports
	LoadPorts   int
	StorePorts  int

	ROB int // reorder buffer entries
	IQ  int // issue queue entries
	LQ  int // load queue entries
	SQ  int // store queue / store buffer entries

	// Store buffer drain rate after commit (stores written to L1D per cycle).
	SBDrainPerCycle int

	// Memory hierarchy.
	L1I, L1D, L2, L3 Cache
	MemLatency       int // cycles, beyond L3

	// L1D IP-stride prefetcher degree (0 disables).
	PrefetchDegree int
}

// String returns the configuration name.
func (m Machine) String() string { return m.Name }

// Validate reports configuration errors (non-positive widths or capacities).
func (m Machine) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"FetchWidth", m.FetchWidth}, {"DecodeWidth", m.DecodeWidth},
		{"CommitWidth", m.CommitWidth}, {"IssuePorts", m.IssuePorts},
		{"LoadPorts", m.LoadPorts}, {"StorePorts", m.StorePorts},
		{"ROB", m.ROB}, {"IQ", m.IQ}, {"LQ", m.LQ}, {"SQ", m.SQ},
		{"SBDrainPerCycle", m.SBDrainPerCycle},
		{"RedirectPenalty", m.RedirectPenalty},
		{"MemLatency", m.MemLatency},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("config %s: %s must be positive, got %d", m.Name, c.name, c.v)
		}
	}
	if m.LoadPorts+m.StorePorts > m.IssuePorts {
		return fmt.Errorf("config %s: load+store ports (%d) exceed issue ports (%d)",
			m.Name, m.LoadPorts+m.StorePorts, m.IssuePorts)
	}
	for _, cc := range []struct {
		name string
		c    Cache
	}{{"L1I", m.L1I}, {"L1D", m.L1D}, {"L2", m.L2}, {"L3", m.L3}} {
		if cc.c.SizeKB <= 0 || cc.c.Ways <= 0 || cc.c.LineBytes <= 0 || cc.c.HitLatency <= 0 {
			return fmt.Errorf("config %s: cache %s has non-positive geometry", m.Name, cc.name)
		}
		if cc.c.Sets()*cc.c.Ways*cc.c.LineBytes != cc.c.SizeKB*1024 {
			return fmt.Errorf("config %s: cache %s size not divisible by ways×line", m.Name, cc.name)
		}
	}
	return nil
}

// AlderLake is the paper's Table I configuration: a 4-core Alder Lake
// (Golden Cove) class processor; we simulate one core.
func AlderLake() Machine {
	return Machine{
		Name: "alderlake", Year: 2021,
		FetchWidth: 6, DecodeWidth: 6, RedirectPenalty: 17,
		CommitWidth: 12, IssuePorts: 12, LoadPorts: 3, StorePorts: 2,
		ROB: 512, IQ: 204, LQ: 192, SQ: 114,
		SBDrainPerCycle: 2,
		L1I:             Cache{SizeKB: 32, Ways: 8, LineBytes: 64, HitLatency: 4, MSHRs: 64},
		L1D:             Cache{SizeKB: 48, Ways: 12, LineBytes: 64, HitLatency: 5, MSHRs: 64},
		L2:              Cache{SizeKB: 1280, Ways: 10, LineBytes: 64, HitLatency: 14, MSHRs: 64},
		L3:              Cache{SizeKB: 3072, Ways: 12, LineBytes: 64, HitLatency: 36, MSHRs: 64},
		MemLatency:      100,
		PrefetchDegree:  3,
	}
}

// Nehalem approximates the 2008 Intel Nehalem core used as the oldest
// generation in Fig. 1 and Fig. 2.
func Nehalem() Machine {
	return Machine{
		Name: "nehalem", Year: 2008,
		FetchWidth: 4, DecodeWidth: 4, RedirectPenalty: 14,
		CommitWidth: 4, IssuePorts: 6, LoadPorts: 1, StorePorts: 1,
		ROB: 128, IQ: 36, LQ: 48, SQ: 36,
		SBDrainPerCycle: 1,
		L1I:             Cache{SizeKB: 32, Ways: 4, LineBytes: 64, HitLatency: 4, MSHRs: 16},
		L1D:             Cache{SizeKB: 32, Ways: 8, LineBytes: 64, HitLatency: 4, MSHRs: 16},
		L2:              Cache{SizeKB: 256, Ways: 8, LineBytes: 64, HitLatency: 10, MSHRs: 32},
		L3:              Cache{SizeKB: 2048, Ways: 16, LineBytes: 64, HitLatency: 35, MSHRs: 32},
		MemLatency:      100,
		PrefetchDegree:  2,
	}
}

// SandyBridge approximates the 2011 Intel Sandy Bridge core.
func SandyBridge() Machine {
	m := Nehalem()
	m.Name, m.Year = "sandybridge", 2011
	m.ROB, m.IQ, m.LQ, m.SQ = 168, 54, 64, 36
	m.IssuePorts, m.LoadPorts = 6, 2
	m.RedirectPenalty = 15
	return m
}

// Haswell approximates the 2013 Intel Haswell core.
func Haswell() Machine {
	m := SandyBridge()
	m.Name, m.Year = "haswell", 2013
	m.ROB, m.IQ, m.LQ, m.SQ = 192, 60, 72, 42
	m.IssuePorts, m.StorePorts = 8, 2
	return m
}

// Skylake approximates the 2015 Intel Skylake core.
func Skylake() Machine {
	m := Haswell()
	m.Name, m.Year = "skylake", 2015
	m.ROB, m.IQ, m.LQ, m.SQ = 224, 97, 72, 56
	m.FetchWidth, m.DecodeWidth, m.CommitWidth = 5, 5, 8
	m.RedirectPenalty = 16
	return m
}

// SunnyCove approximates the 2019 Intel Sunny Cove (Ice Lake) core.
func SunnyCove() Machine {
	m := Skylake()
	m.Name, m.Year = "sunnycove", 2019
	m.ROB, m.IQ, m.LQ, m.SQ = 352, 160, 128, 72
	m.FetchWidth, m.DecodeWidth, m.CommitWidth = 5, 5, 10
	m.IssuePorts, m.LoadPorts, m.StorePorts = 10, 2, 2
	m.L1D = Cache{SizeKB: 48, Ways: 12, LineBytes: 64, HitLatency: 5, MSHRs: 32}
	return m
}

// Generations returns the processor generations of the Fig. 2 trend study,
// oldest first.
func Generations() []Machine {
	return []Machine{Nehalem(), SandyBridge(), Haswell(), Skylake(), SunnyCove(), AlderLake()}
}

// ByName returns the named machine configuration.
func ByName(name string) (Machine, error) {
	for _, m := range Generations() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("config: unknown machine %q", name)
}

// Names lists the available machine configuration names, oldest first.
func Names() []string {
	gens := Generations()
	out := make([]string, len(gens))
	for i, m := range gens {
		out[i] = m.Name
	}
	return out
}
