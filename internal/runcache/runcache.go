// Package runcache persists simulation results in a content-addressed
// on-disk store. Entries are keyed by a SHA-256 over the normalised
// sim.Config plus the simulator behaviour version (sim.BehaviorVersion), so
// a result is reused if and only if it came from an identical simulation of
// an identical simulator. The store is deliberately forgiving: writes are
// atomic (temp file + rename), and any unreadable entry — truncated,
// corrupt, produced by a different simulator version — reads as a miss,
// never as an error.
//
// Cache (cache.go) layers an in-process memoisation map and single-flight
// de-duplication (singleflight.go) over a Store, giving experiment runners
// the full memory → disk → simulate hierarchy.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Key returns the content address of a simulation: hex SHA-256 over the
// normalised Config and sim.BehaviorVersion. Configs that Run would treat
// identically (defaulted machine/predictor/instruction-count spelled out or
// left zero) hash identically.
func Key(cfg sim.Config) string {
	payload, err := json.Marshal(struct {
		Version int        `json:"version"`
		Config  sim.Config `json:"config"`
	}{sim.BehaviorVersion, cfg.Normalized()})
	if err != nil {
		// Config is a plain struct of scalars; Marshal cannot fail on it.
		panic("runcache: marshal config: " + err.Error())
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Store is a content-addressed directory of simulation results. Layout:
//
//	<dir>/<key[0:2]>/<key>.json
//
// where each file is an entry envelope carrying the version stamp, the key,
// the originating Config (for debugging with plain shell tools) and the
// stats.Run counters. The zero Store is unusable; use NewStore.
type Store struct {
	dir string
}

// NewStore returns a store rooted at dir. The directory is created lazily
// on first Put, so opening a store never fails and a read-only consumer of
// a missing directory simply sees misses.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entry is the on-disk envelope of one cached run.
type entry struct {
	Version int        `json:"version"`
	Key     string     `json:"key"`
	Config  sim.Config `json:"config"`
	Run     *stats.Run `json:"run"`
}

// path maps a key to its shard file.
func (s *Store) path(key string) string {
	if len(key) < 2 {
		return filepath.Join(s.dir, key+".json")
	}
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get loads the run stored under key. Every failure mode — missing file,
// truncated or corrupt JSON, a stamp from another simulator version, an
// envelope whose key does not match its address — is a miss, never an
// error: the caller falls back to simulating.
func (s *Store) Get(key string) (*stats.Run, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Version != sim.BehaviorVersion || e.Key != key || e.Run == nil {
		return nil, false
	}
	return e.Run, true
}

// Put stores run under key atomically: the envelope is written to a
// temporary file in the destination directory and renamed into place, so a
// crashed or concurrent writer can leave behind at worst a stale temp file,
// never a torn entry.
func (s *Store) Put(key string, cfg sim.Config, run *stats.Run) error {
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(entry{
		Version: sim.BehaviorVersion,
		Key:     key,
		Config:  cfg.Normalized(),
		Run:     run,
	}, "", "\t")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+filepath.Base(dst)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
