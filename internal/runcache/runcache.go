// Package runcache persists simulation results in a content-addressed
// on-disk store. Entries are keyed by a SHA-256 over the normalised
// sim.Config plus the simulator behaviour version (sim.BehaviorVersion), so
// a result is reused if and only if it came from an identical simulation of
// an identical simulator. The store is deliberately forgiving: writes are
// atomic (temp file + rename), and any unreadable entry — truncated,
// corrupt, produced by a different simulator version — reads as a miss,
// never as an error.
//
// Cache (cache.go) layers an in-process memoisation map and single-flight
// de-duplication (singleflight.go) over a Store, giving experiment runners
// the full memory → disk → simulate hierarchy.
package runcache

import (
	"encoding/json"
	"errors"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contentaddr"
	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Key returns the content address of a simulation: hex SHA-256 over the
// normalised Config and sim.BehaviorVersion. Configs that Run would treat
// identically (defaulted machine/predictor/instruction-count spelled out or
// left zero) hash identically.
func Key(cfg sim.Config) string {
	payload, err := json.Marshal(struct {
		Version int        `json:"version"`
		Config  sim.Config `json:"config"`
	}{sim.BehaviorVersion, cfg.Normalized()})
	if err != nil {
		// Config is a plain struct of scalars; Marshal cannot fail on it.
		panic("runcache: marshal config: " + err.Error())
	}
	return contentaddr.Sum(payload)
}

// ValidKey reports whether s has the exact shape Key produces: 64 lowercase
// hex digits. The gate is the shared content-address helper
// (internal/contentaddr) — one definition for every filesystem-facing key
// path, run cache and trace store alike, so no store can diverge into
// accepting a traversal-capable key shape. Every surface that accepts keys
// from the network (the fleet's GET /v1/peer/cache/{key} endpoint) must
// reject anything else before the key gets near the filesystem.
func ValidKey(s string) bool { return contentaddr.Valid(s) }

// Store is a content-addressed directory of simulation results. Layout:
//
//	<dir>/<key[0:2]>/<key>.json
//
// where each file is an entry envelope carrying the version stamp, the key,
// the originating Config (for debugging with plain shell tools) and the
// stats.Run counters. The zero Store is unusable; use NewStore.
//
// The store is best-effort by design: writes that fail (read-only
// directory, full disk) degrade the process to in-memory caching — the
// first failure is logged, every failure bumps CounterDiskWriteErrors, and
// after writeFailLimit consecutive failures the store stops issuing write
// syscalls entirely. A failed or skipped write never fails a run.
type Store struct {
	dir     string
	metrics atomic.Pointer[stats.Metrics]
	logOnce sync.Once
	// writeFails counts consecutive Put failures; at writeFailLimit the
	// store gives up on persistence (degraded) until the process restarts.
	writeFails atomic.Uint32
	degraded   atomic.Bool

	// Disk-tier garbage collection (gc.go): maxBytes caps the store's total
	// entry bytes (0 = unbounded), estBytes tracks the running estimate that
	// triggers a sweep, gcMu serialises sweeps.
	maxBytes atomic.Int64
	estBytes atomic.Int64
	gcMu     sync.Mutex
}

// writeFailLimit is the consecutive-write-failure budget before the store
// declares the directory unusable and stops trying.
const writeFailLimit = 4

// NewStore returns a store rooted at dir. The directory is created lazily
// on first Put, so opening a store never fails and a read-only consumer of
// a missing directory simply sees misses.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetMetrics points the store's counters (write errors, corrupt entries)
// at a registry. Safe to call concurrently with use; nil detaches.
func (s *Store) SetMetrics(m *stats.Metrics) { s.metrics.Store(m) }

// Degraded reports whether the store has given up on persistent writes
// after repeated failures.
func (s *Store) Degraded() bool { return s.degraded.Load() }

func (s *Store) count(name string) {
	if m := s.metrics.Load(); m != nil {
		m.Add(name, 1)
	}
}

// entry is the on-disk envelope of one cached run.
type entry struct {
	Version int        `json:"version"`
	Key     string     `json:"key"`
	Config  sim.Config `json:"config"`
	Run     *stats.Run `json:"run"`
}

// path maps a key to its shard file.
func (s *Store) path(key string) string {
	if len(key) < 2 {
		return filepath.Join(s.dir, key+".json")
	}
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get loads the run stored under key. Every failure mode — missing file,
// truncated or corrupt JSON, a stamp from another simulator version, an
// envelope whose key does not match its address — is a miss, never an
// error: the caller falls back to simulating. Detected corruption (vs a
// merely stale version stamp) bumps CounterDiskCorrupt.
func (s *Store) Get(key string) (*stats.Run, bool) {
	slowDisk(key)
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	if p := faultinject.Active(); p != nil && p.Should(faultinject.FaultCorrupt, key) && len(data) > 0 {
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0xff
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		s.count(CounterDiskCorrupt)
		return nil, false
	}
	if e.Version != sim.BehaviorVersion {
		return nil, false // stale simulator version: a plain miss
	}
	if e.Key != key || e.Run == nil {
		s.count(CounterDiskCorrupt)
		return nil, false
	}
	return e.Run, true
}

// errInjectedWrite marks a fault-injected write failure (chaos tests).
var errInjectedWrite = errors.New("faultinject: injected disk-write failure")

// Put stores run under key atomically: the envelope is written to a
// temporary file in the destination directory and renamed into place, so a
// crashed or concurrent writer can leave behind at worst a stale temp file,
// never a torn entry.
//
// Failures degrade rather than propagate pain: the first is logged, each
// bumps CounterDiskWriteErrors, and writeFailLimit consecutive failures
// switch the store to memory-only (no further write attempts). The error is
// still returned for observability, but callers treat persistence as
// best-effort and never fail a run on it.
func (s *Store) Put(key string, cfg sim.Config, run *stats.Run) error {
	if s.degraded.Load() {
		return nil // persistence disabled after repeated failures
	}
	n, err := s.put(key, cfg, run)
	if err == nil {
		s.writeFails.Store(0)
		s.wrote(n)
		return nil
	}
	s.count(CounterDiskWriteErrors)
	s.logOnce.Do(func() {
		log.Printf("runcache: persistent cache write failed, runs still served from memory (dir %s): %v", s.dir, err)
	})
	if s.writeFails.Add(1) >= writeFailLimit && !s.degraded.Swap(true) {
		log.Printf("runcache: disabling persistent cache writes after %d consecutive failures", writeFailLimit)
	}
	return err
}

// slowDisk injects FaultSlowDisk's per-operation stall when the active chaos
// plan says the fault fires for key. Slow disks cost latency, not
// correctness, so both Get and put pay it before touching the filesystem.
func slowDisk(key string) {
	if p := faultinject.Active(); p != nil && p.Should(faultinject.FaultSlowDisk, key) {
		time.Sleep(faultinject.SlowDiskDelay)
	}
}

// put writes one entry and returns the bytes written (for the GC's running
// size estimate).
func (s *Store) put(key string, cfg sim.Config, run *stats.Run) (int64, error) {
	slowDisk(key)
	if p := faultinject.Active(); p != nil && p.Should(faultinject.FaultDiskWrite, key) {
		return 0, errInjectedWrite
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return 0, err
	}
	data, err := json.MarshalIndent(entry{
		Version: sim.BehaviorVersion,
		Key:     key,
		Config:  cfg.Normalized(),
		Run:     run,
	}, "", "\t")
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+filepath.Base(dst)+".tmp*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(len(data)) + 1, nil
}
