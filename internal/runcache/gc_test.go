package runcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// entryKeys writes n distinct entries through the store and returns their
// keys in write order (oldest first). Mod times are spaced explicitly so
// oldest-first eviction order is unambiguous even on coarse filesystems.
func writeEntries(t *testing.T, s *Store, n int) []string {
	t.Helper()
	keys := make([]string, n)
	base := time.Now().Add(-time.Duration(n+1) * time.Minute)
	for i := range keys {
		cfg := sim.Config{App: "gc", Seed: int64(i + 1)}
		keys[i] = Key(cfg)
		if err := s.Put(keys[i], cfg, fakeRun("gc", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		mod := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(keys[i]), mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func diskBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".json") {
			total += info.Size()
		}
		return nil
	})
	return total
}

// TestGCEvictsOldestFirst: pushing the store past its cap evicts the oldest
// entries (and only those), lands under the low watermark, and counts every
// removal.
func TestGCEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	m := stats.NewMetrics()
	s.SetMetrics(m)

	keys := writeEntries(t, s, 8)
	total := diskBytes(t, dir)

	// Cap at roughly half the current size: a sweep must evict the oldest
	// entries until the store fits under 0.9*cap.
	cap := total / 2
	s.SetMaxBytes(cap)

	if got := diskBytes(t, dir); got > int64(gcLowWatermark*float64(cap)) {
		t.Errorf("after sweep store holds %d bytes, want <= %d", got, int64(gcLowWatermark*float64(cap)))
	}
	evicted := m.Get(CounterDiskEvicted)
	if evicted == 0 {
		t.Fatal("no evictions counted")
	}
	// The evicted set must be exactly the oldest prefix: every surviving key
	// is newer than every evicted one.
	firstSurvivor := -1
	for i, k := range keys {
		if _, ok := s.Get(k); ok {
			firstSurvivor = i
			break
		}
	}
	if firstSurvivor <= 0 {
		t.Fatalf("firstSurvivor = %d, want a non-empty evicted prefix", firstSurvivor)
	}
	for i, k := range keys {
		_, ok := s.Get(k)
		if i < firstSurvivor && ok {
			t.Errorf("old entry %d survived while newer ones were evicted", i)
		}
		if i >= firstSurvivor && !ok {
			t.Errorf("entry %d evicted out of oldest-first order", i)
		}
	}
	if int(evicted) != firstSurvivor {
		t.Errorf("evicted counter = %d, want %d", evicted, firstSurvivor)
	}
}

// TestGCSweepsOnWrite: with a cap installed, continued writes keep the
// store bounded without any explicit sweep calls.
func TestGCSweepsOnWrite(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	s.SetMetrics(stats.NewMetrics())

	// Size one entry, then cap the store at ~4 entries.
	probe := sim.Config{App: "gc-probe"}
	if err := s.Put(Key(probe), probe, fakeRun("gc-probe", 1)); err != nil {
		t.Fatal(err)
	}
	per := diskBytes(t, dir)
	s.SetMaxBytes(4 * per)

	for i := 0; i < 32; i++ {
		cfg := sim.Config{App: "gc-write", Seed: int64(i + 1)}
		if err := s.Put(Key(cfg), cfg, fakeRun("gc-write", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if got := diskBytes(t, dir); got > 4*per {
		t.Errorf("store grew to %d bytes despite cap %d", got, 4*per)
	}
	// The most recent write always survives its own sweep.
	last := sim.Config{App: "gc-write", Seed: 32}
	if _, ok := s.Get(Key(last)); !ok {
		t.Error("most recent entry was evicted")
	}
}

// TestGCStartupSweep: SetMaxBytes on a freshly opened store over a
// pre-populated directory enforces the cap immediately — the "on startup"
// path for long-lived nodes restarting onto a grown cache.
func TestGCStartupSweep(t *testing.T) {
	dir := t.TempDir()
	writeEntries(t, NewStore(dir), 8)
	before := diskBytes(t, dir)

	s2 := NewStore(dir)
	m := stats.NewMetrics()
	s2.SetMetrics(m)
	s2.SetMaxBytes(before / 2)
	if got := diskBytes(t, dir); got > before/2 {
		t.Errorf("startup sweep left %d bytes, cap %d", got, before/2)
	}
	if m.Get(CounterDiskEvicted) == 0 {
		t.Error("startup sweep counted no evictions")
	}
}

// TestGCUncappedIsNoop: without a cap nothing is ever evicted.
func TestGCUncappedIsNoop(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	m := stats.NewMetrics()
	s.SetMetrics(m)
	keys := writeEntries(t, s, 8)
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %s missing from uncapped store", k)
		}
	}
	if m.Get(CounterDiskEvicted) != 0 {
		t.Error("uncapped store evicted entries")
	}
}
