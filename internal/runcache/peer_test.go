package runcache

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestValidKey(t *testing.T) {
	good := Key(sim.Config{App: "511.povray"})
	cases := []struct {
		key  string
		want bool
	}{
		{good, true},
		{strings.Repeat("0123456789abcdef", 4), true},
		{"", false},
		{good[:63], false},                                 // short
		{good + "0", false},                                // long
		{strings.ToUpper(good), false},                     // uppercase hex
		{strings.Repeat("g", 64), false},                   // non-hex letters
		{"../../../../etc/passwd", false},                  // traversal
		{strings.Repeat("ab", 28) + "/../abcdefab", false}, // embedded traversal, right length
		{good[:32] + " " + good[33:], false},               // interior whitespace
	}
	for _, tc := range cases {
		if got := ValidKey(tc.key); got != tc.want {
			t.Errorf("ValidKey(%q) = %v, want %v", tc.key, got, tc.want)
		}
	}
}

// TestCachePeerTier: the peer tier sits strictly between the local tiers and
// the simulator — consulted only on a mem+disk miss, and a hit is promoted
// into both local tiers so the next lookup never leaves the process.
func TestCachePeerTier(t *testing.T) {
	dir := t.TempDir()
	m := stats.NewMetrics()
	c := New(NewStore(dir), m)
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	want := fakeRun("511.povray", 123)

	var sims, fetches atomic.Uint64
	simulate := func(context.Context) (*stats.Run, error) {
		sims.Add(1)
		return fakeRun("511.povray", 999), nil
	}
	c.SetPeerFetch(func(ctx context.Context, key string) (*stats.Run, bool) {
		fetches.Add(1)
		return want, true
	})

	// Local miss → peer hit: no simulation, and the peer's row is the answer.
	run, err := c.GetOrRun(context.Background(), cfg, simulate)
	if err != nil {
		t.Fatal(err)
	}
	if run.Cycles != want.Cycles {
		t.Errorf("got cycles %d, want the peer row's %d", run.Cycles, want.Cycles)
	}
	if sims.Load() != 0 {
		t.Error("peer hit still simulated")
	}
	if fetches.Load() != 1 || m.Get(CounterPeerHits) != 1 {
		t.Errorf("fetches=%d peer hits=%d, want 1/1", fetches.Load(), m.Get(CounterPeerHits))
	}

	// The hit was promoted to memory: the next lookup is local.
	if _, err := c.GetOrRun(context.Background(), cfg, simulate); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != 1 {
		t.Error("mem hit consulted the peer tier")
	}
	if m.Get(CounterMemHits) != 1 {
		t.Errorf("mem hits = %d, want 1", m.Get(CounterMemHits))
	}

	// ... and to disk: a cold cache over the same directory hits disk without
	// simulating or fetching.
	m2 := stats.NewMetrics()
	c2 := New(NewStore(dir), m2)
	c2.SetPeerFetch(func(ctx context.Context, key string) (*stats.Run, bool) {
		t.Error("disk hit consulted the peer tier")
		return nil, false
	})
	if _, err := c2.GetOrRun(context.Background(), cfg, simulate); err != nil {
		t.Fatal(err)
	}
	if sims.Load() != 0 || m2.Get(CounterDiskHits) != 1 {
		t.Errorf("sims=%d disk hits=%d, want 0/1", sims.Load(), m2.Get(CounterDiskHits))
	}
}

// TestCachePeerMiss: a fleet-wide miss falls through to the simulator and is
// counted as both a peer miss and a plain cache miss.
func TestCachePeerMiss(t *testing.T) {
	m := stats.NewMetrics()
	c := New(nil, m)
	cfg := sim.Config{App: "519.lbm", Instructions: 1000}

	var sims atomic.Uint64
	simulate := func(context.Context) (*stats.Run, error) {
		sims.Add(1)
		return fakeRun("519.lbm", 77), nil
	}
	c.SetPeerFetch(func(ctx context.Context, key string) (*stats.Run, bool) {
		if !ValidKey(key) {
			t.Errorf("peer tier asked for malformed key %q", key)
		}
		return nil, false
	})

	if _, err := c.GetOrRun(context.Background(), cfg, simulate); err != nil {
		t.Fatal(err)
	}
	if sims.Load() != 1 {
		t.Errorf("simulated %d times, want 1", sims.Load())
	}
	if m.Get(CounterPeerMisses) != 1 || m.Get(CounterMisses) != 1 {
		t.Errorf("peer misses=%d misses=%d, want 1/1",
			m.Get(CounterPeerMisses), m.Get(CounterMisses))
	}

	// Removing the peer tier reverts to purely local behaviour.
	c.SetPeerFetch(nil)
	cfg2 := sim.Config{App: "511.povray", Instructions: 1000}
	if _, err := c.GetOrRun(context.Background(), cfg2, simulate); err != nil {
		t.Fatal(err)
	}
	if m.Get(CounterPeerMisses) != 1 {
		t.Error("removed peer tier was still consulted")
	}
}

// TestCachedLocalOnly: Cached (the peer-serving lookup) reads the local
// tiers only — it never simulates, never recurses into the peer tier, and
// promotes disk hits to memory like any other read.
func TestCachedLocalOnly(t *testing.T) {
	dir := t.TempDir()
	m := stats.NewMetrics()
	c := New(NewStore(dir), m)
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	key := Key(cfg)

	c.SetPeerFetch(func(ctx context.Context, key string) (*stats.Run, bool) {
		t.Error("Cached recursed into the peer tier")
		return nil, false
	})
	if _, ok := c.Cached(key); ok {
		t.Fatal("empty cache claims a hit")
	}

	// Fill through the normal path (peer tier off: GetOrRun legitimately
	// consults it on a miss, which is not what this test watches).
	c.SetPeerFetch(nil)
	want := fakeRun("511.povray", 55)
	if _, err := c.GetOrRun(context.Background(), cfg,
		func(context.Context) (*stats.Run, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	c.SetPeerFetch(func(ctx context.Context, key string) (*stats.Run, bool) {
		t.Error("Cached recursed into the peer tier")
		return nil, false
	})
	run, ok := c.Cached(key)
	if !ok || run.Cycles != want.Cycles {
		t.Fatalf("Cached(%s) = %v, %v; want the stored run", key, run, ok)
	}

	// Cold cache, same dir: Cached must find the disk entry.
	c2 := New(NewStore(dir), stats.NewMetrics())
	if run, ok := c2.Cached(key); !ok || run.Cycles != want.Cycles {
		t.Fatal("Cached missed the disk tier")
	}
}
