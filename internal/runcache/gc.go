// Disk-tier garbage collection: an optional byte cap on the Store with
// oldest-first eviction, so long-lived fleet nodes don't grow their
// content-addressed cache without bound. Eviction is correctness-free by
// construction — an evicted entry is indistinguishable from one never
// written (a miss that re-simulates to the same bytes) — so the policy can
// be simple: evict by file modification time, oldest first, down to a low
// watermark below the cap (avoiding a sweep per Put at the boundary).
//
// The trigger is a running byte estimate maintained on the Put path (plus a
// full sweep at SetMaxBytes time, covering whatever a previous process left
// behind). The estimate only grows between sweeps; each sweep re-measures
// the directory exactly and resets it, so drift never accumulates.
package runcache

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// gcLowWatermark is the fraction of the byte cap a sweep evicts down to.
const gcLowWatermark = 0.9

// SetMaxBytes caps the store's on-disk size (0 removes the cap). The cap is
// enforced immediately — a synchronous oldest-first sweep covers entries
// left by previous processes ("on startup") — and then after writes, on the
// Put path, whenever the running size estimate crosses the cap. Each
// removed entry bumps CounterDiskEvicted.
func (s *Store) SetMaxBytes(n int64) {
	if n < 0 {
		n = 0
	}
	s.maxBytes.Store(n)
	if n > 0 {
		s.sweep()
	}
}

// MaxBytes returns the current cap (0 = unbounded).
func (s *Store) MaxBytes() int64 { return s.maxBytes.Load() }

// wrote records n freshly written bytes and sweeps when the estimate
// crosses the cap.
func (s *Store) wrote(n int64) {
	max := s.maxBytes.Load()
	if max <= 0 {
		return
	}
	if s.estBytes.Add(n) > max {
		s.sweep()
	}
}

// sweep measures the store exactly and, when over the cap, removes entries
// oldest-first down to the low watermark. Concurrent sweeps serialise; the
// estimate is reset to the measured remainder so the next trigger point is
// exact. Removal failures are skipped (the entry will be retried next
// sweep) — GC is best-effort like every other disk interaction here.
func (s *Store) sweep() {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	max := s.maxBytes.Load()
	if max <= 0 {
		return
	}
	type fileInfo struct {
		path string
		size int64
		mod  time.Time
	}
	var (
		files []fileInfo
		total int64
	)
	filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil // unreadable or foreign files are not ours to count
		}
		files = append(files, fileInfo{path, info.Size(), info.ModTime()})
		total += info.Size()
		return nil
	})
	if total > max {
		sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
		target := int64(gcLowWatermark * float64(max))
		for _, f := range files {
			if total <= target {
				break
			}
			if os.Remove(f.path) == nil {
				total -= f.size
				s.count(CounterDiskEvicted)
			}
		}
	}
	s.estBytes.Store(total)
}
