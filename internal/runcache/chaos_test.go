package runcache

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/stats"
)

func activateFaults(t *testing.T, spec string) {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Activate(p))
}

// TestChaosDiskWriteFailureDegrades: failed persistent writes never fail a
// run — each bumps the error counter, and after writeFailLimit consecutive
// failures the store stops issuing write syscalls entirely while the memory
// layer keeps serving.
func TestChaosDiskWriteFailureDegrades(t *testing.T) {
	activateFaults(t, "diskwrite=1,seed=1")
	m := stats.NewMetrics()
	s := NewStore(t.TempDir())
	s.SetMetrics(m)
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	run := fakeRun("511.povray", 100)

	for i := 0; i < writeFailLimit; i++ {
		if s.Degraded() {
			t.Fatalf("degraded after only %d failures, limit is %d", i, writeFailLimit)
		}
		if err := s.Put(Key(cfg), cfg, run); err == nil {
			t.Fatalf("put %d: want injected write failure", i)
		}
	}
	if !s.Degraded() {
		t.Fatal("store must degrade after repeated write failures")
	}
	if err := s.Put(Key(cfg), cfg, run); err != nil {
		t.Fatalf("degraded store must skip writes silently, got %v", err)
	}
	if got := m.Get(CounterDiskWriteErrors); got != writeFailLimit {
		t.Errorf("%s = %d, want %d (skipped writes must not count)", CounterDiskWriteErrors, got, writeFailLimit)
	}

	// The cache over a degraded store still memoises: one simulate, then
	// memory hits, and Put failures never surface to GetOrRun callers.
	c := New(s, m)
	var sims atomic.Uint64
	simulate := func(context.Context) (*stats.Run, error) {
		sims.Add(1)
		return run, nil
	}
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrRun(context.Background(), cfg, simulate); err != nil {
			t.Fatalf("GetOrRun %d over degraded disk: %v", i, err)
		}
	}
	if sims.Load() != 1 {
		t.Errorf("simulated %d times, want 1 (memory layer must survive disk degradation)", sims.Load())
	}
}

// TestChaosWriteRecoveryResetsTheClock: the degradation budget counts
// consecutive failures; one success resets it.
func TestChaosWriteRecoveryResetsTheClock(t *testing.T) {
	m := stats.NewMetrics()
	s := NewStore(t.TempDir())
	s.SetMetrics(m)
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	run := fakeRun("511.povray", 100)

	p, err := faultinject.Parse("diskwrite=1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Activate(p)
	for i := 0; i < writeFailLimit-1; i++ {
		if err := s.Put(Key(cfg), cfg, run); err == nil {
			t.Fatal("want injected write failure")
		}
	}
	restore()
	if err := s.Put(Key(cfg), cfg, run); err != nil {
		t.Fatalf("fault-free put: %v", err)
	}
	t.Cleanup(faultinject.Activate(p))
	for i := 0; i < writeFailLimit-1; i++ {
		if err := s.Put(Key(cfg), cfg, run); err == nil {
			t.Fatal("want injected write failure")
		}
	}
	if s.Degraded() {
		t.Error("a successful write must reset the consecutive-failure budget")
	}
}

// TestChaosCorruptEntryReadsAsMiss: a corrupted persistent entry is a
// counted miss at read time; the file itself is untouched, so reads recover
// the moment the corruption (here: injected at read) stops.
func TestChaosCorruptEntryReadsAsMiss(t *testing.T) {
	m := stats.NewMetrics()
	s := NewStore(t.TempDir())
	s.SetMetrics(m)
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	key := Key(cfg)
	if err := s.Put(key, cfg, fakeRun("511.povray", 500)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("sanity: entry must hit before corruption")
	}

	p, err := faultinject.Parse("corrupt=1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Activate(p)
	_, ok := s.Get(key)
	restore()
	if ok {
		t.Fatal("corrupted entry must read as a miss")
	}
	if got := m.Get(CounterDiskCorrupt); got != 1 {
		t.Errorf("%s = %d, want 1", CounterDiskCorrupt, got)
	}
	if _, ok := s.Get(key); !ok {
		t.Error("read-time corruption must not damage the on-disk entry")
	}
}

// TestChaosSlowDiskCostsTimeNotCorrectness: FaultSlowDisk stalls persistent
// reads and writes by SlowDiskDelay but every result stays bit-identical —
// a slow disk degrades latency, never data.
func TestChaosSlowDiskCostsTimeNotCorrectness(t *testing.T) {
	s := NewStore(t.TempDir())
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	key := Key(cfg)
	want := fakeRun("511.povray", 321)

	activateFaults(t, "slowdisk=1,seed=1")
	start := time.Now()
	if err := s.Put(key, cfg, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	elapsed := time.Since(start)
	if !ok {
		t.Fatal("entry written under slowdisk must read back")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("slowdisk corrupted the entry:\nwant %+v\ngot  %+v", want, got)
	}
	// One slowed Put plus one slowed Get: at least two injected delays.
	if min := 2 * faultinject.SlowDiskDelay; elapsed < min {
		t.Errorf("put+get took %v, want >= %v with slowdisk active", elapsed, min)
	}

	// With the plan restored, the same store is fast again (well under one
	// injected delay for a single read).
	faultinject.Activate(nil)
	start = time.Now()
	if _, ok := s.Get(key); !ok {
		t.Fatal("entry vanished after plan deactivation")
	}
	if elapsed := time.Since(start); elapsed >= faultinject.SlowDiskDelay {
		t.Errorf("fault-free read took %v, want < %v", elapsed, faultinject.SlowDiskDelay)
	}
}
