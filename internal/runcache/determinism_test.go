package runcache

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// The determinism contract the run cache depends on: simulating the same
// Config twice must produce bit-identical stats.Run aggregates, for every
// predictor spec family the paper evaluates. If any of these subtests fail,
// persisted entries are not trustworthy and sim.BehaviorVersion churn
// cannot save you — fix the nondeterminism first.
func TestSimulationDeterminism(t *testing.T) {
	specs := []string{"phast", "storesets", "nosq", "mdptage", "ideal"}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			cfg := sim.Config{App: "511.povray", Predictor: spec, Instructions: 25_000}
			first, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, first, second, "repeat simulation")

			// And once through the cache: a disk round trip must return the
			// same aggregates the simulator produced.
			c := New(NewStore(t.TempDir()), nil)
			cached, err := c.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, first, cached, "cache miss path")

			reread := New(NewStore(c.Disk().Dir()), nil)
			fromDisk, err := reread.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if reread.Metrics().Get(CounterDiskHits) != 1 {
				t.Fatalf("expected a disk hit, got metrics:\n%s", reread.Metrics())
			}
			requireIdentical(t, first, fromDisk, "disk round trip")
		})
	}
}

// TestPooledRunMatchesFreshCore pins the determinism the sim-level reuse
// machinery (interned traces + the core pool) must preserve: sim.Run, which
// recycles cores and shares one immutable trace across runs, must return
// exactly what sim.RunCore returns on a freshly constructed, never-pooled
// core. The repeated sim.Run guarantees at least one run goes through a
// Reset core rather than a new one.
func TestPooledRunMatchesFreshCore(t *testing.T) {
	for _, spec := range []string{"phast", "storesets", "none"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			cfg := sim.Config{App: "541.leela", Predictor: spec, Instructions: 25_000}
			pooled1, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pooled2, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, _, err := sim.RunCore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fresh, pooled1, "first pooled run vs fresh core")
			requireIdentical(t, fresh, pooled2, "reset-core run vs fresh core")
		})
	}
}

// requireIdentical asserts two runs are bit-identical, both structurally
// and through the JSON encoding the store persists.
func requireIdentical(t *testing.T, want, got *stats.Run, what string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: runs differ:\nwant %+v\ngot  %+v", what, want, got)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("%s: serialised runs differ:\n%s\n%s", what, wantJSON, gotJSON)
	}
}
