package runcache

import (
	"context"
	"errors"
	"sync"

	"repro/internal/stats"
)

// errFlightPanicked is what waiters receive when the flight leader's fn
// panicked: the panic propagates on the leader's goroutine (and is recovered
// into a typed error at the sim layer), while waiters get this sentinel
// instead of blocking forever.
var errFlightPanicked = errors.New("runcache: in-flight simulation panicked")

// call is one in-flight simulation shared by every waiter on its key.
type call struct {
	done chan struct{} // closed when run/err are final
	run  *stats.Run
	err  error
}

// Group de-duplicates concurrent work by key: while one goroutine executes
// fn for a key, every other goroutine asking for the same key blocks and
// receives the first execution's result instead of re-running fn. The zero
// Group is ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn once per key among concurrent callers. shared reports
// whether this caller received another caller's result rather than running
// fn itself. A waiter whose ctx ends before the flight completes returns
// its ctx error immediately — the flight itself keeps running under the
// leader (whose own context governs fn). Results are not retained after the
// flight completes — pair a Group with a cache for memoisation across time,
// not just across concurrency.
func (g *Group) Do(ctx context.Context, key string, fn func() (*stats.Run, error)) (run *stats.Run, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*call{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.run, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// The flight must resolve even if fn panics (the panic re-propagates on
	// this goroutine; waiters get errFlightPanicked rather than a hang).
	finished := false
	defer func() {
		if !finished {
			c.run, c.err = nil, errFlightPanicked
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.run, c.err = fn()
	finished = true
	return c.run, c.err, false
}
