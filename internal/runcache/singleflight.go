package runcache

import (
	"sync"

	"repro/internal/stats"
)

// call is one in-flight simulation shared by every waiter on its key.
type call struct {
	wg  sync.WaitGroup
	run *stats.Run
	err error
}

// Group de-duplicates concurrent work by key: while one goroutine executes
// fn for a key, every other goroutine asking for the same key blocks and
// receives the first execution's result instead of re-running fn. The zero
// Group is ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call
}

// Do executes fn once per key among concurrent callers. shared reports
// whether this caller received another caller's result rather than running
// fn itself. Results are not retained after the flight completes — pair a
// Group with a cache for memoisation across time, not just across
// concurrency.
func (g *Group) Do(key string, fn func() (*stats.Run, error)) (run *stats.Run, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*call{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.run, c.err, true
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.run, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.run, c.err, false
}
