package runcache

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeRun builds a distinguishable Run without simulating.
func fakeRun(app string, cycles uint64) *stats.Run {
	return &stats.Run{App: app, Predictor: "phast", Machine: "alderlake",
		Cycles: cycles, Committed: 2 * cycles, Loads: 7, Stores: 3}
}

func TestKeyNormalization(t *testing.T) {
	bare := sim.Config{App: "511.povray"}
	spelled := sim.Config{
		App: "511.povray", Machine: "alderlake", Predictor: "phast",
		Instructions: sim.DefaultInstructions, BranchPredictor: "tagescl",
	}
	if Key(bare) != Key(spelled) {
		t.Error("defaulted and spelled-out configs must share a key")
	}
	distinct := []sim.Config{
		{App: "519.lbm"},
		{App: "511.povray", Predictor: "storesets"},
		{App: "511.povray", Machine: "nehalem"},
		{App: "511.povray", Instructions: 1234},
		{App: "511.povray", Seed: 42},
		{App: "511.povray", FwdFilterOff: true},
		{App: "511.povray", TrainAtDetect: true},
	}
	seen := map[string]int{Key(bare): -1}
	for i, cfg := range distinct {
		k := Key(cfg)
		if j, dup := seen[k]; dup {
			t.Errorf("configs %d and %d collide on %s", i, j, k)
		}
		seen[k] = i
	}
	// SVW overrides the forwarding-filter switch; the pair must not split.
	if Key(sim.Config{App: "x", SVWFilter: true}) !=
		Key(sim.Config{App: "x", SVWFilter: true, FwdFilterOff: true}) {
		t.Error("SVWFilter must fold FwdFilterOff into one key")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir())
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	key := Key(cfg)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store must miss")
	}
	want := fakeRun("511.povray", 500)
	if err := s.Put(key, cfg, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry must hit")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the run: %+v != %+v", got, want)
	}
	// Atomic write: no temp litter next to the entry.
	files, err := filepath.Glob(filepath.Join(s.Dir(), key[:2], "*.tmp*"))
	if err != nil || len(files) != 0 {
		t.Errorf("temp files left behind: %v (%v)", files, err)
	}
}

// TestStoreCorruption is the table-driven contract of the forgiving reader:
// every damaged entry is a miss, never an error or a wrong result.
func TestStoreCorruption(t *testing.T) {
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	key := Key(cfg)
	cases := []struct {
		name   string
		damage func(t *testing.T, s *Store, path string)
	}{
		{"truncated file", func(t *testing.T, s *Store, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty file", func(t *testing.T, s *Store, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage bytes", func(t *testing.T, s *Store, path string) {
			if err := os.WriteFile(path, []byte("not json {"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong version stamp", func(t *testing.T, s *Store, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var e entry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatal(err)
			}
			e.Version = sim.BehaviorVersion + 1
			data, err = json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"key mismatch", func(t *testing.T, s *Store, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var e entry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatal(err)
			}
			e.Key = strings.Repeat("0", len(e.Key))
			data, err = json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"null run", func(t *testing.T, s *Store, path string) {
			data, err := json.Marshal(entry{Version: sim.BehaviorVersion, Key: key})
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := NewStore(t.TempDir())
			if err := s.Put(key, cfg, fakeRun("511.povray", 500)); err != nil {
				t.Fatal(err)
			}
			c.damage(t, s, s.path(key))
			if run, ok := s.Get(key); ok {
				t.Errorf("damaged entry must miss, got %+v", run)
			}
		})
	}
}

func TestCacheLayering(t *testing.T) {
	dir := t.TempDir()
	m := stats.NewMetrics()
	c := New(NewStore(dir), m)
	cfg := sim.Config{App: "511.povray", Instructions: 1000}

	ctx := context.Background()
	var sims atomic.Uint64
	simulate := func(context.Context) (*stats.Run, error) {
		sims.Add(1)
		return fakeRun("511.povray", 100), nil
	}

	// Miss → simulate → memory hit.
	if _, err := c.GetOrRun(ctx, cfg, simulate); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrRun(ctx, cfg, simulate); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 1 {
		t.Fatalf("simulated %d times, want 1", got)
	}
	if m.Get(CounterMemHits) != 1 || m.Get(CounterMisses) != 1 {
		t.Errorf("mem=%d miss=%d, want 1/1", m.Get(CounterMemHits), m.Get(CounterMisses))
	}

	// A fresh cache over the same directory hits disk, not the simulator.
	m2 := stats.NewMetrics()
	c2 := New(NewStore(dir), m2)
	if _, err := c2.GetOrRun(ctx, cfg, simulate); err != nil {
		t.Fatal(err)
	}
	if got := sims.Load(); got != 1 {
		t.Fatalf("disk layer missed: simulated %d times, want 1", got)
	}
	if m2.Get(CounterDiskHits) != 1 {
		t.Errorf("disk hits = %d, want 1", m2.Get(CounterDiskHits))
	}

	// Errors propagate and are not cached.
	boom := errors.New("boom")
	bad := sim.Config{App: "519.lbm", Instructions: 1000}
	fail := func(context.Context) (*stats.Run, error) { return nil, boom }
	if _, err := c.GetOrRun(ctx, bad, fail); !errors.Is(err, boom) {
		t.Fatalf("want propagated error, got %v", err)
	}
	if _, err := c.GetOrRun(ctx, bad, simulate); err != nil {
		t.Fatalf("error must not be cached: %v", err)
	}
}

func TestCacheInMemoryOnly(t *testing.T) {
	c := New(nil, nil)
	cfg := sim.Config{App: "511.povray", Instructions: 1000}
	var sims atomic.Uint64
	simulate := func(context.Context) (*stats.Run, error) {
		sims.Add(1)
		return fakeRun("511.povray", 100), nil
	}
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrRun(context.Background(), cfg, simulate); err != nil {
			t.Fatal(err)
		}
	}
	if sims.Load() != 1 {
		t.Errorf("simulated %d times, want 1", sims.Load())
	}
}

func TestSingleFlight(t *testing.T) {
	var g Group
	var calls, shares atomic.Uint64
	gate := make(chan struct{})
	const waiters = 16
	results := make([]*stats.Run, waiters)
	do := func(i int) {
		run, err, shared := g.Do(context.Background(), "k", func() (*stats.Run, error) {
			calls.Add(1)
			<-gate // hold the flight open while waiters pile up
			return fakeRun("x", 1), nil
		})
		if err != nil {
			t.Error(err)
		}
		if shared {
			shares.Add(1)
		}
		results[i] = run
	}
	var wg sync.WaitGroup
	// Launch the winner first and wait until its flight is in progress, so
	// every later caller finds a flight to join.
	wg.Add(1)
	go func() { defer wg.Done(); do(0) }()
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	for i := 1; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() { defer wg.Done(); do(i) }()
	}
	time.Sleep(50 * time.Millisecond) // let the waiters reach the group
	close(gate)
	wg.Wait()
	// Every caller either executed fn or shared a result; with the flight
	// held open, all waiters coalesce onto the single winner.
	if calls.Load()+shares.Load() != waiters {
		t.Errorf("calls(%d)+shared(%d) != %d", calls.Load(), shares.Load(), waiters)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different result", i)
		}
	}
}
