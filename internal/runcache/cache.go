package runcache

import (
	"context"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Counter names exported to the shared stats.Metrics registry. The split
// lets the paperfigs acceptance check ("second run performs zero new
// simulations") read RunsSimulated directly.
const (
	// CounterMemHits counts requests answered from the in-process map.
	CounterMemHits = "cache.hits.mem"
	// CounterDiskHits counts requests answered from the persistent store.
	CounterDiskHits = "cache.hits.disk"
	// CounterMisses counts requests that had to simulate.
	CounterMisses = "cache.misses"
	// CounterCoalesced counts requests that piggybacked on an identical
	// in-flight request (single-flight sharing).
	CounterCoalesced = "cache.coalesced"
	// CounterDiskWriteErrors counts failed persistent-store writes (the
	// store is best-effort: a failed Put never fails the run, and repeated
	// failures disable persistence — see Store.Put).
	CounterDiskWriteErrors = "runcache.disk.write_errors"
	// CounterDiskCorrupt counts persistent entries dropped as corrupt
	// (unparseable JSON, key mismatch, empty payload) — each reads as a
	// miss and the run is re-simulated.
	CounterDiskCorrupt = "runcache.disk.corrupt"
	// CounterDiskEvicted counts persistent entries removed by the disk-tier
	// garbage collector (Store.SetMaxBytes): oldest-first eviction when the
	// store exceeds its byte cap. An evicted entry is a future miss, never
	// an error.
	CounterDiskEvicted = "runcache.disk.evicted"
	// CounterPeerHits counts requests answered by fetching another fleet
	// member's cached entry (the peer tier, between disk and simulate).
	CounterPeerHits = "runcache.peer.hits"
	// CounterPeerMisses counts peer-tier lookups that found no copy
	// anywhere in the fleet and fell through to simulating.
	CounterPeerMisses = "runcache.peer.misses"
	// CounterPeerErrors counts failed peer fetch attempts (unreachable
	// member, bad response). Errors degrade to simulating locally — they
	// are counted by the fetcher, never surfaced to the run.
	CounterPeerErrors = "runcache.peer.errors"
	// HistPeerFetch is the per-attempt peer fetch latency histogram
	// (seconds), observed by the fetcher for hits and misses alike.
	HistPeerFetch = "runcache.peer.fetch.seconds"
	// CounterRunsSimulated counts simulations actually executed.
	CounterRunsSimulated = "runs.simulated"
	// CounterSimNanos accumulates wall-time spent inside the simulator.
	CounterSimNanos = "sim.walltime.ns"
	// CounterSimUops accumulates committed micro-ops across executed
	// simulations; with CounterSimNanos it yields simulator throughput.
	CounterSimUops = "sim.uops.committed"
	// CounterSimAllocObjs accumulates heap objects allocated while inside
	// the simulator (a process-wide /gc/heap/allocs:objects delta, so
	// concurrent simulations attribute each other's allocations — treat it
	// as an upper bound per run). With CounterRunsSimulated it yields
	// allocations per run, the zero-alloc steady-state health metric.
	CounterSimAllocObjs = "sim.heap.alloc.objs"
)

// heapAllocObjects reads the runtime's cumulative allocated-objects count.
func heapAllocObjects() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// PeerFetchFunc is the peer tier of a clustered cache: given a key it asks
// other fleet members for their cached copy, returning (run, true) on a hit
// and (nil, false) on a miss. Implementations own their failure handling —
// an unreachable peer is reported as a miss (and counted under
// CounterPeerErrors by the fetcher), never as an error, so the run always
// degrades to simulating locally. The context bounds the fetch; a fetch
// must cost strictly less than a simulation or it has no business existing.
type PeerFetchFunc func(ctx context.Context, key string) (*stats.Run, bool)

// Cache layers an in-process memoisation map over an optional persistent
// Store, with single-flight de-duplication so concurrent requests for the
// same key simulate once. Lookup order: memory → disk → peer (when a
// PeerFetchFunc is installed) → simulate. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	mem     map[string]*stats.Run
	disk    *Store // nil = in-memory only
	peer    atomic.Pointer[PeerFetchFunc]
	group   Group
	metrics *stats.Metrics
}

// New builds a cache over disk (nil for in-memory only) reporting to m
// (nil for a private registry). The disk store's own counters are pointed
// at the same registry.
func New(disk *Store, m *stats.Metrics) *Cache {
	if m == nil {
		m = stats.NewMetrics()
	}
	if disk != nil {
		disk.SetMetrics(m)
	}
	return &Cache{mem: map[string]*stats.Run{}, disk: disk, metrics: m}
}

// Metrics returns the registry the cache reports to.
func (c *Cache) Metrics() *stats.Metrics { return c.metrics }

// Disk returns the persistent layer (nil if in-memory only).
func (c *Cache) Disk() *Store { return c.disk }

// SetPeerFetch installs (or, with nil, removes) the peer tier consulted
// between the disk layer and simulating. Safe to call concurrently with
// running lookups; in-flight lookups keep the fetcher they loaded.
func (c *Cache) SetPeerFetch(f PeerFetchFunc) {
	if f == nil {
		c.peer.Store(nil)
		return
	}
	c.peer.Store(&f)
}

// Cached returns the run stored under key in the local tiers only (memory,
// then disk, promoting a disk hit to memory), never simulating and never
// asking peers — the lookup this node serves when it is the peer being
// fetched from. Local-tier hit counters are untouched: a peer's traffic is
// not this node's cache performance.
func (c *Cache) Cached(key string) (*stats.Run, bool) {
	if run, ok := c.memGet(key); ok {
		return run, true
	}
	if c.disk != nil {
		if run, ok := c.disk.Get(key); ok {
			c.memPut(key, run)
			return run, true
		}
	}
	return nil, false
}

func (c *Cache) memGet(key string) (*stats.Run, bool) {
	c.mu.Lock()
	run, ok := c.mem[key]
	c.mu.Unlock()
	return run, ok
}

func (c *Cache) memPut(key string, run *stats.Run) {
	c.mu.Lock()
	c.mem[key] = run
	c.mu.Unlock()
}

// Run executes (or recalls) the simulation described by cfg. ctx bounds the
// simulation (cancellation and wall-clock deadline); cache hits are served
// regardless of ctx state.
func (c *Cache) Run(ctx context.Context, cfg sim.Config) (*stats.Run, error) {
	return c.GetOrRun(ctx, cfg, func(ctx context.Context) (*stats.Run, error) {
		return sim.RunContext(ctx, cfg)
	})
}

// GetOrRun returns the cached run for cfg, calling simulate on a full miss.
// Concurrent calls for the same key are coalesced into one simulate; errors
// are returned to every waiter but never cached. The flight leader's ctx
// governs simulate; a waiter whose own ctx ends first unblocks with its ctx
// error while the flight continues for the others.
func (c *Cache) GetOrRun(ctx context.Context, cfg sim.Config, simulate func(context.Context) (*stats.Run, error)) (*stats.Run, error) {
	key := Key(cfg)
	if run, ok := c.memGet(key); ok {
		c.metrics.Add(CounterMemHits, 1)
		return run, nil
	}
	run, err, shared := c.group.Do(ctx, key, func() (*stats.Run, error) {
		// Re-check memory: we may have lost the race to a flight that
		// completed between our miss and joining the group.
		if run, ok := c.memGet(key); ok {
			c.metrics.Add(CounterMemHits, 1)
			return run, nil
		}
		if c.disk != nil {
			if run, ok := c.disk.Get(key); ok {
				c.metrics.Add(CounterDiskHits, 1)
				c.memPut(key, run)
				return run, nil
			}
		}
		if fp := c.peer.Load(); fp != nil {
			if run, ok := (*fp)(ctx, key); ok {
				c.metrics.Add(CounterPeerHits, 1)
				// Promote the fetched entry through both local tiers so the
				// next membership change finds it here without re-fetching.
				c.memPut(key, run)
				if c.disk != nil {
					_ = c.disk.Put(key, cfg, run)
				}
				return run, nil
			}
			c.metrics.Add(CounterPeerMisses, 1)
		}
		c.metrics.Add(CounterMisses, 1)
		start := time.Now()
		allocs0 := heapAllocObjects()
		run, err := simulate(ctx)
		if err != nil {
			return nil, err
		}
		c.metrics.Add(CounterRunsSimulated, 1)
		c.metrics.AddDuration(CounterSimNanos, time.Since(start))
		c.metrics.Add(CounterSimUops, run.Committed)
		c.metrics.Add(CounterSimAllocObjs, heapAllocObjects()-allocs0)
		c.memPut(key, run)
		if c.disk != nil {
			// Best-effort: the store logs, counts and degrades internally.
			_ = c.disk.Put(key, cfg, run)
		}
		return run, nil
	})
	if shared {
		c.metrics.Add(CounterCoalesced, 1)
	}
	return run, err
}
