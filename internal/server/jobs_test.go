package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracestore"
)

// gatedJobsBackend is the jobs.Backend double for the HTTP tests: batches
// block while gate is set (and honour cancellation), complete immediately
// otherwise. Kept separate from the serving fakeBackend so a test can gate
// job batches without gating /v1/runs.
type gatedJobsBackend struct {
	mu      sync.Mutex
	gate    chan struct{}
	entered chan struct{} // signalled once per batch start
}

func (b *gatedJobsBackend) setGate(gate chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gate = gate
}

func (b *gatedJobsBackend) RunConfigsDetailedContext(ctx context.Context, cfgs []sim.Config) []experiments.Result {
	b.mu.Lock()
	gate, entered := b.gate, b.entered
	b.mu.Unlock()
	if entered != nil {
		select {
		case entered <- struct{}{}:
		default:
		}
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	out := make([]experiments.Result, len(cfgs))
	for i, cfg := range cfgs {
		out[i].Config = cfg.Normalized()
		if ctx.Err() != nil {
			out[i].Err = &sim.SimError{Kind: sim.ErrCancelled, Config: cfg, Err: ctx.Err()}
			continue
		}
		out[i].Run = &stats.Run{App: cfg.App, Committed: 250, Cycles: 100}
	}
	return out
}

// newJobsServer wires a fresh controller (over jb) into a test server whose
// serving backend is sb, sharing one metrics registry.
func newJobsServer(t *testing.T, sb Backend, jb jobs.Backend, maxActive int) (*httptest.Server, *jobs.Controller, *stats.Metrics) {
	t.Helper()
	m := stats.NewMetrics()
	ctl, err := jobs.NewController(jobs.Options{
		Dir:             t.TempDir(),
		Backend:         jb,
		Metrics:         m,
		Apps:            []string{"511.povray"},
		Instructions:    8000,
		TenantMaxActive: maxActive,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Close)
	ts := httptest.NewServer(New(sb, Options{
		Metrics: m,
		Jobs:    ctl,
		Results: tracestore.NewResultLog(t.TempDir()),
	}).Handler())
	t.Cleanup(ts.Close)
	return ts, ctl, m
}

// postSpec submits raw spec JSON under tenant and decodes whatever comes
// back into out (a *jobs.Status on 200, an *errorResponse otherwise).
func postSpec(t *testing.T, ts *httptest.Server, tenant, spec string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("status %d: bad response body: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("status %d: bad response body: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func deleteJob(t *testing.T, ts *httptest.Server, id string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("status %d: bad response body: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// pollJobDone polls GET /v1/jobs/{id} until the job leaves StateRunning.
func pollJobDone(t *testing.T, ts *httptest.Server, id string) *jobs.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st jobs.Status
		if status := getJob(t, ts, id, &st); status != http.StatusOK {
			t.Fatalf("GET job status = %d", status)
		}
		if st.State != jobs.StateRunning {
			return &st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return nil
}

const lifecycleSpec = `{
	"space": {"phast_tables": [1, 2, 4, 8]},
	"strategy": "halving",
	"halving": {"eta": 2, "rungs": 2}
}`

// TestJobsLifecycleHTTP drives the whole surface: submit, poll to the
// winner, resubmit idempotently, list, cancel-as-no-op, and the 404/400
// edges.
func TestJobsLifecycleHTTP(t *testing.T) {
	ts, _, m := newJobsServer(t, &fakeBackend{}, &gatedJobsBackend{}, 0)

	var st jobs.Status
	if status := postSpec(t, ts, "acme", lifecycleSpec, &st); status != http.StatusOK {
		t.Fatalf("POST status = %d (%+v)", status, st)
	}
	if st.ID == "" || st.Tenant != "acme" || st.PlannedTrials != 6 {
		t.Fatalf("submitted status = %+v", st)
	}
	done := pollJobDone(t, ts, st.ID)
	if done.State != jobs.StateDone || done.Winner == nil || done.Winner.Table == "" {
		t.Fatalf("finished job = %+v", done)
	}
	if done.ResultDigest == "" {
		t.Fatal("finished job carries no result digest")
	}

	// Same tenant, same spec: the same job answers — instantly done.
	var again jobs.Status
	if status := postSpec(t, ts, "acme", lifecycleSpec, &again); status != http.StatusOK {
		t.Fatalf("resubmit status = %d", status)
	}
	if again.ID != st.ID || again.State != jobs.StateDone {
		t.Fatalf("resubmit = %+v, want the finished job %s", again, st.ID)
	}
	// A different tenant's identical spec is a different job.
	var other jobs.Status
	if status := postSpec(t, ts, "zeta", lifecycleSpec, &other); status != http.StatusOK {
		t.Fatalf("other-tenant POST status = %d", status)
	}
	if other.ID == st.ID {
		t.Fatal("tenants share a job ID")
	}
	pollJobDone(t, ts, other.ID)

	// List: both jobs; filtered list: only the tenant's.
	var list JobsResponse
	if status := getJob(t, ts, "a/b", nil); status != http.StatusBadRequest {
		t.Fatalf("GET /v1/jobs/a/b = %d, want 400", status)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("filtered list = %+v", list.Jobs)
	}

	// DELETE on a finished job is a no-op that reports the final state.
	var after jobs.Status
	if status := deleteJob(t, ts, st.ID, &after); status != http.StatusOK || after.State != jobs.StateDone {
		t.Fatalf("DELETE finished job = %d %+v", status, after)
	}

	// Unknown ID: 404 not_found.
	var eresp errorResponse
	if status := getJob(t, ts, strings.Repeat("0", 64), &eresp); status != http.StatusNotFound || eresp.Error.Kind != KindNotFound {
		t.Fatalf("GET unknown job = %d %+v", status, eresp)
	}

	// Malformed and hostile specs: typed 400s.
	for _, bad := range []string{
		`{"space":`,
		`{"space":{"predictors":["quantum"]}}`,
		`{"space":{"predictors":["phast"]},"bogus":1}`,
	} {
		var e errorResponse
		if status := postSpec(t, ts, "acme", bad, &e); status != http.StatusBadRequest || e.Error.Kind != KindBadRequest {
			t.Fatalf("POST %q = %d %+v, want 400 bad_request", bad, status, e)
		}
	}

	// Wrong methods: 405 with Allow.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, DELETE" {
			t.Fatalf("PUT job = %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
		}
	}

	if v := m.Get(jobs.CounterCompleted); v != 2 {
		t.Errorf("jobs.completed = %d, want 2", v)
	}
	// Trial rows flowed into the shared results log under their tenants.
	if v := m.Get(stats.TenantCounter("acme", "results")); v == 0 {
		t.Error("no trial rows recorded for acme")
	}
}

// TestJobsDisabled: a daemon without -jobs-dir answers the whole jobs
// surface with 404s.
func TestJobsDisabled(t *testing.T) {
	ts := httptest.NewServer(New(&fakeBackend{}, Options{Metrics: stats.NewMetrics()}).Handler())
	defer ts.Close()
	var eresp errorResponse
	if status := postSpec(t, ts, "acme", lifecycleSpec, &eresp); status != http.StatusNotFound {
		t.Fatalf("POST without controller = %d", status)
	}
	if !strings.Contains(eresp.Error.Message, "-jobs-dir") {
		t.Fatalf("message %q does not point at -jobs-dir", eresp.Error.Message)
	}
	if status := getJob(t, ts, "abc", nil); status != http.StatusNotFound {
		t.Fatalf("GET without controller = %d", status)
	}
}

// TestJobsTenantCapHTTP: the typed TenantBusyError surfaces as HTTP 429
// quota_exceeded — the satellite fix, observed end-to-end.
func TestJobsTenantCapHTTP(t *testing.T) {
	gate := make(chan struct{})
	jb := &gatedJobsBackend{gate: gate}
	ts, _, _ := newJobsServer(t, &fakeBackend{}, jb, 1)

	var st jobs.Status
	if status := postSpec(t, ts, "acme", lifecycleSpec, &st); status != http.StatusOK {
		t.Fatalf("first job status = %d", status)
	}
	second := `{"space": {"phast_conf": [3, 7]}}`
	var eresp errorResponse
	if status := postSpec(t, ts, "acme", second, &eresp); status != http.StatusTooManyRequests || eresp.Error.Kind != KindQuotaExceeded {
		t.Fatalf("over-cap POST = %d %+v, want 429 quota_exceeded", status, eresp)
	}
	// Another tenant is not throttled by acme's cap.
	var zst jobs.Status
	if status := postSpec(t, ts, "zeta", second, &zst); status != http.StatusOK {
		t.Fatalf("other tenant POST = %d (%+v)", status, zst)
	}
	jb.setGate(nil)
	close(gate)
	pollJobDone(t, ts, st.ID)
	if status := postSpec(t, ts, "acme", second, &st); status != http.StatusOK {
		t.Fatalf("POST after drain = %d", status)
	}
	pollJobDone(t, ts, st.ID)
	pollJobDone(t, ts, zst.ID)
}

// TestJobsCancelMidJobLeaksNoGoroutines is the -race lifecycle satellite:
// DELETE on a mid-flight job must wind its goroutines down to the warmed-up
// baseline — nothing keeps running against a cancelled search.
func TestJobsCancelMidJobLeaksNoGoroutines(t *testing.T) {
	jb := &gatedJobsBackend{entered: make(chan struct{}, 1)}
	ts, ctl, _ := newJobsServer(t, &fakeBackend{}, jb, 0)

	// Warm-up: a full job settles the controller's steady state (and the
	// HTTP client's keep-alive pool) into the baseline.
	var warm jobs.Status
	if status := postSpec(t, ts, "acme", lifecycleSpec, &warm); status != http.StatusOK {
		t.Fatalf("warmup POST = %d", status)
	}
	pollJobDone(t, ts, warm.ID)
	before := runtime.NumGoroutine()

	gate := make(chan struct{})
	jb.setGate(gate)
	var st jobs.Status
	if status := postSpec(t, ts, "acme", `{"space": {"phast_conf": [3, 7, 15]}}`, &st); status != http.StatusOK {
		t.Fatalf("POST = %d", status)
	}
	<-jb.entered // the batch is in flight — cancel lands mid-job
	var got jobs.Status
	if status := deleteJob(t, ts, st.ID, &got); status != http.StatusOK || got.State != jobs.StateCancelled {
		t.Fatalf("DELETE mid-job = %d %+v", status, got)
	}
	ctl.Wait(st.ID)

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d after cancel", before, after)
	}

	// The checkpoint survives cancellation: resubmitting restarts the job.
	jb.setGate(nil)
	close(gate)
	var again jobs.Status
	if status := postSpec(t, ts, "acme", `{"space": {"phast_conf": [3, 7, 15]}}`, &again); status != http.StatusOK {
		t.Fatalf("resubmit POST = %d", status)
	}
	if again.ID != st.ID {
		t.Fatalf("resubmit made a new job: %s vs %s", again.ID, st.ID)
	}
	if done := pollJobDone(t, ts, st.ID); done.State != jobs.StateDone {
		t.Fatalf("restarted job = %+v", done)
	}
}

// TestJobsDoNotStarveInteractiveRuns is the WFQ regression satellite: a
// heavy tenant's big job streams its trials through the shared weighted-
// fair worker pool, so a light tenant's single interactive /v1/runs request
// gets its fair share instead of waiting for the whole sweep.
func TestJobsDoNotStarveInteractiveRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	r := experiments.NewRunner(experiments.Options{
		Instructions: 10_000,
		Workers:      1, // one worker: FIFO would serialise the job ahead of the run
		KeepGoing:    true,
		Metrics:      stats.NewMetrics(),
	})
	defer r.Close()
	ctl, err := jobs.NewController(jobs.Options{
		Dir:          t.TempDir(),
		Backend:      r,
		Metrics:      r.Metrics(),
		Apps:         []string{"511.povray"},
		Instructions: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	ts := httptest.NewServer(New(r, Options{Metrics: r.Metrics(), Jobs: ctl}).Handler())
	defer ts.Close()

	heavy := `{
		"space": {"phast_conf": [1, 3, 7, 15], "train_at_detect": [false, true]},
		"instructions": 50000
	}`
	var st jobs.Status
	if status := postSpec(t, ts, "heavy", heavy, &st); status != http.StatusOK {
		t.Fatalf("job POST = %d", status)
	}

	// The light tenant's one small run, submitted while the job floods the
	// single worker.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs",
		strings.NewReader(`{"config":{"app":"511.povray","predictor":"none","instructions":3000}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "light")
	start := time.Now()
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var run RunResult
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	lightElapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK || run.Run == nil {
		t.Fatalf("light run = %d (%+v)", resp.StatusCode, run.Error)
	}

	// The job was still churning when the light run came back — the run did
	// not wait out the sweep.
	var mid jobs.Status
	if status := getJob(t, ts, st.ID, &mid); status != http.StatusOK {
		t.Fatalf("GET job = %d", status)
	}
	done := pollJobDone(t, ts, st.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job = %+v", done)
	}
	jobElapsed := time.Duration(done.ElapsedMS) * time.Millisecond
	if mid.State == jobs.StateRunning {
		return // the strong signal: answered while the sweep was mid-flight
	}
	// Fallback for very fast machines: the light run must still have beaten
	// the sweep by a wide margin, or fairness did nothing.
	if lightElapsed > jobElapsed/2 {
		t.Errorf("light run took %v of the job's %v — starved behind the sweep", lightElapsed, jobElapsed)
	}
}
