package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/jobs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracestore"
)

// RunRequest is the body of POST /v1/runs: one simulation config plus an
// optional per-request deadline. The config is normalised server-side, so
// defaultable fields (machine, predictor, instruction count) may be omitted.
type RunRequest struct {
	Config sim.Config `json:"config"`
	// TimeoutMS bounds this request's wall-clock time (queue wait included).
	// Zero uses the server default; the server's MaxRunTimeout caps it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: a sweep of configs executed
// through the runner's shared worker pool, with per-row outcomes.
type BatchRequest struct {
	Configs   []sim.Config `json:"configs"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"` // whole-batch deadline
}

// RunResult is one config's outcome: exactly one of Run and Error is set —
// the same invariant as experiments.Result, serialised.
type RunResult struct {
	Config sim.Config `json:"config"`
	Run    *stats.Run `json:"run,omitempty"`
	Error  *ErrorBody `json:"error,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch reply, results in request
// order.
type BatchResponse struct {
	Results []RunResult `json:"results"`
}

// ErrorBody is the wire form of a failed run: the sim.SimError kind taxonomy
// (panic, deadlock, timeout, cancelled, config, internal) extended with the
// serving layer's own kinds (rejected, draining, bad_request).
type ErrorBody struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// PeerCacheEntry is the body of GET /v1/peer/cache/{key}: one member's
// cached result for a content-addressed key, served to a fleet peer filling
// its own cache (the two-tier fetch path). The key is echoed so the fetcher
// can cross-check it against what it asked for.
type PeerCacheEntry struct {
	Key string     `json:"key"`
	Run *stats.Run `json:"run"`
}

// TraceUploadResponse is the body of a successful POST /v1/traces: the
// canonical content digest the upload stored under (run it with
// Config.App = "trace:<digest>"), its canonical size and instruction count,
// and whether the store already held it (a dup re-upload is free — it is
// acknowledged without charging the tenant's quota again).
type TraceUploadResponse struct {
	Digest string `json:"digest"`
	Bytes  int64  `json:"bytes"`
	Insts  int    `json:"insts"`
	Dup    bool   `json:"dup,omitempty"`
}

// ResultsResponse is the body of GET /v1/results?tenant=...: one page of the
// tenant's persistent run log, oldest first. Each record is a RunResult as
// appended at run time. Next is the cursor for the following page (pass it
// back as ?after=); zero means this page reached the end of the log.
type ResultsResponse struct {
	Tenant  string                   `json:"tenant"`
	Results []tracestore.ResultEntry `json:"results"`
	Next    int64                    `json:"next,omitempty"`
}

// MetricsResponse is the JSON form of GET /metrics?format=json.
type MetricsResponse struct {
	Counters   map[string]uint64                  `json:"counters"`
	Histograms map[string]stats.HistogramSnapshot `json:"histograms"`
}

// ClusterMember is one member's row in GET /v1/cluster: this node's view of
// that member's health (failure-detector state), ring liveness, and circuit
// breaker. The self row always reads up/live with no breaker — a node does
// not probe or circuit-break itself.
type ClusterMember struct {
	URL   string `json:"url"`
	Self  bool   `json:"self,omitempty"`
	State string `json:"state"` // up | suspect | down (draining for self mid-drain)
	// Live reports ring membership in this node's current health-filtered
	// view: false means the member's keys are remapped elsewhere until it
	// recovers.
	Live             bool   `json:"live"`
	Breaker          string `json:"breaker,omitempty"` // closed | open | half-open
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	LastError        string `json:"last_error,omitempty"`
}

// ClusterResponse is the body of GET /v1/cluster: this member's view of the
// fleet. Views are per-node (the failure detector is coordination-free), so
// operators compare /v1/cluster across members to see a partition from both
// sides.
type ClusterResponse struct {
	Self        string          `json:"self"`
	FleetSize   int             `json:"fleet_size"`
	LiveMembers int             `json:"live_members"`
	Members     []ClusterMember `json:"members"`
}

// Serving-layer error kinds (beyond the sim.SimError taxonomy).
const (
	// KindRejected marks a request bounced by admission control (HTTP 429):
	// the run queue was full. Retry after backoff.
	KindRejected = "rejected"
	// KindDraining marks a request refused because the daemon is shutting
	// down (HTTP 503). Retry against another replica.
	KindDraining = "draining"
	// KindBadRequest marks an unparseable or oversized request (HTTP 400).
	KindBadRequest = "bad_request"
	// KindNotFound marks a peer cache fetch for a key this member does not
	// hold (HTTP 404). The fetcher falls through to its next candidate or
	// simulates.
	KindNotFound = "not_found"
	// KindTooLarge marks a trace upload over the store's per-trace byte cap
	// (HTTP 413). Not retryable: the trace must shrink.
	KindTooLarge = "too_large"
	// KindQuotaExceeded marks a request refused by a per-tenant limit (HTTP
	// 429): a trace upload past the tenant's stored-bytes quota, or a run
	// past its in-flight cap. Unlike KindRejected (the whole server is
	// saturated) this is the tenant's own footprint — other tenants are
	// unaffected, and retrying only helps after the tenant frees capacity.
	KindQuotaExceeded = "quota_exceeded"
)

// ErrRejected is the admission-control rejection: the running set and the
// wait queue are both full. Mapped to HTTP 429 with Retry-After.
var ErrRejected = errors.New("server: at capacity, request rejected")

// ErrDraining refuses new work during graceful shutdown (HTTP 503).
var ErrDraining = errors.New("server: draining, not accepting new runs")

// ErrTenantBusy refuses a run because its tenant already has
// Options.TenantMaxInflight requests in flight on this member (HTTP 429,
// quota_exceeded). Admission control for the server as a whole is ErrRejected;
// this one fires even on an idle server when a single tenant floods it.
var ErrTenantBusy = errors.New("server: tenant in-flight request quota exceeded")

// peerStatusError carries a fleet owner's HTTP error response verbatim.
// When a proxied run fails on the owner, the proxying node replays the
// owner's status and body bit-for-bit instead of re-deriving them — the
// typed sim.SimError mapping the owner computed is preserved end-to-end
// across the extra hop.
type peerStatusError struct {
	status int
	body   ErrorBody
}

func (e *peerStatusError) Error() string {
	return fmt.Sprintf("peer: %s (%d %s)", e.body.Message, e.status, e.body.Kind)
}

// errorBody maps a failed run to its HTTP status and wire form. The sim
// taxonomy maps kind-for-kind; admission and drain rejections carry the
// serving-layer kinds; an owner's error replays verbatim.
func errorBody(err error) (int, ErrorBody) {
	var pe *peerStatusError
	if errors.As(err, &pe) {
		return pe.status, pe.body
	}
	switch {
	case errors.Is(err, ErrRejected):
		return http.StatusTooManyRequests, ErrorBody{Kind: KindRejected, Message: err.Error()}
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, ErrorBody{Kind: KindDraining, Message: err.Error()}
	case errors.Is(err, ErrTenantBusy), errors.Is(err, tracestore.ErrQuota):
		return http.StatusTooManyRequests, ErrorBody{Kind: KindQuotaExceeded, Message: err.Error()}
	case errors.Is(err, tracestore.ErrTooLarge):
		return http.StatusRequestEntityTooLarge, ErrorBody{Kind: KindTooLarge, Message: err.Error()}
	case errors.Is(err, tracestore.ErrNotFound):
		return http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: err.Error()}
	case errors.Is(err, jobs.ErrUnknownJob):
		return http.StatusNotFound, ErrorBody{Kind: KindNotFound, Message: err.Error()}
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable, ErrorBody{Kind: KindDraining, Message: err.Error()}
	}
	var se *jobs.SpecError
	if errors.As(err, &se) {
		return http.StatusBadRequest, ErrorBody{Kind: KindBadRequest, Message: err.Error()}
	}
	var tbe *jobs.TenantBusyError
	if errors.As(err, &tbe) {
		// The same taxonomy as ErrTenantBusy: this tenant's own footprint,
		// not server saturation — frees up when one of its jobs finishes.
		return http.StatusTooManyRequests, ErrorBody{Kind: KindQuotaExceeded, Message: err.Error()}
	}
	var fe *tracestore.FormatError
	if errors.As(err, &fe) {
		return http.StatusBadRequest, ErrorBody{Kind: KindBadRequest, Message: err.Error()}
	}
	body := ErrorBody{Kind: string(sim.KindOf(err)), Message: err.Error()}
	switch sim.KindOf(err) {
	case sim.ErrConfig:
		return http.StatusBadRequest, body
	case sim.ErrTimeout:
		return http.StatusGatewayTimeout, body
	case sim.ErrCancelled:
		// The client went away or the daemon is being torn down; 503 tells a
		// retrying proxy the request may succeed elsewhere/later.
		return http.StatusServiceUnavailable, body
	case sim.ErrVerify:
		// An architectural divergence on a Verify run is a simulator defect,
		// not a client mistake: surface it like any other internal failure.
		return http.StatusInternalServerError, body
	default: // panic, deadlock, internal
		return http.StatusInternalServerError, body
	}
}

// retryAfter is the backoff hint attached to 429/503 responses. A constant
// is honest here: the server cannot predict when a simulation slot frees.
const retryAfter = "1"

// timeoutOf converts a request's timeout_ms field, clamped to [0, max]
// (max 0 = uncapped).
func timeoutOf(ms int64, def, max time.Duration) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d
}
