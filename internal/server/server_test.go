package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeBackend is a controllable Backend: runs block on gate (when set) and
// honour context cancellation, so admission/coalescing/drain tests are
// deterministic instead of racing a real simulator.
type fakeBackend struct {
	gate  chan struct{} // nil = complete immediately
	calls atomic.Int32
}

func (f *fakeBackend) RunConfigContext(ctx context.Context, cfg sim.Config) (*stats.Run, error) {
	f.calls.Add(1)
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, &sim.SimError{Kind: sim.KindOf(ctx.Err()), Config: cfg, Err: ctx.Err()}
		}
	}
	return &stats.Run{App: cfg.App, Predictor: cfg.Predictor, Machine: cfg.Machine, Cycles: 100, Committed: 250}, nil
}

func (f *fakeBackend) RunConfigsDetailedContext(ctx context.Context, cfgs []sim.Config) []experiments.Result {
	out := make([]experiments.Result, len(cfgs))
	for i, cfg := range cfgs {
		run, err := f.RunConfigContext(ctx, cfg)
		out[i] = experiments.Result{Config: cfg, Run: run, Err: err}
	}
	return out
}

// postJSON posts v and decodes the response body into out, returning the
// status code.
func postJSON(t *testing.T, client *http.Client, url string, v any, out any) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("status %d: bad response body %q: %v", resp.StatusCode, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// TestServerRunMatchesInProcess is the golden equivalence test: a run
// requested over HTTP returns byte-identical result rows to the same config
// executed in-process.
func TestServerRunMatchesInProcess(t *testing.T) {
	cfg := sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000}
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	r := experiments.NewRunner(experiments.Options{Instructions: 10_000, KeepGoing: true})
	defer r.Close()
	ts := httptest.NewServer(New(r, Options{Metrics: r.Metrics()}).Handler())
	defer ts.Close()

	var got RunResult
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfg}, &got)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%+v)", status, got)
	}
	if got.Run == nil {
		t.Fatal("response carries no run")
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got.Run)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("server row differs from in-process run:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
	if got.Config.Machine != "alderlake" || got.Config.Predictor != "none" {
		t.Errorf("response config not normalised: %+v", got.Config)
	}
}

// TestServerBatch: per-row outcomes in request order, including a typed
// error row for a bad config, with the good rows matching in-process runs.
func TestServerBatch(t *testing.T) {
	r := experiments.NewRunner(experiments.Options{Instructions: 10_000, KeepGoing: true})
	defer r.Close()
	ts := httptest.NewServer(New(r, Options{Metrics: r.Metrics()}).Handler())
	defer ts.Close()

	req := BatchRequest{Configs: []sim.Config{
		{App: "511.povray", Predictor: "none", Instructions: 10_000},
		{App: "511.povray", Predictor: "warp-drive", Instructions: 10_000},
		{App: "519.lbm", Predictor: "none", Instructions: 10_000},
	}}
	var resp BatchResponse
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", req, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d rows, want 3", len(resp.Results))
	}
	if resp.Results[0].Run == nil || resp.Results[2].Run == nil {
		t.Error("good configs must carry runs")
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Kind != string(sim.ErrConfig) {
		t.Errorf("bad config row = %+v, want a %q error", resp.Results[1], sim.ErrConfig)
	}
	want, err := sim.Run(req.Configs[0])
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(resp.Results[0].Run)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("batch row 0 differs from in-process run:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
}

// TestServerRejectsWhenSaturated: with the running set and queue full,
// further requests bounce with 429 + Retry-After (never hang, never drop),
// and the queued request completes once a slot frees.
func TestServerRejectsWhenSaturated(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := stats.NewMetrics()
	ts := httptest.NewServer(New(fb, Options{MaxInflight: 1, QueueDepth: 1, Metrics: m}).Handler())
	defer ts.Close()

	cfgN := func(n int) sim.Config {
		return sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000, Seed: int64(n)}
	}
	type outcome struct {
		status int
		body   RunResult
	}
	results := make(chan outcome, 2)
	for i := 1; i <= 2; i++ {
		i := i
		go func() {
			var out RunResult
			status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfgN(i)}, &out)
			results <- outcome{status, out}
		}()
	}
	// Wait until one request holds the slot and one sits in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for (m.Get(CounterAccepted) < 1 || m.Get(CounterQueued) < 1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Get(CounterAccepted) < 1 || m.Get(CounterQueued) < 1 {
		t.Fatalf("saturation never reached: accepted=%d queued=%d", m.Get(CounterAccepted), m.Get(CounterQueued))
	}

	var rej errorResponse
	status, hdr := postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfgN(3)}, &rej)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429 (%+v)", status, rej)
	}
	if rej.Error.Kind != KindRejected {
		t.Errorf("kind = %q, want %q", rej.Error.Kind, KindRejected)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if m.Get(CounterRejected) != 1 {
		t.Errorf("%s = %d, want 1", CounterRejected, m.Get(CounterRejected))
	}

	close(fb.gate)
	for i := 0; i < 2; i++ {
		out := <-results
		if out.status != http.StatusOK || out.body.Run == nil {
			t.Errorf("admitted request finished %d (%+v), want 200 with a run", out.status, out.body)
		}
	}
}

// TestServerCoalescesDuplicates: concurrent identical configs execute once —
// the duplicate piggybacks on the in-flight run, bumping server.coalesced,
// and both clients get the same row.
func TestServerCoalescesDuplicates(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := stats.NewMetrics()
	ts := httptest.NewServer(New(fb, Options{MaxInflight: 4, Metrics: m}).Handler())
	defer ts.Close()

	cfg := sim.Config{App: "519.lbm", Predictor: "none", Instructions: 10_000}
	const dups = 3
	var wg sync.WaitGroup
	statuses := make([]int, dups)
	rows := make([]RunResult, dups)
	for i := 0; i < dups; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			statuses[i], _ = postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfg}, &rows[i])
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Get(CounterCoalesced) < dups-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(fb.gate)
	wg.Wait()

	if got := fb.calls.Load(); got != 1 {
		t.Errorf("backend executed %d times for %d identical requests, want 1", got, dups)
	}
	if got := m.Get(CounterCoalesced); got != dups-1 {
		t.Errorf("%s = %d, want %d", CounterCoalesced, got, dups-1)
	}
	want, _ := json.Marshal(rows[0].Run)
	for i := 0; i < dups; i++ {
		if statuses[i] != http.StatusOK {
			t.Errorf("request %d: status %d", i, statuses[i])
		}
		got, _ := json.Marshal(rows[i].Run)
		if !bytes.Equal(want, got) {
			t.Errorf("request %d got a different row", i)
		}
	}
	// Only the flight leader consumed an admission slot.
	if got := m.Get(CounterAccepted); got != 1 {
		t.Errorf("%s = %d, want 1 (duplicates must not consume slots)", CounterAccepted, got)
	}
}

// TestServerOverloadNeverDropsRequests is the acceptance-shaped saturation
// test: clients at well over the configured concurrency all receive a
// response — some 200 after queueing, some 429 — with zero hangs and
// nonzero backpressure signal (rejections or queue waits).
func TestServerOverloadNeverDropsRequests(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := stats.NewMetrics()
	const maxInflight, queueDepth = 2, 2
	ts := httptest.NewServer(New(fb, Options{MaxInflight: maxInflight, QueueDepth: queueDepth, Metrics: m}).Handler())
	defer ts.Close()

	// 4× the configured concurrency, all distinct configs.
	const clients = 4 * maxInflight
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000, Seed: int64(i + 1)}
			statuses[i], _ = postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfg}, nil)
		}()
	}
	// Let the running set and queue fill, then release the backend so the
	// admitted requests drain while the overflow has already bounced.
	deadline := time.Now().Add(5 * time.Second)
	for m.Get(CounterRejected) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(fb.gate)
	wg.Wait()

	var ok, rejected int
	for i, status := range statuses {
		switch status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("request %d: unexpected status %d", i, status)
		}
	}
	if ok+rejected != clients {
		t.Errorf("%d responses for %d requests — requests were dropped", ok+rejected, clients)
	}
	if rejected == 0 && m.Get(CounterQueued) == 0 {
		t.Error("overload produced neither rejections nor queue waits")
	}
	if ok < maxInflight {
		t.Errorf("only %d requests succeeded, want at least the running set (%d)", ok, maxInflight)
	}
	t.Logf("overload: %d ok, %d rejected, queued=%d", ok, rejected, m.Get(CounterQueued))
}

// TestServerDeadlinePropagates: a request deadline reaches the backend's
// context and the expiry maps to HTTP 504 with a timeout-kind error body.
func TestServerDeadlinePropagates(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})} // never released
	ts := httptest.NewServer(New(fb, Options{MaxInflight: 2}).Handler())
	defer ts.Close()

	var rej errorResponse
	req := RunRequest{
		Config:    sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000},
		TimeoutMS: 50,
	}
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs", req, &rej)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%+v)", status, rej)
	}
	if rej.Error.Kind != string(sim.ErrTimeout) {
		t.Errorf("kind = %q, want %q", rej.Error.Kind, sim.ErrTimeout)
	}
}

// TestServerDrain: StartDrain flips /healthz to 503 and refuses new work
// while an in-flight request runs to completion.
func TestServerDrain(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := stats.NewMetrics()
	srv := New(fb, Options{MaxInflight: 2, Metrics: m})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inflight := make(chan outcomePair, 1)
	go func() {
		var out RunResult
		status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs",
			RunRequest{Config: sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000}}, &out)
		inflight <- outcomePair{status, out.Run != nil}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Get(CounterAccepted) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	srv.StartDrain()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", resp.StatusCode)
	}

	var rej errorResponse
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs",
		RunRequest{Config: sim.Config{App: "519.lbm", Predictor: "none", Instructions: 10_000}}, &rej)
	if status != http.StatusServiceUnavailable || rej.Error.Kind != KindDraining {
		t.Errorf("draining submit = %d/%q, want 503/%q", status, rej.Error.Kind, KindDraining)
	}

	// The in-flight request survives the drain and completes.
	close(fb.gate)
	out := <-inflight
	if out.status != http.StatusOK || !out.hasRun {
		t.Errorf("in-flight request during drain finished %d (run=%t), want 200 with a run", out.status, out.hasRun)
	}
}

type outcomePair struct {
	status int
	hasRun bool
}

// TestServerAbortCancelsInflight: Abort hard-stops in-flight runs; the
// client gets a typed cancellation, not a hang.
func TestServerAbortCancelsInflight(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})} // never released
	m := stats.NewMetrics()
	srv := New(fb, Options{MaxInflight: 2, Metrics: m})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs",
			RunRequest{Config: sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000}}, &errorResponse{})
		done <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Get(CounterAccepted) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	srv.Abort()
	select {
	case status := <-done:
		if status != http.StatusServiceUnavailable {
			t.Errorf("aborted request status = %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted request never returned")
	}
}

// TestServerMetricsEndpoint: both renderings expose the server counters and
// the latency histogram.
func TestServerMetricsEndpoint(t *testing.T) {
	fb := &fakeBackend{}
	m := stats.NewMetrics()
	ts := httptest.NewServer(New(fb, Options{MaxInflight: 2, Metrics: m}).Handler())
	defer ts.Close()

	if status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs",
		RunRequest{Config: sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000}}, nil); status != http.StatusOK {
		t.Fatalf("seed run failed: %d", status)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{CounterRequests, CounterAccepted, CounterRejected, HistLatency} {
		if !strings.Contains(string(text), want) {
			t.Errorf("text /metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var mr MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mr.Counters[CounterRequests] != 1 || mr.Counters[CounterAccepted] != 1 {
		t.Errorf("json counters = %v, want requests/accepted = 1", mr.Counters)
	}
	if h, ok := mr.Histograms[HistLatency]; !ok || h.Count != 1 {
		t.Errorf("json histograms = %v, want %s with one observation", mr.Histograms, HistLatency)
	}
}

// TestServerBadRequests: malformed JSON, unknown fields, empty and oversized
// batches all map to 400 with a bad_request body — never a 500.
func TestServerBadRequests(t *testing.T) {
	fb := &fakeBackend{}
	ts := httptest.NewServer(New(fb, Options{MaxInflight: 2, MaxBatch: 2}).Handler())
	defer ts.Close()

	post := func(path, body string) (int, errorResponse) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, er
	}

	for _, tc := range []struct{ path, body string }{
		{"/v1/runs", "{not json"},
		{"/v1/runs", `{"config": {"App": "x"}, "bogus_field": 1}`},
		{"/v1/batch", `{"configs": []}`},
		{"/v1/batch", fmt.Sprintf(`{"configs": [%s]}`, strings.Repeat(`{"App":"x"},`, 2)+`{"App":"x"}`)},
	} {
		status, er := post(tc.path, tc.body)
		if status != http.StatusBadRequest || er.Error.Kind != KindBadRequest {
			t.Errorf("POST %s %q = %d/%q, want 400/%q", tc.path, tc.body, status, er.Error.Kind, KindBadRequest)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/runs = %d, want 405", resp.StatusCode)
	}
}
