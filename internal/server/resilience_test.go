package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// configOwnedBy searches seeds until it finds a config whose cache key the
// given member owns in fleet's live ring.
func configOwnedBy(t *testing.T, fleet *cluster.Fleet, owner string) sim.Config {
	t.Helper()
	for seed := int64(1); seed < 10_000; seed++ {
		cfg := sim.Config{App: "511.povray", Predictor: "phast", Instructions: 8_000, Seed: seed}
		if fleet.Owner(runcache.Key(cfg.Normalized())) == owner {
			return cfg
		}
	}
	t.Fatal("no config owned by " + owner)
	return sim.Config{}
}

// stallListener accepts connections and never responds — the shape of a
// wedged (not crashed) peer: TCP works, HTTP hangs.
func stallListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				<-done
				conn.Close()
			}()
		}
	}()
	return "http://" + ln.Addr().String()
}

// TestProxyBudgetExhausted504 is the deadline-budgeting regression test:
// a proxied run whose owner hangs past the request deadline must come back
// as 504 Gateway Timeout with the typed "timeout" kind — not a generic 500,
// not a 200 with a null run, and no local-execution fallback (the budget is
// spent; local execution could only blow the deadline again).
func TestProxyBudgetExhausted504(t *testing.T) {
	stalled := stallListener(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln.Addr().String()
	fleet, err := cluster.NewFleet(self, []string{self, stalled}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := stats.NewMetrics()
	r := experiments.NewRunner(experiments.Options{Instructions: 8_000, Metrics: reg, KeepGoing: true})
	defer r.Close()
	srv := New(r, Options{Metrics: reg, Fleet: fleet, RetryBackoff: 10 * time.Millisecond})
	hs := httptest.NewUnstartedServer(srv.Handler())
	hs.Listener.Close()
	hs.Listener = ln
	hs.Start()
	defer hs.Close()

	cfg := configOwnedBy(t, fleet, stalled)
	var got struct {
		Error ErrorBody `json:"error"`
	}
	start := time.Now()
	status, _ := postJSON(t, &http.Client{}, self+"/v1/runs",
		RunRequest{Config: cfg, TimeoutMS: 400}, &got)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%+v), want 504", status, got.Error)
	}
	if got.Error.Kind != string(sim.ErrTimeout) {
		t.Errorf("error kind = %q, want %q", got.Error.Kind, sim.ErrTimeout)
	}
	if elapsed > 2*time.Second {
		t.Errorf("504 took %v; budget was 400ms", elapsed)
	}
	if sims := reg.Get(runcache.CounterRunsSimulated); sims != 0 {
		t.Errorf("budget-exhausted proxy fell back to %d local simulations", sims)
	}
}

// TestDrainingOwnerProxyFallsBackLocal (satellite): a draining owner
// answers the proxied run with its typed 503 draining error; the non-owner
// must degrade to local execution exactly once — no retries (the owner's
// answer is authoritative), no breaker damage (the link works), and no
// leaked goroutines.
func TestDrainingOwnerProxyFallsBackLocal(t *testing.T) {
	nodes := startFleet(t, 2)
	client := &http.Client{}

	owner, other := nodes[1], nodes[0]
	cfg := configOwnedBy(t, other.srv.fleet, owner.url)
	owner.srv.StartDrain()

	// Warm up the non-owner's serving path with a locally-owned config so
	// the goroutine baseline includes the runner's worker pool and the
	// client's keep-alive connection — not artifacts of the fallback.
	warm := configOwnedBy(t, other.srv.fleet, other.url)
	if status, _ := postJSON(t, client, other.url+"/v1/runs", RunRequest{Config: warm}, nil); status != http.StatusOK {
		t.Fatalf("warmup status = %d", status)
	}
	before := runtime.NumGoroutine()

	var got RunResult
	status, _ := postJSON(t, client, other.url+"/v1/runs", RunRequest{Config: cfg}, &got)
	if status != http.StatusOK {
		t.Fatalf("status = %d (%+v), want 200 via local fallback", status, got.Error)
	}
	if got.Run == nil {
		t.Fatal("200 with no run")
	}

	if v := other.reg.Get(CounterProxied); v != 1 {
		t.Errorf("proxied = %d, want 1", v)
	}
	if v := other.reg.Get(CounterProxyErrors); v != 1 {
		t.Errorf("proxy errors (fallbacks) = %d, want exactly 1", v)
	}
	if v := other.reg.Get(CounterRetries); v != 0 {
		t.Errorf("retries = %d, want 0 (a draining answer is authoritative)", v)
	}
	if v := other.srv.brk.state(owner.url); v != breakerClosed {
		t.Errorf("breaker after draining answer = %s, want closed (the link works)", v)
	}
	if v := owner.reg.Get(CounterDrained); v != 1 {
		t.Errorf("owner drained refusals = %d, want 1", v)
	}
	if v := other.reg.Get(runcache.CounterRunsSimulated); v != 2 {
		t.Errorf("non-owner simulated %d runs (warmup + fallback), want 2", v)
	}
	if v := owner.reg.Get(runcache.CounterRunsSimulated); v != 0 {
		t.Errorf("draining owner simulated %d runs, want 0", v)
	}

	// No goroutine leak: drop the proxy hop's keep-alive connection (its
	// read/write loops are pooling, not a leak), then everything the
	// fallback spawned must wind down to the warmed-up baseline.
	other.srv.peers.http.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d after drain fallback", before, after)
	}
}

// TestHealthGatedRoutingSkipsDownOwner: once the failure detector marks a
// peer Down, its keys remap — requests that would have proxied execute
// locally without touching the dead link — and recovery restores proxying.
func TestHealthGatedRoutingSkipsDownOwner(t *testing.T) {
	// A peer that is already dead: bind, record the URL, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln2.Addr().String()
	ln2.Close() // handler invoked directly; no listener needed

	fleet, err := cluster.NewFleet(self, []string{self, deadURL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := stats.NewMetrics()
	r := experiments.NewRunner(experiments.Options{Instructions: 8_000, Metrics: reg, KeepGoing: true})
	defer r.Close()
	srv := New(r, Options{Metrics: reg, Fleet: fleet, ProbeDownAfter: 3})

	cfg := srv.normalize(configOwnedBy(t, fleet, deadURL))

	// Drive the detector synchronously: three failed probes mark it Down.
	for i := 0; i < 3; i++ {
		srv.prober.ProbeOnce(context.Background())
	}
	if got := srv.prober.StateOf(deadURL); got != cluster.StateDown {
		t.Fatalf("dead peer state = %s, want down", got)
	}
	if fleet.Owner(runcache.Key(cfg)) != self {
		t.Fatal("key did not remap to self with owner down")
	}

	run, errRun := srv.runOne(context.Background(), cfg, false)
	if errRun != nil || run == nil {
		t.Fatalf("runOne with down owner: (%v, %v), want local success", run, errRun)
	}
	if v := reg.Get(CounterProxied); v != 0 {
		t.Errorf("proxied = %d, want 0 (down owner must not be dialed)", v)
	}
	if v := reg.Get(runcache.CounterRunsSimulated); v != 1 {
		t.Errorf("local simulations = %d, want 1", v)
	}
	if v := reg.Get(cluster.CounterTransitionsDown); v != 1 {
		t.Errorf("transitions.down = %d, want 1", v)
	}
}

// TestClusterEndpoint: /v1/cluster reports per-member health, liveness and
// breaker state on a fleet member, and 404s on a standalone server.
func TestClusterEndpoint(t *testing.T) {
	nodes := startFleet(t, 3)
	resp, err := http.Get(nodes[0].url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var cr ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Self != nodes[0].url || cr.FleetSize != 3 || cr.LiveMembers != 3 {
		t.Errorf("self=%q fleet=%d live=%d, want %q/3/3", cr.Self, cr.FleetSize, cr.LiveMembers, nodes[0].url)
	}
	if len(cr.Members) != 3 {
		t.Fatalf("members = %d rows, want 3", len(cr.Members))
	}
	selfRows := 0
	for _, m := range cr.Members {
		if m.Self {
			selfRows++
			if m.URL != nodes[0].url || m.State != "up" || !m.Live {
				t.Errorf("self row = %+v", m)
			}
			continue
		}
		if m.State != "up" || !m.Live || m.Breaker != breakerClosed {
			t.Errorf("peer row = %+v, want up/live/closed", m)
		}
	}
	if selfRows != 1 {
		t.Errorf("self rows = %d, want 1", selfRows)
	}

	// Standalone: no fleet, no cluster.
	r := experiments.NewRunner(experiments.Options{Instructions: 8_000, KeepGoing: true})
	defer r.Close()
	standalone := httptest.NewServer(New(r, Options{Metrics: r.Metrics()}).Handler())
	defer standalone.Close()
	resp2, err := http.Get(standalone.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("standalone /v1/cluster = %d, want 404", resp2.StatusCode)
	}
}

// TestBreakerStateMachine drives one breaker through close → open →
// half-open → closed and the failed-trial re-open.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	if !b.allow() || b.current() != breakerClosed {
		t.Fatal("new breaker must be closed and allowing")
	}
	// Two failures: still closed. Third: open.
	b.failure()
	b.failure()
	if b.current() != breakerClosed {
		t.Fatalf("state after 2 failures = %s, want closed", b.current())
	}
	if opened := b.failure(); !opened {
		t.Fatal("third failure did not report opening")
	}
	if b.current() != breakerOpen || b.allow() {
		t.Fatalf("state = %s allow = true, want open and refusing", b.current())
	}
	// Cooldown elapses: exactly one trial admitted (half-open).
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooled-down breaker refused the trial")
	}
	if b.current() != breakerHalfOpen || b.allow() {
		t.Fatal("half-open breaker must hold at one trial")
	}
	// Failed trial re-opens immediately.
	if opened := b.failure(); !opened || b.current() != breakerOpen {
		t.Fatalf("failed trial left state %s, want open", b.current())
	}
	// Probe recovery half-opens without waiting; successful trial closes.
	b.probeRecovered()
	if b.current() != breakerHalfOpen {
		t.Fatalf("state after probe recovery = %s, want half-open", b.current())
	}
	b.success()
	if b.current() != breakerClosed || !b.allow() {
		t.Fatal("successful trial must close the breaker")
	}
}

// TestBackoffDeterministicAndBounded: same (key, attempt) → same backoff;
// each value lies in [base/2 * 2^(n-1), base * 2^(n-1)] capped at max.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	rp := retryPolicy{attempts: 5, base: 40 * time.Millisecond, max: 200 * time.Millisecond}.norm()
	for attempt := 1; attempt <= 4; attempt++ {
		d1 := rp.backoff("key-a", attempt)
		d2 := rp.backoff("key-a", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		full := rp.base << (attempt - 1)
		if full > rp.max {
			full = rp.max
		}
		if d1 < full/2 || d1 >= full {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d1, full/2, full)
		}
	}
	if rp.backoff("key-a", 1) == rp.backoff("key-b", 1) {
		t.Error("different keys produced identical jitter (suspicious)")
	}
}

// TestSleepBudget: a deadline too tight for the requested sleep returns
// errBudget immediately instead of sleeping into a timeout.
func TestSleepBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := sleepBudget(ctx, 100*time.Millisecond); err != errBudget {
		t.Fatalf("err = %v, want errBudget", err)
	}
	if e := time.Since(start); e > 10*time.Millisecond {
		t.Errorf("budget refusal took %v, want immediate", e)
	}
	// With room to spare the sleep proceeds.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := sleepBudget(ctx2, 5*time.Millisecond); err != nil {
		t.Fatalf("sleep within budget failed: %v", err)
	}
}
