package server

import (
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/jobs"
)

// JobsResponse is the body of GET /v1/jobs: every job this daemon tracks
// (optionally filtered by ?tenant=), sorted by ID.
type JobsResponse struct {
	Jobs []*jobs.Status `json:"jobs"`
}

// wireJobs connects the autotuner controller to the serving layer: trial
// rows flow into the tenant's persistent results log exactly like /v1/batch
// rows (same RunResult shape, same error taxonomy, same skip rules for
// transient refusals), so GET /v1/results shows a job's trials interleaved
// with the tenant's interactive runs.
func (s *Server) wireJobs(ctl *jobs.Controller) {
	s.jobs = ctl
	ctl.SetOnTrial(func(tenant string, res experiments.Result) {
		row := RunResult{Config: res.Config, Run: res.Run}
		if res.Err != nil {
			_, body := errorBody(res.Err)
			row.Error = &body
		}
		s.recordResult(tenant, row)
	})
}

// jobsDisabled answers for daemons running without a jobs controller
// (-jobs-dir unset): the whole surface is a 404, same as a route that does
// not exist.
func (s *Server) jobsDisabled(w http.ResponseWriter) bool {
	if s.jobs != nil {
		return false
	}
	writeJSON(w, http.StatusNotFound, struct {
		Error ErrorBody `json:"error"`
	}{ErrorBody{Kind: KindNotFound,
		Message: "job submission not enabled (start phastd with -jobs-dir)"}})
	return true
}

// handleJobs serves the /v1/jobs collection: POST submits (or idempotently
// re-joins) a search job, GET lists jobs. Submission is refused while
// draining — a job is new long-running work; listing stays available so
// operators can watch the drain.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		if s.jobsDisabled(w) {
			return
		}
		if s.Draining() {
			s.refuse(w)
			return
		}
		tenant, terr := tenantOf(r)
		if terr != nil {
			writeJSON(w, http.StatusBadRequest, struct {
				Error ErrorBody `json:"error"`
			}{ErrorBody{Kind: KindBadRequest, Message: terr.Error()}})
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, struct {
				Error ErrorBody `json:"error"`
			}{ErrorBody{Kind: KindBadRequest, Message: "bad job request: " + err.Error()}})
			return
		}
		spec, err := jobs.ParseSpecJSON(data)
		if err != nil {
			writeError(w, err)
			return
		}
		st, err := s.jobs.Submit(tenant, spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodGet:
		if s.jobsDisabled(w) {
			return
		}
		list := s.jobs.List(r.URL.Query().Get("tenant"))
		sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
		writeJSON(w, http.StatusOK, JobsResponse{Jobs: list})
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

// handleJob serves one job: GET /v1/jobs/{id} reports status/progress/
// winner, DELETE cancels it (in-flight trials get typed cancellations, the
// checkpoint survives, and resubmitting the same spec resumes from the last
// completed rung). Both work while draining.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.jobsDisabled(w) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.ContainsRune(id, '/') {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest, Message: "want /v1/jobs/{id}"}})
		return
	}
	var (
		st  *jobs.Status
		err error
	)
	switch r.Method {
	case http.MethodGet:
		st, err = s.jobs.Get(id)
	case http.MethodDelete:
		st, err = s.jobs.Cancel(id)
	default:
		methodNotAllowed(w, "GET, DELETE")
		return
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
