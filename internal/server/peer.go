// Fleet mechanics: what turns one phastd into a member of a consistent-hash
// cluster. Three pieces live here, all over the existing wire format:
//
//   - the proxy path: a node that receives /v1/runs for a key it does not
//     own forwards the request to the ring owner's /v1/peer/run, so each
//     unique config executes (and caches, and coalesces) on exactly one
//     member. The owner's response — success or typed error — is replayed
//     verbatim (peerStatusError), preserving the sim.SimError mapping
//     end-to-end. Transport failures retry with budget-aware backoff
//     (retry.go); a peer that keeps failing trips its circuit breaker and
//     later hops fail fast. When the retries are spent — or the breaker
//     refuses the hop — the request degrades to executing locally:
//     availability beats dedup. A draining owner degrades the same way.
//   - the peer cache-fetch path: the run cache's peer tier
//     (runcache.PeerFetchFunc). On a local mem+disk miss the owner asks the
//     ring's next candidates (the members that owned the key before a
//     membership change) for their cached entry via GET /v1/peer/cache/{key}
//     before paying for a simulation. Candidates behind an open breaker are
//     skipped; with Options.HedgeDelay set, a second candidate is raced
//     after the delay for tail tolerance.
//   - the serving side of both: POST /v1/peer/run (a run that never
//     re-proxies — ownership was already decided by the caller, so
//     inconsistent ring views can cost an extra hop but never a loop) and
//     GET /v1/peer/cache/{key} (strictly validated key → local-tier lookup
//     only, 404 on miss).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fleet-serving counters, next to the runcache.peer.* set the cache tier
// maintains (see internal/runcache) and the retry/breaker set (retry.go).
const (
	// CounterProxied counts requests forwarded to their ring owner.
	CounterProxied = "server.proxied"
	// CounterProxyErrors counts proxied requests that fell back to local
	// execution (owner unreachable, breaker open, or draining).
	CounterProxyErrors = "server.proxy.errors"
	// CounterPeerRuns counts /v1/peer/run requests served for other members.
	CounterPeerRuns = "server.peer.runs"
	// CounterPeerCacheServed counts peer cache fetches answered with a hit.
	CounterPeerCacheServed = "runcache.peer.served"
)

// peerFetchCandidates is how many ring successors a peer cache fetch tries
// before conceding a fleet-wide miss. Two covers the common membership
// churn (the previous owner, plus its own previous owner) without turning
// a cold key into a fleet-wide broadcast.
const peerFetchCandidates = 2

// errInjectedPeer marks a fault-injected peer transport failure.
var errInjectedPeer = errors.New("faultinject: injected peer fetch failure")

// linkFault consults the active fault plan for this node's link to peer:
// a firing partition (whole link, keyed by member URL), a flap currently in
// its severed window, or a per-request peerfetch fault (keyed by the cache
// key; skipped when key is empty, e.g. health probes) all return an error
// before any bytes reach the network. An active latency fault sleeps
// PeerLatencyDelay instead — slow links cost time, never correctness.
func linkFault(ctx context.Context, peer, key string) error {
	plan := faultinject.Active()
	if plan == nil {
		return nil
	}
	if key != "" && plan.Should(faultinject.FaultPeerFetch, key) {
		return errInjectedPeer
	}
	if plan.Should(faultinject.FaultPeerPartition, peer) {
		return fmt.Errorf("%w: link to %s partitioned", errInjectedPeer, peer)
	}
	if plan.Should(faultinject.FaultPeerFlap, peer) && plan.FlapSevered(peer, time.Now()) {
		return fmt.Errorf("%w: link to %s flapping", errInjectedPeer, peer)
	}
	if plan.Should(faultinject.FaultPeerLatency, peer) {
		select {
		case <-time.After(faultinject.PeerLatencyDelay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// peerClient issues the fleet's internal HTTP calls.
type peerClient struct {
	s         *Server
	http      *http.Client
	retry     retryPolicy
	fetchHist *stats.Histogram
}

func newPeerClient(s *Server) *peerClient {
	return &peerClient{
		s:    s,
		http: &http.Client{}, // per-call contexts carry the deadlines
		retry: retryPolicy{attempts: s.opt.ProxyAttempts,
			base: s.opt.RetryBackoff}.norm(),
		fetchHist: s.metrics.Histogram(runcache.HistPeerFetch,
			stats.DefaultLatencyBuckets),
	}
}

// budgetExhausted types a spent retry budget as sim.ErrTimeout so the
// client sees 504 Gateway Timeout — never a generic 500, and never a silent
// nil result. proxyFallback refuses local execution for this kind: a
// request with no deadline budget left cannot pay for a simulation either.
func budgetExhausted(cfg sim.Config, last error) error {
	if last == nil {
		last = errBudget
	}
	return &sim.SimError{Kind: sim.ErrTimeout, Config: cfg,
		Err: fmt.Errorf("%w (last: %v)", errBudget, last)}
}

// proxyRun forwards one normalised config to its owner's /v1/peer/run and
// returns the owner's result, retrying transport failures with budget-aware
// backoff. Error taxonomy: a *peerStatusError wraps the owner's own HTTP
// error response (authoritative — replayed verbatim, never retried); a
// sim.ErrTimeout means the deadline budget ran out (504, no fallback); any
// other error is transport-level — the owner never saw the request (or the
// breaker refused the hop), and the caller may fall back to executing
// locally.
func (p *peerClient) proxyRun(ctx context.Context, owner, key string, cfg sim.Config) (*stats.Run, error) {
	if !p.s.brk.allow(owner) {
		return nil, fmt.Errorf("%w: %s", errBreakerOpen, owner)
	}
	var lastErr error
	for attempt := 1; attempt <= p.retry.attempts; attempt++ {
		if attempt > 1 {
			p.s.metrics.Add(CounterRetries, 1)
			if err := sleepBudget(ctx, p.retry.backoff(key, attempt-1)); err != nil {
				return nil, budgetExhausted(cfg, lastErr)
			}
		}
		run, err := p.proxyOnce(ctx, owner, key, cfg)
		if err == nil {
			p.s.brk.success(owner)
			return run, nil
		}
		var pe *peerStatusError
		if errors.As(err, &pe) {
			// The owner answered — the link works and its verdict stands.
			p.s.brk.success(owner)
			return nil, err
		}
		var se *sim.SimError
		if errors.As(err, &se) {
			return nil, err // typed before the wire (budget exhausted)
		}
		lastErr = err
		if ctx.Err() != nil {
			// The request's own deadline (or client) ended mid-attempt: not
			// the peer's fault, and there is no budget left to retry with.
			return nil, budgetExhausted(cfg, lastErr)
		}
		p.s.brk.failure(owner)
	}
	return nil, lastErr
}

// proxyOnce is a single proxy attempt.
func (p *peerClient) proxyOnce(ctx context.Context, owner, key string, cfg sim.Config) (*stats.Run, error) {
	if err := linkFault(ctx, owner, key); err != nil {
		return nil, err
	}
	// Forward the remaining request budget so the owner clocks the same
	// deadline this node would have.
	var timeoutMS int64
	if d, ok := ctx.Deadline(); ok {
		timeoutMS = int64(time.Until(d) / time.Millisecond)
		if timeoutMS <= 0 {
			return nil, budgetExhausted(cfg, nil)
		}
	}
	body, err := json.Marshal(RunRequest{Config: cfg, TimeoutMS: timeoutMS})
	if err != nil {
		return nil, fmt.Errorf("server: marshal proxy request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		owner+"/v1/peer/run", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// The owner schedules the run on the same tenant share this node would
	// have: tenancy crosses the proxy hop in the header, never the config.
	req.Header.Set(TenantHeader, experiments.TenantFrom(ctx))
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&er); err != nil || er.Error.Kind == "" {
			return nil, fmt.Errorf("server: owner %s replied %s with an unreadable error body", owner, resp.Status)
		}
		return nil, &peerStatusError{status: resp.StatusCode, body: er.Error}
	}
	var rr RunResult
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("server: decode owner %s response: %w", owner, err)
	}
	if rr.Run == nil {
		return nil, fmt.Errorf("server: owner %s replied 200 without a run", owner)
	}
	return rr.Run, nil
}

// fetchCache asks one member for its cached entry under key. Returns
// (run, true, nil) on a hit, (nil, false, nil) on a clean 404 miss, and an
// error for anything else (unreachable member, malformed response).
func (p *peerClient) fetchCache(ctx context.Context, from, key string) (*stats.Run, bool, error) {
	if err := linkFault(ctx, from, key); err != nil {
		return nil, false, err
	}
	ctx, cancel := context.WithTimeout(ctx, p.s.opt.PeerFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		from+"/v1/peer/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var e PeerCacheEntry
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			return nil, false, fmt.Errorf("server: decode peer cache entry from %s: %w", from, err)
		}
		if e.Key != key || e.Run == nil {
			return nil, false, fmt.Errorf("server: peer %s served entry for key %q, asked for %q", from, e.Key, key)
		}
		return e.Run, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("server: peer %s cache fetch: %s", from, resp.Status)
	}
}

// fetchAttempt is fetchCache plus the per-attempt accounting every caller
// needs: the latency histogram, the error counter, and the breaker verdict
// (a failure with the caller's own context still live is the peer's fault;
// one after cancellation is not).
func (p *peerClient) fetchAttempt(ctx context.Context, from, key string) (*stats.Run, bool, error) {
	start := time.Now()
	run, ok, err := p.fetchCache(ctx, from, key)
	p.fetchHist.ObserveDuration(time.Since(start))
	if err != nil {
		p.s.metrics.Add(runcache.CounterPeerErrors, 1)
		if ctx.Err() == nil {
			p.s.brk.failure(from)
		}
	} else {
		p.s.brk.success(from)
	}
	return run, ok, err
}

// hedgedFetch races two candidates for key: the primary starts immediately,
// the hedge after HedgeDelay (cancelled wordlessly if the primary answers
// first). First hit wins; both failing (or missing) is a miss. The loser's
// goroutine drains into a buffered channel, so nothing leaks past the
// request.
func (p *peerClient) hedgedFetch(ctx context.Context, primary, hedge, key string) (*stats.Run, bool) {
	type result struct {
		from string
		run  *stats.Run
		ok   bool
		err  error
	}
	ch := make(chan result, 2)
	launch := func(from string) {
		go func() {
			run, ok, err := p.fetchAttempt(ctx, from, key)
			ch <- result{from, run, ok, err}
		}()
	}
	launch(primary)
	// fired: the hedge candidate has been launched (by race or in sequence);
	// raced: it was launched by the timer, i.e. a true hedge.
	inflight, fired, raced := 1, false, false
	timer := time.NewTimer(p.s.opt.HedgeDelay)
	defer timer.Stop()
	for inflight > 0 {
		select {
		case <-timer.C:
			if !fired {
				fired, raced = true, true
				inflight++
				p.s.metrics.Add(CounterHedgeFired, 1)
				launch(hedge)
			}
		case r := <-ch:
			inflight--
			if r.err == nil && r.ok {
				if raced && r.from == hedge {
					p.s.metrics.Add(CounterHedgeWins, 1)
				}
				return r.run, true
			}
			if ctx.Err() != nil {
				return nil, false
			}
			if inflight == 0 && !fired {
				// Primary resolved without a hit before the hedge delay:
				// the second candidate is now just the next sequential
				// attempt, not a hedge.
				fired = true
				inflight++
				launch(hedge)
			}
		}
	}
	return nil, false
}

// PeerFetch is the run cache's peer tier (runcache.PeerFetchFunc): on a
// local miss it asks the key's next ring candidates for their cached entry
// before the cache simulates. Wire it at startup:
//
//	srv := server.New(runner, server.Options{Fleet: fleet, ...})
//	runner.SetPeerFetch(srv.PeerFetch)
//
// Candidates come from the live (health-filtered) ring, so Down members are
// never asked; candidates behind an open circuit breaker are skipped
// fail-fast. With Options.HedgeDelay set and two candidates available, the
// second is raced after the delay (tail tolerance for one slow peer).
//
// Hit/miss accounting is the cache's (runcache.peer.hits / .misses); this
// side counts failed attempts (runcache.peer.errors) and observes the
// per-attempt latency histogram. Fetch failures are misses: the run always
// degrades to simulating locally.
func (s *Server) PeerFetch(ctx context.Context, key string) (*stats.Run, bool) {
	if s.peers == nil {
		return nil, false
	}
	candidates := s.fleet.FetchCandidates(key, peerFetchCandidates)
	allowed := make([]string, 0, len(candidates))
	for _, from := range candidates {
		if s.brk.allow(from) {
			allowed = append(allowed, from)
		}
	}
	if s.opt.HedgeDelay > 0 && len(allowed) >= 2 {
		return s.peers.hedgedFetch(ctx, allowed[0], allowed[1], key)
	}
	for _, from := range allowed {
		run, ok, err := s.peers.fetchAttempt(ctx, from, key)
		if err != nil {
			if ctx.Err() != nil {
				return nil, false
			}
			continue
		}
		if ok {
			return run, true
		}
	}
	return nil, false
}

// proxyFallback decides whether a failed proxy should degrade to local
// execution. Yes for transport-level failures (the owner never saw the
// request — including a breaker-refused hop) and for a draining owner (it
// refused by policy, not capacity); no when this request's own context
// already ended or its deadline budget is spent (sim.ErrTimeout — there is
// no time left to execute locally either), and no for any other owner-side
// response — a 429 must stay a 429, or proxying would quietly defeat the
// fleet's admission control.
func proxyFallback(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	if sim.KindOf(err) == sim.ErrTimeout {
		return false
	}
	var pe *peerStatusError
	if errors.As(err, &pe) {
		return pe.body.Kind == KindDraining
	}
	return true
}

// handlePeerRun serves POST /v1/peer/run: a run executed on behalf of
// another member. Identical to /v1/runs except it never re-proxies — the
// caller already resolved ownership, so disagreeing ring views (mid-restart
// membership skew) cost one extra hop at worst, never a forwarding loop.
func (s *Server) handlePeerRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add(CounterPeerRuns, 1)
	s.handleRun(w, r, true)
}

// handlePeerCache serves GET /v1/peer/cache/{key}: this member's cached
// entry for a content-addressed key, local tiers only (memory → disk, never
// simulate, never re-fetch from peers). The key is validated to the exact
// [0-9a-f]{64} shape runcache.Key produces before anything touches the
// filesystem — path traversal is rejected by construction, not by cleaning.
func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/peer/cache/")
	if !runcache.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest, Message: "malformed cache key (want 64 lowercase hex digits)"}})
		return
	}
	var (
		run *stats.Run
		ok  bool
	)
	if s.lookup != nil {
		run, ok = s.lookup.CachedRun(key)
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindNotFound, Message: "key not cached on this member"}})
		return
	}
	s.metrics.Add(CounterPeerCacheServed, 1)
	writeJSON(w, http.StatusOK, PeerCacheEntry{Key: key, Run: run})
}
