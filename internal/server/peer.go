// Fleet mechanics: what turns one phastd into a member of a consistent-hash
// cluster. Three pieces live here, all over the existing wire format:
//
//   - the proxy path: a node that receives /v1/runs for a key it does not
//     own forwards the request to the ring owner's /v1/peer/run, so each
//     unique config executes (and caches, and coalesces) on exactly one
//     member. The owner's response — success or typed error — is replayed
//     verbatim (peerStatusError), preserving the sim.SimError mapping
//     end-to-end. A transport failure or a draining owner degrades to
//     executing locally: availability beats dedup.
//   - the peer cache-fetch path: the run cache's peer tier
//     (runcache.PeerFetchFunc). On a local mem+disk miss the owner asks the
//     ring's next candidates (the members that owned the key before a
//     membership change) for their cached entry via GET /v1/peer/cache/{key}
//     before paying for a simulation.
//   - the serving side of both: POST /v1/peer/run (a run that never
//     re-proxies — ownership was already decided by the caller, so
//     inconsistent ring views can cost an extra hop but never a loop) and
//     GET /v1/peer/cache/{key} (strictly validated key → local-tier lookup
//     only, 404 on miss).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fleet-serving counters, next to the runcache.peer.* set the cache tier
// maintains (see internal/runcache).
const (
	// CounterProxied counts requests forwarded to their ring owner.
	CounterProxied = "server.proxied"
	// CounterProxyErrors counts proxied requests that fell back to local
	// execution (owner unreachable or draining).
	CounterProxyErrors = "server.proxy.errors"
	// CounterPeerRuns counts /v1/peer/run requests served for other members.
	CounterPeerRuns = "server.peer.runs"
	// CounterPeerCacheServed counts peer cache fetches answered with a hit.
	CounterPeerCacheServed = "runcache.peer.served"
)

// peerFetchCandidates is how many ring successors a peer cache fetch tries
// before conceding a fleet-wide miss. Two covers the common membership
// churn (the previous owner, plus its own previous owner) without turning
// a cold key into a fleet-wide broadcast.
const peerFetchCandidates = 2

// errInjectedPeer marks a fault-injected peer transport failure.
var errInjectedPeer = errors.New("faultinject: injected peer fetch failure")

// peerClient issues the fleet's internal HTTP calls.
type peerClient struct {
	s         *Server
	http      *http.Client
	fetchHist *stats.Histogram
}

func newPeerClient(s *Server) *peerClient {
	return &peerClient{
		s:    s,
		http: &http.Client{}, // per-call contexts carry the deadlines
		fetchHist: s.metrics.Histogram(runcache.HistPeerFetch,
			stats.DefaultLatencyBuckets),
	}
}

// proxyRun forwards one normalised config to its owner's /v1/peer/run and
// returns the owner's result. Error taxonomy: a *peerStatusError wraps the
// owner's own HTTP error response (replayed verbatim to the client); any
// other error is transport-level — the owner never saw the request, and the
// caller may fall back to executing locally.
func (p *peerClient) proxyRun(ctx context.Context, owner, key string, cfg sim.Config) (*stats.Run, error) {
	if plan := faultinject.Active(); plan.Should(faultinject.FaultPeerFetch, key) {
		return nil, errInjectedPeer
	}
	// Forward the remaining request budget so the owner clocks the same
	// deadline this node would have.
	var timeoutMS int64
	if d, ok := ctx.Deadline(); ok {
		timeoutMS = int64(time.Until(d) / time.Millisecond)
		if timeoutMS <= 0 {
			return nil, ctx.Err()
		}
	}
	body, err := json.Marshal(RunRequest{Config: cfg, TimeoutMS: timeoutMS})
	if err != nil {
		return nil, fmt.Errorf("server: marshal proxy request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		owner+"/v1/peer/run", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&er); err != nil || er.Error.Kind == "" {
			return nil, fmt.Errorf("server: owner %s replied %s with an unreadable error body", owner, resp.Status)
		}
		return nil, &peerStatusError{status: resp.StatusCode, body: er.Error}
	}
	var rr RunResult
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("server: decode owner %s response: %w", owner, err)
	}
	if rr.Run == nil {
		return nil, fmt.Errorf("server: owner %s replied 200 without a run", owner)
	}
	return rr.Run, nil
}

// fetchCache asks one member for its cached entry under key. Returns
// (run, true, nil) on a hit, (nil, false, nil) on a clean 404 miss, and an
// error for anything else (unreachable member, malformed response).
func (p *peerClient) fetchCache(ctx context.Context, from, key string) (*stats.Run, bool, error) {
	if plan := faultinject.Active(); plan.Should(faultinject.FaultPeerFetch, key) {
		return nil, false, errInjectedPeer
	}
	ctx, cancel := context.WithTimeout(ctx, p.s.opt.PeerFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		from+"/v1/peer/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var e PeerCacheEntry
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			return nil, false, fmt.Errorf("server: decode peer cache entry from %s: %w", from, err)
		}
		if e.Key != key || e.Run == nil {
			return nil, false, fmt.Errorf("server: peer %s served entry for key %q, asked for %q", from, e.Key, key)
		}
		return e.Run, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("server: peer %s cache fetch: %s", from, resp.Status)
	}
}

// PeerFetch is the run cache's peer tier (runcache.PeerFetchFunc): on a
// local miss it asks the key's next ring candidates for their cached entry
// before the cache simulates. Wire it at startup:
//
//	srv := server.New(runner, server.Options{Fleet: fleet, ...})
//	runner.SetPeerFetch(srv.PeerFetch)
//
// Hit/miss accounting is the cache's (runcache.peer.hits / .misses); this
// side counts failed attempts (runcache.peer.errors) and observes the
// per-attempt latency histogram. Fetch failures are misses: the run always
// degrades to simulating locally.
func (s *Server) PeerFetch(ctx context.Context, key string) (*stats.Run, bool) {
	if s.peers == nil {
		return nil, false
	}
	for _, from := range s.fleet.FetchCandidates(key, peerFetchCandidates) {
		start := time.Now()
		run, ok, err := s.peers.fetchCache(ctx, from, key)
		s.peers.fetchHist.ObserveDuration(time.Since(start))
		if err != nil {
			s.metrics.Add(runcache.CounterPeerErrors, 1)
			if ctx.Err() != nil {
				return nil, false
			}
			continue
		}
		if ok {
			return run, true
		}
	}
	return nil, false
}

// proxyFallback decides whether a failed proxy should degrade to local
// execution. Yes for transport-level failures (the owner never saw the
// request) and for a draining owner (it refused by policy, not capacity);
// no when this request's own context already ended, and no for any other
// owner-side response — a 429 must stay a 429, or proxying would quietly
// defeat the fleet's admission control.
func proxyFallback(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var pe *peerStatusError
	if errors.As(err, &pe) {
		return pe.body.Kind == KindDraining
	}
	return true
}

// handlePeerRun serves POST /v1/peer/run: a run executed on behalf of
// another member. Identical to /v1/runs except it never re-proxies — the
// caller already resolved ownership, so disagreeing ring views (mid-restart
// membership skew) cost one extra hop at worst, never a forwarding loop.
func (s *Server) handlePeerRun(w http.ResponseWriter, r *http.Request) {
	s.metrics.Add(CounterPeerRuns, 1)
	s.handleRun(w, r, true)
}

// handlePeerCache serves GET /v1/peer/cache/{key}: this member's cached
// entry for a content-addressed key, local tiers only (memory → disk, never
// simulate, never re-fetch from peers). The key is validated to the exact
// [0-9a-f]{64} shape runcache.Key produces before anything touches the
// filesystem — path traversal is rejected by construction, not by cleaning.
func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/peer/cache/")
	if !runcache.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest, Message: "malformed cache key (want 64 lowercase hex digits)"}})
		return
	}
	var (
		run *stats.Run
		ok  bool
	)
	if s.lookup != nil {
		run, ok = s.lookup.CachedRun(key)
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindNotFound, Message: "key not cached on this member"}})
		return
	}
	s.metrics.Add(CounterPeerCacheServed, 1)
	writeJSON(w, http.StatusOK, PeerCacheEntry{Key: key, Run: run})
}
