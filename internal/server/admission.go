package server

import (
	"context"
	"time"

	"repro/internal/stats"
)

// admitter is the server's admission controller: a fixed number of running
// slots plus a bounded wait queue, both plain buffered channels. A request
// either (1) takes a running slot immediately, (2) takes a queue slot and
// blocks until a running slot frees or its deadline expires, or (3) bounces
// with ErrRejected — explicit 429 backpressure instead of unbounded
// goroutines piling onto the simulator. Admission is request-scoped: batch
// requests take one slot and fan out on the runner's worker pool, which
// bounds actual simulation parallelism (see DESIGN.md §12).
type admitter struct {
	metrics   *stats.Metrics
	running   chan struct{} // capacity = MaxInflight
	queue     chan struct{} // capacity = QueueDepth
	queueWait *stats.Histogram
}

func newAdmitter(m *stats.Metrics, maxInflight, queueDepth int) *admitter {
	return &admitter{
		metrics:   m,
		running:   make(chan struct{}, maxInflight),
		queue:     make(chan struct{}, queueDepth),
		queueWait: m.Histogram(HistQueueWait, stats.DefaultLatencyBuckets),
	}
}

// admit blocks until the request holds a running slot, returning the release
// function, or fails fast: ErrRejected when both the running set and the
// queue are full, ctx.Err() when the deadline expires while queued. Exactly
// one of release != nil and err != nil holds.
func (a *admitter) admit(ctx context.Context) (release func(), err error) {
	select {
	case a.running <- struct{}{}:
		return a.accepted(), nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
		// Queued: wait for a running slot with the request's own deadline.
	default:
		a.metrics.Add(CounterRejected, 1)
		return nil, ErrRejected
	}
	a.metrics.Add(CounterQueued, 1)
	a.gauge(GaugeQueueDepth, len(a.queue))
	start := time.Now()
	defer func() {
		<-a.queue
		a.gauge(GaugeQueueDepth, len(a.queue))
		a.queueWait.ObserveDuration(time.Since(start))
	}()
	select {
	case a.running <- struct{}{}:
		return a.accepted(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// accepted finalises a successful admission and returns its release.
func (a *admitter) accepted() func() {
	a.metrics.Add(CounterAccepted, 1)
	a.gauge(GaugeInflight, len(a.running))
	return func() {
		<-a.running
		a.gauge(GaugeInflight, len(a.running))
	}
}

// gauge publishes a point-in-time channel occupancy. Concurrent admissions
// race on the read, so the gauge is approximate — fine for monitoring; the
// channels themselves are the source of truth for admission decisions.
func (a *admitter) gauge(name string, v int) {
	a.metrics.Set(name, uint64(v))
}
