package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzWireDecode posts arbitrary bytes at the two run endpoints: whatever
// the body, the server must answer with a known status, a JSON body, and —
// on failures — the ErrorBody wire shape. Request decoding must never
// panic the handler or leak a non-JSON error page.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"config":{"App":"511.povray","Predictor":"phast"}}`), false)
	f.Add([]byte(`{"config":{"App":"511.povray","Verify":true},"timeout_ms":5000}`), false)
	f.Add([]byte(`{"configs":[{"App":"a"},{"App":"b"}]}`), true)
	f.Add([]byte(`{"configs":[]}`), true)
	f.Add([]byte(`{`), false)
	f.Add([]byte(`[1,2,3]`), true)
	f.Add([]byte(``), false)
	f.Add([]byte(`{"config":{"Instructions":-5},"timeout_ms":-1}`), false)

	srv := New(&fakeBackend{}, Options{MaxInflight: 2})
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)

	valid := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusTooManyRequests:     true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
		http.StatusInternalServerError: true,
	}

	f.Fuzz(func(t *testing.T, body []byte, batch bool) {
		url := ts.URL + "/v1/runs"
		if batch {
			url = ts.URL + "/v1/batch"
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !valid[resp.StatusCode] {
			t.Fatalf("unexpected status %d for body %q", resp.StatusCode, body)
		}
		if !json.Valid(out) {
			t.Fatalf("status %d: response is not JSON: %q", resp.StatusCode, out)
		}
		if resp.StatusCode != http.StatusOK && !batch {
			var eb struct {
				Error ErrorBody `json:"error"`
			}
			if json.Unmarshal(out, &eb) != nil || eb.Error.Kind == "" {
				t.Fatalf("status %d: error body off the wire shape: %q", resp.StatusCode, out)
			}
		}
	})
}
