package server

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracestore"
)

// fleetNode is one in-process fleet member: a real runner (own metrics
// registry, own disk cache, own trace store) behind a real HTTP listener.
type fleetNode struct {
	url    string
	srv    *Server
	runner *experiments.Runner
	reg    *stats.Metrics
	store  *tracestore.Store
}

// startFleet boots n fleet members on loopback. Listeners are bound first so
// every member can be configured with the complete URL list — the same
// chicken-and-egg ordering a deployment script uses.
func startFleet(t *testing.T, n int) []*fleetNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		fleet, err := cluster.NewFleet(urls[i], urls, 0)
		if err != nil {
			t.Fatal(err)
		}
		reg := stats.NewMetrics()
		runner := experiments.NewRunner(experiments.Options{
			Instructions: 8_000,
			CacheDir:     t.TempDir(),
			Metrics:      reg,
			KeepGoing:    true,
		})
		store := tracestore.New(t.TempDir(), tracestore.Options{})
		srv := New(runner, Options{Metrics: reg, Fleet: fleet, TraceStore: store})
		runner.SetPeerFetch(srv.PeerFetch)
		runner.SetTraceResolver(srv.TraceFetch)
		hs := httptest.NewUnstartedServer(srv.Handler())
		hs.Listener.Close()
		hs.Listener = lns[i]
		hs.Start()
		nodes[i] = &fleetNode{url: urls[i], srv: srv, runner: runner, reg: reg, store: store}
		t.Cleanup(hs.Close)
		t.Cleanup(runner.Close)
	}
	return nodes
}

// sumCounter is the fleet-wide (cluster aggregate) value of one counter.
func sumCounter(nodes []*fleetNode, name string) uint64 {
	var total uint64
	for _, n := range nodes {
		total += n.reg.Get(name)
	}
	return total
}

// TestFleetByteIdenticalAnyNode is the fleet's golden correctness property:
// the same config posted to every member returns byte-identical result rows
// no matter which node received it, and the fleet executes the simulation
// exactly once cluster-wide — the duplicates resolve by proxying to the ring
// owner and by the caches, never by re-simulating.
func TestFleetByteIdenticalAnyNode(t *testing.T) {
	nodes := startFleet(t, 3)
	client := &http.Client{}

	cfgs := []sim.Config{
		{App: "511.povray", Predictor: "phast", Instructions: 8_000},
		{App: "519.lbm", Predictor: "phast", Instructions: 8_000, Seed: 7},
	}
	for _, cfg := range cfgs {
		var rows [][]byte
		for _, n := range nodes {
			var got RunResult
			status, _ := postJSON(t, client, n.url+"/v1/runs", RunRequest{Config: cfg}, &got)
			if status != http.StatusOK {
				t.Fatalf("node %s: status = %d, want 200 (%+v)", n.url, status, got.Error)
			}
			row, err := json.Marshal(got.Run)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, row)
		}
		for i := 1; i < len(rows); i++ {
			if !bytes.Equal(rows[0], rows[i]) {
				t.Errorf("config %+v: node %d row differs from node 0:\nnode0 %s\nnode%d %s",
					cfg, i, rows[0], i, rows[i])
			}
		}
	}

	// 2 unique configs, 3 requests each: exactly 2 simulations cluster-wide.
	if sims := sumCounter(nodes, runcache.CounterRunsSimulated); sims != uint64(len(cfgs)) {
		t.Errorf("fleet executed %d simulations for %d unique configs", sims, len(cfgs))
	}
	// The requests that landed off-owner must have been forwarded, and the
	// owners must have served them.
	if p := sumCounter(nodes, CounterProxied); p == 0 {
		t.Error("no request was proxied to its ring owner")
	}
	if sumCounter(nodes, CounterProxied) != sumCounter(nodes, CounterPeerRuns) {
		t.Errorf("proxied %d != peer runs served %d",
			sumCounter(nodes, CounterProxied), sumCounter(nodes, CounterPeerRuns))
	}
	if e := sumCounter(nodes, CounterProxyErrors); e != 0 {
		t.Errorf("healthy fleet counted %d proxy errors", e)
	}
}

// TestFleetPeerFailureDegradesToLocal injects peer-transport failures
// (faultinject "peerfetch") into a healthy fleet: every proxy and peer cache
// fetch dies before the network. The contract is graceful degradation — each
// node falls back to simulating locally, every request still succeeds with
// byte-identical rows, and the failures are visible in the counters
// (server.proxy.errors, runcache.peer.errors) rather than silent.
func TestFleetPeerFailureDegradesToLocal(t *testing.T) {
	nodes := startFleet(t, 3)
	client := &http.Client{}

	plan, err := faultinject.Parse("peerfetch=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Activate(plan)
	defer restore()

	cfg := sim.Config{App: "511.povray", Predictor: "phast", Instructions: 8_000, Seed: 21}
	var rows [][]byte
	for _, n := range nodes {
		var got RunResult
		status, _ := postJSON(t, client, n.url+"/v1/runs", RunRequest{Config: cfg}, &got)
		if status != http.StatusOK {
			t.Fatalf("node %s under peer faults: status = %d, want 200 (%+v)", n.url, status, got.Error)
		}
		row, err := json.Marshal(got.Run)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	for i := 1; i < len(rows); i++ {
		if !bytes.Equal(rows[0], rows[i]) {
			t.Errorf("node %d row differs from node 0 under peer faults:\nnode0 %s\nnode%d %s",
				i, rows[0], i, rows[i])
		}
	}

	// With the fleet's internal links down, dedup is sacrificed for
	// availability: the two non-owner nodes execute locally instead of
	// proxying, and their fallbacks are counted.
	if e := sumCounter(nodes, CounterProxyErrors); e != 2 {
		t.Errorf("proxy errors = %d, want 2 (one per non-owner node)", e)
	}
	if e := sumCounter(nodes, runcache.CounterPeerErrors); e == 0 {
		t.Error("peer fetch failures left runcache.peer.errors at 0")
	}
	if sims := sumCounter(nodes, runcache.CounterRunsSimulated); sims != 3 {
		t.Errorf("fleet executed %d simulations, want 3 (each node local)", sims)
	}
}

// TestPeerCacheKeyValidation: the peer cache-fetch endpoint accepts exactly
// the 64-lowercase-hex shape runcache.Key produces and rejects everything
// else before touching the filesystem — path traversal is impossible by
// construction. Requests are built with httptest.NewRequest so traversal
// payloads reach the handler verbatim instead of being cleaned by the mux.
func TestPeerCacheKeyValidation(t *testing.T) {
	r := experiments.NewRunner(experiments.Options{Instructions: 8_000, KeepGoing: true})
	defer r.Close()
	srv := New(r, Options{Metrics: r.Metrics()})

	valid := strings.Repeat("0123456789abcdef", 4) // 64 hex digits, not cached
	cases := []struct {
		name string
		key  string
		want int
	}{
		{"traversal", "../../../etc/passwd", http.StatusBadRequest},
		{"traversal-hex-prefix", strings.Repeat("ab", 28) + "/../key3", http.StatusBadRequest},
		{"uppercase", strings.ToUpper(valid), http.StatusBadRequest},
		{"too-short", valid[:63], http.StatusBadRequest},
		{"too-long", valid + "0", http.StatusBadRequest},
		{"non-hex", strings.Repeat("g", 64), http.StatusBadRequest},
		{"empty", "", http.StatusBadRequest},
		{"valid-but-missing", valid, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, "/v1/peer/cache/", nil)
			req.URL.Path = "/v1/peer/cache/" + tc.key
			w := httptest.NewRecorder()
			srv.handlePeerCache(w, req)
			if w.Code != tc.want {
				t.Errorf("key %q: status = %d, want %d (body %s)", tc.key, w.Code, tc.want, w.Body)
			}
		})
	}

	t.Run("method", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodPost, "/v1/peer/cache/"+valid, nil)
		w := httptest.NewRecorder()
		srv.handlePeerCache(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST: status = %d, want 405", w.Code)
		}
	})
}

// TestPeerCacheServesCachedRun: a run executed through the normal path is
// then retrievable over the peer cache-fetch endpoint, keyed by the
// content-addressed runcache.Key of its normalised config.
func TestPeerCacheServesCachedRun(t *testing.T) {
	r := experiments.NewRunner(experiments.Options{Instructions: 8_000, KeepGoing: true})
	defer r.Close()
	srv := New(r, Options{Metrics: r.Metrics()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := srv.normalize(sim.Config{App: "511.povray", Predictor: "phast"})
	var got RunResult
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfg}, &got)
	if status != http.StatusOK {
		t.Fatalf("run: status = %d", status)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/peer/cache/" + runcache.Key(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer cache fetch: status = %d, want 200", resp.StatusCode)
	}
	var entry PeerCacheEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.Key != runcache.Key(cfg) || entry.Run == nil {
		t.Fatalf("bad entry: key %q run %v", entry.Key, entry.Run)
	}
	wantJSON, _ := json.Marshal(got.Run)
	gotJSON, _ := json.Marshal(entry.Run)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("peer cache row differs from the run:\nrun   %s\ncache %s", wantJSON, gotJSON)
	}
}
