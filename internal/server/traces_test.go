package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/contentaddr"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// encodedTrace builds a distinct canonical trace stream per (n, seed) and
// returns its bytes plus content digest. Distinct seeds per test matter:
// the provided-trace registry is process-global.
func encodedTrace(t *testing.T, n int, seed int64) ([]byte, string) {
	t.Helper()
	tr, err := sim.TraceFor(workload.Names()[0], n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), contentaddr.Sum(buf.Bytes())
}

// doUpload posts body to url's trace endpoint under tenant, decoding either
// the upload response or the error body.
func doUpload(t *testing.T, url, tenant string, body []byte) (int, TraceUploadResponse, ErrorBody) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/traces", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		var up TraceUploadResponse
		if err := json.Unmarshal(data, &up); err != nil {
			t.Fatalf("bad upload response %q: %v", data, err)
		}
		return resp.StatusCode, up, ErrorBody{}
	}
	var eb errorResponse
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("status %d: bad error body %q: %v", resp.StatusCode, data, err)
	}
	return resp.StatusCode, TraceUploadResponse{}, eb.Error
}

// newTraceServer boots a standalone server over a real runner with a trace
// store and a results log, resolver wired — the single-node production
// shape.
func newTraceServer(t *testing.T, storeOpt tracestore.Options, opt Options) (*httptest.Server, *Server, *experiments.Runner) {
	t.Helper()
	reg := stats.NewMetrics()
	runner := experiments.NewRunner(experiments.Options{
		Instructions: 3_000, Metrics: reg, KeepGoing: true,
	})
	t.Cleanup(runner.Close)
	opt.Metrics = reg
	opt.TraceStore = tracestore.New(t.TempDir(), storeOpt)
	opt.Results = tracestore.NewResultLog(t.TempDir())
	srv := New(runner, opt)
	runner.SetTraceResolver(srv.TraceFetch)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, runner
}

// TestTraceUploadRunRoundTrip is the subsystem's golden path: upload a
// trace, read its canonical bytes back, run it by digest over HTTP, and
// check the row is byte-identical to the same trace-app config executed
// in-process. The outcome also lands in the tenant's results log.
func TestTraceUploadRunRoundTrip(t *testing.T) {
	ts, _, runner := newTraceServer(t, tracestore.Options{}, Options{})
	payload, digest := encodedTrace(t, 3_000, 9101)

	status, up, eb := doUpload(t, ts.URL, "acme", payload)
	if status != http.StatusOK {
		t.Fatalf("upload: status %d (%+v)", status, eb)
	}
	if up.Digest != digest || up.Dup || up.Insts != 3_000 {
		t.Fatalf("upload response %+v, want digest %s, 3000 insts, no dup", up, digest)
	}
	// Re-upload is acknowledged as a dup under the same digest.
	if _, up2, _ := doUpload(t, ts.URL, "acme", payload); !up2.Dup || up2.Digest != digest {
		t.Fatalf("re-upload response %+v, want dup under %s", up2, digest)
	}

	// The stored canonical bytes round-trip through GET /v1/traces/{digest}.
	resp, err := http.Get(ts.URL + "/v1/traces/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, payload) {
		t.Fatalf("GET trace: status %d, %d bytes, want the %d uploaded bytes", resp.StatusCode, len(got), len(payload))
	}

	// Run by digest over HTTP...
	cfg := sim.Config{App: sim.TraceAppPrefix + digest, Predictor: "phast", Instructions: 3_000}
	client := &http.Client{}
	var viaHTTP RunResult
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", bytes.NewReader(mustJSON(t, RunRequest{Config: cfg})))
	req.Header.Set(TenantHeader, "acme")
	hresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("run by digest: status %d: %s", hresp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &viaHTTP); err != nil {
		t.Fatal(err)
	}
	// ...and in-process: byte-identical rows.
	direct, err := runner.RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	httpRow, _ := json.Marshal(viaHTTP.Run)
	directRow, _ := json.Marshal(direct)
	if !bytes.Equal(httpRow, directRow) {
		t.Fatalf("HTTP row differs from in-process:\nhttp   %s\ndirect %s", httpRow, directRow)
	}

	// The run is in acme's persistent results log.
	var page ResultsResponse
	getJSON(t, ts.URL+"/v1/results?tenant=acme", &page)
	if len(page.Results) != 1 {
		t.Fatalf("results log holds %d rows, want 1", len(page.Results))
	}
	var logged RunResult
	if err := json.Unmarshal(page.Results[0].Record, &logged); err != nil {
		t.Fatal(err)
	}
	if logged.Config.App != cfg.App || logged.Run == nil {
		t.Fatalf("logged row %+v, want the trace run", logged)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("GET %s: bad body %q: %v", url, data, err)
	}
}

// TestTraceUploadTypedErrors pins the upload path's error taxonomy: every
// rejection is a typed JSON error on the documented status, and nothing is
// stored for a rejected stream.
func TestTraceUploadTypedErrors(t *testing.T) {
	payload, digest := encodedTrace(t, 2_000, 9202)
	ts, srv, _ := newTraceServer(t, tracestore.Options{
		MaxTraceBytes:    int64(len(payload)) + 256,
		TenantQuotaBytes: int64(len(payload)) + 256,
	}, Options{})

	// Garbage stream: 400 bad_request, nothing stored.
	if status, _, eb := doUpload(t, ts.URL, "acme", []byte("MDPT this is not a trace")); status != http.StatusBadRequest || eb.Kind != KindBadRequest {
		t.Fatalf("garbage upload: status %d kind %q, want 400 %s", status, eb.Kind, KindBadRequest)
	}
	// Truncated stream: also 400.
	if status, _, eb := doUpload(t, ts.URL, "acme", payload[:len(payload)/2]); status != http.StatusBadRequest || eb.Kind != KindBadRequest {
		t.Fatalf("truncated upload: status %d kind %q, want 400 %s", status, eb.Kind, KindBadRequest)
	}
	// Oversized: 413 too_large.
	big, _ := encodedTrace(t, 6_000, 9203)
	if status, _, eb := doUpload(t, ts.URL, "acme", big); status != http.StatusRequestEntityTooLarge || eb.Kind != KindTooLarge {
		t.Fatalf("oversized upload: status %d kind %q, want 413 %s", status, eb.Kind, KindTooLarge)
	}
	// Invalid tenant: 400 before anything is read.
	if status, _, eb := doUpload(t, ts.URL, "../etc", payload); status != http.StatusBadRequest || eb.Kind != KindBadRequest {
		t.Fatalf("bad tenant: status %d kind %q, want 400 %s", status, eb.Kind, KindBadRequest)
	}

	// First valid upload lands; the tenant's next distinct trace exceeds its
	// stored-bytes quota: 429 quota_exceeded with Retry-After.
	if status, _, eb := doUpload(t, ts.URL, "acme", payload); status != http.StatusOK {
		t.Fatalf("valid upload: status %d (%+v)", status, eb)
	}
	second, _ := encodedTrace(t, 2_000, 9204)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/traces", bytes.NewReader(second))
	req.Header.Set(TenantHeader, "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var eb errorResponse
	if resp.StatusCode != http.StatusTooManyRequests || json.Unmarshal(data, &eb) != nil || eb.Error.Kind != KindQuotaExceeded {
		t.Fatalf("quota upload: status %d body %s, want 429 %s", resp.StatusCode, data, KindQuotaExceeded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// A different tenant still has room for the same second trace.
	if status, _, eb := doUpload(t, ts.URL, "globex", second); status != http.StatusOK {
		t.Fatalf("other tenant upload: status %d (%+v)", status, eb)
	}

	// Reads: unknown digest 404, malformed digest 400.
	unknown := contentaddr.Sum([]byte("never uploaded"))
	if resp, err := http.Get(ts.URL + "/v1/traces/" + unknown); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: %v status %d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/traces/" + digest[:10]); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed digest: %v status %d, want 400", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	_ = srv
}

// TestTenantInflightQuota: with TenantMaxInflight=1 and one request parked
// in the backend, the same tenant's second request bounces 429
// quota_exceeded while another tenant is admitted untouched — the gate is
// per tenant, not per server.
func TestTenantInflightQuota(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	m := stats.NewMetrics()
	ts := httptest.NewServer(New(fb, Options{MaxInflight: 4, TenantMaxInflight: 1, Metrics: m}).Handler())
	defer ts.Close()
	client := &http.Client{}

	post := func(tenant string, seed int64) (*http.Response, error) {
		body := mustJSON(t, RunRequest{Config: sim.Config{App: "a", Predictor: "none", Seed: seed}})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", bytes.NewReader(body))
		req.Header.Set(TenantHeader, tenant)
		return client.Do(req)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	first := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := post("acme", 1)
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	// Wait until acme's first request holds its unit.
	waitUntil(t, func() bool { return fb.calls.Load() >= 1 })

	resp, err := post("acme", 2)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var eb errorResponse
	if resp.StatusCode != http.StatusTooManyRequests || json.Unmarshal(data, &eb) != nil || eb.Error.Kind != KindQuotaExceeded {
		t.Fatalf("second acme run: status %d body %s, want 429 %s", resp.StatusCode, data, KindQuotaExceeded)
	}
	if m.Get(stats.TenantCounter("acme", "rejected")) == 0 {
		t.Fatal("tenant rejection not counted")
	}

	// globex is not acme: admitted despite acme being at its cap — its run
	// reaches the backend (which parks it on the shared gate) instead of
	// bouncing at the tenant gate.
	wg.Add(1)
	second := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := post("globex", 3)
		if err != nil {
			second <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		second <- resp.StatusCode
	}()
	waitUntil(t, func() bool { return fb.calls.Load() >= 2 })

	close(fb.gate)
	wg.Wait()
	if got := <-first; got != http.StatusOK {
		t.Fatalf("first acme run: status %d, want 200", got)
	}
	if got := <-second; got != http.StatusOK {
		t.Fatalf("globex run: status %d, want 200", got)
	}
	// The unit frees once the request completes.
	resp, err = post("acme", 4)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acme after release: status %d, want 200", resp.StatusCode)
	}
}

// TestResultsPagination: outcomes append per tenant and page by cursor.
func TestResultsPagination(t *testing.T) {
	fb := &fakeBackend{}
	reg := stats.NewMetrics()
	srv := New(fb, Options{Metrics: reg, Results: tracestore.NewResultLog(t.TempDir())})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{}

	for i := 0; i < 3; i++ {
		body := mustJSON(t, RunRequest{Config: sim.Config{App: fmt.Sprintf("app%d", i), Predictor: "none"}})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", bytes.NewReader(body))
		req.Header.Set(TenantHeader, "acme")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}

	var apps []string
	after := int64(0)
	for page := 0; page < 4; page++ {
		var pr ResultsResponse
		getJSON(t, fmt.Sprintf("%s/v1/results?tenant=acme&after=%d&limit=2", ts.URL, after), &pr)
		if len(pr.Results) == 0 {
			break
		}
		for _, e := range pr.Results {
			var row RunResult
			if err := json.Unmarshal(e.Record, &row); err != nil {
				t.Fatal(err)
			}
			apps = append(apps, row.Config.App)
		}
		after = pr.Next
	}
	if len(apps) != 3 || apps[0] != "app0" || apps[2] != "app2" {
		t.Fatalf("paged apps %v, want [app0 app1 app2] in order", apps)
	}

	// Another tenant's log is empty; an invalid tenant is a 400.
	var other ResultsResponse
	getJSON(t, ts.URL+"/v1/results?tenant=globex", &other)
	if len(other.Results) != 0 {
		t.Fatalf("globex log holds %d rows, want 0", len(other.Results))
	}
	resp, err := http.Get(ts.URL + "/v1/results?tenant=..bad")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tenant listing: status %d, want 400", resp.StatusCode)
	}
}

// TestFleetTraceUploadRunAnyNode is the tentpole's fleet property: a trace
// uploaded to one member is runnable by digest from every member, with
// byte-identical rows, and the stream is ingested exactly once (peers pull
// the canonical bytes rather than re-uploading).
func TestFleetTraceUploadRunAnyNode(t *testing.T) {
	nodes := startFleet(t, 3)
	payload, digest := encodedTrace(t, 3_000, 9305)

	status, up, eb := doUpload(t, nodes[0].url, "acme", payload)
	if status != http.StatusOK || up.Digest != digest {
		t.Fatalf("upload to node 0: status %d digest %s (%+v)", status, up.Digest, eb)
	}

	cfg := sim.Config{App: sim.TraceAppPrefix + digest, Predictor: "phast", Instructions: 3_000}
	client := &http.Client{}
	var rows [][]byte
	for i, n := range nodes {
		body := mustJSON(t, RunRequest{Config: cfg})
		req, _ := http.NewRequest(http.MethodPost, n.url+"/v1/runs", bytes.NewReader(body))
		req.Header.Set(TenantHeader, "acme")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d run by digest: status %d: %s", i, resp.StatusCode, data)
		}
		var rr RunResult
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatal(err)
		}
		row, _ := json.Marshal(rr.Run)
		rows = append(rows, row)
	}
	for i := 1; i < len(rows); i++ {
		if !bytes.Equal(rows[0], rows[i]) {
			t.Errorf("node %d row differs from node 0:\nnode0 %s\nnode%d %s", i, rows[0], i, rows[i])
		}
	}

	// Exactly one member ingested the upload; replication/fetch moved the
	// canonical bytes, never a second client upload.
	if got := sumCounter(nodes, CounterTraceUploads); got != 1 {
		t.Errorf("fleet-wide uploads = %d, want 1", got)
	}
	// The canonical bytes are retrievable from whichever members hold them.
	var holders int
	for _, n := range nodes {
		if n.store.Has(digest) {
			holders++
		}
	}
	if holders == 0 {
		t.Error("no member holds the trace after the runs")
	}
}

// waitUntil polls cond for up to ~5s.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// FuzzTraceUpload posts arbitrary bytes at POST /v1/traces: whatever the
// body, the server must answer a documented status with a JSON error body
// (or a well-formed upload response), never panic, and never store anything
// for a rejected stream — the store must stay consistent with the count of
// accepted uploads.
func FuzzTraceUpload(f *testing.F) {
	tr, err := sim.TraceFor(workload.Names()[0], 1_000, 424242)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := tr.Encode(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("MDPT"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	reg := stats.NewMetrics()
	store := tracestore.New(f.TempDir(), tracestore.Options{MaxTraceBytes: 1 << 20})
	srv := New(&fakeBackend{}, Options{MaxInflight: 2, Metrics: reg, TraceStore: store})
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)

	validStatus := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !validStatus[resp.StatusCode] {
			t.Fatalf("unexpected status %d for %d-byte body", resp.StatusCode, len(body))
		}
		if !json.Valid(out) {
			t.Fatalf("status %d: response is not JSON: %q", resp.StatusCode, out)
		}
		if resp.StatusCode == http.StatusOK {
			var up TraceUploadResponse
			if json.Unmarshal(out, &up) != nil || !contentaddr.Valid(up.Digest) {
				t.Fatalf("200 with a malformed upload response: %q", out)
			}
			// An accepted digest must be immediately readable.
			if !store.Has(up.Digest) {
				t.Fatalf("accepted digest %s not in the store", up.Digest)
			}
		} else {
			var eb errorResponse
			if json.Unmarshal(out, &eb) != nil || eb.Error.Kind == "" {
				t.Fatalf("status %d: error body off the wire shape: %q", resp.StatusCode, out)
			}
		}
	})
}
