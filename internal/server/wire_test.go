package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestErrorBodyStatusMapping pins the error-kind → HTTP-status contract:
// load balancers retry on it, clients branch on it, dashboards group by it.
func TestErrorBodyStatusMapping(t *testing.T) {
	simErr := func(kind sim.ErrorKind) error {
		return &sim.SimError{Kind: kind, Config: sim.Config{App: "x"}, Err: errors.New("boom")}
	}
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantKind   string
	}{
		{"config", simErr(sim.ErrConfig), http.StatusBadRequest, "config"},
		{"timeout", simErr(sim.ErrTimeout), http.StatusGatewayTimeout, "timeout"},
		{"cancelled", simErr(sim.ErrCancelled), http.StatusServiceUnavailable, "cancelled"},
		{"panic", simErr(sim.ErrPanic), http.StatusInternalServerError, "panic"},
		{"deadlock", simErr(sim.ErrDeadlock), http.StatusInternalServerError, "deadlock"},
		{"internal", simErr(sim.ErrInternal), http.StatusInternalServerError, "internal"},
		{"verify", simErr(sim.ErrVerify), http.StatusInternalServerError, "verify"},
		{"rejected", ErrRejected, http.StatusTooManyRequests, KindRejected},
		{"rejected-wrapped", fmt.Errorf("queue: %w", ErrRejected), http.StatusTooManyRequests, KindRejected},
		{"draining", ErrDraining, http.StatusServiceUnavailable, KindDraining},
		{"bare-deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout"},
		{"bare-cancel", context.Canceled, http.StatusServiceUnavailable, "cancelled"},
		{"untyped", errors.New("mystery"), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := errorBody(tc.err)
			if status != tc.wantStatus {
				t.Errorf("status = %d, want %d", status, tc.wantStatus)
			}
			if body.Kind != tc.wantKind {
				t.Errorf("kind = %q, want %q", body.Kind, tc.wantKind)
			}
			if body.Message == "" {
				t.Error("empty message")
			}
		})
	}
}

// TestWriteErrorRetryAfter: backpressure responses (429) and drain/cancel
// responses (503) must carry the Retry-After hint; everything else must not.
func TestWriteErrorRetryAfter(t *testing.T) {
	cases := []struct {
		err  error
		want string // Retry-After header value, "" = absent
	}{
		{ErrRejected, retryAfter},
		{ErrDraining, retryAfter},
		{&sim.SimError{Kind: sim.ErrCancelled, Err: context.Canceled}, retryAfter},
		{&sim.SimError{Kind: sim.ErrConfig, Err: errors.New("bad")}, ""},
		{&sim.SimError{Kind: sim.ErrTimeout, Err: context.DeadlineExceeded}, ""},
		{&sim.SimError{Kind: sim.ErrVerify, Err: errors.New("diverged")}, ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeError(rec, tc.err)
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("%v: Retry-After = %q, want %q", tc.err, got, tc.want)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%v: Content-Type = %q", tc.err, ct)
		}
	}
}

func TestTimeoutOfClamping(t *testing.T) {
	const (
		def = 2 * time.Minute
		max = 10 * time.Minute
	)
	cases := []struct {
		ms   int64
		want time.Duration
	}{
		{0, def},                             // unset → default
		{-50, def},                           // negative → default
		{5_000, 5 * time.Second},             // in range → honoured
		{3_600_000, max},                     // over the cap → clamped
		{int64(max / time.Millisecond), max}, // exactly the cap
	}
	for _, tc := range cases {
		if got := timeoutOf(tc.ms, def, max); got != tc.want {
			t.Errorf("timeoutOf(%d) = %v, want %v", tc.ms, got, tc.want)
		}
	}
	// Uncapped server (max 0): client values pass through, zero stays default.
	if got := timeoutOf(0, 0, 0); got != 0 {
		t.Errorf("timeoutOf(0,0,0) = %v, want 0 (deadline-free)", got)
	}
	if got := timeoutOf(1_000, def, 0); got != time.Second {
		t.Errorf("uncapped timeoutOf(1000) = %v, want 1s", got)
	}
}
