package server

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/sim"
)

// TestChaosServerContainsInjectedFaults drives the whole serving stack under
// fault injection: a fault-injected run must come back as a typed error row
// over HTTP — never a crashed daemon — and afterwards the server is still
// healthy (/healthz green, fault-free runs succeed, no leaked goroutines).
func TestChaosServerContainsInjectedFaults(t *testing.T) {
	before := runtime.NumGoroutine()

	r := experiments.NewRunner(experiments.Options{Instructions: 10_000, KeepGoing: true})
	ts := httptest.NewServer(New(r, Options{MaxInflight: 2, Metrics: r.Metrics()}).Handler())

	cfg := sim.Config{App: "511.povray", Predictor: "none", Instructions: 10_000}

	// Phase 1: panic injection — the run fails with kind "panic" over the
	// wire and HTTP 500.
	plan, err := faultinject.Parse("panic=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Activate(plan)
	var faulted errorResponse
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfg}, &faulted)
	restore()
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted run status = %d, want 500 (%+v)", status, faulted)
	}
	if faulted.Error.Kind != string(sim.ErrPanic) {
		t.Errorf("error kind = %q, want %q", faulted.Error.Kind, sim.ErrPanic)
	}

	// Phase 2: the daemon is still healthy — /healthz green and the same
	// config now succeeds (the panicked run was never cached).
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-fault /healthz = %d, want 200", resp.StatusCode)
	}
	var ok RunResult
	if status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/runs", RunRequest{Config: cfg}, &ok); status != http.StatusOK || ok.Run == nil {
		t.Errorf("fault-free rerun = %d (run=%v), want 200 with a run", status, ok.Run != nil)
	}

	// Phase 3: slowdisk injection through the server path — the run still
	// succeeds (slow disks cost latency, not correctness).
	r2 := experiments.NewRunner(experiments.Options{Instructions: 10_000, CacheDir: t.TempDir(), KeepGoing: true})
	ts2 := httptest.NewServer(New(r2, Options{MaxInflight: 2, Metrics: r2.Metrics()}).Handler())
	plan, err = faultinject.Parse("slowdisk=1,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	restore = faultinject.Activate(plan)
	var slow RunResult
	if status, _ := postJSON(t, ts2.Client(), ts2.URL+"/v1/runs", RunRequest{Config: cfg}, &slow); status != http.StatusOK || slow.Run == nil {
		t.Errorf("slowdisk run = %d (run=%v), want 200 with a run", status, slow.Run != nil)
	}
	restore()

	// Phase 4: teardown leaks nothing.
	ts.CloseClientConnections()
	ts.Close()
	r.Close()
	ts2.CloseClientConnections()
	ts2.Close()
	r2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutine leak: %d before the chaos run, %d after teardown", before, got)
	}
}
