// Multi-tenant trace ingestion: the serving surface over internal/tracestore
// that turns phastd into bring-your-own-workload as a service.
//
//   - POST /v1/traces streams an encoded trace (internal/trace wire format)
//     through validation into the content-addressed store and answers with
//     the canonical digest; the client then runs it from any fleet member
//     with Config.App = "trace:<digest>".
//   - Tenancy rides the X-Phast-Tenant header. It never enters sim.Config —
//     a run's cache key must not depend on who asked — but it does bound the
//     tenant's stored trace bytes (tracestore quota → 429), its in-flight
//     requests on this member (Options.TenantMaxInflight → 429), and its
//     share of the runner's weighted-fair worker pool (experiments.WithTenant).
//   - GET /v1/results?tenant=... pages through the tenant's persistent run
//     log (every /v1/runs and /v1/batch outcome is appended at serve time).
//   - The fleet tier: GET/PUT /v1/peer/trace/{digest} serve and accept
//     canonical trace bytes between members; an upload is replicated to the
//     digest's ring owner, and TraceFetch (the runner's TraceResolver) pulls
//     a digest this member has never seen from the ring's candidates — so a
//     trace uploaded anywhere is runnable everywhere.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/contentaddr"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// TenantHeader names the HTTP header carrying the caller's tenant identity.
// Absent means tracestore.DefaultTenant; present it must satisfy
// tracestore.ValidTenant or the request is a 400.
const TenantHeader = "X-Phast-Tenant"

// Trace-serving counters, alongside the tracestore.* set the store itself
// maintains.
const (
	// CounterTraceUploads counts accepted POST /v1/traces requests
	// (duplicates included — the client still got its digest).
	CounterTraceUploads = "server.trace.uploads"
	// CounterPeerTraceServed counts GET /v1/peer/trace hits served to other
	// members.
	CounterPeerTraceServed = "server.peer.trace.served"
	// CounterTraceReplicated counts uploads successfully pushed to the
	// digest's ring owner; CounterTraceReplErrors the pushes that failed
	// (best-effort: the upload still succeeds, TraceFetch's live-member
	// sweep makes the trace reachable regardless).
	CounterTraceReplicated  = "server.trace.replicated"
	CounterTraceReplErrors  = "server.trace.replicate.errors"
	// CounterTraceFetched counts traces pulled from a fleet peer on a local
	// store miss (the TraceFetch path).
	CounterTraceFetched = "server.trace.fetched"
)

// tenantOf extracts and validates the request's tenant identity.
func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		return tracestore.DefaultTenant, nil
	}
	if !tracestore.ValidTenant(t) {
		return "", fmt.Errorf("invalid %s header %q (want 1-64 chars [a-zA-Z0-9._-], starting alphanumeric)", TenantHeader, t)
	}
	return t, nil
}

// tenantAdmit charges one in-flight request against tenant's cap, returning
// the release func, or ErrTenantBusy when the tenant is already at
// Options.TenantMaxInflight on this member. Unlimited (and free) when the
// cap is unset.
func (s *Server) tenantAdmit(tenant string) (func(), error) {
	if s.opt.TenantMaxInflight <= 0 {
		return func() {}, nil
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if s.tinflight[tenant] >= s.opt.TenantMaxInflight {
		s.metrics.Add(stats.TenantCounter(tenant, "rejected"), 1)
		return nil, fmt.Errorf("%w: %d in flight on this member (cap %d)",
			ErrTenantBusy, s.tinflight[tenant], s.opt.TenantMaxInflight)
	}
	s.tinflight[tenant]++
	return func() {
		s.tmu.Lock()
		if s.tinflight[tenant]--; s.tinflight[tenant] <= 0 {
			delete(s.tinflight, tenant)
		}
		s.tmu.Unlock()
	}, nil
}

// handleTraceUpload serves POST /v1/traces: stream → validate → store →
// digest. The store enforces the per-trace byte cap (413) and the tenant's
// stored-bytes quota (429); a malformed stream is a 400 with nothing
// written. A fresh upload is then replicated, best-effort, to the digest's
// ring owner so the common fetch path finds it in one hop.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	if s.Draining() {
		s.refuse(w)
		return
	}
	if s.store == nil {
		writeError(w, fmt.Errorf("%w: this member has no trace store", tracestore.ErrNotFound))
		return
	}
	tenant, terr := tenantOf(r)
	if terr != nil {
		writeJSON(w, http.StatusBadRequest, errorResponseBody(ErrorBody{
			Kind: KindBadRequest, Message: terr.Error()}))
		return
	}
	res, err := s.store.Put(tenant, r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.Add(CounterTraceUploads, 1)
	s.metrics.Add(stats.TenantCounter(tenant, "uploads"), 1)
	if !res.Dup {
		s.replicateTrace(r.Context(), res.Digest)
	}
	writeJSON(w, http.StatusOK, TraceUploadResponse{
		Digest: res.Digest, Bytes: res.Bytes, Insts: res.Insts, Dup: res.Dup,
	})
}

// handleTraceGet serves GET /v1/traces/{digest}: the canonical bytes of a
// stored trace. Mostly a debugging/verification surface (the smoke test
// checks a replicated trace byte-for-byte); runs reference the digest via
// Config.App and never need to download it.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	digest := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	s.serveTraceBytes(w, digest, "")
}

// handlePeerTrace serves the fleet's internal trace exchange:
// GET /v1/peer/trace/{digest} returns this member's canonical bytes (404 on
// a miss — the fetcher tries its next candidate), PUT accepts canonical
// bytes pushed by the member that ingested the upload. The digest is
// validated to the exact 64-hex shape before anything touches the
// filesystem, same contract as the peer cache endpoint; a PUT body is
// re-hashed and re-decoded by the store, so a corrupt or lying push is
// rejected, never stored.
func (s *Server) handlePeerTrace(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, "/v1/peer/trace/")
	switch r.Method {
	case http.MethodGet:
		s.serveTraceBytes(w, digest, CounterPeerTraceServed)
	case http.MethodPut:
		if !contentaddr.Valid(digest) {
			writeJSON(w, http.StatusBadRequest, errorResponseBody(ErrorBody{
				Kind: KindBadRequest, Message: "malformed trace digest (want 64 lowercase hex digits)"}))
			return
		}
		if s.store == nil {
			writeError(w, fmt.Errorf("%w: this member has no trace store", tracestore.ErrNotFound))
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.store.MaxTraceBytes()+1))
		if err != nil {
			writeError(w, fmt.Errorf("%w: replica push body over the per-trace cap", tracestore.ErrTooLarge))
			return
		}
		if err := s.store.PutCanonical(digest, data); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		methodNotAllowed(w, "GET, PUT")
	}
}

// serveTraceBytes is the shared read side of both trace-download endpoints;
// a non-empty hitCounter is bumped on each hit served.
func (s *Server) serveTraceBytes(w http.ResponseWriter, digest, hitCounter string) {
	if !contentaddr.Valid(digest) {
		writeJSON(w, http.StatusBadRequest, errorResponseBody(ErrorBody{
			Kind: KindBadRequest, Message: "malformed trace digest (want 64 lowercase hex digits)"}))
		return
	}
	if s.store == nil {
		writeError(w, fmt.Errorf("%w: this member has no trace store", tracestore.ErrNotFound))
		return
	}
	data, err := s.store.Get(digest)
	if err != nil {
		writeError(w, err)
		return
	}
	if hitCounter != "" {
		s.metrics.Add(hitCounter, 1)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleResults serves GET /v1/results?tenant=&after=&limit=: one page of
// the tenant's persistent run log. The tenant may come from the query or the
// X-Phast-Tenant header (query wins); pagination is by sequence cursor —
// pass the response's next back as after.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	if s.results == nil {
		writeError(w, fmt.Errorf("%w: this member keeps no results log", tracestore.ErrNotFound))
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		var terr error
		if tenant, terr = tenantOf(r); terr != nil {
			writeJSON(w, http.StatusBadRequest, errorResponseBody(ErrorBody{
				Kind: KindBadRequest, Message: terr.Error()}))
			return
		}
	}
	after, limit := int64(0), 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponseBody(ErrorBody{
				Kind: KindBadRequest, Message: "after must be a non-negative integer"}))
			return
		}
		after = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponseBody(ErrorBody{
				Kind: KindBadRequest, Message: "limit must be a non-negative integer"}))
			return
		}
		limit = n
	}
	entries, err := s.results.List(tenant, after, limit)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponseBody(ErrorBody{
			Kind: KindBadRequest, Message: err.Error()}))
		return
	}
	resp := ResultsResponse{Tenant: tenant, Results: entries}
	if len(entries) > 0 {
		resp.Next = entries[len(entries)-1].Seq
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordResult appends one externally-requested run outcome to the tenant's
// persistent log. Capacity rejections (429/503: the run never started) are
// not outcomes and are skipped — a throttled tenant must not fill its own
// log with rejection rows. Best-effort: a full disk must not fail the run
// that already succeeded.
func (s *Server) recordResult(tenant string, row RunResult) {
	if s.results == nil {
		return
	}
	if row.Error != nil {
		switch row.Error.Kind {
		case KindRejected, KindDraining, KindQuotaExceeded:
			return
		}
	}
	if _, err := s.results.Append(tenant, row); err == nil {
		s.metrics.Add(stats.TenantCounter(tenant, "results"), 1)
	}
}

// replicateTrace pushes a freshly ingested trace to its digest's ring owner
// so the common TraceFetch path (ring candidates first) finds it in one hop.
// Best-effort and synchronous: a failed push only costs a counter — the
// fetch path's live-member sweep still reaches the copy this member holds.
func (s *Server) replicateTrace(ctx context.Context, digest string) {
	if s.fleet == nil || s.peers == nil {
		return
	}
	owner := s.fleet.Owner(digest)
	if owner == s.fleet.Self() {
		return
	}
	data, err := s.store.Get(digest)
	if err != nil {
		return // raced with eviction/corruption: the fetch path re-derives
	}
	ctx, cancel := context.WithTimeout(ctx, 2*s.opt.PeerFetchTimeout)
	defer cancel()
	if err := s.peers.pushTrace(ctx, owner, digest, data); err != nil {
		s.metrics.Add(CounterTraceReplErrors, 1)
		return
	}
	s.metrics.Add(CounterTraceReplicated, 1)
}

// TraceFetch is the runner's TraceResolver (experiments.Options), consulted
// on a full cache miss for a "trace:<digest>" config whose stream is not in
// the process: local store first, then the fleet — the digest's ring
// candidates (where an upload replicates to), then every other live member
// (uploads whose replication push failed live only on their ingest node).
// A fetched trace is promoted into the local store via PutCanonical (which
// re-hashes and re-decodes — a lying peer cannot poison the store) so the
// next miss is local. Wire it at startup:
//
//	srv := server.New(runner, server.Options{TraceStore: store, ...})
//	runner.SetTraceResolver(srv.TraceFetch)
func (s *Server) TraceFetch(ctx context.Context, digest string) (*trace.Trace, error) {
	if s.store == nil {
		return nil, fmt.Errorf("server: no trace store: %w", sim.ErrTraceUnavailable)
	}
	tr, err := s.store.Trace(digest)
	if err == nil {
		return tr, nil
	}
	if !errors.Is(err, tracestore.ErrNotFound) {
		return nil, err
	}
	if s.peers == nil {
		return nil, fmt.Errorf("server: trace %s not in the local store: %w", digest, sim.ErrTraceUnavailable)
	}
	for _, from := range s.traceCandidates(digest) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		data, ok, ferr := s.peers.fetchTrace(ctx, from, digest)
		if ferr != nil || !ok {
			continue
		}
		if err := s.store.PutCanonical(digest, data); err != nil {
			continue // corrupt/lying peer: try the next one
		}
		s.metrics.Add(CounterTraceFetched, 1)
		return s.store.Trace(digest)
	}
	return nil, fmt.Errorf("server: trace %s not found on any live member: %w", digest, sim.ErrTraceUnavailable)
}

// traceCandidates orders the members worth asking for digest: the ring
// candidates first (the replication target and its successor), then the
// remaining live members, self excluded, breaker-refused members skipped.
func (s *Server) traceCandidates(digest string) []string {
	seen := map[string]bool{s.fleet.Self(): true}
	var out []string
	add := func(members []string) {
		for _, m := range members {
			if !seen[m] && s.brk.allow(m) {
				out = append(out, m)
			}
			seen[m] = true
		}
	}
	add(s.fleet.FetchCandidates(digest, peerFetchCandidates))
	add(s.fleet.LiveMembers())
	return out
}

// fetchTrace asks one member for its canonical bytes under digest. Returns
// (data, true, nil) on a hit, (nil, false, nil) on a clean 404 miss, an
// error otherwise. The caller verifies the bytes via PutCanonical.
func (p *peerClient) fetchTrace(ctx context.Context, from, digest string) ([]byte, bool, error) {
	if err := linkFault(ctx, from, digest); err != nil {
		return nil, false, err
	}
	ctx, cancel := context.WithTimeout(ctx, 2*p.s.opt.PeerFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		from+"/v1/peer/trace/"+digest, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		max := p.s.store.MaxTraceBytes()
		data, err := io.ReadAll(io.LimitReader(resp.Body, max+1))
		if err != nil {
			return nil, false, fmt.Errorf("server: read trace %s from %s: %w", digest, from, err)
		}
		if int64(len(data)) > max {
			return nil, false, fmt.Errorf("server: peer %s served trace %s over the per-trace cap", from, digest)
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("server: peer %s trace fetch: %s", from, resp.Status)
	}
}

// pushTrace PUTs canonical trace bytes to another member (the replication
// hop after an upload).
func (p *peerClient) pushTrace(ctx context.Context, to, digest string, data []byte) error {
	if err := linkFault(ctx, to, digest); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		to+"/v1/peer/trace/"+digest, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.http.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: peer %s refused trace replica: %s", to, resp.Status)
	}
	return nil
}

// errorResponseBody wraps an ErrorBody in the {"error": ...} envelope every
// error response uses.
func errorResponseBody(b ErrorBody) any {
	return struct {
		Error ErrorBody `json:"error"`
	}{b}
}
