// Retry and circuit-breaking policy for the fleet's peer hops. Every peer
// interaction is idempotent by construction — proxied runs coalesce on the
// owner's single-flight map and cache fetches are GETs — so retrying is
// always safe; what this file adds is the discipline around it:
//
//   - backoff with deterministic jitter (a pure hash of key and attempt, so
//     chaos runs replay identically) that is *budget-aware*: the remaining
//     request deadline is re-checked before every sleep and every attempt,
//     and an exhausted budget surfaces as a typed timeout (HTTP 504), never
//     as a generic 500 or a silent nil result;
//   - per-peer circuit breakers: enough consecutive transport failures open
//     the breaker and further hops to that peer fail fast (degrading to
//     local execution immediately instead of re-paying connect timeouts);
//     the breaker half-opens after a cooldown or on the failure detector's
//     probe success, and one successful trial closes it.
package server

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/stats"
)

// Resilience counters, published next to the proxy/peer set in /metrics.
const (
	// CounterRetries counts re-attempts of peer operations beyond the first.
	CounterRetries = "server.retry.attempts"
	// CounterBreakerOpened counts per-peer circuit-breaker open events.
	CounterBreakerOpened = "server.breaker.opened"
	// CounterBreakerShortCircuit counts peer operations refused fail-fast by
	// an open breaker (each degrades to local execution or the next
	// candidate without touching the network).
	CounterBreakerShortCircuit = "server.breaker.shortcircuit"
	// CounterHedgeFired counts hedged peer cache fetches (second candidate
	// raced after the hedge delay).
	CounterHedgeFired = "server.hedge.fired"
	// CounterHedgeWins counts hedged fetches where the hedge (not the
	// primary) supplied the result.
	CounterHedgeWins = "server.hedge.wins"
)

// errBudget marks a peer operation abandoned because the request's
// remaining deadline budget ran out mid-retry. Mapped to a typed
// sim.ErrTimeout (HTTP 504) by the caller — never a generic 500, and never
// a local-execution fallback (there is no budget left to execute with).
var errBudget = errors.New("server: peer retry budget exhausted")

// errBreakerOpen marks a peer operation refused fail-fast by an open
// circuit breaker. Transport-class: the peer never saw the request, so
// proxy callers degrade to local execution.
var errBreakerOpen = errors.New("server: peer circuit breaker open")

// retryPolicy is the backoff schedule for peer hops.
type retryPolicy struct {
	attempts int           // total attempts (1 = no retry)
	base     time.Duration // first backoff; doubles per retry
	max      time.Duration // backoff cap
}

func (rp retryPolicy) norm() retryPolicy {
	if rp.attempts <= 0 {
		rp.attempts = 3
	}
	if rp.base <= 0 {
		rp.base = 50 * time.Millisecond
	}
	if rp.max <= 0 {
		rp.max = time.Second
	}
	return rp
}

// backoff returns the sleep before attempt (1-based retry index):
// exponential growth with deterministic jitter in [½d, d), derived from
// (key, attempt) so a replayed chaos run backs off identically.
func (rp retryPolicy) backoff(key string, attempt int) time.Duration {
	d := rp.base << (attempt - 1)
	if d > rp.max || d <= 0 {
		d = rp.max
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(attempt)})
	frac := float64(h.Sum64()>>11) / float64(uint64(1)<<53) // [0,1)
	return d/2 + time.Duration(frac*float64(d/2))
}

// sleepBudget sleeps d unless the context ends first or the remaining
// deadline budget cannot cover the sleep plus one more meaningful attempt.
// Returns nil when the retry may proceed.
func sleepBudget(ctx context.Context, d time.Duration) error {
	if dl, ok := ctx.Deadline(); ok {
		// Subtract the elapsed time already spent: what is left must cover
		// the backoff and leave room for the attempt itself.
		if time.Until(dl) <= d {
			return errBudget
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return errBudget
	}
}

// Breaker states.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is one peer's circuit breaker. Failures here are transport-level
// only — a peer that answers HTTP (even with an error status) is a healthy
// link.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	openFor   time.Duration // cooldown before half-opening on its own

	mu     sync.Mutex
	state  string
	fails  int
	reopen time.Time // when an open breaker self-half-opens
}

func newBreaker(threshold int, openFor time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if openFor <= 0 {
		openFor = 2 * time.Second
	}
	return &breaker{threshold: threshold, openFor: openFor, state: breakerClosed}
}

// allow reports whether a peer operation may proceed. Closed always allows;
// open allows nothing until the cooldown elapses, at which point the
// breaker half-opens and admits exactly one trial; half-open admits the one
// trial whose outcome decides the next state.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().After(b.reopen) {
			b.state = breakerHalfOpen
			return true // the trial request
		}
		return false
	default: // half-open: trial already in flight
		return false
	}
}

// success records a completed peer interaction (any HTTP response counts —
// the link works). Closes the breaker from any state.
func (b *breaker) success() {
	b.mu.Lock()
	b.state, b.fails = breakerClosed, 0
	b.mu.Unlock()
}

// failure records a transport-level failure; returns true when this one
// opened the circuit (for the opened counter).
func (b *breaker) failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.state = breakerOpen
		b.reopen = time.Now().Add(b.openFor)
		return true
	}
	return false
}

// probeRecovered half-opens an open breaker immediately — the failure
// detector saw a successful health probe, so the next real request is worth
// trying without waiting out the cooldown.
func (b *breaker) probeRecovered() {
	b.mu.Lock()
	if b.state == breakerOpen {
		b.state = breakerHalfOpen
	}
	b.mu.Unlock()
}

// current returns the state name for /v1/cluster.
func (b *breaker) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakers is the per-peer breaker registry.
type breakers struct {
	threshold int
	openFor   time.Duration
	metrics   *stats.Metrics

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakers(threshold int, openFor time.Duration, m *stats.Metrics) *breakers {
	return &breakers{threshold: threshold, openFor: openFor, metrics: m, m: map[string]*breaker{}}
}

func (bs *breakers) of(peer string) *breaker {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b, ok := bs.m[peer]
	if !ok {
		b = newBreaker(bs.threshold, bs.openFor)
		bs.m[peer] = b
	}
	return b
}

// allow is breaker.allow plus short-circuit accounting.
func (bs *breakers) allow(peer string) bool {
	if bs.of(peer).allow() {
		return true
	}
	bs.metrics.Add(CounterBreakerShortCircuit, 1)
	return false
}

// failure is breaker.failure plus open accounting.
func (bs *breakers) failure(peer string) {
	if bs.of(peer).failure() {
		bs.metrics.Add(CounterBreakerOpened, 1)
	}
}

func (bs *breakers) success(peer string)        { bs.of(peer).success() }
func (bs *breakers) probeRecovered(peer string) { bs.of(peer).probeRecovered() }
func (bs *breakers) state(peer string) string   { return bs.of(peer).current() }
