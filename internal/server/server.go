// Package server is the serving layer of the simulation stack: an HTTP/JSON
// facade (cmd/phastd) over experiments.Runner that turns the in-process
// figure-regeneration engine into a shared simulation-as-a-service backend.
// The library layers (runcache, scheduler, failure containment) carry over
// unchanged; what this package adds are the serving mechanics a networked
// daemon needs and a library does not:
//
//   - admission control: a fixed running set plus a bounded queue, with
//     explicit 429/Retry-After backpressure instead of unbounded goroutines
//     (see admission.go);
//   - request coalescing: identical in-flight configs share one execution,
//     keyed exactly like the run cache (runcache.Key), so a duplicate-heavy
//     client mix costs one simulation per unique config;
//   - per-request deadlines propagated into the context plumbing end-to-end
//     (HTTP timeout_ms → runner → pipeline cycle loop);
//   - graceful drain: health flips unhealthy, new work is refused, in-flight
//     runs finish (or are cancelled after the grace period via Abort).
//
// With Options.Fleet set the server is additionally one member of a
// consistent-hash phastd cluster: requests for keys owned elsewhere proxy to
// their owner, local cache misses try peer caches before simulating, and the
// internal peer surface (POST /v1/peer/run, GET /v1/peer/cache/{key}) serves
// the other members — see peer.go and internal/cluster.
//
// With Options.TraceStore set the server additionally ingests bring-your-
// own-workload traces (POST /v1/traces → run as Config.App =
// "trace:<digest>" from any member) under per-tenant quotas and a per-tenant
// in-flight cap, with run outcomes persisted per tenant — see traces.go and
// internal/tracestore. Tenant identity rides the X-Phast-Tenant header.
//
// With Options.Jobs set the server additionally exposes the design-space
// autotuner (POST /v1/jobs, GET/DELETE /v1/jobs/{id}): resumable search
// jobs over sim.Config knobs whose trials execute through the same runner,
// cache and tenant-fairness machinery — see internal/jobs.
//
// Endpoints: POST /v1/runs, POST /v1/batch, POST /v1/traces,
// GET /v1/traces/{digest}, GET /v1/results, POST|GET /v1/jobs,
// GET|DELETE /v1/jobs/{id}, POST /v1/peer/run, GET /v1/peer/cache/{key},
// GET|PUT /v1/peer/trace/{digest}, GET /v1/cluster,
// GET /healthz, GET /metrics.
// Results are the same stats.Run rows and sim.SimError taxonomy the library
// returns, serialised — a server-side run is byte-identical to an in-process
// one for the same config (the golden test and examples/predictorapi hold
// this).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracestore"
)

// Serving-layer counter and histogram names, published to the shared
// stats.Metrics registry next to the cache/simulator counters.
const (
	// CounterRequests counts every /v1/* request received.
	CounterRequests = "server.requests"
	// CounterAccepted counts requests that obtained a running slot.
	CounterAccepted = "server.accepted"
	// CounterRejected counts requests bounced with 429 (queue full).
	CounterRejected = "server.rejected"
	// CounterQueued counts requests that waited in the admission queue.
	CounterQueued = "server.queued"
	// CounterCoalesced counts requests served by piggybacking on an
	// identical in-flight request instead of executing their own run.
	CounterCoalesced = "server.coalesced"
	// CounterDrained counts requests refused because the server was
	// draining.
	CounterDrained = "server.drained"
	// GaugeInflight is the current number of held running slots.
	GaugeInflight = "server.inflight"
	// GaugeQueueDepth is the current number of queued requests.
	GaugeQueueDepth = "server.queue.depth"
	// HistLatency is the request latency histogram (seconds, /v1/* only).
	HistLatency = "server.latency.seconds"
	// HistQueueWait is the admission queue wait histogram (seconds).
	HistQueueWait = "server.queue.wait.seconds"
)

// Backend executes simulations for the server; *experiments.Runner is the
// production implementation. Tests substitute controllable fakes.
type Backend interface {
	RunConfigContext(ctx context.Context, cfg sim.Config) (*stats.Run, error)
	RunConfigsDetailedContext(ctx context.Context, cfgs []sim.Config) []experiments.Result
}

// CacheLookup is the optional backend capability behind the fleet's
// GET /v1/peer/cache/{key} endpoint: a local-tiers-only cache probe that
// never simulates. *experiments.Runner implements it; a backend without it
// simply answers every peer cache fetch with a 404 miss.
type CacheLookup interface {
	CachedRun(key string) (*stats.Run, bool)
}

// ScheduledBackend is the optional backend capability that routes single
// runs through the runner's weighted-fair worker pool on the context's
// tenant share, instead of inline on the request goroutine.
// *experiments.Runner implements it; when the backend does, the server
// prefers it for local execution so HTTP traffic from many tenants competes
// for simulation workers under the same fairness policy as batches — one
// tenant's request flood cannot monopolise the pool. A backend without it
// (test fakes) executes inline exactly as before tenancy existed.
type ScheduledBackend interface {
	RunConfigScheduledContext(ctx context.Context, cfg sim.Config) (*stats.Run, error)
}

// Options tune the serving layer. The zero value is usable: defaults are
// filled by New.
type Options struct {
	// MaxInflight bounds concurrently admitted requests (default NumCPU,
	// min 2). A batch request holds one slot while its rows fan out on the
	// runner's worker pool.
	MaxInflight int
	// QueueDepth bounds requests waiting for a slot (default 4×MaxInflight);
	// beyond it requests are rejected with 429.
	QueueDepth int
	// DefaultInstructions fills Config.Instructions when a request leaves it
	// zero — keep it equal to the runner's Options.Instructions so coalescing
	// keys match cache keys (default sim.DefaultInstructions).
	DefaultInstructions int
	// DefaultRunTimeout applies when a request carries no timeout_ms
	// (default 2m; 0 keeps requests deadline-free).
	DefaultRunTimeout time.Duration
	// MaxRunTimeout caps client-supplied timeouts (default 10m).
	MaxRunTimeout time.Duration
	// MaxBatch bounds configs per /v1/batch request (default 1024).
	MaxBatch int
	// Metrics is the registry serving /metrics — pass the runner's so cache,
	// simulator and server counters land in one place (default private).
	Metrics *stats.Metrics
	// Fleet makes this server one member of a consistent-hash phastd
	// cluster (nil = standalone). Any member accepts /v1/runs; the ring
	// owner of the config's cache key executes it, non-owners proxy over
	// /v1/peer/run, and local cache misses try the ring's other candidates
	// via GET /v1/peer/cache/{key} before simulating (wire the latter with
	// backend.SetPeerFetch(srv.PeerFetch) — see internal/cluster).
	Fleet *cluster.Fleet
	// PeerFetchTimeout bounds one peer cache-fetch attempt (default 2s):
	// a slow peer must cost strictly less than the simulation it would
	// save, or the fetch is abandoned as an error. Peer trace transfers
	// (fetch and replica push) get twice this budget — trace bytes are
	// bulkier than a cached result row.
	PeerFetchTimeout time.Duration

	// TraceStore holds uploaded workload traces, content-addressed (nil
	// disables POST /v1/traces and the trace peer tier — "trace:<digest>"
	// runs then succeed only for streams already provided in-process).
	// Share one store per daemon; see internal/tracestore.
	TraceStore *tracestore.Store
	// Results persists per-tenant run outcomes for GET /v1/results (nil
	// disables the endpoint; nothing is recorded).
	Results *tracestore.ResultLog
	// TenantMaxInflight bounds one tenant's concurrently admitted external
	// requests on this member — a run or a batch each hold one unit — with
	// 429 quota_exceeded past it. 0 = unlimited. This is the per-tenant
	// admission gate; MaxInflight/QueueDepth stay the whole-server bound.
	TenantMaxInflight int
	// Jobs enables the design-space autotuner surface (POST /v1/jobs and
	// friends); nil disables it — the endpoints answer 404. The server wires
	// the controller's per-trial observer into the Results log, so trial
	// rows land under the submitting tenant like any other run.
	Jobs *jobs.Controller

	// The remaining options apply only with Fleet set; zero values take the
	// defaults noted on each.

	// ProbeInterval is the failure detector's per-peer heartbeat period
	// (default 1s); ProbeTimeout bounds one probe (default interval/2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// ProbeDownAfter is the consecutive probe failures that mark a peer Down
	// and remap its ring segment (default 3); ProbeUpAfter the consecutive
	// successes that restore it (default 1).
	ProbeDownAfter int
	ProbeUpAfter   int
	// ProxyAttempts bounds total attempts per proxied run, first try
	// included (default 3); RetryBackoff is the first backoff, doubling per
	// retry with deterministic jitter (default 50ms).
	ProxyAttempts int
	RetryBackoff  time.Duration
	// BreakerThreshold is the consecutive transport failures that open a
	// peer's circuit breaker (default 3); BreakerOpenFor how long it stays
	// open before half-opening on its own (default 2s; a successful health
	// probe half-opens it early).
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// HedgeDelay, when positive, races the second peer-cache candidate
	// after this delay instead of waiting out the first (default 0: off).
	HedgeDelay time.Duration
}

func (o Options) norm() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = runtime.NumCPU()
		if o.MaxInflight < 2 {
			o.MaxInflight = 2
		}
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	} else if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.MaxInflight
	}
	if o.DefaultInstructions <= 0 {
		o.DefaultInstructions = sim.DefaultInstructions
	}
	if o.DefaultRunTimeout == 0 {
		o.DefaultRunTimeout = 2 * time.Minute
	}
	if o.MaxRunTimeout == 0 {
		o.MaxRunTimeout = 10 * time.Minute
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.Metrics == nil {
		o.Metrics = stats.NewMetrics()
	}
	if o.PeerFetchTimeout == 0 {
		o.PeerFetchTimeout = 2 * time.Second
	}
	return o
}

// Server is the HTTP serving layer; build with New, expose via Handler.
type Server struct {
	opt     Options
	backend Backend
	metrics *stats.Metrics
	latency *stats.Histogram
	adm     *admitter
	fleet   *cluster.Fleet  // nil = standalone
	peers   *peerClient     // nil = standalone
	brk     *breakers       // nil = standalone
	prober  *cluster.Prober // nil = standalone
	lookup  CacheLookup     // nil when the backend has no local cache probe
	sched   ScheduledBackend // nil when the backend has no fair worker pool

	store   *tracestore.Store     // nil = no trace ingestion
	results *tracestore.ResultLog // nil = no persistent results
	jobs    *jobs.Controller      // nil = no autotuner surface

	// tinflight counts each tenant's in-flight external requests for the
	// TenantMaxInflight admission gate.
	tmu       sync.Mutex
	tinflight map[string]int

	// flights is the server-level single-flight map, keyed exactly like the
	// run cache (runcache.Key) so "identical request" and "same cache entry"
	// are one notion. Joins bump server.coalesced at join time, making
	// coalescing observable while the flight is still running.
	fmu     sync.Mutex
	flights map[string]*flight

	draining   atomic.Bool
	hardCtx    context.Context // cancelled by Abort: hard-stops in-flight runs
	hardCancel context.CancelFunc
}

// New builds a server over backend. Pass the runner's metrics registry in
// opt.Metrics to get one unified /metrics view.
func New(backend Backend, opt Options) *Server {
	opt = opt.norm()
	s := &Server{
		opt:       opt,
		backend:   backend,
		metrics:   opt.Metrics,
		latency:   opt.Metrics.Histogram(HistLatency, stats.DefaultLatencyBuckets),
		adm:       newAdmitter(opt.Metrics, opt.MaxInflight, opt.QueueDepth),
		flights:   map[string]*flight{},
		store:     opt.TraceStore,
		results:   opt.Results,
		tinflight: map[string]int{},
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.lookup, _ = backend.(CacheLookup)
	s.sched, _ = backend.(ScheduledBackend)
	if opt.Jobs != nil {
		s.wireJobs(opt.Jobs)
	}
	if s.store != nil {
		s.store.SetMetrics(opt.Metrics)
	}
	// Touch the headline counters so /metrics shows explicit zeros from the
	// first scrape (same contract as the runner's cache counters).
	zeros := []string{CounterRequests, CounterAccepted, CounterRejected, CounterCoalesced}
	if opt.Fleet != nil {
		s.fleet = opt.Fleet
		s.brk = newBreakers(opt.BreakerThreshold, opt.BreakerOpenFor, opt.Metrics)
		s.peers = newPeerClient(s)
		// The failure detector drives the fleet's live ring; a recovered
		// probe also half-opens the member's breaker so the next real
		// request is the trial. Built here, started by StartHealth (tests
		// that never start it keep the full ring live).
		s.prober = cluster.NewProber(opt.Fleet, cluster.ProberOptions{
			Interval:  opt.ProbeInterval,
			Timeout:   opt.ProbeTimeout,
			DownAfter: opt.ProbeDownAfter,
			UpAfter:   opt.ProbeUpAfter,
			Metrics:   opt.Metrics,
			Probe:     s.probePeer,
			OnTransition: func(member string, from, to cluster.State) {
				if to == cluster.StateUp {
					s.brk.probeRecovered(member)
				}
			},
		})
		zeros = append(zeros, CounterProxied, CounterProxyErrors,
			CounterRetries, CounterBreakerOpened, CounterBreakerShortCircuit,
			CounterHedgeFired, CounterHedgeWins,
			runcache.CounterPeerHits, runcache.CounterPeerMisses, runcache.CounterPeerErrors)
	}
	if s.store != nil {
		zeros = append(zeros, CounterTraceUploads)
		if s.fleet != nil {
			zeros = append(zeros, CounterTraceFetched, CounterTraceReplicated,
				CounterTraceReplErrors, CounterPeerTraceServed)
		}
	}
	for _, c := range zeros {
		opt.Metrics.Add(c, 0)
	}
	return s
}

// Metrics returns the registry the server reports to.
func (s *Server) Metrics() *stats.Metrics { return s.metrics }

// Handler returns the server's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/runs", s.instrumented(s.handleRuns))
	mux.HandleFunc("/v1/batch", s.instrumented(s.handleBatch))
	mux.HandleFunc("/v1/traces", s.instrumented(s.handleTraceUpload))
	mux.HandleFunc("/v1/traces/", s.instrumented(s.handleTraceGet))
	mux.HandleFunc("/v1/results", s.instrumented(s.handleResults))
	mux.HandleFunc("/v1/jobs", s.instrumented(s.handleJobs))
	mux.HandleFunc("/v1/jobs/", s.instrumented(s.handleJob))
	mux.HandleFunc("/v1/peer/run", s.instrumented(s.handlePeerRun))
	mux.HandleFunc("/v1/peer/cache/", s.handlePeerCache)
	mux.HandleFunc("/v1/peer/trace/", s.handlePeerTrace)
	mux.HandleFunc("/v1/cluster", s.handleCluster)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// probePeer is the failure detector's health check: the stock GET /healthz
// behind the same injected link faults real peer traffic sees — a
// partitioned link must look down to the detector too, or chaos plans
// could never drive remapping.
func (s *Server) probePeer(ctx context.Context, member string) error {
	if err := linkFault(ctx, member, ""); err != nil {
		return err
	}
	return cluster.HTTPHealthz(ctx, member)
}

// StartHealth launches the fleet failure detector: one background probe
// loop per peer, running until ctx is cancelled. No-op standalone. Without
// it (unit tests, single-node smoke) the live ring stays the full ring.
func (s *Server) StartHealth(ctx context.Context) {
	if s.prober != nil {
		s.prober.Start(ctx)
	}
}

// handleCluster serves GET /v1/cluster: this member's view of fleet health
// — per-peer failure-detector state, live-ring membership, and circuit
// breakers. Standalone servers answer 404: there is no cluster to report.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	if s.fleet == nil {
		writeJSON(w, http.StatusNotFound, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindNotFound, Message: "not a fleet member"}})
		return
	}
	live := map[string]bool{}
	for _, m := range s.fleet.LiveMembers() {
		live[m] = true
	}
	selfState := "up"
	if s.Draining() {
		selfState = "draining"
	}
	members := []ClusterMember{{
		URL: s.fleet.Self(), Self: true, State: selfState, Live: live[s.fleet.Self()],
	}}
	for _, ph := range s.prober.States() {
		members = append(members, ClusterMember{
			URL:              ph.Member,
			State:            ph.State.String(),
			Live:             live[ph.Member],
			Breaker:          s.brk.state(ph.Member),
			ConsecutiveFails: ph.ConsecutiveFails,
			LastError:        ph.LastError,
		})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].URL < members[j].URL })
	writeJSON(w, http.StatusOK, ClusterResponse{
		Self:        s.fleet.Self(),
		FleetSize:   s.fleet.Size(),
		LiveMembers: s.fleet.LiveSize(),
		Members:     members,
	})
}

// StartDrain begins graceful shutdown: /healthz flips to 503 (so load
// balancers stop routing here) and new run submissions are refused, while
// already-admitted requests keep running. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Abort hard-cancels every in-flight run (typed sim.ErrCancelled rows flow
// back to their clients). The escape hatch when the drain grace period
// expires; StartDrain first for a graceful exit.
func (s *Server) Abort() {
	s.StartDrain()
	s.hardCancel()
}

// instrumented wraps a /v1 handler with the request counter and the latency
// histogram.
func (s *Server) instrumented(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Add(CounterRequests, 1)
		start := time.Now()
		h(w, r)
		s.latency.ObserveDuration(time.Since(start))
	}
}

// requestContext derives one request's run context: the HTTP request context
// (client disconnect), the drain hard-stop, and the per-request deadline.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.hardCtx, cancel)
	if d := timeoutOf(timeoutMS, s.opt.DefaultRunTimeout, s.opt.MaxRunTimeout); d > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, d)
		inner := cancel
		cancel = func() { cancelT(); inner() }
	}
	outer := cancel
	return ctx, func() { stop(); outer() }
}

// decode parses a JSON request body of at most limit bytes.
func decode(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// normalize fills a request config's defaults the way the runner would, so
// coalescing keys, cache keys and result rows all see the same resolved
// config.
func (s *Server) normalize(cfg sim.Config) sim.Config {
	if cfg.Instructions == 0 {
		cfg.Instructions = s.opt.DefaultInstructions
	}
	return cfg.Normalized()
}

// flight is one in-flight run shared by every request for its key.
type flight struct {
	done chan struct{} // closed when run/err are final
	run  *stats.Run
	err  error
}

// runOne executes one config through coalescing → routing → admission →
// backend. Identical in-flight configs share one execution: the first
// request leads (and pays admission), duplicates wait for its result without
// consuming slots — the single-flight keying is the run cache's, so
// "identical" means "would hit the same cache entry". A waiter whose own
// deadline expires unblocks with its context error while the flight
// continues for the others; if the leader fails (including an admission
// rejection), every waiter receives the leader's error.
//
// In a fleet, a leader whose key belongs to another member proxies the run
// to that owner instead of admitting it locally (local=false); the owner's
// own flights map then coalesces duplicates arriving from every member, so
// a viral config executes once per fleet. local=true (the /v1/peer/run
// path, or a proxy fallback) always executes here. The proxying node holds
// no admission slot while it waits — it is parked on network I/O; the
// owner's admission control is the fleet's simulation bound for that key.
func (s *Server) runOne(ctx context.Context, cfg sim.Config, local bool) (*stats.Run, error) {
	key := runcache.Key(cfg)
	s.fmu.Lock()
	if f, ok := s.flights[key]; ok {
		s.fmu.Unlock()
		s.metrics.Add(CounterCoalesced, 1)
		select {
		case <-f.done:
			return f.run, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.fmu.Unlock()

	// The flight must resolve even if the backend panics past its own
	// recovery (the panic then propagates on this request's goroutine, where
	// net/http contains it; waiters get a typed error, not a hang).
	finished := false
	defer func() {
		if !finished {
			f.run, f.err = nil, &sim.SimError{Kind: sim.ErrInternal, Config: cfg,
				Err: errors.New("server: in-flight run panicked")}
		}
		s.fmu.Lock()
		delete(s.flights, key)
		s.fmu.Unlock()
		close(f.done)
	}()
	if !local && s.fleet != nil {
		if owner := s.fleet.Owner(key); owner != s.fleet.Self() {
			s.metrics.Add(CounterProxied, 1)
			run, err := s.peers.proxyRun(ctx, owner, key, cfg)
			if err == nil || !proxyFallback(ctx, err) {
				f.run, f.err = run, err
				finished = true
				return f.run, f.err
			}
			// The owner is unreachable (or draining): degrade to executing
			// locally rather than failing the request. Fleet-wide dedup
			// degrades with it, but the cache's peer tier still recovers
			// anything the fleet has already simulated.
			s.metrics.Add(CounterProxyErrors, 1)
		}
	}
	release, aerr := s.adm.admit(ctx)
	if aerr != nil {
		f.run, f.err = nil, aerr
		finished = true
		return nil, aerr
	}
	defer release()
	f.run, f.err = s.execute(ctx, cfg)
	finished = true
	return f.run, f.err
}

// execute runs one admitted config on the backend, through the runner's
// weighted-fair worker pool (on ctx's tenant share) when the backend has
// one, inline otherwise.
func (s *Server) execute(ctx context.Context, cfg sim.Config) (*stats.Run, error) {
	if s.sched != nil {
		return s.sched.RunConfigScheduledContext(ctx, cfg)
	}
	return s.backend.RunConfigContext(ctx, cfg)
}

// refuse reports (and counts) a drain-time refusal.
func (s *Server) refuse(w http.ResponseWriter) {
	s.metrics.Add(CounterDrained, 1)
	writeError(w, ErrDraining)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.handleRun(w, r, false)
}

// handleRun serves one run request; local=true (the /v1/peer/run surface)
// pins execution to this member regardless of ring ownership.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, local bool) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	if s.Draining() {
		s.refuse(w)
		return
	}
	tenant, terr := tenantOf(r)
	if terr != nil {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest, Message: terr.Error()}})
		return
	}
	var req RunRequest
	if err := decode(w, r, 1<<20, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest, Message: "bad run request: " + err.Error()}})
		return
	}
	// The per-tenant gate applies at the external edge only: a proxied run
	// was already charged on the member that accepted it.
	if !local {
		trelease, err := s.tenantAdmit(tenant)
		if err != nil {
			writeError(w, err)
			return
		}
		defer trelease()
	}
	cfg := s.normalize(req.Config)
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	ctx = experiments.WithTenant(ctx, tenant)
	run, err := s.runOne(ctx, cfg, local)
	row := RunResult{Config: cfg, Run: run}
	if err != nil {
		_, body := errorBody(err)
		row.Error = &body
		if !local {
			s.recordResult(tenant, row)
		}
		writeError(w, err)
		return
	}
	if !local {
		s.recordResult(tenant, row)
	}
	writeJSON(w, http.StatusOK, row)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	if s.Draining() {
		s.refuse(w)
		return
	}
	tenant, terr := tenantOf(r)
	if terr != nil {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest, Message: terr.Error()}})
		return
	}
	var req BatchRequest
	if err := decode(w, r, 64<<20, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest, Message: "bad batch request: " + err.Error()}})
		return
	}
	if len(req.Configs) == 0 || len(req.Configs) > s.opt.MaxBatch {
		writeJSON(w, http.StatusBadRequest, struct {
			Error ErrorBody `json:"error"`
		}{ErrorBody{Kind: KindBadRequest,
			Message: fmt.Sprintf("batch size %d out of range [1, %d]", len(req.Configs), s.opt.MaxBatch)}})
		return
	}
	cfgs := make([]sim.Config, len(req.Configs))
	for i, cfg := range req.Configs {
		cfgs[i] = s.normalize(cfg)
	}
	// One tenant-gate unit and one admission slot per batch request;
	// row-level parallelism is bounded by the runner's shared worker pool
	// (on this tenant's weighted-fair share), and row-level dedup by the run
	// cache's own single-flight layer.
	trelease, err := s.tenantAdmit(tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	defer trelease()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	ctx = experiments.WithTenant(ctx, tenant)
	release, err := s.adm.admit(ctx)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	results := s.backend.RunConfigsDetailedContext(ctx, cfgs)
	resp := BatchResponse{Results: make([]RunResult, len(results))}
	for i, res := range results {
		row := RunResult{Config: res.Config, Run: res.Run}
		if res.Err != nil {
			_, body := errorBody(res.Err)
			row.Error = &body
		}
		resp.Results[i] = row
		s.recordResult(tenant, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", retryAfter)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sim.PublishMetrics(s.metrics) // fold in the process-wide sim counters
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, MetricsResponse{
			Counters:   s.metrics.Snapshot(),
			Histograms: s.metrics.Histograms(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.metrics.String())
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeJSON(w, http.StatusMethodNotAllowed, struct {
		Error ErrorBody `json:"error"`
	}{ErrorBody{Kind: KindBadRequest, Message: "use " + allow}})
}

// writeError maps a failed run onto its status + body; 429/503 carry a
// Retry-After hint.
func writeError(w http.ResponseWriter, err error) {
	status, body := errorBody(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfter)
	}
	writeJSON(w, status, struct {
		Error ErrorBody `json:"error"`
	}{body})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(v); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		// The status line is gone; nothing useful left to send.
		return
	}
}
