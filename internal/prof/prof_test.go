package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), ""); err == nil {
		t.Error("unwritable cpu profile path must error")
	}
}
