// Package prof wires the standard pprof CPU and heap profiles behind the
// -cpuprofile/-memprofile flags shared by the cmd binaries.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. cpuPath/memPath empty skip that
// profile. The returned stop function flushes and closes whatever was
// started; it must run exactly once (defer it) and reports the first
// error encountered.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
			} else {
				runtime.GC() // up-to-date allocation statistics
				if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
					first = err
				}
				if err := f.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		return first
	}, nil
}
