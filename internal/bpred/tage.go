package bpred

// TAGE (Seznec, MICRO 2011): a bimodal base predictor plus several partially
// tagged tables indexed with geometrically increasing global history
// lengths. The longest-history tag match provides the prediction; entries
// carry a usefulness counter that steers allocation and is periodically
// degraded.

// TAGEConfig sizes a TAGE predictor.
type TAGEConfig struct {
	BaseBits    int   // log2 entries of the bimodal base
	TableBits   int   // log2 entries of each tagged table
	TagBits     int   // partial tag width
	Histories   []int // geometric history lengths, shortest first
	UResetEvery int   // branches between usefulness column clears
}

// DefaultTAGEConfig returns an 8-component TAGE with histories 4..130.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:    13,
		TableBits:   10,
		TagBits:     11,
		Histories:   []int{4, 6, 10, 16, 25, 40, 80, 130},
		UResetEvery: 512 << 10,
	}
}

type tageEntry struct {
	tag   uint32
	ctr   int8 // signed 3-bit counter, taken if >= 0
	u     uint8
	valid bool
}

// bitFold is an incrementally maintained fold of the last length history
// bits into width bits (the hardware circular-shift-register construction;
// recomputing folds per lookup dominated the simulator profile).
type bitFold struct {
	length, width int
	val           uint64
}

func (f *bitFold) push(newBit, leavingBit bool) {
	if f.length == 0 || f.width == 0 {
		return
	}
	v := f.val
	if leavingBit {
		k := (f.length - 1) % f.width
		v ^= 1 << k
	}
	// Rotate left by one within width.
	v = ((v << 1) | (v >> (f.width - 1))) & (1<<f.width - 1)
	if newBit {
		v ^= 1
	}
	f.val = v
}

// TAGE is a tagged-geometric direction predictor.
type TAGE struct {
	cfg    TAGEConfig
	base   []ctr2
	tables [][]tageEntry
	// Global history as a bit ring (we keep more than the longest length).
	hist    []bool
	histPos int
	// Per-component incremental folds: index, tag, and the tag's second
	// (width-1) fold.
	foldIdx  []bitFold
	foldTag  []bitFold
	foldTag2 []bitFold
	updates  uint64
	rng      uint64
}

// NewTAGE builds a TAGE predictor with the given configuration.
func NewTAGE(cfg TAGEConfig) *TAGE {
	maxHist := cfg.Histories[len(cfg.Histories)-1]
	t := &TAGE{
		cfg:  cfg,
		base: make([]ctr2, 1<<cfg.BaseBits),
		hist: make([]bool, maxHist+1),
		rng:  0x123456789abcdef,
	}
	for _, h := range cfg.Histories {
		t.tables = append(t.tables, make([]tageEntry, 1<<cfg.TableBits))
		t.foldIdx = append(t.foldIdx, bitFold{length: h, width: cfg.TableBits})
		t.foldTag = append(t.foldTag, bitFold{length: h, width: cfg.TagBits})
		t.foldTag2 = append(t.foldTag2, bitFold{length: h, width: cfg.TagBits - 1})
	}
	return t
}

// Name implements DirPredictor.
func (t *TAGE) Name() string { return "tage" }

func (t *TAGE) index(pc uint64, comp int) uint64 {
	h := t.foldIdx[comp].val
	return (pc ^ pc>>t.cfg.TableBits ^ h ^ uint64(comp)*0x9e37) & (1<<t.cfg.TableBits - 1)
}

func (t *TAGE) tag(pc uint64, comp int) uint32 {
	h := t.foldTag[comp].val
	h2 := t.foldTag2[comp].val
	return uint32((pc ^ h ^ h2<<1) & (1<<t.cfg.TagBits - 1))
}

// lookup returns the providing component (or -1 for base) and prediction.
func (t *TAGE) lookup(pc uint64) (provider int, pred bool) {
	provider = -1
	pred = t.base[pc&(1<<t.cfg.BaseBits-1)].taken()
	for c := len(t.tables) - 1; c >= 0; c-- {
		e := &t.tables[c][t.index(pc, c)]
		if e.valid && e.tag == t.tag(pc, c) {
			return c, e.ctr >= 0
		}
	}
	return provider, pred
}

// Predict implements DirPredictor.
func (t *TAGE) Predict(pc uint64) bool {
	_, p := t.lookup(pc)
	return p
}

// Update implements DirPredictor.
func (t *TAGE) Update(pc uint64, taken bool) {
	provider, pred := t.lookup(pc)
	if provider >= 0 {
		e := &t.tables[provider][t.index(pc, provider)]
		if pred == taken {
			if e.u < 3 {
				e.u++
			}
		}
		if taken && e.ctr < 3 {
			e.ctr++
		} else if !taken && e.ctr > -4 {
			e.ctr--
		}
	} else {
		i := pc & (1<<t.cfg.BaseBits - 1)
		t.base[i] = t.base[i].update(taken)
	}
	// Allocate on misprediction in a longer-history component.
	if pred != taken && provider < len(t.tables)-1 {
		t.allocate(pc, provider, taken)
	}
	// Periodic usefulness degradation.
	t.updates++
	if t.cfg.UResetEvery > 0 && t.updates%uint64(t.cfg.UResetEvery) == 0 {
		for _, tbl := range t.tables {
			for i := range tbl {
				tbl[i].u >>= 1
			}
		}
	}
	// Push history and advance the incremental folds. The leaving bit of a
	// fold of length L is the bit pushed L steps ago, still present in the
	// ring because its capacity exceeds the longest history.
	for c := range t.foldIdx {
		L := t.cfg.Histories[c]
		pos := t.histPos - L
		if pos < 0 {
			pos += len(t.hist)
		}
		leaving := t.hist[pos]
		t.foldIdx[c].push(taken, leaving)
		t.foldTag[c].push(taken, leaving)
		t.foldTag2[c].push(taken, leaving)
	}
	t.hist[t.histPos] = taken
	t.histPos++
	if t.histPos == len(t.hist) {
		t.histPos = 0
	}
}

func (t *TAGE) nextRand() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

func (t *TAGE) allocate(pc uint64, provider int, taken bool) {
	start := provider + 1
	// Skip one component with probability 1/2 (Seznec's allocation churn).
	if start < len(t.tables)-1 && t.nextRand()&1 == 0 {
		start++
	}
	for c := start; c < len(t.tables); c++ {
		e := &t.tables[c][t.index(pc, c)]
		if !e.valid || e.u == 0 {
			e.valid = true
			e.tag = t.tag(pc, c)
			e.u = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// No free entry: decay usefulness along the way.
	for c := start; c < len(t.tables); c++ {
		e := &t.tables[c][t.index(pc, c)]
		if e.u > 0 {
			e.u--
		}
	}
}

// TAGESCL is TAGE plus a loop predictor, a light stand-in for the TAGE-SC-L
// front end of Table I. The loop predictor captures loops with a stable trip
// count that TAGE's saturating counters mispredict once per iteration set.
type TAGESCL struct {
	tage *TAGE
	loop map[uint64]*loopEntry
}

type loopEntry struct {
	tripCount     uint32 // confirmed iterations between not-takens
	current       uint32
	confirmations uint8 // consecutive trips matching tripCount
}

// loopConfirmations is how many identical consecutive trip counts the loop
// predictor needs before it overrides TAGE (Seznec uses a similar
// hysteresis; without it an irregular branch thrashes the override).
const loopConfirmations = 4

func (e *loopEntry) confident() bool { return e.confirmations >= loopConfirmations }

// NewTAGESCL builds the composite predictor.
func NewTAGESCL() *TAGESCL {
	return &TAGESCL{tage: NewTAGE(DefaultTAGEConfig()), loop: map[uint64]*loopEntry{}}
}

// Name implements DirPredictor.
func (t *TAGESCL) Name() string { return "tagescl" }

// Predict implements DirPredictor.
func (t *TAGESCL) Predict(pc uint64) bool {
	if e, ok := t.loop[pc]; ok && e.confident() {
		return e.current+1 < e.tripCount
	}
	return t.tage.Predict(pc)
}

// Update implements DirPredictor.
func (t *TAGESCL) Update(pc uint64, taken bool) {
	e, ok := t.loop[pc]
	if !ok {
		if len(t.loop) < 256 {
			e = &loopEntry{}
			t.loop[pc] = e
		}
	}
	if e != nil {
		if e.confident() && (e.current+1 < e.tripCount) != taken {
			e.confirmations = 0 // the override mispredicted: stand down
		}
		if taken {
			e.current++
			if e.current > 1<<16 { // not a loop branch; stop tracking
				delete(t.loop, pc)
				e = nil
			}
		} else {
			trip := e.current + 1
			if trip == e.tripCount {
				if e.confirmations < 255 {
					e.confirmations++
				}
			} else {
				e.tripCount = trip
				e.confirmations = 0
			}
			e.current = 0
		}
	}
	t.tage.Update(pc, taken)
}

// TargetCache predicts indirect branch targets: an ITTAGE-lite with a
// PC-indexed base table (last target seen) and two tagged tables indexed
// with short and long target-history hashes. Target history mixes several
// address ranges of each target so handlers that differ only in high bits
// still produce distinct histories.
type TargetCache struct {
	base   []targetEntry
	tagged [2][]targetEntry
	mask   uint64
	hist   uint64
}

type targetEntry struct {
	tag    uint32
	target uint64
	conf   uint8
	valid  bool
}

// targetHistLens are the history lengths (in recorded targets) of the two
// tagged tables.
var targetHistLens = [2]uint64{4, 12}

// NewTargetCache returns a target cache with 2^bits entries per table.
func NewTargetCache(bits int) *TargetCache {
	tc := &TargetCache{base: make([]targetEntry, 1<<bits), mask: 1<<bits - 1}
	for i := range tc.tagged {
		tc.tagged[i] = make([]targetEntry, 1<<bits)
	}
	return tc
}

// histChunk compresses one target into 4 history bits, mixing low and high
// address ranges.
func histChunk(target uint64) uint64 {
	return (target ^ target>>4 ^ target>>9 ^ target>>15) & 15
}

func (tc *TargetCache) index(pc uint64, comp int) uint64 {
	window := tc.hist & (1<<(4*targetHistLens[comp]) - 1)
	h := window * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return (pc ^ pc>>7 ^ h ^ uint64(comp+1)*0x85ebca6b) & tc.mask
}

// Predict returns the predicted target and whether a prediction exists:
// the longest-history confident tag match, falling back to the base table.
func (tc *TargetCache) Predict(pc uint64) (uint64, bool) {
	for comp := 1; comp >= 0; comp-- {
		e := &tc.tagged[comp][tc.index(pc, comp)]
		if e.valid && e.tag == uint32(pc) && e.conf > 0 {
			return e.target, true
		}
	}
	e := &tc.base[pc&tc.mask]
	if e.valid && e.tag == uint32(pc) {
		return e.target, true
	}
	return 0, false
}

// Update trains all components with the resolved target and rolls history.
func (tc *TargetCache) Update(pc, target uint64) {
	for comp := 0; comp < 2; comp++ {
		e := &tc.tagged[comp][tc.index(pc, comp)]
		if e.valid && e.tag == uint32(pc) {
			if e.target == target {
				if e.conf < 3 {
					e.conf++
				}
			} else if e.conf > 0 {
				e.conf--
			} else {
				e.target = target
			}
		} else if !e.valid || e.conf == 0 {
			*e = targetEntry{tag: uint32(pc), target: target, conf: 1, valid: true}
		} else {
			e.conf--
		}
	}
	b := &tc.base[pc&tc.mask]
	*b = targetEntry{tag: uint32(pc), target: target, valid: true}
	tc.hist = tc.hist<<4 | histChunk(target)
}
