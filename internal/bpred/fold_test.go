package bpred

import (
	"math/rand"
	"testing"
)

// referenceFold recomputes a bitFold value from scratch: XOR of each of the
// last length history bits rotated left by its age within width.
func referenceFold(hist []bool, length, width int) uint64 {
	var f uint64
	n := len(hist)
	for age := 0; age < length && age < n; age++ {
		if hist[n-1-age] {
			k := age % width
			f ^= 1 << k
		}
	}
	return f & (1<<width - 1)
}

// TestBitFoldMatchesReference: the incremental TAGE fold must equal the
// from-scratch fold after any update sequence (this replaced an O(history)
// recompute per lookup; a silent divergence here would corrupt every TAGE
// index).
func TestBitFoldMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		length := 1 + rng.Intn(130)
		width := 2 + rng.Intn(12)
		f := bitFold{length: length, width: width}
		ring := make([]bool, length+64)
		var hist []bool
		pos := 0
		for i := 0; i < 500; i++ {
			bit := rng.Intn(2) == 0
			// leaving bit = the bit pushed `length` steps ago
			var leaving bool
			if len(hist) >= length {
				leaving = ring[(pos-length+len(ring))%len(ring)]
			}
			f.push(bit, leaving)
			ring[pos] = bit
			pos = (pos + 1) % len(ring)
			hist = append(hist, bit)
			if got, want := f.val, referenceFold(hist, length, width); got != want {
				t.Fatalf("trial %d (len %d width %d) step %d: fold %#x, want %#x",
					trial, length, width, i, got, want)
			}
		}
	}
}

// TestTAGEFoldConsistency: the predictor's internal folds must agree with a
// recomputation from its own history ring after heavy use.
func TestTAGEFoldConsistency(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	rng := rand.New(rand.NewSource(7))
	var hist []bool
	for i := 0; i < 3000; i++ {
		taken := rng.Intn(3) > 0
		tg.Update(uint64(0x400+i%17*4), taken)
		hist = append(hist, taken)
	}
	for c, L := range tg.cfg.Histories {
		if got, want := tg.foldIdx[c].val, referenceFold(hist, L, tg.cfg.TableBits); got != want {
			t.Errorf("comp %d idx fold %#x, want %#x", c, got, want)
		}
		if got, want := tg.foldTag[c].val, referenceFold(hist, L, tg.cfg.TagBits); got != want {
			t.Errorf("comp %d tag fold %#x, want %#x", c, got, want)
		}
	}
}
