package bpred

import (
	"testing"

	"repro/internal/isa"
)

func TestNewDirKnowsAllNames(t *testing.T) {
	for _, name := range DirNames() {
		d, err := NewDir(name)
		if err != nil {
			t.Fatalf("NewDir(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("NewDir(%q).Name() = %q", name, d.Name())
		}
		if DirYear(name) == 0 {
			t.Errorf("DirYear(%q) = 0", name)
		}
	}
	if _, err := NewDir("crystalball"); err == nil {
		t.Error("unknown predictor should error")
	}
	if DirYear("crystalball") != 0 {
		t.Error("unknown predictor year should be 0")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	for i := 0; i < 10; i++ {
		b.Update(0x40, true)
	}
	if !b.Predict(0x40) {
		t.Error("bimodal should learn a taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(0x40, false)
	}
	if b.Predict(0x40) {
		t.Error("bimodal should relearn a not-taken bias")
	}
}

func TestGShareLearnsCorrelation(t *testing.T) {
	// Branch B is taken iff the previous branch A was taken: pure history
	// correlation that a bimodal cannot capture.
	g := NewGShare(12, 8)
	misp := 0
	taken := false
	for i := 0; i < 4000; i++ {
		aTaken := i%3 == 0
		g.Update(0xA0, aTaken)
		taken = aTaken
		if g.Predict(0xB0) != taken {
			if i > 1000 {
				misp++
			}
		}
		g.Update(0xB0, taken)
	}
	if misp > 100 {
		t.Errorf("gshare failed to learn history correlation: %d late mispredicts", misp)
	}
}

func TestPerceptronLearnsLinearlySeparable(t *testing.T) {
	p := NewPerceptron(8, 16)
	misp := 0
	hist := make([]bool, 16)
	for i := 0; i < 6000; i++ {
		// Outcome = XOR of nothing fancy: taken iff hist[last] (shifted
		// correlation), which is linearly separable.
		taken := hist[15]
		if p.Predict(0xC0) != taken && i > 2000 {
			misp++
		}
		p.Update(0xC0, taken)
		copy(hist, hist[1:])
		hist[15] = i%5 == 0
	}
	if misp > 200 {
		t.Errorf("perceptron failed on separable pattern: %d late mispredicts", misp)
	}
}

// TestPeriodicLearnability: every history-based predictor must learn a
// noise-free periodic pattern almost perfectly — this guards the property
// the whole workload suite's branch realism depends on.
func TestPeriodicLearnability(t *testing.T) {
	pat := []bool{true, false, true, true, false, false, true, false}
	for _, name := range []string{"gshare", "tage", "tagescl"} {
		d, _ := NewDir(name)
		misp := 0
		for i := 0; i < 20000; i++ {
			taken := pat[i%len(pat)]
			if d.Predict(0x1234) != taken && i > 4000 {
				misp++
			}
			d.Update(0x1234, taken)
		}
		if misp > 160 { // <1% after warm-up
			t.Errorf("%s: %d late mispredicts on a period-8 pattern", name, misp)
		}
	}
}

func TestTAGELoopPredictorFixedTripCount(t *testing.T) {
	d := NewTAGESCL()
	misp := 0
	for rep := 0; rep < 400; rep++ {
		for i := 0; i < 37; i++ {
			taken := i < 36 // 36 taken, then one exit
			if d.Predict(0x99) != taken && rep > 40 {
				misp++
			}
			d.Update(0x99, taken)
		}
	}
	if misp > 100 {
		t.Errorf("loop predictor missed a fixed trip count: %d late mispredicts", misp)
	}
}

func TestTAGESCLIrregularBranchDoesNotThrash(t *testing.T) {
	// An irregular trip count must not let the loop override hurt accuracy
	// versus plain TAGE (the pre-fix behaviour regressed 300x here).
	trip := []int{3, 5, 2, 7, 4, 6, 3, 5}
	run := func(d DirPredictor) int {
		misp := 0
		n := 0
		for rep := 0; n < 30000; rep++ {
			tc := trip[rep%len(trip)]
			for i := 0; i <= tc; i++ {
				taken := i < tc
				if d.Predict(0x77) != taken && n > 6000 {
					misp++
				}
				d.Update(0x77, taken)
				n++
			}
		}
		return misp
	}
	tage, _ := NewDir("tage")
	scl, _ := NewDir("tagescl")
	mTage, mSCL := run(tage), run(scl)
	if mSCL > mTage*2+200 {
		t.Errorf("TAGE-SC-L (%d) much worse than TAGE (%d) on irregular loop", mSCL, mTage)
	}
}

func TestTargetCachePeriodicIndirect(t *testing.T) {
	tc := NewTargetCache(11)
	// Targets differing only in high bits (0x100-spaced handlers).
	sched := []uint64{0x1100, 0x1200, 0x1100, 0x1300, 0x1200, 0x1100, 0x1300, 0x1300, 0x1200}
	misp := 0
	for i := 0; i < 20000; i++ {
		target := sched[i%len(sched)]
		got, ok := tc.Predict(0x5678)
		if (!ok || got != target) && i > 4000 {
			misp++
		}
		tc.Update(0x5678, target)
	}
	if misp > 160 {
		t.Errorf("target cache: %d late mispredicts on periodic indirect", misp)
	}
}

func TestUnitRAS(t *testing.T) {
	d, _ := NewDir("bimodal")
	u := NewUnit(d)
	call := isa.Inst{PC: 0x100, Kind: isa.Branch, Class: isa.Call, Taken: true, Target: 0x1000}
	ret := isa.Inst{PC: 0x1040, Kind: isa.Branch, Class: isa.Return, Taken: true, Target: 0x104}
	if u.PredictAndTrain(&call) {
		t.Error("direct call must never mispredict")
	}
	if u.PredictAndTrain(&ret) {
		t.Error("matched return must be predicted by the RAS")
	}
	// An unmatched return (empty RAS) mispredicts.
	if !u.PredictAndTrain(&ret) {
		t.Error("return with empty RAS should mispredict")
	}
	if u.Branches != 3 || u.Mispredicts != 1 {
		t.Errorf("unit counters = %d/%d", u.Branches, u.Mispredicts)
	}
}

func TestUnitRASOverflowKeepsYoungest(t *testing.T) {
	d, _ := NewDir("bimodal")
	u := NewUnit(d)
	for i := 0; i < 80; i++ { // deeper than the 64-entry RAS
		call := isa.Inst{PC: uint64(0x100 + i*8), Kind: isa.Branch, Class: isa.Call,
			Taken: true, Target: 0x1000}
		u.PredictAndTrain(&call)
	}
	// The youngest return address must still be correct.
	ret := isa.Inst{PC: 0x2000, Kind: isa.Branch, Class: isa.Return, Taken: true,
		Target: uint64(0x100 + 79*8 + 4)}
	if u.PredictAndTrain(&ret) {
		t.Error("youngest return must survive RAS overflow")
	}
}

func TestUnitDirectNeverMispredicts(t *testing.T) {
	d, _ := NewDir("bimodal")
	u := NewUnit(d)
	j := isa.Inst{PC: 0x50, Kind: isa.Branch, Class: isa.Direct, Taken: true, Target: 0x90}
	for i := 0; i < 5; i++ {
		if u.PredictAndTrain(&j) {
			t.Fatal("direct jumps have static targets")
		}
	}
}

func TestMPKIOverEmpty(t *testing.T) {
	d, _ := NewDir("bimodal")
	if got := MPKIOver(d, nil); got != 0 {
		t.Errorf("MPKIOver(empty) = %f", got)
	}
}
