// Package bpred implements the branch direction and target predictors used
// by the core (TAGE-SC-L-lite, per Table I) and by the 30-year MPKI timeline
// of Fig. 1 (bimodal, gshare, perceptron, TAGE). Direction predictors share
// the DirPredictor interface; Unit composes a direction predictor with an
// indirect-target cache and a return address stack into the front-end
// predictor the pipeline queries.
package bpred

import "fmt"

// DirPredictor predicts conditional branch directions.
type DirPredictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains with the resolved direction and updates internal
	// history. Callers must invoke it for every conditional branch, in
	// program order, after Predict.
	Update(pc uint64, taken bool)
}

// NewDir constructs a direction predictor by name.
func NewDir(name string) (DirPredictor, error) {
	switch name {
	case "bimodal":
		return NewBimodal(14), nil
	case "gshare":
		return NewGShare(14, 12), nil
	case "perceptron":
		return NewPerceptron(10, 24), nil
	case "tage":
		return NewTAGE(DefaultTAGEConfig()), nil
	case "tagescl":
		return NewTAGESCL(), nil
	default:
		return nil, fmt.Errorf("bpred: unknown predictor %q", name)
	}
}

// DirNames lists available direction predictors, oldest design first (the
// x-axis order of Fig. 1).
func DirNames() []string {
	return []string{"bimodal", "gshare", "perceptron", "tage", "tagescl"}
}

// DirYear returns the publication year associated with a predictor for the
// Fig. 1 timeline.
func DirYear(name string) int {
	switch name {
	case "bimodal":
		return 1993
	case "gshare":
		return 1993
	case "perceptron":
		return 2001
	case "tage":
		return 2006
	case "tagescl":
		return 2016
	default:
		return 0
	}
}

// ctr2 is a 2-bit saturating counter.
type ctr2 uint8

func (c ctr2) taken() bool { return c >= 2 }

func (c ctr2) update(taken bool) ctr2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is the classic PC-indexed 2-bit counter table.
type Bimodal struct {
	table []ctr2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) *Bimodal {
	return &Bimodal{table: make([]ctr2, 1<<bits), mask: 1<<bits - 1}
}

// Name implements DirPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[pc&b.mask].taken() }

// Update implements DirPredictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := pc & b.mask
	b.table[i] = b.table[i].update(taken)
}

// GShare XORs global history into the table index (McFarling 1993).
type GShare struct {
	table    []ctr2
	mask     uint64
	hist     uint64
	histBits int
}

// NewGShare returns a gshare predictor with 2^bits counters and histBits of
// global history.
func NewGShare(bits, histBits int) *GShare {
	return &GShare{table: make([]ctr2, 1<<bits), mask: 1<<bits - 1, histBits: histBits}
}

// Name implements DirPredictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) index(pc uint64) uint64 {
	return (pc ^ g.hist) & g.mask
}

// Predict implements DirPredictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements DirPredictor.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
	g.hist &= 1<<g.histBits - 1
}

// Perceptron is Jiménez & Lin's perceptron predictor (HPCA 2001).
type Perceptron struct {
	weights  [][]int8 // [entry][histLen+1], index 0 is the bias
	mask     uint64
	hist     []bool
	theta    int
	histBits int
}

// NewPerceptron returns a perceptron predictor with 2^bits perceptrons over
// histBits of history.
func NewPerceptron(bits, histBits int) *Perceptron {
	w := make([][]int8, 1<<bits)
	for i := range w {
		w[i] = make([]int8, histBits+1)
	}
	return &Perceptron{
		weights:  w,
		mask:     1<<bits - 1,
		hist:     make([]bool, histBits),
		theta:    int(1.93*float64(histBits) + 14),
		histBits: histBits,
	}
}

// Name implements DirPredictor.
func (p *Perceptron) Name() string { return "perceptron" }

func (p *Perceptron) output(pc uint64) int {
	w := p.weights[pc&p.mask]
	y := int(w[0])
	for i, h := range p.hist {
		if h {
			y += int(w[i+1])
		} else {
			y -= int(w[i+1])
		}
	}
	return y
}

// Predict implements DirPredictor.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

// Update implements DirPredictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	y := p.output(pc)
	pred := y >= 0
	if pred != taken || abs(y) <= p.theta {
		w := p.weights[pc&p.mask]
		w[0] = bump(w[0], taken)
		for i, h := range p.hist {
			w[i+1] = bump(w[i+1], taken == h)
		}
	}
	copy(p.hist, p.hist[1:])
	p.hist[len(p.hist)-1] = taken
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func bump(w int8, up bool) int8 {
	if up {
		if w < 127 {
			return w + 1
		}
		return w
	}
	if w > -127 {
		return w - 1
	}
	return w
}
