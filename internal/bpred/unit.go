package bpred

import "repro/internal/isa"

// Unit is the front-end branch prediction unit the pipeline queries: a
// direction predictor for conditional branches, a target cache for indirect
// jumps/calls, and a return address stack for returns. Direct jumps and
// calls are always predicted correctly (their targets are static).
type Unit struct {
	dir    DirPredictor
	itc    *TargetCache
	ras    []uint64
	rasCap int

	// Stats.
	Branches    uint64
	Mispredicts uint64
}

// NewUnit builds a prediction unit around the given direction predictor.
func NewUnit(dir DirPredictor) *Unit {
	return &Unit{dir: dir, itc: NewTargetCache(11), rasCap: 64}
}

// Name returns the direction predictor's name.
func (u *Unit) Name() string { return u.dir.Name() }

// PredictAndTrain processes one fetched branch in program order: it
// predicts, trains with the resolved outcome from the trace, and reports
// whether the prediction was wrong (i.e. the front end would have redirected
// after this branch resolves). The trace-driven front end always fetches the
// correct path; mispredictions only cost redirect bubbles.
func (u *Unit) PredictAndTrain(in *isa.Inst) (mispredicted bool) {
	u.Branches++
	switch in.Class {
	case isa.Cond:
		pred := u.dir.Predict(in.PC)
		u.dir.Update(in.PC, in.Taken)
		mispredicted = pred != in.Taken
	case isa.Direct:
		// Static target; always right.
	case isa.Call:
		u.push(in.PC + 4)
	case isa.Indirect, isa.IndirectCall:
		target, ok := u.itc.Predict(in.PC)
		mispredicted = !ok || target != in.Target
		u.itc.Update(in.PC, in.Target)
		if in.Class == isa.IndirectCall {
			u.push(in.PC + 4)
		}
	case isa.Return:
		target, ok := u.pop()
		mispredicted = !ok || target != in.Target
	}
	if mispredicted {
		u.Mispredicts++
	}
	return mispredicted
}

func (u *Unit) push(addr uint64) {
	if len(u.ras) == u.rasCap {
		copy(u.ras, u.ras[1:])
		u.ras = u.ras[:u.rasCap-1]
	}
	u.ras = append(u.ras, addr)
}

func (u *Unit) pop() (uint64, bool) {
	if len(u.ras) == 0 {
		return 0, false
	}
	v := u.ras[len(u.ras)-1]
	u.ras = u.ras[:len(u.ras)-1]
	return v, true
}

// MPKIOver replays a stream through a fresh direction-prediction unit and
// returns mispredicts per kilo instruction — the Fig. 1 branch timeline
// metric (no timing model needed).
func MPKIOver(dir DirPredictor, insts []isa.Inst) float64 {
	u := NewUnit(dir)
	for i := range insts {
		if insts[i].IsBranch() {
			u.PredictAndTrain(&insts[i])
		}
	}
	if len(insts) == 0 {
		return 0
	}
	return float64(u.Mispredicts) * 1000 / float64(len(insts))
}
