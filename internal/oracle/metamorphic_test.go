package oracle_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The metamorphic property under test: a memory dependence predictor, a
// cache geometry, a scheduler width, a violation filter or a watchdog
// setting may change *when* micro-ops execute, but never *what* they
// compute. Every configuration below must retire the exact architectural
// results of the in-order oracle — one load-value digest per workload, no
// matter how the timing model is twisted.

const metaN = 20000

// verifiedDigest runs one verified simulation and returns the checker's
// architectural digest. Any divergence or incomplete retirement fails t.
func verifiedDigest(t *testing.T, app, predSpec, machineName string, mod func(*pipeline.Options)) uint64 {
	t.Helper()
	tr, err := sim.TraceFor(app, metaN, 0)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := config.ByName(machineName)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := sim.NewPredictor(predSpec)
	if err != nil {
		t.Fatal(err)
	}
	opt := pipeline.DefaultOptions()
	if mod != nil {
		mod(&opt)
	}
	ck := oracle.NewChecker(tr)
	opt.Verify = ck.Check
	c, err := pipeline.New(machine, pred, opt)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.Run(tr)
	if err != nil {
		t.Fatalf("%s/%s/%s: %v", app, predSpec, machineName, err)
	}
	if run.Committed != uint64(tr.Len()) || ck.Committed() != tr.Len() {
		t.Fatalf("%s/%s/%s: committed %d, verified %d, want %d",
			app, predSpec, machineName, run.Committed, ck.Committed(), tr.Len())
	}
	return ck.Digest()
}

func TestAllPredictorsRetireIdenticalResults(t *testing.T) {
	preds := []string{"phast", "storesets", "storevector", "perceptron-mdp", "none", "unlimited-phast"}
	for _, app := range []string{"511.povray", "519.lbm", "502.gcc_1", "541.leela"} {
		tr, err := sim.TraceFor(app, metaN, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.Run(tr).Digest()
		for _, pred := range preds {
			if got := verifiedDigest(t, app, pred, "alderlake", nil); got != want {
				t.Errorf("%s/%s: digest %#x, want oracle %#x", app, pred, got, want)
			}
		}
	}
}

func TestResultsInvariantAcrossGeometryAndFilters(t *testing.T) {
	const app = "511.povray"
	tr, err := sim.TraceFor(app, metaN, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Run(tr).Digest()
	for _, machine := range []string{"nehalem", "skylake", "alderlake"} {
		for _, filter := range []pipeline.FilterMode{pipeline.FilterFwd, pipeline.FilterNone, pipeline.FilterSVW} {
			got := verifiedDigest(t, app, "phast", machine, func(o *pipeline.Options) { o.Filter = filter })
			if got != want {
				t.Errorf("%s filter %d: digest %#x, want %#x", machine, filter, got, want)
			}
		}
	}
}

func TestResultsInvariantAcrossSchedulingKnobs(t *testing.T) {
	const app = "541.leela"
	tr, err := sim.TraceFor(app, metaN, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Run(tr).Digest()
	mods := map[string]func(*pipeline.Options){
		"defaults":       nil,
		"tight-watchdog": func(o *pipeline.Options) { o.WatchdogCycles = 50_000 },
		"low-ceiling":    func(o *pipeline.Options) { o.MaxCycles = 5_000_000 },
		"train-detect":   func(o *pipeline.Options) { o.TrainAtDetect = true },
		"bimodal-bp":     func(o *pipeline.Options) { o.BranchPredictor = "bimodal" },
	}
	for name, mod := range mods {
		if got := verifiedDigest(t, app, "storesets", "alderlake", mod); got != want {
			t.Errorf("%s: digest %#x, want %#x", name, got, want)
		}
	}
}

func TestCachedAndUncachedVerifiedRunsAgree(t *testing.T) {
	cfg := sim.Config{App: "519.lbm", Predictor: "phast", Instructions: metaN, Verify: true}
	reg := stats.NewMetrics()
	cache := runcache.New(runcache.NewStore(t.TempDir()), reg)
	first, err := cache.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cache.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Errorf("cached replay differs from verified run:\n%s\nvs\n%s", a, b)
	}
	direct, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(direct)
	if string(a) != string(c) {
		t.Errorf("uncached verified run differs from cached:\n%s\nvs\n%s", a, c)
	}
	// Verified and unverified runs are distinct cache entries, but a
	// Verify:false config keys identically to one that predates the field
	// (json omitempty) — existing persistent caches stay valid.
	plain := cfg
	plain.Verify = false
	if runcache.Key(cfg) == runcache.Key(plain) {
		t.Error("Verify does not separate cache keys")
	}
}

// TestForwardingBugCaughtByOracle is the mutation test: with the injected
// fwdflip fault suppressing the pipeline's violation detection, stale values
// retire — invisibly without the oracle, as a first-divergence report with
// it. This is the proof the verification has teeth.
func TestForwardingBugCaughtByOracle(t *testing.T) {
	cfg := sim.Config{App: "511.povray", Predictor: "phast", Instructions: metaN}

	// The mutation only matters if this run truly has memory-order
	// violations to mis-handle.
	baseline, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.MemOrderViolations == 0 {
		t.Fatalf("baseline has no violations — mutation test is vacuous")
	}

	plan, err := faultinject.NewPlan(1, map[faultinject.Fault]float64{faultinject.FaultFwdFlip: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Activate(plan)()

	// Without the oracle the bug is silent: the run "succeeds" and even
	// reports a clean violation counter.
	silent, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("mutated run without verification should pass silently, got %v", err)
	}
	if silent.MemOrderViolations != 0 {
		t.Errorf("fwdflip left %d violations flagged, want 0 (fault not injected?)",
			silent.MemOrderViolations)
	}

	// With the oracle it is a typed first-divergence report.
	vcfg := cfg
	vcfg.Verify = true
	_, err = sim.Run(vcfg)
	var se *sim.SimError
	if !errors.As(err, &se) || se.Kind != sim.ErrVerify {
		t.Fatalf("want SimError kind %q, got %v", sim.ErrVerify, err)
	}
	var dv *oracle.DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if dv.Cycle == 0 || dv.Op == "" || dv.Detail == "" || dv.Expected == dv.Actual {
		t.Errorf("divergence report incomplete: %+v", dv)
	}
	if se.Cycle != dv.Cycle {
		t.Errorf("SimError cycle %d does not locate the divergence at %d", se.Cycle, dv.Cycle)
	}
	t.Logf("caught injected forwarding bug:\n%v", dv)
}
