package oracle_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// handTrace is a small hand-written stream with statically known dataflow:
// two overlapping stores, a load covering both, and a load of untouched
// memory.
func handTrace() *trace.Trace {
	return &trace.Trace{Name: "hand", Insts: []isa.Inst{
		{PC: 0x1000, Kind: isa.ALU, Dst: 2, SrcA: 1, SrcB: 1, Lat: 1},
		{PC: 0x1004, Kind: isa.Store, SrcA: 1, SrcB: 2, Addr: 0x100, Size: 8},
		{PC: 0x1008, Kind: isa.Store, SrcA: 1, SrcB: 2, Addr: 0x104, Size: 4},
		{PC: 0x100c, Kind: isa.Load, Dst: 3, SrcA: 1, Addr: 0x100, Size: 8},
		{PC: 0x1010, Kind: isa.Load, Dst: 4, SrcA: 1, Addr: 0x200, Size: 4},
	}}
}

func TestExecWriterTracking(t *testing.T) {
	x := oracle.Run(handTrace())
	for i := uint64(0); i < 4; i++ {
		if w := x.WriterOf(0x100 + i); w != 1 {
			t.Errorf("byte %#x: writer %d, want store #1", 0x100+i, w)
		}
		if w := x.WriterOf(0x104 + i); w != 2 {
			t.Errorf("byte %#x: writer %d, want store #2", 0x104+i, w)
		}
	}
	if w := x.WriterOf(0x200); w != oracle.NoWriter {
		t.Errorf("untouched byte: writer %d, want NoWriter", w)
	}
	if got, want := x.MemByte(0x200), oracle.InitByte(0x200); got != want {
		t.Errorf("untouched byte reads %#x, want InitByte %#x", got, want)
	}
	if x.Loads() != 2 {
		t.Errorf("loads = %d, want 2", x.Loads())
	}
	if !x.Done() || x.Pos() != 5 {
		t.Errorf("Pos/Done = %d/%v after full run", x.Pos(), x.Done())
	}
}

func TestExecValueSemantics(t *testing.T) {
	tr := handTrace()
	x := oracle.Run(tr)
	// The covering load must assemble exactly the bytes of the two store
	// watermarks, little-endian.
	data := oracle.Run(&trace.Trace{Insts: tr.Insts[:1]}).Reg(2)
	w1 := oracle.StoreWord(data, 0x1004, 1)
	w2 := oracle.StoreWord(data, 0x1008, 2)
	var want uint64
	for i := 0; i < 4; i++ {
		want |= uint64(oracle.StoreByte(w1, i)) << (8 * i)
		want |= uint64(oracle.StoreByte(w2, i)) << (8 * (i + 4))
	}
	if got := x.Reg(3); got != want {
		t.Errorf("covering load value %#x, want %#x", got, want)
	}
	// Distinct dynamic stores with identical data and PC still write distinct
	// watermarks (the trace index is mixed in).
	if oracle.StoreWord(7, 0x1000, 3) == oracle.StoreWord(7, 0x1000, 4) {
		t.Error("store watermark ignores the dynamic index")
	}
	// R0 is the hard-wired none register.
	big := &trace.Trace{Insts: []isa.Inst{
		{PC: 0x10, Kind: isa.ALU, Dst: 0, SrcA: 1, SrcB: 2, Lat: 1},
	}}
	if v := oracle.Run(big).Reg(0); v != 0 {
		t.Errorf("R0 = %#x after write, want 0", v)
	}
}

func TestExecDeterminism(t *testing.T) {
	a, b := oracle.Run(handTrace()), oracle.Run(handTrace())
	if a.Digest() != b.Digest() {
		t.Errorf("digests differ: %#x vs %#x", a.Digest(), b.Digest())
	}
	if a.Digest() == 0 {
		t.Error("digest is zero — fold not running")
	}
}

// replayCorrect feeds the checker the event stream a correct pipeline would
// produce, computing each load's providers from a shadow executor just
// before it retires.
func replayCorrect(t *testing.T, ck *oracle.Checker, tr *trace.Trace, mutate func(idx int, ev *pipeline.CommitEvent)) error {
	t.Helper()
	shadow := oracle.New(tr)
	for i := range tr.Insts {
		in := &tr.Insts[i]
		ev := pipeline.CommitEvent{Cycle: uint64(i + 1), TraceIdx: i}
		if in.Kind == isa.Load {
			for b := uint64(0); b < uint64(in.Size); b++ {
				ev.Providers = append(ev.Providers, shadow.WriterOf(in.Addr+b))
			}
		}
		shadow.Step()
		if mutate != nil {
			mutate(i, &ev)
		}
		if err := ck.Check(&ev); err != nil {
			return err
		}
	}
	return nil
}

func TestCheckerAcceptsCorrectStream(t *testing.T) {
	tr := handTrace()
	ck := oracle.NewChecker(tr)
	if err := replayCorrect(t, ck, tr, nil); err != nil {
		t.Fatalf("correct stream rejected: %v", err)
	}
	if ck.Committed() != tr.Len() {
		t.Errorf("committed %d, want %d", ck.Committed(), tr.Len())
	}
	if want := oracle.Run(tr).Digest(); ck.Digest() != want {
		t.Errorf("checker digest %#x, want executor digest %#x", ck.Digest(), want)
	}
}

func TestCheckerReportsWrongProvider(t *testing.T) {
	tr := handTrace()
	ck := oracle.NewChecker(tr)
	err := replayCorrect(t, ck, tr, func(idx int, ev *pipeline.CommitEvent) {
		if idx == 3 { // the covering load: pretend bytes 4..7 came from store #1
			for b := 4; b < 8; b++ {
				ev.Providers[b] = 1
			}
		}
	})
	var dv *oracle.DivergenceError
	if !errors.As(err, &dv) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if dv.TraceIdx != 3 || dv.Byte != 4 || dv.Expected != 2 || dv.Actual != 1 {
		t.Errorf("divergence fields = idx %d byte %d exp %d act %d, want 3/4/2/1",
			dv.TraceIdx, dv.Byte, dv.Expected, dv.Actual)
	}
	if !dv.ActKnown {
		t.Error("actual value should reconstruct from the recent-store ring")
	}
	if dv.ActVal == dv.ExpVal {
		t.Error("stale provider reconstructed to the expected value — watermarks not distinct")
	}
	msg := dv.Error()
	for _, want := range []string{"cycle 4", "micro-op #3", "expected store #2", "pipeline used store #1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("report missing %q:\n%s", want, msg)
		}
	}
	// The error is sticky: further events keep failing with the first report.
	if err2 := ck.Check(&pipeline.CommitEvent{Cycle: 9, TraceIdx: 4}); err2 != err {
		t.Errorf("sticky error violated: got %v", err2)
	}
	if ck.Err() != err {
		t.Errorf("Err() = %v, want first divergence", ck.Err())
	}
}

func TestCheckerRejectsOutOfOrderRetirement(t *testing.T) {
	tr := handTrace()
	ck := oracle.NewChecker(tr)
	err := ck.Check(&pipeline.CommitEvent{Cycle: 1, TraceIdx: 2})
	var dv *oracle.DivergenceError
	if !errors.As(err, &dv) || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("want out-of-order DivergenceError, got %v", err)
	}
}

func TestCheckerRejectsRetireAfterEnd(t *testing.T) {
	tr := handTrace()
	ck := oracle.NewChecker(tr)
	if err := replayCorrect(t, ck, tr, nil); err != nil {
		t.Fatal(err)
	}
	err := ck.Check(&pipeline.CommitEvent{Cycle: 99, TraceIdx: 5})
	if err == nil || !strings.Contains(err.Error(), "trace completed") {
		t.Fatalf("want after-end DivergenceError, got %v", err)
	}
}

func TestCheckerRejectsShortProviderCapture(t *testing.T) {
	tr := handTrace()
	ck := oracle.NewChecker(tr)
	err := replayCorrect(t, ck, tr, func(idx int, ev *pipeline.CommitEvent) {
		if idx == 3 {
			ev.Providers = ev.Providers[:2]
		}
	})
	if err == nil || !strings.Contains(err.Error(), "provider bytes") {
		t.Fatalf("want short-capture DivergenceError, got %v", err)
	}
}
