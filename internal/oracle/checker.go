package oracle

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// recentStores bounds the ring of recent store words the checker keeps for
// reconstructing the *actual* value a diverging load retired. A stale
// capture always points at an older writer of the same byte; anything
// farther back than this window reports its provider but an unknown value.
const recentStores = 8192

type storeRec struct {
	idx  int32
	addr uint64
	size uint8
	word uint64
}

// Checker verifies a pipeline's retirement stream against the in-order
// reference executor, micro-op by micro-op. Bind its Check method to
// pipeline.Options.Verify; the pipeline then aborts the run on the first
// divergence with a *DivergenceError.
//
// A Checker is single-run, single-goroutine state: build one per simulation
// over the same *trace.Trace the pipeline runs.
type Checker struct {
	x *Exec
	// base is the absolute trace index of the pipeline's index 0: zero for
	// a full-trace run, the interval's start for an interval checker (the
	// pipeline runs a slice, so its trace indices and captured providers
	// are slice-relative; the reference state is absolute).
	base   int
	recent []storeRec
	rpos   int
	err    error // first divergence, sticky
}

// NewChecker builds a checker for one run over tr.
func NewChecker(tr *trace.Trace) *Checker {
	return &Checker{x: New(tr), recent: make([]storeRec, 0, recentStores)}
}

// NewIntervalChecker builds a checker for a pipeline run over one interval
// of tr, resumed from a checkpoint of a CheckpointPass over tr. The
// pipeline simulates the slice starting at ck.Idx, so the events it reports
// are slice-relative; the checker translates them onto the absolute
// in-order state. Bytes last written before the interval are expected to
// read as initial memory on the pipeline side: an interval core starts with
// empty queues and an empty drain map (warm-up capture is discarded at the
// boundary — see pipeline.WarmContext), so pre-interval state is
// architecturally indistinguishable from initial memory to it.
func NewIntervalChecker(tr *trace.Trace, ck *Checkpoint) *Checker {
	return &Checker{x: Resume(tr, ck), base: ck.Idx, recent: make([]storeRec, 0, recentStores)}
}

// Committed returns the number of micro-ops verified so far (for an
// interval checker: within the interval).
func (c *Checker) Committed() int { return c.x.Pos() - c.base }

// Digest returns the architectural fingerprint accumulated over the
// verified retirement stream (see Exec.Digest).
func (c *Checker) Digest() uint64 { return c.x.Digest() }

// Err returns the first divergence observed, if any.
func (c *Checker) Err() error { return c.err }

// Check consumes one retirement event. It verifies in-order retirement and,
// for loads, that every byte the pipeline retired came from the same
// architectural writer the in-order execution produces, then advances the
// reference state. The event and its Providers slice are not retained.
func (c *Checker) Check(ev *pipeline.CommitEvent) error {
	if c.err != nil {
		return c.err
	}
	idx := c.x.Pos()
	if c.x.Done() {
		c.err = &DivergenceError{Cycle: ev.Cycle, TraceIdx: ev.TraceIdx,
			Reason: fmt.Sprintf("retired micro-op #%d after the %d-op trace completed", ev.TraceIdx, idx)}
		return c.err
	}
	in := &c.x.tr.Insts[idx]
	// The pipeline reports slice-relative indices; the reference state is
	// absolute (base = 0 for a full-trace checker).
	if ev.TraceIdx != idx-c.base {
		c.err = &DivergenceError{Cycle: ev.Cycle, TraceIdx: ev.TraceIdx, PC: in.PC,
			Reason: fmt.Sprintf("retirement out of order: retired micro-op #%d, in-order oracle expects #%d", ev.TraceIdx, idx-c.base)}
		return c.err
	}
	if in.Kind == isa.Load && in.Size > 0 {
		if len(ev.Providers) != int(in.Size) {
			c.err = &DivergenceError{Cycle: ev.Cycle, TraceIdx: idx, PC: in.PC, Op: in.String(),
				Reason: fmt.Sprintf("pipeline captured %d provider bytes for a %d-byte load", len(ev.Providers), in.Size)}
			return c.err
		}
		if err := c.checkLoad(ev, in, idx); err != nil {
			c.err = err
			return c.err
		}
	}
	c.x.Step()
	if in.Kind == isa.Store && in.Size > 0 {
		// A store writes no register, so its data register still holds the
		// value Step consumed: record exactly the word the oracle wrote.
		c.pushStore(storeRec{idx: int32(idx), addr: in.Addr, size: in.Size,
			word: StoreWord(c.x.Reg(in.SrcB), in.PC, idx)})
	}
	return nil
}

// relWriter returns the provider the pipeline is expected to report for one
// byte: the oracle's absolute writer translated into the pipeline's slice-
// relative space. A byte last written before the interval (or never) reads
// as initial memory on the pipeline side — its core started past those
// stores with empty queues and an empty drain map.
func (c *Checker) relWriter(addr uint64) int32 {
	w := c.x.WriterOf(addr)
	if w < int32(c.base) { // includes NoWriter
		return NoWriter
	}
	return w - int32(c.base)
}

// checkLoad compares the pipeline's per-byte provenance capture against the
// oracle's ground truth for the load about to retire.
func (c *Checker) checkLoad(ev *pipeline.CommitEvent, in *isa.Inst, idx int) error {
	mismatch := -1
	for i := 0; i < int(in.Size); i++ {
		if ev.Providers[i] != c.relWriter(in.Addr+uint64(i)) {
			mismatch = i
			break
		}
	}
	if mismatch < 0 {
		return nil
	}
	expVal := c.x.ReadVal(in.Addr, in.Size)
	actVal, actKnown := c.actualValue(ev.Providers, in)
	d := &DivergenceError{
		Cycle:    ev.Cycle,
		TraceIdx: idx,
		PC:       in.PC,
		Op:       in.String(),
		Byte:     mismatch,
		Expected: c.relWriter(in.Addr + uint64(mismatch)),
		Actual:   ev.Providers[mismatch],
		ExpVal:   expVal,
		ActVal:   actVal,
		ActKnown: actKnown,
	}
	var b strings.Builder
	for i := 0; i < int(in.Size); i++ {
		a := in.Addr + uint64(i)
		exp, act := c.relWriter(a), ev.Providers[i]
		marker := "  "
		if exp != act {
			marker = "!!"
		}
		fmt.Fprintf(&b, "  %s byte +%d (%#x): expected %s, pipeline used %s\n",
			marker, i, a, c.describe(exp), c.describe(act))
	}
	d.Detail = b.String()
	return d
}

// describe renders one slice-relative provider for the divergence report.
func (c *Checker) describe(p int32) string {
	if p == NoWriter {
		if c.base > 0 {
			return "initial memory (or pre-interval state)"
		}
		return "initial memory"
	}
	abs := int(p) + c.base
	if abs < c.x.tr.Len() {
		return fmt.Sprintf("store #%d (pc %#x)", abs, c.x.tr.Insts[abs].PC)
	}
	return fmt.Sprintf("store #%d (out of trace!)", abs)
}

// actualValue reconstructs the value the pipeline actually retired from its
// captured providers: bytes whose provider matches the oracle read the
// current image; initial-memory bytes read the deterministic pattern; stale
// providers are looked up in the recent-store ring. Returns ok=false when a
// provider fell out of the window (value then reported as unknown).
func (c *Checker) actualValue(prov []int32, in *isa.Inst) (uint64, bool) {
	var v uint64
	ok := true
	for i := 0; i < int(in.Size); i++ {
		a := in.Addr + uint64(i)
		var b byte
		switch p := prov[i]; {
		case p == c.relWriter(a):
			b = c.x.MemByte(a)
		case p == NoWriter:
			// The pipeline saw "initial memory" — for an interval checker
			// that is the pre-interval image (checkpoint history or the
			// deterministic pattern), for a full-trace one the pattern.
			b = c.baseByte(a)
		default:
			rb, found := c.recentByte(int32(int(p)+c.base), a)
			if !found {
				ok = false
				continue
			}
			b = rb
		}
		v ^= uint64(b) << (8 * (i % 8))
	}
	return v, ok
}

// baseByte is the architectural content of addr just before the checker's
// interval began (initial memory for a full-trace checker).
func (c *Checker) baseByte(addr uint64) byte {
	if c.x.hist != nil {
		if w, ok := c.x.hist.at(addr, c.base); ok {
			return w.val
		}
	}
	return InitByte(addr)
}

// recentByte finds the byte a recent store wrote at addr.
func (c *Checker) recentByte(idx int32, addr uint64) (byte, bool) {
	for i := len(c.recent) - 1; i >= 0; i-- {
		r := c.recent[i]
		if r.idx == idx {
			if addr < r.addr || addr >= r.addr+uint64(r.size) {
				return 0, false
			}
			return StoreByte(r.word, int(addr-r.addr)), true
		}
	}
	return 0, false
}

// pushStore appends to the bounded recent-store ring.
func (c *Checker) pushStore(r storeRec) {
	if len(c.recent) < recentStores {
		c.recent = append(c.recent, r)
		return
	}
	c.recent[c.rpos] = r
	c.rpos = (c.rpos + 1) % recentStores
}

// DivergenceError is the first point where the pipeline's retirement stream
// departed from the in-order oracle: which cycle and micro-op, which byte,
// and the expected versus actual provider and value. Reason is set for
// stream-level failures (out-of-order retirement) instead of the byte
// fields.
type DivergenceError struct {
	Cycle    uint64
	TraceIdx int
	PC       uint64
	Op       string // human-readable micro-op
	Reason   string // non-empty for stream-shape divergences

	Byte             int   // first diverging byte offset within the load
	Expected, Actual int32 // providers (trace indices, NoWriter = initial memory)
	ExpVal, ActVal   uint64
	ActKnown         bool   // ActVal reconstructed successfully
	Detail           string // per-byte provider table
}

func (e *DivergenceError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("oracle divergence at cycle %d, micro-op #%d: %s", e.Cycle, e.TraceIdx, e.Reason)
	}
	act := fmt.Sprintf("%#x", e.ActVal)
	if !e.ActKnown {
		act = "unknown (provider outside the checker window)"
	}
	return fmt.Sprintf("oracle divergence at cycle %d, micro-op #%d (%s):\n"+
		"  expected value %#x, pipeline retired %s\n%s",
		e.Cycle, e.TraceIdx, e.Op, e.ExpVal, act, e.Detail)
}
