// Package oracle is the simulator's independent architectural reference:
// a dead-simple in-order executor that replays a micro-op trace and
// computes ground-truth architectural state — register file, byte-granular
// memory image with per-byte last-writer provenance, and the committed
// value of every load — plus a retirement-stream checker (checker.go) that
// verifies an out-of-order pipeline run against it micro-op by micro-op.
//
// The timing model is "functional first, timing second": the trace fixes
// addresses and control flow architecturally, and the pipeline only decides
// *when* effects become visible. What speculation must preserve is *where
// each loaded byte's value comes from* — the youngest earlier store writing
// it, or initial memory. The oracle computes that in order, with no queues,
// no speculation and no shared code with the pipeline, so a silent
// forwarding or wakeup bug in the out-of-order model cannot also hide here.
//
// Because the trace carries no data values, the oracle defines the value
// semantics: every dynamic store writes bytes derived from its data
// register, PC and dynamic index (a per-store watermark, so distinct stores
// virtually never write identical bytes), loads assemble the bytes they
// cover, ALU results mix their operands, and untouched memory holds a
// deterministic per-address pattern. Timing parameters (latencies, machine
// geometry) never enter a value, which is exactly what makes architectural
// state comparable across predictors, cache geometries and scheduler
// widths.
package oracle

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/trace"
)

// NoWriter marks a byte still holding initial memory (never stored to).
const NoWriter int32 = -1

// mix3 is the oracle's 64-bit value mixer (splitmix64-style finalisation
// over three lanes). It only needs to be deterministic and well spread.
func mix3(a, b, c uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ bits.RotateLeft64(b, 27)*0xBF58476D1CE4E5B9 ^
		bits.RotateLeft64(c, 50)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 29
	return x
}

// InitByte is the deterministic content of never-written memory at addr.
func InitByte(addr uint64) byte {
	return byte(mix3(addr, 0xA5A5A5A5, 0) >> 56)
}

// StoreWord derives the 64-bit watermark a dynamic store writes from: its
// data-register value, its PC, and its dynamic trace index. The index keeps
// distinct dynamic stores from writing identical bytes even when their data
// registers agree, so a wrong-provider divergence is visible in the values
// too, not just the provenance.
func StoreWord(data, pc uint64, traceIdx int) uint64 {
	return mix3(data, pc, uint64(traceIdx)+1)
}

// StoreByte extracts the i-th stored byte of a store word (bytes beyond the
// first eight rehash, so arbitrary Size stays defined).
func StoreByte(word uint64, i int) byte {
	if i < 8 {
		return byte(word >> (8 * i))
	}
	return byte(mix3(word, uint64(i), 1) >> 56)
}

// foldPrime/foldOffset are FNV-1a constants for the load-value digest.
const (
	foldOffset uint64 = 14695981039346656037
	foldPrime  uint64 = 1099511628211
)

func fold(d, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		d = (d ^ (v >> (8 * i) & 0xFF)) * foldPrime
	}
	return d
}

// Exec is the in-order reference executor over one trace. The zero value is
// unusable; build with New.
type Exec struct {
	tr      *trace.Trace
	regs    [isa.NumRegs]uint64
	mem     map[uint64]byte  // byte-granular memory image (missing = InitByte)
	writers map[uint64]int32 // per-byte youngest writer (trace index)
	idx     int              // next micro-op to execute
	loads   uint64
	digest  uint64 // FNV-1a fold over (trace index, value) of every load

	// Checkpoint plumbing (checkpoint.go). hist/cut make a resumed executor
	// read pre-boundary memory through the shared immutable write history of
	// its checkpoint pass; rec, when non-nil, makes a pass record every
	// stored byte into the history it is building.
	hist *memHistory // read-through base for bytes missing from mem
	cut  int         // history cut: only writes with idx < cut are visible
	rec  *memHistory // write recorder (checkpoint passes only)
}

// New builds an executor positioned before the first micro-op.
func New(tr *trace.Trace) *Exec {
	return &Exec{
		tr:      tr,
		mem:     make(map[uint64]byte),
		writers: make(map[uint64]int32),
		digest:  foldOffset,
	}
}

// Run executes the whole trace and returns the final architectural state.
func Run(tr *trace.Trace) *Exec {
	x := New(tr)
	for x.idx < tr.Len() {
		x.Step()
	}
	return x
}

// Pos returns the index of the next micro-op to execute (equivalently, the
// number executed so far).
func (x *Exec) Pos() int { return x.idx }

// Done reports whether the whole trace has executed.
func (x *Exec) Done() bool { return x.idx >= x.tr.Len() }

// Reg returns an architectural register's current value (R0 is always 0).
func (x *Exec) Reg(r isa.Reg) uint64 { return x.regs[r] }

// MemByte returns the current architectural content of one memory byte.
// For a resumed executor, bytes it has not itself written fall through to
// the pre-boundary write history (own writes are younger and shadow it).
func (x *Exec) MemByte(addr uint64) byte {
	if b, ok := x.mem[addr]; ok {
		return b
	}
	if x.hist != nil {
		if w, ok := x.hist.at(addr, x.cut); ok {
			return w.val
		}
	}
	return InitByte(addr)
}

// WriterOf returns the trace index of the youngest store so far to have
// written addr, or NoWriter for initial memory. Resumed executors resolve
// pre-boundary writers through their checkpoint's history, like MemByte.
func (x *Exec) WriterOf(addr uint64) int32 {
	if w, ok := x.writers[addr]; ok {
		return w
	}
	if x.hist != nil {
		if w, ok := x.hist.at(addr, x.cut); ok {
			return w.idx
		}
	}
	return NoWriter
}

// Loads returns the number of loads executed so far.
func (x *Exec) Loads() uint64 { return x.loads }

// Digest returns the running fold over every executed load's (index, value)
// pair — the architectural fingerprint two runs must share to have retired
// identical results.
func (x *Exec) Digest() uint64 { return x.digest }

// ReadVal assembles the value a load of [addr, addr+size) would observe in
// the current memory image (bytes XOR-fold into a little-endian word, so
// sizes up to 8 read as plain little-endian assembly).
func (x *Exec) ReadVal(addr uint64, size uint8) uint64 {
	var v uint64
	for i := 0; i < int(size); i++ {
		v ^= uint64(x.MemByte(addr+uint64(i))) << (8 * (i % 8))
	}
	return v
}

// Step executes the next micro-op architecturally.
func (x *Exec) Step() {
	in := &x.tr.Insts[x.idx]
	idx := x.idx
	x.idx++
	switch in.Kind {
	case isa.Load:
		v := x.ReadVal(in.Addr, in.Size)
		x.setReg(in.Dst, v)
		x.loads++
		x.digest = fold(fold(x.digest, uint64(idx)), v)
	case isa.Store:
		w := StoreWord(x.regs[in.SrcB], in.PC, idx)
		for i := 0; i < int(in.Size); i++ {
			a := in.Addr + uint64(i)
			b := StoreByte(w, i)
			x.mem[a] = b
			x.writers[a] = int32(idx)
			if x.rec != nil {
				x.rec.writes[a] = append(x.rec.writes[a], memWrite{idx: int32(idx), val: b})
			}
		}
	default:
		// Any other op with a destination (ALU results, branch link
		// values, degenerate Nops with a Dst — the pipeline renames all of
		// them) writes a pure mix of its identity and operands. Latency is
		// deliberately excluded: timing must never enter a value.
		if in.Dst != 0 {
			x.setReg(in.Dst, mix3(in.PC^uint64(in.Kind)<<56, x.regs[in.SrcA], x.regs[in.SrcB]))
		}
	}
}

// setReg writes a destination register; R0 is the hard-wired none register
// and discards writes.
func (x *Exec) setReg(r isa.Reg, v uint64) {
	if r != 0 {
		x.regs[r] = v
	}
}
