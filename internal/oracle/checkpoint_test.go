package oracle

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func checkpointTrace(t *testing.T, app string, n int) *trace.Trace {
	t.Helper()
	p, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Generate(p, n, 0)
}

// TestCheckpointChain is the core resumption invariant: executing each
// interval from its boundary checkpoint must land exactly on the next
// boundary's state — registers, load count and digest — and the last
// interval on the sequential run's final digest.
func TestCheckpointChain(t *testing.T) {
	for _, app := range []string{"511.povray", "519.lbm", "502.gcc_1"} {
		t.Run(app, func(t *testing.T) {
			tr := checkpointTrace(t, app, 20000)
			bounds := []int{0, 3000, 7500, 7500, 16000, tr.Len()}
			cks, seqDigest := CheckpointPass(tr, bounds)
			if len(cks) != len(bounds) {
				t.Fatalf("got %d checkpoints, want %d", len(cks), len(bounds))
			}
			if want := Run(tr).Digest(); seqDigest != want {
				t.Fatalf("pass digest %#x differs from a plain run's %#x", seqDigest, want)
			}
			if last := cks[len(cks)-1]; last.Digest != seqDigest {
				t.Fatalf("final checkpoint digest %#x, want %#x", last.Digest, seqDigest)
			}
			for i := 0; i+1 < len(cks); i++ {
				x := Resume(tr, cks[i])
				if x.Pos() != cks[i].Idx {
					t.Fatalf("resumed at %d, want %d", x.Pos(), cks[i].Idx)
				}
				for x.Pos() < cks[i+1].Idx {
					x.Step()
				}
				next := cks[i+1]
				if x.Digest() != next.Digest {
					t.Errorf("interval [%d,%d): digest %#x, want %#x",
						cks[i].Idx, next.Idx, x.Digest(), next.Digest)
				}
				if x.Loads() != next.Loads {
					t.Errorf("interval [%d,%d): %d loads, want %d",
						cks[i].Idx, next.Idx, x.Loads(), next.Loads)
				}
				if x.regs != next.Regs {
					t.Errorf("interval [%d,%d): register file diverged", cks[i].Idx, next.Idx)
				}
			}
		})
	}
}

// TestResumeMemoryView verifies the layered memory view of a resumed
// executor: pre-boundary bytes resolve through the shared history with the
// correct writer, and the executor's own stores shadow it.
func TestResumeMemoryView(t *testing.T) {
	tr := checkpointTrace(t, "511.povray", 10000)
	mid := 5000
	cks, _ := CheckpointPass(tr, []int{mid})
	ref := New(tr)
	for ref.Pos() < mid {
		ref.Step()
	}
	x := Resume(tr, cks[0])
	// Sample the footprints of the trace's own memory ops around the
	// boundary: the resumed view must agree with a from-scratch execution.
	for i := 0; i < mid; i++ {
		in := &tr.Insts[i]
		if in.Size == 0 {
			continue
		}
		for a := in.Addr; a < in.Addr+uint64(in.Size); a++ {
			if got, want := x.MemByte(a), ref.MemByte(a); got != want {
				t.Fatalf("byte %#x: resumed %#x, reference %#x", a, got, want)
			}
			if got, want := x.WriterOf(a), ref.WriterOf(a); got != want {
				t.Fatalf("byte %#x: resumed writer %d, reference %d", a, got, want)
			}
		}
	}
	// Advance both past the boundary; own writes must shadow the history.
	for x.Pos() < tr.Len() {
		x.Step()
		ref.Step()
	}
	if x.Digest() != ref.Digest() {
		t.Fatalf("post-boundary digest %#x, reference %#x", x.Digest(), ref.Digest())
	}
}

// TestCheckpointPassRejectsBadBoundaries pins the caller contract.
func TestCheckpointPassRejectsBadBoundaries(t *testing.T) {
	tr := checkpointTrace(t, "519.lbm", 100)
	for _, bad := range [][]int{{-1}, {5, 3}, {101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("boundaries %v: expected a panic", bad)
				}
			}()
			CheckpointPass(tr, bad)
		}()
	}
}
