package oracle

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Architectural checkpoints for interval-parallel simulation (DESIGN.md
// §14). One in-order pass over the trace records every memory write in a
// shared, immutable history and captures a lightweight Checkpoint at each
// requested boundary; each interval of the trace can then be replayed by an
// Exec resumed from its boundary checkpoint, concurrently with the others.
//
// The design constraint is cost: a full memory-image copy per boundary
// would be O(boundaries × touched bytes) — for default-length runs that
// rivals the simulation itself and would erase the parallel speedup.
// Instead the pass appends each stored byte to a per-address write log
// (memHistory); a Checkpoint is then just the register file, the position
// counters and the running digest, plus a view of the shared log cut at its
// boundary index. Capturing any number of checkpoints costs one O(trace)
// pass and one log entry per stored byte, total.

// memWrite is one byte stored during the checkpoint pass: which dynamic
// store wrote it and the value. Entries for one address are in ascending
// idx order (stores execute in order during the pass).
type memWrite struct {
	idx int32
	val byte
}

// memHistory is the byte-granular write log of one in-order execution.
// Immutable once the pass finishes; resumed Execs of every interval share
// it read-only, which is what makes concurrent interval replay safe.
type memHistory struct {
	writes map[uint64][]memWrite
}

// at returns the youngest write to addr strictly before trace index cut,
// or ok=false when the byte still held initial memory there.
func (h *memHistory) at(addr uint64, cut int) (memWrite, bool) {
	log := h.writes[addr]
	// First entry with idx >= cut; its predecessor is the youngest earlier.
	i := sort.Search(len(log), func(i int) bool { return int(log[i].idx) >= cut })
	if i == 0 {
		return memWrite{}, false
	}
	return log[i-1], true
}

// Checkpoint is the complete architectural state of an in-order execution
// at a trace boundary: registers, position, load count, the running load-
// value digest, and a cut view of the pass's memory-write history. Resume
// rebuilds an equivalent executor from it; checkpoints from one
// CheckpointPass share the history and are safe to resume concurrently.
type Checkpoint struct {
	Idx    int // boundary position: micro-ops [0, Idx) have executed
	Regs   [isa.NumRegs]uint64
	Loads  uint64
	Digest uint64

	hist *memHistory
}

// CheckpointPass executes tr in order once and captures a checkpoint at
// each boundary. Boundaries must be non-decreasing values in [0, Len] —
// anything else is a caller bug and panics. The returned checkpoints are in
// boundary order; the second result is the digest of the complete run (the
// sequential ground truth interval stitching must reproduce).
func CheckpointPass(tr *trace.Trace, boundaries []int) ([]*Checkpoint, uint64) {
	n := tr.Len()
	prev := 0
	for _, b := range boundaries {
		if b < prev || b > n {
			panic(fmt.Sprintf("oracle: checkpoint boundary %d out of order or outside [0,%d]", b, n))
		}
		prev = b
	}
	rec := &memHistory{writes: map[uint64][]memWrite{}}
	x := New(tr)
	x.rec = rec
	cks := make([]*Checkpoint, 0, len(boundaries))
	bi := 0
	for {
		for bi < len(boundaries) && boundaries[bi] == x.idx {
			cks = append(cks, &Checkpoint{
				Idx: x.idx, Regs: x.regs, Loads: x.loads, Digest: x.digest,
				hist: rec,
			})
			bi++
		}
		if x.Done() {
			break
		}
		x.Step()
	}
	return cks, x.Digest()
}

// Resume builds an executor positioned at ck.Idx of tr (the same full trace
// the checkpoint pass ran). Its register file and digest are the boundary
// state; memory reads check the executor's own writes first and fall
// through to the shared pre-boundary history, so the resumed execution is
// architecturally indistinguishable from one that ran from index 0 —
// verified by the stitching gate (a resumed interval must land exactly on
// the next boundary's digest).
func Resume(tr *trace.Trace, ck *Checkpoint) *Exec {
	x := New(tr)
	x.regs = ck.Regs
	x.idx = ck.Idx
	x.loads = ck.Loads
	x.digest = ck.Digest
	x.hist = ck.hist
	x.cut = ck.Idx
	return x
}
