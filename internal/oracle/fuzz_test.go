package oracle_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fuzzTraceCap bounds fuzzed streams: long enough to fill every queue and
// force capacity stalls, short enough for thousands of executions per
// minute of fuzzing.
const fuzzTraceCap = 1500

// traceFromBytes decodes an arbitrary byte string into a well-formed
// micro-op stream: every 4-byte group becomes one micro-op, memory traffic
// lands in a 256-byte region (dense conflicts, partial overlaps), and
// call/return discipline is kept consistent. Total: any input yields a
// trace the pipeline must fully commit.
func traceFromBytes(data []byte) *trace.Trace {
	var insts []isa.Inst
	callDepth := 0
	reg := func(x byte) isa.Reg { return isa.Reg(int(x) % isa.NumRegs) }
	for i := 0; i+3 < len(data) && len(insts) < fuzzTraceCap; i += 4 {
		op, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
		pc := uint64(0x1000 + len(insts)*4)
		switch op % 8 {
		case 0, 1, 2:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.ALU, Dst: reg(a), SrcA: reg(b), SrcB: reg(c),
				Lat: 1 + op%20,
			})
		case 3, 4:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Load, Dst: reg(a), SrcA: reg(b),
				Addr: 0x8000 + uint64(b), Size: 1 << (c % 4),
			})
		case 5, 6:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Store, SrcA: reg(a), SrcB: reg(c),
				Addr: 0x8000 + uint64(b), Size: 1 << (c % 4),
			})
		default:
			switch {
			case a%4 == 0:
				insts = append(insts, isa.Inst{
					PC: pc, Kind: isa.Branch, Class: isa.Cond, SrcA: reg(b),
					Taken: c&1 == 0, Target: pc + uint64(c%64)*4,
				})
			case a%4 == 1:
				insts = append(insts, isa.Inst{
					PC: pc, Kind: isa.Branch, Class: isa.Indirect, SrcA: reg(b),
					Taken: true, Target: uint64(0x1000 + int(c)*4),
				})
			case a%4 == 2 && callDepth < 32:
				callDepth++
				insts = append(insts, isa.Inst{
					PC: pc, Kind: isa.Branch, Class: isa.Call, Taken: true, Target: pc + 4,
				})
			case callDepth > 0:
				callDepth--
				insts = append(insts, isa.Inst{
					PC: pc, Kind: isa.Branch, Class: isa.Return, Taken: true, Target: pc + 4,
				})
			default:
				insts = append(insts, isa.Inst{PC: pc, Kind: isa.Nop})
			}
		}
	}
	return &trace.Trace{Name: "fuzz", Insts: insts}
}

// FuzzPipelineTrace throws arbitrary well-formed streams at the pipeline
// with the architectural oracle attached: whatever the dataflow and memory
// shape, every configuration must commit the whole stream with
// oracle-identical results — no divergence, no deadlock, no panic. sel
// rotates the predictor, machine generation and filter mode so one corpus
// exercises the whole configuration cross product.
func FuzzPipelineTrace(f *testing.F) {
	f.Add(uint64(0), []byte("\x03\x01\x10\x02\x05\x02\x10\x02\x03\x03\x10\x03"))
	f.Add(uint64(4), []byte("store then load then branch \x05\x07\x20\x03\x03\x02\x20\x03\x07\x00\x01\x09"))
	f.Add(uint64(11), []byte{5, 1, 0x40, 3, 5, 2, 0x42, 1, 3, 3, 0x40, 3, 7, 2, 0, 0, 7, 3, 0, 0})

	machines := []func() config.Machine{config.Nehalem, config.Skylake, config.AlderLake}
	preds := []string{"phast", "storesets", "none", "perceptron-mdp", "storevector", "nosq"}
	filters := []pipeline.FilterMode{pipeline.FilterFwd, pipeline.FilterNone, pipeline.FilterSVW}

	f.Fuzz(func(t *testing.T, sel uint64, data []byte) {
		tr := traceFromBytes(data)
		if tr.Len() == 0 {
			t.Skip()
		}
		pred, err := sim.NewPredictor(preds[sel%uint64(len(preds))])
		if err != nil {
			t.Fatal(err)
		}
		opt := pipeline.DefaultOptions()
		opt.Filter = filters[(sel/8)%uint64(len(filters))]
		opt.MaxCycles = 3_000_000
		ck := oracle.NewChecker(tr)
		opt.Verify = ck.Check
		c, err := pipeline.New(machines[(sel/4)%uint64(len(machines))](), pred, opt)
		if err != nil {
			t.Fatal(err)
		}
		run, err := c.Run(tr)
		if err != nil {
			t.Fatalf("sel %d, %d µops: %v", sel, tr.Len(), err)
		}
		if run.Committed != uint64(tr.Len()) || ck.Committed() != tr.Len() {
			t.Fatalf("sel %d: committed %d, verified %d, want %d",
				sel, run.Committed, ck.Committed(), tr.Len())
		}
		if ck.Digest() != oracle.Run(tr).Digest() {
			t.Fatalf("sel %d: retired digest differs from oracle", sel)
		}
	})
}
