package tracestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/contentaddr"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace generates a small deterministic stream for upload tests.
func testTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	names := workload.Names()
	if len(names) == 0 {
		t.Fatal("no workloads registered")
	}
	prog, err := workload.ByName(names[0])
	if err != nil {
		t.Fatal(err)
	}
	return trace.Generate(prog, n, seed)
}

func encode(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countFiles returns every regular file under dir (empty if dir is absent).
func countFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return nil
		}
		if info.Mode().IsRegular() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	return out
}

func TestPutRoundTrip(t *testing.T) {
	s := New(t.TempDir(), Options{})
	tr := testTrace(t, 500, 1)
	raw := encode(t, tr)

	res, err := s.Put("alice", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != contentaddr.Sum(raw) {
		t.Fatalf("digest %s, want hash of canonical bytes %s", res.Digest, contentaddr.Sum(raw))
	}
	if res.Insts != tr.Len() || res.Bytes != int64(len(raw)) || res.Dup {
		t.Fatalf("unexpected PutResult %+v", res)
	}
	data, err := s.Get(res.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, raw) {
		t.Fatal("stored bytes differ from canonical upload")
	}
	got, err := s.Trace(res.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Name != tr.Name {
		t.Fatalf("decoded trace %s/%d, want %s/%d", got.Name, got.Len(), tr.Name, tr.Len())
	}
	// Interned: same pointer on the second read.
	again, err := s.Trace(res.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("Trace did not intern the decoded stream")
	}
	used, err := s.TenantUsage("alice")
	if err != nil {
		t.Fatal(err)
	}
	if used != res.Bytes {
		t.Fatalf("usage %d, want %d", used, res.Bytes)
	}
}

func TestPutDupDoesNotDoubleCharge(t *testing.T) {
	s := New(t.TempDir(), Options{})
	raw := encode(t, testTrace(t, 300, 1))
	first, err := s.Put("alice", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Put("alice", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Dup || second.Digest != first.Digest {
		t.Fatalf("second upload %+v, want dup of %s", second, first.Digest)
	}
	used, _ := s.TenantUsage("alice")
	if used != first.Bytes {
		t.Fatalf("usage %d after dup upload, want %d", used, first.Bytes)
	}
}

func TestPutRejectsTruncatedAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, Options{})
	raw := encode(t, testTrace(t, 400, 1))

	accepted := 0
	for name, payload := range map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOPE this is not a trace"),
		"truncated":  raw[:len(raw)/2],
		"mid-chunk":  append(append([]byte(nil), raw[:len(raw)-3]...), 0xff),
		"hdr only":   raw[:5],
		"flip kind":  corrupt(raw, len(raw)/2),
		"flip early": corrupt(raw, 6),
	} {
		_, err := s.Put("alice", bytes.NewReader(payload))
		if err == nil {
			// A mid-stream byte flip can still decode (varint payloads
			// absorb many flips) — that upload is then a legitimately
			// different stream and stores normally. What must never happen
			// is a *rejected* upload leaving files behind, checked below.
			accepted++
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v, want *FormatError", name, err)
		}
	}
	if files := countFiles(t, filepath.Join(dir, "traces")); len(files) != accepted {
		t.Fatalf("%d accepted uploads but %d stored files: %v", accepted, len(files), files)
	}
}

// corrupt returns a copy of b with the byte at i flipped.
func corrupt(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

func TestPutTooLarge(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, Options{MaxTraceBytes: 128})
	raw := encode(t, testTrace(t, 2000, 1))
	if int64(len(raw)) <= 128 {
		t.Fatalf("test trace too small: %d bytes", len(raw))
	}
	_, err := s.Put("alice", bytes.NewReader(raw))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error %v, want ErrTooLarge", err)
	}
	if files := countFiles(t, dir); len(files) != 0 {
		t.Fatalf("oversized upload left files: %v", files)
	}
}

func TestPutQuota(t *testing.T) {
	s := New(t.TempDir(), Options{})
	raw1 := encode(t, testTrace(t, 300, 1))
	raw2 := encode(t, testTrace(t, 300, 2))
	// Quota admits the first trace but not both.
	s.tenantQuota = int64(len(raw1)) + int64(len(raw2))/2
	if _, err := s.Put("alice", bytes.NewReader(raw1)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Put("alice", bytes.NewReader(raw2))
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("error %v, want ErrQuota", err)
	}
	// A different tenant has its own bucket — and shares the stored payload.
	if _, err := s.Put("bob", bytes.NewReader(raw1)); err != nil {
		t.Fatal(err)
	}
	// Re-uploading the over-quota trace still fails: dup detection is
	// per-tenant ownership, not global presence.
	if _, err := s.Put("alice", bytes.NewReader(raw2)); !errors.Is(err, ErrQuota) {
		t.Fatalf("error %v, want ErrQuota on retry", err)
	}
}

func TestQuotaSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, Options{})
	raw := encode(t, testTrace(t, 300, 1))
	res, err := s.Put("alice", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// A fresh Store over the same directory rediscovers the charge.
	s2 := New(dir, Options{})
	used, err := s2.TenantUsage("alice")
	if err != nil {
		t.Fatal(err)
	}
	if used != res.Bytes {
		t.Fatalf("restarted store sees usage %d, want %d", used, res.Bytes)
	}
	if dup, err := s2.Put("alice", bytes.NewReader(raw)); err != nil || !dup.Dup {
		t.Fatalf("restarted store re-upload: %+v, %v; want dup", dup, err)
	}
}

func TestCanonicalisationFoldsEncodings(t *testing.T) {
	// Two byte-level encodings of the same stream must land on one digest.
	// The codec itself is deterministic, so simulate a non-canonical upload
	// by decoding and re-encoding: the digests must match the direct hash.
	s := New(t.TempDir(), Options{})
	raw := encode(t, testTrace(t, 200, 1))
	tr, err := trace.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := tr.Encode(&again); err != nil {
		t.Fatal(err)
	}
	a, err := s.Put("alice", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Put("alice", bytes.NewReader(again.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || !b.Dup {
		t.Fatalf("re-encoded upload digest %s (dup=%v), want dup of %s", b.Digest, b.Dup, a.Digest)
	}
}

func TestPutCanonicalReplication(t *testing.T) {
	s := New(t.TempDir(), Options{})
	raw := encode(t, testTrace(t, 200, 1))
	digest := contentaddr.Sum(raw)
	if err := s.PutCanonical(digest, raw); err != nil {
		t.Fatal(err)
	}
	if !s.Has(digest) {
		t.Fatal("replicated trace not stored")
	}
	// Replication charges no tenant.
	if used, _ := s.TenantUsage("alice"); used != 0 {
		t.Fatalf("replication charged a tenant: %d", used)
	}
	// A lying digest is rejected.
	bad := contentaddr.Sum([]byte("other"))
	if err := s.PutCanonical(bad, raw); err == nil {
		t.Fatal("digest mismatch accepted")
	}
	// Garbage bytes under a correct self-hash are rejected by decode.
	junk := []byte("junk that is not a trace")
	if err := s.PutCanonical(contentaddr.Sum(junk), junk); err == nil {
		t.Fatal("undecodable replication payload accepted")
	}
}

func TestCorruptStoredTraceReadsAsMissing(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, Options{})
	raw := encode(t, testTrace(t, 200, 1))
	res, err := s.Put("alice", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "traces", res.Digest[:2], res.Digest+".mdpt")
	if err := os.WriteFile(path, corrupt(raw, len(raw)/2), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(res.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt entry read as %v, want ErrNotFound", err)
	}
	if _, err := s.Trace(res.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt entry decoded as %v, want ErrNotFound", err)
	}
	// Repair via replication, then Trace works again (the failed intern
	// entry must not be sticky).
	if err := s.PutCanonical(res.Digest, raw); err == nil {
		// PutCanonical skips writing when the path exists; force the repair.
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Trace(res.Digest); err != nil {
		t.Fatalf("repaired entry still failing: %v", err)
	}
}

func TestRejectedKeysNeverTouchDisk(t *testing.T) {
	s := New(t.TempDir(), Options{})
	for _, bad := range []string{"", "abc", strings.Repeat("Z", 64), "../../../../etc/passwd"} {
		if _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted", bad)
		}
		if s.Has(bad) {
			t.Errorf("Has(%q) true", bad)
		}
		if err := s.PutCanonical(bad, []byte("x")); err == nil {
			t.Errorf("PutCanonical(%q) accepted", bad)
		}
	}
	if _, err := s.Put("../evil", bytes.NewReader(nil)); err == nil {
		t.Error("path-traversal tenant accepted")
	}
}

func TestValidTenant(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want bool
	}{
		{"default", true},
		{"alice", true},
		{"team-a.prod_7", true},
		{"A1", true},
		{"", false},
		{".hidden", false},
		{"-lead", false},
		{"a/b", false},
		{"..", false},
		{strings.Repeat("a", 64), true},
		{strings.Repeat("a", 65), false},
		{"sp ace", false},
	} {
		if got := ValidTenant(tc.s); got != tc.want {
			t.Errorf("ValidTenant(%q) = %v, want %v", tc.s, got, tc.want)
		}
	}
}
