package tracestore

// DefaultTenant is the identity assumed for requests carrying no tenant
// header: single-user deployments (every smoke test before this subsystem
// existed) keep working unchanged, sharing one default quota bucket.
const DefaultTenant = "default"

// maxTenantLen bounds a tenant identifier.
const maxTenantLen = 64

// ValidTenant reports whether s is an acceptable tenant identifier:
// 1–64 characters of [a-zA-Z0-9._-], starting with an alphanumeric.
// Tenants become directory names (ownership manifests, result logs), so the
// gate plays the same role contentaddr.Valid plays for digests: an identity
// that cannot start with '.' or contain '/' cannot name dotfiles or
// traverse paths by construction.
func ValidTenant(s string) bool {
	if len(s) == 0 || len(s) > maxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alnum := c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		if i == 0 {
			if !alnum {
				return false
			}
			continue
		}
		if !alnum && c != '.' && c != '_' && c != '-' {
			return false
		}
	}
	return true
}
