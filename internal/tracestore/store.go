// Package tracestore persists uploaded micro-op traces in a
// content-addressed on-disk store, the ingestion side of the
// bring-your-own-workload service. Every upload is streamed through the
// fuzz-hardened binary decoder (trace.Decode), re-encoded canonically, and
// addressed by the SHA-256 of the canonical bytes — so the digest names the
// *stream*, not whatever byte-level encoding the uploader produced, and two
// encodings of the same trace land on one stored entry.
//
// Tenancy: each stored trace is charged once against the stored-bytes quota
// of every tenant that uploaded it (the payload itself is shared). Tenants
// are directory names; ValidTenant gates them the way contentaddr.Valid
// gates digests, so no network-supplied identity can traverse paths.
//
// Layout:
//
//	<dir>/traces/<digest[0:2]>/<digest>.mdpt    canonical trace bytes
//	<dir>/tenants/<tenant>/<digest>.json        ownership + charged bytes
//
// Writes are atomic (temp file + rename, like runcache): a crashed writer
// leaves at worst a stale temp file, never a torn trace. Reads re-hash the
// payload: a corrupt entry reads as missing, so the fleet's peer-fetch tier
// can repair it, never silently feed a damaged stream to the simulator.
package tracestore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/contentaddr"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Typed failures of the ingestion path. The server maps these onto the wire
// taxonomy: ErrTooLarge → 413, ErrQuota → 429, FormatError → 400,
// ErrNotFound → 404.
var (
	ErrTooLarge = errors.New("tracestore: trace exceeds the per-upload size cap")
	ErrQuota    = errors.New("tracestore: tenant stored-bytes quota exceeded")
	ErrNotFound = errors.New("tracestore: trace not found")
)

// FormatError wraps a trace.Decode failure on an upload: the payload is not
// a well-formed MDPT stream. It is the caller's mistake (HTTP 400), not the
// store's.
type FormatError struct{ Err error }

func (e *FormatError) Error() string { return "tracestore: invalid trace: " + e.Err.Error() }
func (e *FormatError) Unwrap() error { return e.Err }

// Defaults for Options left zero.
const (
	// DefaultMaxTraceBytes caps one upload (and one stored canonical
	// payload). 64 MiB of varint-packed stream is tens of millions of
	// micro-ops — far past the default simulation length.
	DefaultMaxTraceBytes = 64 << 20
	// DefaultTenantQuotaBytes caps one tenant's total stored canonical
	// bytes.
	DefaultTenantQuotaBytes = 256 << 20
)

// Options configures a Store.
type Options struct {
	// MaxTraceBytes caps a single upload's size, both as received and after
	// canonical re-encoding. 0 means DefaultMaxTraceBytes.
	MaxTraceBytes int64
	// TenantQuotaBytes caps a tenant's total stored canonical bytes across
	// uploads. 0 means DefaultTenantQuotaBytes; negative means unlimited.
	TenantQuotaBytes int64
}

// Store is the content-addressed trace directory. The zero Store is
// unusable; use New. All methods are safe for concurrent use.
type Store struct {
	dir         string
	maxTrace    int64
	tenantQuota int64
	metrics     atomic.Pointer[stats.Metrics]

	// mu serialises quota accounting and the usage cache. Holding it across
	// the (small) manifest writes keeps check-then-charge atomic.
	mu    sync.Mutex
	usage map[string]int64 // tenant -> charged bytes, lazily loaded from disk

	// interned decoded traces, so repeated runs by digest share one
	// immutable *trace.Trace (and its prefix structures) instead of
	// re-decoding per run. Mirrors sim's intern pool.
	intern struct {
		sync.Mutex
		entries map[string]*internEntry
		order   []string
	}
}

type internEntry struct {
	once sync.Once
	t    *trace.Trace
	err  error
}

// internCap bounds decoded traces held in memory; a full scenario mix over
// uploaded traces stays far below it.
const internCap = 16

// Counter names bumped on a registry attached via SetMetrics.
const (
	CounterPuts       = "tracestore.puts"
	CounterPutBytes   = "tracestore.put_bytes"
	CounterDupPuts    = "tracestore.dup_puts"
	CounterTooLarge   = "tracestore.rejected_too_large"
	CounterQuota      = "tracestore.rejected_quota"
	CounterBadTrace   = "tracestore.rejected_bad_trace"
	CounterCorrupt    = "tracestore.corrupt"
	CounterReplicated = "tracestore.replicated"
	CounterInternHits = "tracestore.intern_hits"
	CounterInternMiss = "tracestore.intern_misses"
)

// New returns a store rooted at dir. Directories are created lazily on
// first write, so opening a store never fails.
func New(dir string, opt Options) *Store {
	if opt.MaxTraceBytes == 0 {
		opt.MaxTraceBytes = DefaultMaxTraceBytes
	}
	switch {
	case opt.TenantQuotaBytes == 0:
		opt.TenantQuotaBytes = DefaultTenantQuotaBytes
	case opt.TenantQuotaBytes < 0:
		opt.TenantQuotaBytes = 1<<63 - 1
	}
	s := &Store{dir: dir, maxTrace: opt.MaxTraceBytes, tenantQuota: opt.TenantQuotaBytes,
		usage: map[string]int64{}}
	s.intern.entries = map[string]*internEntry{}
	return s
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// MaxTraceBytes returns the per-upload size cap.
func (s *Store) MaxTraceBytes() int64 { return s.maxTrace }

// TenantQuotaBytes returns the per-tenant stored-bytes quota.
func (s *Store) TenantQuotaBytes() int64 { return s.tenantQuota }

// SetMetrics points the store's counters at a registry. Safe to call
// concurrently with use; nil detaches.
func (s *Store) SetMetrics(m *stats.Metrics) { s.metrics.Store(m) }

func (s *Store) count(name string, delta uint64) {
	if m := s.metrics.Load(); m != nil {
		m.Add(name, delta)
	}
}

func (s *Store) tracePath(digest string) string {
	return filepath.Join(s.dir, "traces", digest[:2], digest+".mdpt")
}

func (s *Store) ownerPath(tenant, digest string) string {
	return filepath.Join(s.dir, "tenants", tenant, digest+".json")
}

// PutResult describes one accepted upload.
type PutResult struct {
	// Digest is the content address of the canonical encoding: the name the
	// trace is runnable under ("trace:<digest>").
	Digest string `json:"digest"`
	// Bytes is the stored canonical payload size (what the tenant's quota
	// was charged).
	Bytes int64 `json:"bytes"`
	// Insts is the stream length in micro-ops.
	Insts int `json:"insts"`
	// Dup reports that this tenant had already stored this trace; nothing
	// was charged.
	Dup bool `json:"dup,omitempty"`
}

// Put ingests one uploaded trace for a tenant: size-cap the stream, decode
// it (validation), re-encode canonically, charge the tenant's quota, and
// store the canonical bytes content-addressed. Failures are typed:
// ErrTooLarge, *FormatError, ErrQuota. On any failure nothing is stored and
// nothing is charged — there are no partial writes to roll back because the
// payload is validated entirely in memory before the first filesystem write.
func (s *Store) Put(tenant string, r io.Reader) (PutResult, error) {
	if !ValidTenant(tenant) {
		return PutResult{}, fmt.Errorf("tracestore: invalid tenant %q", tenant)
	}
	raw, err := io.ReadAll(io.LimitReader(r, s.maxTrace+1))
	if err != nil {
		return PutResult{}, fmt.Errorf("tracestore: reading upload: %w", err)
	}
	if int64(len(raw)) > s.maxTrace {
		s.count(CounterTooLarge, 1)
		return PutResult{}, ErrTooLarge
	}
	tr, err := trace.Decode(bytes.NewReader(raw))
	if err != nil {
		s.count(CounterBadTrace, 1)
		return PutResult{}, &FormatError{Err: err}
	}
	// Canonical re-encode: Encode is deterministic, so the digest names the
	// decoded stream regardless of how the uploader packed it. (Hashing the
	// upload bytes directly would give the same stream two addresses.)
	var canon bytes.Buffer
	if err := tr.Encode(&canon); err != nil {
		return PutResult{}, fmt.Errorf("tracestore: canonical encode: %w", err)
	}
	if int64(canon.Len()) > s.maxTrace {
		s.count(CounterTooLarge, 1)
		return PutResult{}, ErrTooLarge
	}
	digest := contentaddr.Sum(canon.Bytes())
	size := int64(canon.Len())
	res := PutResult{Digest: digest, Bytes: size, Insts: tr.Len()}

	s.mu.Lock()
	defer s.mu.Unlock()
	used, err := s.usageLocked(tenant)
	if err != nil {
		return PutResult{}, err
	}
	if _, err := os.Stat(s.ownerPath(tenant, digest)); err == nil {
		res.Dup = true
		s.count(CounterDupPuts, 1)
		return res, nil
	}
	if used+size > s.tenantQuota {
		s.count(CounterQuota, 1)
		return PutResult{}, fmt.Errorf("%w (used %d + %d > %d)", ErrQuota, used, size, s.tenantQuota)
	}
	if err := s.writeTrace(digest, canon.Bytes()); err != nil {
		return PutResult{}, err
	}
	manifest := fmt.Sprintf("{\"digest\":%q,\"bytes\":%d}\n", digest, size)
	if err := atomicWrite(s.ownerPath(tenant, digest), []byte(manifest)); err != nil {
		return PutResult{}, err
	}
	s.usage[tenant] = used + size
	s.count(CounterPuts, 1)
	s.count(CounterPutBytes, uint64(size))
	return res, nil
}

// PutCanonical stores already-canonical trace bytes under their claimed
// digest — the fleet replication path (a peer pushing or this node pulling
// a trace it does not own). The bytes are re-hashed and decode-validated;
// no tenant is charged. Storing an already-present digest is a no-op.
func (s *Store) PutCanonical(digest string, data []byte) error {
	if !contentaddr.Valid(digest) {
		return fmt.Errorf("tracestore: invalid digest %q", digest)
	}
	if int64(len(data)) > s.maxTrace {
		s.count(CounterTooLarge, 1)
		return ErrTooLarge
	}
	if got := contentaddr.Sum(data); got != digest {
		s.count(CounterCorrupt, 1)
		return fmt.Errorf("tracestore: payload hashes to %s, not claimed digest %s", got, digest)
	}
	if _, err := trace.Decode(bytes.NewReader(data)); err != nil {
		s.count(CounterBadTrace, 1)
		return &FormatError{Err: err}
	}
	if _, err := os.Stat(s.tracePath(digest)); err == nil {
		return nil
	}
	if err := s.writeTrace(digest, data); err != nil {
		return err
	}
	s.count(CounterReplicated, 1)
	return nil
}

// writeTrace persists canonical bytes atomically (temp + rename). Already
// present entries are left alone: content addressing makes overwrites
// pointless.
func (s *Store) writeTrace(digest string, data []byte) error {
	dst := s.tracePath(digest)
	if _, err := os.Stat(dst); err == nil {
		return nil
	}
	return atomicWrite(dst, data)
}

// atomicWrite writes data to dst via a temp file + rename in dst's
// directory, creating parents as needed.
func atomicWrite(dst string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+filepath.Base(dst)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Get returns the canonical bytes stored under digest. A missing entry is
// ErrNotFound; so is a corrupt one (payload no longer hashing to its
// address) — the caller falls back to the peer tier, which can repair it.
func (s *Store) Get(digest string) ([]byte, error) {
	if !contentaddr.Valid(digest) {
		return nil, fmt.Errorf("tracestore: invalid digest %q", digest)
	}
	data, err := os.ReadFile(s.tracePath(digest))
	if err != nil {
		return nil, ErrNotFound
	}
	if contentaddr.Sum(data) != digest {
		s.count(CounterCorrupt, 1)
		return nil, ErrNotFound
	}
	return data, nil
}

// Has reports whether digest is stored locally (without reading the
// payload).
func (s *Store) Has(digest string) bool {
	if !contentaddr.Valid(digest) {
		return false
	}
	_, err := os.Stat(s.tracePath(digest))
	return err == nil
}

// Trace returns the decoded stream stored under digest, interned so
// concurrent and repeated runs share one immutable *trace.Trace.
func (s *Store) Trace(digest string) (*trace.Trace, error) {
	s.intern.Lock()
	e, ok := s.intern.entries[digest]
	if ok {
		s.count(CounterInternHits, 1)
	} else {
		s.count(CounterInternMiss, 1)
		e = &internEntry{}
		if len(s.intern.order) >= internCap {
			delete(s.intern.entries, s.intern.order[0])
			s.intern.order = s.intern.order[1:]
		}
		s.intern.entries[digest] = e
		s.intern.order = append(s.intern.order, digest)
	}
	s.intern.Unlock()
	e.once.Do(func() {
		data, err := s.Get(digest)
		if err != nil {
			e.err = err
			return
		}
		e.t, e.err = trace.Decode(bytes.NewReader(data))
	})
	if e.err != nil {
		// Drop the failed entry so a later fetch can retry after the peer
		// tier repairs the store.
		s.intern.Lock()
		if s.intern.entries[digest] == e {
			delete(s.intern.entries, digest)
			for i, d := range s.intern.order {
				if d == digest {
					s.intern.order = append(s.intern.order[:i], s.intern.order[i+1:]...)
					break
				}
			}
		}
		s.intern.Unlock()
		return nil, e.err
	}
	return e.t, nil
}

// TenantUsage returns a tenant's charged stored bytes.
func (s *Store) TenantUsage(tenant string) (int64, error) {
	if !ValidTenant(tenant) {
		return 0, fmt.Errorf("tracestore: invalid tenant %q", tenant)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usageLocked(tenant)
}

// usageLocked returns the tenant's charged bytes, scanning the on-disk
// manifests on first touch (so a restarted node keeps enforcing quotas).
func (s *Store) usageLocked(tenant string) (int64, error) {
	if used, ok := s.usage[tenant]; ok {
		return used, nil
	}
	var used int64
	entries, err := os.ReadDir(filepath.Join(s.dir, "tenants", tenant))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.usage[tenant] = 0
			return 0, nil
		}
		return 0, err
	}
	for _, ent := range entries {
		digest, ok := strings.CutSuffix(ent.Name(), ".json")
		if !ok || !contentaddr.Valid(digest) {
			continue // stray temp file or foreign junk
		}
		// Charge the actual stored payload size; the manifest is only a
		// marker. A manifest whose trace vanished charges nothing.
		if fi, err := os.Stat(s.tracePath(digest)); err == nil {
			used += fi.Size()
		}
	}
	s.usage[tenant] = used
	return used, nil
}
