package tracestore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ResultLog is the persistent per-tenant results store: an append-only
// JSONL file per tenant, where a record's sequence number is its 1-based
// line number. Appends are serialised in-process and written as single
// lines, so readers never observe a torn record; a restarted node resumes
// numbering by counting existing lines.
//
// Layout: <dir>/<tenant>.jsonl
type ResultLog struct {
	dir string

	mu   sync.Mutex
	seqs map[string]int64 // tenant -> last assigned seq, lazily counted
}

// NewResultLog returns a log rooted at dir, created lazily on first append.
func NewResultLog(dir string) *ResultLog {
	return &ResultLog{dir: dir, seqs: map[string]int64{}}
}

// Dir returns the log's root directory.
func (l *ResultLog) Dir() string { return l.dir }

func (l *ResultLog) path(tenant string) string {
	return filepath.Join(l.dir, tenant+".jsonl")
}

// ResultEntry is one logged record with its sequence number, the pagination
// cursor for GET /v1/results.
type ResultEntry struct {
	Seq    int64           `json:"seq"`
	Record json.RawMessage `json:"record"`
}

// Append marshals rec onto the tenant's log and returns its sequence
// number. rec must marshal to a single JSON value (it is stored compactly
// on one line).
func (l *ResultLog) Append(tenant string, rec any) (int64, error) {
	if !ValidTenant(tenant) {
		return 0, fmt.Errorf("tracestore: invalid tenant %q", tenant)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("tracestore: marshal result: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	last, err := l.lastSeqLocked(tenant)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return 0, err
	}
	f, err := os.OpenFile(l.path(tenant), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	l.seqs[tenant] = last + 1
	return last + 1, nil
}

// maxListLimit caps one List page.
const maxListLimit = 1000

// List returns up to limit records with Seq > after, in order. limit <= 0
// or > 1000 means 1000. A tenant with no log lists empty, not an error.
func (l *ResultLog) List(tenant string, after int64, limit int) ([]ResultEntry, error) {
	if !ValidTenant(tenant) {
		return nil, fmt.Errorf("tracestore: invalid tenant %q", tenant)
	}
	if limit <= 0 || limit > maxListLimit {
		limit = maxListLimit
	}
	f, err := os.Open(l.path(tenant))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []ResultEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var seq int64
	for sc.Scan() {
		seq++
		if seq <= after {
			continue
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		out = append(out, ResultEntry{Seq: seq, Record: json.RawMessage(append([]byte(nil), line...))})
		if len(out) >= limit {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// lastSeqLocked returns the tenant's last assigned sequence number,
// counting existing lines on first touch.
func (l *ResultLog) lastSeqLocked(tenant string) (int64, error) {
	if seq, ok := l.seqs[tenant]; ok {
		return seq, nil
	}
	f, err := os.Open(l.path(tenant))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			l.seqs[tenant] = 0
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var seq int64
	for sc.Scan() {
		seq++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	l.seqs[tenant] = seq
	return seq, nil
}
