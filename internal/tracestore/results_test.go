package tracestore

import (
	"testing"
)

type rec struct {
	App string `json:"app"`
	N   int    `json:"n"`
}

func TestResultLogAppendAndList(t *testing.T) {
	l := NewResultLog(t.TempDir())
	for i := 1; i <= 5; i++ {
		seq, err := l.Append("alice", rec{App: "a", N: i})
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Fatalf("seq %d, want %d", seq, i)
		}
	}
	if seq, err := l.Append("bob", rec{App: "b", N: 1}); err != nil || seq != 1 {
		t.Fatalf("bob's first seq %d (%v), want 1", seq, err)
	}

	all, err := l.List("alice", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 || all[0].Seq != 1 || all[4].Seq != 5 {
		t.Fatalf("full list %v", all)
	}
	page, err := l.List("alice", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 2 || page[0].Seq != 3 || page[1].Seq != 4 {
		t.Fatalf("page after=2 limit=2: %v", page)
	}
	rest, err := l.List("alice", 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0].Seq != 5 {
		t.Fatalf("tail page: %v", rest)
	}
	empty, err := l.List("nobody", 0, 0)
	if err != nil || len(empty) != 0 {
		t.Fatalf("unknown tenant: %v, %v", empty, err)
	}
}

func TestResultLogSeqSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l := NewResultLog(dir)
	for i := 0; i < 3; i++ {
		if _, err := l.Append("alice", rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	l2 := NewResultLog(dir)
	seq, err := l2.Append("alice", rec{N: 99})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("restarted log assigned seq %d, want 4", seq)
	}
	entries, err := l2.List("alice", 3, 0)
	if err != nil || len(entries) != 1 || entries[0].Seq != 4 {
		t.Fatalf("restarted list: %v, %v", entries, err)
	}
}

func TestResultLogRejectsBadTenant(t *testing.T) {
	l := NewResultLog(t.TempDir())
	if _, err := l.Append("../evil", rec{}); err == nil {
		t.Fatal("path-traversal tenant accepted for append")
	}
	if _, err := l.List("../evil", 0, 0); err == nil {
		t.Fatal("path-traversal tenant accepted for list")
	}
}
