package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/trace"
)

// randomTrace builds a random-but-well-formed micro-op stream: arbitrary
// dataflow over the register file, overlapping memory traffic in a small
// region (to force conflicts, partial overlaps and multi-store shapes), and
// branches of every class with a consistent call stack.
func randomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	var insts []isa.Inst
	var callDepth int
	for len(insts) < n {
		pc := uint64(0x1000 + len(insts)*4)
		switch r := rng.Intn(100); {
		case r < 35:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.ALU,
				Dst:  isa.Reg(rng.Intn(isa.NumRegs)),
				SrcA: isa.Reg(rng.Intn(isa.NumRegs)),
				SrcB: isa.Reg(rng.Intn(isa.NumRegs)),
				Lat:  uint8(1 + rng.Intn(20)),
			})
		case r < 60:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Load,
				Dst:  isa.Reg(rng.Intn(isa.NumRegs)),
				SrcA: isa.Reg(rng.Intn(isa.NumRegs)),
				Addr: uint64(0x8000 + rng.Intn(256)),
				Size: uint8(1 << rng.Intn(4)),
			})
		case r < 80:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Store,
				SrcA: isa.Reg(rng.Intn(isa.NumRegs)),
				SrcB: isa.Reg(rng.Intn(isa.NumRegs)),
				Addr: uint64(0x8000 + rng.Intn(256)),
				Size: uint8(1 << rng.Intn(4)),
			})
		case r < 90:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Branch, Class: isa.Cond,
				SrcA:   isa.Reg(rng.Intn(isa.NumRegs)),
				Taken:  rng.Intn(2) == 0,
				Target: pc + uint64(rng.Intn(64))*4,
			})
		case r < 94:
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Branch, Class: isa.Indirect,
				SrcA: isa.Reg(rng.Intn(isa.NumRegs)), Taken: true,
				Target: uint64(0x1000 + rng.Intn(4096)*4),
			})
		case r < 97 && callDepth < 32:
			callDepth++
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Branch, Class: isa.Call, Taken: true,
				Target: pc + 4,
			})
		case r < 99 && callDepth > 0:
			callDepth--
			insts = append(insts, isa.Inst{
				PC: pc, Kind: isa.Branch, Class: isa.Return, Taken: true,
				Target: pc + 4,
			})
		default:
			insts = append(insts, isa.Inst{PC: pc, Kind: isa.Nop})
		}
	}
	return &trace.Trace{Name: "random", Insts: insts}
}

// TestRandomTracesAllPredictorsAllFilters is the robustness sweep: arbitrary
// well-formed streams must always commit completely, in order, without
// deadlock, under every predictor and every filter mode, and the oracle must
// stay violation-free wherever the forwarding filter is active.
func TestRandomTracesAllPredictorsAllFilters(t *testing.T) {
	preds := func() []mdp.Predictor {
		return []mdp.Predictor{
			mdp.NewIdeal(), mdp.NewNone(), mdp.NewAlwaysWait(),
			mdp.NewStoreSets(mdp.DefaultStoreSetsConfig()),
			mdp.NewNoSQ(mdp.DefaultNoSQConfig()),
			mdp.NewMDPTAGE(mdp.ShortMDPTAGEConfig()),
			mdp.DefaultStoreVector(), mdp.DefaultCHT(), mdp.DefaultPerceptronMDP(),
			corePHAST(),
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		tr := randomTrace(seed, 4000)
		for _, filter := range []FilterMode{FilterFwd, FilterNone, FilterSVW} {
			for _, p := range preds() {
				opt := DefaultOptions()
				opt.Filter = filter
				opt.MaxCycles = 3_000_000
				c, err := New(config.AlderLake(), p, opt)
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(tr)
				if err != nil {
					t.Fatalf("seed %d filter %d %s: %v", seed, filter, p.Name(), err)
				}
				if res.Committed != 4000 {
					t.Fatalf("seed %d filter %d %s: committed %d",
						seed, filter, p.Name(), res.Committed)
				}
				if p.Name() == "ideal" && filter == FilterFwd && res.MemOrderViolations != 0 {
					t.Errorf("seed %d: oracle violated %d times", seed, res.MemOrderViolations)
				}
			}
		}
	}
}

// TestRandomTraceOnSmallMachines: the random streams must also survive the
// tight queues of the oldest generation (capacity-stall paths).
func TestRandomTraceOnSmallMachines(t *testing.T) {
	tr := randomTrace(99, 6000)
	for _, m := range []config.Machine{config.Nehalem(), config.Skylake()} {
		c, err := New(m, mdp.NewStoreSets(mdp.DefaultStoreSetsConfig()), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(tr)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.Committed != 6000 {
			t.Fatalf("%s: committed %d", m.Name, res.Committed)
		}
	}
}
