package pipeline

import (
	"fmt"

	"repro/internal/histutil"
	"repro/internal/isa"
	"repro/internal/mdp"
)

// fetchStage fetches, decodes and dispatches up to the front-end width of
// micro-ops per cycle from the correct-path stream, allocating ROB/IQ/LQ/SQ
// entries, renaming sources, predicting branches (first fetch only — a
// squash restores checkpointed front-end state rather than re-training), and
// asking the MDP for a decision on every load.
func (c *Core) fetchStage() {
	if c.cycle < c.fetchBlockedTil {
		return
	}
	if c.fetchStallSeq != 0 {
		// Waiting on an unresolved mispredicted branch.
		if c.fetchStallSeq < c.headSeq {
			c.fetchStallSeq = 0 // resolved and committed while we waited
		} else if e := c.entry(c.fetchStallSeq); e.state == stIssued {
			c.fetchBlockedTil = e.doneAt + uint64(c.cfg.RedirectPenalty)
			c.fetchStallSeq = 0
			return
		} else {
			return
		}
	}
	width := c.cfg.FetchWidth
	for i := 0; i < width && c.nextFetch < c.tr.Len(); i++ {
		in := &c.tr.Insts[c.nextFetch]
		if c.robFull() || c.iqCount >= c.cfg.IQ {
			break
		}
		if in.IsLoad() && c.lqCount >= c.cfg.LQ {
			break
		}
		if in.IsStore() && c.sqCount >= c.cfg.SQ {
			break
		}
		if i == 0 {
			// One instruction-cache access per fetch group.
			if done := c.mem.Fetch(c.cycle, in.PC); done > c.cycle+uint64(c.cfg.L1I.HitLatency) {
				c.fetchBlockedTil = done
				return
			}
		}
		c.dispatch(in, c.nextFetch)
		firstFetch := c.nextFetch > c.maxFetched
		if firstFetch {
			c.maxFetched = c.nextFetch
		}
		c.nextFetch++
		if in.IsBranch() {
			if in.Divergent() {
				c.decodeHist.Push(histEntryOf(in))
			}
			// The branch predictor trains once per static occurrence; after
			// a squash the front end restores its checkpointed state rather
			// than re-training (and correct-path refetches redirect cheaply).
			if firstFetch && c.bp.PredictAndTrain(in) {
				c.fetchStallSeq = c.tailSeq - 1 // the branch just dispatched
				return
			}
		}
	}
}

// histEntryOf builds the 7-bit divergent-branch history record of §IV-A2.
func histEntryOf(in *isa.Inst) histutil.Entry {
	dest := in.Target
	if !in.Taken {
		dest = in.PC + 4
	}
	return histutil.NewEntry(in.Class.IndirectTarget(), in.Taken, dest)
}

// dispatch allocates and renames one micro-op.
func (c *Core) dispatch(in *isa.Inst, traceIdx int) {
	seq := c.tailSeq
	c.tailSeq++
	e := c.entry(seq)
	*e = robEntry{
		inst:     in,
		seq:      seq,
		traceIdx: traceIdx,
	}
	if in.SrcA != 0 {
		e.srcASeq = c.lastWriter[in.SrcA]
	}
	if in.SrcB != 0 {
		e.srcBSeq = c.lastWriter[in.SrcB]
	}
	if in.Dst != 0 {
		c.lastWriter[in.Dst] = seq
	}
	c.run.Fetched++

	switch in.Kind {
	case isa.Nop:
		e.state = stIssued
		e.doneAt = c.cycle
	case isa.Load:
		c.iqCount++
		c.lqCount++
		e.branchCount = uint64(c.divPrefix[traceIdx])
		e.storeCount = uint64(c.stPrefix[traceIdx])
		ld := mdp.LoadInfo{
			PC:          in.PC,
			Seq:         seq,
			BranchCount: e.branchCount,
			StoreCount:  e.storeCount,
		}
		ld.OracleDep, ld.OracleDist = c.oracleDep(e)
		e.pred = c.pred.Predict(ld, c.decodeHist)
	case isa.Store:
		c.iqCount++
		c.sqCount++
		e.branchCount = uint64(c.divPrefix[traceIdx])
		e.storeIndex = uint64(c.stPrefix[traceIdx])
		e.ssWaitSeq = c.pred.StoreDispatch(mdp.StoreInfo{
			PC: in.PC, Seq: seq, BranchCount: e.branchCount, StoreIndex: e.storeIndex,
		})
		c.sq = append(c.sq, seq)
	default:
		c.iqCount++
	}
}

// issueStage wakes up and selects ready micro-ops, oldest first, limited by
// the machine's load, store and compute ports.
func (c *Core) issueStage() {
	aluPorts := c.cfg.IssuePorts - c.cfg.LoadPorts - c.cfg.StorePorts
	loads, storesP, alu, total := 0, 0, 0, 0
	if c.firstUnissued < c.headSeq {
		c.firstUnissued = c.headSeq
	}
	if c.firstUnissued > c.tailSeq {
		c.firstUnissued = c.tailSeq
	}
	// Advance past the leading fully-issued prefix once, then scan with a
	// direct ring index (the per-entry modulo dominates the profile).
	robLen := uint64(len(c.rob))
	for c.firstUnissued < c.tailSeq && c.rob[c.firstUnissued%robLen].state == stIssued {
		c.firstUnissued++
	}
	pos := c.firstUnissued % robLen
	for seq := c.firstUnissued; seq < c.tailSeq; seq++ {
		e := &c.rob[pos]
		pos++
		if pos == robLen {
			pos = 0
		}
		if total >= c.cfg.IssuePorts {
			break
		}
		if e.state == stIssued {
			continue
		}
		switch e.inst.Kind {
		case isa.ALU, isa.Branch:
			if alu >= aluPorts || !c.srcsReady(e) {
				continue
			}
			lat := int(e.inst.Lat)
			if lat < 1 {
				lat = 1
			}
			e.state = stIssued
			e.doneAt = c.cycle + uint64(lat)
			c.iqCount--
			c.run.IssuedUops++
			alu++
			total++
		case isa.Store:
			c.tryStore(e, &storesP, &total)
		case isa.Load:
			if loads >= c.cfg.LoadPorts || !c.srcsReady(e) {
				continue
			}
			if c.gateBlocked(e) {
				e.waited = true
				continue
			}
			if c.tryLoad(e) {
				loads++
				total++
			}
		}
	}
}

// tryStore advances a store through its two phases: address generation
// (needs the address register, a store port, and any Store Sets
// serialisation to clear) and data readiness (the data register's producer).
// The store completes when both are done.
func (c *Core) tryStore(e *robEntry, storesP *int, total *int) {
	if !e.addrResolved {
		if *storesP >= c.cfg.StorePorts {
			return
		}
		if !c.producerReady(e.srcASeq) {
			return
		}
		// Store Sets serialisation. Sequence numbers are reused after a
		// squash, so a stale last-fetched-store id can alias this store or a
		// younger one; only a strictly older live store is a valid
		// serialisation target (anything else would deadlock the pair).
		if w := e.ssWaitSeq; w != 0 && w >= c.headSeq && w < e.seq {
			if we := c.entry(w); we.inst.IsStore() && (we.state != stIssued || c.cycle < we.doneAt) {
				return // serialised behind an older store of the set
			}
		}
		e.addrResolved = true
		e.addrDoneAt = c.cycle + 1
		*storesP++
		*total++
		c.resolveStore(e)
	}
	if e.addrResolved && c.producerReady(e.srcBSeq) {
		e.state = stIssued
		e.doneAt = e.addrDoneAt
		if c.cycle > e.doneAt {
			e.doneAt = c.cycle
		}
		c.iqCount--
		c.run.IssuedUops++
	}
}

// commitStage retires up to the commit width in order. A load flagged with a
// memory order violation squashes here (lazy squash) after training the
// predictor with the true youngest conflicting store.
func (c *Core) commitStage() {
	for n := 0; n < c.cfg.CommitWidth && !c.robEmpty(); n++ {
		e := c.entry(c.headSeq)
		if e.state != stIssued || c.cycle < e.doneAt {
			return
		}
		if e.traceIdx != c.nextCommitIdx {
			panic(fmt.Sprintf("pipeline: commit order broken: committing trace index %d, expected %d",
				e.traceIdx, c.nextCommitIdx))
		}
		in := e.inst
		if in.IsLoad() && c.opt.Filter == FilterSVW && !e.violated {
			c.svwCheckLoad(e) // sets the violation fields on failure
		}
		if in.IsLoad() && e.violated {
			c.commitViolation(e)
			return
		}
		if in.IsStore() {
			if len(c.sb) >= c.cfg.SQ {
				return // store buffer full: commit stalls
			}
			c.sb = append(c.sb, sbEntry{seq: e.seq, storeIndex: e.storeIndex, addr: in.Addr, size: in.Size})
			c.noteCommittedStore(e)
			c.pred.StoreCommit(mdp.StoreInfo{
				PC: in.PC, Seq: e.seq, BranchCount: e.branchCount, StoreIndex: e.storeIndex,
			})
			if len(c.sq) == 0 || c.sq[0] != e.seq {
				panic("pipeline: store queue out of sync at commit")
			}
			c.sq = c.sq[1:]
			c.sqCount--
			c.run.Stores++
		}
		if in.IsLoad() {
			c.commitLoad(e)
		}
		if in.Divergent() {
			c.commitHist.Push(histEntryOf(in))
		}
		c.run.Committed++
		c.nextCommitIdx++
		c.headSeq++
	}
}

// commitLoad audits a successfully committing load's prediction.
func (c *Core) commitLoad(e *robEntry) {
	c.lqCount--
	c.run.Loads++
	if e.fwdFrom != 0 {
		c.run.Forwards++
	}
	out := c.outcomeOf(e, false)
	if out.Waited {
		if out.TrueDep {
			c.run.TrueDependencies++
		} else {
			c.run.FalseDependencies++
		}
	}
	c.pred.TrainCommit(c.loadInfoOf(e), out, c.commitHist)
}

// commitViolation trains the predictor with the detected conflict and
// squashes the violating load and everything younger.
func (c *Core) commitViolation(e *robEntry) {
	c.run.MemOrderViolations++
	if !e.trainedAtDetect {
		out := c.outcomeOf(e, true)
		dist := mdp.DistanceOf(c.loadInfoOf(e), e.violStore)
		c.pred.TrainViolation(c.loadInfoOf(e), e.violStore, dist, out, c.commitHist)
	}
	c.squash(e.seq, e.traceIdx)
}

func (c *Core) loadInfoOf(e *robEntry) mdp.LoadInfo {
	return mdp.LoadInfo{
		PC:          e.inst.PC,
		Seq:         e.seq,
		BranchCount: e.branchCount,
		StoreCount:  e.storeCount,
	}
}

// outcomeOf classifies a load's prediction at commit. A waited load is a
// true dependence if the store it waited for overlaps its footprint (for
// store-set style waits: if any older store did).
func (c *Core) outcomeOf(e *robEntry, violated bool) mdp.Outcome {
	out := mdp.Outcome{Pred: e.pred, Violated: violated, Waited: e.waited}
	if e.waited {
		switch e.pred.Kind {
		case mdp.Distance, mdp.StoreSeq:
			out.TrueDep = e.waitValid && isa.Overlap(e.waitAddr, e.waitSize, e.inst.Addr, e.inst.Size)
		case mdp.WaitAll, mdp.Vector:
			out.TrueDep = e.fwdFrom != 0
		}
	}
	if e.fwdFrom != 0 {
		out.ActualDep = true
	}
	if violated {
		out.ActualDep = true
		out.ActualDist = mdp.DistanceOf(c.loadInfoOf(e), e.violStore)
	}
	return out
}

// squash discards the violating load and all younger micro-ops, restores the
// rename state from the surviving entries, and redirects fetch to the load.
func (c *Core) squash(fromSeq uint64, traceIdx int) {
	c.run.SquashedUops += c.tailSeq - fromSeq
	c.tailSeq = fromSeq
	// Truncate the store queue to surviving stores.
	cut := len(c.sq)
	for cut > 0 && c.sq[cut-1] >= fromSeq {
		cut--
	}
	c.sq = c.sq[:cut]
	// Rebuild rename table and occupancy counters from survivors.
	for r := range c.lastWriter {
		c.lastWriter[r] = 0
	}
	c.iqCount, c.lqCount, c.sqCount = 0, 0, 0
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		e := c.entry(seq)
		if e.inst.Dst != 0 {
			c.lastWriter[e.inst.Dst] = seq
		}
		if e.state != stIssued {
			c.iqCount++
		}
		switch e.inst.Kind {
		case isa.Load:
			c.lqCount++
		case isa.Store:
			c.sqCount++
		}
	}
	if c.firstUnissued > c.tailSeq {
		c.firstUnissued = c.tailSeq
	}
	c.nextFetch = traceIdx
	c.fetchStallSeq = 0
	c.fetchBlockedTil = c.cycle + uint64(c.cfg.RedirectPenalty)
	// Rewind the decode-time history to the squash point (checkpoint
	// restore): it must hold exactly the divergent branches older than the
	// re-fetched instruction, or re-dispatched loads predict with future
	// branches in their context.
	k := int(c.divPrefix[traceIdx])
	lo := k - c.decodeHist.Cap()
	if lo < 0 {
		lo = 0
	}
	c.decodeHist.ResetTo(c.divEntries[lo:k], uint64(k))
}

// drainStoreBuffer writes committed stores to the cache and frees their
// store buffer entries.
func (c *Core) drainStoreBuffer() {
	started := 0
	for i := range c.sb {
		if c.sb[i].drainStart {
			continue
		}
		if started >= c.cfg.SBDrainPerCycle {
			break
		}
		c.sb[i].drainStart = true
		c.sb[i].drainedAt = c.mem.StoreDrain(c.cycle, c.sb[i].addr)
		started++
	}
	// Free fully drained entries from the front.
	n := 0
	for n < len(c.sb) && c.sb[n].drainStart && c.cycle >= c.sb[n].drainedAt {
		n++
	}
	if n > 0 {
		c.sb = c.sb[n:]
	}
}
