package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/trace"
)

// fetchStage fetches, decodes and dispatches up to the front-end width of
// micro-ops per cycle from the correct-path stream, allocating ROB/IQ/LQ/SQ
// entries, renaming sources, predicting branches (first fetch only — a
// squash restores checkpointed front-end state rather than re-training), and
// asking the MDP for a decision on every load.
func (c *Core) fetchStage() {
	if c.cycle < c.fetchBlockedTil {
		return
	}
	if c.fetchStallSeq != 0 {
		// Waiting on an unresolved mispredicted branch.
		if c.fetchStallSeq < c.headSeq {
			c.fetchStallSeq = 0 // resolved and committed while we waited
		} else if e := c.entry(c.fetchStallSeq); e.state == stIssued {
			c.fetchBlockedTil = e.doneAt + uint64(c.cfg.RedirectPenalty)
			c.fetchStallSeq = 0
			return
		} else {
			return
		}
	}
	width := c.cfg.FetchWidth
	for i := 0; i < width && c.nextFetch < c.tr.Len(); i++ {
		in := &c.tr.Insts[c.nextFetch]
		if c.robFull() || c.iqCount >= c.cfg.IQ {
			break
		}
		if in.IsLoad() && c.lqCount >= c.cfg.LQ {
			break
		}
		if in.IsStore() && c.sqCount >= c.cfg.SQ {
			break
		}
		if i == 0 {
			// One instruction-cache access per fetch group.
			if done := c.mem.Fetch(c.cycle, in.PC); done > c.cycle+uint64(c.cfg.L1I.HitLatency) {
				c.fetchBlockedTil = done
				return
			}
		}
		c.dispatch(in, c.nextFetch)
		firstFetch := c.nextFetch > c.maxFetched
		if firstFetch {
			c.maxFetched = c.nextFetch
		}
		c.nextFetch++
		if in.IsBranch() {
			if in.Divergent() {
				c.decodeHist.Push(trace.EntryOf(in))
			}
			// The branch predictor trains once per static occurrence; after
			// a squash the front end restores its checkpointed state rather
			// than re-training (and correct-path refetches redirect cheaply).
			if firstFetch && c.bp.PredictAndTrain(in) {
				c.fetchStallSeq = c.tailSeq - 1 // the branch just dispatched
				return
			}
		}
	}
}

// dispatch allocates and renames one micro-op.
func (c *Core) dispatch(in *isa.Inst, traceIdx int) {
	seq := c.tailSeq
	c.tailSeq++
	e := c.entry(seq)
	*e = robEntry{
		inst:     in,
		seq:      seq,
		traceIdx: traceIdx,
		kind:     in.Kind,
	}
	if in.SrcA != 0 {
		e.srcASeq = c.lastWriter[in.SrcA]
	}
	if in.SrcB != 0 {
		e.srcBSeq = c.lastWriter[in.SrcB]
	}
	if in.Dst != 0 {
		c.lastWriter[in.Dst] = seq
	}
	c.readyAt[seq&c.robMask] = 0
	c.run.Fetched++

	switch in.Kind {
	case isa.Nop:
		e.state = stIssued
		e.doneAt = c.cycle
		c.readyAt[seq&c.robMask] = e.doneAt + 1
	case isa.Load:
		c.iqCount++
		c.lqCount++
		e.branchCount = uint64(c.pre.Div[traceIdx])
		e.storeCount = uint64(c.pre.St[traceIdx])
		ld := mdp.LoadInfo{
			PC:          in.PC,
			Seq:         seq,
			BranchCount: e.branchCount,
			StoreCount:  e.storeCount,
		}
		if c.needOracle {
			ld.OracleDep, ld.OracleDist = c.oracleDep(e)
		}
		e.pred = c.pred.Predict(ld, c.decodeHist)
	case isa.Store:
		c.iqCount++
		c.sqCount++
		e.branchCount = uint64(c.pre.Div[traceIdx])
		e.storeIndex = uint64(c.pre.St[traceIdx])
		e.ssWaitSeq = c.pred.StoreDispatch(mdp.StoreInfo{
			PC: in.PC, Seq: seq, BranchCount: e.branchCount, StoreIndex: e.storeIndex,
		})
		c.sqPush(seq)
		c.sqLines.add(in.Addr, in.Size)
	default:
		c.iqCount++
	}
}

// issueStage wakes up and selects ready micro-ops, oldest first, limited by
// the machine's load, store and compute ports.
//
// Entries with a pending retry bound are skipped without evaluation: retryAt
// is always a lower bound on the first cycle the entry's blocking condition
// can clear (producer doneAt is immutable once issued; unissued producers
// are older, already scanned, and need ≥1 cycle of latency), and memory-
// dependent blocks additionally re-evaluate whenever memEpoch advances.
// Skipping therefore never changes which cycle an entry issues in — it only
// removes provably fruitless wake-up evaluations. Port-limited entries never
// set a retry bound (port availability is not predictable).
func (c *Core) issueStage() {
	aluPorts := c.cfg.IssuePorts - c.cfg.LoadPorts - c.cfg.StorePorts
	loads, storesP, alu, total := 0, 0, 0, 0
	if c.firstUnissued < c.headSeq {
		c.firstUnissued = c.headSeq
	}
	if c.firstUnissued > c.tailSeq {
		c.firstUnissued = c.tailSeq
	}
	// Advance past the leading fully-issued prefix once, then scan with a
	// direct ring index (the per-entry modulo dominates the profile).
	for c.firstUnissued < c.tailSeq && c.rob[c.firstUnissued&c.robMask].state == stIssued {
		c.firstUnissued++
	}
	// runStart tracks an open run of issued entries; when the run closes its
	// extent is recorded in skipTo so the next cycle jumps it in one step
	// (sequence numbers start at 1, so 0 is a safe "no run" sentinel).
	runStart := uint64(0)
	seq := c.firstUnissued
	for seq < c.tailSeq {
		if total >= c.cfg.IssuePorts {
			break
		}
		pos := seq & c.robMask
		if s := c.skipTo[pos]; s > seq {
			if runStart == 0 {
				runStart = seq
			}
			seq = s
			continue
		}
		e := &c.rob[pos]
		if e.state == stIssued {
			if runStart == 0 {
				runStart = seq
			}
			seq++
			continue
		}
		if runStart != 0 {
			c.skipTo[runStart&c.robMask] = seq
			runStart = 0
		}
		seq++
		if c.cycle < e.retryAt && e.retryEpoch == c.memEpoch {
			continue
		}
		switch e.kind {
		case isa.ALU, isa.Branch:
			if !c.srcsReady(e) {
				a := c.srcReadyAt(e.srcASeq)
				if b := c.srcReadyAt(e.srcBSeq); b > a {
					a = b
				}
				c.setRetry(e, a)
				continue
			}
			if alu >= aluPorts {
				continue
			}
			lat := int(e.inst.Lat)
			if lat < 1 {
				lat = 1
			}
			e.state = stIssued
			e.doneAt = c.cycle + uint64(lat)
			c.readyAt[e.seq&c.robMask] = e.doneAt + 1
			c.iqCount--
			c.run.IssuedUops++
			alu++
			total++
		case isa.Store:
			c.tryStore(e, &storesP, &total)
		case isa.Load:
			if !c.srcsReady(e) {
				a := c.srcReadyAt(e.srcASeq)
				if b := c.srcReadyAt(e.srcBSeq); b > a {
					a = b
				}
				c.setRetry(e, a)
				continue
			}
			if loads >= c.cfg.LoadPorts {
				continue
			}
			if c.gateBlocked(e) {
				e.waited = true
				continue
			}
			if c.tryLoad(e) {
				loads++
				total++
			}
		}
	}
	if runStart != 0 {
		c.skipTo[runStart&c.robMask] = seq
	}
}

// tryStore advances a store through its two phases: address generation
// (needs the address register, a store port, and any Store Sets
// serialisation to clear) and data readiness (the data register's producer).
// The store completes when both are done.
func (c *Core) tryStore(e *robEntry, storesP *int, total *int) {
	if !e.addrResolved {
		if !c.producerReady(e.srcASeq) {
			c.setRetry(e, c.srcReadyAt(e.srcASeq))
			return
		}
		if *storesP >= c.cfg.StorePorts {
			return
		}
		// Store Sets serialisation. Sequence numbers are reused after a
		// squash, so a stale last-fetched-store id can alias this store or a
		// younger one; only a strictly older live store is a valid
		// serialisation target (anything else would deadlock the pair).
		if w := e.ssWaitSeq; w != 0 && w >= c.headSeq && w < e.seq {
			if we := c.entry(w); we.inst.IsStore() && (we.state != stIssued || c.cycle < we.doneAt) {
				c.setRetry(e, c.storeDoneBound(we))
				return // serialised behind an older store of the set
			}
		}
		e.addrResolved = true
		e.addrDoneAt = c.cycle + 1
		*storesP++
		*total++
		// The resolved address can change any blocked load's SQ search.
		c.memEpoch++
		c.resolveStore(e)
	}
	if e.addrResolved && !c.producerReady(e.srcBSeq) {
		c.setRetry(e, c.srcReadyAt(e.srcBSeq))
		return
	}
	e.state = stIssued
	e.doneAt = e.addrDoneAt
	if c.cycle > e.doneAt {
		e.doneAt = c.cycle
	}
	c.readyAt[e.seq&c.robMask] = e.doneAt + 1
	c.iqCount--
	c.run.IssuedUops++
}

// commitStage retires up to the commit width in order. A load flagged with a
// memory order violation squashes here (lazy squash) after training the
// predictor with the true youngest conflicting store.
func (c *Core) commitStage() {
	for n := 0; n < c.cfg.CommitWidth && !c.robEmpty(); n++ {
		e := c.entry(c.headSeq)
		if e.state != stIssued || c.cycle < e.doneAt {
			return
		}
		if e.traceIdx != c.nextCommitIdx {
			panic(fmt.Sprintf("pipeline: commit order broken: committing trace index %d, expected %d",
				e.traceIdx, c.nextCommitIdx))
		}
		in := e.inst
		if e.kind == isa.Load && c.opt.Filter == FilterSVW && !e.violated {
			c.svwCheckLoad(e) // sets the violation fields on failure
		}
		if e.kind == isa.Load && e.violated {
			c.commitViolation(e)
			return
		}
		if e.kind == isa.Store {
			if c.sbLen >= c.cfg.SQ {
				return // store buffer full: commit stalls
			}
			c.sbPush(sbEntry{seq: e.seq, storeIndex: e.storeIndex, traceIdx: e.traceIdx, addr: in.Addr, size: in.Size})
			c.sbLines.add(in.Addr, in.Size)
			c.noteCommittedStore(e)
			c.pred.StoreCommit(mdp.StoreInfo{
				PC: in.PC, Seq: e.seq, BranchCount: e.branchCount, StoreIndex: e.storeIndex,
			})
			if c.sqLen == 0 || c.sqSeqAt(0) != e.seq {
				panic("pipeline: store queue out of sync at commit")
			}
			c.sqPopFront()
			c.sqLines.remove(in.Addr, in.Size)
			c.sqCount--
			c.run.Stores++
		}
		if e.kind == isa.Load {
			c.commitLoad(e)
		}
		if in.Divergent() {
			c.commitHist.Push(trace.EntryOf(in))
		}
		if c.opt.Verify != nil {
			if err := c.verifyCommit(e); err != nil {
				c.verifyErr = err
				return
			}
		}
		c.run.Committed++
		c.nextCommitIdx++
		c.headSeq++
	}
}

// commitLoad audits a successfully committing load's prediction.
func (c *Core) commitLoad(e *robEntry) {
	c.lqCount--
	c.ldLines.remove(e.inst.Addr, e.inst.Size)
	c.run.Loads++
	if e.fwdFrom != 0 {
		c.run.Forwards++
	}
	out := c.outcomeOf(e, false)
	if out.Waited {
		if out.TrueDep {
			c.run.TrueDependencies++
		} else {
			c.run.FalseDependencies++
		}
	}
	c.pred.TrainCommit(c.loadInfoOf(e), out, c.commitHist)
}

// commitViolation trains the predictor with the detected conflict and
// squashes the violating load and everything younger.
func (c *Core) commitViolation(e *robEntry) {
	c.run.MemOrderViolations++
	if !e.trainedAtDetect {
		out := c.outcomeOf(e, true)
		dist := mdp.DistanceOf(c.loadInfoOf(e), e.violStore)
		c.pred.TrainViolation(c.loadInfoOf(e), e.violStore, dist, out, c.commitHist)
	}
	c.squash(e.seq, e.traceIdx)
}

func (c *Core) loadInfoOf(e *robEntry) mdp.LoadInfo {
	return mdp.LoadInfo{
		PC:          e.inst.PC,
		Seq:         e.seq,
		BranchCount: e.branchCount,
		StoreCount:  e.storeCount,
	}
}

// outcomeOf classifies a load's prediction at commit. A waited load is a
// true dependence if the store it waited for overlaps its footprint (for
// store-set style waits: if any older store did).
func (c *Core) outcomeOf(e *robEntry, violated bool) mdp.Outcome {
	out := mdp.Outcome{Pred: e.pred, Violated: violated, Waited: e.waited}
	if e.waited {
		switch e.pred.Kind {
		case mdp.Distance, mdp.StoreSeq:
			out.TrueDep = e.waitValid && isa.Overlap(e.waitAddr, e.waitSize, e.inst.Addr, e.inst.Size)
		case mdp.WaitAll, mdp.Vector:
			out.TrueDep = e.fwdFrom != 0
		}
	}
	if e.fwdFrom != 0 {
		out.ActualDep = true
	}
	if violated {
		out.ActualDep = true
		out.ActualDist = mdp.DistanceOf(c.loadInfoOf(e), e.violStore)
	}
	return out
}

// squash discards the violating load and all younger micro-ops, restores the
// rename state from the surviving entries, and redirects fetch to the load.
func (c *Core) squash(fromSeq uint64, traceIdx int) {
	c.run.SquashedUops += c.tailSeq - fromSeq
	c.tailSeq = fromSeq
	// Recorded issued runs may span squashed sequence numbers that are about
	// to be re-dispatched unissued; drop them all (squashes are rare).
	clear(c.skipTo)
	// Truncate the store queue to surviving stores, releasing their line
	// filter counts (the discarded entries' contents are intact until their
	// seqs are re-dispatched).
	for c.sqLen > 0 {
		last := c.entry(c.sqSeqAt(c.sqLen - 1))
		if last.seq < fromSeq {
			break
		}
		c.sqLines.remove(last.inst.Addr, last.inst.Size)
		c.sqLen--
	}
	// Purge squashed loads from the executed-load list eagerly: their seqs
	// are about to be reused. Stale entries of already-committed loads
	// (seq < headSeq ≤ fromSeq) stay for lazy removal and were already
	// removed from the line filter at commit.
	live := c.execLoads[:0]
	for _, seq := range c.execLoads {
		if seq >= fromSeq {
			ld := c.entry(seq)
			c.ldLines.remove(ld.inst.Addr, ld.inst.Size)
			continue
		}
		live = append(live, seq)
	}
	c.execLoads = live
	// Conservatively wake every retry-parked survivor: squashes are rare
	// and the stale bounds are all still valid, but re-deriving them is
	// cheaper to reason about than proving it across the rewind.
	c.memEpoch++
	// Rebuild rename table and occupancy counters from survivors.
	for r := range c.lastWriter {
		c.lastWriter[r] = 0
	}
	c.iqCount, c.lqCount, c.sqCount = 0, 0, 0
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		e := c.entry(seq)
		if e.inst.Dst != 0 {
			c.lastWriter[e.inst.Dst] = seq
		}
		if e.state != stIssued {
			c.iqCount++
		}
		switch e.kind {
		case isa.Load:
			c.lqCount++
		case isa.Store:
			c.sqCount++
		}
	}
	if c.firstUnissued > c.tailSeq {
		c.firstUnissued = c.tailSeq
	}
	c.nextFetch = traceIdx
	c.fetchStallSeq = 0
	c.fetchBlockedTil = c.cycle + uint64(c.cfg.RedirectPenalty)
	// Rewind the decode-time history to the squash point (checkpoint
	// restore): it must hold exactly the divergent branches older than the
	// re-fetched instruction, or re-dispatched loads predict with future
	// branches in their context.
	k := int(c.pre.Div[traceIdx])
	lo := k - c.decodeHist.Cap()
	if lo < 0 {
		lo = 0
	}
	c.decodeHist.ResetTo(c.pre.DivEntries[lo:k], uint64(k))
}

// drainStoreBuffer writes committed stores to the cache and frees their
// store buffer entries. Drains start in order from the front, so the
// started entries always form a prefix tracked by sbStarted — no scan.
func (c *Core) drainStoreBuffer() {
	for started := 0; c.sbStarted < c.sbLen && started < c.cfg.SBDrainPerCycle; started++ {
		e := c.sbAt(c.sbStarted)
		e.drainStart = true
		e.drainedAt = c.mem.StoreDrain(c.cycle, e.addr)
		c.sbStarted++
	}
	// Free fully drained entries from the front.
	freed := false
	for c.sbLen > 0 {
		e := c.sbAt(0)
		if !e.drainStart || c.cycle < e.drainedAt {
			break
		}
		if c.vdrained != nil {
			c.noteDrained(e)
		}
		c.sbLines.remove(e.addr, e.size)
		c.sbHead = (c.sbHead + 1) & c.sbMask
		c.sbLen--
		c.sbStarted--
		freed = true
	}
	if freed {
		// A freed entry can unblock loads partially covered by it.
		c.memEpoch++
	}
}
