package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/mdp"
)

// TestTrainAtDetectRuns: the §IV-A1 ablation must preserve the core
// invariants (full commit, determinism) while changing training dynamics.
func TestTrainAtDetectRuns(t *testing.T) {
	tr := appTrace(t, "511.povray", 30000)
	opt := DefaultOptions()
	opt.TrainAtDetect = true
	r := run(t, tr, corePHAST(), opt)
	if r.res.Committed != 30000 {
		t.Errorf("committed %d", r.res.Committed)
	}
	// The predictor must still learn: far fewer violations than 'none'.
	none := run(t, tr, mdp.NewNone(), opt)
	if r.res.MemOrderViolations*4 > none.res.MemOrderViolations {
		t.Errorf("PHAST@detect %d violations vs none %d — not learning",
			r.res.MemOrderViolations, none.res.MemOrderViolations)
	}
}

// TestMaxCyclesGuard: a pathological configuration must return an error
// rather than spin forever.
func TestMaxCyclesGuard(t *testing.T) {
	tr := appTrace(t, "519.lbm", 5000)
	opt := DefaultOptions()
	opt.MaxCycles = 10 // absurdly small
	c, err := New(config.AlderLake(), mdp.NewIdeal(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(tr); err == nil {
		t.Error("tiny cycle budget should trip the guard")
	}
}

// TestBadBranchPredictorOption: unknown predictor names fail at New.
func TestBadBranchPredictorOption(t *testing.T) {
	opt := DefaultOptions()
	opt.BranchPredictor = "psychic"
	if _, err := New(config.AlderLake(), mdp.NewIdeal(), opt); err == nil {
		t.Error("unknown branch predictor should fail")
	}
}
