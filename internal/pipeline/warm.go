package pipeline

import (
	"context"
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Functional warm-up for interval-parallel simulation (DESIGN.md §14). A
// core about to simulate an interval of a stream first runs the preceding
// warm-up window through the ordinary cycle loop, heating the state that a
// mid-stream core would have learned — MDP tables, the branch direction
// predictor, cache arrays — then rewinds the per-trace state so the
// measured run starts at the boundary exactly like a fresh run would,
// reporting only its own slice's counters.

// warmBase is the component-counter snapshot finalizeStats subtracts (see
// Core.base). The fields mirror the cumulative counters finalizeStats
// reads; everything else in stats.Run is per-RunContext already.
type warmBase struct {
	cycles                uint64
	branches, mispredicts uint64
	predReads, predWrites uint64
	l1dHits, l1dMisses    uint64
	l2Hits, l2Misses      uint64
	l3Hits, l3Misses      uint64
}

// WarmContext simulates warm (the micro-ops immediately preceding a
// measured slice) to heat the core's learned structures, then resets the
// per-trace state so the next RunContext starts a fresh measured run:
//
//   - Kept: predictor tables, branch predictor, cache arrays (including
//     in-flight fills — the cycle clock keeps advancing so their absolute
//     completion cycles stay meaningful), SVW filter state, and the
//     monotonic sequence numbers (committed producers must stay readable
//     as "ready" — producerReady treats seq < headSeq as architectural).
//   - Reset: the trace binding and its prefix structures (divergent-branch
//     and store prefix counts are slice-local — squash rebuilds history
//     from them, so histories must restart with the measured slice), the
//     rename table, fetch/commit cursors, and the verification drain map
//     (a following verified run must see warm-written bytes as initial
//     memory, matching oracle.NewIntervalChecker's provider translation).
//   - Snapshotted: cumulative component counters, so finalizeStats reports
//     the measured slice alone.
//
// The warm-up runs with verification disabled — its commits precede the
// interval the checker knows about. The store buffer is drained to empty
// before the boundary so the measured run never orders its stores behind
// invisible warm-up traffic it could not account.
//
// A zero-length warm trace only snapshots (fresh cores have zero baselines,
// so the first interval of a parallel plan behaves like an ordinary run).
func (c *Core) WarmContext(ctx context.Context, warm *trace.Trace) error {
	if warm.Len() > 0 {
		verify := c.opt.Verify
		c.opt.Verify = nil
		_, err := c.RunContext(ctx, warm)
		c.opt.Verify = verify
		if err != nil {
			return fmt.Errorf("pipeline: warm-up run: %w", err)
		}
		if err := c.settleStoreBuffer(); err != nil {
			return err
		}
		c.resetTraceState()
	}
	c.snapshotBase()
	return nil
}

// settleStoreBuffer advances the clock until every committed store has
// drained into the cache hierarchy. RunContext returns at full retirement,
// which can leave drains in flight; the boundary must not.
func (c *Core) settleStoreBuffer() error {
	start := c.cycle
	for c.sbLen > 0 {
		c.cycle++
		if c.cycle-start > c.opt.WatchdogCycles {
			return &DeadlockError{Cycle: c.cycle, Budget: c.opt.WatchdogCycles,
				CommitIdx: c.nextCommitIdx, TraceLen: 0, Dump: c.stateDump()}
		}
		c.drainStoreBuffer()
	}
	return nil
}

// resetTraceState rewinds everything bound to the warm trace while keeping
// the learned structures and the monotonic clock/sequence state. The warm
// run retired completely and the store buffer is settled, so all queues are
// empty — this only clears cursors, histories and scratch state.
func (c *Core) resetTraceState() {
	if c.tailSeq != c.headSeq || c.sqLen != 0 || c.sbLen != 0 || c.iqCount+c.lqCount+c.sqCount != 0 {
		panic("pipeline: warm-up ended with in-flight state")
	}
	c.tr, c.pre = nil, nil
	c.decodeHist.Reset()
	c.commitHist.Reset()
	c.scratchHist.Reset()
	c.scratchK = 0
	c.lastWriter = [isa.NumRegs]uint64{}
	c.execLoads = c.execLoads[:0]
	c.matchBuf = c.matchBuf[:0]
	clear(c.skipTo)
	clear(c.readyAt)
	c.firstUnissued = c.headSeq
	c.nextFetch, c.maxFetched = 0, 0
	c.fetchBlockedTil, c.fetchStallSeq = 0, 0
	c.nextCommitIdx = 0
	if c.vdrained != nil {
		clear(c.vdrained)
		for i := range c.vprov {
			c.vprov[i] = c.vprov[i][:0]
		}
	}
	c.verifyErr = nil
}

// snapshotBase records the cumulative component counters at the boundary.
func (c *Core) snapshotBase() {
	reads, writes := c.pred.Accesses()
	c.base = warmBase{
		cycles:      c.cycle,
		branches:    c.bp.Branches,
		mispredicts: c.bp.Mispredicts,
		predReads:   reads,
		predWrites:  writes,
		l1dHits:     c.mem.L1D.Hits,
		l1dMisses:   c.mem.L1D.Misses,
		l2Hits:      c.mem.L2.Hits,
		l2Misses:    c.mem.L2.Misses,
		l3Hits:      c.mem.L3.Hits,
		l3Misses:    c.mem.L3.Misses,
	}
}
