package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/mdp"
)

func activateFaults(t *testing.T, spec string) {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Activate(p))
}

// TestRunContextCancelled pins the cancellation latency contract: a run
// whose context is already cancelled aborts within one watchdog period and
// reports the context error, not a result.
func TestRunContextCancelled(t *testing.T) {
	tr := appTrace(t, "511.povray", 50_000)
	c, err := New(config.AlderLake(), mdp.NewIdeal(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunContext(ctx, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestChaosStallTripsWatchdog wedges the pipeline with an injected stall and
// asserts the zero-retirement watchdog converts the hang into a
// DeadlockError carrying a usable pipeline-state dump.
func TestChaosStallTripsWatchdog(t *testing.T) {
	activateFaults(t, "stall=1,seed=1")
	tr := appTrace(t, "511.povray", 20_000)
	opt := DefaultOptions()
	opt.WatchdogCycles = 8192 // small budget: the test should take microseconds
	c, err := New(config.AlderLake(), mdp.NewIdeal(), opt)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := c.RunContext(context.Background(), tr)
	var de *DeadlockError
	if !errors.As(rerr, &de) {
		t.Fatalf("want *DeadlockError, got %T: %v", rerr, rerr)
	}
	if de.Budget != opt.WatchdogCycles {
		t.Errorf("Budget = %d, want %d", de.Budget, opt.WatchdogCycles)
	}
	if de.Cycle == 0 || de.CommitIdx < 0 || de.TraceLen != tr.Len() {
		t.Errorf("implausible deadlock location: %+v", de)
	}
	for _, want := range []string{"pipeline state", "ROB", "queues:", "fetch:"} {
		if !strings.Contains(de.Dump, want) {
			t.Errorf("dump lacks %q:\n%s", want, de.Dump)
		}
	}
	if !strings.Contains(rerr.Error(), "no commit for 8192 cycles") {
		t.Errorf("error message should name the exhausted budget: %v", rerr)
	}
}

// TestWatchdogQuietOnHealthyRun guards against false positives: a normal run
// with a tight-but-sufficient watchdog budget completes.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	tr := appTrace(t, "511.povray", 20_000)
	opt := DefaultOptions()
	opt.WatchdogCycles = 8192
	c, err := New(config.AlderLake(), mdp.NewIdeal(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunContext(context.Background(), tr); err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
}

// TestMaxCyclesDeadlockCarriesDump upgrades the old MaxCycles guard: the
// absolute ceiling now also reports a typed DeadlockError with a dump.
func TestMaxCyclesDeadlockCarriesDump(t *testing.T) {
	activateFaults(t, "stall=1,seed=1")
	tr := appTrace(t, "511.povray", 20_000)
	opt := DefaultOptions()
	opt.MaxCycles = 4096 // below the watchdog budget: the ceiling fires first
	opt.WatchdogCycles = 1 << 30
	c, err := New(config.AlderLake(), mdp.NewIdeal(), opt)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := c.RunContext(context.Background(), tr)
	var de *DeadlockError
	if !errors.As(rerr, &de) {
		t.Fatalf("want *DeadlockError, got %T: %v", rerr, rerr)
	}
	if de.Budget != 0 {
		t.Errorf("ceiling deadlock must report Budget 0, got %d", de.Budget)
	}
	if !strings.Contains(de.Dump, "pipeline state") {
		t.Errorf("ceiling deadlock lacks a dump:\n%v", rerr)
	}
}
