// Package pipeline implements the cycle-level out-of-order core timing
// model: fetch/dispatch, rename, oldest-first issue over load/store/compute
// ports, a load queue and store queue with store-to-load forwarding, a
// post-commit store buffer that drains into the cache hierarchy, eager
// squash for branch mispredictions (front-end bubbles in this trace-driven
// model), and lazy squash for memory order violations, with the forwarding
// filter of the paper's §IV-A1.
//
// The model is functional-first/timing-second: the architectural correct-
// path stream comes from package trace, and the core decides when each
// micro-op's effects become visible. On a memory-order-violation squash the
// core re-dispatches the stream from the violating load. Wrong-path
// micro-ops are not simulated; mispredictions cost redirect bubbles (see
// DESIGN.md §3 for why this substitution preserves the predictor ranking).
//
// Hot-path structure (see DESIGN.md §10): the issue scan skips entries whose
// wake-up condition provably cannot clear yet (retryAt / retryEpoch), the
// store-queue, store-buffer and load-queue searches are gated by per-cache-
// line occupancy filters so non-overlapping accesses never scan, and the
// steady state performs no heap allocations (fixed rings for SQ/SB, a
// bounded executed-load list, reused scratch buffers).
package pipeline

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/faultinject"
	"repro/internal/histutil"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options select core behaviours independent of the machine configuration.
type Options struct {
	// Filter selects the mis-speculation filtering mechanism: the paper's
	// §IV-A1 forwarding filter (default), no filtering (the Fig. 12 "No
	// FWD" ablation), or NoSQ's SVW/SSBF commit-time verification (§VII).
	Filter FilterMode
	// BranchPredictor names the direction predictor (default "tagescl").
	BranchPredictor string
	// HistCap is the divergent-branch history register capacity
	// (default 2048, covering MDP-TAGE's 2000-branch histories).
	HistCap int
	// TrainAtDetect trains the predictor when a mispeculation is detected
	// (at store address resolution) instead of at commit — the §IV-A1
	// ablation. Early training can learn stores that are not the youngest
	// conflicting one (Fig. 3d) and paths that never commit.
	TrainAtDetect bool
	// MaxCycles aborts runaway simulations (default 400M).
	MaxCycles uint64
	// WatchdogCycles is the zero-retirement budget: if no micro-op commits
	// for this many cycles the run aborts with a DeadlockError carrying a
	// pipeline-state dump (default 2M — two orders of magnitude above the
	// longest legitimate commit stall, a DRAM-latency chain). The check is
	// quantised to watchdogPeriod cycles.
	WatchdogCycles uint64
	// Verify, when non-nil, receives every retiring micro-op (see
	// CommitEvent in verify.go) so an external oracle can check the
	// architectural retirement stream; a non-nil return aborts the run with
	// that error. Nil (the default) costs the hot path nothing. Options
	// with a Verify callback are not comparable — pool cores by
	// Options.Key() instead.
	Verify CommitCheck
}

// DefaultOptions returns the options every headline experiment uses.
func DefaultOptions() Options {
	return Options{Filter: FilterFwd, BranchPredictor: "tagescl", HistCap: 2048}
}

type entryState uint8

const (
	stDispatched entryState = iota
	stIssued
)

// neverRetry marks an entry whose wake-up has no computable time bound; it
// is woken only by a memory event advancing memEpoch.
const neverRetry = ^uint64(0)

// robEntry is one in-flight micro-op.
type robEntry struct {
	inst     *isa.Inst
	seq      uint64
	traceIdx int
	kind     isa.Kind // cached inst.Kind (avoids the pointer chase at issue)
	state    entryState
	doneAt   uint64 // completion cycle, valid once issued

	srcASeq, srcBSeq uint64 // producing sequence numbers (0 = ready)

	// Issue-skip state: while cycle < retryAt and retryEpoch still matches
	// the core's memEpoch, the issue scan skips this entry — its blocking
	// condition provably cannot have cleared (see issueStage).
	retryAt    uint64
	retryEpoch uint64

	// Memory ops.
	branchCount uint64 // decode-time divergent-branch counter copy
	storeCount  uint64 // stores dispatched before this op (loads)
	storeIndex  uint64 // global store allocation index (stores)

	// Stores.
	addrResolved bool
	addrDoneAt   uint64
	ssWaitSeq    uint64 // Store Sets same-set serialisation

	// Loads.
	pred            mdp.Prediction
	waited          bool
	waitAddr        uint64 // footprint of the store the load waited for
	waitSize        uint8
	waitValid       bool
	fwdFrom         uint64 // forwarding store seq (0 = none)
	fwdStoreIndex   uint64 // store allocation index of the forwarder (SVW)
	svwSSN          uint64 // committed-store count at execute (SVW)
	executed        bool
	executedAt      uint64
	violated        bool
	violStore       mdp.StoreInfo
	trainedAtDetect bool
}

// lineBuckets is the size of the per-cache-line occupancy filters. Each
// filter counts, per 64-byte-line hash bucket, how many queue entries touch
// that line; a zero bucket proves no entry overlaps an address in it, so the
// associated queue scan can be skipped entirely. Counting (not set-bit)
// filters support exact removal at commit/squash/drain.
const lineBuckets = 256

type lineFilter [lineBuckets]uint16

func (f *lineFilter) add(addr uint64, size uint8) {
	if size == 0 {
		return
	}
	for l := addr >> 6; l <= (addr+uint64(size)-1)>>6; l++ {
		f[l&(lineBuckets-1)]++
	}
}

func (f *lineFilter) remove(addr uint64, size uint8) {
	if size == 0 {
		return
	}
	for l := addr >> 6; l <= (addr+uint64(size)-1)>>6; l++ {
		f[l&(lineBuckets-1)]--
	}
}

// mayOverlap reports whether any tracked footprint might overlap
// [addr, addr+size). False is exact (no overlap possible): two overlapping
// footprints share a byte, hence that byte's line bucket.
func (f *lineFilter) mayOverlap(addr uint64, size uint8) bool {
	if size == 0 {
		return false
	}
	for l := addr >> 6; l <= (addr+uint64(size)-1)>>6; l++ {
		if f[l&(lineBuckets-1)] != 0 {
			return true
		}
	}
	return false
}

// Core is a single simulated out-of-order core.
type Core struct {
	cfg  config.Machine
	opt  Options
	mem  *cache.Hierarchy
	bp   *bpred.Unit
	pred mdp.Predictor

	// needOracle gates the exact SQ scan feeding LoadInfo's oracle fields:
	// only predictors declaring NeedsOracle (the Ideal oracle) consume them.
	needOracle bool

	decodeHist *histutil.Reg
	commitHist *histutil.Reg
	// scratchHist reconstructs a load's exact history for detect-time
	// training (the §IV-A1 ablation); it carries no registered folds.
	// scratchK memoises the divergent-branch count it currently holds, so
	// consecutive training events replay only the delta instead of
	// rebuilding all HistCap entries.
	scratchHist *histutil.Reg
	scratchK    int

	tr *trace.Trace
	// pre holds the trace's precomputed divergent-branch/store prefix
	// counts and history entries, shared across every run of the trace.
	pre *trace.Prefixes

	// ROB ring: entries hold seqs [headSeq, tailSeq). The ring is sized to
	// the next power of two above the architectural capacity (robCap) so
	// entry lookup is a mask instead of a modulo.
	rob     []robEntry
	robMask uint64
	robCap  uint64
	headSeq uint64
	tailSeq uint64

	lastWriter [isa.NumRegs]uint64

	iqCount, lqCount, sqCount int

	// sq is a fixed-capacity ring of the ROB seqs of in-flight stores,
	// oldest first.
	sq     []uint64
	sqHead int
	sqLen  int
	sqMask int
	// sb is the post-commit store buffer, a fixed-capacity ring.
	sb     []sbEntry
	sbHead int
	sbLen  int
	sbMask int
	// sbStarted counts the leading sb entries whose drain has started
	// (starts happen in order from the front, so they form a prefix).
	sbStarted int

	// Per-cache-line occupancy filters over the in-flight footprints:
	// dispatched stores (SQ), store-buffer entries, and executed uncommitted
	// loads. They gate the associative searches in memdep.go.
	sqLines lineFilter
	sbLines lineFilter
	ldLines lineFilter

	// execLoads lists the seqs of executed, uncommitted loads — the only
	// candidates a resolving store must check. Entries of committed loads
	// are removed lazily (swap-delete during scans or compaction); squashed
	// entries are purged eagerly (their seqs get reused).
	execLoads []uint64
	// matchBuf is resolveStore's reusable candidate buffer.
	matchBuf []uint64

	// SVW state (Options.Filter == FilterSVW).
	svw             *ssbf
	storeRing       []committedStore
	committedStores uint64

	cycle uint64

	// memEpoch advances on every event that can change the outcome of a
	// blocked memory-dependent issue check (a store resolving its address, a
	// store-buffer entry freeing). Entries whose retryEpoch is stale are
	// re-evaluated regardless of retryAt.
	memEpoch uint64

	// firstUnissued is the oldest sequence number that may still need to
	// issue; the issue scan starts here instead of at the ROB head.
	firstUnissued uint64

	// skipTo[seq&robMask] > seq records that every entry in [seq, skipTo)
	// was issued when the value was written; the issue scan jumps over the
	// run instead of re-touching each entry's cache line. Issued entries
	// stay issued until commit, so a recorded run only becomes wrong when a
	// squash rewinds tailSeq and re-dispatches those sequence numbers —
	// squash clears the array. Values surviving from a previous ring lap
	// are ignored: a run can extend at most ROB entries past its writer, so
	// a stale value is never greater than the sequence now occupying the
	// slot.
	skipTo []uint64

	// readyAt[seq&robMask] mirrors the slot's issue state compactly so
	// producer-readiness checks touch a 4KB array instead of a ~100-byte
	// ROB entry per probe: 0 while unissued, doneAt+1 once issued (the +1
	// keeps a cycle-0 completion distinguishable from "not issued").
	// Dispatch rewrites the slot, so stale values from committed or
	// squashed occupants are never read for an in-flight sequence.
	readyAt []uint64

	// Fetch state.
	nextFetch       int // next trace index to fetch
	maxFetched      int // highest trace index ever fetched (history dedup)
	fetchBlockedTil uint64
	fetchStallSeq   uint64 // unresolved mispredicted branch (0 = none)

	nextCommitIdx int // invariant: commits follow trace order

	// Verification state, allocated only when opt.Verify != nil (see
	// verify.go): per-ROB-slot provider captures, the per-byte last-drained-
	// store map, the reused commit event, and the first checker error.
	vprov     [][]int32
	vdrained  map[uint64]int32
	vev       CommitEvent
	verifyErr error

	// base snapshots the cumulative component counters (clock, branch
	// predictor, MDP traffic, cache hierarchy) at a warm-up/measure
	// boundary; finalizeStats subtracts it so a warm-started run reports
	// the measured slice alone. Zero for ordinary runs (see WarmContext).
	base warmBase

	// fiFwdFlip is the per-run fault-injection decision for
	// faultinject.FaultFwdFlip: the §IV-A1 forwarding-filter condition is
	// flipped so every conflicting load is wrongly deemed already-correct
	// (no violation is ever flagged). Exists to prove the verification
	// oracle detects a silent forwarding bug.
	fiFwdFlip bool

	run stats.Run
}

type sbEntry struct {
	seq        uint64
	storeIndex uint64
	traceIdx   int // dynamic trace index (forwarding provenance for verify)
	addr       uint64
	size       uint8
	drainedAt  uint64
	drainStart bool
}

func pow2ceil(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// New builds a core for the given machine, predictor and options.
func New(cfg config.Machine, pred mdp.Predictor, opt Options) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.BranchPredictor == "" {
		opt.BranchPredictor = "tagescl"
	}
	if opt.HistCap == 0 {
		opt.HistCap = 2048
	}
	if opt.MaxCycles == 0 {
		opt.MaxCycles = 400_000_000
	}
	if opt.WatchdogCycles == 0 {
		opt.WatchdogCycles = 2_000_000
	}
	c := &Core{
		cfg:         cfg,
		opt:         opt,
		mem:         cache.New(cfg),
		decodeHist:  histutil.NewReg(opt.HistCap),
		commitHist:  histutil.NewReg(opt.HistCap),
		scratchHist: histutil.NewReg(opt.HistCap),
		rob:         make([]robEntry, pow2ceil(cfg.ROB)),
		robCap:      uint64(cfg.ROB),
		sq:          make([]uint64, pow2ceil(cfg.SQ)),
		sb:          make([]sbEntry, pow2ceil(cfg.SQ)),
		execLoads:   make([]uint64, 0, 2*cfg.LQ+8),
		matchBuf:    make([]uint64, 0, cfg.LQ),
	}
	c.skipTo = make([]uint64, len(c.rob))
	c.readyAt = make([]uint64, len(c.rob))
	c.robMask = uint64(len(c.rob) - 1)
	c.sqMask = len(c.sq) - 1
	c.sbMask = len(c.sb) - 1
	if opt.Filter == FilterSVW {
		// NoSQ sizes the SSBF to cover the vulnerability window of the
		// largest in-flight load population with headroom.
		c.svw = newSSBF(1024, 2)
		c.storeRing = make([]committedStore, 4096)
	}
	if opt.Verify != nil {
		c.vprov = make([][]int32, len(c.rob))
		c.vdrained = make(map[uint64]int32)
	}
	if err := c.bindFrontEnd(pred); err != nil {
		return nil, err
	}
	c.headSeq, c.tailSeq, c.firstUnissued = 1, 1, 1
	return c, nil
}

// bindFrontEnd (re)builds the per-run mutable front-end state shared by New
// and Reset: the branch predictor unit and the MDP binding.
func (c *Core) bindFrontEnd(pred mdp.Predictor) error {
	dir, err := bpred.NewDir(c.opt.BranchPredictor)
	if err != nil {
		return err
	}
	c.bp = bpred.NewUnit(dir)
	c.pred = pred
	no, ok := pred.(interface{ NeedsOracle() bool })
	c.needOracle = ok && no.NeedsOracle()
	pred.Bind(c.decodeHist, c.commitHist)
	return nil
}

// Reset returns the core to its just-constructed state with a fresh
// predictor bound, so experiment drivers can reuse one core (ROB, queues,
// histories, cache arrays) across runs instead of reallocating ~5MB per
// simulation. A reset core behaves bit-identically to a newly built one
// (verified by TestResetCoreMatchesFresh).
func (c *Core) Reset(pred mdp.Predictor) error {
	c.mem.Reset()
	c.decodeHist.Reset()
	c.commitHist.Reset()
	c.scratchHist.Reset()
	c.scratchK = 0
	if err := c.bindFrontEnd(pred); err != nil {
		return err
	}
	c.tr, c.pre = nil, nil
	c.headSeq, c.tailSeq, c.firstUnissued = 1, 1, 1
	c.lastWriter = [isa.NumRegs]uint64{}
	c.iqCount, c.lqCount, c.sqCount = 0, 0, 0
	c.sqHead, c.sqLen = 0, 0
	c.sbHead, c.sbLen, c.sbStarted = 0, 0, 0
	c.sqLines = lineFilter{}
	c.sbLines = lineFilter{}
	c.ldLines = lineFilter{}
	c.execLoads = c.execLoads[:0]
	c.matchBuf = c.matchBuf[:0]
	clear(c.skipTo)
	clear(c.readyAt)
	if c.opt.Filter == FilterSVW {
		for i := range c.svw.entries {
			c.svw.entries[i] = ssbfEntry{}
		}
		for i := range c.storeRing {
			c.storeRing[i] = committedStore{}
		}
	}
	if c.opt.Verify != nil {
		// The callback (and any oracle behind it) carries over; callers
		// resetting a verified core must bind a checker for the new trace
		// themselves. sim never pools verify-enabled cores.
		clear(c.vdrained)
		for i := range c.vprov {
			c.vprov[i] = c.vprov[i][:0]
		}
	}
	c.verifyErr = nil
	c.committedStores = 0
	c.cycle = 0
	c.memEpoch = 0
	c.nextFetch, c.maxFetched = 0, 0
	c.fetchBlockedTil, c.fetchStallSeq = 0, 0
	c.nextCommitIdx = 0
	c.base = warmBase{}
	c.run = stats.Run{}
	return nil
}

func (c *Core) entry(seq uint64) *robEntry {
	return &c.rob[seq&c.robMask]
}

func (c *Core) robFull() bool { return c.tailSeq-c.headSeq >= c.robCap }

func (c *Core) robEmpty() bool { return c.tailSeq == c.headSeq }

// Store-queue ring accessors. Index 0 is the oldest in-flight store.
func (c *Core) sqSeqAt(i int) uint64 { return c.sq[(c.sqHead+i)&c.sqMask] }

func (c *Core) sqPush(seq uint64) {
	c.sq[(c.sqHead+c.sqLen)&c.sqMask] = seq
	c.sqLen++
}

func (c *Core) sqPopFront() {
	c.sqHead = (c.sqHead + 1) & c.sqMask
	c.sqLen--
}

// Store-buffer ring accessor. Index 0 is the oldest (next to drain/free).
func (c *Core) sbAt(i int) *sbEntry { return &c.sb[(c.sbHead+i)&c.sbMask] }

func (c *Core) sbPush(e sbEntry) {
	c.sb[(c.sbHead+c.sbLen)&c.sbMask] = e
	c.sbLen++
}

// producerReady reports whether the producing micro-op's value is available.
func (c *Core) producerReady(seq uint64) bool {
	if seq == 0 || seq < c.headSeq {
		return true // architectural or committed
	}
	d := c.readyAt[seq&c.robMask]
	return d != 0 && c.cycle >= d-1
}

// srcsReady reports whether both register sources are available.
func (c *Core) srcsReady(e *robEntry) bool {
	return c.producerReady(e.srcASeq) && c.producerReady(e.srcBSeq)
}

// srcReadyAt returns a cycle at which the producing micro-op's value can
// first be available (0 = ready now). For an issued producer this is exact
// (doneAt is immutable); for an unissued one it is a lower bound: producers
// are older, so they were already scanned this cycle and cannot issue before
// the next one, and the minimum execution latency is one cycle.
func (c *Core) srcReadyAt(seq uint64) uint64 {
	if seq == 0 || seq < c.headSeq {
		return 0
	}
	if d := c.readyAt[seq&c.robMask]; d != 0 {
		return d - 1
	}
	return c.cycle + 2
}

// storeDoneBound returns a lower bound on the first cycle at which
// storeDone(st) can become true, for an st that is not done now.
func (c *Core) storeDoneBound(st *robEntry) uint64 {
	if st.state == stIssued {
		return st.doneAt // exact
	}
	// Unissued: phase 2 (data ready → issue) is port-free, so the store
	// issues the first scanned cycle its data is ready, completing no
	// earlier than max(addr done, data ready, next cycle).
	t := c.cycle + 1
	if st.addrResolved {
		if st.addrDoneAt > t {
			t = st.addrDoneAt
		}
		if d := c.srcReadyAt(st.srcBSeq); d > t {
			t = d
		}
	}
	return t
}

// setRetry arranges for the issue scan to skip e until cycle at (exclusive
// lower bound on its wake-up) or until the next memory event, whichever
// comes first. at must never exceed the first cycle at which the entry's
// blocking evaluation could change — retries are an optimisation, not a
// scheduling policy, and an overshoot would change timing.
func (c *Core) setRetry(e *robEntry, at uint64) {
	e.retryAt = at
	e.retryEpoch = c.memEpoch
}

// Run simulates the full stream and returns the measured counters.
func (c *Core) Run(tr *trace.Trace) (*stats.Run, error) {
	return c.RunContext(context.Background(), tr)
}

// watchdogPeriod quantises the cycle loop's slow-path checks (context
// cancellation, the zero-retirement watchdog): they run every this many
// cycles, keeping the per-cycle cost to one mask test.
const watchdogPeriod = 4096

// faultHorizon bounds the cycle at which an injected pipeline fault fires.
// It is small enough that any full-length run reaches it, so a fault plan's
// per-run decision ("this config panics") reliably comes true.
const faultHorizon = 512

// RunContext simulates the full stream and returns the measured counters.
// The run aborts (with a wrapped ctx error) shortly after ctx is cancelled
// or its deadline passes, and aborts with a DeadlockError when the
// zero-retirement watchdog sees no commit for Options.WatchdogCycles.
func (c *Core) RunContext(ctx context.Context, tr *trace.Trace) (*stats.Run, error) {
	c.tr = tr
	c.pre = tr.Pre()
	c.run = stats.Run{
		App:       tr.Name,
		Predictor: c.pred.Name(),
		Machine:   c.cfg.Name,
	}
	n := tr.Len()
	// Fault injection decides per run, before the loop, whether and when to
	// misbehave — the steady state pays two integer compares per cycle.
	var fiPanicAt, fiStallAt uint64
	c.fiFwdFlip = false
	if p := faultinject.Active(); p != nil {
		key := tr.Name + "/" + c.cfg.Name + "/" + c.pred.Name()
		if p.Should(faultinject.FaultPanic, key) {
			fiPanicAt = 1 + p.Point(faultinject.FaultPanic, key, faultHorizon)
		}
		if p.Should(faultinject.FaultStall, key) {
			fiStallAt = 1 + p.Point(faultinject.FaultStall, key, faultHorizon)
		}
		c.fiFwdFlip = p.Should(faultinject.FaultFwdFlip, key)
	}
	c.verifyErr = nil
	lastCommitted := c.run.Committed
	lastProgress := c.cycle
	for c.nextCommitIdx < n {
		c.cycle++
		if c.cycle > c.opt.MaxCycles {
			return nil, &DeadlockError{
				Cycle: c.cycle, CommitIdx: c.nextCommitIdx, TraceLen: n,
				Dump: c.stateDump(),
			}
		}
		if fiPanicAt != 0 && c.cycle == fiPanicAt {
			panic(fmt.Sprintf("faultinject: injected panic in cycle loop at cycle %d (%s/%s/%s)",
				c.cycle, c.run.App, c.run.Machine, c.run.Predictor))
		}
		if fiStallAt == 0 || c.cycle < fiStallAt {
			c.commitStage()
			c.drainStoreBuffer()
			c.issueStage()
			c.fetchStage()
		}
		if c.verifyErr != nil {
			return nil, c.verifyErr
		}
		c.run.ROBOccupancySum += c.tailSeq - c.headSeq
		c.run.SQOccupancySum += uint64(c.sqLen)
		if c.cycle&(watchdogPeriod-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pipeline: run aborted at cycle %d (commit index %d/%d): %w",
					c.cycle, c.nextCommitIdx, n, err)
			}
			if c.run.Committed != lastCommitted {
				lastCommitted = c.run.Committed
				lastProgress = c.cycle
			} else if c.cycle-lastProgress >= c.opt.WatchdogCycles {
				return nil, &DeadlockError{
					Cycle: c.cycle, Budget: c.opt.WatchdogCycles,
					CommitIdx: c.nextCommitIdx, TraceLen: n,
					Dump: c.stateDump(),
				}
			}
		}
	}
	c.finalizeStats()
	// Return a copy: a pointer into the Core would keep the whole simulator
	// (trace, ROB, prefix arrays) reachable for as long as the caller holds
	// the result — callers memoise results across hundreds of runs.
	out := c.run
	return &out, nil
}

func (c *Core) finalizeStats() {
	// Component counters are cumulative over the core's life; subtracting
	// the warm-up baseline (zero for ordinary runs) scopes them to the
	// measured run. PathsTracked is a gauge, not a counter — report as is.
	c.run.Cycles = c.cycle - c.base.cycles
	c.run.Branches = c.bp.Branches - c.base.branches
	c.run.BranchMispredicts = c.bp.Mispredicts - c.base.mispredicts
	reads, writes := c.pred.Accesses()
	c.run.PredictorReads = reads - c.base.predReads
	c.run.PredictorWrites = writes - c.base.predWrites
	c.run.PathsTracked = uint64(c.pred.Paths())
	c.run.L1DHits = c.mem.L1D.Hits - c.base.l1dHits
	c.run.L1DMisses = c.mem.L1D.Misses - c.base.l1dMisses
	c.run.L2Hits = c.mem.L2.Hits - c.base.l2Hits
	c.run.L2Misses = c.mem.L2.Misses - c.base.l2Misses
	c.run.L3Hits = c.mem.L3.Hits - c.base.l3Hits
	c.run.L3Misses = c.mem.L3.Misses - c.base.l3Misses
}

// Predictor exposes the bound predictor (for experiment post-processing,
// e.g. PHAST's conflict-length histogram).
func (c *Core) Predictor() mdp.Predictor { return c.pred }

// histAt rebuilds, in the scratch register, the divergent-branch history as
// it stood just before the instruction at traceIdx was decoded. The scratch
// register is memoised on the divergent-branch count: repeat queries are
// free, forward movement replays only the delta entries (the scratch has no
// registered folds, so each push is O(1)), and only rewinds or long jumps
// pay the full rebuild.
func (c *Core) histAt(traceIdx int) *histutil.Reg {
	k := int(c.pre.Div[traceIdx])
	switch {
	case k == c.scratchK:
		// Memoised: already holds exactly this history.
	case k > c.scratchK && k-c.scratchK <= c.scratchHist.Cap():
		for _, e := range c.pre.DivEntries[c.scratchK:k] {
			c.scratchHist.Push(e)
		}
	default:
		lo := k - c.scratchHist.Cap()
		if lo < 0 {
			lo = 0
		}
		c.scratchHist.ResetTo(c.pre.DivEntries[lo:k], uint64(k))
	}
	c.scratchK = k
	return c.scratchHist
}
