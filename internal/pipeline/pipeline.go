// Package pipeline implements the cycle-level out-of-order core timing
// model: fetch/dispatch, rename, oldest-first issue over load/store/compute
// ports, a load queue and store queue with store-to-load forwarding, a
// post-commit store buffer that drains into the cache hierarchy, eager
// squash for branch mispredictions (front-end bubbles in this trace-driven
// model), and lazy squash for memory order violations, with the forwarding
// filter of the paper's §IV-A1.
//
// The model is functional-first/timing-second: the architectural correct-
// path stream comes from package trace, and the core decides when each
// micro-op's effects become visible. On a memory-order-violation squash the
// core re-dispatches the stream from the violating load. Wrong-path
// micro-ops are not simulated; mispredictions cost redirect bubbles (see
// DESIGN.md §3 for why this substitution preserves the predictor ranking).
package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/histutil"
	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options select core behaviours independent of the machine configuration.
type Options struct {
	// Filter selects the mis-speculation filtering mechanism: the paper's
	// §IV-A1 forwarding filter (default), no filtering (the Fig. 12 "No
	// FWD" ablation), or NoSQ's SVW/SSBF commit-time verification (§VII).
	Filter FilterMode
	// BranchPredictor names the direction predictor (default "tagescl").
	BranchPredictor string
	// HistCap is the divergent-branch history register capacity
	// (default 2048, covering MDP-TAGE's 2000-branch histories).
	HistCap int
	// TrainAtDetect trains the predictor when a mispeculation is detected
	// (at store address resolution) instead of at commit — the §IV-A1
	// ablation. Early training can learn stores that are not the youngest
	// conflicting one (Fig. 3d) and paths that never commit.
	TrainAtDetect bool
	// MaxCycles aborts runaway simulations (default 400M).
	MaxCycles uint64
}

// DefaultOptions returns the options every headline experiment uses.
func DefaultOptions() Options {
	return Options{Filter: FilterFwd, BranchPredictor: "tagescl", HistCap: 2048}
}

type entryState uint8

const (
	stDispatched entryState = iota
	stIssued
)

// robEntry is one in-flight micro-op.
type robEntry struct {
	inst     *isa.Inst
	seq      uint64
	traceIdx int
	state    entryState
	doneAt   uint64 // completion cycle, valid once issued

	srcASeq, srcBSeq uint64 // producing sequence numbers (0 = ready)

	// Memory ops.
	branchCount uint64 // decode-time divergent-branch counter copy
	storeCount  uint64 // stores dispatched before this op (loads)
	storeIndex  uint64 // global store allocation index (stores)

	// Stores.
	addrResolved bool
	addrDoneAt   uint64
	ssWaitSeq    uint64 // Store Sets same-set serialisation

	// Loads.
	pred            mdp.Prediction
	waited          bool
	waitAddr        uint64 // footprint of the store the load waited for
	waitSize        uint8
	waitValid       bool
	fwdFrom         uint64 // forwarding store seq (0 = none)
	fwdStoreIndex   uint64 // store allocation index of the forwarder (SVW)
	svwSSN          uint64 // committed-store count at execute (SVW)
	executed        bool
	executedAt      uint64
	violated        bool
	violStore       mdp.StoreInfo
	trainedAtDetect bool
}

// Core is a single simulated out-of-order core.
type Core struct {
	cfg  config.Machine
	opt  Options
	mem  *cache.Hierarchy
	bp   *bpred.Unit
	pred mdp.Predictor

	decodeHist *histutil.Reg
	commitHist *histutil.Reg
	// scratchHist reconstructs a load's exact history for detect-time
	// training (the §IV-A1 ablation); it carries no registered folds.
	scratchHist *histutil.Reg

	tr         *trace.Trace
	divPrefix  []uint32         // divergent branches before trace index i
	stPrefix   []uint32         // stores before trace index i
	divEntries []histutil.Entry // history entries of all divergent branches, in order

	// ROB ring: entries hold seqs [headSeq, tailSeq).
	rob     []robEntry
	headSeq uint64
	tailSeq uint64

	lastWriter [isa.NumRegs]uint64

	iqCount, lqCount, sqCount int

	// sq holds the ROB seqs of in-flight stores, oldest first.
	sq []uint64
	// sb is the post-commit store buffer.
	sb []sbEntry

	// SVW state (Options.Filter == FilterSVW).
	svw             *ssbf
	storeRing       []committedStore
	committedStores uint64

	cycle uint64

	// firstUnissued is the oldest sequence number that may still need to
	// issue; the issue scan starts here instead of at the ROB head.
	firstUnissued uint64

	// Fetch state.
	nextFetch       int // next trace index to fetch
	maxFetched      int // highest trace index ever fetched (history dedup)
	fetchBlockedTil uint64
	fetchStallSeq   uint64 // unresolved mispredicted branch (0 = none)

	nextCommitIdx int // invariant: commits follow trace order

	run stats.Run
}

type sbEntry struct {
	seq        uint64
	storeIndex uint64
	addr       uint64
	size       uint8
	drainedAt  uint64
	drainStart bool
}

// New builds a core for the given machine, predictor and options.
func New(cfg config.Machine, pred mdp.Predictor, opt Options) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.BranchPredictor == "" {
		opt.BranchPredictor = "tagescl"
	}
	if opt.HistCap == 0 {
		opt.HistCap = 2048
	}
	if opt.MaxCycles == 0 {
		opt.MaxCycles = 400_000_000
	}
	dir, err := bpred.NewDir(opt.BranchPredictor)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:         cfg,
		opt:         opt,
		mem:         cache.New(cfg),
		bp:          bpred.NewUnit(dir),
		pred:        pred,
		decodeHist:  histutil.NewReg(opt.HistCap),
		commitHist:  histutil.NewReg(opt.HistCap),
		scratchHist: histutil.NewReg(opt.HistCap),
		rob:         make([]robEntry, cfg.ROB),
		headSeq:     1,
		tailSeq:     1,
		sq:          make([]uint64, 0, cfg.SQ),
		sb:          make([]sbEntry, 0, cfg.SQ),
	}
	if opt.Filter == FilterSVW {
		// NoSQ sizes the SSBF to cover the vulnerability window of the
		// largest in-flight load population with headroom.
		c.svw = newSSBF(1024, 2)
		c.storeRing = make([]committedStore, 4096)
	}
	pred.Bind(c.decodeHist, c.commitHist)
	return c, nil
}

func (c *Core) entry(seq uint64) *robEntry {
	return &c.rob[seq%uint64(len(c.rob))]
}

func (c *Core) robFull() bool { return c.tailSeq-c.headSeq >= uint64(len(c.rob)) }

func (c *Core) robEmpty() bool { return c.tailSeq == c.headSeq }

// producerReady reports whether the producing micro-op's value is available.
func (c *Core) producerReady(seq uint64) bool {
	if seq == 0 || seq < c.headSeq {
		return true // architectural or committed
	}
	e := c.entry(seq)
	return e.state == stIssued && c.cycle >= e.doneAt
}

// srcsReady reports whether both register sources are available.
func (c *Core) srcsReady(e *robEntry) bool {
	return c.producerReady(e.srcASeq) && c.producerReady(e.srcBSeq)
}

// Run simulates the full stream and returns the measured counters.
func (c *Core) Run(tr *trace.Trace) (*stats.Run, error) {
	c.tr = tr
	c.buildPrefixes()
	c.run = stats.Run{
		App:       tr.Name,
		Predictor: c.pred.Name(),
		Machine:   c.cfg.Name,
	}
	n := tr.Len()
	for c.nextCommitIdx < n {
		c.cycle++
		if c.cycle > c.opt.MaxCycles {
			return nil, fmt.Errorf("pipeline: exceeded %d cycles at commit index %d/%d (deadlock?)",
				c.opt.MaxCycles, c.nextCommitIdx, n)
		}
		c.commitStage()
		c.drainStoreBuffer()
		c.issueStage()
		c.fetchStage()
		c.run.ROBOccupancySum += c.tailSeq - c.headSeq
		c.run.SQOccupancySum += uint64(len(c.sq))
	}
	c.finalizeStats()
	// Return a copy: a pointer into the Core would keep the whole simulator
	// (trace, ROB, prefix arrays) reachable for as long as the caller holds
	// the result — callers memoise results across hundreds of runs.
	out := c.run
	return &out, nil
}

func (c *Core) buildPrefixes() {
	n := c.tr.Len()
	c.divPrefix = make([]uint32, n+1)
	c.stPrefix = make([]uint32, n+1)
	for i := 0; i < n; i++ {
		c.divPrefix[i+1] = c.divPrefix[i]
		c.stPrefix[i+1] = c.stPrefix[i]
		in := &c.tr.Insts[i]
		if in.Divergent() {
			c.divPrefix[i+1]++
			c.divEntries = append(c.divEntries, histEntryOf(in))
		}
		if in.IsStore() {
			c.stPrefix[i+1]++
		}
	}
}

func (c *Core) finalizeStats() {
	c.run.Cycles = c.cycle
	c.run.Branches = c.bp.Branches
	c.run.BranchMispredicts = c.bp.Mispredicts
	c.run.PredictorReads, c.run.PredictorWrites = c.pred.Accesses()
	c.run.PathsTracked = uint64(c.pred.Paths())
	c.run.L1DHits, c.run.L1DMisses = c.mem.L1D.Hits, c.mem.L1D.Misses
	c.run.L2Hits, c.run.L2Misses = c.mem.L2.Hits, c.mem.L2.Misses
	c.run.L3Hits, c.run.L3Misses = c.mem.L3.Hits, c.mem.L3.Misses
}

// Predictor exposes the bound predictor (for experiment post-processing,
// e.g. PHAST's conflict-length histogram).
func (c *Core) Predictor() mdp.Predictor { return c.pred }

// histAt rebuilds, in the scratch register, the divergent-branch history as
// it stood just before the instruction at traceIdx was decoded.
func (c *Core) histAt(traceIdx int) *histutil.Reg {
	k := int(c.divPrefix[traceIdx])
	lo := k - c.scratchHist.Cap()
	if lo < 0 {
		lo = 0
	}
	c.scratchHist.ResetTo(c.divEntries[lo:k], uint64(k))
	return c.scratchHist
}
