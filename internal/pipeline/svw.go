package pipeline

import (
	"repro/internal/histutil"
	"repro/internal/isa"
	"repro/internal/mdp"
)

// Store Vulnerability Window re-execution filtering (Roth, ISCA 2005), with
// NoSQ's tagged set-associative Store Sequence Bloom Filter (§VII of the
// paper). It is the alternative to searching the load queue on every store
// address resolution: stores do nothing at resolve time; instead every load
// verifies itself just before commit against the SSBF, which maps addresses
// to the store sequence number (SSN — here the global store allocation
// index) of the youngest committed store that wrote them.
//
// A load records, when it executes, the SSN it is consistent with: the SSN
// of its forwarding store, or the youngest committed store at that moment.
// At commit the load probes the SSBF with its address; if a younger store
// has committed to that address since (strictly younger for non-bypassing
// loads; different for bypassing loads), the load's value may be stale and
// it re-executes.
//
// Compared with the paper's FWD filter (§IV-A1), SVW achieves the same "do
// not squash loads that already got the right value" effect with commit-
// side checks instead of resolve-side LQ searches, at the cost of aliasing
// squashes when the filter is too small. The repository exposes both as
// Options.Filter for the filtering ablation.

// FilterMode selects the mis-speculation detection/filtering mechanism.
type FilterMode uint8

const (
	// FilterFwd is the paper's §IV-A1 forwarding filter on the LQ-search
	// path (the default everywhere).
	FilterFwd FilterMode = iota
	// FilterNone is the gem5-like LQ search without forwarding filtering
	// (the Fig. 12 "No FWD" ablation).
	FilterNone
	// FilterSVW replaces the LQ search with commit-time SVW/SSBF
	// verification (NoSQ's mechanism, §VII).
	FilterSVW
)

// ssbf is NoSQ's tagged, set-associative Store Sequence Bloom Filter.
type ssbf struct {
	sets, ways int
	entries    []ssbfEntry
}

type ssbfEntry struct {
	tag   uint64 // line address (full tag keeps the filter conservative)
	ssn   uint64 // youngest committed store index + 1 (0 = invalid)
	touch uint64 // insertion order for FIFO replacement (per NoSQ)
}

const ssbfLineShift = 3 // 8-byte granularity

func newSSBF(sets, ways int) *ssbf {
	if !histutil.Pow2(sets) {
		panic("pipeline: SSBF sets must be a power of two")
	}
	return &ssbf{sets: sets, ways: ways, entries: make([]ssbfEntry, sets*ways)}
}

func (f *ssbf) index(line uint64) int { return int(line&uint64(f.sets-1)) * f.ways }

// update records a committed store writing [addr, addr+size).
func (f *ssbf) update(addr uint64, size uint8, ssn uint64, stamp uint64) {
	for line := addr >> ssbfLineShift; line <= (addr+uint64(size)-1)>>ssbfLineShift; line++ {
		base := f.index(line)
		slot := -1
		var oldest uint64 = ^uint64(0)
		for w := 0; w < f.ways; w++ {
			e := &f.entries[base+w]
			if e.ssn != 0 && e.tag == line {
				slot = base + w
				break
			}
			if e.touch < oldest {
				oldest, slot = e.touch, base+w
			}
		}
		f.entries[slot] = ssbfEntry{tag: line, ssn: ssn + 1, touch: stamp}
	}
}

// youngest returns the SSN of the youngest committed store overlapping
// [addr, addr+size), and whether any was found. A line that aged out of the
// FIFO returns not-found, which is safe only because evicted lines are old;
// NoSQ sizes the filter so the vulnerability window is covered.
func (f *ssbf) youngest(addr uint64, size uint8) (uint64, bool) {
	var best uint64
	found := false
	for line := addr >> ssbfLineShift; line <= (addr+uint64(size)-1)>>ssbfLineShift; line++ {
		base := f.index(line)
		for w := 0; w < f.ways; w++ {
			e := &f.entries[base+w]
			if e.ssn != 0 && e.tag == line {
				if e.ssn-1 >= best || !found {
					if !found || e.ssn-1 > best {
						best = e.ssn - 1
					}
					found = true
				}
			}
		}
	}
	return best, found
}

// svwCheckLoad verifies a load at commit under FilterSVW. It returns false
// if the load must re-execute, filling the violation fields used for
// predictor training.
func (c *Core) svwCheckLoad(e *robEntry) bool {
	in := e.inst
	youngest, found := c.svw.youngest(in.Addr, in.Size)
	if !found {
		return true // no vulnerable store committed to this address
	}
	if e.fwdFrom != 0 {
		// Bypassing load: consistent only if its forwarder is the youngest
		// committed writer.
		if e.fwdStoreIndex >= youngest {
			return true
		}
	} else if e.svwSSN != 0 && e.svwSSN-1 >= youngest {
		// Non-bypassing load: consistent if no store younger than the ones
		// it could see has committed to the address.
		return true
	}
	// Stale value: identify the conflicting store for training.
	e.violated = true
	e.violStore = c.committedStoreInfo(youngest)
	return false
}

// recordSVW snapshots, at load execution, the consistency point of the
// load: its forwarder's index (bypassing) or the committed-store count.
func (c *Core) recordSVW(e *robEntry, fwdIndex uint64, bypassing bool) {
	if c.opt.Filter != FilterSVW {
		return
	}
	if bypassing {
		e.fwdStoreIndex = fwdIndex
		return
	}
	e.svwSSN = c.committedStores // count of committed stores == next SSN
}

// committedStoreInfo reconstructs the identity of a committed store from the
// retirement ring for predictor training.
func (c *Core) committedStoreInfo(storeIndex uint64) mdp.StoreInfo {
	r := &c.storeRing[storeIndex%uint64(len(c.storeRing))]
	if r.storeIndex == storeIndex {
		return mdp.StoreInfo{PC: r.pc, Seq: r.seq, BranchCount: r.branchCount, StoreIndex: storeIndex}
	}
	// Aged out of the ring (very old store): train with index only.
	return mdp.StoreInfo{StoreIndex: storeIndex}
}

type committedStore struct {
	storeIndex  uint64
	pc          uint64
	seq         uint64
	branchCount uint64
}

// noteCommittedStore records a retiring store in the SSBF and the
// retirement ring.
func (c *Core) noteCommittedStore(e *robEntry) {
	if c.opt.Filter != FilterSVW {
		return
	}
	in := e.inst
	c.svw.update(in.Addr, in.Size, e.storeIndex, c.committedStores)
	c.storeRing[e.storeIndex%uint64(len(c.storeRing))] = committedStore{
		storeIndex: e.storeIndex, pc: in.PC, seq: e.seq, branchCount: e.branchCount,
	}
	c.committedStores++
}

var _ = isa.Overlap // keep the import for documentation cross-references
