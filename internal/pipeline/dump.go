package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// DeadlockError reports a wedged pipeline: the zero-retirement watchdog saw
// no commit for a whole cycle budget (or the absolute cycle ceiling was
// hit). Dump carries a one-page pipeline-state snapshot for diagnosis.
type DeadlockError struct {
	// Cycle is the cycle at which the watchdog fired.
	Cycle uint64
	// Budget is the zero-retirement cycle budget that was exhausted (0 when
	// the absolute MaxCycles ceiling fired instead).
	Budget uint64
	// CommitIdx / TraceLen locate the stall in the instruction stream.
	CommitIdx, TraceLen int
	// Dump is the pipeline-state snapshot taken when the watchdog fired.
	Dump string
}

func (e *DeadlockError) Error() string {
	what := fmt.Sprintf("no commit for %d cycles", e.Budget)
	if e.Budget == 0 {
		what = "cycle ceiling exceeded"
	}
	return fmt.Sprintf("pipeline: deadlock: %s at cycle %d, commit index %d/%d\n%s",
		what, e.Cycle, e.CommitIdx, e.TraceLen, e.Dump)
}

// stateDump renders a one-page snapshot of the core: global occupancies,
// fetch state, and the ROB head region with each entry's blocking reason.
// It is called only from failure paths, so clarity beats speed.
func (c *Core) stateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- pipeline state (cycle %d) --\n", c.cycle)
	fmt.Fprintf(&b, "commit: next trace index %d/%d, headSeq %d, tailSeq %d (ROB %d/%d)\n",
		c.nextCommitIdx, c.tr.Len(), c.headSeq, c.tailSeq, c.tailSeq-c.headSeq, c.robCap)
	fmt.Fprintf(&b, "queues: IQ %d, LQ %d, SQ %d (ring %d), SB %d (started %d)\n",
		c.iqCount, c.lqCount, c.sqCount, c.sqLen, c.sbLen, c.sbStarted)
	fmt.Fprintf(&b, "fetch:  next index %d, blocked until cycle %d, stalled on branch seq %d\n",
		c.nextFetch, c.fetchBlockedTil, c.fetchStallSeq)
	fmt.Fprintf(&b, "wakeup: memEpoch %d, firstUnissued %d\n", c.memEpoch, c.firstUnissued)
	b.WriteString("ROB head region (oldest first):\n")
	const maxEntries = 12
	n := 0
	for seq := c.headSeq; seq < c.tailSeq && n < maxEntries; seq++ {
		e := c.entry(seq)
		fmt.Fprintf(&b, "  seq %d idx %d %-7s %s\n", e.seq, e.traceIdx, kindName(e.kind), c.blockedReason(e))
		n++
	}
	if int(c.tailSeq-c.headSeq) > maxEntries {
		fmt.Fprintf(&b, "  ... %d younger entries elided\n", int(c.tailSeq-c.headSeq)-maxEntries)
	}
	if c.robEmpty() {
		b.WriteString("  (ROB empty — front end is not delivering micro-ops)\n")
	}
	return b.String()
}

func kindName(k isa.Kind) string {
	switch k {
	case isa.Load:
		return "load"
	case isa.Store:
		return "store"
	case isa.Branch:
		return "branch"
	default:
		return "compute"
	}
}

// blockedReason explains, for one ROB entry, why it has not retired yet.
func (c *Core) blockedReason(e *robEntry) string {
	if e.state == stIssued {
		if c.cycle >= e.doneAt {
			if e.kind == isa.Store && c.sbLen >= c.cfg.SQ {
				return "done, commit stalled: store buffer full"
			}
			if e.violated {
				return "done, flagged memory order violation (squash at commit)"
			}
			return "done, waiting for commit slot"
		}
		return fmt.Sprintf("issued, completes at cycle %d", e.doneAt)
	}
	if !c.producerReady(e.srcASeq) {
		return fmt.Sprintf("waiting on source A (seq %d)", e.srcASeq)
	}
	if !c.producerReady(e.srcBSeq) {
		return fmt.Sprintf("waiting on source B (seq %d)", e.srcBSeq)
	}
	switch e.kind {
	case isa.Load:
		if e.waited {
			return fmt.Sprintf("load predicted dependent, waiting (pred kind %v)", e.pred.Kind)
		}
		return fmt.Sprintf("load unissued (retryAt %d, retryEpoch %d)", e.retryAt, e.retryEpoch)
	case isa.Store:
		if !e.addrResolved {
			return "store address unresolved"
		}
		return fmt.Sprintf("store unissued, addr done at %d", e.addrDoneAt)
	default:
		return fmt.Sprintf("unissued (retryAt %d)", e.retryAt)
	}
}
