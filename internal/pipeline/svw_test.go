package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mdp"
	"repro/internal/trace"
)

func svwOptions() Options {
	o := DefaultOptions()
	o.Filter = FilterSVW
	return o
}

func TestSSBFYoungestWins(t *testing.T) {
	f := newSSBF(16, 2)
	f.update(0x1000, 8, 5, 1)
	f.update(0x1000, 8, 9, 2) // younger store to the same line
	ssn, ok := f.youngest(0x1000, 8)
	if !ok || ssn != 9 {
		t.Errorf("youngest = %d,%t, want 9", ssn, ok)
	}
	if _, ok := f.youngest(0x2000, 8); ok {
		t.Error("untouched address should miss")
	}
}

func TestSSBFSpansLines(t *testing.T) {
	f := newSSBF(16, 2)
	f.update(0x1004, 8, 3, 1) // straddles two 8-byte lines
	if _, ok := f.youngest(0x1000, 4); !ok {
		t.Error("first line not recorded")
	}
	if _, ok := f.youngest(0x1008, 4); !ok {
		t.Error("second line not recorded")
	}
}

// TestSVWDetectsViolations: under SVW filtering, the always-speculate
// baseline must still be caught and re-executed, and everything commits.
func TestSVWDetectsViolations(t *testing.T) {
	const addr = 0x1000
	var insts []isa.Inst
	for i := 0; i < 300; i++ {
		insts = append(insts,
			isa.Inst{PC: 0x100, Kind: isa.ALU, Dst: 5, Lat: 12},
			isa.Inst{PC: 0x104, Kind: isa.Store, SrcA: 5, Addr: addr, Size: 8},
			isa.Inst{PC: 0x108, Kind: isa.Load, Dst: 1, Addr: addr, Size: 8},
			isa.Inst{PC: 0x10c, Kind: isa.ALU, Dst: 9, SrcA: 9, SrcB: 1, Lat: 1},
		)
	}
	tr := &trace.Trace{Name: "svw", Insts: insts}
	r := run(t, tr, mdp.NewNone(), svwOptions())
	if r.res.Committed != uint64(len(insts)) {
		t.Errorf("committed %d/%d", r.res.Committed, len(insts))
	}
	if r.res.MemOrderViolations < 100 {
		t.Errorf("SVW should catch speculative misses, got %d", r.res.MemOrderViolations)
	}
	// A correctly predicting PHAST forwards and passes the bypassing check.
	ph := run(t, tr, corePHAST(), svwOptions())
	if ph.res.MemOrderViolations > 10 {
		t.Errorf("PHAST under SVW: %d violations", ph.res.MemOrderViolations)
	}
}

// TestSVWOnSuiteApps: full-app runs under SVW commit completely and catch
// violations comparably to the LQ-search path.
func TestSVWOnSuiteApps(t *testing.T) {
	for _, app := range []string{"511.povray", "525.x264_3"} {
		tr := appTrace(t, app, 30000)
		lq := run(t, tr, mdp.NewNone(), DefaultOptions())
		svw := run(t, tr, mdp.NewNone(), svwOptions())
		if svw.res.Committed != 30000 {
			t.Fatalf("%s: committed %d", app, svw.res.Committed)
		}
		if svw.res.MemOrderViolations == 0 && lq.res.MemOrderViolations > 0 {
			t.Errorf("%s: SVW caught nothing, LQ search caught %d",
				app, lq.res.MemOrderViolations)
		}
	}
}

// TestSVWIdealStaysClean: a load that waited for the right store and
// forwarded from it must pass the bypassing check.
func TestSVWIdealStaysClean(t *testing.T) {
	tr := appTrace(t, "548.exchange2", 30000)
	r := run(t, tr, mdp.NewIdeal(), svwOptions())
	if r.res.MemOrderViolations != 0 {
		t.Errorf("ideal under SVW: %d violations", r.res.MemOrderViolations)
	}
}
